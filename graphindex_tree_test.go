package dvicl

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func counterVal(t *testing.T, r *MetricsRecorder, name string) int64 {
	t.Helper()
	v, ok := r.Snapshot().Counters[name]
	if !ok {
		t.Fatalf("counter %q not in snapshot", name)
	}
	return v
}

// symAnswers serializes every symmetry-query answer for id into a
// comparable byte string.
func symAnswers(t *testing.T, ix *GraphIndex, id int) []byte {
	t.Helper()
	ctx := context.Background()
	orbits, err := ix.OrbitsCtx(ctx, id)
	if err != nil {
		t.Fatalf("orbits(%d): %v", id, err)
	}
	order, gens, err := ix.AutGroupCtx(ctx, id)
	if err != nil {
		t.Fatalf("autgroup(%d): %v", id, err)
	}
	q, err := ix.QuotientCtx(ctx, id)
	if err != nil {
		t.Fatalf("quotient(%d): %v", id, err)
	}
	count, images, err := ix.SSMCtx(ctx, id, []int{0, 1}, 4)
	if err != nil {
		t.Fatalf("ssm(%d): %v", id, err)
	}
	blob, err := json.Marshal(map[string]any{
		"orbits":   orbits,
		"order":    order.String(),
		"gens":     gens,
		"qedges":   q.Graph.Edges(),
		"orbit_of": q.OrbitOf,
		"count":    count.String(),
		"images":   images,
	})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestIndexSymmetryWarmPathZeroBuilds pins the headline property: once a
// class's tree is cached, symmetry queries perform zero DviCL builds —
// the tree_rebuilds counter does not move on the warm path.
func TestIndexSymmetryWarmPathZeroBuilds(t *testing.T) {
	rec := NewMetricsRecorder()
	ix := NewGraphIndexWithOptions(IndexOptions{
		DviCL:     Options{Obs: rec},
		TreeStore: &TreeStoreOptions{},
	})
	defer ix.Close()

	var ids []int
	for _, g := range indexTestGraphs() {
		id, _, err := ix.Add(g)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// First pass may rebuild (or hit trees the write-behind already
	// ensured); afterwards every class is in the decoded-tree cache.
	for _, id := range ids {
		symAnswers(t, ix, id)
	}
	rebuilds := counterVal(t, rec, "tree_rebuilds")
	warm := make(map[int][]byte)
	for _, id := range ids {
		warm[id] = symAnswers(t, ix, id)
	}
	if got := counterVal(t, rec, "tree_rebuilds"); got != rebuilds {
		t.Fatalf("warm-path queries rebuilt trees: tree_rebuilds %d -> %d", rebuilds, got)
	}
	if counterVal(t, rec, "treestore_mem_hits") == 0 {
		t.Fatal("warm-path queries recorded no treestore_mem_hits")
	}
	// Isomorphic graphs answer identically (class-level semantics).
	graphs := indexTestGraphs()
	for i := 0; i < 4; i++ {
		a, b := warm[ids[i]], warm[ids[i+4]]
		if string(a) != string(b) {
			t.Fatalf("isomorphic graphs %d and %d answer differently", ids[i], ids[i+4])
		}
		_ = graphs
	}
}

// TestIndexTreeStoreRestart: answers survive Close/reopen byte-identical,
// and after the restart the trees come from disk — zero rebuilds.
func TestIndexTreeStoreRestart(t *testing.T) {
	dir := t.TempDir()
	opt := IndexOptions{Shards: 2, TreeStore: &TreeStoreOptions{}}

	ix, err := OpenGraphIndex(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for _, g := range indexTestGraphs() {
		id, _, err := ix.Add(g)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	before := make(map[int][]byte)
	for _, id := range ids {
		before[id] = symAnswers(t, ix, id)
	}
	if st := ix.Stats(); st.TreeStore == nil || !st.TreeStore.Persistent {
		t.Fatalf("stats missing persistent tree store: %+v", st.TreeStore)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	rec := NewMetricsRecorder()
	opt.DviCL.Obs = rec
	ix2, err := OpenGraphIndex(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	for _, id := range ids {
		if got := symAnswers(t, ix2, id); string(got) != string(before[id]) {
			t.Fatalf("id %d: answers changed across restart\nbefore %s\nafter  %s", id, before[id], got)
		}
	}
	if got := counterVal(t, rec, "tree_rebuilds"); got != 0 {
		t.Fatalf("restart queries rebuilt %d trees; want 0 (disk hits)", got)
	}
	if counterVal(t, rec, "treestore_disk_hits") == 0 {
		t.Fatal("restart queries recorded no treestore_disk_hits")
	}
}

// TestIndexTreeStoreCorruptFallsBack: flipping bytes in every stored tree
// record degrades to exactly one recompute per class — same answers, no
// errors — and the store heals (second pass serves from memory).
func TestIndexTreeStoreCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	opt := IndexOptions{TreeStore: &TreeStoreOptions{}}

	ix, err := OpenGraphIndex(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	graphs := indexTestGraphs()[:4] // one per isomorphism class
	var ids []int
	before := make(map[int][]byte)
	for _, g := range graphs {
		id, _, err := ix.Add(g)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		before[id] = symAnswers(t, ix, id)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []string
	if err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".tree" {
			recs = append(recs, path)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ids) {
		t.Fatalf("found %d tree records; want %d", len(recs), len(ids))
	}
	for _, path := range recs {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rec := NewMetricsRecorder()
	opt.DviCL.Obs = rec
	ix2, err := OpenGraphIndex(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	for _, id := range ids {
		if got := symAnswers(t, ix2, id); string(got) != string(before[id]) {
			t.Fatalf("id %d: corrupt-fallback answer differs", id)
		}
	}
	if got := counterVal(t, rec, "treestore_corrupt"); got != int64(len(ids)) {
		t.Fatalf("treestore_corrupt = %d; want %d", got, len(ids))
	}
	if got := counterVal(t, rec, "tree_rebuilds"); got != int64(len(ids)) {
		t.Fatalf("tree_rebuilds = %d; want exactly one recompute per class (%d)", got, len(ids))
	}
	rebuilds := counterVal(t, rec, "tree_rebuilds")
	for _, id := range ids {
		symAnswers(t, ix2, id)
	}
	if got := counterVal(t, rec, "tree_rebuilds"); got != rebuilds {
		t.Fatalf("post-heal queries rebuilt again: %d -> %d", rebuilds, got)
	}
}

// TestIndexSymmetryWithoutTreeStore: an index opened without a tree
// store still answers every symmetry query by rebuilding per call.
func TestIndexSymmetryWithoutTreeStore(t *testing.T) {
	rec := NewMetricsRecorder()
	ix := NewGraphIndex(Options{Obs: rec})
	id, _, err := ix.Add(indexTestGraphs()[0])
	if err != nil {
		t.Fatal(err)
	}
	a := symAnswers(t, ix, id)
	b := symAnswers(t, ix, id)
	if string(a) != string(b) {
		t.Fatal("storeless symmetry answers not deterministic")
	}
	if counterVal(t, rec, "tree_rebuilds") == 0 {
		t.Fatal("storeless path should count rebuilds")
	}
}

// TestIndexSymmetryErrors: unknown ids and malformed SSM patterns return
// the typed sentinels.
func TestIndexSymmetryErrors(t *testing.T) {
	ix := NewGraphIndexWithOptions(IndexOptions{TreeStore: &TreeStoreOptions{}})
	defer ix.Close()
	id, _, err := ix.Add(indexTestGraphs()[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := ix.OrbitsCtx(ctx, id+1000); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown id: got %v", err)
	}
	if _, err := ix.OrbitsCtx(ctx, -1); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("negative id: got %v", err)
	}
	if _, _, err := ix.SSMCtx(ctx, id, []int{0, 99}, 0); !errors.Is(err, ErrInvalidPattern) {
		t.Fatalf("out-of-range pattern: got %v", err)
	}
	if _, _, err := ix.SSMCtx(ctx, id, []int{1, 1}, 0); !errors.Is(err, ErrInvalidPattern) {
		t.Fatalf("duplicate pattern: got %v", err)
	}
}

// TestIndexCloseStopsSymmetryQueries: after Close, queries fail with
// ErrIndexClosed rather than hanging or panicking.
func TestIndexCloseStopsSymmetryQueries(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenGraphIndex(dir, IndexOptions{TreeStore: &TreeStoreOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := ix.Add(indexTestGraphs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Ready(); err != nil {
		t.Fatalf("open index not ready: %v", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.OrbitsCtx(context.Background(), id); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("post-close query: got %v", err)
	}
	if err := ix.Ready(); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("post-close Ready: got %v", err)
	}
}
