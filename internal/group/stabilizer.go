package group

import (
	"math/rand"

	"dvicl/internal/perm"
)

// Stabilizer returns the pointwise stabilizer of the given points: the
// subgroup of elements fixing every point. It rebuilds the chain with the
// points as the leading base, after which the strong generators fixing
// all of them generate the stabilizer (the defining property of a
// stabilizer chain).
func (g *Group) Stabilizer(points []int) *Group {
	h := NewWithBase(g.n, g.gens, points)
	var stab []perm.Perm
	for _, p := range h.gens {
		fixesAll := true
		for _, pt := range points {
			if p[pt] != pt {
				fixesAll = false
				break
			}
		}
		if fixesAll {
			stab = append(stab, p)
		}
	}
	return New(g.n, stab)
}

// OrbitOf returns the orbit of a point under the group, sorted.
func (g *Group) OrbitOf(point int) []int {
	seen := map[int]bool{point: true}
	queue := []int{point}
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, gen := range g.gens {
			if y := gen[x]; !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

// RandomElement samples a uniformly random group element by composing a
// random coset representative from each chain level, deepest level first
// (the unique factorization g = u_k ∘ … ∘ u_1 along the stabilizer
// chain, in application order).
func (g *Group) RandomElement(r *rand.Rand) perm.Perm {
	p := perm.Identity(g.n)
	for i := len(g.chain) - 1; i >= 0; i-- {
		l := g.chain[i]
		pt := l.orbit[r.Intn(len(l.orbit))]
		p = p.Compose(l.transversal(g.n, pt))
	}
	return p
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
