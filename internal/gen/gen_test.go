package gen

import (
	"bytes"
	"testing"

	"dvicl/internal/canon"
	"dvicl/internal/core"
)

func TestPG2SmallOrders(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 9} {
		g, err := PG2(q)
		if err != nil {
			t.Fatal(err)
		}
		np := q*q + q + 1
		if g.N() != 2*np {
			t.Fatalf("PG2(%d): n = %d, want %d", q, g.N(), 2*np)
		}
		if g.M() != np*(q+1) {
			t.Fatalf("PG2(%d): m = %d, want %d", q, g.M(), np*(q+1))
		}
		// Incidence graph of a projective plane is (q+1)-regular.
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != q+1 {
				t.Fatalf("PG2(%d): deg(%d) = %d, want %d", q, v, g.Degree(v), q+1)
			}
		}
		// Axiom: every two distinct points lie on exactly one common line.
		pts := np
		for a := 0; a < min(pts, 12); a++ {
			for b := a + 1; b < min(pts, 12); b++ {
				common := 0
				g.Neighbors(a, func(l int) {
					if g.HasEdge(b, l) {
						common++
					}
				})
				if common != 1 {
					t.Fatalf("PG2(%d): points %d,%d share %d lines", q, a, b, common)
				}
			}
		}
	}
}

func TestPG249MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g, err := PG2(49)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4902 || g.M() != 122550 || g.MaxDegree() != 50 {
		t.Fatalf("pg2-49: n=%d m=%d dmax=%d, want 4902/122550/50",
			g.N(), g.M(), g.MaxDegree())
	}
}

func TestAG2SmallOrders(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7} {
		g, err := AG2(q)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 2*q*q+q {
			t.Fatalf("AG2(%d): n = %d, want %d", q, g.N(), 2*q*q+q)
		}
		if g.M() != (q*q+q)*q {
			t.Fatalf("AG2(%d): m = %d, want %d", q, g.M(), (q*q+q)*q)
		}
		// Every point is on q+1 lines; every line has q points.
		for p := 0; p < q*q; p++ {
			if g.Degree(p) != q+1 {
				t.Fatalf("AG2(%d): point degree %d, want %d", q, g.Degree(p), q+1)
			}
		}
		for l := q * q; l < g.N(); l++ {
			if g.Degree(l) != q {
				t.Fatalf("AG2(%d): line degree %d, want %d", q, g.Degree(l), q)
			}
		}
	}
}

func TestAG249MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g, err := AG2(49)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4851 || g.M() != 120050 || g.MaxDegree() != 50 {
		t.Fatalf("ag2-49: n=%d m=%d dmax=%d, want 4851/120050/50",
			g.N(), g.M(), g.MaxDegree())
	}
}

func TestGridW(t *testing.T) {
	g := GridW(3, 20)
	if g.N() != 8000 || g.M() != 24000 {
		t.Fatalf("grid-w-3-20: n=%d m=%d, want 8000/24000", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("torus degree %d at %d, want 6", g.Degree(v), v)
		}
	}
	// Side 2 wraps double edges: 2^3 cube has degree 3.
	c := GridW(3, 2)
	if c.N() != 8 || c.M() != 12 {
		t.Fatalf("GridW(3,2): n=%d m=%d, want cube 8/12", c.N(), c.M())
	}
}

func TestHadamard(t *testing.T) {
	g := Hadamard(256)
	if g.N() != 1024 || g.M() != 131584 || g.MaxDegree() != 257 {
		t.Fatalf("had-256: n=%d m=%d dmax=%d, want 1024/131584/257",
			g.N(), g.M(), g.MaxDegree())
	}
	small := Hadamard(4)
	for v := 0; v < small.N(); v++ {
		if small.Degree(v) != 5 {
			t.Fatalf("Hadamard(4) degree %d, want 5", small.Degree(v))
		}
	}
}

func TestCFISizes(t *testing.T) {
	g := CFI(CirculantCubic(200), false)
	if g.N() != 2000 || g.M() != 3000 {
		t.Fatalf("cfi-200: n=%d m=%d, want 2000/3000", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("CFI degree %d at %d, want 3", g.Degree(v), v)
		}
	}
}

// TestCFITwistNotIsomorphic is the defining property of the CFI family:
// the twisted companion is not isomorphic to the original, although 1-WL
// cannot tell them apart.
func TestCFITwistNotIsomorphic(t *testing.T) {
	base := CirculantCubic(10)
	g1 := CFI(base, false)
	g2 := CFI(base, true)
	if g1.N() != g2.N() || g1.M() != g2.M() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", g1.N(), g1.M(), g2.N(), g2.M())
	}
	r1 := canon.Canonical(g1, nil, canon.Options{})
	r2 := canon.Canonical(g2, nil, canon.Options{})
	if bytes.Equal(r1.Cert, r2.Cert) {
		t.Fatal("CFI twist produced an isomorphic graph")
	}
	// DviCL must agree.
	t1 := core.Build(g1, nil, core.Options{})
	t2 := core.Build(g2, nil, core.Options{})
	if bytes.Equal(t1.CanonicalCert(), t2.CanonicalCert()) {
		t.Fatal("DviCL certificates equal for CFI twist pair")
	}
}

func TestMzAugProfile(t *testing.T) {
	g := MzAug(50)
	if g.N() != 1000 || g.M() != 2400 {
		t.Fatalf("mz-aug-50: n=%d m=%d, want 1000/2400", g.N(), g.M())
	}
	if got := g.MaxDegree(); got != 6 {
		t.Fatalf("max degree %d, want 6", got)
	}
	// The base must be rigid, and the augmentation must keep every
	// refinement cell non-singleton (the paper's mz-aug profile) so the
	// AutoTree degenerates to the root.
	base := RigidCubic(20, 77)
	res := canon.Canonical(base, nil, canon.Options{})
	if order := len(res.Generators); order != 0 {
		t.Fatalf("RigidCubic(20) has %d automorphism generators, want rigid", order)
	}
	small := MzAug(10) // 200 vertices: cheap to analyze exactly
	tree := core.Build(small, nil, core.Options{})
	if s := tree.Stats(); s.Nodes != 1 {
		t.Fatalf("MzAug AutoTree has %d nodes, want root-only", s.Nodes)
	}
	_, singles := tree.OrbitStats()
	if singles != 0 {
		t.Fatalf("MzAug has %d singleton orbits, want 0", singles)
	}
}

func TestSocialDeterministicAndSized(t *testing.T) {
	cfg := SocialConfig{Name: "t", N: 2000, M: 8000, TwinFrac: 0.1, PendantFrac: 0.1, Seed: 7}
	g1 := Social(cfg)
	g2 := Social(cfg)
	if !g1.Equal(g2) {
		t.Fatal("Social not deterministic")
	}
	if g1.N() != 2000 {
		t.Fatalf("n = %d, want 2000", g1.N())
	}
	if g1.M() < 6000 || g1.M() > 10000 {
		t.Fatalf("m = %d, want ≈8000", g1.M())
	}
}

// TestSocialHasPlantedSymmetry: the stand-ins must show the Table 1
// pattern — mostly-singleton orbit cells with a symmetric remainder.
func TestSocialHasPlantedSymmetry(t *testing.T) {
	g := Social(SocialConfig{Name: "t", N: 3000, M: 9000, TwinFrac: 0.1, PendantFrac: 0.15, Seed: 9})
	tree := core.Build(g, nil, core.Options{})
	cells, singles := tree.OrbitStats()
	if cells == g.N() {
		t.Fatal("no symmetry planted at all")
	}
	if float64(singles) < 0.5*float64(cells) {
		t.Fatalf("singleton cells %d of %d: core not rigid enough", singles, cells)
	}
	s := tree.Stats()
	if s.Depth > 8 {
		t.Fatalf("AutoTree depth %d: expected shallow (paper: ≤5)", s.Depth)
	}
}

func TestCircuitProfile(t *testing.T) {
	g := Circuit(CircuitConfig{Name: "c", N: 5100, M: 9240, Buses: 40, BusDegree: 20,
		GadgetCopies: 60, GadgetSize: 8, Seed: 5})
	if g.N() != 5100 {
		t.Fatalf("n = %d, want 5100", g.N())
	}
	if g.M() < 8000 || g.M() > 10000 {
		t.Fatalf("m = %d, want ≈9240", g.M())
	}
	tree := core.Build(g, nil, core.Options{})
	if _, singles := tree.OrbitStats(); singles == 0 {
		t.Fatal("circuit should be mostly rigid")
	}
}

func TestDatasetCatalogs(t *testing.T) {
	real := RealDatasets()
	if len(real) != 22 {
		t.Fatalf("real datasets = %d, want 22", len(real))
	}
	bench := BenchmarkDatasets()
	if len(bench) != 9 {
		t.Fatalf("benchmark datasets = %d, want 9", len(bench))
	}
	if _, err := FindDataset("wikivote"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindDataset("pg2-49"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindDataset("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRealDatasetBuildSmallScale(t *testing.T) {
	d, err := FindDataset("wikivote")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Build(4)
	if g.N() != d.Paper.N/4 {
		t.Fatalf("scaled n = %d, want %d", g.N(), d.Paper.N/4)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(50, 120, 3)
	if g.N() != 50 || g.M() != 120 {
		t.Fatalf("G(50,120): n=%d m=%d", g.N(), g.M())
	}
	if !g.Equal(ErdosRenyi(50, 120, 3)) {
		t.Fatal("not deterministic")
	}
	// m capped at the complete graph.
	k := ErdosRenyi(5, 100, 1)
	if k.M() != 10 {
		t.Fatalf("overfull request: m=%d, want 10", k.M())
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := RandomRegular(30, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("deg(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Fatal("odd n·d accepted")
	}
	if _, err := RandomRegular(4, 5, 1); err == nil {
		t.Fatal("d >= n accepted")
	}
}

// TestRandomGraphsNearlyRigid echoes the classical fact (paper's related
// work [3]) that random graphs are almost surely rigid, which is why
// canonical labeling is easy on them.
func TestRandomGraphsNearlyRigid(t *testing.T) {
	g := ErdosRenyi(200, 800, 11)
	tree := core.Build(g, nil, core.Options{})
	if tree.AutOrder().Int64() > 4 {
		t.Fatalf("G(200,800) has |Aut| = %v — expected (near-)rigid", tree.AutOrder())
	}
}
