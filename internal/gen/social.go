package gen

import (
	"math/rand"

	"dvicl/internal/graph"
)

// SocialConfig parameterizes a synthetic stand-in for one of the paper's
// 22 real-world graphs (Table 1). The construction plants exactly the
// structure the paper's evaluation depends on: a quasi-rigid
// preferential-attachment core (most orbit cells become singletons under
// refinement) plus structural twins and pendant-twin groups (the few
// non-singleton orbits that make DviCL's divisions fire).
type SocialConfig struct {
	Name string
	// N and M are the target vertex and edge counts (the generator hits N
	// exactly and approaches M).
	N, M int
	// TwinFrac is the fraction of vertices realized as structural twins
	// of an existing vertex (the duplicated-neighborhood pattern that
	// dominates the symmetry of real social networks).
	TwinFrac float64
	// PendantFrac is the fraction of vertices attached as degree-one
	// pendants of hubs, forming pendant-twin groups.
	PendantFrac float64
	// Seed makes the graph deterministic.
	Seed int64
}

// Social builds the synthetic stand-in graph for cfg.
func Social(cfg SocialConfig) *graph.Graph {
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N
	if n < 4 {
		n = 4
	}
	twins := int(float64(n) * cfg.TwinFrac)
	pendants := int(float64(n) * cfg.PendantFrac)
	coreN := n - twins - pendants
	if coreN < 4 {
		coreN = 4
		twins = (n - coreN) / 2
		pendants = n - coreN - twins
	}
	// Edges per core vertex so the final edge count approaches M.
	perVertex := cfg.M / coreN
	if perVertex < 1 {
		perVertex = 1
	}

	b := graph.NewBuilder(n)
	// Preferential-attachment core: vertex v attaches to perVertex
	// earlier vertices, sampled preferentially from the endpoints of
	// earlier edges (heavy-tailed degree distribution, quasi-rigid).
	endpoints := make([]int32, 0, 2*cfg.M)
	b.AddEdge(0, 1)
	endpoints = append(endpoints, 0, 1)
	for v := 2; v < coreN; v++ {
		for e := 0; e < perVertex; e++ {
			var u int
			if r.Intn(4) == 0 { // uniform mixing keeps diameter sane
				u = r.Intn(v)
			} else {
				u = int(endpoints[r.Intn(len(endpoints))])
			}
			if u == v {
				u = (u + 1) % v
			}
			b.AddEdge(v, u)
			endpoints = append(endpoints, int32(v), int32(u))
		}
	}
	// Structural twins: vertex copies an earlier core vertex's edges.
	// Record core adjacency to replicate.
	coreAdj := make([][]int32, coreN)
	addCore := func(u, v int) {
		coreAdj[u] = append(coreAdj[u], int32(v))
		coreAdj[v] = append(coreAdj[v], int32(u))
	}
	// Rebuild the core edge list deterministically to know adjacency:
	// the Builder dedupes, so track pairs here as well.
	core := b.Build()
	for _, e := range core.Edges() {
		if e[0] < coreN && e[1] < coreN {
			addCore(e[0], e[1])
		}
	}
	b2 := graph.NewBuilder(n)
	for _, e := range core.Edges() {
		b2.AddEdge(e[0], e[1])
	}
	for t := 0; t < twins; t++ {
		v := coreN + t
		// Prefer low-degree originals: twins of hubs would distort the
		// degree profile.
		orig := r.Intn(coreN)
		for tries := 0; tries < 4 && len(coreAdj[orig]) > 8; tries++ {
			orig = r.Intn(coreN)
		}
		for _, w := range coreAdj[orig] {
			b2.AddEdge(v, int(w))
		}
	}
	// Pendant twins: attach runs of pendants to preferentially chosen
	// hubs so several pendants share a hub (mutually automorphic).
	for p := 0; p < pendants; {
		hub := int(endpoints[r.Intn(len(endpoints))])
		groupSize := 1 + r.Intn(3)
		for i := 0; i < groupSize && p < pendants; i++ {
			b2.AddEdge(coreN+twins+p, hub)
			p++
		}
	}
	return b2.Build()
}

// CircuitConfig parameterizes a synthetic SAT-circuit-like graph standing
// in for the paper's fpga/difp/s3 benchmark instances (outputs of SAT
// tools we cannot run offline): an irregular core wired like a layered
// circuit, a few very-high-degree bus vertices, and repeated gadget
// copies that leave some symmetric cells for the AutoTree to find.
type CircuitConfig struct {
	Name string
	// N and M are vertex/edge targets.
	N, M int
	// Buses is the number of high-degree bus vertices (0 for none).
	Buses int
	// BusDegree is each bus vertex's approximate degree.
	BusDegree int
	// GadgetCopies and GadgetSize plant GadgetCopies identical copies of
	// a small gadget, attached in equal groups to GadgetAnchors spine
	// vertices; copies sharing an anchor are mutually symmetric, giving
	// the graph non-singleton orbits.
	GadgetCopies, GadgetSize int
	// GadgetAnchors spreads the copies over this many spine vertices
	// (defaults to 1), keeping anchor degrees near the paper's dmax.
	GadgetAnchors int
	// Seed makes the graph deterministic.
	Seed int64
}

// Circuit builds the synthetic circuit-like stand-in for cfg.
func Circuit(cfg CircuitConfig) *graph.Graph {
	r := rand.New(rand.NewSource(cfg.Seed))
	gadgetTotal := cfg.GadgetCopies * cfg.GadgetSize
	coreN := cfg.N - cfg.Buses - gadgetTotal
	if coreN < 8 {
		coreN = 8
	}
	n := coreN + cfg.Buses + gadgetTotal
	b := graph.NewBuilder(n)
	// Layered circuit core: a long spine with chords of random short
	// span — irregular, so refinement discretizes most of it.
	for v := 1; v < coreN; v++ {
		b.AddEdge(v, v-1)
	}
	budget := cfg.M - (coreN - 1) - cfg.Buses*cfg.BusDegree - cfg.GadgetCopies*(cfg.GadgetSize+1)
	for e := 0; e < budget; e++ {
		u := r.Intn(coreN)
		span := 2 + r.Intn(64)
		v := u + span
		if v >= coreN {
			v = r.Intn(coreN)
		}
		if u != v {
			b.AddEdge(u, v)
		}
	}
	// Bus vertices: each connected to BusDegree distinct random core
	// vertices (the difp family's dmax ≈ 1500 pattern).
	for i := 0; i < cfg.Buses; i++ {
		bus := coreN + i
		for d := 0; d < cfg.BusDegree; d++ {
			b.AddEdge(bus, r.Intn(coreN))
		}
	}
	// Identical gadget copies: a small cycle with a chord. Copies are
	// spread over GadgetAnchors spine vertices; the copies sharing an
	// anchor are mutually symmetric subgraphs.
	anchors := cfg.GadgetAnchors
	if anchors < 1 {
		anchors = 1
	}
	for c := 0; c < cfg.GadgetCopies; c++ {
		base := coreN + cfg.Buses + c*cfg.GadgetSize
		for i := 0; i < cfg.GadgetSize; i++ {
			b.AddEdge(base+i, base+(i+1)%cfg.GadgetSize)
		}
		if cfg.GadgetSize >= 4 {
			b.AddEdge(base, base+cfg.GadgetSize/2)
		}
		anchor := (c % anchors) * (coreN / anchors)
		b.AddEdge(base, anchor)
	}
	return b.Build()
}
