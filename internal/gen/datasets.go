package gen

import (
	"fmt"

	"dvicl/internal/graph"
)

// PaperStats records what the paper reports for a dataset (Table 1 or
// Table 2), so the benchmark harness can print paper-vs-measured rows.
type PaperStats struct {
	N, M           int
	MaxDeg         int
	AvgDeg         float64
	Cells, Singles int
}

// Dataset couples a name with a generator for its (stand-in) graph and
// the paper's reported statistics.
type Dataset struct {
	Name  string
	Paper PaperStats
	// Build generates the graph at the given scale divisor (1 = paper
	// size; 20 = 1/20 of the paper's vertices). Benchmark-family graphs
	// ignore scale: they are constructed exactly.
	Build func(scale int) *graph.Graph
}

// socialSpec builds a Dataset backed by the Social generator, scaling the
// paper's size down by the scale divisor.
func socialSpec(name string, p PaperStats, twinFrac, pendantFrac float64, seed int64) Dataset {
	return Dataset{
		Name:  name,
		Paper: p,
		Build: func(scale int) *graph.Graph {
			if scale < 1 {
				scale = 1
			}
			return Social(SocialConfig{
				Name:        name,
				N:           p.N / scale,
				M:           p.M / scale,
				TwinFrac:    twinFrac,
				PendantFrac: pendantFrac,
				Seed:        seed,
			})
		},
	}
}

// RealDatasets lists the 22 real-graph stand-ins of Table 1 with the
// paper's reported statistics. Twin/pendant fractions are tuned per
// dataset so the orbit-coloring profile (cells ≈ mostly singletons, a
// small symmetric remainder) echoes the paper's last two columns.
func RealDatasets() []Dataset {
	// Fractions derive from the paper's singleton ratios: a graph whose
	// orbit coloring has fewer singleton cells gets more twins/pendants.
	return []Dataset{
		socialSpec("Amazon", PaperStats{403394, 2443408, 2752, 12.11, 396034, 390706}, 0.015, 0.015, 101),
		socialSpec("BerkStan", PaperStats{685230, 6649470, 84230, 19.41, 387172, 316162}, 0.18, 0.22, 102),
		socialSpec("Epinions", PaperStats{75879, 405740, 3044, 10.69, 53067, 45552}, 0.12, 0.18, 103),
		socialSpec("Gnutella", PaperStats{62586, 147892, 95, 4.73, 46098, 38216}, 0.10, 0.16, 104),
		socialSpec("Google", PaperStats{875713, 4322051, 6332, 9.87, 525232, 424563}, 0.15, 0.22, 105),
		socialSpec("LiveJournal", PaperStats{4036538, 34681189, 14815, 17.18, 3703527, 3518490}, 0.03, 0.05, 106),
		socialSpec("NotreDame", PaperStats{325729, 1090108, 10721, 6.69, 115038, 89791}, 0.30, 0.34, 107),
		socialSpec("Pokec", PaperStats{1632803, 22301964, 14854, 27.32, 1586176, 1561671}, 0.015, 0.02, 108),
		socialSpec("Slashdot0811", PaperStats{77360, 469180, 2539, 12.13, 61457, 56219}, 0.08, 0.12, 109),
		socialSpec("Slashdot0902", PaperStats{82168, 504229, 2552, 12.27, 65264, 59384}, 0.08, 0.12, 110),
		socialSpec("Stanford", PaperStats{281903, 1992636, 38625, 14.14, 168967, 133992}, 0.16, 0.24, 111),
		socialSpec("WikiTalk", PaperStats{2394385, 4659563, 100029, 3.89, 553199, 498161}, 0.28, 0.48, 112),
		socialSpec("wikivote", PaperStats{7115, 100762, 1065, 28.32, 5789, 5283}, 0.06, 0.12, 113),
		socialSpec("Youtube", PaperStats{1138499, 2990443, 28754, 5.25, 684471, 585349}, 0.16, 0.24, 114),
		socialSpec("Orkut", PaperStats{3072627, 117185083, 33313, 11.19, 3042918, 3028961}, 0.004, 0.006, 115),
		socialSpec("BuzzNet", PaperStats{101163, 2763066, 64289, 54.63, 77588, 76758}, 0.09, 0.14, 116),
		socialSpec("Delicious", PaperStats{536408, 1366136, 3216, 5.09, 263961, 221669}, 0.22, 0.30, 117),
		socialSpec("Digg", PaperStats{771229, 5907413, 17643, 15.32, 445181, 400605}, 0.17, 0.25, 118),
		socialSpec("Flixster", PaperStats{2523386, 7918801, 1474, 6.28, 1047509, 928445}, 0.24, 0.34, 119),
		socialSpec("Foursquare", PaperStats{639014, 3214986, 106218, 10.06, 364447, 315108}, 0.18, 0.24, 120),
		socialSpec("Friendster", PaperStats{5689498, 14067887, 4423, 4.95, 2135136, 1973584}, 0.26, 0.36, 121),
		socialSpec("Lastfm", PaperStats{1191812, 4519340, 5150, 7.58, 675962, 609605}, 0.18, 0.26, 122),
	}
}

// BenchmarkDatasets lists the nine bliss-collection families of Table 2.
// Scale is ignored: these graphs are fixed instances.
func BenchmarkDatasets() []Dataset {
	mk := func(name string, p PaperStats, build func() *graph.Graph) Dataset {
		return Dataset{Name: name, Paper: p, Build: func(int) *graph.Graph { return build() }}
	}
	return []Dataset{
		mk("ag2-49", PaperStats{4851, 120050, 50, 49.49, 2, 0}, func() *graph.Graph {
			g, err := AG2(49)
			if err != nil {
				panic(err)
			}
			return g
		}),
		mk("cfi-200", PaperStats{2000, 3000, 3, 3, 800, 0}, func() *graph.Graph {
			// A rigid cubic base reproduces the paper's orbit profile:
			// 800 cells (one inner 4-cell and three outer 2-cells per
			// gadget), none singleton.
			return CFI(RigidCubic(200, 41), false)
		}),
		mk("difp-21-0-wal-rcr", PaperStats{16927, 44188, 1526, 5.22, 16215, 15755}, func() *graph.Graph {
			return Circuit(CircuitConfig{
				Name: "difp-21", N: 16927, M: 44188,
				Buses: 6, BusDegree: 1500,
				GadgetCopies: 24, GadgetSize: 6, GadgetAnchors: 4,
				Seed: 201,
			})
		}),
		mk("fpga11-20-uns-rcr", PaperStats{5100, 9240, 21, 3.62, 3531, 2418}, func() *graph.Graph {
			return Circuit(CircuitConfig{
				Name: "fpga11-20", N: 5100, M: 9240,
				Buses: 40, BusDegree: 18,
				GadgetCopies: 57, GadgetSize: 8, GadgetAnchors: 3,
				Seed: 202,
			})
		}),
		mk("grid-w-3-20", PaperStats{8000, 24000, 6, 6, 1, 0}, func() *graph.Graph {
			return GridW(3, 20)
		}),
		mk("had-256", PaperStats{1024, 131584, 257, 257, 1, 0}, func() *graph.Graph {
			return Hadamard(256)
		}),
		mk("mz-aug-50", PaperStats{1000, 2300, 6, 4.6, 250, 0}, func() *graph.Graph {
			return MzAug(50)
		}),
		mk("pg2-49", PaperStats{4902, 122550, 50, 50, 1, 0}, func() *graph.Graph {
			g, err := PG2(49)
			if err != nil {
				panic(err)
			}
			return g
		}),
		mk("s3-3-3-10", PaperStats{12974, 23798, 26, 3.67, 9146, 5318}, func() *graph.Graph {
			return Circuit(CircuitConfig{
				Name: "s3-3-3-10", N: 12974, M: 23798,
				Buses: 30, BusDegree: 24,
				GadgetCopies: 90, GadgetSize: 10, GadgetAnchors: 6,
				Seed: 203,
			})
		}),
	}
}

// FindDataset looks a dataset up by name across both catalogs.
func FindDataset(name string) (Dataset, error) {
	for _, d := range RealDatasets() {
		if d.Name == name {
			return d, nil
		}
	}
	for _, d := range BenchmarkDatasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}
