// Package gen generates the evaluation workloads of the paper: the nine
// benchmark-graph families of Table 2 (from the bliss collection) and
// deterministic synthetic stand-ins for the 22 real-world graphs of
// Table 1 (which are not available offline — see DESIGN.md for the
// substitution rationale).
//
// pg2, ag2, grid-w, had and cfi are constructed exactly (projective and
// affine planes over GF(q), toroidal grids, Sylvester-Hadamard graphs,
// Cai–Fürer–Immerman gadget graphs). mz-aug, fpga, difp and s3 are
// outputs of SAT tools we cannot run offline, so structurally similar
// generators with matching size/degree/regularity profiles stand in.
package gen

import (
	"fmt"
	"math/rand"

	"dvicl/internal/gf"
	"dvicl/internal/graph"
)

// PG2 builds the point–line incidence graph of the projective plane
// PG(2, q): q²+q+1 points, q²+q+1 lines, each line incident with q+1
// points. pg2-49 of the paper is PG2(49).
func PG2(q int) (*graph.Graph, error) {
	f, err := gf.New(q)
	if err != nil {
		return nil, err
	}
	points := projectivePoints(f)
	np := len(points) // q²+q+1
	if np != q*q+q+1 {
		return nil, fmt.Errorf("gen: PG2(%d): %d points, want %d", q, np, q*q+q+1)
	}
	// Lines are dual points [u:v:w]; point (x:y:z) lies on it iff
	// ux + vy + wz = 0.
	b := graph.NewBuilder(2 * np)
	for li, l := range points {
		for pi, p := range points {
			s := f.Add(f.Add(f.Mul(l[0], p[0]), f.Mul(l[1], p[1])), f.Mul(l[2], p[2]))
			if s == 0 {
				b.AddEdge(pi, np+li)
			}
		}
	}
	return b.Build(), nil
}

// projectivePoints enumerates canonical representatives of the projective
// points of GF(q)³: (1, a, b), (0, 1, a), (0, 0, 1).
func projectivePoints(f *gf.Field) [][3]int {
	q := f.Q
	out := make([][3]int, 0, q*q+q+1)
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			out = append(out, [3]int{1, a, b})
		}
	}
	for a := 0; a < q; a++ {
		out = append(out, [3]int{0, 1, a})
	}
	out = append(out, [3]int{0, 0, 1})
	return out
}

// AG2 builds the point–line incidence graph of the affine plane AG(2, q):
// q² points and q²+q lines (y = mx + b and the vertical x = c), each line
// incident with q points. ag2-49 of the paper is AG2(49).
func AG2(q int) (*graph.Graph, error) {
	f, err := gf.New(q)
	if err != nil {
		return nil, err
	}
	np := q * q
	nl := q*q + q
	b := graph.NewBuilder(np + nl)
	point := func(x, y int) int { return x*q + y }
	// Lines y = mx + c, indexed m*q + c.
	for m := 0; m < q; m++ {
		for c := 0; c < q; c++ {
			li := np + m*q + c
			for x := 0; x < q; x++ {
				y := f.Add(f.Mul(m, x), c)
				b.AddEdge(point(x, y), li)
			}
		}
	}
	// Vertical lines x = c, indexed q² + c.
	for c := 0; c < q; c++ {
		li := np + q*q + c
		for y := 0; y < q; y++ {
			b.AddEdge(point(c, y), li)
		}
	}
	return b.Build(), nil
}

// GridW builds the wrapped (toroidal) grid of the given dimension and
// side: side^dim vertices, each adjacent to its 2·dim wrap-around
// neighbors. grid-w-3-20 of the paper is GridW(3, 20).
func GridW(dim, side int) *graph.Graph {
	n := 1
	for i := 0; i < dim; i++ {
		n *= side
	}
	b := graph.NewBuilder(n)
	coords := make([]int, dim)
	for v := 0; v < n; v++ {
		c := v
		for i := 0; i < dim; i++ {
			coords[i] = c % side
			c /= side
		}
		stride := 1
		for i := 0; i < dim; i++ {
			next := v - coords[i]*stride + ((coords[i]+1)%side)*stride
			b.AddEdge(v, next)
			stride *= side
		}
	}
	return b.Build()
}

// Hadamard builds the Hadamard graph of the Sylvester matrix H_n (n a
// power of two): vertices r⁺, r⁻, c⁺, c⁻ for every row/column; r and c
// are joined with signs matching H[r][c], and each ± pair is joined.
// Every vertex has degree n+1. had-256 of the paper is Hadamard(256).
func Hadamard(n int) *graph.Graph {
	if n&(n-1) != 0 || n == 0 {
		panic("gen: Hadamard order must be a power of two")
	}
	// Vertex layout: rows+ [0,n), rows- [n,2n), cols+ [2n,3n), cols- [3n,4n).
	b := graph.NewBuilder(4 * n)
	rp := func(i int) int { return i }
	rm := func(i int) int { return n + i }
	cp := func(j int) int { return 2*n + j }
	cm := func(j int) int { return 3*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Sylvester: H[i][j] = +1 iff popcount(i&j) is even.
			if popcount(uint(i&j))%2 == 0 {
				b.AddEdge(rp(i), cp(j))
				b.AddEdge(rm(i), cm(j))
			} else {
				b.AddEdge(rp(i), cm(j))
				b.AddEdge(rm(i), cp(j))
			}
		}
		b.AddEdge(rp(i), rm(i))
		b.AddEdge(cp(i), cm(i))
	}
	return b.Build()
}

func popcount(x uint) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// CirculantCubic builds a 3-regular circulant on n vertices (n even):
// ring edges i—i+1 plus diameters i—i+n/2. It serves as the base graph
// for the CFI construction.
func CirculantCubic(n int) *graph.Graph {
	if n%2 != 0 {
		panic("gen: CirculantCubic needs even n")
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
		if i < n/2 {
			b.AddEdge(i, i+n/2)
		}
	}
	return b.Build()
}

// CircularLadder builds the prism graph CL_k (3-regular, 2k vertices):
// two k-cycles joined by a perfect matching.
func CircularLadder(k int) *graph.Graph {
	b := graph.NewBuilder(2 * k)
	for i := 0; i < k; i++ {
		b.AddEdge(i, (i+1)%k)
		b.AddEdge(k+i, k+(i+1)%k)
		b.AddEdge(i, k+i)
	}
	return b.Build()
}

// CFI applies the Cai–Fürer–Immerman construction to a 3-regular base
// graph: every base vertex becomes a Fürer gadget (four "even-subset"
// inner vertices and an outer pair per incident edge), and base edges
// join outer pairs straight — or crossed for exactly one edge when twist
// is set, producing the classic non-isomorphic companion that 1-WL cannot
// distinguish from the original. cfi-200 of the paper is
// CFI(CirculantCubic(200), false): 10·200 vertices, 3-regular.
func CFI(base *graph.Graph, twist bool) *graph.Graph {
	nb := base.N()
	edges := base.Edges()
	// Incident edge slots per vertex: position of each edge in the
	// vertex's incidence list.
	incident := make([][]int, nb) // vertex -> edge indices
	for ei, e := range edges {
		incident[e[0]] = append(incident[e[0]], ei)
		incident[e[1]] = append(incident[e[1]], ei)
	}
	for v := 0; v < nb; v++ {
		if len(incident[v]) != 3 {
			panic("gen: CFI base graph must be 3-regular")
		}
	}
	// Layout per gadget (10 vertices): 4 inner (even subsets of {0,1,2}),
	// then outer pairs (slot s, sign b) at 4 + 2s + b.
	per := 10
	inner := func(v, s int) int { return per*v + s } // s in 0..3
	outer := func(v, slot, bit int) int { return per*v + 4 + 2*slot + bit }
	evenSubsets := [][3]int{{0, 0, 0}, {1, 1, 0}, {1, 0, 1}, {0, 1, 1}}
	b := graph.NewBuilder(per * nb)
	for v := 0; v < nb; v++ {
		for si, sub := range evenSubsets {
			for slot := 0; slot < 3; slot++ {
				b.AddEdge(inner(v, si), outer(v, slot, sub[slot]))
			}
		}
	}
	slotOf := func(v, ei int) int {
		for s, e := range incident[v] {
			if e == ei {
				return s
			}
		}
		panic("gen: edge not incident")
	}
	for ei, e := range edges {
		u, v := e[0], e[1]
		su, sv := slotOf(u, ei), slotOf(v, ei)
		crossed := twist && ei == 0
		if crossed {
			b.AddEdge(outer(u, su, 0), outer(v, sv, 1))
			b.AddEdge(outer(u, su, 1), outer(v, sv, 0))
		} else {
			b.AddEdge(outer(u, su, 0), outer(v, sv, 0))
			b.AddEdge(outer(u, su, 1), outer(v, sv, 1))
		}
	}
	return b.Build()
}

// RigidCubic builds a deterministic 3-regular graph on n vertices (n
// even) that is almost surely rigid (trivial automorphism group): a ring
// plus a pseudo-random perfect matching. Rigidity is asserted by tests.
func RigidCubic(n int, seed int64) *graph.Graph {
	if n%2 != 0 {
		panic("gen: RigidCubic needs even n")
	}
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	// Perfect matching avoiding ring edges.
	for {
		pm := r.Perm(n)
		ok := true
		for i := 0; i < n; i += 2 {
			d := pm[i] - pm[i+1]
			if d < 0 {
				d = -d
			}
			if d == 1 || d == n-1 {
				ok = false
				break
			}
		}
		if ok {
			for i := 0; i < n; i += 2 {
				b.AddEdge(pm[i], pm[i+1])
			}
			return b.Build()
		}
	}
}

// MzAug builds a Miyazaki-like augmented gadget graph standing in for the
// paper's mz-aug-50 (we cannot run the original generator): the CFI
// construction over a rigid cubic base, augmented uniformly inside every
// gadget with the inner K4 and the three outer-pair edges. The
// augmentation respects each gadget's symmetry, so — like the paper's
// family — every refinement cell stays non-singleton, neither DivideI nor
// DivideS can split the graph (the AutoTree is just the root), and the
// leaf engines must do the work. MzAug(50) has 1000 vertices, 2400 edges
// and maximum degree 6, close to Table 2's profile for mz-aug-50 (1000 /
// 2300 / 6).
func MzAug(k int) *graph.Graph {
	base := RigidCubic(2*k, 77)
	g := CFI(base, false)
	nb := 2 * k
	per := 10
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	for v := 0; v < nb; v++ {
		// Inner K4.
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddEdge(per*v+i, per*v+j)
			}
		}
		// Outer pair edges.
		for slot := 0; slot < 3; slot++ {
			b.AddEdge(per*v+4+2*slot, per*v+4+2*slot+1)
		}
	}
	return b.Build()
}

// DisjointUnion places the given graphs side by side on one shared
// vertex range, with no edges between parts; part i's vertex v becomes
// global vertex (sum of earlier part sizes) + v. The top-level DivideI
// splits the union into one component per part, so the family is the
// embarrassingly parallel base case a build worker pool must turn into
// near-linear speedup — the par-forest perfbench scenario unions
// non-isomorphic rigid CFI components.
func DisjointUnion(parts ...*graph.Graph) *graph.Graph {
	total := 0
	for _, p := range parts {
		total += p.N()
	}
	b := graph.NewBuilder(total)
	off := 0
	for _, p := range parts {
		for v := 0; v < p.N(); v++ {
			for _, w := range p.NeighborSlice(v) {
				if w > v {
					b.AddEdge(off+v, off+w)
				}
			}
		}
		off += p.N()
	}
	return b.Build()
}

// CompleteBinaryTree builds the complete binary tree of the given depth:
// 2^(depth+1)-1 vertices, vertex 0 the root, vertex v's parent (v-1)/2.
// Under DviCL it is the adversarial opposite of a forest: equitable
// refinement colors vertices by level, DivideI isolates the unique
// top-level vertex and leaves the two half-trees as components, and each
// half-tree repeats the pattern — a depth-long chain of binary divides
// with no wide fanout anywhere. Fan-out-only parallelism serializes on
// it; only work-stealing (one child left on the deque per divide) keeps
// more than one worker busy.
func CompleteBinaryTree(depth int) *graph.Graph {
	n := 1<<(depth+1) - 1
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, (v-1)/2)
	}
	return b.Build()
}
