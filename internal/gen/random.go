package gen

import (
	"fmt"
	"math/rand"

	"dvicl/internal/graph"
)

// ErdosRenyi builds a G(n, m) random graph: m distinct uniform edges.
// Deterministic for a fixed seed. Useful for average-case studies — the
// paper's related work notes canonical labeling is linear on random
// graphs with high probability [3], which BenchmarkRandomIso exercises.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	seen := make(map[int64]bool, m)
	for added := 0; added < m; {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
		added++
	}
	return b.Build()
}

// RandomRegular builds a random d-regular graph on n vertices via the
// pairing (configuration) model with rejection of self-loops and
// multi-edges; n·d must be even. Deterministic for a fixed seed.
func RandomRegular(n, d int, seed int64) (*graph.Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n·d must be even (n=%d, d=%d)", n, d)
	}
	if d >= n {
		return nil, fmt.Errorf("gen: degree %d too large for %d vertices", d, n)
	}
	r := rand.New(rand.NewSource(seed))
	stubs := make([]int, 0, n*d)
	for attempt := 0; attempt < 1000; attempt++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		seen := make(map[int64]bool, len(stubs)/2)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			key := int64(a)*int64(n) + int64(b)
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
		}
		if !ok {
			continue
		}
		b := graph.NewBuilder(n)
		for i := 0; i < len(stubs); i += 2 {
			b.AddEdge(stubs[i], stubs[i+1])
		}
		return b.Build(), nil
	}
	return nil, fmt.Errorf("gen: pairing model failed to produce a simple %d-regular graph", d)
}
