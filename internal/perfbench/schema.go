// Package perfbench is the continuous-benchmarking subsystem: a pinned
// suite of canonical-labeling scenarios over the internal/gen families
// (cfi, pg2, grid-w, had, mz-aug, plus a social-graph bulk-ingest run),
// measured into a versioned BENCH_<tag>.json artifact and compared
// between commits by cmd/benchdiff.
//
// The design follows what McKay & Piperno ("Practical graph isomorphism,
// II") and Piperno's search-space-contraction work established about
// canonical-labeling performance: it is dominated by search-tree size
// and is wildly family-dependent, so the suite measures *per family*
// and records the engine's search-effort counters (search nodes,
// refinement rounds, prune hits) next to the wall times. Wall time is
// noisy and machine-dependent; the counters are deterministic for the
// suite's sequential runs, which is why cmd/benchdiff gates hard on
// counter regressions and only softly on time.
//
// A BENCH file is written by Write (which validates first) and read by
// Read (which validates after decoding), so every artifact in
// circulation satisfies the schema invariants listed on Validate.
package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// SchemaVersion is the BENCH_*.json format version this package reads
// and writes. Readers reject any other version: the file is a gating
// artifact, and silently misreading one would turn the regression gate
// into noise.
const SchemaVersion = 1

// Modes a suite run can be recorded in. Files of different modes are
// never comparable (quick mode runs smaller instances, so counters and
// times differ by construction); Diff refuses to cross them.
const (
	ModeQuick = "quick"
	ModeFull  = "full"
)

// File is one BENCH_<tag>.json artifact: a suite run pinned to a schema
// version, a mode, and the toolchain that produced it.
type File struct {
	// Schema is the format version (SchemaVersion).
	Schema int `json:"schema"`
	// Tag names the run, e.g. "PR7" or "ci-1a2b3c4d".
	Tag string `json:"tag"`
	// Mode is ModeQuick or ModeFull.
	Mode string `json:"mode"`
	// GoVersion, GOOS and GOARCH record the toolchain and platform, for
	// the human reading a diff across environments.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Scenarios is sorted by Name, one entry per suite scenario run.
	Scenarios []Scenario `json:"scenarios"`
}

// Scenario is the measured result of one suite scenario.
type Scenario struct {
	// Name identifies the scenario ("cfi", "pg2", …, "social-ingest").
	Name string `json:"name"`
	// PaperRef maps the scenario to the paper's evaluation, e.g.
	// "Tables 2/4/8 (cfi-200)".
	PaperRef string `json:"paper_ref,omitempty"`
	// Reps is how many measured repetitions ran (after one untimed
	// warmup); WallNs holds their wall times in run order.
	Reps   int     `json:"reps"`
	WallNs []int64 `json:"wall_ns"`
	// MedianWallNs is the median of WallNs — the statistic benchdiff
	// compares (median-of-k is robust to one slow outlier rep).
	MedianWallNs int64 `json:"median_wall_ns"`
	// Allocs and Bytes are the median per-rep heap allocation count and
	// allocated bytes.
	Allocs int64 `json:"allocs"`
	Bytes  int64 `json:"bytes"`
	// PeakMB is the median sampled peak heap of a rep, in MiB
	// (informational — never gated; the sampler is coarse).
	PeakMB float64 `json:"peak_mb"`
	// Counters holds the engine's effort counters (obs snapshot) for one
	// rep. The suite runs sequentially over seeded generators, so these
	// are deterministic: only counters whose value was identical across
	// every rep are kept (a varying counter is dropped rather than
	// recorded as fake precision). benchdiff gates hard on these.
	Counters map[string]int64 `json:"counters"`
	// PhasesNs is each obs phase's total time in ns for the last rep
	// (informational — wall-clock, so never gated).
	PhasesNs map[string]int64 `json:"phases_ns,omitempty"`

	// ParWorkers, ParSerialNs, ParParallelNs and ParSpeedup are recorded
	// only by the par-* scenarios: each rep builds the same graph at
	// Workers=1 and Workers=ParWorkers (the machine's CPU count), the
	// medians of each land here, and ParSpeedup = ParSerialNs /
	// ParParallelNs. cmd/benchdiff's speedup gate reads them from the new
	// file alone, and the fields are omitted when zero, so artifacts that
	// predate them stay schema-valid and comparable.
	ParWorkers    int     `json:"par_workers,omitempty"`
	ParSerialNs   int64   `json:"par_serial_ns,omitempty"`
	ParParallelNs int64   `json:"par_parallel_ns,omitempty"`
	ParSpeedup    float64 `json:"par_speedup,omitempty"`
}

// Validate checks every schema invariant of f:
//
//   - Schema == SchemaVersion, Tag non-empty, Mode quick|full
//   - at least one scenario; names unique and sorted ascending
//   - per scenario: Reps ≥ 1, len(WallNs) == Reps, wall times ≥ 0,
//     MedianWallNs equal to the recomputed median of WallNs,
//     Allocs/Bytes ≥ 0, Counters present with non-negative values
//   - per scenario, when any Par* field is set: ParWorkers ≥ 1, both
//     median times ≥ 1ns, and ParSpeedup > 0
//
// Write refuses to emit a file that fails these; Read refuses to return
// one.
func Validate(f *File) error {
	if f == nil {
		return fmt.Errorf("perfbench: nil file")
	}
	if f.Schema != SchemaVersion {
		return fmt.Errorf("perfbench: unsupported schema version %d (want %d)", f.Schema, SchemaVersion)
	}
	if f.Tag == "" {
		return fmt.Errorf("perfbench: empty tag")
	}
	if f.Mode != ModeQuick && f.Mode != ModeFull {
		return fmt.Errorf("perfbench: bad mode %q (want %q or %q)", f.Mode, ModeQuick, ModeFull)
	}
	if len(f.Scenarios) == 0 {
		return fmt.Errorf("perfbench: no scenarios")
	}
	for i, s := range f.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("perfbench: scenario %d: empty name", i)
		}
		if i > 0 {
			switch prev := f.Scenarios[i-1].Name; {
			case prev == s.Name:
				return fmt.Errorf("perfbench: duplicate scenario %q", s.Name)
			case prev > s.Name:
				return fmt.Errorf("perfbench: scenarios not sorted (%q after %q)", s.Name, prev)
			}
		}
		if s.Reps < 1 {
			return fmt.Errorf("perfbench: scenario %q: reps %d < 1", s.Name, s.Reps)
		}
		if len(s.WallNs) != s.Reps {
			return fmt.Errorf("perfbench: scenario %q: %d wall samples for %d reps", s.Name, len(s.WallNs), s.Reps)
		}
		for _, w := range s.WallNs {
			if w < 0 {
				return fmt.Errorf("perfbench: scenario %q: negative wall time %d", s.Name, w)
			}
		}
		if med := median(s.WallNs); med != s.MedianWallNs {
			return fmt.Errorf("perfbench: scenario %q: median_wall_ns %d does not match samples (recomputed %d)",
				s.Name, s.MedianWallNs, med)
		}
		if s.Allocs < 0 || s.Bytes < 0 {
			return fmt.Errorf("perfbench: scenario %q: negative allocs/bytes", s.Name)
		}
		if s.Counters == nil {
			return fmt.Errorf("perfbench: scenario %q: missing counters", s.Name)
		}
		for name, v := range s.Counters {
			if v < 0 {
				return fmt.Errorf("perfbench: scenario %q: counter %s negative (%d)", s.Name, name, v)
			}
		}
		if s.ParWorkers != 0 || s.ParSerialNs != 0 || s.ParParallelNs != 0 || s.ParSpeedup != 0 {
			if s.ParWorkers < 1 || s.ParSerialNs < 1 || s.ParParallelNs < 1 || s.ParSpeedup <= 0 {
				return fmt.Errorf("perfbench: scenario %q: partial parallel-speedup record (workers %d, serial %dns, parallel %dns, speedup %g)",
					s.Name, s.ParWorkers, s.ParSerialNs, s.ParParallelNs, s.ParSpeedup)
			}
		}
	}
	return nil
}

// median returns the median of xs (average of the two middle values for
// even counts; integer division). xs must be non-empty; it is not
// modified.
func median(xs []int64) int64 {
	sorted := make([]int64, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	k := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[k]
	}
	return (sorted[k-1] + sorted[k]) / 2
}

// Write validates f and writes it as indented JSON.
func Write(w io.Writer, f *File) error {
	if err := Validate(f); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Read decodes and validates one BENCH file. Decoding is strict
// (unknown fields are an error): an unrecognized field means the file
// came from a different schema generation, and a gating artifact must
// not be half-understood.
func Read(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("perfbench: decode: %w", err)
	}
	if err := Validate(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// ReadFile reads and validates the BENCH file at path.
func ReadFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := Read(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// WriteFile validates f and writes it to path (0644, truncating).
func WriteFile(path string, f *File) error {
	if err := Validate(f); err != nil {
		return err
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(fh, f); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
