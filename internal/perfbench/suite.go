package perfbench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"dvicl/internal/bench"
	"dvicl/internal/core"
	"dvicl/internal/engine"
	"dvicl/internal/gen"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
	"dvicl/internal/pipeline"
	"dvicl/internal/treestore"
)

// Options configures one suite run.
type Options struct {
	// Tag names the resulting File (e.g. "PR7"). Empty means "dev".
	Tag string
	// Quick runs the reduced-size instances (the CI configuration);
	// otherwise the full-size instances run.
	Quick bool
	// Reps is the measured repetitions per scenario (after one untimed
	// warmup). 0 means the default: 3 quick, 5 full.
	Reps int
	// Scenarios restricts the run to the named scenarios (nil = all).
	Scenarios []string
	// ProfileDir, when non-empty, captures one CPU profile spanning all
	// measured reps (<dir>/<name>.cpu.pprof) and one post-run heap
	// profile (<dir>/<name>.heap.pprof) per scenario. Profiling adds a
	// few percent of overhead, so compare profiled runs against
	// profiled baselines.
	ProfileDir string
	// Log receives one progress line per scenario (nil = silent).
	Log io.Writer
}

// spec is one pinned suite scenario: a setup step (not timed — graph or
// record construction) returning the work function measured per rep.
// The work function must be deterministic for a fixed mode: the suite
// runs everything sequentially so the recorded counters are exact (the
// par-* scenarios run parallel builds internally, but record the serial
// run's counters after checking the parallel run matched them).
type spec struct {
	name     string
	paperRef string
	setup    func(quick bool) (work func(rec *obs.Recorder) error, err error)
	// finish, when non-nil, runs after the measured reps with the
	// aggregated Scenario, letting a spec attach metrics the generic
	// harness does not compute (the par-* speedup fields).
	finish func(sc *Scenario) error
}

// buildSpec is the common shape of the family scenarios: construct the
// graph once, measure a sequential core.Build per rep.
func buildSpec(name, paperRef string, mk func(quick bool) (*graph.Graph, error)) spec {
	return spec{
		name:     name,
		paperRef: paperRef,
		setup: func(quick bool) (func(rec *obs.Recorder) error, error) {
			g, err := mk(quick)
			if err != nil {
				return nil, err
			}
			return func(rec *obs.Recorder) error {
				tree := core.Build(g, nil, core.Options{Obs: rec})
				if tree == nil {
					return fmt.Errorf("perfbench: %s: nil tree", name)
				}
				return nil
			}, nil
		},
	}
}

// parSpec is the shape of the par-* scenarios, the gated speedup
// measurement of the work-stealing parallel build: each rep builds the
// same graph at Workers=1 and at Workers=NumCPU, timing each, and fails
// outright if the certificates or any non-scheduler counter differ —
// the determinism contract, enforced on every benchmark run. The rep's
// recorded counters are the serial run's (exact, machine-independent);
// the per-side times aggregate into the Par* fields via finish, where
// cmd/benchdiff's speedup gate reads them.
func parSpec(name, paperRef string, mk func(quick bool) (*graph.Graph, error)) spec {
	workers := runtime.NumCPU()
	var serialNs, parallelNs []int64
	return spec{
		name:     name,
		paperRef: paperRef,
		setup: func(quick bool) (func(rec *obs.Recorder) error, error) {
			g, err := mk(quick)
			if err != nil {
				return nil, err
			}
			serialNs, parallelNs = serialNs[:0], parallelNs[:0]
			return func(rec *obs.Recorder) error {
				recS, recP := obs.New(), obs.New()
				t0 := time.Now()
				serial := core.Build(g, nil, core.Options{Workers: 1, Obs: recS})
				dSerial := time.Since(t0)
				t1 := time.Now()
				parallel := core.Build(g, nil, core.Options{Workers: workers, Obs: recP})
				dParallel := time.Since(t1)
				if !bytes.Equal(serial.CanonicalCert(), parallel.CanonicalCert()) {
					return fmt.Errorf("perfbench: %s: parallel certificate differs from serial", name)
				}
				for _, c := range obs.AllCounters() {
					if obs.SchedulerCounter(c) {
						continue
					}
					if recS.Counter(c) != recP.Counter(c) {
						return fmt.Errorf("perfbench: %s: counter %s: serial %d, parallel %d",
							name, c, recS.Counter(c), recP.Counter(c))
					}
					rec.Add(c, recS.Counter(c))
				}
				serialNs = append(serialNs, int64(dSerial))
				parallelNs = append(parallelNs, int64(dParallel))
				return nil
			}, nil
		},
		finish: func(sc *Scenario) error {
			// Drop the warmup rep's sample (work ran Reps+1 times).
			s, p := serialNs[len(serialNs)-sc.Reps:], parallelNs[len(parallelNs)-sc.Reps:]
			sc.ParWorkers = workers
			sc.ParSerialNs = median(s)
			sc.ParParallelNs = median(p)
			if sc.ParParallelNs < 1 || sc.ParSerialNs < 1 {
				return fmt.Errorf("perfbench: %s: degenerate parallel timing (serial %dns, parallel %dns)",
					sc.Name, sc.ParSerialNs, sc.ParParallelNs)
			}
			sc.ParSpeedup = float64(sc.ParSerialNs) / float64(sc.ParParallelNs)
			return nil
		},
	}
}

// Suite is the pinned scenario set, in name order. Sizes are fixed per
// mode: changing them invalidates every committed baseline of that
// mode, so treat a size change like a schema change (regenerate
// BENCH_* baselines in the same commit).
func suite() []spec {
	specs := []spec{
		buildSpec("cfi", "Tables 2/4/8 (cfi-200)", func(quick bool) (*graph.Graph, error) {
			k := 200
			if quick {
				k = 60
			}
			return gen.CFI(gen.RigidCubic(k, 41), false), nil
		}),
		buildSpec("grid-w", "Tables 2/4/8 (grid-w-3-20)", func(quick bool) (*graph.Graph, error) {
			side := 20
			if quick {
				side = 10
			}
			return gen.GridW(3, side), nil
		}),
		buildSpec("had", "Tables 2/4/8 (had-256)", func(quick bool) (*graph.Graph, error) {
			n := 256
			if quick {
				n = 64
			}
			return gen.Hadamard(n), nil
		}),
		buildSpec("mz-aug", "Tables 2/4/8 (mz-aug-50)", func(quick bool) (*graph.Graph, error) {
			k := 50
			if quick {
				k = 16
			}
			return gen.MzAug(k), nil
		}),
		// pg2 grows brutally superlinearly in q (PG2(11) already costs
		// minutes per build — the family is the paper's hardest for
		// individualization–refinement), so the suite pins the largest
		// sizes that keep a rep under a second.
		buildSpec("pg2", "Tables 2/4/8 (pg2-49)", func(quick bool) (*graph.Graph, error) {
			q := 9
			if quick {
				q = 7
			}
			return gen.PG2(q)
		}),
		// par-cfi is the issue's "hard single component" speedup case:
		// one CFI graph whose parallelism comes from the divide cascade,
		// not from independent components.
		parSpec("par-cfi", "Parallel build speedup, single hard component (cfi family)",
			func(quick bool) (*graph.Graph, error) {
				k := 200
				if quick {
					k = 60
				}
				return gen.CFI(gen.RigidCubic(k, 41), false), nil
			}),
		// par-forest is the embarrassingly parallel case: eight pairwise
		// non-isomorphic rigid CFI components whose root divide hands one
		// independent subtree per component to the scheduler. The quick
		// instance is pinned by core's golden par-forest fixture.
		parSpec("par-forest", "Parallel build speedup, independent components (CFI forest)",
			func(quick bool) (*graph.Graph, error) {
				k := 80
				if quick {
					k = 30
				}
				parts := make([]*graph.Graph, 8)
				for i := range parts {
					parts[i] = gen.CFI(gen.RigidCubic(k, int64(100+i)), false)
				}
				return gen.DisjointUnion(parts...), nil
			}),
		socialIngestSpec(),
		symqSpec(),
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].name < specs[j].name })
	return specs
}

// socialIngestSpec measures the bulk-ingest path end to end: a stream
// of graph6-encoded social-graph stand-ins (the Table 1 workload shape)
// through internal/pipeline with one worker — single-worker so record
// order, certificates and counters are all deterministic.
func socialIngestSpec() spec {
	return spec{
		name:     "social-ingest",
		paperRef: "Tables 1/5 workload shape (social-graph stand-ins), bulk-ingest path",
		setup: func(quick bool) (func(rec *obs.Recorder) error, error) {
			count, n, m := 160, 400, 1400
			if quick {
				count, n, m = 48, 150, 500
			}
			records := make([]string, count)
			for i := range records {
				g := gen.Social(gen.SocialConfig{
					Name: "perfbench", N: n, M: m,
					TwinFrac: 0.12, PendantFrac: 0.18,
					Seed: int64(9000 + i),
				})
				s, err := graph.ToGraph6(g)
				if err != nil {
					return nil, fmt.Errorf("perfbench: social-ingest encode: %w", err)
				}
				records[i] = s
			}
			return func(rec *obs.Recorder) error {
				classes := make(map[string]struct{}, count)
				report, err := pipeline.Run(pipeline.Config{
					Workers: 1,
					Decode:  graph.FromGraph6,
					Canon: func(ctx context.Context, g *graph.Graph, ws *engine.Workspace, wrec *obs.Recorder) (string, error) {
						t, err := core.BuildCtx(ctx, g, nil, core.Options{Obs: wrec, Workspace: ws})
						if err != nil {
							return "", err
						}
						return string(t.CanonicalCert()), nil
					},
					Apply: func(seq int64, cert string) error {
						classes[cert] = struct{}{}
						return nil
					},
					Obs: rec,
				}, pipeline.SliceSource(records, 1))
				if err != nil {
					return err
				}
				if report.Applied != int64(count) {
					return fmt.Errorf("perfbench: social-ingest applied %d of %d", report.Applied, count)
				}
				return nil
			}, nil
		},
	}
}

// symqSpec measures the symmetry-query serving path end to end on a
// family of social-graph stand-ins: a cold pass (every Get rebuilds the
// AutoTree from its certificate and persists it), a warm pass (three
// query rounds served from the decoded-tree memory cache), and a
// restart pass (reopen the store, every Get decodes from disk). Each rep
// uses its own fresh directory, so the treestore counters — rebuilds,
// mem hits, disk hits, puts — are exact and identical across reps.
func symqSpec() spec {
	return spec{
		name:     "symq",
		paperRef: "Symmetry-query serving: warm cache vs rebuild-on-miss (AutoTree store)",
		setup: func(quick bool) (func(rec *obs.Recorder) error, error) {
			count, n, m := 16, 400, 1400
			if quick {
				count, n, m = 6, 150, 500
			}
			certs := make([][]byte, count)
			for i := range certs {
				g := gen.Social(gen.SocialConfig{
					Name: "perfbench-symq", N: n, M: m,
					TwinFrac: 0.12, PendantFrac: 0.18,
					Seed: int64(7000 + i),
				})
				certs[i] = core.Build(g, nil, core.Options{}).CanonicalCert()
			}
			ctx := context.Background()
			return func(rec *obs.Recorder) error {
				dir, err := os.MkdirTemp("", "perfbench-symq-*")
				if err != nil {
					return err
				}
				defer os.RemoveAll(dir)
				query := func(ts *treestore.Store) error {
					for _, cert := range certs {
						tree, err := ts.Get(ctx, cert)
						if err != nil {
							return err
						}
						if len(tree.Orbits()) == 0 || tree.AutOrder().Sign() <= 0 {
							return fmt.Errorf("perfbench: symq: degenerate answer")
						}
					}
					return nil
				}
				// Cold: every Get is a rebuild-on-miss plus a persist.
				ts, err := treestore.Open(dir, treestore.Options{Obs: rec})
				if err != nil {
					return err
				}
				if err := query(ts); err != nil {
					return err
				}
				// Warm: three rounds from the decoded-tree cache.
				for round := 0; round < 3; round++ {
					if err := query(ts); err != nil {
						return err
					}
				}
				if err := ts.Close(); err != nil {
					return err
				}
				// Restart: a reopened store serves every tree from disk.
				ts, err = treestore.Open(dir, treestore.Options{Obs: rec})
				if err != nil {
					return err
				}
				if err := query(ts); err != nil {
					return err
				}
				return ts.Close()
			}, nil
		},
	}
}

// Run executes the suite and returns the measured File (already
// validated). Every scenario runs one untimed warmup rep, then Reps
// measured reps, each on a fresh recorder; counters are kept only if
// identical across all reps (see Scenario.Counters).
func Run(opts Options) (*File, error) {
	tag := opts.Tag
	if tag == "" {
		tag = "dev"
	}
	reps := opts.Reps
	if reps <= 0 {
		if opts.Quick {
			reps = 3
		} else {
			reps = 5
		}
	}
	mode := ModeFull
	if opts.Quick {
		mode = ModeQuick
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	if opts.ProfileDir != "" {
		if err := os.MkdirAll(opts.ProfileDir, 0o755); err != nil {
			return nil, err
		}
	}

	f := &File{
		Schema:    SchemaVersion,
		Tag:       tag,
		Mode:      mode,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, sp := range suite() {
		if !wanted(sp.name, opts.Scenarios) {
			continue
		}
		sc, err := runScenario(sp, opts.Quick, reps, opts.ProfileDir, logf)
		if err != nil {
			return nil, err
		}
		f.Scenarios = append(f.Scenarios, sc)
	}
	if err := Validate(f); err != nil {
		return nil, err
	}
	return f, nil
}

// ScenarioNames lists the suite's scenario names in order.
func ScenarioNames() []string {
	specs := suite()
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.name
	}
	return names
}

func wanted(name string, filter []string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if strings.EqualFold(strings.TrimSpace(f), name) {
			return true
		}
	}
	return false
}

func runScenario(sp spec, quick bool, reps int, profileDir string, logf func(string, ...any)) (Scenario, error) {
	work, err := sp.setup(quick)
	if err != nil {
		return Scenario{}, err
	}

	// Warmup: primes sync.Pool workspaces and code paths so rep 1 is
	// not an allocation outlier.
	if err := work(obs.New()); err != nil {
		return Scenario{}, fmt.Errorf("perfbench: %s warmup: %w", sp.name, err)
	}

	var cpuFile *os.File
	if profileDir != "" {
		cpuFile, err = os.Create(filepath.Join(profileDir, sp.name+".cpu.pprof"))
		if err != nil {
			return Scenario{}, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return Scenario{}, fmt.Errorf("perfbench: %s: cpu profile: %w", sp.name, err)
		}
	}

	sc := Scenario{Name: sp.name, PaperRef: sp.paperRef, Reps: reps}
	var (
		allocs, bytes []int64
		peaks         []float64
		snaps         []obs.Snapshot
		workErr       error
	)
	for rep := 0; rep < reps; rep++ {
		rec := obs.New()
		m := bench.Measure(func() bool {
			workErr = work(rec)
			return workErr == nil
		})
		if workErr != nil {
			stopProfile(cpuFile)
			return Scenario{}, fmt.Errorf("perfbench: %s rep %d: %w", sp.name, rep, workErr)
		}
		sc.WallNs = append(sc.WallNs, int64(m.Time))
		allocs = append(allocs, m.Allocs)
		bytes = append(bytes, m.Bytes)
		peaks = append(peaks, m.PeakMB)
		snaps = append(snaps, rec.Snapshot())
	}
	stopProfile(cpuFile)
	if profileDir != "" {
		if err := writeHeapProfile(filepath.Join(profileDir, sp.name+".heap.pprof")); err != nil {
			return Scenario{}, fmt.Errorf("perfbench: %s: heap profile: %w", sp.name, err)
		}
	}

	sc.MedianWallNs = median(sc.WallNs)
	sc.Allocs = median(allocs)
	sc.Bytes = median(bytes)
	sc.PeakMB = medianFloat(peaks)
	var dropped []string
	sc.Counters, dropped = stableCounters(snaps)
	sc.PhasesNs = snaps[len(snaps)-1].PhaseTotals()
	if len(dropped) > 0 {
		logf("perfbench: %s: dropped non-deterministic counters: %s", sp.name, strings.Join(dropped, ", "))
	}
	if sp.finish != nil {
		if err := sp.finish(&sc); err != nil {
			return Scenario{}, err
		}
	}
	logf("perfbench: %-14s median %8.1fms  allocs %9d  search_nodes %d",
		sp.name, float64(sc.MedianWallNs)/1e6, sc.Allocs, sc.Counters["search_nodes"])
	if sc.ParWorkers > 0 {
		logf("perfbench: %-14s speedup %.2fx at %d workers (serial %.1fms, parallel %.1fms)",
			sp.name, sc.ParSpeedup, sc.ParWorkers,
			float64(sc.ParSerialNs)/1e6, float64(sc.ParParallelNs)/1e6)
	}
	return sc, nil
}

func stopProfile(cpuFile *os.File) {
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// stableCounters intersects the rep snapshots: a counter is kept only
// if every rep recorded the identical value. The suite's scenarios are
// sequential and seeded, so in practice nothing is dropped — the
// intersection is the safety net that keeps benchdiff's hard counter
// gate honest if a scenario ever picks up nondeterminism.
func stableCounters(snaps []obs.Snapshot) (map[string]int64, []string) {
	out := make(map[string]int64, len(snaps[0].Counters))
	var dropped []string
	for name, v := range snaps[0].Counters {
		stable := true
		for _, s := range snaps[1:] {
			if s.Counters[name] != v {
				stable = false
				break
			}
		}
		if stable {
			out[name] = v
		} else {
			dropped = append(dropped, name)
		}
	}
	sort.Strings(dropped)
	return out, dropped
}

func medianFloat(xs []float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	k := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[k]
	}
	return (sorted[k-1] + sorted[k]) / 2
}
