package perfbench

import (
	"path/filepath"
	"testing"
)

func load(t *testing.T, name string) *File {
	t.Helper()
	f, err := ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return f
}

func diffFixtures(t *testing.T, oldName, newName string) *Result {
	t.Helper()
	res, err := Diff(load(t, oldName), load(t, newName), DefaultThresholds())
	if err != nil {
		t.Fatalf("Diff(%s, %s): %v", oldName, newName, err)
	}
	return res
}

func TestDiffSelfIsClean(t *testing.T) {
	res := diffFixtures(t, "base.json", "base.json")
	if res.TimeRegressions != 0 || res.CounterRegressions != 0 || res.Improvements != 0 || res.Noise != 0 {
		t.Fatalf("self-diff: %+v", res)
	}
}

// TestDiffFlagsSlowedFixture is the acceptance gate: a deliberately
// slowed run (30% on every rep, minima confirming) must be flagged as a
// wall-time regression.
func TestDiffFlagsSlowedFixture(t *testing.T) {
	res := diffFixtures(t, "base.json", "slowed.json")
	if res.TimeRegressions != 1 {
		t.Fatalf("want 1 time regression, got %+v", res)
	}
	if res.CounterRegressions != 0 {
		t.Fatalf("unchanged counters flagged: %+v", res)
	}
	if v := res.Scenarios[0].Wall.Verdict; v != VerdictRegression {
		t.Fatalf("wall verdict = %s", v)
	}
}

func TestDiffFlagsCounterRegression(t *testing.T) {
	res := diffFixtures(t, "base.json", "counter_regress.json")
	// search_nodes 1149→2300 and truncations 0→1 both regress.
	if res.CounterRegressions != 2 {
		t.Fatalf("want 2 counter regressions, got %+v", res)
	}
	if res.TimeRegressions != 0 {
		t.Fatalf("unchanged wall flagged: %+v", res)
	}
	var metrics []string
	for _, cd := range res.Scenarios[0].Counters {
		metrics = append(metrics, cd.Metric)
		if cd.Verdict != VerdictRegression {
			t.Fatalf("counter %s verdict = %s", cd.Metric, cd.Verdict)
		}
	}
	if len(metrics) != 2 || metrics[0] != "search_nodes" || metrics[1] != "truncations" {
		t.Fatalf("regressed counters = %v", metrics)
	}
}

// TestDiffZeroToNonzeroCounter pins the old==0 edge: any growth from
// zero is a regression (ratio +Inf), not a divide-by-zero accident.
func TestDiffZeroToNonzeroCounter(t *testing.T) {
	res := diffFixtures(t, "base.json", "counter_regress.json")
	for _, cd := range res.Scenarios[0].Counters {
		if cd.Metric == "truncations" {
			if cd.Old != 0 || cd.New != 1 || cd.Verdict != VerdictRegression {
				t.Fatalf("truncations diff: %+v", cd)
			}
			return
		}
	}
	t.Fatal("truncations diff missing")
}

func TestDiffSeesImprovement(t *testing.T) {
	res := diffFixtures(t, "base.json", "improved.json")
	if res.TimeRegressions != 0 || res.CounterRegressions != 0 {
		t.Fatalf("improvement flagged as regression: %+v", res)
	}
	if res.Improvements == 0 {
		t.Fatalf("no improvements seen: %+v", res)
	}
	if v := res.Scenarios[0].Wall.Verdict; v != VerdictImprovement {
		t.Fatalf("wall verdict = %s", v)
	}
}

// TestDiffNoiseNotConfirmedByMin: the median moved 58% but the best rep
// is unchanged — one slow outlier dragged the median, so the verdict
// must be noise, not regression.
func TestDiffNoiseNotConfirmedByMin(t *testing.T) {
	res := diffFixtures(t, "base.json", "noisy.json")
	if res.TimeRegressions != 0 {
		t.Fatalf("noisy run hard-flagged: %+v", res)
	}
	if v := res.Scenarios[0].Wall.Verdict; v != VerdictNoise {
		t.Fatalf("wall verdict = %s, want noise", v)
	}
	if res.Noise == 0 {
		t.Fatalf("noise not counted: %+v", res)
	}
}

// TestDiffTooFewReps: a 30% slowdown measured with only 2 reps degrades
// to noise — below MinReps no median is trusted.
func TestDiffTooFewReps(t *testing.T) {
	res := diffFixtures(t, "base.json", "two_reps.json")
	if res.TimeRegressions != 0 {
		t.Fatalf("under-repped run hard-flagged: %+v", res)
	}
	if v := res.Scenarios[0].Wall.Verdict; v != VerdictNoise {
		t.Fatalf("wall verdict = %s, want noise", v)
	}
}

func TestDiffRefusesModeMismatch(t *testing.T) {
	_, err := Diff(load(t, "base.json"), load(t, "full_mode.json"), DefaultThresholds())
	if err == nil {
		t.Fatal("quick-vs-full diff accepted")
	}
}

func TestDiffMissingScenario(t *testing.T) {
	oldF := load(t, "base.json")
	newF := load(t, "base.json")
	newF.Scenarios[0].Name = "zzz-new"
	res, err := Diff(oldF, newF, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if res.MissingScenarios != 2 {
		t.Fatalf("want 2 one-sided scenarios, got %+v", res)
	}
	if res.TimeRegressions != 0 || res.CounterRegressions != 0 {
		t.Fatalf("missing scenarios gated: %+v", res)
	}
}

// TestSpeedupGateTiers pins the gate's worker-count tiers: single-core
// runs are skipped (there is no parallelism to measure on that
// machine), small machines warn, 4+ workers fail below 1.3x, and 8+
// workers additionally warn below 2.0x.
func TestSpeedupGateTiers(t *testing.T) {
	mk := func(workers int, speedup float64) Scenario {
		return Scenario{
			Name: "par-x", ParWorkers: workers,
			ParSerialNs: 1000, ParParallelNs: 1000, ParSpeedup: speedup,
		}
	}
	cases := []struct {
		name    string
		sc      Scenario
		issues  int
		failing bool
	}{
		{"no par fields", Scenario{Name: "cfi"}, 0, false},
		{"single core skipped", mk(1, 1.0), 0, false},
		{"two workers slow warns", mk(2, 1.1), 1, false},
		{"two workers ok", mk(2, 1.5), 0, false},
		{"four workers slow fails", mk(4, 1.2), 1, true},
		{"eight workers mediocre warns", mk(8, 1.7), 1, false},
		{"eight workers ok", mk(8, 2.5), 0, false},
	}
	for _, tc := range cases {
		f := &File{Scenarios: []Scenario{tc.sc}}
		issues := SpeedupGate(f)
		if len(issues) != tc.issues {
			t.Fatalf("%s: %d issues (%+v), want %d", tc.name, len(issues), issues, tc.issues)
		}
		if tc.issues > 0 && issues[0].Fail != tc.failing {
			t.Fatalf("%s: fail=%v, want %v (%s)", tc.name, issues[0].Fail, tc.failing, issues[0].Why)
		}
	}
}

// TestParFixtureRoundTrips: the par_* fields survive the strict decode
// and validation, and a baseline without them still reads (base.json
// has no par scenarios — the omitempty contract).
func TestParFixtureRoundTrips(t *testing.T) {
	f := load(t, "par_slow.json")
	var par *Scenario
	for i := range f.Scenarios {
		if f.Scenarios[i].ParWorkers != 0 {
			par = &f.Scenarios[i]
		}
	}
	if par == nil || par.ParWorkers != 8 || par.ParSpeedup != 1.11 {
		t.Fatalf("par scenario not decoded: %+v", par)
	}
	if _, err := Diff(load(t, "base.json"), f, DefaultThresholds()); err != nil {
		t.Fatalf("diff against par-less baseline: %v", err)
	}
}

func TestReadRejectsBadSchemaFixture(t *testing.T) {
	if _, err := ReadFile(filepath.Join("testdata", "bad_schema.json")); err == nil {
		t.Fatal("schema 99 fixture accepted")
	}
}

// TestCommittedBaseline pins the repo's committed artifact: it must
// stay schema-valid and self-diff clean, or the CI gate is comparing
// against garbage.
func TestCommittedBaseline(t *testing.T) {
	f, err := ReadFile(filepath.Join("..", "..", "results", "BENCH_PR10.json"))
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if f.Mode != ModeQuick {
		t.Fatalf("committed baseline mode = %s, want quick (the CI configuration)", f.Mode)
	}
	res, err := Diff(f, f, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeRegressions != 0 || res.CounterRegressions != 0 {
		t.Fatalf("baseline self-diff: %+v", res)
	}
}
