package perfbench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Verdict classifies one metric comparison.
type Verdict string

// The verdict set. Noise means the comparison was inconclusive: too few
// reps to trust a median, or a median shift the per-rep minima do not
// confirm. Missing means the metric (or scenario) exists on only one
// side; it never gates, but it is always reported — silently dropping a
// scenario is itself a regression signal a human should see.
const (
	VerdictOK          Verdict = "ok"
	VerdictImprovement Verdict = "improvement"
	VerdictRegression  Verdict = "regression"
	VerdictNoise       Verdict = "noise"
	VerdictMissing     Verdict = "missing"
)

// Thresholds is the noise model of one diff: per-metric relative
// tolerances plus the minimum repetition count below which wall-time
// verdicts degrade to noise.
type Thresholds struct {
	// TimeTol is the relative tolerance on median wall time (0.15 =
	// ±15%). A shift beyond it is only a verdict if the per-rep minima
	// shift beyond it too (min-of-k confirmation — a single slow rep
	// cannot fake a regression).
	TimeTol float64
	// AllocTol is the relative tolerance on allocation count and bytes.
	// Allocations are near-deterministic but pool/GC timing wiggles
	// them a few percent.
	AllocTol float64
	// CounterTol is the relative tolerance on engine counters. The
	// suite's counters are deterministic, so the default is 0: any
	// increase is a regression.
	CounterTol float64
	// MinReps is the smallest rep count (on either side) for which
	// wall/alloc verdicts are trusted; below it they report as noise.
	MinReps int
}

// DefaultThresholds is the gate configuration CI uses.
func DefaultThresholds() Thresholds {
	return Thresholds{TimeTol: 0.15, AllocTol: 0.10, CounterTol: 0, MinReps: 3}
}

// MetricDiff is one compared metric of one scenario.
type MetricDiff struct {
	Metric  string
	Old     int64
	New     int64
	Ratio   float64 // New/Old; +Inf when Old == 0 and New > 0
	Verdict Verdict
}

// ScenarioDiff is the comparison of one scenario across two files.
type ScenarioDiff struct {
	Name string
	// Missing is set when the scenario exists on only one side ("old"
	// or "new"); all metric slices are then empty.
	Missing string
	// Wall, Allocs and Bytes are the soft-gated metrics.
	Wall   MetricDiff
	Allocs MetricDiff
	Bytes  MetricDiff
	// Counters holds every compared counter whose verdict is not OK,
	// sorted by name; CountersCompared is how many were compared, and
	// CountersSkipped how many existed on only one side.
	Counters         []MetricDiff
	CountersCompared int
	CountersSkipped  int
}

// Result is one whole-file comparison.
type Result struct {
	OldTag, NewTag string
	Mode           string
	Scenarios      []ScenarioDiff
	// TimeRegressions counts wall/alloc/bytes regressions (the soft
	// gate); CounterRegressions counts counter regressions (the hard
	// gate); Improvements and Noise count those verdicts across all
	// metrics; MissingScenarios counts one-sided scenarios.
	TimeRegressions    int
	CounterRegressions int
	Improvements       int
	Noise              int
	MissingScenarios   int
}

// Diff compares two validated BENCH files under th. It refuses to
// compare across modes: quick and full runs use different instance
// sizes, so their counters differ by construction and a cross-mode
// "regression" would be meaningless.
func Diff(oldF, newF *File, th Thresholds) (*Result, error) {
	if err := Validate(oldF); err != nil {
		return nil, fmt.Errorf("old file: %w", err)
	}
	if err := Validate(newF); err != nil {
		return nil, fmt.Errorf("new file: %w", err)
	}
	if oldF.Mode != newF.Mode {
		return nil, fmt.Errorf(
			"perfbench: refusing to diff %s-mode %q against %s-mode %q: quick and full runs use different instance sizes, so every counter and time differs by construction, not by regression — re-run one side with the other's mode (perfbench -quick matches the CI baseline)",
			oldF.Mode, oldF.Tag, newF.Mode, newF.Tag)
	}
	r := &Result{OldTag: oldF.Tag, NewTag: newF.Tag, Mode: oldF.Mode}

	oldByName := make(map[string]*Scenario, len(oldF.Scenarios))
	for i := range oldF.Scenarios {
		oldByName[oldF.Scenarios[i].Name] = &oldF.Scenarios[i]
	}
	newByName := make(map[string]*Scenario, len(newF.Scenarios))
	names := make([]string, 0, len(oldF.Scenarios)+len(newF.Scenarios))
	for i := range newF.Scenarios {
		newByName[newF.Scenarios[i].Name] = &newF.Scenarios[i]
		names = append(names, newF.Scenarios[i].Name)
	}
	for name := range oldByName {
		if _, ok := newByName[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		o, haveOld := oldByName[name]
		n, haveNew := newByName[name]
		if !haveOld || !haveNew {
			side := "old"
			if !haveOld {
				side = "new"
			}
			r.Scenarios = append(r.Scenarios, ScenarioDiff{Name: name, Missing: side})
			r.MissingScenarios++
			continue
		}
		sd := diffScenario(o, n, th)
		tally(r, sd.Wall, false)
		tally(r, sd.Allocs, false)
		tally(r, sd.Bytes, false)
		for _, cd := range sd.Counters {
			tally(r, cd, true)
		}
		r.Scenarios = append(r.Scenarios, sd)
	}
	return r, nil
}

func tally(r *Result, md MetricDiff, counter bool) {
	switch md.Verdict {
	case VerdictRegression:
		if counter {
			r.CounterRegressions++
		} else {
			r.TimeRegressions++
		}
	case VerdictImprovement:
		r.Improvements++
	case VerdictNoise:
		r.Noise++
	}
}

func diffScenario(o, n *Scenario, th Thresholds) ScenarioDiff {
	sd := ScenarioDiff{Name: o.Name}

	enoughReps := o.Reps >= th.MinReps && n.Reps >= th.MinReps
	sd.Wall = compare("median_wall_ns", o.MedianWallNs, n.MedianWallNs, th.TimeTol)
	if !enoughReps {
		// Too few reps for a trustworthy median: report the ratio but
		// never gate on it.
		if sd.Wall.Verdict == VerdictRegression || sd.Wall.Verdict == VerdictImprovement {
			sd.Wall.Verdict = VerdictNoise
		}
	} else if sd.Wall.Verdict == VerdictRegression || sd.Wall.Verdict == VerdictImprovement {
		// Min-of-k confirmation: the medians moved, but if the best
		// reps did not move the same way past the tolerance, one noisy
		// rep dragged the median — call it noise, not a verdict.
		confirm := compare("min_wall_ns", minOf(o.WallNs), minOf(n.WallNs), th.TimeTol)
		if confirm.Verdict != sd.Wall.Verdict {
			sd.Wall.Verdict = VerdictNoise
		}
	}

	sd.Allocs = compare("allocs", o.Allocs, n.Allocs, th.AllocTol)
	sd.Bytes = compare("bytes", o.Bytes, n.Bytes, th.AllocTol)
	if !enoughReps {
		for _, md := range []*MetricDiff{&sd.Allocs, &sd.Bytes} {
			if md.Verdict == VerdictRegression || md.Verdict == VerdictImprovement {
				md.Verdict = VerdictNoise
			}
		}
	}

	counterNames := make([]string, 0, len(o.Counters))
	for name := range o.Counters {
		counterNames = append(counterNames, name)
	}
	sort.Strings(counterNames)
	for _, name := range counterNames {
		nv, ok := n.Counters[name]
		if !ok {
			sd.CountersSkipped++
			continue
		}
		sd.CountersCompared++
		cd := compare(name, o.Counters[name], nv, th.CounterTol)
		if cd.Verdict != VerdictOK {
			sd.Counters = append(sd.Counters, cd)
		}
	}
	for name := range n.Counters {
		if _, ok := o.Counters[name]; !ok {
			sd.CountersSkipped++
		}
	}
	return sd
}

// compare produces the basic tolerance verdict for one metric: a
// regression when new exceeds old by more than tol, an improvement when
// it falls below by more than tol, OK inside the band.
func compare(metric string, oldV, newV int64, tol float64) MetricDiff {
	md := MetricDiff{Metric: metric, Old: oldV, New: newV, Verdict: VerdictOK}
	switch {
	case oldV == 0 && newV == 0:
		md.Ratio = 1
	case oldV == 0:
		md.Ratio = math.Inf(1)
		md.Verdict = VerdictRegression
	default:
		md.Ratio = float64(newV) / float64(oldV)
		if float64(newV) > float64(oldV)*(1+tol) {
			md.Verdict = VerdictRegression
		} else if float64(newV) < float64(oldV)*(1-tol) {
			md.Verdict = VerdictImprovement
		}
	}
	return md
}

func minOf(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// SpeedupIssue is one parallel-build speedup finding from SpeedupGate.
type SpeedupIssue struct {
	Name    string
	Workers int
	Speedup float64
	// Fail distinguishes a gating failure from a warning.
	Fail bool
	Why  string
}

// SpeedupGate checks the par-* scenarios of a single file (CI applies it
// to the new side only — speedup is a property of the current code, not
// a delta) against the expectations of the work-stealing scheduler:
//
//   - ParWorkers < 2 (single-core machine): skipped entirely — there is
//     no parallelism to measure, and a ratio of ~1.0 is correct there.
//   - speedup < 1.3× at 2–3 workers: warning (small machines leave
//     little headroom after the serial divide prefix).
//   - speedup < 1.3× at ≥ 4 workers: failure — the pool is not pulling
//     its weight and something serialized.
//   - speedup < 2.0× at ≥ 8 workers: warning (scaling fell off early).
//
// Scenarios without Par* fields (all non-par scenarios, and artifacts
// predating the fields) are ignored.
func SpeedupGate(f *File) []SpeedupIssue {
	var out []SpeedupIssue
	for _, s := range f.Scenarios {
		if s.ParWorkers < 2 {
			continue
		}
		switch {
		case s.ParSpeedup < 1.3 && s.ParWorkers >= 4:
			out = append(out, SpeedupIssue{s.Name, s.ParWorkers, s.ParSpeedup, true,
				"below 1.3x with 4+ workers: the parallel build is not scaling"})
		case s.ParSpeedup < 1.3:
			out = append(out, SpeedupIssue{s.Name, s.ParWorkers, s.ParSpeedup, false,
				"below 1.3x (few workers; little headroom past the serial divide prefix)"})
		case s.ParSpeedup < 2.0 && s.ParWorkers >= 8:
			out = append(out, SpeedupIssue{s.Name, s.ParWorkers, s.ParSpeedup, false,
				"below 2.0x with 8+ workers: scaling fell off early"})
		}
	}
	return out
}

// Format renders the result as an aligned human-readable report.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchdiff: %s → %s (%s mode)\n\n", r.OldTag, r.NewTag, r.Mode)
	fmt.Fprintf(&b, "%-14s  %-14s  %12s  %12s  %7s  %s\n",
		"scenario", "metric", "old", "new", "ratio", "verdict")
	line := func(name string, md MetricDiff) {
		fmt.Fprintf(&b, "%-14s  %-14s  %12d  %12d  %7.3f  %s\n",
			name, md.Metric, md.Old, md.New, md.Ratio, md.Verdict)
	}
	for _, sd := range r.Scenarios {
		if sd.Missing != "" {
			fmt.Fprintf(&b, "%-14s  %-14s  only in %s file: MISSING\n", sd.Name, "-", sd.Missing)
			continue
		}
		line(sd.Name, sd.Wall)
		line(sd.Name, sd.Allocs)
		line(sd.Name, sd.Bytes)
		for _, cd := range sd.Counters {
			line(sd.Name, cd)
		}
		if len(sd.Counters) == 0 {
			fmt.Fprintf(&b, "%-14s  %-14s  %d counters identical", sd.Name, "counters", sd.CountersCompared)
			if sd.CountersSkipped > 0 {
				fmt.Fprintf(&b, " (%d one-sided, skipped)", sd.CountersSkipped)
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "\nsummary: %d time/alloc regressions, %d counter regressions, %d improvements, %d noisy, %d missing scenarios\n",
		r.TimeRegressions, r.CounterRegressions, r.Improvements, r.Noise, r.MissingScenarios)
	return b.String()
}
