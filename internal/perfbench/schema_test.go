package perfbench

import (
	"bytes"
	"strings"
	"testing"

	"dvicl/internal/obs"
)

// validFile returns a minimal schema-valid file for mutation tests.
func validFile() *File {
	return &File{
		Schema: SchemaVersion, Tag: "t", Mode: ModeQuick,
		GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
		Scenarios: []Scenario{
			{
				Name: "a", Reps: 3,
				WallNs: []int64{10, 11, 12}, MedianWallNs: 11,
				Allocs: 5, Bytes: 100,
				Counters: map[string]int64{"search_nodes": 7},
			},
			{
				Name: "b", Reps: 1,
				WallNs: []int64{9}, MedianWallNs: 9,
				Counters: map[string]int64{},
			},
		},
	}
}

func TestValidateAcceptsGoodFile(t *testing.T) {
	if err := Validate(validFile()); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*File)
		want   string
	}{
		{"schema version", func(f *File) { f.Schema = 99 }, "unsupported schema"},
		{"empty tag", func(f *File) { f.Tag = "" }, "empty tag"},
		{"bad mode", func(f *File) { f.Mode = "fast" }, "bad mode"},
		{"no scenarios", func(f *File) { f.Scenarios = nil }, "no scenarios"},
		{"unsorted", func(f *File) { f.Scenarios[0].Name = "z" }, "not sorted"},
		{"duplicate", func(f *File) { f.Scenarios[1].Name = "a" }, "duplicate scenario"},
		{"zero reps", func(f *File) { f.Scenarios[0].Reps = 0 }, "reps 0"},
		{"wall count", func(f *File) { f.Scenarios[0].WallNs = f.Scenarios[0].WallNs[:2] }, "wall samples"},
		{"negative wall", func(f *File) { f.Scenarios[0].WallNs[0] = -1 }, "negative wall"},
		{"stale median", func(f *File) { f.Scenarios[0].MedianWallNs = 999 }, "does not match"},
		{"negative allocs", func(f *File) { f.Scenarios[0].Allocs = -1 }, "negative allocs"},
		{"nil counters", func(f *File) { f.Scenarios[0].Counters = nil }, "missing counters"},
		{"negative counter", func(f *File) { f.Scenarios[0].Counters["search_nodes"] = -1 }, "negative"},
		{"partial par record", func(f *File) { f.Scenarios[0].ParWorkers = 8 }, "partial parallel-speedup"},
		{"par speedup missing", func(f *File) {
			f.Scenarios[0].ParWorkers = 8
			f.Scenarios[0].ParSerialNs = 100
			f.Scenarios[0].ParParallelNs = 25
		}, "partial parallel-speedup"},
	}
	for _, tc := range cases {
		f := validFile()
		tc.mutate(f)
		err := Validate(f)
		if err == nil {
			t.Errorf("%s: mutation accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRoundTripSelfDiff is the core schema contract: encode → decode →
// diff-against-self must be a no-op diff (zero regressions, zero
// improvements, zero noise).
func TestRoundTripSelfDiff(t *testing.T) {
	f := validFile()
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	res, err := Diff(f, got, DefaultThresholds())
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if res.TimeRegressions != 0 || res.CounterRegressions != 0 || res.Improvements != 0 ||
		res.Noise != 0 || res.MissingScenarios != 0 {
		t.Fatalf("self-diff not a no-op: %+v", res)
	}
	for _, sd := range res.Scenarios {
		if sd.Wall.Verdict != VerdictOK || sd.Allocs.Verdict != VerdictOK || sd.Bytes.Verdict != VerdictOK {
			t.Fatalf("scenario %s self-diff verdicts: %+v", sd.Name, sd)
		}
		if len(sd.Counters) != 0 {
			t.Fatalf("scenario %s self-diff counter diffs: %+v", sd.Name, sd.Counters)
		}
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	f := validFile()
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(buf.String(), `"schema": 1`, `"schema": 1, "surprise": true`, 1)
	if _, err := Read(strings.NewReader(doctored)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	f := validFile()
	f.Scenarios[0].MedianWallNs = 12345
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("Write accepted a file with a stale median")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 1, 3, 2}, 2}, // (2+3)/2 integer division
		{[]int64{10, 10, 10, 10}, 10},
	}
	for _, tc := range cases {
		if got := median(tc.in); got != tc.want {
			t.Errorf("median(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRunGridW exercises the real suite machinery on the cheapest
// scenario: two reps of quick-mode grid-w, validated output, stable
// counters, and a full file round trip through WriteFile/ReadFile.
func TestRunGridW(t *testing.T) {
	f, err := Run(Options{Tag: "test", Quick: true, Reps: 2, Scenarios: []string{"grid-w"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(f.Scenarios) != 1 || f.Scenarios[0].Name != "grid-w" {
		t.Fatalf("scenario filter: got %+v", f.Scenarios)
	}
	sc := f.Scenarios[0]
	if sc.Reps != 2 || len(sc.WallNs) != 2 {
		t.Fatalf("reps: %+v", sc)
	}
	if sc.Counters["refine_calls"] == 0 {
		t.Fatalf("no refinement effort recorded: %v", sc.Counters)
	}
	if len(sc.PhasesNs) == 0 {
		t.Fatal("no phase totals recorded")
	}

	path := t.TempDir() + "/BENCH_test.json"
	if err := WriteFile(path, f); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	res, err := Diff(f, got, DefaultThresholds())
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if res.TimeRegressions != 0 || res.CounterRegressions != 0 {
		t.Fatalf("round-trip self-diff found regressions: %+v", res)
	}
}

// TestRunDeterministicCounters runs the same scenario twice and checks
// the recorded counters agree — the property benchdiff's hard counter
// gate rests on.
func TestRunDeterministicCounters(t *testing.T) {
	opts := Options{Tag: "det", Quick: true, Reps: 1, Scenarios: []string{"grid-w"}}
	f1, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := f1.Scenarios[0].Counters, f2.Scenarios[0].Counters
	if len(c1) != len(c2) {
		t.Fatalf("counter key sets differ: %d vs %d", len(c1), len(c2))
	}
	for name, v := range c1 {
		if c2[name] != v {
			t.Errorf("counter %s: %d vs %d", name, v, c2[name])
		}
	}
}

func TestStableCountersDropsVarying(t *testing.T) {
	r1, r2 := obs.New(), obs.New()
	r1.Add(obs.SearchNodes, 10)
	r2.Add(obs.SearchNodes, 10)
	r1.Add(obs.WorkerSpawns, 3)
	r2.Add(obs.WorkerSpawns, 5) // scheduler-dependent: must be dropped
	counters, dropped := stableCounters([]obs.Snapshot{r1.Snapshot(), r2.Snapshot()})
	if counters["search_nodes"] != 10 {
		t.Fatalf("stable counter lost: %v", counters)
	}
	if _, ok := counters["worker_spawns"]; ok {
		t.Fatal("varying counter kept")
	}
	if len(dropped) != 1 || dropped[0] != "worker_spawns" {
		t.Fatalf("dropped = %v", dropped)
	}
}

func TestScenarioNames(t *testing.T) {
	names := ScenarioNames()
	want := []string{"cfi", "grid-w", "had", "mz-aug", "par-cfi", "par-forest", "pg2", "social-ingest", "symq"}
	if len(names) != len(want) {
		t.Fatalf("suite = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("suite = %v, want %v", names, want)
		}
	}
}
