// Package store persists a certificate index: the durable substrate under
// dvicl.GraphIndex and the indexd daemon.
//
// The on-disk state of an index directory is two files:
//
//	index.snap — a point-in-time snapshot of the whole certificate list
//	index.wal  — an append-only write-ahead log of Adds since the snapshot
//
// Both are versioned, checksummed binary formats (see the format comments
// below). The recovery contract is:
//
//   - A snapshot must verify end to end — magic, version, record framing
//     and the trailing CRC — or loading fails with a typed error
//     (ErrBadMagic, *VersionError, ErrChecksum, ErrTruncated). A snapshot
//     is written to a temporary file and atomically renamed into place, so
//     a crash during compaction never corrupts the previous snapshot.
//
//   - A WAL may legitimately end mid-record after a crash (the torn tail
//     of the write in flight at kill -9). Open truncates a torn tail and
//     reports the dropped byte count in Result.TornBytes — recovery is
//     explicit, never silent. Any *complete* record whose checksum fails,
//     and any out-of-order sequence number, is corruption and fails the
//     load with ErrChecksum / ErrOutOfOrder: partial state is never
//     returned.
//
// Every WAL record carries the sequence number (= certificate id) it
// appends, so replay is idempotent across the compaction window: if a
// crash lands between "snapshot renamed" and "WAL reset", the stale WAL
// records are recognized as already covered by the snapshot and skipped.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// File names inside an index directory.
const (
	SnapshotName = "index.snap"
	WALName      = "index.wal"
)

// Format constants. Snapshot and WAL carry distinct magics so a
// misconfigured path fails loudly instead of decoding garbage.
const (
	snapMagic = "DVIS"
	walMagic  = "DVIW"
	// Version is the current on-disk format version of both files.
	Version uint16 = 1
	// maxRecordLen caps a single certificate's encoded size; a length
	// field beyond it is treated as corruption rather than attempted as
	// an allocation.
	maxRecordLen = 1 << 28
)

// Typed load errors. Callers match them with errors.Is / errors.As; every
// failure path returns one of these wrapped with file context — loading
// never panics and never returns partial state.
var (
	// ErrBadMagic: the file does not start with the expected magic bytes.
	ErrBadMagic = errors.New("store: bad magic")
	// ErrChecksum: a complete snapshot or WAL record fails CRC32
	// verification, or carries an implausible length field.
	ErrChecksum = errors.New("store: checksum mismatch")
	// ErrTruncated: the file ends in the middle of a header or record
	// where the format requires more bytes (strict readers only; Open
	// recovers a torn WAL tail instead).
	ErrTruncated = errors.New("store: truncated file")
	// ErrOutOfOrder: a WAL record's sequence number is neither covered by
	// the snapshot nor the next expected id.
	ErrOutOfOrder = errors.New("store: WAL sequence out of order")
	// ErrClosed: the store has been closed.
	ErrClosed = errors.New("store: closed")
)

// VersionError reports an on-disk format version this build cannot read.
type VersionError struct {
	File string
	Got  uint16
	Want uint16
}

// Error implements the error interface.
func (e *VersionError) Error() string {
	return fmt.Sprintf("store: %s: format version %d, this build reads %d", e.File, e.Got, e.Want)
}

// Options configures a Store.
type Options struct {
	// Sync fsyncs the WAL after every Append. Off, durability of the tail
	// is bounded by the OS page-cache flush interval; on, every
	// acknowledged Add survives power loss at the cost of one fsync per
	// write.
	Sync bool
}

// Result describes what Open loaded.
type Result struct {
	// Certs is the recovered certificate list, id-ordered: snapshot
	// contents followed by replayed WAL appends.
	Certs []string
	// SnapshotCerts is how many of Certs came from the snapshot.
	SnapshotCerts int
	// WALReplayed is how many WAL records extended the snapshot (stale
	// records already covered by the snapshot are not counted).
	WALReplayed int
	// TornBytes is the size of the torn WAL tail dropped during crash
	// recovery (0 on a clean shutdown).
	TornBytes int64
}

// Store is the durable backend of one index directory: a loaded snapshot
// plus an open WAL accepting appends. Methods are not themselves
// synchronized — dvicl.GraphIndex serializes access under its own lock so
// WAL order always matches id order.
type Store struct {
	dir    string
	opt    Options
	wal    *os.File
	walBuf []byte // scratch for record framing
	// nextSeq is the sequence number the next Append writes (= the id the
	// index will assign). sinceSnap counts appends since the last snapshot
	// (compaction pressure).
	nextSeq   uint64
	sinceSnap int
	closed    bool
}

// Open loads (or creates) the index directory and returns the store plus
// what it recovered. See the package comment for the recovery contract.
func Open(dir string, opt Options) (*Store, *Result, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	res := &Result{}
	certs, err := ReadSnapshotFile(filepath.Join(dir, SnapshotName))
	switch {
	case err == nil:
		res.Certs = certs
		res.SnapshotCerts = len(certs)
	case errors.Is(err, os.ErrNotExist):
		// Fresh directory (or WAL-only): start empty.
	default:
		return nil, nil, err
	}

	wal, err := os.OpenFile(filepath.Join(dir, WALName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{dir: dir, opt: opt, wal: wal}
	if err := s.replayWAL(res); err != nil {
		wal.Close()
		return nil, nil, err
	}
	s.nextSeq = uint64(len(res.Certs))
	s.sinceSnap = res.WALReplayed
	return s, res, nil
}

// replayWAL reads the open WAL into res, recovering a torn tail by
// truncating it. The file offset is left at the end for appends.
func (s *Store) replayWAL(res *Result) error {
	info, err := s.wal.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	if size == 0 {
		// New WAL: stamp the header.
		return s.writeWALHeader()
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReader(s.wal)
	if err := readWALHeader(br); err != nil {
		if errors.Is(err, ErrTruncated) {
			// Crash while creating the WAL: no records can exist yet.
			res.TornBytes = size
			return s.resetWAL()
		}
		return fmt.Errorf("%s: %w", WALName, err)
	}
	good := int64(walHeaderLen) // end offset of the last intact record
	next := uint64(len(res.Certs))
	snapCount := uint64(res.SnapshotCerts)
	for {
		seq, cert, n, err := readWALRecord(br)
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrTruncated) {
			// Torn tail: drop it, keep everything before.
			res.TornBytes = size - good
			break
		}
		if err != nil {
			return fmt.Errorf("%s@%d: %w", WALName, good, err)
		}
		good += int64(n)
		switch {
		case seq < snapCount:
			// Already covered by the snapshot (crash landed between the
			// snapshot rename and the WAL reset). Skip.
		case seq == next:
			res.Certs = append(res.Certs, cert)
			res.WALReplayed++
			next++
		default:
			return fmt.Errorf("%s@%d: record seq %d, want %d: %w",
				WALName, good, seq, next, ErrOutOfOrder)
		}
	}
	if good < size {
		if err := s.wal.Truncate(good); err != nil {
			return err
		}
		if err := s.wal.Sync(); err != nil {
			return err
		}
	}
	_, err = s.wal.Seek(good, io.SeekStart)
	return err
}

// Append durably records one certificate and returns the sequence number
// (certificate id) it was assigned.
func (s *Store) Append(cert string) (uint64, error) {
	if s.closed {
		return 0, ErrClosed
	}
	seq := s.nextSeq
	rec := appendWALRecord(s.walBuf[:0], seq, cert)
	s.walBuf = rec[:0]
	if _, err := s.wal.Write(rec); err != nil {
		return 0, err
	}
	if s.opt.Sync {
		if err := s.wal.Sync(); err != nil {
			return 0, err
		}
	}
	s.nextSeq++
	s.sinceSnap++
	return seq, nil
}

// SinceSnapshot returns the number of WAL records not yet covered by a
// snapshot — the compaction pressure.
func (s *Store) SinceSnapshot() int { return s.sinceSnap }

// Compact atomically replaces the snapshot with certs (which must be the
// full current id-ordered certificate list) and resets the WAL. A crash at
// any point leaves the directory loadable: the snapshot rename is atomic,
// and stale WAL records are skipped on replay via their sequence numbers.
func (s *Store) Compact(certs []string) error {
	if s.closed {
		return ErrClosed
	}
	if err := writeSnapshotFile(s.dir, certs); err != nil {
		return err
	}
	if err := s.resetWAL(); err != nil {
		return err
	}
	s.nextSeq = uint64(len(certs))
	s.sinceSnap = 0
	return nil
}

// resetWAL truncates the WAL to a fresh header.
func (s *Store) resetWAL() error {
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return s.writeWALHeader()
}

func (s *Store) writeWALHeader() error {
	var hdr [walHeaderLen]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	if _, err := s.wal.Write(hdr[:]); err != nil {
		return err
	}
	return s.wal.Sync()
}

// Close syncs and closes the WAL. The store is unusable afterwards.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}

// ---- snapshot codec ----
//
// Layout (little-endian):
//
//	magic   "DVIS"                      4 bytes
//	version uint16 + reserved uint16    4 bytes
//	count   uint64                      8 bytes
//	count × { len uint32, bytes }       framed certificates
//	crc32   uint32 (IEEE, over everything above)

// writeSnapshotFile writes certs to dir/index.snap via a temporary file,
// fsync, and atomic rename.
func writeSnapshotFile(dir string, certs []string) (err error) {
	tmp, err := os.CreateTemp(dir, SnapshotName+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = WriteSnapshot(tmp, certs); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), filepath.Join(dir, SnapshotName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteSnapshot encodes certs in the snapshot format onto w.
func WriteSnapshot(w io.Writer, certs []string) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	var hdr [16]byte
	copy(hdr[:4], snapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(certs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var lenBuf [4]byte
	for _, c := range certs {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(c)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(c); err != nil {
			return err
		}
	}
	// Flush pushes every hashed byte through the MultiWriter before the
	// trailer is written directly to w (the trailer is not part of the
	// CRC'd region).
	if err := bw.Flush(); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	_, err := w.Write(sum[:])
	return err
}

// ReadSnapshotFile loads and fully verifies a snapshot file.
func ReadSnapshotFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	certs, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return certs, nil
}

// ReadSnapshot decodes and verifies a snapshot from r: magic, version,
// framing, and the trailing CRC must all check out, or a typed error is
// returned and no data is.
func ReadSnapshot(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	// read pulls exactly len(buf) bytes and folds them into the CRC, so
	// the hash covers precisely the consumed region regardless of bufio's
	// read-ahead.
	read := func(buf []byte) error {
		if _, err := io.ReadFull(br, buf); err != nil {
			return truncated(err)
		}
		crc.Write(buf)
		return nil
	}
	var hdr [16]byte
	if err := read(hdr[:]); err != nil {
		return nil, err
	}
	if string(hdr[:4]) != snapMagic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, &VersionError{File: SnapshotName, Got: v, Want: Version}
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	certs := make([]string, 0, int(min(count, 1<<20)))
	var lenBuf [4]byte
	for i := uint64(0); i < count; i++ {
		if err := read(lenBuf[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > maxRecordLen {
			return nil, fmt.Errorf("record %d: implausible length %d: %w", i, n, ErrChecksum)
		}
		buf := make([]byte, n)
		if err := read(buf); err != nil {
			return nil, err
		}
		certs = append(certs, string(buf))
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, truncated(err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc.Sum32() {
		return nil, ErrChecksum
	}
	return certs, nil
}

// ---- WAL codec ----
//
// File header (little-endian): magic "DVIW" (4) + version uint16 +
// reserved uint16. Then records:
//
//	len  uint32  — payload (certificate) length
//	seq  uint64  — certificate id this record appends
//	payload
//	crc  uint32  — CRC32-IEEE over len+seq+payload
const walHeaderLen = 8

// readWALHeader verifies the WAL file header.
func readWALHeader(br *bufio.Reader) error {
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return truncated(err)
	}
	if string(hdr[:4]) != walMagic {
		return ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return &VersionError{File: WALName, Got: v, Want: Version}
	}
	return nil
}

// appendWALRecord frames (seq, cert) onto buf and returns the extended
// slice.
func appendWALRecord(buf []byte, seq uint64, cert string) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cert)))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, cert...)
	sum := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// readWALRecord reads one record. It returns io.EOF cleanly at a record
// boundary, ErrTruncated when the stream ends mid-record, and ErrChecksum
// when a complete record fails verification. n is the encoded size.
func readWALRecord(br *bufio.Reader) (seq uint64, cert string, n int, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, "", 0, io.EOF
		}
		return 0, "", 0, truncated(err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length > maxRecordLen {
		return 0, "", 0, fmt.Errorf("implausible record length %d: %w", length, ErrChecksum)
	}
	seq = binary.LittleEndian.Uint64(hdr[4:12])
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, "", 0, truncated(err)
	}
	var sumBuf [4]byte
	if _, err := io.ReadFull(br, sumBuf[:]); err != nil {
		return 0, "", 0, truncated(err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if binary.LittleEndian.Uint32(sumBuf[:]) != crc.Sum32() {
		return 0, "", 0, ErrChecksum
	}
	return seq, string(payload), int(len(hdr)) + int(length) + 4, nil
}

// WALRecord is one decoded WAL entry (strict reader output).
type WALRecord struct {
	Seq  uint64
	Cert string
}

// ReadWAL is the strict WAL reader: the header and every record must be
// complete and verified, or a typed error is returned (ErrTruncated for a
// torn tail — unlike Open, which recovers it).
func ReadWAL(r io.Reader) ([]WALRecord, error) {
	br := bufio.NewReader(r)
	if err := readWALHeader(br); err != nil {
		return nil, err
	}
	var recs []WALRecord
	for {
		seq, cert, _, err := readWALRecord(br)
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, WALRecord{Seq: seq, Cert: cert})
	}
}

func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}
