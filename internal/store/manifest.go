package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Sharded index layout. A single-shard index keeps the original PR 2
// layout — index.snap and index.wal directly in the root directory, no
// manifest — so every pre-shard directory stays readable. A sharded index
// root instead holds a manifest plus one subdirectory per shard, each an
// independent snapshot+WAL pair:
//
//	index.manifest          {"version":1,"shards":16}
//	shard-000/index.snap
//	shard-000/index.wal
//	shard-001/…
//
// The manifest is the source of truth for the shard count: it is written
// once at creation (atomic tmp+rename, like snapshots) and never changes,
// so reopening with a different -shards flag adopts the on-disk count
// instead of sharding certificates inconsistently.

// ManifestName is the shard-layout manifest file inside an index root.
const ManifestName = "index.manifest"

// MaxShards bounds the shard count a manifest may declare; beyond it a
// manifest is treated as corrupt rather than obeyed.
const MaxShards = 4096

// Manifest describes a sharded index root. TreeStore records that the
// index was created with an AutoTree store (a trees/ subdirectory per
// shard); it is informational — the layout is self-describing, and the
// field is optional so pre-treestore manifests stay readable and older
// builds ignore it.
type Manifest struct {
	Version   uint16 `json:"version"`
	Shards    int    `json:"shards"`
	TreeStore bool   `json:"tree_store,omitempty"`
}

// ShardDir returns the subdirectory name of shard i ("shard-007").
func ShardDir(i int) string { return fmt.Sprintf("shard-%03d", i) }

// ReadManifest loads and validates dir's manifest. A missing manifest
// returns an error matching os.ErrNotExist (the single-shard layout).
func ReadManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("store: %s: %v: %w", ManifestName, err, ErrChecksum)
	}
	if m.Version != Version {
		return m, &VersionError{File: ManifestName, Got: m.Version, Want: Version}
	}
	if m.Shards < 1 || m.Shards > MaxShards {
		return m, fmt.Errorf("store: %s: implausible shard count %d: %w", ManifestName, m.Shards, ErrChecksum)
	}
	return m, nil
}

// WriteManifest creates dir's manifest via a temporary file, fsync, and
// atomic rename, so a crash mid-creation never leaves a torn manifest.
func WriteManifest(dir string, m Manifest) (err error) {
	if m.Shards < 1 || m.Shards > MaxShards {
		return fmt.Errorf("store: manifest shard count %d out of range [1,%d]", m.Shards, MaxShards)
	}
	if m.Version == 0 {
		m.Version = Version
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(append(data, '\n')); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}
