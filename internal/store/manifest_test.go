package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing manifest: %v", err)
	}
	if err := WriteManifest(dir, Manifest{Shards: 16}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 16 || m.Version != Version {
		t.Fatalf("manifest = %+v", m)
	}
}

func TestManifestCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ManifestName)
	for _, body := range []string{
		"not json",
		`{"version":1,"shards":0}`,
		`{"version":1,"shards":999999}`,
	} {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(dir); !errors.Is(err, ErrChecksum) {
			t.Fatalf("body %q: err = %v, want ErrChecksum", body, err)
		}
	}
	if err := os.WriteFile(path, []byte(`{"version":99,"shards":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var ve *VersionError
	if _, err := ReadManifest(dir); !errors.As(err, &ve) {
		t.Fatalf("future version: err = %v, want VersionError", err)
	}
}

func TestShardDir(t *testing.T) {
	if got := ShardDir(7); got != "shard-007" {
		t.Fatalf("ShardDir(7) = %q", got)
	}
	if got := ShardDir(123); got != "shard-123" {
		t.Fatalf("ShardDir(123) = %q", got)
	}
}
