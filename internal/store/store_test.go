package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testCerts(n int) []string {
	certs := make([]string, n)
	for i := range certs {
		certs[i] = strings.Repeat("c", i%7) + string(rune('a'+i%26)) + "cert"
	}
	return certs
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, certs := range [][]string{nil, {""}, {"a"}, testCerts(100)} {
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, certs); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(certs) {
			t.Fatalf("got %d certs, want %d", len(got), len(certs))
		}
		for i := range certs {
			if got[i] != certs[i] {
				t.Fatalf("cert %d: %q != %q", i, got[i], certs[i])
			}
		}
	}
}

func TestSnapshotCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, testCerts(20)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		copy(b, "NOPE")
		if _, err := ReadSnapshot(bytes.NewReader(b)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint16(b[4:6], Version+7)
		_, err := ReadSnapshot(bytes.NewReader(b))
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("err = %v, want *VersionError", err)
		}
		if ve.Got != Version+7 || ve.Want != Version {
			t.Fatalf("VersionError = %+v", ve)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(b)/2] ^= 0x40
		if _, err := ReadSnapshot(bytes.NewReader(b)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 10, len(good) / 2, len(good) - 1} {
			if _, err := ReadSnapshot(bytes.NewReader(good[:cut])); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := ReadSnapshot(bytes.NewReader(nil)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
}

// openAppend opens dir and appends certs, returning the store (caller
// closes unless simulating a crash).
func openAppend(t *testing.T, dir string, certs []string) *Store {
	t.Helper()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range certs {
		seq, err := s.Append(c)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.nextSeq - 1; seq != got {
			t.Fatalf("append %d: seq %d, nextSeq-1 %d", i, seq, got)
		}
	}
	return s
}

func reopen(t *testing.T, dir string) (*Store, *Result) {
	t.Helper()
	s, res, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

func wantCerts(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d certs, want %d\n got: %q\nwant: %q", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cert %d: %q != %q", i, got[i], want[i])
		}
	}
}

func TestStoreWALReload(t *testing.T) {
	dir := t.TempDir()
	certs := testCerts(50)
	s := openAppend(t, dir, certs)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, res := reopen(t, dir)
	defer s2.Close()
	wantCerts(t, res.Certs, certs)
	if res.SnapshotCerts != 0 || res.WALReplayed != 50 || res.TornBytes != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestStoreCompactAndReload(t *testing.T) {
	dir := t.TempDir()
	certs := testCerts(30)
	s := openAppend(t, dir, certs[:20])
	if err := s.Compact(certs[:20]); err != nil {
		t.Fatal(err)
	}
	if s.SinceSnapshot() != 0 {
		t.Fatalf("SinceSnapshot = %d after compact", s.SinceSnapshot())
	}
	for _, c := range certs[20:] {
		if _, err := s.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, res := reopen(t, dir)
	defer s2.Close()
	wantCerts(t, res.Certs, certs)
	if res.SnapshotCerts != 20 || res.WALReplayed != 10 {
		t.Fatalf("result = %+v", res)
	}
}

// TestStoreCrashNoClose simulates kill -9: the first store is never
// closed, yet a reopen of the same directory sees every acknowledged
// Append.
func TestStoreCrashNoClose(t *testing.T) {
	dir := t.TempDir()
	certs := testCerts(25)
	_ = openAppend(t, dir, certs) // never closed — "crashed"
	s2, res := reopen(t, dir)
	defer s2.Close()
	wantCerts(t, res.Certs, certs)
}

// TestStoreTornTail simulates a record half-written at crash time: the
// torn bytes are dropped and reported, everything before them survives.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	certs := testCerts(10)
	s := openAppend(t, dir, certs)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a partial record by hand.
	walPath := filepath.Join(dir, WALName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := appendWALRecord(nil, 10, "torn-away-cert")
	torn := full[:len(full)-5]
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, res := reopen(t, dir)
	wantCerts(t, res.Certs, certs)
	if res.TornBytes != int64(len(torn)) {
		t.Fatalf("TornBytes = %d, want %d", res.TornBytes, len(torn))
	}
	// The torn tail was truncated: appending and reloading works.
	if _, err := s2.Append("after-recovery"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, res3 := reopen(t, dir)
	defer s3.Close()
	wantCerts(t, res3.Certs, append(append([]string(nil), certs...), "after-recovery"))
}

// TestStoreWALChecksumCorruption: a bit flip inside a complete record must
// fail the load with ErrChecksum, not silently drop or truncate.
func TestStoreWALChecksumCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openAppend(t, dir, testCerts(10))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, WALName)
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	b[walHeaderLen+20] ^= 0x01 // inside an early record's payload/frame
	if err := os.WriteFile(walPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Open err = %v, want ErrChecksum", err)
	}
}

// TestStoreSnapshotVersionMismatch: a future-format snapshot must refuse
// to load with *VersionError.
func TestStoreSnapshotVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openAppend(t, dir, testCerts(5))
	if err := s.Compact(testCerts(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, SnapshotName)
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(b[4:6], Version+1)
	if err := os.WriteFile(snapPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("Open err = %v, want *VersionError", err)
	}
}

// TestStoreStaleWALAfterCompactCrash covers the compaction window: the
// snapshot has been renamed into place but the WAL still holds the old
// records. Replay must skip them (idempotent by sequence number).
func TestStoreStaleWALAfterCompactCrash(t *testing.T) {
	dir := t.TempDir()
	certs := testCerts(15)
	s := openAppend(t, dir, certs)
	// Write the snapshot but "crash" before resetWAL.
	if err := writeSnapshotFile(dir, certs); err != nil {
		t.Fatal(err)
	}
	_ = s // never closed

	s2, res := reopen(t, dir)
	defer s2.Close()
	wantCerts(t, res.Certs, certs)
	if res.SnapshotCerts != 15 || res.WALReplayed != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestReadWALStrict(t *testing.T) {
	dir := t.TempDir()
	s := openAppend(t, dir, []string{"x", "y", "z"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, WALName))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadWAL(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Seq != 2 || recs[2].Cert != "z" {
		t.Fatalf("recs = %+v", recs)
	}
	// Strict reader: a truncated WAL is a typed error, never partial data.
	if _, err := ReadWAL(bytes.NewReader(b[:len(b)-3])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// Bad file magic.
	bad := append([]byte(nil), b...)
	copy(bad, "JUNK")
	if _, err := ReadWAL(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	s := openAppend(t, t.TempDir(), []string{"a"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("b"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := s.Compact(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
