package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(25)
		g := randGraph(r, n, 2)
		tree := Build(g, nil, Options{})

		var buf bytes.Buffer
		if err := tree.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf, g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(loaded.CanonicalCert(), tree.CanonicalCert()) {
			t.Fatal("certificate changed across save/load")
		}
		if !loaded.Gamma.Equal(tree.Gamma) {
			t.Fatal("Gamma changed")
		}
		if loaded.Stats() != tree.Stats() {
			t.Fatalf("stats changed: %+v vs %+v", loaded.Stats(), tree.Stats())
		}
		if loaded.AutOrder().Cmp(tree.AutOrder()) != 0 {
			t.Fatal("AutOrder changed")
		}
		if err := loaded.Verify(); err != nil {
			t.Fatal(err)
		}
		// Orbits survive (generators round-tripped).
		a, b := tree.OrbitStats()
		c, d := loaded.OrbitStats()
		if a != c || b != d {
			t.Fatal("orbit stats changed")
		}
	}
}

func TestLoadedTreeAnswersSSMQueries(t *testing.T) {
	// Leaf graphs and generators must survive so SSM keeps working. Use a
	// graph guaranteed to have a non-singleton leaf (a cycle).
	g := cycle(9)
	tree := Build(g, nil, Options{})
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	leaf := loaded.LeafOf(0)
	if leaf.Kind == KindLeaf && leaf.LeafGraph() == nil {
		t.Fatal("leaf graph lost")
	}
	if len(loaded.Generators()) != len(tree.Generators()) {
		t.Fatal("generators lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	g := cycle(4)
	if _, err := Load(strings.NewReader("not a tree"), g); err == nil {
		t.Fatal("garbage accepted")
	}
	// Wrong graph.
	tree := Build(g, nil, Options{})
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := cycle(5)
	if _, err := Load(&buf, other); err == nil {
		t.Fatal("mismatched graph accepted")
	}
}

func TestLoadRejectsTruncatedStream(t *testing.T) {
	g := cycle(6)
	tree := Build(g, nil, Options{})
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{9, len(data) / 2, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:cut]), g); err == nil {
			t.Fatalf("truncated stream (cut=%d) accepted", cut)
		}
	}
}
