package core

import (
	"sort"

	"dvicl/internal/engine"
	"dvicl/internal/obs"
)

// buildSimplified implements the structural-equivalence optimization of
// Section 6.1: vertices with identical neighbor sets (twins) are
// interchangeable, so each twin class is collapsed to one representative
// before dividing, and the finished tree is expanded by duplicating the
// representative's singleton leaf.
//
// We collapse a twin class only when it coincides with an entire color
// class of the equitable coloring. In that case the representative's
// projected cell is a singleton everywhere, so DivideI isolates it into a
// singleton leaf and expansion is exactly the paper's "add sibling leaf
// nodes" case. Twin classes that share a color class with other vertices
// are left to the regular machinery (DivideS isolates them anyway, since
// for an equitable coloring a twin class's neighborhood is a union of
// whole cells, i.e. removable bicliques).
func (b *builder) buildSimplified(wk *worker, ts *obs.TraceSpan) (*Node, error) {
	n := b.t.g.N()
	twinSpan := b.tr.StartSpan(ts, "twins")
	detectSpan := b.opt.Obs.StartPhase(obs.PhaseTwins)
	twinsOf := b.wholeClassTwins()
	detectSpan.End()
	twinSpan.End()
	mark := wk.ws.Arena.Mark()
	defer wk.ws.Arena.Release(mark)
	if len(twinsOf) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return b.cl(b.subgraphOf(all, wk), wk, ts)
	}
	removed := make([]bool, n)
	var collapsed int64
	for _, twins := range twinsOf {
		collapsed += int64(len(twins))
		for _, v := range twins {
			removed[v] = true
		}
	}
	b.opt.Obs.Add(obs.TwinVertsCollapsed, collapsed)
	twinSpan.SetAttr("collapsed", collapsed)
	var kept []int
	for v := 0; v < n; v++ {
		if !removed[v] {
			kept = append(kept, v)
		}
	}
	root, err := b.cl(b.subgraphOf(kept, wk), wk, ts)
	if err != nil {
		return nil, err
	}
	expandTrSpan := b.tr.StartSpan(ts, "twins_expand")
	expandSpan := b.opt.Obs.StartPhase(obs.PhaseTwins)
	expanded, err := b.expandTwins(root, twinsOf, wk)
	expandSpan.End()
	expandTrSpan.End()
	if err != nil {
		return nil, err
	}
	if len(expanded) == 1 {
		return expanded[0], nil
	}
	// The simplified graph degenerated to a single twin representative:
	// wrap the expanded siblings in a fresh internal node, mirroring what
	// DivideI on the unsimplified graph would have produced.
	wrapper := wk.slab.node()
	wrapper.Kind = KindInternal
	wrapper.Divide = DividedI
	d := newDescriptor(wk.ws, DividedI)
	wrapper.desc = wk.slab.bytesCopy(d.buf)
	wk.ws.Bytes = d.buf[:0]
	wrapper.Children = expanded
	b.combineST(wrapper, wk)
	return wrapper, nil
}

// wholeClassTwins finds every color class whose members are pairwise
// structural equivalent, returning representative -> other members.
func (b *builder) wholeClassTwins() map[int][]int {
	n := b.t.g.N()
	classes := map[int][]int{}
	for v := 0; v < n; v++ {
		c := b.t.colors[v]
		classes[c] = append(classes[c], v)
	}
	out := map[int][]int{}
	for _, members := range classes {
		if len(members) < 2 {
			continue
		}
		sort.Ints(members)
		rep := members[0]
		repNb := b.t.g.NeighborSlice(rep)
		allTwins := true
		for _, v := range members[1:] {
			if !sameNeighbors(repNb, b.t.g.NeighborSlice(v)) {
				allTwins = false
				break
			}
		}
		if allTwins {
			out[rep] = members[1:]
		}
	}
	return out
}

func sameNeighbors(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// expandTwins restores collapsed twin classes: a singleton leaf holding a
// representative becomes that leaf plus one sibling singleton leaf per
// twin; internal nodes re-run CombineST over the widened child list so
// Verts, γg and certificates stay consistent.
func (b *builder) expandTwins(nd *Node, twinsOf map[int][]int, wk *worker) ([]*Node, error) {
	switch nd.Kind {
	case KindSingleton:
		twins, ok := twinsOf[nd.Verts[0]]
		if !ok {
			return []*Node{nd}, nil
		}
		out := []*Node{nd}
		for _, v := range twins {
			leaf := wk.slab.node()
			verts := wk.slab.intSlice(1)
			verts[0] = v
			leaf.Verts = verts
			b.makeSingleton(leaf, wk)
			out = append(out, leaf)
		}
		return out, nil
	case KindLeaf:
		// A collapsed representative's cell is a singleton in every
		// subgraph, so it can never sit inside a non-singleton leaf.
		for _, v := range nd.Verts {
			if _, ok := twinsOf[v]; ok {
				return nil, engine.Internalf("core.expandTwins",
					"twin representative %d inside a non-singleton leaf", v)
			}
		}
		return []*Node{nd}, nil
	default:
		var children []*Node
		for _, c := range nd.Children {
			sub, err := b.expandTwins(c, twinsOf, wk)
			if err != nil {
				return nil, err
			}
			children = append(children, sub...)
		}
		nd.Children = children
		// Re-run CombineST unconditionally: any expansion in the subtree
		// changed child certificates, so the sort, γg and certificate must
		// be recomputed.
		b.combineST(nd, wk)
		return []*Node{nd}, nil
	}
}
