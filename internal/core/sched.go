package core

import (
	"sync"

	"dvicl/internal/engine"
	"dvicl/internal/obs"
)

// sched is the per-build work-stealing scheduler: Workers goroutines are
// started once per BuildCtx (the caller's goroutine is worker 0, so
// Workers-1 are spawned), each owning a long-lived worker{ws, slab} pair
// — workspaces are checked out of the engine pool once per worker, not
// once per divided child as the old token-bucket fan-out did.
//
// Every worker owns one deque. buildChildren pushes its divided children
// onto the pushing worker's own deque; the owner pops from the tail
// (LIFO — the child it just divided is hot in cache and its arena frame
// is the deepest one open) while idle workers steal from the head (FIFO
// — the oldest task is the widest subtree, so a thief gets the most
// work per steal). Deep chains of binary divides therefore keep every
// core busy: each divide leaves one child on the deque for a thief while
// the owner descends into the other.
//
// All scheduler state is guarded by one mutex. That is deliberate: tasks
// are whole-subtree builds (milliseconds to seconds), so the lock is
// uncontended in practice, and the mutex gives the exact happens-before
// edges the tree assembly needs — a task's writes (its *Node, everything
// reachable from it, and everything it read out of the parent's arena
// frame) happen before the joiner's read because finish releases and
// joinWait acquires the same lock.
//
// Determinism: tasks carry their result slot (nodes[i] in
// buildChildren), so no matter which worker runs a task or in what
// order, every child lands at its divide-order index, and combineST's
// stable certificate sort sees the identical input it would have seen
// sequentially. Scheduling only moves work between cores; it never
// reorders the tree.
type sched struct {
	rec *obs.Recorder

	mu   sync.Mutex
	cond *sync.Cond
	// deques[id] is worker id's deque. Owner pushes and pops at the tail,
	// thieves take from the head.
	deques [][]func(*worker)
	// stopped tells the spawned workers to exit once the deques drain.
	stopped bool
	// failed latches the first error any task returned. Later tasks
	// observe it and skip their build entirely, so a canceled or
	// over-budget build unwinds without paying for queued subtrees.
	failed error

	// Scheduling-effort tallies, flushed to rec as obs.SchedSteals /
	// obs.SchedDequeHighWater when the pool stops.
	steals    int64
	highWater int64

	wg sync.WaitGroup
}

// join tracks one buildChildren (or parallel-sort) barrier: remaining
// counts unfinished tasks, err holds the first error among them. Both
// fields are guarded by the scheduler mutex.
type join struct {
	remaining int
	err       error
}

func newSched(workers int, rec *obs.Recorder) *sched {
	s := &sched{rec: rec, deques: make([][]func(*worker), workers)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// start launches the spawned workers (ids 1..workers-1; the build
// goroutine itself is worker 0). n is the global vertex count — every
// workspace must be sized by it, since LocalIdx is indexed by original
// vertex ids and ColorCount/Gamma by global colors.
func (s *sched) start(n int) {
	for id := 1; id < len(s.deques); id++ {
		s.wg.Add(1)
		go func(id int) {
			defer s.wg.Done()
			wk := &worker{id: id, ws: engine.GetWorkspace(n)}
			defer engine.PutWorkspace(wk.ws)
			s.workerLoop(wk)
		}(id)
	}
}

// stop shuts the pool down and flushes the scheduling counters. It must
// only be called after the root build has returned: at that point every
// join has completed, so the deques are empty and the workers are idle.
func (s *sched) stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	steals, hw := s.steals, s.highWater
	s.mu.Unlock()
	s.wg.Wait()
	s.rec.Add(obs.SchedSteals, steals)
	s.rec.Add(obs.SchedDequeHighWater, hw)
}

// workerLoop is a spawned worker's life: run tasks until stopped.
func (s *sched) workerLoop(wk *worker) {
	s.mu.Lock()
	for {
		if t, ok := s.nextLocked(wk.id); ok {
			s.mu.Unlock()
			s.runTask(t, wk)
			s.mu.Lock()
			continue
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		s.cond.Wait()
	}
}

// runTask executes t, timing the outermost task on this worker as
// PhaseWorkerBusy. Tasks nest — a task's own joinWait helps run other
// tasks — and only the outermost span is recorded, so a worker's busy
// total never double-counts and the per-worker utilization reads
// directly as busy/wall.
func (s *sched) runTask(t func(*worker), wk *worker) {
	if wk.busy {
		t(wk)
		return
	}
	wk.busy = true
	span := s.rec.StartPhase(obs.PhaseWorkerBusy)
	t(wk)
	span.End()
	wk.busy = false
}

// nextLocked returns the next task for worker id: its own newest task
// (tail pop), else the oldest task of the first non-empty deque after it
// (head steal). Caller holds s.mu.
func (s *sched) nextLocked(id int) (func(*worker), bool) {
	if dq := s.deques[id]; len(dq) > 0 {
		t := dq[len(dq)-1]
		dq[len(dq)-1] = nil
		s.deques[id] = dq[:len(dq)-1]
		return t, true
	}
	for off := 1; off < len(s.deques); off++ {
		victim := (id + off) % len(s.deques)
		dq := s.deques[victim]
		if len(dq) == 0 {
			continue
		}
		t := dq[0]
		// Shift rather than re-slice so the backing array keeps being
		// reused by the owner's tail pushes.
		copy(dq, dq[1:])
		dq[len(dq)-1] = nil
		s.deques[victim] = dq[:len(dq)-1]
		s.steals++
		return t, true
	}
	return nil, false
}

// push appends tasks to wk's own deque and wakes idle workers.
func (s *sched) push(wk *worker, tasks []func(*worker)) {
	s.mu.Lock()
	s.deques[wk.id] = append(s.deques[wk.id], tasks...)
	if d := int64(len(s.deques[wk.id])); d > s.highWater {
		s.highWater = d
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// abortErr returns the latched first error, if any build task failed.
func (s *sched) abortErr() error {
	s.mu.Lock()
	err := s.failed
	s.mu.Unlock()
	return err
}

// finish marks one task of jn done. A non-nil err latches into both the
// join (so the joiner unwinds with it) and the scheduler (so tasks not
// yet started skip their builds).
func (s *sched) finish(jn *join, err error) {
	s.mu.Lock()
	if err != nil {
		if jn.err == nil {
			jn.err = err
		}
		if s.failed == nil {
			s.failed = err
		}
	}
	jn.remaining--
	if jn.remaining == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// joinWait blocks worker wk until every task of jn has finished,
// helping: while the join is open it keeps executing tasks (its own
// first, then steals), so a worker waiting on its children is never
// idle while any work exists, and a deep chain of nested joins cannot
// deadlock — the tasks a join waits on are always runnable by the
// waiter itself. Nested task execution preserves the arena's LIFO frame
// discipline: a helped task runs to completion (its frames fully pushed
// and popped) before the waiter's own frame is touched again.
func (s *sched) joinWait(jn *join, wk *worker) error {
	s.mu.Lock()
	for jn.remaining > 0 {
		if t, ok := s.nextLocked(wk.id); ok {
			s.mu.Unlock()
			s.runTask(t, wk)
			s.mu.Lock()
			continue
		}
		s.cond.Wait()
	}
	err := jn.err
	s.mu.Unlock()
	return err
}
