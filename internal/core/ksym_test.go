package core

import (
	"math/rand"
	"testing"

	"dvicl/internal/graph"
)

// minOrbitSize rebuilds the AutoTree of g and returns the smallest orbit.
func minOrbitSize(t *testing.T, g *graph.Graph) int {
	t.Helper()
	tree := Build(g, nil, Options{})
	min := g.N()
	for _, o := range tree.Orbits() {
		if len(o) < min {
			min = len(o)
		}
	}
	return min
}

func TestKSymmetrizeRigidPath(t *testing.T) {
	// A path P5: center fixed, ends/inner mirrored. k=3 must give every
	// vertex at least 2 counterparts.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	tree := Build(g, nil, Options{})
	for _, k := range []int{2, 3, 5} {
		out, err := KSymmetrize(tree, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := minOrbitSize(t, out); got < k {
			t.Fatalf("k=%d: min orbit %d", k, got)
		}
		// Anonymization must not delete anything: the original is an
		// induced subgraph on vertices 0..n-1.
		for _, e := range g.Edges() {
			if !out.HasEdge(e[0], e[1]) {
				t.Fatalf("k=%d: original edge (%d,%d) lost", k, e[0], e[1])
			}
		}
	}
}

func TestKSymmetrizeRandom(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		n := 5 + r.Intn(12)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(3) == 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := graph.FromEdges(n, edges)
		tree := Build(g, nil, Options{})
		if tree.Root.Kind != KindInternal || tree.Root.Divide != DividedI {
			continue // regular graph: out of scope by contract
		}
		k := 2 + r.Intn(3)
		out, err := KSymmetrize(tree, k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := minOrbitSize(t, out); got < k {
			t.Fatalf("trial %d: k=%d min orbit %d (edges=%v)", trial, k, got, g.Edges())
		}
	}
}

func TestKSymmetrizeKOne(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	tree := Build(g, nil, Options{})
	out, err := KSymmetrize(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(g) {
		t.Fatal("k=1 must be a no-op")
	}
}

func TestKSymmetrizeRejectsRegular(t *testing.T) {
	g := cycle(6) // vertex-transitive: unit root, no DivideI
	tree := Build(g, nil, Options{})
	if _, err := KSymmetrize(tree, 2); err == nil {
		t.Fatal("expected error on a regular graph")
	}
}
