// Package core implements DviCL, the divide-and-conquer canonical-labeling
// algorithm of the paper (Algorithm 1), and the AutoTree index it builds.
//
// DviCL refines the input coloring to an equitable one (Weisfeiler–Lehman),
// then recursively divides the graph with DivideI (isolate singleton cells,
// Algorithm 2) and DivideS (drop color-complete cliques and bicliques,
// Algorithm 3), and combines canonical labelings bottom-up with CombineCL
// (Algorithm 4, delegating non-singleton leaves to an individualization–
// refinement labeler) and CombineST (Algorithm 5). The resulting AutoTree
// preserves the automorphism group of (G, π): each node carries a
// certificate, equal-certificate siblings are symmetric subgraphs, and the
// root's labeling is the canonical labeling of G — the "k-th minimum Gᵞ"
// of Section 5.
package core

import (
	"context"
	"math/big"
	"sort"
	"time"

	"dvicl/internal/canon"
	"dvicl/internal/coloring"
	"dvicl/internal/engine"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
	"dvicl/internal/perm"
)

// Options configures DviCL.
type Options struct {
	// LeafPolicy selects the individualization–refinement engine used for
	// non-singleton leaves — the "X" in the paper's DviCL+X.
	LeafPolicy canon.Policy
	// Budget bounds the build: whole-build deadline and node cap (hard,
	// BuildCtx returns ErrBudgetExceeded) composed with per-leaf bounds
	// (soft, Tree.Truncated). The legacy LeafMaxNodes/LeafTimeout fields
	// below fill the corresponding Budget fields when those are zero.
	Budget engine.Budget
	// LeafMaxNodes bounds each leaf search (0 = unlimited).
	//
	// Deprecated: set Budget.LeafMaxNodes.
	LeafMaxNodes int64
	// LeafTimeout bounds each leaf search by wall clock (0 = unlimited) —
	// the per-leaf analogue of the paper's two-hour limit.
	//
	// Deprecated: set Budget.LeafTimeout.
	LeafTimeout time.Duration
	// DisableTwinSimplification turns off the structural-equivalence
	// preprocessing of Section 6.1. On by default because real graphs are
	// full of twins.
	DisableTwinSimplification bool
	// DisableDivideS turns off the clique/biclique division (Algorithm 3),
	// leaving DivideI only — an ablation knob for benchmarking the value
	// of DivideS. Results stay correct; trees just get coarser leaves.
	DisableDivideS bool
	// Workers enables parallel construction: the build starts a
	// persistent pool of Workers goroutines with work-stealing deques
	// (see sched.go), and subtrees of a divided node — which are fully
	// independent — run as pool tasks. 0 or 1 means sequential. The
	// resulting tree is byte-for-byte identical at every worker count.
	Workers int
	// Workspace, when non-nil, is the scratch workspace the build's
	// primary worker uses instead of drawing one from the engine pool —
	// callers that build in a tight loop (the bulk-ingest pipeline keeps
	// one checked out per pipeline worker) skip the pool round-trip per
	// Build. It is grown to the graph's size as needed, must not be
	// touched by the caller while the build runs, and is returned in its
	// documented between-uses state. Additional pool workers (Workers >
	// 1) still draw their own workspaces from the engine pool.
	Workspace *engine.Workspace
	// Obs, when non-nil, receives per-phase wall times (refine, twins,
	// divide, combine) and effort counters for the whole build, including
	// every leaf search's. A nil recorder costs one predictable branch
	// per instrumentation point.
	//
	// When the BuildCtx context carries an obs.Trace, the build records
	// into the trace's forwarding recorder instead, which both captures
	// the request's deltas and forwards to the trace's base recorder —
	// so indexd-style callers should create the trace over the same
	// recorder they would have passed here.
	Obs *obs.Recorder
}

// effectiveBudget folds the deprecated per-leaf knobs into the Budget.
func (o Options) effectiveBudget() engine.Budget {
	b := o.Budget
	if b.LeafMaxNodes == 0 {
		b.LeafMaxNodes = o.LeafMaxNodes
	}
	if b.LeafTimeout == 0 {
		b.LeafTimeout = o.LeafTimeout
	}
	return b
}

// NodeKind distinguishes the three node shapes of an AutoTree.
type NodeKind int

const (
	// KindSingleton is a one-vertex leaf.
	KindSingleton NodeKind = iota
	// KindLeaf is a non-singleton leaf: neither DivideI nor DivideS can
	// disconnect it, so CombineCL labels it with the leaf engine.
	KindLeaf
	// KindInternal is a divided node whose labeling CombineST assembles
	// from its children.
	KindInternal
)

// String names the node kind for dumps, logs and metric labels.
func (k NodeKind) String() string {
	switch k {
	case KindSingleton:
		return "singleton"
	case KindLeaf:
		return "leaf"
	case KindInternal:
		return "internal"
	}
	return "unknown"
}

// DivideKind records which division produced a node's children.
type DivideKind int

const (
	// DividedNone marks leaves.
	DividedNone DivideKind = iota
	// DividedI marks nodes divided by DivideI (singleton-cell axes).
	DividedI
	// DividedS marks nodes divided by DivideS (clique/biclique removal).
	DividedS
)

// String names the division for dumps, logs and metric labels.
func (k DivideKind) String() string {
	switch k {
	case DividedNone:
		return "none"
	case DividedI:
		return "I"
	case DividedS:
		return "S"
	}
	return "unknown"
}

// Node is an AutoTree node: a colored subgraph (g, πg) of (G, π) together
// with its canonical labeling and certificate.
type Node struct {
	// Verts lists the node's vertices (original ids of G), sorted.
	Verts []int
	// Kind is the node shape; Divide says how an internal node was split.
	Kind   NodeKind
	Divide DivideKind
	// Children are ordered by certificate (CombineST's sort); equal-
	// certificate runs of siblings are symmetric subgraphs of G.
	Children []*Node
	// Cert is the node's canonical certificate: equal certs among
	// siblings ⇔ symmetric subgraphs (Lemmas 6.7, 6.8).
	Cert []byte
	// gammaVal[i] is Verts[i]ᵞᵍ, the canonical label of Verts[i] within
	// this node: π(v) plus the rank among same-colored vertices of g.
	gammaVal []int
	// autOrder is |Aut(g, πg)| (nil until computed).
	autOrder *big.Int
	// desc is the removal descriptor of the division that produced the
	// children (see combine.go); retained so certificates can be
	// recomputed after twin expansion.
	desc []byte
	// localGens holds, for a non-singleton leaf, the automorphism
	// generators of (g, πg) over the node's local vertex order.
	localGens []perm.Perm
	// localGraph is the reduced local graph of a non-singleton leaf.
	localGraph *graph.Graph
	// leafNodes/leafLeaves/leafTruncated record the leaf engine's search
	// effort for a non-singleton leaf (canon.Result.Nodes/Leaves/
	// Truncated). They feed Stats and are not serialized: a loaded tree
	// reports zero effort, since no search ran to produce it.
	leafNodes     int64
	leafLeaves    int64
	leafTruncated bool
}

// Size returns the number of vertices of the node's subgraph.
func (nd *Node) Size() int { return len(nd.Verts) }

// CanonicalOrder returns the node's vertices ordered by their canonical
// label γg. Matching positions of this order between two equal-certificate
// siblings is the isomorphism γij of Section 5.
func (nd *Node) CanonicalOrder() []int { return vertsByGamma(nd) }

// LeafGraph returns the (reduced) local graph of a non-singleton leaf;
// local vertex i corresponds to Verts[i]. It is nil for other node kinds.
func (nd *Node) LeafGraph() *graph.Graph { return nd.localGraph }

// LeafGenerators returns the automorphism generators of a non-singleton
// leaf over its local vertex order (empty for other node kinds).
func (nd *Node) LeafGenerators() []perm.Perm { return nd.localGens }

// GammaOf returns vᵞᵍ for a vertex of the node (or -1 if v is not here).
func (nd *Node) GammaOf(v int) int {
	i := sort.SearchInts(nd.Verts, v)
	if i < len(nd.Verts) && nd.Verts[i] == v {
		return nd.gammaVal[i]
	}
	return -1
}

// Tree is the AutoTree 𝒜𝒯(G, π) produced by Build.
type Tree struct {
	// Root represents (G, π) itself.
	Root *Node
	// Gamma is the canonical labeling γ* of G: relabeling G by Gamma
	// yields the canonical form.
	Gamma perm.Perm
	// Truncated reports that some leaf search hit its node budget; the
	// labeling is then best-effort (the paper's timeout case).
	Truncated bool

	sparseGens []perm.Sparse

	g      *graph.Graph
	colors []int // global equitable colors π(v)
	leafOf []int // vertex -> index into leaves
	leaves []*Node
}

// Graph returns the graph the tree was built for.
func (t *Tree) Graph() *graph.Graph { return t.g }

// Generators materializes the automorphism generators of Aut(G, π) as
// dense permutations: within-leaf automorphisms plus sibling-swap
// isomorphisms between equal-certificate siblings. On large graphs prefer
// SparseGenerators — dense generators cost O(n) memory each.
func (t *Tree) Generators() []perm.Perm {
	out := make([]perm.Perm, len(t.sparseGens))
	for i, s := range t.sparseGens {
		out[i] = s.Dense()
	}
	return out
}

// SparseGenerators returns the generators by their moved points only.
func (t *Tree) SparseGenerators() []perm.Sparse { return t.sparseGens }

// Colors returns the global equitable coloring values π(v).
func (t *Tree) Colors() []int { return t.colors }

// LeafOf returns the leaf node containing vertex v.
func (t *Tree) LeafOf(v int) *Node { return t.leaves[t.leafOf[v]] }

// Build runs DviCL (Algorithm 1) on the colored graph (g, pi) and returns
// its AutoTree. pi may be nil for the unit coloring; it is not modified.
//
// Build cannot report errors, so it must not be used with a whole-build
// Budget (use BuildCtx); it panics if the budget is exceeded or an
// internal invariant breaks, preserving the pre-engine behavior for
// legacy callers whose builds are only leaf-bounded (soft truncation).
func Build(g *graph.Graph, pi *coloring.Coloring, opt Options) *Tree {
	t, err := BuildCtx(context.Background(), g, pi, opt)
	if err != nil {
		panic("core.Build: " + err.Error())
	}
	return t
}

// BuildCtx is Build under a context and the Options budget: cancellation
// and the whole-build deadline/node cap are polled at every tree node,
// every refinement round, and every ~64 leaf-search nodes, so a build on
// a pathological graph stops within milliseconds of ctx being canceled.
// It returns engine.ErrCanceled / engine.ErrBudgetExceeded (no partial
// tree — obs counters retain the partial effort), or an
// *engine.InternalError if a structural invariant breaks.
func BuildCtx(ctx context.Context, g *graph.Graph, pi *coloring.Coloring, opt Options) (*Tree, error) {
	n := g.N()
	if pi == nil {
		pi = coloring.Unit(n)
	} else {
		pi = pi.Clone()
	}
	budget := opt.effectiveBudget()
	ctl := engine.NewCtl(ctx, budget)
	ws := opt.Workspace
	if ws == nil {
		ws = engine.GetWorkspace(n)
		defer engine.PutWorkspace(ws)
	} else {
		ws.Grow(n)
	}
	// A trace on the context redirects observations into its forwarding
	// recorder: the request keeps its own deltas, the original opt.Obs
	// (the trace's base) still sees every increment exactly once.
	tr := obs.TraceFrom(ctx)
	if tr != nil {
		opt.Obs = tr.Recorder()
	}
	span := tr.StartSpan(obs.SpanFrom(ctx), "build")
	span.SetAttr("n", int64(n))
	span.SetAttr("m", int64(g.M()))
	defer span.End()
	buildSpan := opt.Obs.StartPhase(obs.PhaseBuild)
	defer buildSpan.End()
	// Line 1–2 of Algorithm 1: equitable refinement, then color values.
	rs := span.Child("refine")
	refineSpan := opt.Obs.StartPhase(obs.PhaseRefine)
	_, err := pi.RefineWS(g, nil, ws, ctl, opt.Obs)
	refineSpan.End()
	rs.End()
	if err != nil {
		return nil, err
	}
	colors := make([]int, n)
	for v := 0; v < n; v++ {
		colors[v] = pi.Color(v)
	}
	t := &Tree{g: g, colors: colors, leafOf: make([]int, n)}
	b := &builder{t: t, opt: opt, budget: budget, ctl: ctl, tr: tr}
	if opt.Workers > 1 {
		// The pool outlives the root build call by construction: stop()
		// runs after cl has returned, when every join has completed, so
		// the deques are empty and every spawned goroutine exits. A
		// canceled build stops just as promptly — pending tasks observe
		// the latched error and become no-ops.
		b.sched = newSched(opt.Workers, opt.Obs)
		b.sched.start(n)
		defer b.sched.stop()
	}

	// wk owns this goroutine's workspace and slab; the root subgraph's
	// arena frame spans the whole build and is released (restoring the
	// workspace's fully-released invariant) before ws goes back to the
	// pool.
	wk := &worker{ws: ws}
	var root *Node
	if !opt.DisableTwinSimplification {
		root, err = b.buildSimplified(wk, span)
	} else {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		mark := ws.Arena.Mark()
		root, err = b.cl(b.subgraphOf(all, wk), wk, span)
		ws.Arena.Release(mark)
	}
	if err != nil {
		return nil, err
	}
	t.Root = root

	t.Truncated = b.wasTruncated()
	if t.sparseGens, err = b.collectGens(t.Root); err != nil {
		return nil, err
	}
	if n > 0 {
		t.Gamma = make(perm.Perm, n)
		copy(t.Gamma, t.Root.gammaVal) // root Verts = 0..n-1 in order
	} else {
		t.Gamma = perm.Perm{}
	}
	t.indexLeaves()
	return t, nil
}

// indexLeaves records which leaf holds each vertex (used by SSM).
func (t *Tree) indexLeaves() {
	t.leaves = t.leaves[:0]
	var walk func(nd *Node)
	walk = func(nd *Node) {
		if len(nd.Children) == 0 {
			idx := len(t.leaves)
			t.leaves = append(t.leaves, nd)
			for _, v := range nd.Verts {
				t.leafOf[v] = idx
			}
			return
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	if t.Root != nil {
		walk(t.Root)
	}
}

// Stats summarizes the AutoTree structure — the columns of Tables 3 and 4 —
// plus the aggregate leaf-engine search effort (the paper's "search nodes"
// effort metric, summed over every non-singleton leaf).
type Stats struct {
	Nodes              int
	SingletonLeaves    int
	NonSingletonLeaves int
	AvgLeafSize        float64 // average size of non-singleton leaves
	Depth              int     // edges on the longest root-leaf path
	// LeafSearchNodes is the total number of search-tree nodes the leaf
	// engine visited across all non-singleton leaves.
	LeafSearchNodes int64
	// LeafSearchLeaves is the total number of discrete colorings the leaf
	// engine reached across all non-singleton leaves.
	LeafSearchLeaves int64
	// TruncatedLeaves counts non-singleton leaves whose search hit
	// LeafMaxNodes or LeafTimeout (labeling is then best-effort).
	TruncatedLeaves int
}

// Stats computes the Table 3/4 columns for the tree.
func (t *Tree) Stats() Stats {
	var s Stats
	var sizeSum int
	var walk func(nd *Node, depth int)
	walk = func(nd *Node, depth int) {
		s.Nodes++
		if depth > s.Depth {
			s.Depth = depth
		}
		if len(nd.Children) == 0 {
			if nd.Kind == KindSingleton {
				s.SingletonLeaves++
			} else {
				s.NonSingletonLeaves++
				sizeSum += nd.Size()
				s.LeafSearchNodes += nd.leafNodes
				s.LeafSearchLeaves += nd.leafLeaves
				if nd.leafTruncated {
					s.TruncatedLeaves++
				}
			}
			return
		}
		for _, c := range nd.Children {
			walk(c, depth+1)
		}
	}
	if t.Root != nil {
		walk(t.Root, 0)
	}
	if s.NonSingletonLeaves > 0 {
		s.AvgLeafSize = float64(sizeSum) / float64(s.NonSingletonLeaves)
	}
	return s
}

// CanonicalGraph returns the canonical form G^γ* itself: isomorphic
// graphs produce the identical labeled graph (the canonical
// representative C(G, π) of Section 2).
func (t *Tree) CanonicalGraph() *graph.Graph {
	return t.g.Permute(t.Gamma)
}

// CanonicalCert returns the exact certificate of the canonical form
// (G^γ*, π^γ*): the global cell sizes followed by the relabeled, sorted
// edge list. Two colored graphs are isomorphic iff their CanonicalCerts
// are equal (Theorem 6.9).
func (t *Tree) CanonicalCert() []byte {
	cellSizes := sizesFromColors(t.colors)
	return canon.EncodeCertificate(t.g, t.Gamma, cellSizes)
}

func sizesFromColors(colors []int) []int {
	counts := map[int]int{}
	for _, c := range colors {
		counts[c]++
	}
	var keys []int
	for c := range counts {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	sizes := make([]int, 0, len(keys))
	for _, c := range keys {
		sizes = append(sizes, counts[c])
	}
	return sizes
}
