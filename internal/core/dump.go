package core

import (
	"encoding/hex"
	"fmt"
	"io"
	"strings"
)

// Dump writes an indented rendering of the AutoTree — the textual
// counterpart of the paper's Figures 4, 7(b) and 8. Each line shows the
// node kind, its vertex set (elided beyond maxVerts vertices), a
// certificate prefix, and markers grouping equal-certificate siblings
// (the symmetric subtrees SSM exploits).
func (t *Tree) Dump(w io.Writer, maxVerts int) error {
	if t.Root == nil {
		_, err := fmt.Fprintln(w, "(empty tree)")
		return err
	}
	if maxVerts <= 0 {
		maxVerts = 8
	}
	return dumpNode(w, t.Root, 0, maxVerts)
}

func dumpNode(w io.Writer, nd *Node, depth, maxVerts int) error {
	indent := strings.Repeat("  ", depth)
	divide := ""
	if nd.Divide != DividedNone {
		divide = " divide=" + nd.Divide.String()
	}
	if _, err := fmt.Fprintf(w, "%s%s%s verts=%s cert=%s\n",
		indent, nd.Kind, divide, vertsString(nd.Verts, maxVerts), certPrefix(nd.Cert)); err != nil {
		return err
	}
	for i, c := range nd.Children {
		marker := ""
		if i > 0 && bytesEqualCore(c.Cert, nd.Children[i-1].Cert) {
			marker = "≅ " // symmetric to the previous sibling
		}
		if marker != "" {
			if _, err := fmt.Fprintf(w, "%s  %s\n", indent, marker+"(symmetric sibling)"); err != nil {
				return err
			}
		}
		if err := dumpNode(w, c, depth+1, maxVerts); err != nil {
			return err
		}
	}
	return nil
}

func vertsString(vs []int, maxVerts int) string {
	if len(vs) <= maxVerts {
		return strings.Trim(fmt.Sprint(vs), "[]")
	}
	head := fmt.Sprint(vs[:maxVerts])
	return fmt.Sprintf("%s…+%d", strings.Trim(head, "[]"), len(vs)-maxVerts)
}

func certPrefix(cert []byte) string {
	if len(cert) > 4 {
		cert = cert[:4]
	}
	return hex.EncodeToString(cert)
}
