package core

import (
	"dvicl/internal/engine"
	"dvicl/internal/graph"
)

// slab bump-allocates the small values that outlive the build: Node
// structs, Verts/gammaVal int slices, 32-byte certificates, plus the
// transient-but-tiny subgraph and graph headers of the divide phase.
// One tree node used to cost a handful of individual heap objects; with
// the slab, whole chunks of them are carved from a few large
// allocations.
//
// Ownership: each build worker goroutine owns exactly one slab (see
// worker). Slab memory is never reused or pooled — tree nodes keep
// pointing into the chunks, so the chunks belong to the finished Tree
// and are reclaimed by the GC when the tree is dropped, all together.
type slab struct {
	nodes  []Node
	subs   []subgraph
	graphs []graph.Graph
	ints   []int
	bytes  []byte
	// Next chunk sizes. Chunks start small and double up to the caps so a
	// small graph's tree does not pin a near-empty 32 KB chunk — a store
	// holding thousands of small trees would otherwise balloon the heap.
	nodeChunk, subChunk, graphChunk, intChunk, byteChunk int
}

const (
	slabStructChunkMin = 16   // initial Node / subgraph / graph.Graph chunk
	slabStructChunkMax = 256  // cap for struct chunks
	slabScalarChunkMin = 256  // initial int / byte chunk
	slabScalarChunkMax = 4096 // cap for scalar chunks
)

// nextChunk advances a doubling chunk-size counter and returns the size
// to allocate now.
func nextChunk(cur *int, min, max int) int {
	size := *cur
	if size == 0 {
		size = min
	}
	*cur = size * 2
	if *cur > max {
		*cur = max
	}
	return size
}

func (s *slab) node() *Node {
	if len(s.nodes) == 0 {
		s.nodes = make([]Node, nextChunk(&s.nodeChunk, slabStructChunkMin, slabStructChunkMax))
	}
	nd := &s.nodes[0]
	s.nodes = s.nodes[1:]
	return nd
}

func (s *slab) sub() *subgraph {
	if len(s.subs) == 0 {
		s.subs = make([]subgraph, nextChunk(&s.subChunk, slabStructChunkMin, slabStructChunkMax))
	}
	sg := &s.subs[0]
	s.subs = s.subs[1:]
	return sg
}

// graph places a CSR view into the slab and returns a pointer to it.
func (s *slab) graph(offsets, adj []int32) *graph.Graph {
	if len(s.graphs) == 0 {
		s.graphs = make([]graph.Graph, nextChunk(&s.graphChunk, slabStructChunkMin, slabStructChunkMax))
	}
	g := &s.graphs[0]
	s.graphs = s.graphs[1:]
	*g = graph.FromCSR(offsets, adj)
	return g
}

// intSlice returns a zero-valued int slice of length n with capacity n.
func (s *slab) intSlice(n int) []int {
	if len(s.ints) < n {
		s.ints = make([]int, max(nextChunk(&s.intChunk, slabScalarChunkMin, slabScalarChunkMax), n))
	}
	out := s.ints[:n:n]
	s.ints = s.ints[n:]
	return out
}

// byteSlice returns a zero-valued byte slice of length n with capacity n.
func (s *slab) byteSlice(n int) []byte {
	if len(s.bytes) < n {
		s.bytes = make([]byte, max(nextChunk(&s.byteChunk, slabScalarChunkMin, slabScalarChunkMax), n))
	}
	out := s.bytes[:n:n]
	s.bytes = s.bytes[n:]
	return out
}

// bytesCopy copies b into the slab.
func (s *slab) bytesCopy(b []byte) []byte {
	out := s.byteSlice(len(b))
	copy(out, b)
	return out
}

// worker bundles the per-goroutine scratch of one build worker: the
// engine workspace (transient — returned to the pool when the worker
// finishes, unless the caller supplied it via Options.Workspace) and the
// slab (tree-lifetime — handed to the Tree). A worker belongs to
// exactly one goroutine for the whole build: worker 0 is the BuildCtx
// caller, workers 1..Workers-1 are the scheduler's pool goroutines,
// each holding its workspace for the build's lifetime rather than
// drawing one per spawned subtree.
type worker struct {
	// id indexes the worker's deque in the scheduler (0 when sequential).
	id   int
	ws   *engine.Workspace
	slab slab
	// busy marks that the worker is inside a pool task, so nested task
	// execution (joinWait helping) does not re-enter the PhaseWorkerBusy
	// span. Only the owning goroutine touches it.
	busy bool
}
