package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
	"time"

	"dvicl/internal/canon"
	"dvicl/internal/coloring"
	"dvicl/internal/engine"
	"dvicl/internal/obs"
)

// descriptor accumulates the removal record of a division in a canonical
// byte form. Certificates of internal nodes cover the descriptor so that
// certificate equality remains a complete isomorphism invariant: the
// children describe the reduced components, and the descriptor describes —
// purely in color terms, which is all that is needed because every removed
// structure is color-complete — the edges the division deleted.
type descriptor struct {
	buf bytes.Buffer
}

func newDescriptor(kind DivideKind) *descriptor {
	d := &descriptor{}
	d.word(int(kind))
	return d
}

func (d *descriptor) word(x int) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(x))
	d.buf.Write(tmp[:])
}

// singleton records a DivideI axis vertex: its color and the colors of
// the cells it was fully adjacent to.
func (d *descriptor) singleton(color int, nbColors []int) {
	d.word(-1)
	d.word(color)
	d.word(len(nbColors))
	for _, c := range nbColors {
		d.word(c)
	}
}

// pair records a DivideS clique (a == b) or biclique (a < b) removal.
func (d *descriptor) pair(a, b int) {
	d.word(-2)
	d.word(a)
	d.word(b)
}

func (d *descriptor) bytes() []byte { return d.buf.Bytes() }

// cl is the recursive procedure of Algorithm 1: it constructs the AutoTree
// rooted at (g, πg), refining in ws (owned by this goroutine). It stops
// with the controller's error as soon as the build is canceled or over
// budget — every tree node is a cancellation checkpoint.
//
// ts is the enclosing trace span (nil when untraced): each divided node
// hangs a "divide_i"/"divide_s" span under it and recurses with that span
// as the parent, so the span tree mirrors the AutoTree's division
// structure. Singleton leaves record no span; the trace's span cap bounds
// pathological trees.
func (b *builder) cl(sg *subgraph, ws *engine.Workspace, ts *obs.TraceSpan) (*Node, error) {
	if err := b.ctl.Poll(); err != nil {
		return nil, err
	}
	nd := &Node{Verts: sg.verts}
	if len(sg.verts) == 0 {
		nd.Kind = KindLeaf
		nd.Cert = hashParts([]byte{'e'})
		return nd, nil
	}
	if len(sg.verts) == 1 {
		b.makeSingleton(nd)
		return nd, nil
	}
	b.opt.Obs.Inc(obs.DivideICalls)
	spanI := b.opt.Obs.StartPhase(obs.PhaseDivideI)
	div := b.divideI(sg, ws)
	spanI.End()
	if div == nil && !b.opt.DisableDivideS {
		b.opt.Obs.Inc(obs.DivideSCalls)
		spanS := b.opt.Obs.StartPhase(obs.PhaseDivideS)
		div = b.divideS(sg)
		spanS.End()
	}
	if div == nil {
		if err := b.combineCL(nd, sg, ws, ts); err != nil {
			return nil, err
		}
		return nd, nil
	}
	nd.Kind = KindInternal
	nd.Divide = div.kind
	nd.desc = div.desc
	name := "divide_i"
	if div.kind == DividedS {
		name = "divide_s"
	}
	ds := b.tr.StartSpan(ts, name)
	ds.SetAttr("size", int64(len(sg.verts)))
	ds.SetAttr("children", int64(len(div.children)))
	children, err := b.buildChildren(div.children, ws, ds)
	if err != nil {
		ds.End()
		return nil, err
	}
	nd.Children = children
	b.combineST(nd)
	ds.End()
	return nd, nil
}

// buildChildren recurses into the divided subgraphs, in parallel when the
// builder has spare worker tokens. Subtrees are fully independent (they
// share only read-only state; spawned goroutines draw their own
// workspaces), and combineST re-sorts by certificate, so the final tree
// is identical to the sequential one. On error it still waits for every
// spawned subtree — cancellation latches in the shared ctl, so siblings
// unwind promptly and no goroutine is leaked — and returns the first
// error observed.
func (b *builder) buildChildren(subs []*subgraph, ws *engine.Workspace, ts *obs.TraceSpan) ([]*Node, error) {
	nodes := make([]*Node, len(subs))
	if b.sem == nil || len(subs) < 2 {
		for i, child := range subs {
			nd, err := b.cl(child, ws, ts)
			if err != nil {
				return nil, err
			}
			nodes[i] = nd
		}
		return nodes, nil
	}
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for i, child := range subs {
		select {
		case b.sem <- struct{}{}:
			b.opt.Obs.Inc(obs.WorkerSpawns)
			wg.Add(1)
			go func(i int, c *subgraph) {
				defer wg.Done()
				defer func() { <-b.sem }()
				cws := engine.GetWorkspace(c.local.N())
				nd, err := b.cl(c, cws, ts)
				engine.PutWorkspace(cws)
				if err != nil {
					setErr(err)
					return
				}
				nodes[i] = nd
			}(i, child)
		default:
			b.opt.Obs.Inc(obs.WorkerInline)
			nd, err := b.cl(child, ws, ts)
			if err != nil {
				setErr(err)
			} else {
				nodes[i] = nd
			}
		}
		errMu.Lock()
		stop := firstErr != nil
		errMu.Unlock()
		if stop {
			break
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return nodes, nil
}

// makeSingleton fills in a one-vertex leaf: its canonical label is its
// color, C(g, πg) = (π(v), π(v)) per Section 5.
func (b *builder) makeSingleton(nd *Node) {
	v := nd.Verts[0]
	nd.Kind = KindSingleton
	nd.gammaVal = []int{b.t.colors[v]}
	nd.Cert = hashParts([]byte{'s'}, encodeInts(b.t.colors[v]))
}

// combineCL implements Algorithm 4 for a non-singleton leaf: an
// individualization–refinement engine (the paper's nauty/bliss/traces)
// canonically labels (g, πg); its total order γ* then ranks same-colored
// vertices, yielding vᵞᵍ = π(v) + rank.
func (b *builder) combineCL(nd *Node, sg *subgraph, ws *engine.Workspace, ts *obs.TraceSpan) error {
	nd.Kind = KindLeaf
	b.opt.Obs.Inc(obs.LeafSearches)
	leafSpan := b.tr.StartSpan(ts, "leaf_search")
	leafSpan.SetAttr("size", int64(len(sg.verts)))
	defer leafSpan.End()
	span := b.opt.Obs.StartPhase(obs.PhaseCombineCL)
	defer span.End()
	cells := b.cellsOf(sg)
	pi, err := coloring.FromCells(len(sg.verts), cells)
	if err != nil {
		return engine.Internalf("core.combineCL", "projected cells are not a partition: %v", err)
	}
	copt := canon.Options{
		Policy:   b.opt.LeafPolicy,
		MaxNodes: b.budget.LeafMaxNodes,
		Obs:      b.opt.Obs,
		Span:     leafSpan,
	}
	if b.budget.LeafTimeout > 0 {
		copt.Deadline = time.Now().Add(b.budget.LeafTimeout)
	}
	res, err := canon.CanonicalCtl(b.ctl, ws, sg.local, pi, copt)
	if err != nil {
		return err
	}
	nd.leafNodes = res.Nodes
	nd.leafLeaves = res.Leaves
	nd.leafTruncated = res.Truncated
	if res.Truncated {
		b.markTruncated()
	}
	order := res.Canon
	if order == nil { // truncated before any leaf: fall back to input order
		order = make([]int, len(sg.verts))
		for i := range order {
			order[i] = i
		}
	}
	nd.localGens = res.Generators
	nd.localGraph = sg.local
	// Rank same-colored vertices by γ*.
	nd.gammaVal = make([]int, len(sg.verts))
	for _, cell := range cells {
		members := append([]int(nil), cell...)
		sort.Slice(members, func(i, j int) bool { return order[members[i]] < order[members[j]] })
		color := b.colorOf(sg, members[0])
		for rank, l := range members {
			nd.gammaVal[l] = color + rank
		}
	}
	nd.Cert = leafCert(nd, sg, cells, b)
	return nil
}

// leafCert encodes the canonical form of a leaf exactly: the (color,
// count) profile followed by the edge list relabeled by γg — the colored
// graph C(g, πg) — then hashed.
func leafCert(nd *Node, sg *subgraph, cells [][]int, b *builder) []byte {
	var body bytes.Buffer
	body.WriteByte('l')
	for _, cell := range cells {
		body.Write(encodeInts(b.colorOf(sg, cell[0]), len(cell)))
	}
	edges := make([]uint64, 0, sg.local.M())
	for _, e := range sg.local.Edges() {
		u, v := nd.gammaVal[e[0]], nd.gammaVal[e[1]]
		if u > v {
			u, v = v, u
		}
		edges = append(edges, uint64(u)<<32|uint64(v))
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	for _, e := range edges {
		body.Write(encodeInts(int(e>>32), int(e&0xffffffff)))
	}
	return hashParts(body.Bytes())
}

// combineST implements Algorithm 5: children are sorted by certificate;
// the child order and the within-child canonical orders together rank the
// same-colored vertices of g, yielding γg. It also recomputes the node's
// certificate from the descriptor and the sorted child certificates.
// It is re-runnable: twin expansion (Section 6.1) calls it again after
// inserting children.
func (b *builder) combineST(nd *Node) {
	span := b.opt.Obs.StartPhase(obs.PhaseCombineST)
	defer span.End()
	sort.SliceStable(nd.Children, func(i, j int) bool {
		return bytes.Compare(nd.Children[i].Cert, nd.Children[j].Cert) < 0
	})
	// Recompute Verts as the union of children (expansion changes it).
	total := 0
	for _, c := range nd.Children {
		total += len(c.Verts)
	}
	verts := make([]int, 0, total)
	for _, c := range nd.Children {
		verts = append(verts, c.Verts...)
	}
	sort.Ints(verts)
	nd.Verts = verts

	// Rank same-colored vertices: child order first, within-child γ order
	// second (lines 1–5 of Algorithm 5).
	rank := map[int]int{}
	gval := make(map[int]int, total)
	for _, c := range nd.Children {
		ordered := vertsByGamma(c)
		for _, v := range ordered {
			color := b.t.colors[v]
			gval[v] = color + rank[color]
			rank[color]++
		}
	}
	nd.gammaVal = make([]int, len(nd.Verts))
	for i, v := range nd.Verts {
		nd.gammaVal[i] = gval[v]
	}

	// Certificate: divide kind + removal descriptor + ordered child certs.
	var body bytes.Buffer
	body.WriteByte('i')
	body.Write(nd.desc)
	for _, c := range nd.Children {
		body.Write(c.Cert)
	}
	nd.Cert = hashParts(body.Bytes())
}

// vertsByGamma returns a node's vertices ordered by their canonical label
// within the node.
func vertsByGamma(nd *Node) []int {
	idx := make([]int, len(nd.Verts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool { return nd.gammaVal[idx[a]] < nd.gammaVal[idx[c]] })
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = nd.Verts[j]
	}
	return out
}

func hashParts(parts ...[]byte) []byte {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum(nil)
}

func encodeInts(xs ...int) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.BigEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}
