package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"slices"
	"sort"
	"time"

	"dvicl/internal/canon"
	"dvicl/internal/coloring"
	"dvicl/internal/engine"
	"dvicl/internal/obs"
)

// descriptor accumulates the removal record of a division in a canonical
// byte form. Certificates of internal nodes cover the descriptor so that
// certificate equality remains a complete isomorphism invariant: the
// children describe the reduced components, and the descriptor describes —
// purely in color terms, which is all that is needed because every removed
// structure is color-complete — the edges the division deleted.
//
// The bytes accumulate in the workspace's Bytes buffer; the divide that
// built the descriptor copies buf to the slab and restores ws.Bytes to
// buf[:0] (keeping any growth).
type descriptor struct {
	buf []byte
}

func newDescriptor(ws *engine.Workspace, kind DivideKind) descriptor {
	d := descriptor{buf: ws.Bytes[:0]}
	d.word(int(kind))
	return d
}

func (d *descriptor) word(x int) {
	d.buf = binary.BigEndian.AppendUint64(d.buf, uint64(x))
}

// singleton records a DivideI axis vertex: its color and the colors of
// the cells it was fully adjacent to.
func (d *descriptor) singleton(color int, nbColors []int) {
	d.word(-1)
	d.word(color)
	d.word(len(nbColors))
	for _, c := range nbColors {
		d.word(c)
	}
}

// pair records a DivideS clique (a == b) or biclique (a < b) removal.
func (d *descriptor) pair(a, b int) {
	d.word(-2)
	d.word(a)
	d.word(b)
}

// cl is the recursive procedure of Algorithm 1: it constructs the AutoTree
// rooted at (g, πg) using wk's workspace and slab (owned by this
// goroutine). It stops with the controller's error as soon as the build is
// canceled or over budget — every tree node is a cancellation checkpoint.
//
// Memory: cl brackets each node in an arena frame — everything the divides
// allocate (child CSRs, component scratch) lives until the whole subtree
// below this node is built, then the frame is released at once. The
// subgraph sg itself belongs to the caller's frame.
//
// ts is the enclosing trace span (nil when untraced): each divided node
// hangs a "divide_i"/"divide_s" span under it and recurses with that span
// as the parent, so the span tree mirrors the AutoTree's division
// structure. Singleton leaves record no span; the trace's span cap bounds
// pathological trees.
func (b *builder) cl(sg *subgraph, wk *worker, ts *obs.TraceSpan) (*Node, error) {
	if err := b.ctl.Poll(); err != nil {
		return nil, err
	}
	nd := wk.slab.node()
	nd.Verts = sg.verts
	if len(sg.verts) == 0 {
		nd.Kind = KindLeaf
		e := [1]byte{'e'}
		nd.Cert = wk.hash(e[:])
		return nd, nil
	}
	if len(sg.verts) == 1 {
		b.makeSingleton(nd, wk)
		return nd, nil
	}
	mark := wk.ws.Arena.Mark()
	defer wk.ws.Arena.Release(mark)
	b.opt.Obs.Inc(obs.DivideICalls)
	spanI := b.opt.Obs.StartPhase(obs.PhaseDivideI)
	div, ok := b.divideI(sg, wk)
	spanI.End()
	if !ok && !b.opt.DisableDivideS {
		b.opt.Obs.Inc(obs.DivideSCalls)
		spanS := b.opt.Obs.StartPhase(obs.PhaseDivideS)
		div, ok = b.divideS(sg, wk)
		spanS.End()
	}
	if !ok {
		wk.ws.Arena.Release(mark) // drop the failed divides' scratch before the leaf search
		if err := b.combineCL(nd, sg, wk, ts); err != nil {
			return nil, err
		}
		return nd, nil
	}
	nd.Kind = KindInternal
	nd.Divide = div.kind
	nd.desc = div.desc
	name := "divide_i"
	if div.kind == DividedS {
		name = "divide_s"
	}
	ds := b.tr.StartSpan(ts, name)
	ds.SetAttr("size", int64(len(sg.verts)))
	ds.SetAttr("children", int64(len(div.children)))
	children, err := b.buildChildren(div.children, wk, ds)
	if err != nil {
		ds.End()
		return nil, err
	}
	nd.Children = children
	b.combineST(nd, wk)
	ds.End()
	return nd, nil
}

// buildChild materializes one divided child and builds its subtree,
// bracketed in its own arena frame on wk: the child's CSR (and every
// divide below it) is released as soon as its subtree is done, instead
// of accumulating in the parent's frame for the sibling builds.
func (b *builder) buildChild(ref childRef, wk *worker, ts *obs.TraceSpan) (*Node, error) {
	mark := wk.ws.Arena.Mark()
	defer wk.ws.Arena.Release(mark)
	return b.cl(ref.materialize(wk), wk, ts)
}

// buildChildren recurses into the divided children. Sequentially when
// the build has no worker pool (or the fanout is trivial); otherwise
// every child becomes a task on this worker's deque — the worker then
// helps the pool until its own join completes, so deep chains of binary
// divides (push one, descend into the other) keep thieves fed without
// this goroutine ever blocking idle.
//
// Subtrees are fully independent: they share only read-only state (the
// global graph, colors, and the dividing frame's arena-backed CSRs,
// which stay alive until the join completes) and each task runs on its
// executing worker's own workspace and slab. Tasks fill their
// divide-order slot in nodes, so the child order combineST sees is
// identical to the sequential build's.
//
// On error the join still waits for every task: a failure latches in the
// scheduler, tasks not yet started skip their builds and report the
// latched error, and in-flight siblings unwind promptly at their next
// ctl poll — no goroutine is leaked and the first error is returned.
// (The old token-bucket version checked the error latch only after
// spawning each child, so the inline-fallback path kept building
// children after a sibling had already failed.)
func (b *builder) buildChildren(refs []childRef, wk *worker, ts *obs.TraceSpan) ([]*Node, error) {
	nodes := make([]*Node, len(refs))
	if b.sched == nil || len(refs) < 2 {
		if b.sched != nil && len(refs) > 0 {
			b.opt.Obs.Inc(obs.WorkerInline)
		}
		for i, ref := range refs {
			nd, err := b.buildChild(ref, wk, ts)
			if err != nil {
				return nil, err
			}
			nodes[i] = nd
		}
		return nodes, nil
	}
	jn := &join{remaining: len(refs)}
	tasks := make([]func(*worker), len(refs))
	for i, ref := range refs {
		i, ref := i, ref
		tasks[i] = func(cwk *worker) {
			err := b.sched.abortErr()
			if err == nil {
				var nd *Node
				if nd, err = b.buildChild(ref, cwk, ts); err == nil {
					nodes[i] = nd
				}
			}
			b.sched.finish(jn, err)
		}
	}
	b.opt.Obs.Add(obs.WorkerSpawns, int64(len(refs)))
	b.sched.push(wk, tasks)
	if err := b.sched.joinWait(jn, wk); err != nil {
		return nil, err
	}
	return nodes, nil
}

// hash returns the SHA-256 of body as a slab-backed 32-byte certificate.
func (wk *worker) hash(body []byte) []byte {
	sum := sha256.Sum256(body)
	return wk.slab.bytesCopy(sum[:])
}

// makeSingleton fills in a one-vertex leaf: its canonical label is its
// color, C(g, πg) = (π(v), π(v)) per Section 5.
func (b *builder) makeSingleton(nd *Node, wk *worker) {
	v := nd.Verts[0]
	nd.Kind = KindSingleton
	g := wk.slab.intSlice(1)
	g[0] = b.t.colors[v]
	nd.gammaVal = g
	var buf [9]byte
	buf[0] = 's'
	binary.BigEndian.PutUint64(buf[1:], uint64(b.t.colors[v]))
	nd.Cert = wk.hash(buf[:])
}

// combineCL implements Algorithm 4 for a non-singleton leaf: an
// individualization–refinement engine (the paper's nauty/bliss/traces)
// canonically labels (g, πg); its total order γ* then ranks same-colored
// vertices, yielding vᵞᵍ = π(v) + rank.
func (b *builder) combineCL(nd *Node, sg *subgraph, wk *worker, ts *obs.TraceSpan) error {
	nd.Kind = KindLeaf
	b.opt.Obs.Inc(obs.LeafSearches)
	leafSpan := b.tr.StartSpan(ts, "leaf_search")
	leafSpan.SetAttr("size", int64(len(sg.verts)))
	defer leafSpan.End()
	span := b.opt.Obs.StartPhase(obs.PhaseCombineCL)
	defer span.End()
	ws := wk.ws
	cells := b.cellsOf(sg, ws)
	pi, err := coloring.FromCells(len(sg.verts), cells)
	if err != nil {
		return engine.Internalf("core.combineCL", "projected cells are not a partition: %v", err)
	}
	copt := canon.Options{
		Policy:   b.opt.LeafPolicy,
		MaxNodes: b.budget.LeafMaxNodes,
		Obs:      b.opt.Obs,
		Span:     leafSpan,
	}
	if b.budget.LeafTimeout > 0 {
		copt.Deadline = time.Now().Add(b.budget.LeafTimeout)
	}
	res, err := canon.CanonicalCtl(b.ctl, ws, sg.local, pi, copt)
	if err != nil {
		return err
	}
	nd.leafNodes = res.Nodes
	nd.leafLeaves = res.Leaves
	nd.leafTruncated = res.Truncated
	if res.Truncated {
		b.markTruncated()
	}
	order := res.Canon
	if order == nil { // truncated before any leaf: fall back to input order
		order = make([]int, len(sg.verts))
		for i := range order {
			order[i] = i
		}
	}
	nd.localGens = res.Generators
	// sg.local is an arena-backed view owned by an enclosing frame that is
	// released once the tree is built; the leaf keeps its local graph for
	// later queries (SSM, verification), so promote it to a heap copy.
	nd.localGraph = sg.local.Clone()
	// Rank same-colored vertices by γ*: sort each cell by packed
	// (order, local) keys — order values are distinct, so this matches
	// sorting members by order — and rank in that sequence.
	nd.gammaVal = wk.slab.intSlice(len(sg.verts))
	keys := ws.Keys[:0]
	for _, cell := range cells {
		keys = keys[:0]
		for _, l := range cell {
			keys = append(keys, uint64(order[l])<<32|uint64(l))
		}
		slices.Sort(keys)
		color := b.colorOf(sg, cell[0])
		for rank, key := range keys {
			nd.gammaVal[int(key&0xffffffff)] = color + rank
		}
	}
	ws.Keys = keys[:0]
	nd.Cert = leafCert(nd, sg, cells, b, wk)
	return nil
}

// leafCert encodes the canonical form of a leaf exactly: the (color,
// count) profile followed by the edge list relabeled by γg — the colored
// graph C(g, πg) — then hashed.
func leafCert(nd *Node, sg *subgraph, cells [][]int, b *builder, wk *worker) []byte {
	ws := wk.ws
	body := ws.Bytes[:0]
	body = append(body, 'l')
	for _, cell := range cells {
		body = binary.BigEndian.AppendUint64(body, uint64(b.colorOf(sg, cell[0])))
		body = binary.BigEndian.AppendUint64(body, uint64(len(cell)))
	}
	edges := ws.Keys[:0]
	g := sg.local
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors32(u) {
			if int(w) > u {
				a, c := nd.gammaVal[u], nd.gammaVal[int(w)]
				if a > c {
					a, c = c, a
				}
				edges = append(edges, uint64(a)<<32|uint64(c))
			}
		}
	}
	slices.Sort(edges)
	for _, e := range edges {
		body = binary.BigEndian.AppendUint64(body, e>>32)
		body = binary.BigEndian.AppendUint64(body, e&0xffffffff)
	}
	cert := wk.hash(body)
	ws.Bytes = body[:0]
	ws.Keys = edges[:0]
	return cert
}

// combineST implements Algorithm 5: children are sorted by certificate;
// the child order and the within-child canonical orders together rank the
// same-colored vertices of g, yielding γg. It also recomputes the node's
// certificate from the descriptor and the sorted child certificates.
// It is re-runnable: twin expansion (Section 6.1) calls it again after
// inserting children.
func (b *builder) combineST(nd *Node, wk *worker) {
	span := b.opt.Obs.StartPhase(obs.PhaseCombineST)
	defer span.End()
	b.sortChildren(nd.Children, wk)
	// Recompute Verts as the union of children (expansion changes it).
	total := 0
	for _, c := range nd.Children {
		total += len(c.Verts)
	}
	verts := wk.slab.intSlice(total)
	p := 0
	for _, c := range nd.Children {
		p += copy(verts[p:], c.Verts)
	}
	slices.Sort(verts)
	nd.Verts = verts

	// Rank same-colored vertices: child order first, within-child γ order
	// second (lines 1–5 of Algorithm 5). Per-color ranks live in
	// ColorCount (zeroed invariant, restored below); per-vertex labels in
	// Gamma (write-before-read). Each child's vertices are walked in γ
	// order by sorting packed (gammaVal, local) keys — gammaVal values
	// are distinct within a node, so this matches vertsByGamma.
	ws := wk.ws
	keys := ws.Keys[:0]
	for _, c := range nd.Children {
		keys = keys[:0]
		for i, gv := range c.gammaVal {
			keys = append(keys, uint64(gv)<<32|uint64(i))
		}
		slices.Sort(keys)
		for _, key := range keys {
			v := c.Verts[int(key&0xffffffff)]
			color := b.t.colors[v]
			ws.Gamma[v] = color + int(ws.ColorCount[color])
			ws.ColorCount[color]++
		}
	}
	gamma := wk.slab.intSlice(len(nd.Verts))
	for i, v := range nd.Verts {
		gamma[i] = ws.Gamma[v]
		ws.ColorCount[b.t.colors[v]] = 0
	}
	nd.gammaVal = gamma
	ws.Keys = keys[:0]

	// Certificate: divide kind + removal descriptor + ordered child certs.
	body := ws.Bytes[:0]
	body = append(body, 'i')
	body = append(body, nd.desc...)
	for _, c := range nd.Children {
		body = append(body, c.Cert...)
	}
	nd.Cert = wk.hash(body)
	ws.Bytes = body[:0]
}

// nodeCertCmp orders tree nodes by their certificate bytes — the
// CombineST sibling order.
func nodeCertCmp(x, y *Node) int { return bytes.Compare(x.Cert, y.Cert) }

const (
	// parSortMin is the child count at which combineST's certificate sort
	// fans out to the worker pool; below it a single stable sort wins.
	// parSortChunk is the run length each task stable-sorts before the
	// pairwise merge rounds.
	parSortMin   = 2048
	parSortChunk = 1024
)

// sortChildren sorts cs by certificate, stably. High-fanout nodes on a
// parallel build use the pool: fixed-size chunks are stable-sorted as
// tasks, then stably merged pairwise (ties take the left run, which
// preceded the right in the original order) — by uniqueness of the
// stable permutation, the result is byte-for-byte the permutation
// slices.SortStableFunc would have produced, at any worker count.
func (b *builder) sortChildren(cs []*Node, wk *worker) {
	if b.sched == nil || len(cs) < parSortMin {
		slices.SortStableFunc(cs, nodeCertCmp)
		return
	}
	nchunks := (len(cs) + parSortChunk - 1) / parSortChunk
	jn := &join{remaining: nchunks}
	tasks := make([]func(*worker), nchunks)
	for c := 0; c < nchunks; c++ {
		chunk := cs[c*parSortChunk : min((c+1)*parSortChunk, len(cs))]
		tasks[c] = func(*worker) {
			slices.SortStableFunc(chunk, nodeCertCmp)
			b.sched.finish(jn, nil)
		}
	}
	b.sched.push(wk, tasks)
	b.sched.joinWait(jn, wk) // sort tasks cannot fail

	tmp := make([]*Node, len(cs))
	src, dst := cs, tmp
	for width := parSortChunk; width < len(cs); width *= 2 {
		jn := &join{}
		var tasks []func(*worker)
		for lo := 0; lo < len(src); lo += 2 * width {
			mid := min(lo+width, len(src))
			hi := min(lo+2*width, len(src))
			s, d := src, dst
			lo := lo
			tasks = append(tasks, func(*worker) {
				mergeRuns(d[lo:hi], s[lo:mid], s[mid:hi])
				b.sched.finish(jn, nil)
			})
		}
		jn.remaining = len(tasks)
		b.sched.push(wk, tasks)
		b.sched.joinWait(jn, wk)
		src, dst = dst, src
	}
	if len(cs) > 0 && &src[0] != &cs[0] {
		copy(cs, src)
	}
}

// mergeRuns stably merges the sorted runs a and b into dst
// (len(dst) == len(a)+len(b)); equal certificates take from a first.
func mergeRuns(dst, a, b []*Node) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if nodeCertCmp(a[i], b[j]) <= 0 {
			dst[i+j] = a[i]
			i++
		} else {
			dst[i+j] = b[j]
			j++
		}
	}
	copy(dst[i+j:], a[i:])
	copy(dst[i+j:], b[j:])
}

// vertsByGamma returns a node's vertices ordered by their canonical label
// within the node.
func vertsByGamma(nd *Node) []int {
	idx := make([]int, len(nd.Verts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool { return nd.gammaVal[idx[a]] < nd.gammaVal[idx[c]] })
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = nd.Verts[j]
	}
	return out
}
