package core

import (
	"math"
	"sort"

	"dvicl/internal/graph"
)

// Quotient computes the network quotient of application (d) in the
// paper's introduction (Xiao et al. [35], "structural skeletons of
// complex systems"): the graph whose vertices are the orbits of Aut(G)
// and whose edges connect orbits containing adjacent vertices. Quotients
// collapse all redundant (symmetric) information; for richly symmetric
// real networks they are substantially smaller than the original while
// preserving key functional properties.
//
// It returns the quotient graph and the orbit each original vertex maps
// to (quotient vertex i corresponds to the i-th orbit).
type QuotientResult struct {
	Graph  *graph.Graph
	Orbits [][]int
	// OrbitOf maps each original vertex to its quotient vertex.
	OrbitOf []int
}

// Quotient builds the quotient of the tree's graph under Aut(G, π).
func (t *Tree) Quotient() QuotientResult {
	orbits := t.Orbits()
	n := t.g.N()
	orbitOf := make([]int, n)
	for i, o := range orbits {
		for _, v := range o {
			orbitOf[v] = i
		}
	}
	b := graph.NewBuilder(len(orbits))
	for _, e := range t.g.Edges() {
		a, c := orbitOf[e[0]], orbitOf[e[1]]
		if a != c {
			b.AddEdge(a, c)
		}
	}
	return QuotientResult{Graph: b.Build(), Orbits: orbits, OrbitOf: orbitOf}
}

// OrbitEntropy computes the structure entropy of application (c) (Xiao et
// al. [37]): the Shannon entropy of the automorphism partition,
// H = −Σ (|orbit|/n)·log₂(|orbit|/n). Rigid graphs maximize it (log₂ n);
// vertex-transitive graphs have zero entropy. The paper notes structural
// heterogeneity is strongly negatively correlated with symmetry — this is
// that measure.
func (t *Tree) OrbitEntropy() float64 {
	n := float64(t.g.N())
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, o := range t.Orbits() {
		p := float64(len(o)) / n
		h -= p * math.Log2(p)
	}
	return h
}

// SymmetryRatio is the normalized symmetry measure used alongside the
// entropy: the fraction of vertices that have at least one automorphic
// counterpart.
func (t *Tree) SymmetryRatio() float64 {
	n := t.g.N()
	if n == 0 {
		return 0
	}
	inNonTrivial := 0
	for _, o := range t.Orbits() {
		if len(o) > 1 {
			inNonTrivial += len(o)
		}
	}
	return float64(inNonTrivial) / float64(n)
}

// OrbitSizeHistogram returns sorted (size, count) pairs of the orbit
// partition — handy for reporting symmetry structure.
func (t *Tree) OrbitSizeHistogram() [][2]int {
	counts := map[int]int{}
	for _, o := range t.Orbits() {
		counts[len(o)]++
	}
	var sizes []int
	for s := range counts {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	out := make([][2]int, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, [2]int{s, counts[s]})
	}
	return out
}
