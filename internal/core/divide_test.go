package core

import (
	"bytes"
	"testing"

	"dvicl/internal/coloring"
	"dvicl/internal/engine"
	"dvicl/internal/graph"
)

// newTestBuilder prepares a builder over g with its equitable coloring,
// mirroring Build's setup, plus the worker the divides run on.
func newTestBuilder(g *graph.Graph) (*builder, *worker) {
	n := g.N()
	pi := coloring.Unit(n)
	pi.Refine(g, nil)
	colors := make([]int, n)
	for v := 0; v < n; v++ {
		colors[v] = pi.Color(v)
	}
	t := &Tree{g: g, colors: colors, leafOf: make([]int, n)}
	return &builder{t: t}, &worker{ws: engine.GetWorkspace(n)}
}

func allVerts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestDivideIIsolatesSingletons(t *testing.T) {
	// Fig 1(a): the hub (vertex 7) is the only singleton cell; removing
	// it separates the C4 from the triangle.
	g := fig1()
	b, wk := newTestBuilder(g)
	sg := b.subgraphOf(allVerts(8), wk)
	div, ok := b.divideI(sg, wk)
	if !ok {
		t.Fatal("DivideI failed on the paper's example")
	}
	if div.kind != DividedI {
		t.Fatal("wrong divide kind")
	}
	// Children: {7}, {0,1,2,3}, {4,5,6}.
	if len(div.children) != 3 {
		t.Fatalf("children = %d, want 3", len(div.children))
	}
	sizes := map[int]int{}
	for _, c := range div.children {
		sizes[c.size()]++
	}
	if sizes[1] != 1 || sizes[4] != 1 || sizes[3] != 1 {
		t.Fatalf("child sizes = %v", sizes)
	}
	if len(div.desc) == 0 {
		t.Fatal("empty DivideI descriptor")
	}
}

func TestDivideIFailsWithoutSingletons(t *testing.T) {
	// A cycle: unit cell, connected — DivideI cannot disconnect it.
	g := cycle(8)
	b, wk := newTestBuilder(g)
	if div, ok := b.divideI(b.subgraphOf(allVerts(8), wk), wk); ok {
		t.Fatalf("DivideI divided a vertex-transitive cycle: %d children", len(div.children))
	}
}

func TestDivideIComponentsOnly(t *testing.T) {
	// Two disjoint C4s: no singleton cells, but two components.
	g := graph.FromEdges(8, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 7}, {7, 4},
	})
	b, wk := newTestBuilder(g)
	div, ok := b.divideI(b.subgraphOf(allVerts(8), wk), wk)
	if !ok || len(div.children) != 2 {
		t.Fatalf("disconnected graph not split: ok=%v %+v", ok, div)
	}
}

func TestDivideSCliqueRemoval(t *testing.T) {
	// K4 with a pendant on each vertex: refinement gives two cells
	// (clique vertices, pendants). The clique cell induces K4, so DivideS
	// removes it and the graph splits into 4 pendant edges.
	var edges [][2]int
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]int{i, j})
		}
		edges = append(edges, [2]int{i, 4 + i})
	}
	g := graph.FromEdges(8, edges)
	b, wk := newTestBuilder(g)
	sg := b.subgraphOf(allVerts(8), wk)
	if _, ok := b.divideI(sg, wk); ok {
		t.Fatal("DivideI should not apply (no singleton cells)")
	}
	div, ok := b.divideS(sg, wk)
	if !ok {
		t.Fatal("DivideS failed on clique-cell graph")
	}
	if len(div.children) != 4 {
		t.Fatalf("children = %d, want 4 pendant edges", len(div.children))
	}
	for _, ref := range div.children {
		c := ref.materialize(wk)
		if len(c.verts) != 2 || c.local.M() != 1 {
			t.Fatalf("child = %v with %d edges", c.verts, c.local.M())
		}
	}
}

func TestDivideSBicliqueRemoval(t *testing.T) {
	// Two triangles joined by a complete bipartite K3,3 between their
	// vertex sets... refinement keeps one cell (6-vertex, 5-regular =
	// K3,3 plus triangles = K6 minus a perfect... construct explicitly:
	// cells A={0,1,2}, B={3,4,5} where A and B are triangles and A×B is
	// complete. That's K6 — one cell, clique removal splits everything.
	// Instead: A = triangle, B = independent set, A×B complete. Degrees:
	// A: 2+3=5, B: 3 — two cells; A×B is a biclique, A is a clique.
	var edges [][2]int
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			edges = append(edges, [2]int{i, j})
		}
		for j := 3; j < 6; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	g := graph.FromEdges(6, edges)
	b, wk := newTestBuilder(g)
	sg := b.subgraphOf(allVerts(6), wk)
	div, ok := b.divideS(sg, wk)
	if !ok {
		t.Fatal("DivideS failed on clique+biclique structure")
	}
	// Everything falls apart into 6 singletons.
	if len(div.children) != 6 {
		t.Fatalf("children = %d, want 6", len(div.children))
	}
}

func TestDivideSNoOpOnCycle(t *testing.T) {
	g := cycle(10)
	b, wk := newTestBuilder(g)
	if _, ok := b.divideS(b.subgraphOf(allVerts(10), wk), wk); ok {
		t.Fatal("DivideS divided a cycle (no complete structures)")
	}
}

// TestDescriptorInvariance: two isomorphic subgraph configurations must
// produce identical descriptors (the property that certificate equality
// of internal nodes relies on).
func TestDescriptorInvariance(t *testing.T) {
	g := fig1()
	b1, wk1 := newTestBuilder(g)
	d1, ok1 := b1.divideI(b1.subgraphOf(allVerts(8), wk1), wk1)

	perm := []int{3, 0, 1, 2, 5, 6, 4, 7} // an automorphism-ish relabeling
	h := g.Permute(perm)
	b2, wk2 := newTestBuilder(h)
	d2, ok2 := b2.divideI(b2.subgraphOf(allVerts(8), wk2), wk2)
	if !ok1 || !ok2 {
		t.Fatal("divides failed")
	}
	if !bytes.Equal(d1.desc, d2.desc) {
		t.Fatal("DivideI descriptors differ across a relabeling")
	}
}

// TestDivideWorkspaceInvariants: the divides must leave the workspace in
// its documented between-uses state so the next consumer can rely on it.
func TestDivideWorkspaceInvariants(t *testing.T) {
	for _, build := range []func() *graph.Graph{fig1, func() *graph.Graph { return cycle(8) }} {
		g := build()
		b, wk := newTestBuilder(g)
		mark := wk.ws.Arena.Mark()
		sg := b.subgraphOf(allVerts(g.N()), wk)
		b.divideI(sg, wk)
		b.divideS(sg, wk)
		wk.ws.Arena.Release(mark)
		ws := wk.ws
		for v := 0; v < g.N(); v++ {
			if ws.LocalIdx[v] != 0 {
				t.Fatalf("LocalIdx[%d] = %d after divide", v, ws.LocalIdx[v])
			}
			if ws.ColorCount[v] != 0 {
				t.Fatalf("ColorCount[%d] = %d after divide", v, ws.ColorCount[v])
			}
			if ws.Bits[v] {
				t.Fatalf("Bits[%d] set after divide", v)
			}
		}
		if len(ws.IntsA)+len(ws.IntsB)+len(ws.IntsC)+len(ws.Keys)+len(ws.Bytes) != 0 {
			t.Fatal("list buffers not reset to length 0 after divide")
		}
		if len(ws.PairCount) != 0 {
			t.Fatal("PairCount not empty after divide")
		}
	}
}
