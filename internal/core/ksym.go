package core

import (
	"fmt"

	"dvicl/internal/graph"
)

// KSymmetrize implements the k-symmetry anonymization application of the
// paper (Sections 1 and 5, after Wu et al. [34]): the graph is extended so
// that every vertex has at least k−1 automorphic counterparts, by
// duplicating root subtrees of the AutoTree until every certificate group
// has at least k symmetric siblings.
//
// Each clone copies a subtree's internal edges and attaches to the
// original's current outside neighborhood, which makes original and clone
// exchangeable by an automorphism that fixes everything else (they become
// "structural twins at subtree scale"). Components are cloned before axis
// singletons so that axis clones pick up the component clones'
// attachments.
//
// The tree's root must have been divided by DivideI (true for every
// real-world graph in the paper's evaluation, whose equitable colorings
// have singleton cells); other roots — fully regular graphs — are
// rejected.
func KSymmetrize(t *Tree, k int) (*graph.Graph, error) {
	if k < 2 {
		return t.Graph(), nil
	}
	root := t.Root
	if root == nil || root.Kind != KindInternal || root.Divide != DividedI {
		return nil, fmt.Errorf("core: KSymmetrize needs a DivideI-divided root (regular graph?)")
	}
	g := t.Graph()
	n := g.N()

	// Plan clones: for every certificate group with multiplicity m < k,
	// clone the first member k−m times. Components first, axis singletons
	// last.
	type cloneJob struct {
		src    *Node
		copies int
	}
	var componentJobs, axisJobs []cloneJob
	for i := 0; i < len(root.Children); {
		j := i + 1
		for j < len(root.Children) && bytesEqualCore(root.Children[j].Cert, root.Children[i].Cert) {
			j++
		}
		if m := j - i; m < k {
			job := cloneJob{src: root.Children[i], copies: k - m}
			if root.Children[i].Kind == KindSingleton {
				axisJobs = append(axisJobs, job)
			} else {
				componentJobs = append(componentJobs, job)
			}
		}
		i = j
	}

	extra := 0
	for _, job := range append(append([]cloneJob(nil), componentJobs...), axisJobs...) {
		extra += job.copies * len(job.src.Verts)
	}
	b := graph.NewBuilder(n + extra)
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}

	// adj tracks the *current* neighborhood of every original vertex as
	// clones attach, so later clones see earlier ones.
	adj := make(map[int][]int, n)
	addEdge := func(u, v int) {
		b.AddEdge(u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for v := 0; v < n; v++ {
		adj[v] = g.NeighborSlice(v)
	}

	next := n
	clone := func(src *Node) {
		inSrc := make(map[int]int, len(src.Verts)) // original -> clone id
		for _, v := range src.Verts {
			inSrc[v] = next
			next++
		}
		for _, v := range src.Verts {
			cv := inSrc[v]
			for _, w := range adj[v] {
				if cw, ok := inSrc[w]; ok {
					// Internal edge: copy once (when v < w).
					if v < w {
						addEdge(cv, cw)
					}
				} else {
					addEdge(cv, w)
				}
			}
		}
	}
	for _, job := range componentJobs {
		for c := 0; c < job.copies; c++ {
			clone(job.src)
		}
	}
	for _, job := range axisJobs {
		for c := 0; c < job.copies; c++ {
			clone(job.src)
		}
	}
	return b.Build(), nil
}

func bytesEqualCore(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
