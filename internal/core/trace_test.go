package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"dvicl/internal/obs"
)

// spanNames flattens a span tree into a name → count multiset.
func spanNames(s obs.SpanSnapshot, into map[string]int) {
	into[s.Name]++
	for _, c := range s.Children {
		spanNames(c, into)
	}
}

// TestTracedBuildSpanTree drives a real build under a request trace and
// checks the tentpole contract: the trace carries a hierarchical span
// tree (build → refine → divide/leaf searches), per-request counter
// deltas, and every observation also landed in the base recorder.
func TestTracedBuildSpanTree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randGraph(r, 60, 3)

	base := obs.New()
	tr := obs.NewTrace("req-test", base)
	ctx := obs.WithTrace(context.Background(), tr)
	tree, err := BuildCtx(ctx, g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Root().End()

	snap := tr.Snapshot()
	names := map[string]int{}
	spanNames(snap.Spans, names)
	if names["build"] != 1 {
		t.Fatalf("want exactly one build span, got %d (tree: %v)", names["build"], names)
	}
	if names["refine"] == 0 {
		t.Fatalf("no refine span under build: %v", names)
	}
	if names["divide_i"]+names["divide_s"]+names["leaf_search"]+names["twins"] == 0 {
		t.Fatalf("no divide/leaf/twins spans recorded: %v", names)
	}

	// The build span carries the graph size.
	var build obs.SpanSnapshot
	for _, c := range snap.Spans.Children {
		if c.Name == "build" {
			build = c
		}
	}
	if build.Attrs["n"] != int64(g.N()) || build.Attrs["m"] != int64(g.M()) {
		t.Fatalf("build span attrs = %v, want n=%d m=%d", build.Attrs, g.N(), g.M())
	}
	if build.Running || build.DurNs < 1 {
		t.Fatalf("build span not properly ended: %+v", build)
	}

	// Per-request counter deltas match the work the tree reports, and the
	// same observations were forwarded to the base recorder.
	s := tree.Stats()
	if snap.Counters["refine_calls"] == 0 {
		t.Fatal("trace has no refine_calls delta")
	}
	if got := snap.Counters["search_nodes"]; got != s.LeafSearchNodes {
		t.Fatalf("trace search_nodes = %d, Stats.LeafSearchNodes = %d", got, s.LeafSearchNodes)
	}
	if got := base.Counter(obs.SearchNodes); got != s.LeafSearchNodes {
		t.Fatalf("base search_nodes = %d, want %d (forwarding lost observations)", got, s.LeafSearchNodes)
	}
	if base.Counter(obs.RefineCalls) != snap.Counters["refine_calls"] {
		t.Fatalf("base refine_calls %d != trace delta %d",
			base.Counter(obs.RefineCalls), snap.Counters["refine_calls"])
	}
	if ps, ok := snap.Phases["build"]; !ok || ps.Count != 1 {
		t.Fatalf("trace build phase = %+v, want one span", snap.Phases["build"])
	}
}

// TestTracedBuildIdenticalCert is the acceptance criterion: tracing must
// be purely observational — certificates are byte-identical with a
// trace, with a plain recorder, and with nothing at all, sequential or
// parallel.
func TestTracedBuildIdenticalCert(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5; trial++ {
		g := randGraph(r, 40+10*trial, 3)
		plain := Build(g, nil, Options{})
		want := plain.CanonicalCert()

		for _, workers := range []int{0, 4} {
			tr := obs.NewTrace("t", obs.New())
			ctx := obs.WithTrace(context.Background(), tr)
			traced, err := BuildCtx(ctx, g, nil, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, traced.CanonicalCert()) {
				t.Fatalf("trial %d workers %d: tracing changed the certificate", trial, workers)
			}
			if plain.Stats() != traced.Stats() {
				t.Fatalf("trial %d workers %d: tracing changed Stats: %+v vs %+v",
					trial, workers, plain.Stats(), traced.Stats())
			}
		}
	}
}

// TestUntracedCtxBuildNoTraceCost: BuildCtx without a trace in ctx keeps
// opt.Obs untouched and records no spans anywhere (the nil-trace no-op
// path at every call site).
func TestUntracedCtxBuildNoTraceCost(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randGraph(r, 40, 3)
	rec := obs.New()
	if _, err := BuildCtx(context.Background(), g, nil, Options{Obs: rec}); err != nil {
		t.Fatal(err)
	}
	if rec.Counter(obs.RefineCalls) == 0 {
		t.Fatal("explicit Options.Obs must still record when no trace is present")
	}
}
