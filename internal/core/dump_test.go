package core

import (
	"strings"
	"testing"
)

// TestDumpFig1Golden renders the AutoTree of the paper's example graph
// (Fig. 1(a)) — the analogue of the paper's Figures 4 and 8 — and checks
// the structural facts the figures show: the hub is an axis singleton,
// the triangle's vertices are three symmetric singleton leaves, and the
// C4 forms symmetric sibling groups.
func TestDumpFig1Golden(t *testing.T) {
	tree := Build(fig1(), nil, Options{DisableTwinSimplification: true})
	var sb strings.Builder
	if err := tree.Dump(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	t.Logf("AutoTree of Fig. 1(a):\n%s", out)

	if !strings.Contains(out, "internal divide=I") {
		t.Error("root should be divided by DivideI (hub axis)")
	}
	if strings.Count(out, "singleton") < 4 {
		t.Errorf("expected at least 4 singleton leaves:\n%s", out)
	}
	if !strings.Contains(out, "symmetric sibling") {
		t.Errorf("expected symmetric sibling markers:\n%s", out)
	}
	// Dump must be deterministic.
	var sb2 strings.Builder
	if err := tree.Dump(&sb2, 10); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("Dump is not deterministic")
	}
}

func TestDumpElision(t *testing.T) {
	tree := Build(complete(20), nil, Options{})
	var sb strings.Builder
	if err := tree.Dump(&sb, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "…+16") {
		t.Fatalf("vertex elision missing:\n%s", sb.String())
	}
}

func TestDumpEmpty(t *testing.T) {
	tree := &Tree{}
	var sb strings.Builder
	if err := tree.Dump(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Fatalf("empty dump = %q", sb.String())
	}
}
