package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"dvicl/internal/engine"
	"dvicl/internal/gen"
	"dvicl/internal/graph"
)

// hardGraph returns a CFI construction whose full canonical build takes
// minutes — effectively unbounded on test timescales — so cancellation
// and budget tests are guaranteed to interrupt it mid-flight.
func hardGraph() *graph.Graph {
	return gen.CFI(gen.RigidCubic(100, 1), false)
}

// TestBuildCtxCancelPrompt is the acceptance race test: cancel a build
// of a hard graph mid-flight and require (a) a typed ErrCanceled, (b)
// return within 100ms of the cancel, and (c) no leaked goroutines. Run
// under -race it also exercises the latched-halt paths of the shared
// Ctl from the parallel subtree builders.
func TestBuildCtxCancelPrompt(t *testing.T) {
	g := hardGraph()
	before := runtime.NumGoroutine()

	for _, workers := range []int{0, 4, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		type outcome struct {
			tree *Tree
			err  error
		}
		done := make(chan outcome, 1)
		go func() {
			tree, err := BuildCtx(ctx, g, nil, Options{Workers: workers})
			done <- outcome{tree, err}
		}()

		// Let the build get deep into the search, then pull the plug.
		time.Sleep(50 * time.Millisecond)
		canceledAt := time.Now()
		cancel()

		select {
		case o := <-done:
			latency := time.Since(canceledAt)
			if !errors.Is(o.err, engine.ErrCanceled) {
				t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, o.err)
			}
			if o.tree != nil {
				t.Fatalf("workers=%d: canceled build returned a partial tree", workers)
			}
			if latency > 100*time.Millisecond {
				t.Fatalf("workers=%d: build returned %v after cancel, want <= 100ms", workers, latency)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: build did not return after cancel", workers)
		}
	}

	// Goroutine-leak check: the worker pool and any helper goroutines
	// must be gone. Allow the runtime a few scheduling quanta to reap.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBuildCtxPreCanceled: a context canceled before the build starts
// must stop at the first checkpoint, before any leaf search runs.
func TestBuildCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	tree, err := BuildCtx(ctx, hardGraph(), nil, Options{})
	if !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if tree != nil {
		t.Fatal("canceled build returned a tree")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("pre-canceled build took %v", d)
	}
}

func TestBuildCtxWholeBuildNodeCap(t *testing.T) {
	tree, err := BuildCtx(context.Background(), hardGraph(), nil,
		Options{Budget: engine.Budget{MaxNodes: 1000}})
	if !errors.Is(err, engine.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if tree != nil {
		t.Fatal("over-budget build returned a tree")
	}
}

func TestBuildCtxWholeBuildTimeout(t *testing.T) {
	start := time.Now()
	_, err := BuildCtx(context.Background(), hardGraph(), nil,
		Options{Budget: engine.Budget{BuildTimeout: 30 * time.Millisecond}})
	if !errors.Is(err, engine.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("build ran %v past a 30ms budget", d)
	}
}

// TestBudgetCompositionBuildBoundWins: a whole-build deadline shorter
// than a generous per-leaf timeout must trip first and fail the build
// hard — the leaf bound never gets a chance to soft-truncate.
func TestBudgetCompositionBuildBoundWins(t *testing.T) {
	_, err := BuildCtx(context.Background(), hardGraph(), nil, Options{
		Budget: engine.Budget{
			BuildTimeout: 30 * time.Millisecond,
			LeafTimeout:  10 * time.Second,
		},
	})
	if !errors.Is(err, engine.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded from the whole-build bound", err)
	}
}

// TestBudgetCompositionLeafBoundSoft: with only per-leaf bounds set (a
// generous whole-build deadline), each leaf search is truncated
// best-effort and the build *succeeds* with Tree.Truncated — per-leaf
// bounds are soft, whole-build bounds are hard.
func TestBudgetCompositionLeafBoundSoft(t *testing.T) {
	tree, err := BuildCtx(context.Background(), hardGraph(), nil, Options{
		Budget: engine.Budget{
			BuildTimeout: 10 * time.Minute,
			LeafMaxNodes: 1,
		},
	})
	if err != nil {
		t.Fatalf("leaf-bounded build failed hard: %v", err)
	}
	if !tree.Truncated {
		t.Fatal("leaf cap of 1 node on a hard graph should truncate")
	}
}

// TestLegacyLeafKnobsFoldIntoBudget: the deprecated Options.LeafMaxNodes
// path must behave exactly like Budget.LeafMaxNodes.
func TestLegacyLeafKnobsFoldIntoBudget(t *testing.T) {
	g := hardGraph()
	legacy := Build(g, nil, Options{LeafMaxNodes: 1})
	budgeted, err := BuildCtx(context.Background(), g, nil,
		Options{Budget: engine.Budget{LeafMaxNodes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !legacy.Truncated || !budgeted.Truncated {
		t.Fatalf("truncated = %v/%v, want true/true", legacy.Truncated, budgeted.Truncated)
	}
	lc, bc := legacy.CanonicalCert(), budgeted.CanonicalCert()
	if string(lc) != string(bc) {
		t.Fatal("legacy LeafMaxNodes and Budget.LeafMaxNodes produced different certificates")
	}
}

// TestBuildCtxUnbudgetedMatchesBuild: threading a background context
// and zero budget through the new entry point must be a pure refactor —
// byte-identical certificates to the legacy wrapper.
func TestBuildCtxUnbudgetedMatchesBuild(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := gen.ErdosRenyi(60, 140, 7000+seed)
		want := Build(g, nil, Options{}).CanonicalCert()
		tree, err := BuildCtx(context.Background(), g, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.CanonicalCert(); string(got) != string(want) {
			t.Fatalf("seed %d: BuildCtx certificate differs from Build", seed)
		}
	}
}
