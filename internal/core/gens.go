package core

import (
	"bytes"
	"math/big"

	"dvicl/internal/engine"
	"dvicl/internal/group"
	"dvicl/internal/perm"
)

// gensCollector accumulates sparse automorphism generators while walking
// the finished tree.
type gensCollector struct {
	n    int
	gens []perm.Sparse
	err  error
}

// collectGens derives a generating set of Aut(G, π) from the finished
// tree: the lifted within-leaf generators, plus one sibling-swap
// isomorphism γi ∘ γj⁻¹ for every adjacent pair of equal-certificate
// siblings (Section 5: these form a generating set because every
// automorphism maps tree nodes to same-certificate tree nodes).
// Generators are sparse: each moves only its leaf's or sibling pair's
// vertices, so the collection stays linear in the tree size even on
// million-vertex graphs.
func (b *builder) collectGens(root *Node) ([]perm.Sparse, error) {
	gc := &gensCollector{n: b.t.g.N()}
	gc.walk(root)
	if gc.err != nil {
		return nil, gc.err
	}
	return gc.gens, nil
}

func (gc *gensCollector) walk(nd *Node) {
	if gc.err != nil {
		return
	}
	switch nd.Kind {
	case KindSingleton:
		return
	case KindLeaf:
		for _, lg := range nd.localGens {
			s := perm.Sparse{N: gc.n}
			for i, v := range nd.Verts {
				if img := nd.Verts[lg[i]]; img != v {
					s.Moved = append(s.Moved, [2]int{v, img})
				}
			}
			if !s.IsIdentity() {
				gc.gens = append(gc.gens, s)
			}
		}
	case KindInternal:
		for i := 0; i+1 < len(nd.Children); i++ {
			a, bb := nd.Children[i], nd.Children[i+1]
			if bytes.Equal(a.Cert, bb.Cert) {
				if len(a.Verts) != len(bb.Verts) {
					gc.err = engine.Internalf("core.collectGens",
						"equal-certificate siblings of different size (%d vs %d)",
						len(a.Verts), len(bb.Verts))
					return
				}
				gc.gens = append(gc.gens, swapGen(gc.n, a, bb))
			}
		}
		for _, c := range nd.Children {
			gc.walk(c)
		}
	}
}

// swapGen builds the automorphism that exchanges two equal-certificate
// siblings by matching their vertices canonical-position by canonical-
// position (the γij of Section 5), fixing everything else. The caller
// has verified the siblings are the same size.
func swapGen(n int, a, b *Node) perm.Sparse {
	av := vertsByGamma(a)
	bv := vertsByGamma(b)
	s := perm.Sparse{N: n, Moved: make([][2]int, 0, 2*len(av))}
	for k := range av {
		s.Moved = append(s.Moved, [2]int{av[k], bv[k]}, [2]int{bv[k], av[k]})
	}
	return s
}

// AutOrder returns |Aut(G, π)| using the tree structure: the product over
// internal nodes of k! for every run of k equal-certificate siblings,
// times the product of the leaf automorphism group orders. This is exact
// because equal-certificate siblings are independent components of the
// reduced graph, so the group is the iterated wreath-style product the
// AutoTree exposes.
func (t *Tree) AutOrder() *big.Int {
	if t.Root == nil {
		return big.NewInt(1)
	}
	return nodeAutOrder(t.Root)
}

func nodeAutOrder(nd *Node) *big.Int {
	if nd.autOrder != nil {
		return nd.autOrder
	}
	order := big.NewInt(1)
	switch nd.Kind {
	case KindSingleton:
	case KindLeaf:
		order = group.New(len(nd.Verts), nd.localGens).Order()
	case KindInternal:
		for _, c := range nd.Children {
			order.Mul(order, nodeAutOrder(c))
		}
		run := 1
		for i := 1; i <= len(nd.Children); i++ {
			if i < len(nd.Children) && bytes.Equal(nd.Children[i].Cert, nd.Children[i-1].Cert) {
				run++
				continue
			}
			if run > 1 {
				order.Mul(order, factorial(run))
			}
			run = 1
		}
	}
	nd.autOrder = order
	return order
}

func factorial(k int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= k; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

// Orbits returns the orbit partition of the vertices under Aut(G, π) —
// the orbit coloring whose cell counts Tables 1 and 2 report.
func (t *Tree) Orbits() [][]int {
	return group.OrbitsSparse(t.g.N(), t.sparseGens)
}

// OrbitStats returns the cells / singleton columns of Tables 1 and 2.
func (t *Tree) OrbitStats() (cells, singletons int) {
	return group.OrbitStatsSparse(t.g.N(), t.sparseGens)
}
