package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dvicl/internal/graph"
	"dvicl/internal/perm"
	"dvicl/internal/store"
)

// AutoTree serialization: the tree is an index (the paper's term), so a
// system that pays to build it over a massive graph wants to persist it.
// The format is a simple length-prefixed binary encoding, independent of
// host byte order; the graph itself is not stored — the caller supplies
// the same graph at load time (checked via vertex/edge counts).
//
// Load failures use the typed error set of internal/store — ErrBadMagic,
// *VersionError, ErrTruncated, ErrChecksum — so callers (the treestore's
// corruption fallback in particular) can distinguish a torn file from
// version skew from structural corruption with errors.Is / errors.As.

// treeMagicPrefix identifies an AutoTree file; the byte after it is the
// format version.
const (
	treeMagicPrefix = "DVICLAT"
	treeVersion     = 1
	treeMagic       = uint64(0x4456_4943_4c41_5400 | treeVersion) // "DVICLAT" + version
)

type treeWriter struct {
	w   *bufio.Writer
	err error
}

func (tw *treeWriter) u64(x uint64) {
	if tw.err != nil {
		return
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], x)
	_, tw.err = tw.w.Write(buf[:])
}

func (tw *treeWriter) num(x int) { tw.u64(uint64(x)) }
func (tw *treeWriter) ints(xs []int) {
	tw.num(len(xs))
	for _, x := range xs {
		tw.num(x)
	}
}
func (tw *treeWriter) bytes(b []byte) {
	tw.num(len(b))
	if tw.err == nil {
		_, tw.err = tw.w.Write(b)
	}
}

// Save writes the tree to w.
func (t *Tree) Save(w io.Writer) error {
	tw := &treeWriter{w: bufio.NewWriter(w)}
	tw.u64(treeMagic)
	tw.num(t.g.N())
	tw.num(t.g.M())
	tw.ints(t.colors)
	tw.ints(t.Gamma)
	if t.Truncated {
		tw.num(1)
	} else {
		tw.num(0)
	}
	tw.num(len(t.sparseGens))
	for _, s := range t.sparseGens {
		tw.num(len(s.Moved))
		for _, m := range s.Moved {
			tw.num(m[0])
			tw.num(m[1])
		}
	}
	var save func(nd *Node)
	save = func(nd *Node) {
		tw.num(int(nd.Kind))
		tw.num(int(nd.Divide))
		tw.ints(nd.Verts)
		tw.ints(nd.gammaVal)
		tw.bytes(nd.Cert)
		tw.bytes(nd.desc)
		tw.num(len(nd.localGens))
		for _, g := range nd.localGens {
			tw.ints(g)
		}
		if nd.localGraph != nil {
			edges := nd.localGraph.Edges()
			tw.num(nd.localGraph.N())
			tw.num(len(edges))
			for _, e := range edges {
				tw.num(e[0])
				tw.num(e[1])
			}
		} else {
			tw.num(-1)
		}
		tw.num(len(nd.Children))
		for _, c := range nd.Children {
			save(c)
		}
	}
	if t.Root != nil {
		tw.num(1)
		save(t.Root)
	} else {
		tw.num(0)
	}
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

type treeReader struct {
	r   *bufio.Reader
	err error
}

func (tr *treeReader) u64() uint64 {
	if tr.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		tr.err = truncated(err)
		return 0
	}
	return binary.BigEndian.Uint64(buf[:])
}

// truncated maps an io read failure onto the typed store error set: a
// stream that ends mid-field is store.ErrTruncated (a torn file), any
// other failure passes through.
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("core: corrupt tree: %w", store.ErrTruncated)
	}
	return err
}

func (tr *treeReader) num() int { return int(int64(tr.u64())) }

// maxChunk bounds any single length field: it must cover the largest
// legitimate payload (a vertex list), but a corrupt length must not cause
// a gigantic allocation before the read fails.
const maxChunk = 1 << 28

func (tr *treeReader) ints() []int {
	n := tr.num()
	if tr.err != nil || n < 0 || n > maxChunk {
		tr.fail("bad slice length")
		return nil
	}
	out := make([]int, 0, min(n, 1<<16))
	for i := 0; i < n; i++ {
		out = append(out, tr.num())
		if tr.err != nil {
			return nil
		}
	}
	return out
}

func (tr *treeReader) bytes() []byte {
	n := tr.num()
	if tr.err != nil || n < 0 || n > maxChunk {
		tr.fail("bad byte length")
		return nil
	}
	out := make([]byte, 0, min(n, 1<<16))
	buf := make([]byte, 4096)
	for len(out) < n && tr.err == nil {
		chunk := n - len(out)
		if chunk > len(buf) {
			chunk = len(buf)
		}
		k, err := io.ReadFull(tr.r, buf[:chunk])
		if err != nil {
			tr.err = truncated(err)
		}
		out = append(out, buf[:k]...)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (tr *treeReader) fail(msg string) {
	if tr.err == nil {
		tr.err = fmt.Errorf("core: corrupt tree: %s: %w", msg, store.ErrChecksum)
	}
}

// Load reads a tree saved by Save, re-attaching it to g (which must be
// the same graph the tree was built from).
func Load(r io.Reader, g *graph.Graph) (*Tree, error) {
	tr := &treeReader{r: bufio.NewReader(r)}
	var hdr [8]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		return nil, truncated(err)
	}
	if string(hdr[:7]) != treeMagicPrefix {
		return nil, fmt.Errorf("core: not an AutoTree file: %w", store.ErrBadMagic)
	}
	if hdr[7] != treeVersion {
		return nil, &store.VersionError{File: "autotree", Got: uint16(hdr[7]), Want: treeVersion}
	}
	n := tr.num()
	m := tr.num()
	if tr.err == nil && (n != g.N() || m != g.M()) {
		return nil, fmt.Errorf("core: tree was built for a graph with n=%d m=%d, got n=%d m=%d: %w",
			n, m, g.N(), g.M(), store.ErrChecksum)
	}
	t := &Tree{g: g, leafOf: make([]int, g.N())}
	t.colors = tr.ints()
	gamma := tr.ints()
	if tr.err == nil && len(gamma) != g.N() {
		return nil, fmt.Errorf("core: corrupt tree: Gamma length %d, want %d: %w", len(gamma), g.N(), store.ErrChecksum)
	}
	t.Gamma = perm.Perm(gamma)
	t.Truncated = tr.num() == 1
	nGens := tr.num()
	if tr.err == nil && (nGens < 0 || nGens > 1<<31) {
		tr.fail("bad generator count")
	}
	for i := 0; i < nGens && tr.err == nil; i++ {
		k := tr.num()
		if tr.err == nil && (k < 0 || k > 2*g.N()) {
			tr.fail("bad moved-point count")
			break
		}
		s := perm.Sparse{N: g.N()}
		for j := 0; j < k && tr.err == nil; j++ {
			a := tr.num()
			b := tr.num()
			if a < 0 || a >= g.N() || b < 0 || b >= g.N() {
				tr.fail("moved point out of range")
				break
			}
			s.Moved = append(s.Moved, [2]int{a, b})
		}
		t.sparseGens = append(t.sparseGens, s)
	}
	var load func() *Node
	load = func() *Node {
		if tr.err != nil {
			return nil
		}
		nd := &Node{
			Kind:   NodeKind(tr.num()),
			Divide: DivideKind(tr.num()),
		}
		nd.Verts = tr.ints()
		for _, v := range nd.Verts {
			if v < 0 || v >= g.N() {
				tr.fail("vertex out of range")
				return nil
			}
		}
		nd.gammaVal = tr.ints()
		nd.Cert = tr.bytes()
		nd.desc = tr.bytes()
		nLocal := tr.num()
		if tr.err == nil && (nLocal < 0 || nLocal > 1<<20) {
			tr.fail("bad local generator count")
			return nil
		}
		for i := 0; i < nLocal && tr.err == nil; i++ {
			lg := tr.ints()
			for _, x := range lg {
				if x < 0 || x >= len(nd.Verts) {
					tr.fail("local generator out of range")
					return nil
				}
			}
			nd.localGens = append(nd.localGens, perm.Perm(lg))
		}
		ln := tr.num()
		if tr.err == nil && ln > g.N() {
			tr.fail("bad local graph size")
			return nil
		}
		if ln >= 0 && tr.err == nil {
			le := tr.num()
			if tr.err == nil && (le < 0 || le > ln*ln) {
				tr.fail("bad local edge count")
				return nil
			}
			b := graph.NewBuilder(ln)
			for i := 0; i < le && tr.err == nil; i++ {
				u := tr.num()
				v := tr.num()
				if u < 0 || u >= ln || v < 0 || v >= ln {
					tr.fail("local edge out of range")
					return nil
				}
				b.AddEdge(u, v)
			}
			if tr.err == nil {
				nd.localGraph = b.Build()
			}
		}
		nc := tr.num()
		if tr.err == nil && (nc < 0 || nc > g.N()+1) {
			tr.fail("bad child count")
			return nil
		}
		for i := 0; i < nc && tr.err == nil; i++ {
			nd.Children = append(nd.Children, load())
		}
		return nd
	}
	if tr.num() == 1 {
		t.Root = load()
	}
	if tr.err != nil {
		return nil, tr.err
	}
	t.indexLeaves()
	return t, nil
}
