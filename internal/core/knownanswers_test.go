package core

import (
	"math/big"
	"testing"

	"dvicl/internal/graph"
)

// Known-answer battery: DviCL's |Aut| on classical graph families with
// group orders from the literature, exercising every divide/combine path.

func wheel(n int) *graph.Graph { // W_n: cycle C_n plus a hub
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
		edges = append(edges, [2]int{i, n})
	}
	return graph.FromEdges(n+1, edges)
}

func hypercube(d int) *graph.Graph { // Q_d
	n := 1 << d
	var edges [][2]int
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if w > v {
				edges = append(edges, [2]int{v, w})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

func completeMultipartite(parts ...int) *graph.Graph {
	total := 0
	var start []int
	for _, p := range parts {
		start = append(start, total)
		total += p
	}
	var edges [][2]int
	for pi := range parts {
		for pj := pi + 1; pj < len(parts); pj++ {
			for a := 0; a < parts[pi]; a++ {
				for b := 0; b < parts[pj]; b++ {
					edges = append(edges, [2]int{start[pi] + a, start[pj] + b})
				}
			}
		}
	}
	return graph.FromEdges(total, edges)
}

func caterpillar(spine int, legs []int) *graph.Graph {
	n := spine
	for _, l := range legs {
		n += l
	}
	var edges [][2]int
	for i := 0; i+1 < spine; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	next := spine
	for i, l := range legs {
		for k := 0; k < l; k++ {
			edges = append(edges, [2]int{i, next})
			next++
		}
	}
	return graph.FromEdges(n, edges)
}

func binaryTree(depth int) *graph.Graph {
	n := (1 << (depth + 1)) - 1
	var edges [][2]int
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{v, (v - 1) / 2})
	}
	return graph.FromEdges(n, edges)
}

func fact(n int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

func mulAll(xs ...*big.Int) *big.Int {
	out := big.NewInt(1)
	for _, x := range xs {
		out.Mul(out, x)
	}
	return out
}

func pow2(k int) *big.Int { return new(big.Int).Lsh(big.NewInt(1), uint(k)) }

func TestKnownGroupOrders(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want *big.Int
	}{
		// Wheels: the hub is fixed, the rim keeps its dihedral group.
		{"W5", wheel(5), big.NewInt(10)},
		{"W8", wheel(8), big.NewInt(16)},
		// Hypercubes: |Aut(Q_d)| = 2^d · d!.
		{"Q3", hypercube(3), mulAll(pow2(3), fact(3))},
		{"Q4", hypercube(4), mulAll(pow2(4), fact(4))},
		// Complete multipartite with equal parts: wreath S_a wr S_k.
		{"K222", completeMultipartite(2, 2, 2), mulAll(fact(2), fact(2), fact(2), fact(3))},
		{"K333", completeMultipartite(3, 3, 3), mulAll(fact(3), fact(3), fact(3), fact(3))},
		// Unequal parts: direct product only.
		{"K234", completeMultipartite(2, 3, 4), mulAll(fact(2), fact(3), fact(4))},
		// Caterpillar with asymmetric leg counts: the spine is rigid (no
		// mirror since [2,3,2,2] reversed differs) and only legs permute.
		{"Caterpillar", caterpillar(4, []int{2, 3, 2, 2}), mulAll(fact(2), fact(3), fact(2), fact(2))},
		// Perfect binary trees: iterated wreath; depth d has order
		// 2^(2^d - 1): depth 2 → 2^3 = 8, depth 3 → 2^7 = 128.
		{"BinTree2", binaryTree(2), pow2(3)},
		{"BinTree3", binaryTree(3), pow2(7)},
		// Disjoint unions of equal components: wreath product.
		{"4xK3", disjointCopies(complete(3), 4), mulAll(fact(3), fact(3), fact(3), fact(3), fact(4))},
		// Matching of 5 edges: S2 wr S5.
		{"5xK2", disjointCopies(complete(2), 5), mulAll(pow2(5), fact(5))},
	}
	for _, mode := range bothModes {
		for _, tc := range cases {
			tree := Build(tc.g, nil, mode.opt)
			if tree.AutOrder().Cmp(tc.want) != 0 {
				t.Errorf("%s/%s: |Aut| = %v, want %v", mode.name, tc.name, tree.AutOrder(), tc.want)
			}
			if err := tree.Verify(); err != nil {
				t.Errorf("%s/%s: %v", mode.name, tc.name, err)
			}
		}
	}
}

func disjointCopies(g *graph.Graph, k int) *graph.Graph {
	n := g.N()
	b := graph.NewBuilder(n * k)
	for c := 0; c < k; c++ {
		for _, e := range g.Edges() {
			b.AddEdge(c*n+e[0], c*n+e[1])
		}
	}
	return b.Build()
}

// TestKnownOrbitCounts pins orbit structure on the same families.
func TestKnownOrbitCounts(t *testing.T) {
	cases := []struct {
		name      string
		g         *graph.Graph
		wantCells int
	}{
		{"W6", wheel(6), 2},                                // rim, hub
		{"Q3", hypercube(3), 1},                            // vertex-transitive
		{"K234", completeMultipartite(2, 3, 4), 3},         // one orbit per part
		{"BinTree2", binaryTree(2), 3},                     // root, middle, leaves
		{"4xK3", disjointCopies(complete(3), 4), 1},        // all 12 equivalent
		{"Caterpillar", caterpillar(3, []int{2, 0, 2}), 3}, // mirror: {0,2},{1},{legs}
	}
	for _, tc := range cases {
		tree := Build(tc.g, nil, Options{})
		if got := len(tree.Orbits()); got != tc.wantCells {
			t.Errorf("%s: %d orbits, want %d (%v)", tc.name, got, tc.wantCells, tree.Orbits())
		}
	}
}
