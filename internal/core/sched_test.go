package core

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"slices"
	"testing"
	"time"

	"dvicl/internal/engine"
	"dvicl/internal/gen"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
)

// TestDeepChainDeterminism drives the scheduler's worst case for
// fan-out-only parallelism: a complete binary tree divides as a
// depth-long chain of 3-way divides (singleton + two half-trees), so
// every drop of parallelism comes from thieves stealing the sibling the
// owner left on its deque. Certificates, labelings, Stats and every
// non-scheduling counter must be identical at every worker count.
func TestDeepChainDeterminism(t *testing.T) {
	g := gen.CompleteBinaryTree(10)
	recSeq := obs.New()
	want := Build(g, nil, Options{Obs: recSeq})
	// Pin the steal-heavy shape: a chain at least as deep as the input
	// tree, not one wide fanout.
	if s := want.Stats(); s.Depth < 10 {
		t.Fatalf("deep-chain family lost its shape: AutoTree depth %d", s.Depth)
	}
	for _, workers := range []int{2, 3, 8, runtime.NumCPU()} {
		rec := obs.New()
		got := Build(g, nil, Options{Workers: workers, Obs: rec})
		if !bytes.Equal(want.CanonicalCert(), got.CanonicalCert()) {
			t.Fatalf("workers=%d: deep-chain certificate differs", workers)
		}
		if !slices.Equal(want.Gamma, got.Gamma) {
			t.Fatalf("workers=%d: canonical labeling differs", workers)
		}
		if want.Stats() != got.Stats() {
			t.Fatalf("workers=%d: Stats differ: %+v vs %+v", workers, want.Stats(), got.Stats())
		}
		if workers > 1 && rec.Counter(obs.WorkerSpawns) == 0 {
			t.Fatalf("workers=%d: no tasks reached the scheduler", workers)
		}
		for _, c := range obs.AllCounters() {
			if obs.SchedulerCounter(c) {
				continue
			}
			if got, want := rec.Counter(c), recSeq.Counter(c); got != want {
				t.Fatalf("workers=%d: counter %s = %d, sequential %d", workers, c, got, want)
			}
		}
	}
}

// TestParallelCombineSTSort forces combineST's parallel certificate sort:
// a union of thousands of two- and three-vertex components gives the
// root a fanout past parSortMin with long runs of equal certificates, so
// any stability bug in the chunked sort + pairwise merge would reorder
// equal-cert siblings and change gamma ranks. The tree must stay
// byte-identical to the sequential single-stable-sort build.
func TestParallelCombineSTSort(t *testing.T) {
	parts := make([]*graph.Graph, 0, 2600)
	for i := 0; i < 2300; i++ {
		parts = append(parts, graph.FromEdges(2, [][2]int{{0, 1}}))
	}
	for i := 0; i < 300; i++ {
		parts = append(parts, graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}}))
	}
	g := gen.DisjointUnion(parts...)
	want := Build(g, nil, Options{})
	if fanout := len(want.Root.Children); fanout < parSortMin {
		t.Fatalf("root fanout %d no longer exercises the parallel sort (min %d)", fanout, parSortMin)
	}
	for _, workers := range []int{2, 8} {
		got := Build(g, nil, Options{Workers: workers})
		if !bytes.Equal(want.CanonicalCert(), got.CanonicalCert()) {
			t.Fatalf("workers=%d: certificate differs under the parallel sort", workers)
		}
		if !slices.Equal(want.Gamma, got.Gamma) {
			t.Fatalf("workers=%d: canonical labeling differs under the parallel sort", workers)
		}
	}
}

// TestBuildChildrenErrorPath is the backported error-path regression
// test: when the whole-build budget trips inside one child's leaf
// search, the remaining siblings must not keep building. (The old
// token-bucket fan-out checked the error latch only after handing out
// each child, so its inline path kept launching leaf searches after a
// sibling had already failed.) Sequentially exactly one leaf search may
// start; with two workers at most the one in-flight sibling can have
// started before the scheduler latched the error.
func TestBuildChildrenErrorPath(t *testing.T) {
	parts := make([]*graph.Graph, 16)
	for i := range parts {
		parts[i] = cycle(12) // vertex-transitive: every component needs a leaf search
	}
	g := gen.DisjointUnion(parts...)
	for _, tc := range []struct {
		workers     int
		maxSearches int64
	}{
		{0, 1},
		{2, 2},
	} {
		rec := obs.New()
		_, err := BuildCtx(context.Background(), g, nil, Options{
			Workers: tc.workers,
			Budget:  engine.Budget{MaxNodes: 1},
			Obs:     rec,
		})
		if !errors.Is(err, engine.ErrBudgetExceeded) {
			t.Fatalf("workers=%d: err = %v, want ErrBudgetExceeded", tc.workers, err)
		}
		if got := rec.Counter(obs.LeafSearches); got == 0 || got > tc.maxSearches {
			t.Fatalf("workers=%d: %d leaf searches started, want 1..%d — siblings built past the error",
				tc.workers, got, tc.maxSearches)
		}
	}
}

// TestSchedulerCancelHammer cancels parallel builds at staggered points
// — from before the root divide to deep inside the leaf searches — and
// requires a typed error (or clean completion when the cancel lost the
// race), no partial trees, and zero leaked pool goroutines. CI runs it
// with -race -count=5 alongside the other cancellation tests.
func TestSchedulerCancelHammer(t *testing.T) {
	graphs := []*graph.Graph{gen.CompleteBinaryTree(9), hardGraph()}
	before := runtime.NumGoroutine()
	delay := 50 * time.Microsecond
	for i := 0; i < 8; i++ {
		for _, g := range graphs {
			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(delay, cancel)
			tree, err := BuildCtx(ctx, g, nil, Options{Workers: 8})
			timer.Stop()
			cancel()
			switch {
			case err == nil:
				if tree == nil {
					t.Fatal("nil tree without error")
				}
			case errors.Is(err, engine.ErrCanceled):
				if tree != nil {
					t.Fatal("canceled build returned a partial tree")
				}
			default:
				t.Fatalf("unexpected error %v", err)
			}
		}
		delay *= 3 // ~50µs .. ~100ms: root path, divide cascade, leaf searches
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
