package core

import (
	"sort"
	"sync"

	"dvicl/internal/engine"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
)

// subgraph is a working colored subgraph (g, πg) during construction:
// local vertex i of the (possibly edge-reduced) graph corresponds to the
// original vertex verts[i]. The projected coloring πg is implicit — it is
// the global color array restricted to verts (Theorem 6.1).
type subgraph struct {
	verts []int // sorted original ids
	local *graph.Graph
}

type builder struct {
	t   *Tree
	opt Options
	// budget is opt's effective budget (legacy leaf knobs folded in);
	// ctl enforces its whole-build bounds plus context cancellation.
	// ctl is nil for unbudgeted, uncancelable builds.
	budget  engine.Budget
	ctl     *engine.Ctl
	scratch *scratch
	// sem is the token bucket bounding concurrent subtree builders
	// (nil when sequential).
	sem chan struct{}
	// tr is the request trace the build attaches its span tree to
	// (nil when the build is untraced; every use is nil-safe).
	tr *obs.Trace

	mu        sync.Mutex
	truncated bool
}

// markTruncated records that some leaf search hit its budget.
func (b *builder) markTruncated() {
	b.mu.Lock()
	b.truncated = true
	b.mu.Unlock()
}

func (b *builder) wasTruncated() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.truncated
}

// scratch holds reusable per-builder buffers so dividing a million-vertex
// graph does not allocate maps per node.
type scratch struct {
	localIdx []int32 // global vertex -> local index+1; 0 = absent
}

func newScratch(n int) *scratch {
	return &scratch{localIdx: make([]int32, n)}
}

// subgraphOf induces the subgraph of the original graph on verts.
func (b *builder) subgraphOf(verts []int) *subgraph {
	sorted := append([]int(nil), verts...)
	sort.Ints(sorted)
	idx := b.scratch.localIdx
	for i, v := range sorted {
		idx[v] = int32(i) + 1
	}
	gb := graph.NewBuilder(len(sorted))
	for i, v := range sorted {
		b.t.g.Neighbors(v, func(w int) {
			if j := idx[w]; j != 0 && int(j-1) > i {
				gb.AddEdge(i, int(j-1))
			}
		})
	}
	for _, v := range sorted {
		idx[v] = 0
	}
	return &subgraph{verts: sorted, local: gb.Build()}
}

// induceLocal induces a child subgraph from sg on the given local indices,
// preserving sg's (possibly already reduced) edge set.
func induceLocal(sg *subgraph, locals []int) *subgraph {
	sort.Ints(locals)
	pos := make(map[int]int, len(locals))
	verts := make([]int, len(locals))
	for i, l := range locals {
		pos[l] = i
		verts[i] = sg.verts[l]
	}
	gb := graph.NewBuilder(len(locals))
	for i, l := range locals {
		sg.local.Neighbors(l, func(w int) {
			if j, ok := pos[w]; ok && j > i {
				gb.AddEdge(i, j)
			}
		})
	}
	return &subgraph{verts: verts, local: gb.Build()}
}

// colorOf returns the projected color πg(v) for local vertex l of sg,
// which equals the global color (Theorem 6.1).
func (b *builder) colorOf(sg *subgraph, l int) int {
	return b.t.colors[sg.verts[l]]
}

// cellsOf groups sg's local vertices by color, ordered by color. Each
// cell's locals are ascending.
func (b *builder) cellsOf(sg *subgraph) [][]int {
	byColor := map[int][]int{}
	var colors []int
	for l := range sg.verts {
		c := b.colorOf(sg, l)
		if _, ok := byColor[c]; !ok {
			colors = append(colors, c)
		}
		byColor[c] = append(byColor[c], l)
	}
	sort.Ints(colors)
	cells := make([][]int, 0, len(colors))
	for _, c := range colors {
		cells = append(cells, byColor[c])
	}
	return cells
}

// divideResult is the outcome of a successful DivideI or DivideS.
type divideResult struct {
	kind     DivideKind
	children []*subgraph
	// desc is the removal descriptor folded into the parent certificate:
	// it records, in color terms, exactly which edges the division
	// removed, so the certificate remains a complete isomorphism
	// invariant (see combine.go).
	desc []byte
}

// divideI implements Algorithm 2: isolate every singleton cell of πg as a
// one-vertex subgraph and split the remainder into connected components.
// It returns nil when the division would not produce at least two
// children (the node "cannot be disconnected by DivideI").
func (b *builder) divideI(sg *subgraph, ws *engine.Workspace) *divideResult {
	n := len(sg.verts)
	colorCount := map[int]int{}
	for l := 0; l < n; l++ {
		colorCount[b.colorOf(sg, l)]++
	}
	var singletons []int // local ids whose projected cell is {v}
	for l := 0; l < n; l++ {
		if colorCount[b.colorOf(sg, l)] == 1 {
			singletons = append(singletons, l)
		}
	}
	// ws.Bits flags the singleton locals; the singletons slice doubles as
	// the visited list that restores the all-false invariant below.
	for _, l := range singletons {
		ws.Bits[l] = true
	}
	var rest []int
	for l := 0; l < n; l++ {
		if !ws.Bits[l] {
			rest = append(rest, l)
		}
	}
	for _, l := range singletons {
		ws.Bits[l] = false
	}

	var children []*subgraph
	// Descriptor: by equitability, a singleton cell {v} is adjacent to
	// all-or-none of every other cell, so (color(v), neighbor colors)
	// reconstructs every removed edge. Entries are sorted by color —
	// singleton cells have distinct colors — so the descriptor is
	// isomorphism-invariant regardless of vertex numbering.
	type axisEntry struct {
		color    int
		nbColors []int
	}
	entries := make([]axisEntry, 0, len(singletons))
	for _, l := range singletons {
		children = append(children, &subgraph{
			verts: []int{sg.verts[l]},
			local: graph.FromEdges(1, nil),
		})
		var nbColors []int
		seen := map[int]bool{}
		sg.local.Neighbors(l, func(w int) {
			c := b.colorOf(sg, w)
			if !seen[c] {
				seen[c] = true
				nbColors = append(nbColors, c)
			}
		})
		sort.Ints(nbColors)
		entries = append(entries, axisEntry{b.colorOf(sg, l), nbColors})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].color < entries[j].color })
	desc := newDescriptor(DividedI)
	for _, e := range entries {
		desc.singleton(e.color, e.nbColors)
	}
	if len(rest) > 0 {
		restSub := induceLocal(sg, rest)
		for _, comp := range restSub.local.ConnectedComponents() {
			children = append(children, induceLocal(restSub, comp))
		}
	}
	if len(children) < 2 {
		return nil
	}
	return &divideResult{kind: DividedI, children: children, desc: desc.bytes()}
}

// divideS implements Algorithm 3: remove the edges of every cell that
// induces a clique and of every cell pair that forms a complete bipartite
// graph (Theorem 6.4 shows this preserves Aut(g, πg)), then split into
// connected components. It returns nil if nothing was removed or the
// removal does not disconnect the subgraph.
func (b *builder) divideS(sg *subgraph) *divideResult {
	n := len(sg.verts)
	colorCount := map[int]int{}
	for l := 0; l < n; l++ {
		colorCount[b.colorOf(sg, l)]++
	}
	// Count edges per (color, color) pair.
	type pair struct{ a, b int }
	edgeCount := map[pair]int{}
	for l := 0; l < n; l++ {
		cl := b.colorOf(sg, l)
		sg.local.Neighbors(l, func(w int) {
			if w < l {
				return
			}
			cw := b.colorOf(sg, w)
			p := pair{cl, cw}
			if p.a > p.b {
				p.a, p.b = p.b, p.a
			}
			edgeCount[p]++
		})
	}
	removed := map[pair]bool{}
	var removedPairs []pair
	for p, cnt := range edgeCount {
		if p.a == p.b {
			k := colorCount[p.a]
			if k >= 2 && cnt == k*(k-1)/2 {
				removed[p] = true
				removedPairs = append(removedPairs, p)
			}
		} else {
			if cnt > 0 && cnt == colorCount[p.a]*colorCount[p.b] {
				removed[p] = true
				removedPairs = append(removedPairs, p)
			}
		}
	}
	if len(removed) == 0 {
		return nil
	}
	// Rebuild the reduced graph without the removed color-complete edges.
	gb := graph.NewBuilder(n)
	for l := 0; l < n; l++ {
		cl := b.colorOf(sg, l)
		sg.local.Neighbors(l, func(w int) {
			if w < l {
				return
			}
			p := pair{cl, b.colorOf(sg, w)}
			if p.a > p.b {
				p.a, p.b = p.b, p.a
			}
			if !removed[p] {
				gb.AddEdge(l, w)
			}
		})
	}
	reduced := &subgraph{verts: sg.verts, local: gb.Build()}
	comps := reduced.local.ConnectedComponents()
	if len(comps) < 2 {
		return nil
	}
	sort.Slice(removedPairs, func(i, j int) bool {
		if removedPairs[i].a != removedPairs[j].a {
			return removedPairs[i].a < removedPairs[j].a
		}
		return removedPairs[i].b < removedPairs[j].b
	})
	desc := newDescriptor(DividedS)
	for _, p := range removedPairs {
		desc.pair(p.a, p.b)
	}
	children := make([]*subgraph, 0, len(comps))
	for _, comp := range comps {
		children = append(children, induceLocal(reduced, comp))
	}
	return &divideResult{kind: DividedS, children: children, desc: desc.bytes()}
}
