package core

import (
	"slices"
	"sync"

	"dvicl/internal/engine"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
)

// subgraph is a working colored subgraph (g, πg) during construction:
// local vertex i of the (possibly edge-reduced) graph corresponds to the
// original vertex verts[i]. The projected coloring πg is implicit — it is
// the global color array restricted to verts (Theorem 6.1).
//
// Memory: verts is slab-backed (it becomes Node.Verts and outlives the
// build); local is an arena-backed CSR view owned by the divide frame
// that produced it — valid until that frame's Arena mark is released,
// which cl does only after the whole subtree is built. Leaves that keep
// their local graph promote it first (combineCL).
type subgraph struct {
	verts []int // sorted original ids
	local *graph.Graph
}

type builder struct {
	t   *Tree
	opt Options
	// budget is opt's effective budget (legacy leaf knobs folded in);
	// ctl enforces its whole-build bounds plus context cancellation.
	// ctl is nil for unbudgeted, uncancelable builds.
	budget engine.Budget
	ctl    *engine.Ctl
	// sched is the build's work-stealing worker pool (nil when
	// sequential); see sched.go.
	sched *sched
	// tr is the request trace the build attaches its span tree to
	// (nil when the build is untraced; every use is nil-safe).
	tr *obs.Trace

	mu        sync.Mutex
	truncated bool
}

// markTruncated records that some leaf search hit its budget.
func (b *builder) markTruncated() {
	b.mu.Lock()
	b.truncated = true
	b.mu.Unlock()
}

func (b *builder) wasTruncated() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.truncated
}

// subgraphOf induces the subgraph of the original graph on verts, with
// the CSR in the worker's arena (caller owns the frame) and verts in the
// slab.
func (b *builder) subgraphOf(verts []int, wk *worker) *subgraph {
	sorted := wk.slab.intSlice(len(verts))
	copy(sorted, verts)
	slices.Sort(sorted)
	ws := wk.ws
	idx := ws.LocalIdx
	v32 := ws.Arena.Alloc(len(sorted))
	for i, v := range sorted {
		idx[v] = int32(i) + 1
		v32[i] = int32(v)
	}
	offsets := ws.Arena.Alloc(len(sorted) + 1)
	adj := ws.Arena.Alloc(b.t.g.InduceOffsets(v32, idx, offsets))
	b.t.g.InduceAdj(v32, idx, adj)
	for _, v := range sorted {
		idx[v] = 0
	}
	sg := wk.slab.sub()
	sg.verts = sorted
	sg.local = wk.slab.graph(offsets, adj)
	return sg
}

// induceChild induces a child subgraph from sg on the given ascending
// local indices, preserving sg's (possibly already reduced) edge set.
// Because locals (and sg.verts) are ascending, the induced rows come out
// sorted with no per-row sort — the monotone-index-map property of
// graph.InduceAdj.
func induceChild(sg *subgraph, locals []int32, wk *worker) *subgraph {
	ws := wk.ws
	verts := wk.slab.intSlice(len(locals))
	idx := ws.LocalIdx
	for i, l := range locals {
		verts[i] = sg.verts[l]
		idx[l] = int32(i) + 1
	}
	offsets := ws.Arena.Alloc(len(locals) + 1)
	adj := ws.Arena.Alloc(sg.local.InduceOffsets(locals, idx, offsets))
	sg.local.InduceAdj(locals, idx, adj)
	for _, l := range locals {
		idx[l] = 0
	}
	child := wk.slab.sub()
	child.verts = verts
	child.local = wk.slab.graph(offsets, adj)
	return child
}

// componentsOf labels the connected components of g, returning the
// vertices grouped by component as arena-backed segments: component k's
// members, ascending, are members[starts[k]:starts[k+1]]. Components are
// numbered by their minimum vertex, matching graph.ConnectedComponents.
func componentsOf(g *graph.Graph, ws *engine.Workspace) (members []int32, starts []int32) {
	n := g.N()
	a := &ws.Arena
	comp := a.Alloc(n)
	for i := range comp {
		comp[i] = -1
	}
	stack := a.Alloc(n)
	nc := int32(0)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = nc
		stack[0] = int32(s)
		top := 1
		for top > 0 {
			top--
			v := stack[top]
			for _, w := range g.Neighbors32(int(v)) {
				if comp[w] < 0 {
					comp[w] = nc
					stack[top] = w
					top++
				}
			}
		}
		nc++
	}
	starts = a.Alloc(int(nc) + 1)
	for i := range starts {
		starts[i] = 0
	}
	for _, c := range comp {
		starts[c+1]++
	}
	for k := int32(1); k <= nc; k++ {
		starts[k] += starts[k-1]
	}
	cursor := a.Alloc(int(nc))
	copy(cursor, starts[:nc])
	members = a.Alloc(n)
	for v := 0; v < n; v++ {
		c := comp[v]
		members[cursor[c]] = int32(v)
		cursor[c]++
	}
	return members, starts
}

// colorOf returns the projected color πg(v) for local vertex l of sg,
// which equals the global color (Theorem 6.1).
func (b *builder) colorOf(sg *subgraph, l int) int {
	return b.t.colors[sg.verts[l]]
}

// cellsOf groups sg's local vertices by color, ordered by color; each
// cell's locals are ascending. The cells are views into the workspace's
// IntsA backing array: they remain valid through the enclosing
// combineCL (refinement and the leaf search do not use IntsA) but not
// across another divide/combine call — consumers copy what they keep.
func (b *builder) cellsOf(sg *subgraph, ws *engine.Workspace) [][]int {
	n := len(sg.verts)
	colors := ws.IntsB[:0]
	for l := 0; l < n; l++ {
		c := b.colorOf(sg, l)
		if ws.ColorCount[c] == 0 {
			colors = append(colors, c)
		}
		ws.ColorCount[c]++
	}
	slices.Sort(colors)
	ordered := ws.IntsA
	if cap(ordered) < n {
		ordered = make([]int, n)
	} else {
		ordered = ordered[:n]
	}
	// Cursor per color in Gamma (write-before-read), then a counting
	// pass in ascending l keeps every cell ascending.
	pos := 0
	for _, c := range colors {
		ws.Gamma[c] = pos
		pos += int(ws.ColorCount[c])
	}
	for l := 0; l < n; l++ {
		c := b.colorOf(sg, l)
		ordered[ws.Gamma[c]] = l
		ws.Gamma[c]++
	}
	cells := make([][]int, len(colors))
	p := 0
	for i, c := range colors {
		k := int(ws.ColorCount[c])
		cells[i] = ordered[p : p+k : p+k]
		p += k
		ws.ColorCount[c] = 0
	}
	ws.IntsB = colors[:0]
	ws.IntsA = ordered[:0]
	return cells
}

// childRef names one child of a division without necessarily inducing
// its subgraph yet. Singleton children are materialized eagerly (a K1
// costs two slab slots); component children stay lazy — base + the
// ascending local ids of the component — so that the induction itself
// (the CSR build, the dominant per-child cost on wide divides, the
// root's especially) runs inside the child's build task, on whichever
// worker picks it up.
//
// Lifetime: base's CSR and the locals slice live in the dividing frame's
// arena, which cl holds open until the whole child join completes —
// arena chunks are append-only and never move, so a stealing worker can
// read them concurrently with the owner allocating more.
type childRef struct {
	sg     *subgraph // non-nil: already materialized
	base   *subgraph
	locals []int32
}

// size returns the child's vertex count without materializing it.
func (r childRef) size() int {
	if r.sg != nil {
		return len(r.sg.verts)
	}
	return len(r.locals)
}

// materialize induces the child into wk's arena (caller owns the frame).
func (r childRef) materialize(wk *worker) *subgraph {
	if r.sg != nil {
		return r.sg
	}
	return induceChild(r.base, r.locals, wk)
}

// divideResult is the outcome of a successful DivideI or DivideS.
type divideResult struct {
	kind     DivideKind
	children []childRef
	// desc is the removal descriptor folded into the parent certificate:
	// it records, in color terms, exactly which edges the division
	// removed, so the certificate remains a complete isomorphism
	// invariant (see combine.go). Slab-backed: it outlives the build as
	// Node.desc.
	desc []byte
}

// divideI implements Algorithm 2: isolate every singleton cell of πg as a
// one-vertex subgraph and split the remainder into connected components.
// ok is false when the division would not produce at least two children
// (the node "cannot be disconnected by DivideI").
func (b *builder) divideI(sg *subgraph, wk *worker) (res divideResult, ok bool) {
	n := len(sg.verts)
	ws := wk.ws
	colors := ws.IntsA[:0]
	for l := 0; l < n; l++ {
		c := b.colorOf(sg, l)
		if ws.ColorCount[c] == 0 {
			colors = append(colors, c)
		}
		ws.ColorCount[c]++
	}
	singletons := ws.IntsB[:0] // local ids whose projected cell is {v}
	for l := 0; l < n; l++ {
		if ws.ColorCount[b.colorOf(sg, l)] == 1 {
			singletons = append(singletons, l)
		}
	}
	for _, c := range colors {
		ws.ColorCount[c] = 0
	}
	// ws.Bits flags the singleton locals; the singletons slice doubles as
	// the visited list that restores the all-false invariant below.
	for _, l := range singletons {
		ws.Bits[l] = true
	}
	rest := ws.Arena.Alloc(n)[:0]
	for l := 0; l < n; l++ {
		if !ws.Bits[l] {
			rest = append(rest, int32(l))
		}
	}
	for _, l := range singletons {
		ws.Bits[l] = false
	}

	children := make([]childRef, 0, len(singletons)+2)
	for _, l := range singletons {
		child := wk.slab.sub()
		verts := wk.slab.intSlice(1)
		verts[0] = sg.verts[l]
		child.verts = verts
		child.local = graph.K1()
		children = append(children, childRef{sg: child})
	}
	// Descriptor: by equitability, a singleton cell {v} is adjacent to
	// all-or-none of every other cell, so (color(v), neighbor colors)
	// reconstructs every removed edge. Entries are sorted by color —
	// singleton cells have distinct colors — so the descriptor is
	// isomorphism-invariant regardless of vertex numbering.
	keys := ws.Keys[:0]
	for _, l := range singletons {
		keys = append(keys, uint64(b.colorOf(sg, l))<<32|uint64(l))
	}
	slices.Sort(keys)
	d := newDescriptor(ws, DividedI)
	nb := ws.IntsC[:0]
	for _, key := range keys {
		l := int(key & 0xffffffff)
		nb = nb[:0]
		for _, w := range sg.local.Neighbors32(l) {
			c := b.colorOf(sg, int(w))
			if !ws.Bits[c] {
				ws.Bits[c] = true
				nb = append(nb, c)
			}
		}
		for _, c := range nb {
			ws.Bits[c] = false
		}
		slices.Sort(nb)
		d.singleton(int(key>>32), nb)
	}
	desc := wk.slab.bytesCopy(d.buf)
	ws.Bytes = d.buf[:0]
	ws.IntsA = colors[:0]
	ws.IntsB = singletons[:0]
	ws.IntsC = nb[:0]
	ws.Keys = keys[:0]

	if len(rest) > 0 {
		restSub := induceChild(sg, rest, wk)
		members, starts := componentsOf(restSub.local, ws)
		for k := 0; k+1 < len(starts); k++ {
			children = append(children, childRef{base: restSub, locals: members[starts[k]:starts[k+1]]})
		}
	}
	if len(children) < 2 {
		return divideResult{}, false
	}
	return divideResult{kind: DividedI, children: children, desc: desc}, true
}

// packPair packs an unordered color pair into a sortable uint64 key.
func packPair(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// divideS implements Algorithm 3: remove the edges of every cell that
// induces a clique and of every cell pair that forms a complete bipartite
// graph (Theorem 6.4 shows this preserves Aut(g, πg)), then split into
// connected components. ok is false if nothing was removed or the removal
// does not disconnect the subgraph.
func (b *builder) divideS(sg *subgraph, wk *worker) (res divideResult, ok bool) {
	n := len(sg.verts)
	ws := wk.ws
	colors := ws.IntsA[:0]
	for l := 0; l < n; l++ {
		c := b.colorOf(sg, l)
		if ws.ColorCount[c] == 0 {
			colors = append(colors, c)
		}
		ws.ColorCount[c]++
	}
	// Count edges per (color, color) pair.
	for l := 0; l < n; l++ {
		cl := b.colorOf(sg, l)
		for _, w := range sg.local.Neighbors32(l) {
			if int(w) < l {
				continue
			}
			ws.PairCount[packPair(cl, b.colorOf(sg, int(w)))]++
		}
	}
	// A removed pair is marked with count -1 so the rebuild loop below
	// can test membership in the same map.
	removedPairs := ws.Keys[:0]
	for p, cnt := range ws.PairCount {
		pa, pb := int(p>>32), int(p&0xffffffff)
		if pa == pb {
			k := int(ws.ColorCount[pa])
			if k >= 2 && int(cnt) == k*(k-1)/2 {
				removedPairs = append(removedPairs, p)
			}
		} else if cnt > 0 && int(cnt) == int(ws.ColorCount[pa])*int(ws.ColorCount[pb]) {
			removedPairs = append(removedPairs, p)
		}
	}
	cleanup := func() {
		for _, c := range colors {
			ws.ColorCount[c] = 0
		}
		clear(ws.PairCount)
		ws.IntsA = colors[:0]
	}
	if len(removedPairs) == 0 {
		ws.Keys = removedPairs[:0]
		cleanup()
		return divideResult{}, false
	}
	for _, p := range removedPairs {
		ws.PairCount[p] = -1
	}
	// Rebuild the reduced graph without the removed color-complete edges,
	// straight into arena CSR: filtering a sorted row keeps it sorted.
	offsets := ws.Arena.Alloc(n + 1)
	offsets[0] = 0
	kept := int32(0)
	for l := 0; l < n; l++ {
		cl := b.colorOf(sg, l)
		for _, w := range sg.local.Neighbors32(l) {
			if ws.PairCount[packPair(cl, b.colorOf(sg, int(w)))] != -1 {
				kept++
			}
		}
		offsets[l+1] = kept
	}
	adj := ws.Arena.Alloc(int(kept))
	p := 0
	for l := 0; l < n; l++ {
		cl := b.colorOf(sg, l)
		for _, w := range sg.local.Neighbors32(l) {
			if ws.PairCount[packPair(cl, b.colorOf(sg, int(w)))] != -1 {
				adj[p] = w
				p++
			}
		}
	}
	reduced := wk.slab.sub()
	reduced.verts = sg.verts
	reduced.local = wk.slab.graph(offsets, adj)
	members, starts := componentsOf(reduced.local, ws)
	if len(starts) < 3 { // fewer than two components
		ws.Keys = removedPairs[:0]
		cleanup()
		return divideResult{}, false
	}
	slices.Sort(removedPairs) // packed keys sort exactly like (a, b) pairs
	d := newDescriptor(ws, DividedS)
	for _, pk := range removedPairs {
		d.pair(int(pk>>32), int(pk&0xffffffff))
	}
	desc := wk.slab.bytesCopy(d.buf)
	ws.Bytes = d.buf[:0]
	ws.Keys = removedPairs[:0]
	cleanup()
	children := make([]childRef, 0, len(starts)-1)
	for k := 0; k+1 < len(starts); k++ {
		children = append(children, childRef{base: reduced, locals: members[starts[k]:starts[k+1]]})
	}
	return divideResult{kind: DividedS, children: children, desc: desc}, true
}
