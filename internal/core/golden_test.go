package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"dvicl/internal/gen"
	"dvicl/internal/graph"
)

// goldenFamilies pins one quick-size instance per perfbench family. The
// instances mirror internal/perfbench's quick suite (the CI
// configuration): cfi, grid-w, had, mz-aug, pg2, plus the social-graph
// stand-ins driven by the social-ingest and symq scenarios.
func goldenFamilies() map[string]func() (*graph.Graph, error) {
	return map[string]func() (*graph.Graph, error){
		"cfi":    func() (*graph.Graph, error) { return gen.CFI(gen.RigidCubic(60, 41), false), nil },
		"grid-w": func() (*graph.Graph, error) { return gen.GridW(3, 10), nil },
		"had":    func() (*graph.Graph, error) { return gen.Hadamard(64), nil },
		"mz-aug": func() (*graph.Graph, error) { return gen.MzAug(16), nil },
		"pg2":    func() (*graph.Graph, error) { return gen.PG2(7) },
		"par-forest": func() (*graph.Graph, error) {
			return parForestGraph(), nil
		},
		"social": func() (*graph.Graph, error) {
			return gen.Social(gen.SocialConfig{
				Name: "perfbench", N: 150, M: 500,
				TwinFrac: 0.12, PendantFrac: 0.18, Seed: 9000,
			}), nil
		},
		"symq-social": func() (*graph.Graph, error) {
			return gen.Social(gen.SocialConfig{
				Name: "perfbench-symq", N: 150, M: 500,
				TwinFrac: 0.12, PendantFrac: 0.18, Seed: 7000,
			}), nil
		},
	}
}

// parForestGraph mirrors the perfbench par-forest quick instance: eight
// pairwise non-isomorphic rigid CFI components in one graph.
func parForestGraph() *graph.Graph {
	parts := make([]*graph.Graph, 8)
	for i := range parts {
		parts[i] = gen.CFI(gen.RigidCubic(30, int64(100+i)), false)
	}
	return gen.DisjointUnion(parts...)
}

const goldenDir = "testdata/golden"

// TestGoldenCertificates asserts that the canonical certificate of every
// perfbench family instance is byte-identical to the pinned SHA-256 —
// sequentially and at several worker counts, including the odd (3) and
// machine-shaped (NumCPU) ones, so any refactor of the build path or the
// work-stealing scheduler is provably behavior-preserving. The fixtures
// were generated before the PR 9 arena refactor; regenerate only for a
// deliberate certificate format change
// (DVICL_REGEN_GOLDEN=1 go test -run TestGoldenCertificates).
func TestGoldenCertificates(t *testing.T) {
	if os.Getenv("DVICL_REGEN_GOLDEN") == "1" {
		regenGolden(t)
	}
	data, err := os.ReadFile(filepath.Join(goldenDir, "certs.json"))
	if err != nil {
		t.Fatalf("golden certs (run with DVICL_REGEN_GOLDEN=1 to generate): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("golden certs: %v", err)
	}
	fams := goldenFamilies()
	if len(want) != len(fams) {
		t.Fatalf("certs.json pins %d families, suite has %d", len(want), len(fams))
	}
	for name := range fams {
		t.Run(name, func(t *testing.T) {
			g := loadGolden(t, name)
			for _, workers := range []int{0, 3, 8, runtime.NumCPU()} {
				tree := Build(g, nil, Options{Workers: workers})
				got := certSHA(tree.CanonicalCert())
				if got != want[name] {
					t.Errorf("workers=%d: certificate sha = %s, want %s (build path no longer byte-identical)",
						workers, got, want[name])
				}
			}
		})
	}
}

// loadGolden decodes a family's pinned graph6 fixture and cross-checks
// it against the generator, so a silently drifted generator cannot make
// the golden assertion vacuous.
func loadGolden(t *testing.T, name string) *graph.Graph {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(goldenDir, name+".g6"))
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	g, err := graph.FromGraph6(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("fixture decode: %v", err)
	}
	fresh, err := goldenFamilies()[name]()
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	if !g.Equal(fresh) {
		t.Fatalf("generator output for %s no longer matches the committed fixture", name)
	}
	return g
}

func certSHA(cert []byte) string {
	sum := sha256.Sum256(cert)
	return hex.EncodeToString(sum[:])
}

func regenGolden(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	certs := map[string]string{}
	var names []string
	for name := range goldenFamilies() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, err := goldenFamilies()[name]()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := graph.ToGraph6(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := os.WriteFile(filepath.Join(goldenDir, name+".g6"), []byte(s+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		certs[name] = certSHA(Build(g, nil, Options{}).CanonicalCert())
		fmt.Printf("golden %-12s n=%-5d cert sha256 %s\n", name, g.N(), certs[name])
	}
	data, err := json.MarshalIndent(certs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(goldenDir, "certs.json"), append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
