package core

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"dvicl/internal/canon"
	"dvicl/internal/graph"
	"dvicl/internal/group"
)

func cycle(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return graph.FromEdges(n, edges)
}

func complete(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph.FromEdges(n, edges)
}

func star(leaves int) *graph.Graph {
	var edges [][2]int
	for i := 1; i <= leaves; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return graph.FromEdges(leaves+1, edges)
}

func completeBipartite(a, b int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			edges = append(edges, [2]int{i, a + j})
		}
	}
	return graph.FromEdges(a+b, edges)
}

// fig1 is the example graph of Fig. 1(a) as reconstructed in the coloring
// package tests: C4 on {0,1,2,3}, triangle on {4,5,6}, hub 7.
func fig1() *graph.Graph {
	return graph.FromEdges(8, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 4},
		{0, 7}, {1, 7}, {2, 7}, {3, 7}, {4, 7}, {5, 7}, {6, 7},
	})
}

func randGraph(r *rand.Rand, n, p int) *graph.Graph {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Intn(p) == 0 {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

var bothModes = []struct {
	name string
	opt  Options
}{
	{"twins-on", Options{}},
	{"twins-off", Options{DisableTwinSimplification: true}},
}

func TestGammaIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, mode := range bothModes {
		for trial := 0; trial < 30; trial++ {
			n := 1 + r.Intn(20)
			g := randGraph(r, n, 2)
			tree := Build(g, nil, mode.opt)
			if !tree.Gamma.IsValid() {
				t.Fatalf("%s: Gamma not a permutation: %v (n=%d edges=%v)",
					mode.name, tree.Gamma, n, g.Edges())
			}
		}
	}
}

func TestGeneratorsAreAutomorphisms(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for _, mode := range bothModes {
		for trial := 0; trial < 40; trial++ {
			n := 2 + r.Intn(18)
			g := randGraph(r, n, 2+r.Intn(2))
			tree := Build(g, nil, mode.opt)
			for _, gen := range tree.Generators() {
				if !g.Permute(gen).Equal(g) {
					t.Fatalf("%s: generator %v is not an automorphism of %v",
						mode.name, gen, g.Edges())
				}
			}
		}
	}
}

// TestCanonicalInvariance is Theorem 6.9: isomorphic graphs produce equal
// canonical certificates (and equal tree structures, Theorem 6.6).
func TestCanonicalInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	for _, mode := range bothModes {
		for trial := 0; trial < 60; trial++ {
			n := 2 + r.Intn(20)
			g := randGraph(r, n, 2+r.Intn(3))
			gamma := r.Perm(n)
			h := g.Permute(gamma)
			t1 := Build(g, nil, mode.opt)
			t2 := Build(h, nil, mode.opt)
			if !bytes.Equal(t1.CanonicalCert(), t2.CanonicalCert()) {
				t.Fatalf("%s trial %d: certificates differ for isomorphic graphs\n edges=%v\n gamma=%v",
					mode.name, trial, g.Edges(), gamma)
			}
			if !g.Permute(t1.Gamma).Equal(h.Permute(t2.Gamma)) {
				t.Fatalf("%s trial %d: canonical forms differ\n edges=%v", mode.name, trial, g.Edges())
			}
			s1, s2 := t1.Stats(), t2.Stats()
			// Leaf search effort is label-dependent (the I-R search visits
			// different nodes under relabeling); only the tree structure is
			// the theorem's invariant.
			s1.LeafSearchNodes, s2.LeafSearchNodes = 0, 0
			s1.LeafSearchLeaves, s2.LeafSearchLeaves = 0, 0
			if s1 != s2 {
				t.Fatalf("%s: tree structures differ for isomorphic graphs: %+v vs %+v",
					mode.name, s1, s2)
			}
		}
	}
}

func TestNonIsomorphicSeparated(t *testing.T) {
	pairs := []struct {
		name   string
		g1, g2 *graph.Graph
	}{
		{"C6 vs 2K3", cycle(6), graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})},
		{"K33 vs prism", completeBipartite(3, 3), graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {0, 3}, {1, 4}, {2, 5}})},
	}
	for _, mode := range bothModes {
		for _, p := range pairs {
			t1 := Build(p.g1, nil, mode.opt)
			t2 := Build(p.g2, nil, mode.opt)
			if bytes.Equal(t1.CanonicalCert(), t2.CanonicalCert()) {
				t.Errorf("%s/%s: non-isomorphic graphs share a certificate", mode.name, p.name)
			}
		}
	}
}

// TestAutOrderMatchesBaseline cross-checks the tree's product-formula
// group order against the individualization–refinement engine's group on
// the whole graph.
func TestAutOrderMatchesBaseline(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for _, mode := range bothModes {
		for trial := 0; trial < 40; trial++ {
			n := 2 + r.Intn(14)
			g := randGraph(r, n, 2+r.Intn(2))
			tree := Build(g, nil, mode.opt)
			res := canon.Canonical(g, nil, canon.Options{})
			want := group.New(n, res.Generators).Order()
			if tree.AutOrder().Cmp(want) != 0 {
				t.Fatalf("%s: AutOrder=%v, baseline=%v\n edges=%v",
					mode.name, tree.AutOrder(), want, g.Edges())
			}
			// The generator-derived group must agree too.
			got := group.New(n, tree.Generators()).Order()
			if got.Cmp(want) != 0 {
				t.Fatalf("%s: generator group order %v != baseline %v\n edges=%v",
					mode.name, got, want, g.Edges())
			}
		}
	}
}

func TestAutOrderKnownGraphs(t *testing.T) {
	fact := func(n int) *big.Int {
		f := big.NewInt(1)
		for i := 2; i <= n; i++ {
			f.Mul(f, big.NewInt(int64(i)))
		}
		return f
	}
	cases := []struct {
		name string
		g    *graph.Graph
		want *big.Int
	}{
		{"C8", cycle(8), big.NewInt(16)},
		{"K6", complete(6), fact(6)},
		{"Star9", star(9), fact(9)},
		{"K35", completeBipartite(3, 5), new(big.Int).Mul(fact(3), fact(5))},
		{"K44", completeBipartite(4, 4), new(big.Int).Mul(big.NewInt(2), new(big.Int).Mul(fact(4), fact(4)))},
		{"Empty7", graph.FromEdges(7, nil), fact(7)},
		{"Fig1", fig1(), big.NewInt(48)}, // D4 on the C4 (8) × S3 on the triangle... see below
	}
	for _, mode := range bothModes {
		for _, tc := range cases {
			tree := Build(tc.g, nil, mode.opt)
			if tree.AutOrder().Cmp(tc.want) != 0 {
				t.Errorf("%s/%s: AutOrder = %v, want %v", mode.name, tc.name, tree.AutOrder(), tc.want)
			}
		}
	}
}

// TestOrbitsMatchBaseline compares the orbit partitions of the tree with
// the baseline engine's.
func TestOrbitsMatchBaseline(t *testing.T) {
	r := rand.New(rand.NewSource(49))
	for _, mode := range bothModes {
		for trial := 0; trial < 30; trial++ {
			n := 2 + r.Intn(14)
			g := randGraph(r, n, 2)
			tree := Build(g, nil, mode.opt)
			res := canon.Canonical(g, nil, canon.Options{})
			want := group.Orbits(n, res.Generators)
			got := tree.Orbits()
			if len(got) != len(want) {
				t.Fatalf("%s: orbit counts differ: %v vs %v (edges=%v)", mode.name, got, want, g.Edges())
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("%s: orbits differ: %v vs %v", mode.name, got, want)
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("%s: orbits differ: %v vs %v", mode.name, got, want)
					}
				}
			}
		}
	}
}

func TestTreeStructureFig1(t *testing.T) {
	// DviCL on the Fig. 1(a) graph: hub 7 is a singleton cell, DivideI
	// splits off the C4 and the triangle; both are further divided by
	// DivideS (they are color-complete structures) or left as leaves.
	tree := Build(fig1(), nil, Options{})
	if tree.Truncated {
		t.Fatal("truncated")
	}
	s := tree.Stats()
	if s.Depth < 1 {
		t.Fatalf("depth = %d, want >= 1", s.Depth)
	}
	// All 8 vertices must appear in leaves exactly once.
	seen := map[int]bool{}
	var walk func(nd *Node)
	walk = func(nd *Node) {
		if len(nd.Children) == 0 {
			for _, v := range nd.Verts {
				if seen[v] {
					t.Fatalf("vertex %d in two leaves", v)
				}
				seen[v] = true
			}
			return
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(tree.Root)
	if len(seen) != 8 {
		t.Fatalf("leaves cover %d of 8 vertices", len(seen))
	}
	// Orbits: {4,5,6} together (triangle rotation), {0,1,2,3} together
	// (C4 is vertex-transitive here given the hub), 7 alone.
	cells, singles := tree.OrbitStats()
	if singles != 1 {
		t.Fatalf("singleton orbits = %d, want 1 (the hub)", singles)
	}
	if cells != 3 {
		t.Fatalf("orbit cells = %d, want 3", cells)
	}
}

func TestLeafOfCoversAllVertices(t *testing.T) {
	g := fig1()
	tree := Build(g, nil, Options{})
	for v := 0; v < g.N(); v++ {
		leaf := tree.LeafOf(v)
		if leaf == nil || leaf.GammaOf(v) < 0 {
			t.Fatalf("LeafOf(%d) wrong", v)
		}
	}
}

func TestEmptyAndSingleVertex(t *testing.T) {
	for _, mode := range bothModes {
		tree := Build(graph.FromEdges(1, nil), nil, mode.opt)
		if len(tree.Gamma) != 1 || tree.Gamma[0] != 0 {
			t.Fatalf("%s: single-vertex Gamma = %v", mode.name, tree.Gamma)
		}
		if tree.AutOrder().Cmp(big.NewInt(1)) != 0 {
			t.Fatalf("%s: single-vertex AutOrder = %v", mode.name, tree.AutOrder())
		}
	}
}

// TestTwinHeavyGraph: a social-like pattern — hubs with pendant twins —
// must yield an AutoTree with only singleton leaves and the right group.
func TestTwinHeavyGraph(t *testing.T) {
	// Hub 0 with pendants 1,2,3; hub 4 (adjacent to 0) with pendants 5,6.
	g := graph.FromEdges(7, [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {4, 5}, {4, 6},
	})
	for _, mode := range bothModes {
		tree := Build(g, nil, mode.opt)
		want := new(big.Int).Mul(big.NewInt(6), big.NewInt(2)) // 3! × 2!
		if tree.AutOrder().Cmp(want) != 0 {
			t.Fatalf("%s: AutOrder = %v, want 12", mode.name, tree.AutOrder())
		}
		s := tree.Stats()
		if s.NonSingletonLeaves != 0 {
			t.Fatalf("%s: expected only singleton leaves, got %+v", mode.name, s)
		}
	}
}

// TestModesAgreeOnGroup: twin simplification must not change the group or
// the orbit structure (it is purely an optimization).
func TestModesAgreeOnGroup(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(16)
		g := randGraph(r, n, 3)
		t1 := Build(g, nil, Options{})
		t2 := Build(g, nil, Options{DisableTwinSimplification: true})
		if t1.AutOrder().Cmp(t2.AutOrder()) != 0 {
			t.Fatalf("modes disagree on AutOrder: %v vs %v (edges=%v)",
				t1.AutOrder(), t2.AutOrder(), g.Edges())
		}
	}
}

// TestDisableDivideSStaysCorrect: the ablation knob must not change the
// computed group or break invariance, only the tree shape.
func TestDisableDivideSStaysCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	opt := Options{DisableDivideS: true}
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(14)
		g := randGraph(r, n, 2)
		tree := Build(g, nil, opt)
		res := canon.Canonical(g, nil, canon.Options{})
		want := group.New(n, res.Generators).Order()
		if tree.AutOrder().Cmp(want) != 0 {
			t.Fatalf("ablated AutOrder=%v, baseline=%v (edges=%v)",
				tree.AutOrder(), want, g.Edges())
		}
		gamma := r.Perm(n)
		h := g.Permute(gamma)
		t2 := Build(h, nil, opt)
		if !bytes.Equal(tree.CanonicalCert(), t2.CanonicalCert()) {
			t.Fatalf("ablated certificates differ for isomorphic graphs")
		}
	}
	// On the Fig. 1(a) graph DivideS is what splits the triangle: with it
	// disabled the tree must have a non-singleton leaf covering {4,5,6}.
	full := Build(fig1(), nil, Options{DisableTwinSimplification: true})
	ablated := Build(fig1(), nil, Options{DisableTwinSimplification: true, DisableDivideS: true})
	if ablated.Stats().NonSingletonLeaves <= full.Stats().NonSingletonLeaves &&
		ablated.Stats() == full.Stats() {
		t.Fatalf("ablation had no effect on tree shape: %+v vs %+v",
			ablated.Stats(), full.Stats())
	}
}

// TestParallelBuildIdentical: the Workers option must not change the tree
// — same certificates, stats, group order, orbits.
func TestParallelBuildIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 10 + r.Intn(60)
		g := randGraph(r, n, 3)
		seq := Build(g, nil, Options{})
		par := Build(g, nil, Options{Workers: 8})
		if !bytes.Equal(seq.CanonicalCert(), par.CanonicalCert()) {
			t.Fatalf("parallel build changed the certificate (n=%d)", n)
		}
		if seq.Stats() != par.Stats() {
			t.Fatalf("parallel build changed the tree: %+v vs %+v", seq.Stats(), par.Stats())
		}
		if seq.AutOrder().Cmp(par.AutOrder()) != 0 {
			t.Fatalf("parallel build changed |Aut|")
		}
		if !seq.Gamma.Equal(par.Gamma) {
			t.Fatalf("parallel build changed the canonical labeling")
		}
	}
}

func TestCanonicalGraph(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(15)
		g := randGraph(r, n, 2)
		h := g.Permute(r.Perm(n))
		cg := Build(g, nil, Options{}).CanonicalGraph()
		ch := Build(h, nil, Options{}).CanonicalGraph()
		if !cg.Equal(ch) {
			t.Fatalf("canonical graphs differ for isomorphic inputs (n=%d)", n)
		}
	}
}

func TestVerifyOnRandomTrees(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for _, mode := range bothModes {
		for trial := 0; trial < 25; trial++ {
			n := 1 + r.Intn(30)
			g := randGraph(r, n, 2+r.Intn(2))
			tree := Build(g, nil, mode.opt)
			if err := tree.Verify(); err != nil {
				t.Fatalf("%s: %v (n=%d edges=%v)", mode.name, err, n, g.Edges())
			}
		}
	}
}

func TestVerifyOnStructuredGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{fig1(), cycle(12), complete(8), star(10), completeBipartite(3, 5)} {
		tree := Build(g, nil, Options{})
		if err := tree.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}
