package core

import (
	"bytes"
	"math/big"
	"testing"

	"dvicl/internal/gen"
)

// Integration tests pinning DviCL's results on structured families with
// known automorphism groups — cross-validating the core against classical
// group theory rather than against our own baseline.

func TestHeawoodGraph(t *testing.T) {
	// PG2(2)'s incidence graph is the Heawood graph: |Aut| = 336
	// (PGL(3,2) of order 168, doubled by point–line duality).
	g, err := gen.PG2(2)
	if err != nil {
		t.Fatal(err)
	}
	tree := Build(g, nil, Options{})
	if tree.AutOrder().Cmp(big.NewInt(336)) != 0 {
		t.Fatalf("|Aut(Heawood)| = %v, want 336", tree.AutOrder())
	}
	// Self-dual plane: one orbit covering all 14 vertices.
	orbits := tree.Orbits()
	if len(orbits) != 1 || len(orbits[0]) != 14 {
		t.Fatalf("Heawood orbits = %v", orbits)
	}
}

func TestPG3Order(t *testing.T) {
	// PG(2,3): |PGL(3,3)| = 5616, doubled by duality = 11232.
	g, err := gen.PG2(3)
	if err != nil {
		t.Fatal(err)
	}
	tree := Build(g, nil, Options{})
	if tree.AutOrder().Cmp(big.NewInt(11232)) != 0 {
		t.Fatalf("|Aut(PG2(3) incidence)| = %v, want 11232", tree.AutOrder())
	}
}

func TestTorusAutomorphisms(t *testing.T) {
	// GridW(2,5) = C5 □ C5: Aut = (D5 × D5) ⋊ Z2 of order 10·10·2 = 200.
	g := gen.GridW(2, 5)
	tree := Build(g, nil, Options{})
	if tree.AutOrder().Cmp(big.NewInt(200)) != 0 {
		t.Fatalf("|Aut(C5□C5)| = %v, want 200", tree.AutOrder())
	}
	// GridW(3,3) = H(3,3), the Hamming graph: Aut = S3 wr S3 = 6³·6 = 1296.
	h := gen.GridW(3, 3)
	tree = Build(h, nil, Options{})
	if tree.AutOrder().Cmp(big.NewInt(1296)) != 0 {
		t.Fatalf("|Aut(H(3,3))| = %v, want 1296", tree.AutOrder())
	}
}

func TestTorusVertexTransitive(t *testing.T) {
	g := gen.GridW(2, 6)
	tree := Build(g, nil, Options{})
	if len(tree.Orbits()) != 1 {
		t.Fatalf("torus not vertex-transitive: %d orbits", len(tree.Orbits()))
	}
	if tree.OrbitEntropy() != 0 {
		t.Fatal("vertex-transitive entropy should be 0")
	}
}

func TestHadamardSmall(t *testing.T) {
	// Hadamard(4): 16 vertices, 5-regular. The Sylvester construction is
	// highly symmetric: rows and columns fuse into few orbits and the
	// group is large.
	g := gen.Hadamard(4)
	tree := Build(g, nil, Options{})
	if tree.AutOrder().Cmp(big.NewInt(1)) == 0 {
		t.Fatal("Hadamard(4) should be symmetric")
	}
	if cells, _ := tree.OrbitStats(); cells > 2 {
		t.Fatalf("Hadamard(4) orbit cells = %d, want ≤ 2", cells)
	}
}

func TestCFIPairAcrossSizes(t *testing.T) {
	// The fundamental CFI property at several base sizes: twisted and
	// untwisted companions are same-size, same-degree, WL-equivalent but
	// non-isomorphic — and DviCL separates them.
	for _, k := range []int{6, 10, 14} {
		base := gen.CirculantCubic(k)
		g1 := gen.CFI(base, false)
		g2 := gen.CFI(base, true)
		t1 := Build(g1, nil, Options{})
		t2 := Build(g2, nil, Options{})
		if bytes.Equal(t1.CanonicalCert(), t2.CanonicalCert()) {
			t.Fatalf("k=%d: CFI twist pair not separated", k)
		}
		// But a twist on edge e vs a twist moved by relabeling stays
		// isomorphic: twisting is invariant up to even redistributions.
		perm := make([]int, g2.N())
		for i := range perm {
			perm[i] = (i + 7) % len(perm)
		}
		if !bytes.Equal(Build(g2.Permute(perm), nil, Options{}).CanonicalCert(), t2.CanonicalCert()) {
			t.Fatalf("k=%d: relabeled twist not recognized", k)
		}
	}
}

func TestAffinePlaneStructure(t *testing.T) {
	// AG(2,3): 9 points + 12 lines. Collineation group AGL(2,3) has order
	// 9·8·6 = 432; the incidence graph's group adds nothing (no
	// point-line duality for affine planes: degrees differ).
	g, err := gen.AG2(3)
	if err != nil {
		t.Fatal(err)
	}
	tree := Build(g, nil, Options{})
	if tree.AutOrder().Cmp(big.NewInt(432)) != 0 {
		t.Fatalf("|Aut(AG2(3) incidence)| = %v, want 432", tree.AutOrder())
	}
	// Orbits: points (degree 4) vs lines (degree 3): lines further split
	// only if parallel classes are distinguishable — they are not.
	cells, singles := tree.OrbitStats()
	if cells != 2 || singles != 0 {
		t.Fatalf("AG2(3) orbit cells=%d singles=%d, want 2/0", cells, singles)
	}
}

func TestBenchmarkFamilyShapes(t *testing.T) {
	// The Table 4 shape: regular families degenerate to a root-only
	// AutoTree; circuit-like families divide deeply.
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"grid-w-3-20", "had-256"} {
		d, err := gen.FindDataset(name)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Build(1)
		tree := Build(g, nil, Options{LeafMaxNodes: 1}) // don't solve, just divide
		if s := tree.Stats(); s.Nodes != 1 {
			t.Fatalf("%s: AutoTree has %d nodes, want root-only", name, s.Nodes)
		}
	}
	for _, name := range []string{"fpga11-20-uns-rcr", "s3-3-3-10", "difp-21-0-wal-rcr"} {
		d, err := gen.FindDataset(name)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Build(1)
		tree := Build(g, nil, Options{})
		s := tree.Stats()
		if s.Nodes < g.N()/2 {
			t.Fatalf("%s: AutoTree has only %d nodes for n=%d — should divide deeply",
				name, s.Nodes, g.N())
		}
		if s.Depth < 2 {
			t.Fatalf("%s: depth %d, want >= 2", name, s.Depth)
		}
	}
}
