package core

import (
	"testing"

	"dvicl/internal/gen"
	"dvicl/internal/graph"
)

// Build-path allocation benchmarks: one whole AutoTree build per op on
// the two divide-heavy perfbench families (quick sizes). Run with
// -benchmem; results/BUILD_ALLOCS.md records the before/after of the
// PR 9 arena refactor.
func benchmarkBuildAllocs(b *testing.B, g *graph.Graph) {
	// Warm the engine workspace pool so rep 1 is not an outlier.
	Build(g, nil, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, nil, Options{})
	}
}

func BenchmarkBuildAllocsCFI(b *testing.B) {
	benchmarkBuildAllocs(b, gen.CFI(gen.RigidCubic(60, 41), false))
}

func BenchmarkBuildAllocsGridW(b *testing.B) {
	benchmarkBuildAllocs(b, gen.GridW(3, 10))
}
