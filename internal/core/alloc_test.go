package core

import (
	"testing"

	"dvicl/internal/gen"
	"dvicl/internal/graph"
)

// Build-path allocation benchmarks: one whole AutoTree build per op on
// the two divide-heavy perfbench families (quick sizes). Run with
// -benchmem; results/BUILD_ALLOCS.md records the before/after of the
// PR 9 arena refactor.
func benchmarkBuildAllocs(b *testing.B, g *graph.Graph) {
	// Warm the engine workspace pool so rep 1 is not an outlier.
	Build(g, nil, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, nil, Options{})
	}
}

func BenchmarkBuildAllocsCFI(b *testing.B) {
	benchmarkBuildAllocs(b, gen.CFI(gen.RigidCubic(60, 41), false))
}

func BenchmarkBuildAllocsGridW(b *testing.B) {
	benchmarkBuildAllocs(b, gen.GridW(3, 10))
}

// TestBuildAllocCeiling is the allocation-regression guard for the arena
// build path, in the style of obs's TestNilInstrumentationAllocFree: a
// steady-state Build must stay under a pinned allocs-per-op ceiling, or
// the pooled-workspace/slab/arena machinery has sprung a leak back to
// the garbage collector. The ceilings carry ~2x headroom over the
// measured values at the time of pinning (grid-w ≈ 240, leaf-search
// dominated; pendant cycle ≈ 175, divide dominated — the remaining
// allocs are the per-internal-node children slices) so they trip on
// structural regressions — a per-node or per-candidate allocation
// reappearing — not on noise. CI runs this in the perfbench job.
func TestBuildAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc ceiling is a perf guard; skipped in -short")
	}
	cases := []struct {
		name    string
		g       *graph.Graph
		ceiling float64
	}{
		// Leaf-search heavy: one non-dividing torus leaf per build.
		{"grid-w-3-10", gen.GridW(3, 10), 500},
		// Divide heavy: a cycle with a pendant divides to singletons.
		{"cycle-pendant", pendantCycle(64), 350},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			Build(tc.g, nil, Options{}) // warm the workspace pool
			allocs := testing.AllocsPerRun(5, func() {
				Build(tc.g, nil, Options{})
			})
			if allocs > tc.ceiling {
				t.Fatalf("Build allocates %.0f times per op, ceiling %.0f", allocs, tc.ceiling)
			}
		})
	}
}

// pendantCycle returns an n-cycle with one pendant vertex: the pendant
// breaks the symmetry so DivideI recurses the whole ring down to
// singletons — the pure divide/combine path with no leaf search.
func pendantCycle(n int) *graph.Graph {
	b := graph.NewBuilder(n + 1)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	b.AddEdge(0, n)
	return b.Build()
}
