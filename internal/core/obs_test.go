package core

import (
	"bytes"
	"math/rand"
	"testing"

	"dvicl/internal/graph"
	"dvicl/internal/obs"
)

// TestObservedBuildCounters checks that an instrumented build reports the
// work it actually did: refinement happened, DivideI was attempted, the
// leaf effort recorded in Stats matches the recorder's counters, and the
// whole-build phase fired exactly once.
func TestObservedBuildCounters(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randGraph(r, 60, 3)
	rec := obs.New()
	tree := Build(g, nil, Options{Obs: rec})
	s := tree.Stats()

	snap := rec.Snapshot()
	if snap.Counters["refine_calls"] == 0 {
		t.Fatal("no refinement recorded")
	}
	if snap.Counters["divide_i_calls"] == 0 {
		t.Fatal("no DivideI attempts recorded")
	}
	if got := rec.Counter(obs.LeafSearches); got != int64(s.NonSingletonLeaves) {
		t.Fatalf("leaf_searches = %d, want %d non-singleton leaves", got, s.NonSingletonLeaves)
	}
	if got := rec.Counter(obs.SearchNodes); got != s.LeafSearchNodes {
		t.Fatalf("search_nodes = %d, Stats.LeafSearchNodes = %d", got, s.LeafSearchNodes)
	}
	if got := rec.Counter(obs.SearchLeaves); got != s.LeafSearchLeaves {
		t.Fatalf("search_leaves = %d, Stats.LeafSearchLeaves = %d", got, s.LeafSearchLeaves)
	}
	if ps, ok := snap.Phases["build"]; !ok || ps.Count != 1 {
		t.Fatalf("build phase = %+v, want exactly one span", snap.Phases["build"])
	}
	if _, ok := snap.Phases["refine"]; !ok {
		t.Fatal("refine phase missing")
	}
}

// TestUnobservedBuildUnchanged: a nil recorder must not change the result.
func TestUnobservedBuildUnchanged(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		g := randGraph(r, 40+10*trial, 3)
		plain := Build(g, nil, Options{})
		observed := Build(g, nil, Options{Obs: obs.New()})
		if !bytes.Equal(plain.CanonicalCert(), observed.CanonicalCert()) {
			t.Fatal("recorder changed the certificate")
		}
		if plain.Stats() != observed.Stats() {
			t.Fatalf("recorder changed the tree: %+v vs %+v", plain.Stats(), observed.Stats())
		}
	}
}

// TestParallelBuildIdenticalCounters asserts the satellite guarantee: a
// parallel build (Workers > 1) produces byte-identical certificates,
// identical Stats (including leaf search effort), and identical effort
// counters as the sequential build — the only permitted difference is how
// subtree builds were scheduled (obs.SchedulerCounter). Run under -race
// this also exercises the recorder's concurrent use.
func TestParallelBuildIdenticalCounters(t *testing.T) {
	schedulingCounters := map[string]bool{}
	for _, c := range obs.AllCounters() {
		if obs.SchedulerCounter(c) {
			schedulingCounters[c.String()] = true
		}
	}
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 20 + r.Intn(80)
		g := randGraph(r, n, 3)
		recSeq, recPar := obs.New(), obs.New()
		seq := Build(g, nil, Options{Obs: recSeq})
		par := Build(g, nil, Options{Workers: 8, Obs: recPar})

		if !bytes.Equal(seq.CanonicalCert(), par.CanonicalCert()) {
			t.Fatalf("parallel build changed the certificate (n=%d)", n)
		}
		if seq.Stats() != par.Stats() {
			t.Fatalf("parallel build changed Stats: %+v vs %+v", seq.Stats(), par.Stats())
		}
		sSeq, sPar := recSeq.Snapshot(), recPar.Snapshot()
		for name, v := range sSeq.Counters {
			if schedulingCounters[name] {
				continue
			}
			if sPar.Counters[name] != v {
				t.Fatalf("counter %s: sequential %d, parallel %d (n=%d)",
					name, v, sPar.Counters[name], n)
			}
		}
		// Phase span counts (not durations) must also agree; the twins
		// and build phases fire identically, and every divide/combine
		// runs exactly once per node either way.
		for name, ps := range sSeq.Phases {
			if sPar.Phases[name].Count != ps.Count {
				t.Fatalf("phase %s: sequential count %d, parallel count %d",
					name, ps.Count, sPar.Phases[name].Count)
			}
		}
	}
}

// TestTwinCollapseCounter: a graph dominated by twins must report the
// collapsed vertices.
func TestTwinCollapseCounter(t *testing.T) {
	// A star: all leaves are pairwise twins (non-adjacent, same neighbor).
	gb := graph.NewBuilder(9)
	for v := 1; v < 9; v++ {
		gb.AddEdge(0, v)
	}
	rec := obs.New()
	Build(gb.Build(), nil, Options{Obs: rec})
	if got := rec.Counter(obs.TwinVertsCollapsed); got != 7 {
		t.Fatalf("twin_verts_collapsed = %d, want 7 (8 leaves, 1 representative kept)", got)
	}
}

// TestKindStrings covers the String methods used by dumps and labels.
func TestKindStrings(t *testing.T) {
	if KindSingleton.String() != "singleton" || KindLeaf.String() != "leaf" ||
		KindInternal.String() != "internal" || NodeKind(99).String() != "unknown" {
		t.Fatal("NodeKind.String mismatch")
	}
	if DividedNone.String() != "none" || DividedI.String() != "I" ||
		DividedS.String() != "S" || DivideKind(99).String() != "unknown" {
		t.Fatal("DivideKind.String mismatch")
	}
}
