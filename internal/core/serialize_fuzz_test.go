package core

import (
	"bytes"
	"testing"
)

// FuzzLoad: corrupt tree files must produce errors, never panics, and a
// valid prefix mutated anywhere must not crash.
func FuzzLoad(f *testing.F) {
	g := cycle(6)
	tree := Build(g, nil, Options{})
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		// Anything that loads must at least pass leaf indexing; Verify
		// may legitimately reject semantic corruption.
		_ = loaded.Stats()
	})
}
