package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"dvicl/internal/store"
)

// FuzzLoad: corrupt tree files must produce errors, never panics, and a
// valid prefix mutated anywhere must not crash.
func FuzzLoad(f *testing.F) {
	g := cycle(6)
	tree := Build(g, nil, Options{})
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		// Anything that loads must at least pass leaf indexing; Verify
		// may legitimately reject semantic corruption.
		_ = loaded.Stats()
	})
}

// typedLoadError reports whether err belongs to the typed corruption set
// shared with internal/store — the contract the treestore's corruption
// fallback matches on.
func typedLoadError(err error) bool {
	var ve *store.VersionError
	return errors.Is(err, store.ErrTruncated) ||
		errors.Is(err, store.ErrChecksum) ||
		errors.Is(err, store.ErrBadMagic) ||
		errors.As(err, &ve)
}

// FuzzTreeSaveLoad drives the full Save→corrupt→Load cycle on random
// trees: an intact stream must round-trip the certificate; a truncated
// or bit-flipped stream must either be caught with a typed error or
// decode to *some* loadable tree — and must never panic or return an
// ad-hoc untyped failure.
func FuzzTreeSaveLoad(f *testing.F) {
	f.Add(int64(1), uint(40), uint8(0x01))
	f.Add(int64(7), uint(3), uint8(0x80))
	f.Add(int64(42), uint(9999), uint8(0xff))
	f.Fuzz(func(t *testing.T, seed int64, pos uint, mask uint8) {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 2+r.Intn(18), 2)
		tree := Build(g, nil, Options{})
		var buf bytes.Buffer
		if err := tree.Save(&buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		data := buf.Bytes()

		loaded, err := Load(bytes.NewReader(data), g)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if !bytes.Equal(loaded.CanonicalCert(), tree.CanonicalCert()) {
			t.Fatal("certificate changed across save/load")
		}

		// Truncation at any offset is a torn file: typed error, never a
		// partial tree and never a panic.
		cut := int(pos % uint(len(data)))
		if _, err := Load(bytes.NewReader(data[:cut]), g); err == nil {
			t.Fatalf("truncated stream (cut=%d) accepted", cut)
		} else if !typedLoadError(err) {
			t.Fatalf("truncated stream (cut=%d): untyped error %v", cut, err)
		}

		// A bit flip may land in a don't-care byte (and still decode) or
		// corrupt structure (typed error) — either way, no panic, no
		// untyped error.
		mut := append([]byte(nil), data...)
		mut[cut] ^= mask | 1
		if _, err := Load(bytes.NewReader(mut), g); err != nil && !typedLoadError(err) {
			t.Fatalf("bit flip at %d: untyped error %v", cut, err)
		}
	})
}
