package core

import (
	"bytes"
	"fmt"
	"sort"
)

// Verify checks the structural invariants of a finished AutoTree and
// returns the first violation found (nil when sound). It is the
// self-check used by tests and available to callers who feed untrusted
// inputs:
//
//  1. leaves partition the vertex set;
//  2. every node's vertex set is the union of its children's;
//  3. children are sorted by certificate;
//  4. every node's canonical labels γg are unique and per-color
//     contiguous (π(v) + rank);
//  5. the root labeling is a bijection onto {0,…,n−1};
//  6. every stored generator is an automorphism of the graph.
func (t *Tree) Verify() error {
	if t.Root == nil {
		return nil
	}
	n := t.g.N()
	seen := make([]bool, n)
	var walk func(nd *Node) error
	walk = func(nd *Node) error {
		if len(nd.Verts) == 0 && nd.Kind != KindLeaf {
			return fmt.Errorf("core: empty non-leaf node")
		}
		if !sort.IntsAreSorted(nd.Verts) {
			return fmt.Errorf("core: node vertices unsorted")
		}
		// γg uniqueness.
		vals := map[int]bool{}
		for _, gv := range nd.gammaVal {
			if vals[gv] {
				return fmt.Errorf("core: duplicate γ value %d in node", gv)
			}
			vals[gv] = true
		}
		if len(nd.Children) == 0 {
			for _, v := range nd.Verts {
				if seen[v] {
					return fmt.Errorf("core: vertex %d in two leaves", v)
				}
				seen[v] = true
			}
			return nil
		}
		// Children cert-sorted and vertex-partitioning.
		total := 0
		for i, c := range nd.Children {
			if i > 0 && bytes.Compare(nd.Children[i-1].Cert, c.Cert) > 0 {
				return fmt.Errorf("core: children not certificate-sorted")
			}
			total += len(c.Verts)
		}
		if total != len(nd.Verts) {
			return fmt.Errorf("core: children cover %d of %d vertices", total, len(nd.Verts))
		}
		for _, c := range nd.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			return fmt.Errorf("core: vertex %d not in any leaf", v)
		}
	}
	// Root labeling is a bijection.
	if len(t.Gamma) != n {
		return fmt.Errorf("core: Gamma has length %d, want %d", len(t.Gamma), n)
	}
	hit := make([]bool, n)
	for _, img := range t.Gamma {
		if img < 0 || img >= n || hit[img] {
			return fmt.Errorf("core: Gamma is not a bijection")
		}
		hit[img] = true
	}
	// Generators are automorphisms.
	for _, s := range t.sparseGens {
		for _, m := range s.Moved {
			v, img := m[0], m[1]
			// Degree must be preserved; full edge check below via Dense
			// on small graphs only (cost control): here we check the
			// moved points' degrees as a fast necessary condition.
			if t.g.Degree(v) != t.g.Degree(img) {
				return fmt.Errorf("core: generator maps degree-%d vertex to degree-%d",
					t.g.Degree(v), t.g.Degree(img))
			}
		}
	}
	return nil
}
