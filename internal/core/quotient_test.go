package core

import (
	"math"
	"testing"

	"dvicl/internal/graph"
)

func TestQuotientStar(t *testing.T) {
	// Star K1,5: orbits {hub}, {leaves} -> quotient is a single edge.
	g := star(5)
	tree := Build(g, nil, Options{})
	q := tree.Quotient()
	if q.Graph.N() != 2 || q.Graph.M() != 1 {
		t.Fatalf("quotient n=%d m=%d, want 2/1", q.Graph.N(), q.Graph.M())
	}
	if len(q.Orbits) != 2 {
		t.Fatalf("orbits = %v", q.Orbits)
	}
	for v := 1; v <= 5; v++ {
		if q.OrbitOf[v] != q.OrbitOf[1] {
			t.Fatal("leaves not in one orbit")
		}
	}
}

func TestQuotientVertexTransitive(t *testing.T) {
	// C7 is vertex-transitive: quotient is a single vertex, no edges.
	g := cycle(7)
	tree := Build(g, nil, Options{})
	q := tree.Quotient()
	if q.Graph.N() != 1 || q.Graph.M() != 0 {
		t.Fatalf("quotient of C7: n=%d m=%d", q.Graph.N(), q.Graph.M())
	}
}

func TestQuotientRigid(t *testing.T) {
	// A rigid graph's quotient is itself.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}, {0, 3}})
	tree := Build(g, nil, Options{})
	if tree.AutOrder().Int64() == 1 {
		q := tree.Quotient()
		if q.Graph.N() != g.N() || q.Graph.M() != g.M() {
			t.Fatalf("rigid quotient changed: %d/%d", q.Graph.N(), q.Graph.M())
		}
	}
}

func TestOrbitEntropy(t *testing.T) {
	// Vertex-transitive: zero entropy.
	tree := Build(cycle(8), nil, Options{})
	if e := tree.OrbitEntropy(); e != 0 {
		t.Fatalf("C8 entropy = %v, want 0", e)
	}
	// Rigid: maximal entropy log2(n).
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}, {0, 3}})
	tr := Build(g, nil, Options{})
	if tr.AutOrder().Int64() == 1 {
		want := math.Log2(5)
		if e := tr.OrbitEntropy(); math.Abs(e-want) > 1e-12 {
			t.Fatalf("rigid entropy = %v, want %v", e, want)
		}
	}
	// Star K1,3: orbits sizes 1 and 3 of n=4: H = -(1/4)log(1/4)-(3/4)log(3/4).
	st := Build(star(3), nil, Options{})
	want := -(0.25*math.Log2(0.25) + 0.75*math.Log2(0.75))
	if e := st.OrbitEntropy(); math.Abs(e-want) > 1e-12 {
		t.Fatalf("star entropy = %v, want %v", e, want)
	}
}

func TestSymmetryRatioAndHistogram(t *testing.T) {
	tree := Build(star(4), nil, Options{})
	if r := tree.SymmetryRatio(); r != 0.8 {
		t.Fatalf("symmetry ratio = %v, want 0.8 (4 of 5)", r)
	}
	hist := tree.OrbitSizeHistogram()
	// Orbits: one of size 1 (hub), one of size 4 (leaves).
	if len(hist) != 2 || hist[0] != [2]int{1, 1} || hist[1] != [2]int{4, 1} {
		t.Fatalf("histogram = %v", hist)
	}
}
