package obs

import (
	"strings"
	"testing"
	"time"
)

// promFixture builds a recorder with activity in several counters and
// phases, plus a realistic gauge set (including a labeled per-shard
// family), and renders it.
func promFixture(t *testing.T) string {
	t.Helper()
	r := New()
	r.Inc(SearchNodes)
	r.Add(SearchLeaves, 3)
	r.Inc(HTTPRequests)
	r.observeNs(PhaseBuild, 0) // genuine 0ns lands in the first bucket
	r.observeNs(PhaseBuild, 1500)
	r.observeNs(PhaseBuild, 1700)
	r.observeNs(PhaseBuild, int64(3*time.Millisecond))
	r.observeNs(PhaseIndexAdd, 42)
	gauges := []PromGauge{
		{Name: "index_graphs", Help: "Graphs in the index.", Value: 12},
		{Name: "uptime_seconds", Help: "Seconds since start.", Value: 3.5},
		{Name: "index_shard_graphs", Help: "Graphs per shard.", Labels: []Label{{Name: "shard", Value: "0"}}, Value: 7},
		{Name: "index_shard_graphs", Help: "Graphs per shard.", Labels: []Label{{Name: "shard", Value: "1"}}, Value: 5},
	}
	var sb strings.Builder
	if err := WriteProm(&sb, r.Snapshot(), gauges); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	return sb.String()
}

// TestWritePromLintClean is the headline contract: everything WriteProm
// emits passes the vendored promtool-style linter.
func TestWritePromLintClean(t *testing.T) {
	text := promFixture(t)
	if problems := LintProm(text); len(problems) != 0 {
		t.Fatalf("LintProm found %d problems in WriteProm output:\n%s\n--- exposition ---\n%s",
			len(problems), strings.Join(problems, "\n"), text)
	}
}

func TestWritePromCountersIncludeZeros(t *testing.T) {
	text := promFixture(t)
	// Every declared counter appears, zeros included, namespaced and
	// suffixed _total, with HELP and TYPE.
	for c := Counter(0); c < numCounters; c++ {
		name := "dvicl_" + c.String() + "_total"
		if !strings.Contains(text, "\n"+name+" ") && !strings.HasPrefix(text, name+" ") {
			t.Errorf("counter sample %s missing", name)
		}
		if !strings.Contains(text, "# TYPE "+name+" counter\n") {
			t.Errorf("TYPE line for %s missing", name)
		}
		if !strings.Contains(text, "# HELP "+name+" ") {
			t.Errorf("HELP line for %s missing", name)
		}
	}
	if !strings.Contains(text, "dvicl_refine_calls_total 0\n") {
		t.Error("zero counter must still be exposed with value 0")
	}
	if !strings.Contains(text, "dvicl_search_leaves_total 3\n") {
		t.Error("search_leaves should be 3")
	}
}

func TestWritePromHistogram(t *testing.T) {
	text := promFixture(t)
	var bucketVals []int64
	var infVal, countVal int64 = -1, -1
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, `dvicl_phase_duration_seconds_bucket{phase="build",le="+Inf"}`):
			infVal = lastInt(t, line)
		case strings.HasPrefix(line, `dvicl_phase_duration_seconds_bucket{phase="build",`):
			bucketVals = append(bucketVals, lastInt(t, line))
		case strings.HasPrefix(line, `dvicl_phase_duration_seconds_count{phase="build"}`):
			countVal = lastInt(t, line)
		}
	}
	if len(bucketVals) == 0 {
		t.Fatalf("no build buckets in:\n%s", text)
	}
	for i := 1; i < len(bucketVals); i++ {
		if bucketVals[i] < bucketVals[i-1] {
			t.Fatalf("buckets not cumulative: %v", bucketVals)
		}
	}
	if infVal != 4 || countVal != 4 {
		t.Fatalf("+Inf = %d, _count = %d, want 4 and 4", infVal, countVal)
	}
	if last := bucketVals[len(bucketVals)-1]; last != 4 {
		t.Fatalf("largest finite bucket = %d, want 4 (all observations below it)", last)
	}
	// The 0ns observation lands in the le="1e-09" bucket.
	if !strings.Contains(text, `dvicl_phase_duration_seconds_bucket{phase="build",le="1e-09"} 1`) {
		t.Errorf("0ns observation missing from the 1e-09 bucket:\n%s", text)
	}
	// A phase that never fired exposes no series.
	if strings.Contains(text, `phase="snapshot"`) {
		t.Error("unfired phase must not be exposed")
	}
	// HELP/TYPE written exactly once for the whole family.
	if n := strings.Count(text, "# TYPE dvicl_phase_duration_seconds histogram"); n != 1 {
		t.Errorf("histogram TYPE line count = %d, want 1", n)
	}
}

func TestWritePromGauges(t *testing.T) {
	text := promFixture(t)
	if !strings.Contains(text, `dvicl_index_shard_graphs{shard="0"} 7`) ||
		!strings.Contains(text, `dvicl_index_shard_graphs{shard="1"} 5`) {
		t.Fatalf("per-shard gauge samples missing:\n%s", text)
	}
	if n := strings.Count(text, "# TYPE dvicl_index_shard_graphs gauge"); n != 1 {
		t.Errorf("shard gauge TYPE count = %d, want 1 (one header per family)", n)
	}
	if !strings.Contains(text, "dvicl_uptime_seconds 3.5\n") {
		t.Errorf("unlabeled gauge missing:\n%s", text)
	}
	// Families are contiguous: both shard samples sit between their header
	// and the next HELP line.
	i := strings.Index(text, "# TYPE dvicl_index_shard_graphs gauge")
	rest := text[i:]
	if j := strings.Index(rest[1:], "# HELP"); j >= 0 {
		if got := strings.Count(rest[:j+1], "dvicl_index_shard_graphs{"); got != 2 {
			t.Errorf("shard family not contiguous: %d samples before next family", got)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	cases := map[string]string{
		"plain":         "plain",
		`has"quote`:     `has\"quote`,
		`back\slash`:    `back\\slash`,
		"new\nline":     `new\nline`,
		`both\"` + "\n": `both\\\"\n`,
	}
	for in, want := range cases {
		if got := escapeLabel(in); got != want {
			t.Errorf("escapeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestLintPromNegatives feeds the linter hand-built violations — each
// must be caught, or the "WriteProm output is lint-clean" test proves
// nothing.
func TestLintPromNegatives(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of some reported problem
	}{
		{"missing namespace",
			"# HELP foo_x_total x.\n# TYPE foo_x_total counter\nfoo_x_total 1\n",
			"namespace"},
		{"sample before TYPE",
			"dvicl_x_total 1\n",
			"before TYPE"},
		{"missing HELP",
			"# TYPE dvicl_x_total counter\ndvicl_x_total 1\n",
			"no HELP"},
		{"counter without _total",
			"# HELP dvicl_x x.\n# TYPE dvicl_x counter\ndvicl_x 1\n",
			"_total"},
		{"negative counter",
			"# HELP dvicl_x_total x.\n# TYPE dvicl_x_total counter\ndvicl_x_total -1\n",
			"negative counter"},
		{"bad metric name",
			"# HELP dvicl_x_total x.\n# TYPE dvicl_x_total counter\ndvicl_x-total 1\n",
			"invalid metric name"},
		{"unparseable value",
			"# HELP dvicl_x_total x.\n# TYPE dvicl_x_total counter\ndvicl_x_total pots\n",
			"unparseable value"},
		{"sample without value",
			"# HELP dvicl_g g.\n# TYPE dvicl_g gauge\ndvicl_g{a=\"b\"}\n",
			"without value"},
		{"duplicate TYPE",
			"# TYPE dvicl_x_total counter\n# TYPE dvicl_x_total counter\n",
			"duplicate TYPE"},
		{"unknown TYPE",
			"# TYPE dvicl_x_total widget\n",
			"unknown TYPE"},
		{"empty HELP",
			"# HELP dvicl_x_total\n",
			"empty HELP"},
		{"non-cumulative buckets",
			"# HELP dvicl_h h.\n# TYPE dvicl_h histogram\n" +
				`dvicl_h_bucket{le="0.1"} 5` + "\n" +
				`dvicl_h_bucket{le="0.2"} 3` + "\n" +
				`dvicl_h_bucket{le="+Inf"} 5` + "\n" +
				"dvicl_h_count 5\n",
			"non-cumulative"},
		{"non-increasing le",
			"# HELP dvicl_h h.\n# TYPE dvicl_h histogram\n" +
				`dvicl_h_bucket{le="0.2"} 1` + "\n" +
				`dvicl_h_bucket{le="0.1"} 2` + "\n" +
				`dvicl_h_bucket{le="+Inf"} 2` + "\n",
			"non-increasing"},
		{"missing +Inf",
			"# HELP dvicl_h h.\n# TYPE dvicl_h histogram\n" +
				`dvicl_h_bucket{le="0.1"} 1` + "\n" +
				"dvicl_h_count 1\n",
			`missing le="+Inf"`},
		{"+Inf disagrees with count",
			"# HELP dvicl_h h.\n# TYPE dvicl_h histogram\n" +
				`dvicl_h_bucket{le="0.1"} 1` + "\n" +
				`dvicl_h_bucket{le="+Inf"} 1` + "\n" +
				"dvicl_h_count 2\n",
			"!= _count"},
		{"bucket after +Inf",
			"# HELP dvicl_h h.\n# TYPE dvicl_h histogram\n" +
				`dvicl_h_bucket{le="+Inf"} 1` + "\n" +
				`dvicl_h_bucket{le="0.1"} 1` + "\n" +
				"dvicl_h_count 1\n",
			`after le="+Inf"`},
		{"bad label name",
			"# HELP dvicl_g g.\n# TYPE dvicl_g gauge\n" +
				`dvicl_g{9bad="x"} 1` + "\n",
			"invalid label name"},
		{"unquoted label value",
			"# HELP dvicl_g g.\n# TYPE dvicl_g gauge\n" +
				"dvicl_g{a=b} 1\n",
			"unquoted label value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := LintProm(tc.text)
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Fatalf("want a problem containing %q, got %v", tc.want, problems)
		})
	}
}

func lastInt(t *testing.T, line string) int64 {
	t.Helper()
	fs := strings.Fields(line)
	var v int64
	for _, c := range fs[len(fs)-1] {
		if c < '0' || c > '9' {
			t.Fatalf("non-integer value in %q", line)
		}
		v = v*10 + int64(c-'0')
	}
	return v
}
