package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// LintProm is a vendored, dependency-free stand-in for
// `promtool check metrics`: it parses text in the Prometheus exposition
// format and returns every convention violation it finds. It is run as
// a test against WriteProm's output (and by CI against a live /metrics
// scrape) so the exposed series can never silently drift out of shape.
//
// Checks:
//   - metric and label names match the Prometheus grammar,
//   - every metric carries the MetricsNamespace prefix,
//   - every sample's family has # TYPE (and # HELP) declared before it,
//   - counter samples end in _total,
//   - histogram buckets are cumulative (monotone non-decreasing in le
//     order), end with le="+Inf", and the +Inf bucket equals _count,
//   - sample values parse as floats and lines are well-formed.
func LintProm(text string) []string {
	var problems []string
	l := promLinter{
		typed:  map[string]string{},
		helped: map[string]bool{},
		hist:   map[string]*histState{},
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if p := l.lintLine(line); p != "" {
			problems = append(problems, fmt.Sprintf("line %d: %s", lineNo, p))
		}
	}
	problems = append(problems, l.finish()...)
	return problems
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type histState struct {
	family  string // family name (without _bucket suffix)
	labels  string // label set minus le
	prevLe  float64
	prevVal float64
	sawInf  bool
	infVal  float64
	count   float64
	hasCnt  bool
}

type promLinter struct {
	typed  map[string]string // family -> TYPE
	helped map[string]bool   // family -> HELP seen
	hist   map[string]*histState
}

func (l *promLinter) lintLine(line string) string {
	if line == "" {
		return ""
	}
	if strings.HasPrefix(line, "#") {
		return l.lintComment(line)
	}
	return l.lintSample(line)
}

func (l *promLinter) lintComment(line string) string {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return "malformed comment line: " + line
	}
	switch fields[1] {
	case "HELP":
		name := fields[2]
		if !metricNameRe.MatchString(name) {
			return "invalid metric name in HELP: " + name
		}
		if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
			return "empty HELP text for " + name
		}
		l.helped[name] = true
	case "TYPE":
		if len(fields) < 4 {
			return "malformed TYPE line: " + line
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !metricNameRe.MatchString(name) {
			return "invalid metric name in TYPE: " + name
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return "unknown TYPE " + typ + " for " + name
		}
		if _, dup := l.typed[name]; dup {
			return "duplicate TYPE for " + name
		}
		l.typed[name] = typ
	}
	return ""
}

func (l *promLinter) lintSample(line string) string {
	// name{labels} value  |  name value
	var name, labels, rest string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "unbalanced braces: " + line
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		fs := strings.Fields(line)
		if len(fs) < 2 {
			return "malformed sample: " + line
		}
		name, rest = fs[0], fs[1]
	}
	if !metricNameRe.MatchString(name) {
		return "invalid metric name: " + name
	}
	if !strings.HasPrefix(name, MetricsNamespace+"_") {
		return "metric missing " + MetricsNamespace + "_ namespace: " + name
	}
	vf := strings.Fields(rest)
	if len(vf) == 0 {
		return "sample without value: " + name
	}
	val, err := strconv.ParseFloat(vf[0], 64)
	if err != nil {
		return "unparseable value for " + name + ": " + rest
	}
	if p := l.lintLabels(name, labels); p != "" {
		return p
	}

	family, kind := familyOf(name)
	typ, ok := l.typed[family]
	if !ok {
		return "sample before TYPE declaration: " + name
	}
	if !l.helped[family] {
		return "sample for " + family + " has no HELP"
	}
	switch typ {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			return "counter not ending in _total: " + name
		}
		if val < 0 {
			return "negative counter " + name
		}
	case "histogram":
		if p := l.lintHistSample(family, kind, name, labels, val); p != "" {
			return p
		}
	}
	return ""
}

func (l *promLinter) lintLabels(name, labels string) string {
	for _, pair := range splitLabels(labels) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return "malformed label pair " + pair + " on " + name
		}
		ln, lv := pair[:eq], pair[eq+1:]
		if !labelNameRe.MatchString(ln) {
			return "invalid label name " + ln + " on " + name
		}
		if len(lv) < 2 || lv[0] != '"' || lv[len(lv)-1] != '"' {
			return "unquoted label value for " + ln + " on " + name
		}
	}
	return ""
}

func (l *promLinter) lintHistSample(family, kind, name, labels string, val float64) string {
	key := family + "|" + stripLe(labels)
	st := l.hist[key]
	if st == nil {
		st = &histState{family: family, labels: stripLe(labels)}
		l.hist[key] = st
	}
	switch kind {
	case "bucket":
		le, ok := leOf(labels)
		if !ok {
			return "histogram bucket without le label: " + name
		}
		if st.sawInf {
			return "bucket after le=\"+Inf\" for " + family
		}
		if le == "+Inf" {
			st.sawInf, st.infVal = true, val
			if val < st.prevVal {
				return "+Inf bucket below previous bucket for " + family
			}
			return ""
		}
		f, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return "unparseable le=" + le + " for " + family
		}
		if st.prevLe != 0 || st.prevVal != 0 {
			if f <= st.prevLe {
				return "non-increasing le bounds for " + family
			}
			if val < st.prevVal {
				return "non-cumulative buckets for " + family
			}
		}
		st.prevLe, st.prevVal = f, val
	case "count":
		st.count, st.hasCnt = val, true
	}
	return ""
}

// finish runs the whole-exposition checks that need every line first.
func (l *promLinter) finish() []string {
	var problems []string
	for _, st := range l.hist {
		where := st.family
		if st.labels != "" {
			where += "{" + st.labels + "}"
		}
		if !st.sawInf {
			problems = append(problems, "histogram "+where+" missing le=\"+Inf\" bucket")
			continue
		}
		if st.hasCnt && st.infVal != st.count {
			problems = append(problems, fmt.Sprintf(
				"histogram %s +Inf bucket (%g) != _count (%g)", where, st.infVal, st.count))
		}
	}
	return problems
}

// familyOf maps a sample name to its declared family: _bucket/_sum/_count
// suffixes belong to the base histogram name if one was declared.
func familyOf(name string) (family, kind string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), suf[1:]
		}
	}
	return name, ""
}

// splitLabels splits `a="x",b="y,z"` on commas outside quotes.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func stripLe(labels string) string {
	var keep []string
	for _, p := range splitLabels(labels) {
		if !strings.HasPrefix(p, "le=") {
			keep = append(keep, p)
		}
	}
	return strings.Join(keep, ",")
}

func leOf(labels string) (string, bool) {
	for _, p := range splitLabels(labels) {
		if strings.HasPrefix(p, "le=") {
			v := p[len("le="):]
			v = strings.TrimPrefix(v, `"`)
			v = strings.TrimSuffix(v, `"`)
			return v, true
		}
	}
	return "", false
}
