package obs

import (
	"sync"
	"testing"
	"time"
)

// TestTimerZeroMin is the regression test for the shifted-min encoding:
// a genuine 0ns observation must be reported back as MinNs == 0, not as
// the old clamped 1.
func TestTimerZeroMin(t *testing.T) {
	r := New()
	r.ObservePhase(PhaseRefine, 0)
	ps := r.Snapshot().Phases["refine"]
	if ps.MinNs != 0 {
		t.Fatalf("MinNs = %d after a 0ns observation, want 0", ps.MinNs)
	}
	if ps.MaxNs != 0 || ps.Count != 1 || ps.TotalNs != 0 {
		t.Fatalf("stats after one 0ns observation: %+v", ps)
	}
	if len(ps.Buckets) != 1 || ps.Buckets[0].UpperNs != 1 || ps.Buckets[0].Count != 1 {
		t.Fatalf("0ns must land in the [0,1) bucket: %+v", ps.Buckets)
	}

	// A later, larger observation must not disturb the true 0 minimum.
	r.ObservePhase(PhaseRefine, 5*time.Nanosecond)
	ps = r.Snapshot().Phases["refine"]
	if ps.MinNs != 0 || ps.MaxNs != 5 {
		t.Fatalf("min/max = %d/%d after {0, 5}, want 0/5", ps.MinNs, ps.MaxNs)
	}

	// And a phase that only ever saw positive durations reports the real
	// minimum, not a clamp artifact.
	r.ObservePhase(PhaseTwins, 7*time.Nanosecond)
	r.ObservePhase(PhaseTwins, 3*time.Nanosecond)
	if got := r.Snapshot().Phases["twins"].MinNs; got != 3 {
		t.Fatalf("positive-only MinNs = %d, want 3", got)
	}
}

// TestTimerMinMaxBucketAgreement pins the internal consistency of a
// snapshot: min ≤ max, bucket counts sum to Count, and the min/max fall
// inside the covered bucket range — including across a Merge, which
// transfers the shifted encoding directly.
func TestTimerMinMaxBucketAgreement(t *testing.T) {
	check := func(t *testing.T, ps PhaseStats) {
		t.Helper()
		if ps.MinNs > ps.MaxNs {
			t.Fatalf("min %d > max %d", ps.MinNs, ps.MaxNs)
		}
		var sum int64
		for i, b := range ps.Buckets {
			sum += b.Count
			if i > 0 && b.UpperNs <= ps.Buckets[i-1].UpperNs {
				t.Fatalf("bucket bounds not increasing: %+v", ps.Buckets)
			}
		}
		if sum != ps.Count {
			t.Fatalf("bucket sum %d != count %d", sum, ps.Count)
		}
		if top := ps.Buckets[len(ps.Buckets)-1].UpperNs; ps.MaxNs >= top {
			t.Fatalf("max %d outside the largest bucket upper %d", ps.MaxNs, top)
		}
	}

	a, b := New(), New()
	for _, ns := range []time.Duration{0, 1, 100, 3 * time.Microsecond} {
		a.ObservePhase(PhaseBuild, ns)
	}
	for _, ns := range []time.Duration{2, 50 * time.Millisecond} {
		b.ObservePhase(PhaseBuild, ns)
	}
	check(t, a.Snapshot().Phases["build"])
	check(t, b.Snapshot().Phases["build"])

	dst := New()
	dst.Merge(a)
	dst.Merge(b)
	ps := dst.Snapshot().Phases["build"]
	check(t, ps)
	if ps.Count != 6 || ps.MinNs != 0 || ps.MaxNs != int64(50*time.Millisecond) {
		t.Fatalf("merged stats: %+v", ps)
	}

	// Merge into a timer that has no 0 observation must not invent one:
	// c's min stays the genuine 2ns until a smaller value arrives.
	c := New()
	c.ObservePhase(PhaseBuild, 2)
	c.Merge(b)
	if got := c.Snapshot().Phases["build"].MinNs; got != 2 {
		t.Fatalf("merged positive-only MinNs = %d, want 2", got)
	}
	c.Merge(a) // brings the true 0
	if got := c.Snapshot().Phases["build"].MinNs; got != 0 {
		t.Fatalf("MinNs after merging a 0 observation = %d, want 0", got)
	}
}

// TestMergeSnapshotRace exercises Merge and Snapshot against concurrent
// writers; run under -race this is the data-race proof for the
// bulk-pipeline drain path (workers record, applier merges, /stats
// snapshots — all at once).
func TestMergeSnapshotRace(t *testing.T) {
	dst := New()
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := New()
			for i := 0; i < 500; i++ {
				src.Inc(BulkRecords)
				src.ObservePhase(PhaseBulkIngest, time.Duration(i))
				if i%100 == 99 {
					dst.Merge(src)
					src = New()
				}
			}
			dst.Merge(src)
		}()
	}
	// Snapshot continuously while merges land.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := dst.Snapshot()
			if ps, ok := s.Phases["bulk_ingest"]; ok {
				var sum int64
				for _, b := range ps.Buckets {
					sum += b.Count
				}
				// Not a consistent cut, but never more buckets than counts
				// recorded by a completed merge plus one in flight.
				_ = sum
			}
		}
	}()
	wg.Wait()
	<-done
	if got := dst.Counter(BulkRecords); got != workers*500 {
		t.Fatalf("merged bulk_records = %d, want %d", got, workers*500)
	}
	ps := dst.Snapshot().Phases["bulk_ingest"]
	if ps.Count != workers*500 {
		t.Fatalf("merged phase count = %d, want %d", ps.Count, workers*500)
	}
	if ps.MinNs != 0 || ps.MaxNs != 499 {
		t.Fatalf("merged min/max = %d/%d, want 0/499", ps.MinNs, ps.MaxNs)
	}
}

// TestForwardingRace: concurrent writers on a forwarding recorder — every
// observation must land exactly once in both the local and base arrays.
func TestForwardingRace(t *testing.T) {
	base := New()
	fwd := NewForwarding(base)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				fwd.Inc(SearchNodes)
				fwd.ObservePhase(PhaseBuild, time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if l, b := fwd.Counter(SearchNodes), base.Counter(SearchNodes); l != 8000 || b != 8000 {
		t.Fatalf("local/base = %d/%d, want 8000/8000", l, b)
	}
	lp := fwd.Snapshot().Phases["build"]
	bp := base.Snapshot().Phases["build"]
	if lp.Count != 8000 || bp.Count != 8000 {
		t.Fatalf("phase counts local/base = %d/%d, want 8000/8000", lp.Count, bp.Count)
	}
}
