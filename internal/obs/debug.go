package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvar publication: each name is registered with the expvar package
// once (expvar panics on duplicate names), but the recorder behind a name
// can be swapped — a CLI run publishes its fresh recorder under the same
// name every invocation of ServeDebug.
var (
	pubMu   sync.Mutex
	pubRecs = map[string]*Recorder{}
)

// Publish exposes the recorder's live snapshot under the given expvar
// name, so it appears in /debug/vars next to memstats. Re-publishing an
// existing name swaps the recorder.
func Publish(name string, r *Recorder) {
	pubMu.Lock()
	defer pubMu.Unlock()
	if _, ok := pubRecs[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			pubMu.Lock()
			rec := pubRecs[name]
			pubMu.Unlock()
			return rec.Snapshot()
		}))
	}
	pubRecs[name] = r
}

// DebugServer is a live debugging endpoint: /debug/pprof/* (CPU, heap,
// goroutine, ... profiles), /debug/vars (expvar, including every
// Published recorder) and /debug/metrics (the recorder's snapshot as
// standalone JSON).
type DebugServer struct {
	Addr net.Addr
	srv  *http.Server
	ln   net.Listener
}

// ServeDebug publishes r under the expvar name "dvicl", binds addr (e.g.
// "localhost:6060"; a ":0" port picks a free one — read the bound address
// from DebugServer.Addr) and serves the debug endpoints in a background
// goroutine until Close.
func ServeDebug(addr string, r *Recorder) (*DebugServer, error) {
	Publish("dvicl", r)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{Addr: ln.Addr(), srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
