package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a Recorder
// snapshot plus caller-supplied gauges. Conventions enforced (and
// checked by LintProm, the vendored promtool-style linter):
//
//   - every metric is namespaced "dvicl_",
//   - counters end in "_total",
//   - phase timers render as one histogram family,
//     dvicl_phase_duration_seconds{phase="..."}, with cumulative
//     _bucket series (the log2 buckets mapped to le= upper bounds in
//     seconds), _sum and _count,
//   - every family has # HELP and # TYPE lines before its samples.

// MetricsNamespace prefixes every exposed metric name.
const MetricsNamespace = "dvicl"

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one Prometheus label pair.
type Label struct {
	Name  string
	Value string
}

// PromGauge is one caller-supplied gauge sample: Name is the metric name
// without the namespace prefix (e.g. "index_graphs"). Samples sharing a
// Name (e.g. per-shard series) must agree on Help.
type PromGauge struct {
	Name   string
	Help   string
	Labels []Label
	Value  float64
}

// counterHelp is the HELP line of each counter's Prometheus family.
var counterHelp = [numCounters]string{
	RefineCalls:        "Equitable-refinement trace hashes computed (one per Refine).",
	RefineRounds:       "Splitter cells processed off the refinement worklist.",
	CellSplits:         "New cell fragments created by refinement splitting.",
	SearchNodes:        "Search-tree nodes visited by the leaf engine.",
	SearchLeaves:       "Discrete colorings (leaves) reached by the leaf engine.",
	PruneFirstPath:     "Subtrees cut by the first-path invariant (P_A).",
	PruneBestPath:      "Subtrees cut by the best-path invariant (P_B).",
	PruneOrbit:         "Candidates cut by orbit pruning (P_C).",
	Automorphisms:      "Distinct non-identity automorphism generators discovered.",
	Backjumps:          "Automorphism backjumps taken by the leaf engine.",
	Truncations:        "Leaf searches aborted by MaxNodes or Deadline.",
	DivideICalls:       "DivideI attempts (Algorithm 2).",
	DivideSCalls:       "DivideS attempts (Algorithm 3).",
	LeafSearches:       "Non-singleton leaves labeled by the leaf engine.",
	TwinVertsCollapsed: "Vertices removed by twin simplification.",
	WorkerSpawns:       "Subtree build tasks pushed onto the scheduler deques.",
	WorkerInline:       "Divided nodes whose children were built inline (tiny fanout).",

	SchedSteals:         "Build tasks taken from another worker's deque.",
	SchedDequeHighWater: "Deepest any single scheduler deque got during a build.",
	SSMQueries:          "SSM count/enumerate/key queries answered.",
	SSMLeafCandidates:   "Candidate images generated at SSM leaf base cases.",
	SSMLeafPruned:       "SM embeddings rejected by the symmetry check.",
	IndexAdds:           "GraphIndex.Add calls.",
	IndexLookups:        "GraphIndex.Lookup calls.",
	CertCacheHits:       "Certificate LRU cache hits (DviCL build skipped).",
	CertCacheMisses:     "Certificate LRU cache misses (DviCL build ran).",
	WALAppends:          "Records appended to the index WAL.",
	WALReplayed:         "WAL records replayed at index open.",
	SnapshotsWritten:    "Snapshot compactions completed.",
	HTTPRequests:        "HTTP requests received (all endpoints).",
	HTTPErrors:          "HTTP responses with status >= 400 (includes throttled 503s).",
	HTTPThrottled:       "503s issued by the concurrency limiter.",
	IndexAddDuplicate:   "Adds that hit an existing isomorphism class.",
	BulkRecords:         "Records read from bulk-ingest streams.",
	BulkDecodeErrors:    "Bulk records rejected by the decoder.",
	IndexCanceled:       "Builds aborted by request-context cancellation.",

	TreeStoreMemHits:        "Tree-store gets served from the decoded-tree memory cache.",
	TreeStoreDiskHits:       "Tree-store gets served by decoding an on-disk record.",
	TreeRebuilds:            "AutoTrees rebuilt from their certificate (store miss or corruption).",
	TreeStorePuts:           "AutoTree records persisted to disk.",
	TreeStoreCorrupt:        "Tree records dropped as corrupt (typed decode failure).",
	TreeStoreEvictions:      "Decoded trees evicted by the memory budget.",
	TreeStorePersistDropped: "Write-behind persists dropped by a full queue.",

	SymmetryQueryOrbits:   "Orbit-partition queries answered.",
	SymmetryQueryAutGroup: "Automorphism-group queries answered.",
	SymmetryQueryQuotient: "Orbit-quotient queries answered.",
	SymmetryQuerySSM:      "Symmetric-subgraph-matching queries answered.",
}

// WriteProm renders the snapshot and gauges in the Prometheus text
// exposition format. Counters appear in declaration order (all of them,
// including zeros, so the scrape target's series set is stable); phase
// histograms appear only for phases that fired (series are born with
// their first observation, the usual Prometheus idiom); gauges are
// sorted by name so multi-sample families stay contiguous.
func WriteProm(w io.Writer, s Snapshot, gauges []PromGauge) error {
	bw := bufio.NewWriter(w)
	for c := Counter(0); c < numCounters; c++ {
		name := MetricsNamespace + "_" + c.String() + "_total"
		fmt.Fprintf(bw, "# HELP %s %s\n", name, counterHelp[c])
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		fmt.Fprintf(bw, "%s %d\n", name, s.Counters[c.String()])
	}

	histName := MetricsNamespace + "_phase_duration_seconds"
	wroteHistHeader := false
	for p := Phase(0); p < numPhases; p++ {
		ps, ok := s.Phases[p.String()]
		if !ok {
			continue
		}
		if !wroteHistHeader {
			fmt.Fprintf(bw, "# HELP %s Wall time of one pipeline phase span, by phase.\n", histName)
			fmt.Fprintf(bw, "# TYPE %s histogram\n", histName)
			wroteHistHeader = true
		}
		label := `phase="` + escapeLabel(p.String()) + `"`
		cum := int64(0)
		for _, b := range ps.Buckets {
			cum += b.Count
			le := strconv.FormatFloat(float64(b.UpperNs)/1e9, 'g', -1, 64)
			fmt.Fprintf(bw, "%s_bucket{%s,le=%q} %d\n", histName, label, le, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{%s,le=\"+Inf\"} %d\n", histName, label, ps.Count)
		sum := strconv.FormatFloat(float64(ps.TotalNs)/1e9, 'g', -1, 64)
		fmt.Fprintf(bw, "%s_sum{%s} %s\n", histName, label, sum)
		fmt.Fprintf(bw, "%s_count{%s} %d\n", histName, label, ps.Count)
	}

	sorted := append([]PromGauge(nil), gauges...)
	// Stable sort by name keeps families contiguous and the caller's
	// label-set order (e.g. shard 0..N) intact within a family.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1].Name > sorted[j].Name; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	prev := ""
	for _, g := range sorted {
		name := MetricsNamespace + "_" + g.Name
		if g.Name != prev {
			help := g.Help
			if help == "" {
				help = "Gauge " + g.Name + "."
			}
			fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			prev = g.Name
		}
		var lb strings.Builder
		for i, l := range g.Labels {
			if i > 0 {
				lb.WriteByte(',')
			}
			lb.WriteString(l.Name)
			lb.WriteString(`="`)
			lb.WriteString(escapeLabel(l.Value))
			lb.WriteByte('"')
		}
		val := strconv.FormatFloat(g.Value, 'g', -1, 64)
		if lb.Len() > 0 {
			fmt.Fprintf(bw, "%s{%s} %s\n", name, lb.String(), val)
		} else {
			fmt.Fprintf(bw, "%s %s\n", name, val)
		}
	}
	return bw.Flush()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
