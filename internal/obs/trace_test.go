package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("req-1", nil)
	build := tr.StartSpan(nil, "build")
	build.SetAttr("n", 100)
	refine := build.Child("refine")
	refine.End()
	leaf := build.Child("leaf_search")
	leaf.SetAttr("size", 40)
	leaf.SetAttr("size", 42) // overwrite, not duplicate
	leaf.End()
	build.End()
	tr.Root().End()

	snap := tr.Snapshot()
	if snap.ID != "req-1" {
		t.Fatalf("ID = %q, want req-1", snap.ID)
	}
	root := snap.Spans
	if root.Name != "request" || root.Running {
		t.Fatalf("root = %+v, want ended span named request", root)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "build" {
		t.Fatalf("root children = %+v, want [build]", root.Children)
	}
	b := root.Children[0]
	if b.Attrs["n"] != 100 {
		t.Fatalf("build attrs = %v, want n=100", b.Attrs)
	}
	if len(b.Children) != 2 || b.Children[0].Name != "refine" || b.Children[1].Name != "leaf_search" {
		t.Fatalf("build children = %+v, want [refine leaf_search]", b.Children)
	}
	if got := b.Children[1].Attrs["size"]; got != 42 {
		t.Fatalf("leaf size attr = %d, want 42 (overwritten)", got)
	}
	for _, s := range []SpanSnapshot{root, b, b.Children[0], b.Children[1]} {
		if s.DurNs < 1 {
			t.Fatalf("span %s has DurNs %d, want >= 1", s.Name, s.DurNs)
		}
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
}

func TestTraceRunningSpanSnapshot(t *testing.T) {
	tr := NewTrace("r", nil)
	s := tr.StartSpan(nil, "slow")
	time.Sleep(time.Millisecond)
	snap := tr.Snapshot()
	child := snap.Spans.Children[0]
	if !child.Running {
		t.Fatalf("unfinished span not marked Running: %+v", child)
	}
	if child.DurNs < int64(time.Millisecond) {
		t.Fatalf("running span DurNs = %d, want >= 1ms elapsed", child.DurNs)
	}
	s.End()
	if got := tr.Snapshot().Spans.Children[0]; got.Running {
		t.Fatalf("ended span still Running: %+v", got)
	}
}

// TestTraceNilSafety drives every Trace/TraceSpan method through nil
// receivers — the disabled-tracing path every instrumented call site
// takes.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Recorder() != nil || tr.Root() != nil {
		t.Fatal("nil trace accessors must return zero values")
	}
	tr.SetMaxSpans(10)
	s := tr.StartSpan(nil, "x")
	if s != nil {
		t.Fatal("StartSpan on nil trace must return nil span")
	}
	s.End()
	s.SetAttr("k", 1)
	if c := s.Child("y"); c != nil {
		t.Fatal("Child of nil span must be nil")
	}
	snap := tr.Snapshot()
	if snap.ID != "" || len(snap.Counters) != 0 {
		t.Fatalf("nil trace snapshot = %+v, want zero value", snap)
	}

	// Context carriage on nil ctx / ctx without a trace.
	if TraceFrom(nil) != nil || SpanFrom(nil) != nil {
		t.Fatal("TraceFrom/SpanFrom on nil ctx must be nil")
	}
	ctx := context.Background()
	if TraceFrom(ctx) != nil || SpanFrom(ctx) != nil {
		t.Fatal("TraceFrom/SpanFrom on bare ctx must be nil")
	}
	if got := DetachTrace(ctx); got != ctx {
		t.Fatal("DetachTrace of an untraced ctx must return ctx unchanged")
	}
}

func TestTraceContextCarriage(t *testing.T) {
	tr := NewTrace("ctx", nil)
	sp := tr.StartSpan(nil, "parent")
	ctx := WithSpan(WithTrace(context.Background(), tr), sp)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	if SpanFrom(ctx) != sp {
		t.Fatal("SpanFrom lost the span")
	}
	det := DetachTrace(ctx)
	if TraceFrom(det) != nil || SpanFrom(det) != nil {
		t.Fatal("DetachTrace must shadow both trace and span")
	}
	// The original ctx is untouched.
	if TraceFrom(ctx) != tr {
		t.Fatal("DetachTrace mutated the parent ctx")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("cap", nil)
	tr.SetMaxSpans(4) // root + 3
	var got int
	for i := 0; i < 10; i++ {
		if tr.StartSpan(nil, "s") != nil {
			got++
		}
	}
	if got != 3 {
		t.Fatalf("spans created = %d, want 3 (cap 4 including root)", got)
	}
	snap := tr.Snapshot()
	if snap.DroppedSpans != 7 {
		t.Fatalf("DroppedSpans = %d, want 7", snap.DroppedSpans)
	}
	if len(snap.Spans.Children) != 3 {
		t.Fatalf("children = %d, want 3", len(snap.Spans.Children))
	}
}

// TestTraceForwarding pins the dual-accounting contract: recording
// through the trace's recorder increments both the request deltas and
// the base recorder, exactly once each.
func TestTraceForwarding(t *testing.T) {
	base := New()
	base.Inc(SearchNodes) // pre-existing global state
	tr := NewTrace("fwd", base)
	rec := tr.Recorder()
	rec.Inc(SearchNodes)
	rec.Add(SearchLeaves, 5)
	rec.ObservePhase(PhaseBuild, 2*time.Millisecond)

	if got := rec.Counter(SearchNodes); got != 1 {
		t.Fatalf("trace delta SearchNodes = %d, want 1 (not the global 2)", got)
	}
	if got := base.Counter(SearchNodes); got != 2 {
		t.Fatalf("base SearchNodes = %d, want 2", got)
	}
	if got := base.Counter(SearchLeaves); got != 5 {
		t.Fatalf("base SearchLeaves = %d, want 5", got)
	}
	bs := base.Snapshot().Phases["build"]
	ts := rec.Snapshot().Phases["build"]
	if bs.Count != 1 || ts.Count != 1 {
		t.Fatalf("phase counts base=%d trace=%d, want 1 and 1", bs.Count, ts.Count)
	}

	// Merge forwards through the chain too (the bulk-worker drain path).
	worker := New()
	worker.Add(SearchNodes, 10)
	rec.Merge(worker)
	if got := rec.Counter(SearchNodes); got != 11 {
		t.Fatalf("trace delta after merge = %d, want 11", got)
	}
	if got := base.Counter(SearchNodes); got != 12 {
		t.Fatalf("base after merge = %d, want 12", got)
	}

	// Trace snapshot keeps only non-zero counters.
	snap := tr.Snapshot()
	if _, ok := snap.Counters["refine_calls"]; ok {
		t.Fatal("trace snapshot must omit zero counters")
	}
	if snap.Counters["search_nodes"] != 11 {
		t.Fatalf("snapshot search_nodes = %d, want 11", snap.Counters["search_nodes"])
	}
}

// TestTraceConcurrent hammers one trace from many goroutines — the
// parallel-subtree-builder shape — and relies on -race for the verdict.
func TestTraceConcurrent(t *testing.T) {
	base := New()
	tr := NewTrace("conc", base)
	parent := tr.StartSpan(nil, "build")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := parent.Child("leaf_search")
				s.SetAttr("size", int64(i))
				tr.Recorder().Inc(SearchNodes)
				s.End()
				if i%50 == 0 {
					_ = tr.Snapshot() // snapshot while recording
				}
			}
		}(w)
	}
	wg.Wait()
	parent.End()
	if got := base.Counter(SearchNodes); got != 8*200 {
		t.Fatalf("base SearchNodes = %d, want %d", got, 8*200)
	}
	snap := tr.Snapshot()
	total := len(snap.Spans.Children[0].Children) + int(snap.DroppedSpans)
	if total != 8*200 {
		t.Fatalf("children + dropped = %d, want %d", total, 8*200)
	}
}
