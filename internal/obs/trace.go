package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is the request-scoped observability unit: a hierarchical span
// tree (build → refine/twins/divide/combine → leaf searches) plus a
// private forwarding Recorder whose contents are exactly this request's
// counter deltas and phase timings. The global Recorder answers "what is
// the process doing"; a Trace answers the operator's next question,
// "which request burned the budget, and in which phase".
//
// A Trace travels in a context.Context (WithTrace/TraceFrom) alongside
// the current parent span (WithSpan/SpanFrom); instrumented layers pull
// it out at their entry points and thread explicit *TraceSpan parents
// through their own recursion. A nil *Trace is a valid disabled trace —
// every method no-ops (StartSpan returns a nil *TraceSpan, itself a
// valid no-op span), so instrumentation costs one predictable nil check
// when tracing is off and allocates nothing.
//
// The span tree is bounded: once maxSpans spans exist, further StartSpan
// calls return nil and are counted as dropped, so a pathological build
// (millions of tree nodes) cannot balloon a request record.
//
// Concurrency: a Trace is safe for concurrent use — parallel subtree
// builders attach spans to the same parent. Span attachment and
// attributes are guarded by one mutex; End is a single atomic store.
type Trace struct {
	id       string
	start    time.Time
	rec      *Recorder // forwarding recorder: request deltas + global totals
	maxSpans int

	mu      sync.Mutex
	root    *TraceSpan
	spans   int
	dropped int64
}

// DefaultMaxSpans bounds the span tree of one Trace unless overridden
// with SetMaxSpans. Sized to hold every phase of a typical build with
// room for a few hundred tree-node spans.
const DefaultMaxSpans = 1024

// NewTrace starts a trace for one request. Observations recorded through
// Recorder() are kept as this request's deltas and forwarded to base —
// pass the same recorder the downstream layers use as their global one,
// or nil for a standalone trace. The root span ("request") is already
// running; End it (or snapshot before ending) when the request finishes.
func NewTrace(id string, base *Recorder) *Trace {
	t := &Trace{
		id:       id,
		start:    time.Now(),
		rec:      NewForwarding(base),
		maxSpans: DefaultMaxSpans,
	}
	t.root = &TraceSpan{tr: t, name: "request", start: t.start}
	t.spans = 1
	return t
}

// SetMaxSpans overrides the span cap (values < 1 keep the current cap).
// Call it before handing the trace to instrumented code.
func (t *Trace) SetMaxSpans(n int) {
	if t == nil || n < 1 {
		return
	}
	t.mu.Lock()
	t.maxSpans = n
	t.mu.Unlock()
}

// ID returns the request id the trace was created with ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Recorder returns the trace's private forwarding recorder: recording
// into it lands in the request deltas and in the base recorder the trace
// was created with. Nil on a nil trace (a valid no-op recorder).
func (t *Trace) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Root returns the implicit "request" span (nil on a nil trace).
func (t *Trace) Root() *TraceSpan {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan opens a child span of parent (of the root span when parent
// is nil). It returns nil — a valid no-op span — on a nil trace or once
// the span cap is reached; dropped spans are counted in the snapshot.
func (t *Trace) StartSpan(parent *TraceSpan, name string) *TraceSpan {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	if t.spans >= t.maxSpans {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	if parent == nil {
		parent = t.root
	}
	s := &TraceSpan{tr: t, name: name, start: now}
	parent.children = append(parent.children, s)
	t.spans++
	t.mu.Unlock()
	return s
}

// TraceSpan is one node of a trace's span tree. A nil *TraceSpan is a
// valid no-op span: End, SetAttr and Child all no-op, so call sites never
// nil-check.
type TraceSpan struct {
	tr    *Trace
	name  string
	start time.Time
	durNs atomic.Int64 // 0 while running; ≥1 once ended (clamped)

	// children and attrs are guarded by tr.mu.
	children []*TraceSpan
	attrs    []spanAttr
}

type spanAttr struct {
	key string
	val int64
}

// Child opens a sub-span (nil-safe).
func (s *TraceSpan) Child(name string) *TraceSpan {
	if s == nil {
		return nil
	}
	return s.tr.StartSpan(s, name)
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration; ending a nil span is a no-op.
func (s *TraceSpan) End() {
	if s == nil {
		return
	}
	d := int64(time.Since(s.start))
	if d < 1 {
		d = 1 // 0 is reserved for "still running"
	}
	s.durNs.CompareAndSwap(0, d)
}

// SetAttr attaches (or overwrites) an integer attribute — graph size,
// search nodes, truncation flags. Nil-safe.
func (s *TraceSpan) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = v
			s.tr.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, spanAttr{key: key, val: v})
	s.tr.mu.Unlock()
}

// SpanSnapshot is the JSON form of one span: durations in nanoseconds,
// start as an offset from the trace start.
type SpanSnapshot struct {
	Name     string           `json:"name"`
	StartNs  int64            `json:"start_ns"`
	DurNs    int64            `json:"dur_ns"`
	Running  bool             `json:"running,omitempty"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []SpanSnapshot   `json:"children,omitempty"`
}

// TraceSnapshot is the JSON form of a whole trace: the span tree plus
// the request's counter deltas (non-zero only) and phase timings.
type TraceSnapshot struct {
	ID           string                `json:"id"`
	Start        time.Time             `json:"start"`
	DurNs        int64                 `json:"dur_ns"`
	DroppedSpans int64                 `json:"dropped_spans,omitempty"`
	Spans        SpanSnapshot          `json:"spans"`
	Counters     map[string]int64      `json:"counters,omitempty"`
	Phases       map[string]PhaseStats `json:"phases,omitempty"`
}

// Snapshot copies the trace: span tree, per-request counter deltas
// (non-zero only — a request record should not carry 30 zeros) and phase
// stats. Safe to call while spans are still being recorded; running
// spans report their elapsed time so far with Running set.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	rs := t.rec.Snapshot()
	for name, v := range rs.Counters {
		if v == 0 {
			delete(rs.Counters, name)
		}
	}
	t.mu.Lock()
	snap := TraceSnapshot{
		ID:           t.id,
		Start:        t.start,
		DroppedSpans: t.dropped,
		Spans:        t.snapshotSpanLocked(t.root),
		Counters:     rs.Counters,
		Phases:       rs.Phases,
	}
	t.mu.Unlock()
	snap.DurNs = snap.Spans.DurNs
	return snap
}

// snapshotSpanLocked copies one span subtree; t.mu is held.
func (t *Trace) snapshotSpanLocked(s *TraceSpan) SpanSnapshot {
	out := SpanSnapshot{
		Name:    s.name,
		StartNs: int64(s.start.Sub(t.start)),
		DurNs:   s.durNs.Load(),
	}
	if out.DurNs == 0 {
		out.Running = true
		out.DurNs = int64(time.Since(s.start))
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]int64, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.key] = a.val
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, t.snapshotSpanLocked(c))
	}
	return out
}

// Context carriage. The trace and the current parent span ride the
// request context so that layers which only receive a ctx (GraphIndex,
// core.BuildCtx, ssm queries) can attach their spans in the right place
// without new parameters on every signature.

type traceCtxKey struct{}
type spanCtxKey struct{}

// WithTrace returns ctx carrying t. Storing a nil trace explicitly
// shadows any outer trace (see DetachTrace).
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil (also on nil ctx).
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// WithSpan returns ctx with s as the current parent span: spans started
// by deeper layers attach under it.
func WithSpan(ctx context.Context, s *TraceSpan) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the current parent span of ctx, or nil.
func SpanFrom(ctx context.Context) *TraceSpan {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*TraceSpan)
	return s
}

// DetachTrace shadows any trace in ctx while keeping its cancellation
// and deadline. Fan-out stages (the bulk pipeline's worker pool) detach
// before spawning per-record builds: hundreds of concurrent builds
// tracing into one span tree would only hit the span cap and contend on
// the trace mutex.
func DetachTrace(ctx context.Context) context.Context {
	if TraceFrom(ctx) == nil && SpanFrom(ctx) == nil {
		return ctx
	}
	return WithSpan(WithTrace(ctx, nil), nil)
}
