package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Inc(SearchNodes)
	r.Add(SearchLeaves, 5)
	r.ObservePhase(PhaseBuild, time.Millisecond)
	r.StartPhase(PhaseRefine).End()
	r.Reset()
	if got := r.Counter(SearchNodes); got != 0 {
		t.Fatalf("nil Counter = %d, want 0", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != int(numCounters) {
		t.Fatalf("nil snapshot has %d counters, want %d", len(s.Counters), numCounters)
	}
	for name, v := range s.Counters {
		if v != 0 {
			t.Fatalf("nil snapshot counter %s = %d", name, v)
		}
	}
	if len(s.Phases) != 0 {
		t.Fatalf("nil snapshot has phases: %v", s.Phases)
	}
}

func TestCounterAndPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if name == "" || name == "unknown_counter" {
			t.Fatalf("counter %d has no name", c)
		}
		if strings.ToLower(name) != name || strings.Contains(name, " ") {
			t.Fatalf("counter name %q is not snake_case", name)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	for p := Phase(0); p < numPhases; p++ {
		name := p.String()
		if name == "" || name == "unknown_phase" {
			t.Fatalf("phase %d has no name", p)
		}
		if seen[name] {
			t.Fatalf("phase name %q collides with a counter", name)
		}
	}
	if Counter(numCounters).String() != "unknown_counter" {
		t.Fatal("out-of-range counter should be unknown")
	}
	if Phase(numPhases).String() != "unknown_phase" {
		t.Fatal("out-of-range phase should be unknown")
	}
}

func TestCountersAndSnapshot(t *testing.T) {
	r := New()
	r.Inc(RefineCalls)
	r.Add(CellSplits, 41)
	r.Inc(CellSplits)
	if got := r.Counter(CellSplits); got != 42 {
		t.Fatalf("CellSplits = %d, want 42", got)
	}
	r.ObservePhase(PhaseRefine, 100*time.Nanosecond)
	r.ObservePhase(PhaseRefine, 3*time.Microsecond)
	s := r.Snapshot()
	if s.Counters["cell_splits"] != 42 || s.Counters["refine_calls"] != 1 {
		t.Fatalf("snapshot counters: %v", s.Counters)
	}
	if s.Counters["search_nodes"] != 0 {
		t.Fatal("untouched counters must still appear (as zero)")
	}
	ps, ok := s.Phases["refine"]
	if !ok {
		t.Fatalf("refine phase missing: %v", s.Phases)
	}
	if ps.Count != 2 || ps.TotalNs != 3100 || ps.MinNs != 100 || ps.MaxNs != 3000 {
		t.Fatalf("refine phase stats: %+v", ps)
	}
	var bucketTotal int64
	for _, b := range ps.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 2 {
		t.Fatalf("bucket counts sum to %d, want 2", bucketTotal)
	}
	r.Reset()
	if r.Counter(CellSplits) != 0 || len(r.Snapshot().Phases) != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Add(SearchNodes, 7)
	r.ObservePhase(PhaseBuild, time.Millisecond)
	var sb strings.Builder
	if err := r.Snapshot().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["search_nodes"] != 7 {
		t.Fatalf("round-tripped counters: %v", back.Counters)
	}
	if back.Phases["build"].Count != 1 {
		t.Fatalf("round-tripped phases: %v", back.Phases)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Inc(SearchNodes)
				r.ObservePhase(PhaseCombineCL, time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(SearchNodes); got != workers*per {
		t.Fatalf("concurrent count = %d, want %d", got, workers*per)
	}
	if got := r.Snapshot().Phases["combine_cl"].Count; got != workers*per {
		t.Fatalf("concurrent phase count = %d, want %d", got, workers*per)
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	r := New()
	r.Add(SearchNodes, 123)
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr.String()

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/debug/metrics"); !strings.Contains(body, `"search_nodes": 123`) {
		t.Fatalf("/debug/metrics missing counter: %s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "search_nodes") {
		t.Fatalf("/debug/vars missing published recorder: %.200s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected: %.200s", body)
	}

	// Re-publishing under the same name swaps the recorder without panic.
	r2 := New()
	r2.Add(SearchNodes, 7)
	Publish("dvicl", r2)
	if body := get("/debug/vars"); !strings.Contains(body, `"search_nodes":7`) {
		t.Fatalf("/debug/vars did not swap recorder: %.500s", body)
	}
}

func TestTimerBucketsCoverExtremes(t *testing.T) {
	r := New()
	r.ObservePhase(PhaseBuild, 0)
	r.ObservePhase(PhaseBuild, time.Duration(1)<<62)
	r.ObservePhase(PhaseBuild, -time.Second) // clamped to 0
	ps := r.Snapshot().Phases["build"]
	if ps.Count != 3 {
		t.Fatalf("count = %d", ps.Count)
	}
	if ps.MaxNs != 1<<62 {
		t.Fatalf("max = %d", ps.MaxNs)
	}
}

func ExampleRecorder() {
	r := New()
	r.Inc(DivideICalls)
	sp := r.StartPhase(PhaseDivideI)
	sp.End()
	fmt.Println(r.Counter(DivideICalls))
	// Output: 1
}

func TestRecorderMerge(t *testing.T) {
	var dst, a, b *Recorder
	dst = New()
	a, b = New(), New()
	a.Add(BulkRecords, 10)
	a.ObservePhase(PhaseBulkIngest, 4*time.Microsecond)
	a.ObservePhase(PhaseBulkIngest, 16*time.Microsecond)
	b.Add(BulkRecords, 5)
	b.Inc(IndexAddDuplicate)
	b.ObservePhase(PhaseBulkIngest, 2*time.Microsecond)

	dst.Merge(a)
	dst.Merge(b)
	dst.Merge(nil)            // no-op
	(*Recorder)(nil).Merge(a) // no-op

	if got := dst.Counter(BulkRecords); got != 15 {
		t.Fatalf("merged bulk_records = %d, want 15", got)
	}
	if got := dst.Counter(IndexAddDuplicate); got != 1 {
		t.Fatalf("merged index_add_duplicate = %d, want 1", got)
	}
	ps, ok := dst.Snapshot().Phases[PhaseBulkIngest.String()]
	if !ok {
		t.Fatal("merged snapshot missing bulk_ingest phase")
	}
	if ps.Count != 3 {
		t.Fatalf("merged phase count = %d, want 3", ps.Count)
	}
	wantTotal := int64(22 * time.Microsecond)
	if ps.TotalNs != wantTotal {
		t.Fatalf("merged phase total = %d, want %d", ps.TotalNs, wantTotal)
	}
	if ps.MinNs != int64(2*time.Microsecond) || ps.MaxNs != int64(16*time.Microsecond) {
		t.Fatalf("merged min/max = %d/%d", ps.MinNs, ps.MaxNs)
	}
	var bucketSum int64
	for _, bk := range ps.Buckets {
		bucketSum += bk.Count
	}
	if bucketSum != 3 {
		t.Fatalf("merged buckets sum to %d, want 3", bucketSum)
	}
}
