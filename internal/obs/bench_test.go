package obs

import (
	"context"
	"testing"
	"time"
)

// TestNilInstrumentationAllocFree is the benchmark-guard in test form:
// the disabled-observability path (nil Recorder, nil Trace, untraced
// context) must never allocate, or the "tracing is free when off"
// contract — and every hot loop relying on it — quietly breaks. CI runs
// this under plain `go test`; the companion benchmarks report the same
// paths with -benchmem for humans.
func TestNilInstrumentationAllocFree(t *testing.T) {
	var r *Recorder
	var tr *Trace
	var span *TraceSpan
	ctx := context.Background()

	cases := []struct {
		name string
		fn   func()
	}{
		{"Recorder.Inc", func() { r.Inc(SearchNodes) }},
		{"Recorder.Add", func() { r.Add(SearchLeaves, 3) }},
		{"Recorder.ObservePhase", func() { r.ObservePhase(PhaseBuild, time.Millisecond) }},
		{"Recorder.StartPhase+End", func() { r.StartPhase(PhaseRefine).End() }},
		{"Recorder.Merge", func() { r.Merge(nil) }},
		{"Trace.StartSpan", func() { _ = tr.StartSpan(nil, "x") }},
		{"Trace.Recorder", func() { _ = tr.Recorder() }},
		{"Trace.Root", func() { _ = tr.Root() }},
		{"Span.End", func() { span.End() }},
		{"Span.SetAttr", func() { span.SetAttr("k", 1) }},
		{"Span.Child", func() { _ = span.Child("y") }},
		{"TraceFrom", func() { _ = TraceFrom(ctx) }},
		{"SpanFrom", func() { _ = SpanFrom(ctx) }},
		{"DetachTrace", func() { _ = DetachTrace(ctx) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
				t.Fatalf("%s on the nil/disabled path allocates %.1f times per op, want 0", tc.name, allocs)
			}
		})
	}
}

func BenchmarkNilRecorderInc(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Inc(SearchNodes)
	}
}

func BenchmarkNilRecorderStartPhase(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartPhase(PhaseBuild).End()
	}
}

func BenchmarkNilTraceStartSpan(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartSpan(nil, "build")
		s.SetAttr("n", 1)
		s.End()
	}
}

func BenchmarkUntracedContextLookup(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = TraceFrom(ctx)
		_ = SpanFrom(ctx)
	}
}

func BenchmarkEnabledRecorderInc(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Inc(SearchNodes)
	}
}

func BenchmarkForwardingRecorderInc(b *testing.B) {
	r := NewForwarding(New())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Inc(SearchNodes)
	}
}
