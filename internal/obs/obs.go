// Package obs is the pipeline's observability layer: a zero-dependency
// set of atomic counters and phase timers that every stage of the system
// (refinement, divide, combine, leaf search, SSM) reports into.
//
// The paper's whole evaluation is about *search effort* — tree shape,
// leaf search nodes, pruning effectiveness (Tables 3–5, 8) — so the
// counters here mirror the quantities nauty/Traces expose: nodes visited,
// leaves reached, prunings fired, automorphisms found, refinement work.
//
// A nil *Recorder is a valid no-op recorder: every method nil-checks the
// receiver first, so instrumented hot paths pay one predictable branch
// when recording is disabled. Recorders are safe for concurrent use
// (parallel AutoTree construction feeds one recorder from many workers).
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter identifies one monotonically increasing count.
type Counter int

// The counter set, grouped by the pipeline layer that reports it.
const (
	// internal/coloring — equitable refinement (1-WL).
	RefineCalls  Counter = iota // trace hashes computed (one per Refine)
	RefineRounds                // splitter cells processed off the worklist
	CellSplits                  // new cell fragments created by splitting

	// internal/canon — individualization–refinement search.
	SearchNodes    // search-tree nodes visited
	SearchLeaves   // discrete colorings (leaves) reached
	PruneFirstPath // P_A hits: subtree cut by the first-path invariant
	PruneBestPath  // P_B hits: subtree cut by the best-path invariant
	PruneOrbit     // P_C hits: candidate cut by orbit pruning
	Automorphisms  // distinct non-identity generators discovered
	Backjumps      // bliss-style automorphism backjumps taken
	Truncations    // searches aborted by MaxNodes or Deadline

	// internal/core — DviCL divide & combine.
	DivideICalls       // DivideI attempts (Algorithm 2)
	DivideSCalls       // DivideS attempts (Algorithm 3)
	LeafSearches       // non-singleton leaves labeled by the leaf engine
	TwinVertsCollapsed // vertices removed by twin simplification (§6.1)
	WorkerSpawns       // subtree build tasks pushed onto the scheduler deques
	WorkerInline       // divided nodes whose children built inline (tiny fanout)

	// internal/core scheduler — work-stealing effort. These (plus the two
	// above) are scheduling counters: their values vary with worker count
	// and OS timing even though the resulting tree does not. See
	// SchedulerCounter.
	SchedSteals         // tasks taken from another worker's deque
	SchedDequeHighWater // deepest any single deque got during the build

	// internal/ssm — symmetric subgraph matching.
	SSMQueries        // Count/Enumerate/PatternKey calls answered
	SSMLeafCandidates // candidate images generated at leaf base cases
	SSMLeafPruned     // SM embeddings rejected by the symmetry check

	// GraphIndex + internal/store — the certificate index serving layer.
	IndexAdds        // GraphIndex.Add calls
	IndexLookups     // GraphIndex.Lookup calls
	CertCacheHits    // certificate LRU cache hits (DviCL build skipped)
	CertCacheMisses  // certificate LRU cache misses (DviCL build ran)
	WALAppends       // records appended to the index WAL
	WALReplayed      // WAL records replayed at OpenGraphIndex
	SnapshotsWritten // snapshot compactions completed

	// cmd/indexd — the HTTP serving layer.
	HTTPRequests  // requests received (all endpoints)
	HTTPErrors    // responses with status >= 400
	HTTPThrottled // 503s issued by the concurrency limiter

	// internal/pipeline + GraphIndex — the bulk-ingest layer.
	IndexAddDuplicate // Adds that hit an existing isomorphism class
	BulkRecords       // records read from a bulk-ingest stream
	BulkDecodeErrors  // bulk records rejected by the decoder
	IndexCanceled     // builds aborted by request-context cancellation

	// internal/treestore — the persistent AutoTree store.
	TreeStoreMemHits        // queries answered from the decoded-tree LRU
	TreeStoreDiskHits       // queries answered by loading a persisted record
	TreeRebuilds            // trees recomputed from the certificate (cold or corrupt)
	TreeStorePuts           // tree records written to disk
	TreeStoreCorrupt        // persisted records rejected (checksum/format) and recomputed
	TreeStoreEvictions      // decoded trees evicted by the memory budget
	TreeStorePersistDropped // write-behind persists dropped by a full queue

	// GraphIndex + cmd/indexd — the symmetry-query serving layer.
	SymmetryQueryOrbits   // orbit queries answered
	SymmetryQueryAutGroup // automorphism-group queries answered
	SymmetryQueryQuotient // quotient-graph queries answered
	SymmetryQuerySSM      // SSM-AT queries answered

	numCounters
)

var counterNames = [numCounters]string{
	RefineCalls:        "refine_calls",
	RefineRounds:       "refine_rounds",
	CellSplits:         "cell_splits",
	SearchNodes:        "search_nodes",
	SearchLeaves:       "search_leaves",
	PruneFirstPath:     "prune_first_path",
	PruneBestPath:      "prune_best_path",
	PruneOrbit:         "prune_orbit",
	Automorphisms:      "automorphisms",
	Backjumps:          "backjumps",
	Truncations:        "truncations",
	DivideICalls:       "divide_i_calls",
	DivideSCalls:       "divide_s_calls",
	LeafSearches:       "leaf_searches",
	TwinVertsCollapsed: "twin_verts_collapsed",
	WorkerSpawns:       "worker_spawns",
	WorkerInline:       "worker_inline",

	SchedSteals:         "sched_steals",
	SchedDequeHighWater: "sched_deque_high_water",
	SSMQueries:          "ssm_queries",
	SSMLeafCandidates:   "ssm_leaf_candidates",
	SSMLeafPruned:       "ssm_leaf_pruned",
	IndexAdds:           "index_adds",
	IndexLookups:        "index_lookups",
	CertCacheHits:       "cert_cache_hits",
	CertCacheMisses:     "cert_cache_misses",
	WALAppends:          "wal_appends",
	WALReplayed:         "wal_replayed",
	SnapshotsWritten:    "snapshots_written",
	HTTPRequests:        "http_requests",
	HTTPErrors:          "http_errors",
	HTTPThrottled:       "http_throttled",
	IndexAddDuplicate:   "index_add_duplicate",
	BulkRecords:         "bulk_records",
	BulkDecodeErrors:    "bulk_decode_errors",
	IndexCanceled:       "index_canceled",

	TreeStoreMemHits:        "treestore_mem_hits",
	TreeStoreDiskHits:       "treestore_disk_hits",
	TreeRebuilds:            "tree_rebuilds",
	TreeStorePuts:           "treestore_puts",
	TreeStoreCorrupt:        "treestore_corrupt",
	TreeStoreEvictions:      "treestore_evictions",
	TreeStorePersistDropped: "treestore_persist_dropped",
	SymmetryQueryOrbits:     "symmetry_query_orbits",
	SymmetryQueryAutGroup:   "symmetry_query_autgroup",
	SymmetryQueryQuotient:   "symmetry_query_quotient",
	SymmetryQuerySSM:        "symmetry_query_ssm",
}

// String returns the counter's snake_case metric name.
func (c Counter) String() string {
	if c >= 0 && c < numCounters {
		return counterNames[c]
	}
	return "unknown_counter"
}

// SchedulerCounter reports whether c measures scheduling effort rather
// than algorithmic effort. Scheduler counters (task spawns, steals,
// deque depth) legitimately vary with the worker count and with OS
// timing; every other counter fires a fixed number of times for a given
// (graph, options) pair no matter how the subtrees were scheduled.
// Determinism checks — "same counters at every worker count" — must
// compare all counters except these.
func SchedulerCounter(c Counter) bool {
	switch c {
	case WorkerSpawns, WorkerInline, SchedSteals, SchedDequeHighWater:
		return true
	}
	return false
}

// AllCounters returns every defined counter in declaration order, for
// callers that compare or copy recorders counter-by-counter.
func AllCounters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Phase identifies one timed span kind of the pipeline.
type Phase int

// The phase set: one per algorithm of the paper plus whole-build and
// whole-query spans.
const (
	PhaseBuild      Phase = iota // one whole DviCL Build
	PhaseRefine                  // initial equitable refinement (Alg. 1 line 1)
	PhaseTwins                   // twin detection + expansion (§6.1)
	PhaseDivideI                 // Algorithm 2
	PhaseDivideS                 // Algorithm 3
	PhaseCombineCL               // Algorithm 4 (includes the leaf search)
	PhaseCombineST               // Algorithm 5
	PhaseWorkerBusy              // time a build worker spent executing pool tasks
	PhaseSSMQuery                // one SSM count/enumerate/key query

	// Serving-layer phases (GraphIndex, internal/store, cmd/indexd).
	PhaseIndexAdd    // one GraphIndex.Add (certificate + WAL append)
	PhaseIndexLookup // one GraphIndex.Lookup (cache probe + maybe DviCL)
	PhaseWALAppend   // one WAL record write (+ fsync when -sync)
	PhaseSnapshot    // one snapshot compaction
	PhaseHTTP        // one HTTP request, end to end
	PhaseBulkIngest  // one bulk-ingest pipeline run (stream → shards)

	// internal/treestore + symmetry-query serving.
	PhaseTreeLoad      // one persisted-tree read + decode
	PhaseTreePersist   // one tree record encode + write
	PhaseSymmetryQuery // one orbits/autgroup/quotient/SSM query, end to end

	numPhases
)

var phaseNames = [numPhases]string{
	PhaseBuild:         "build",
	PhaseRefine:        "refine",
	PhaseTwins:         "twins",
	PhaseDivideI:       "divide_i",
	PhaseDivideS:       "divide_s",
	PhaseCombineCL:     "combine_cl",
	PhaseCombineST:     "combine_st",
	PhaseWorkerBusy:    "worker_busy",
	PhaseSSMQuery:      "ssm_query",
	PhaseIndexAdd:      "index_add",
	PhaseIndexLookup:   "index_lookup",
	PhaseWALAppend:     "wal_append",
	PhaseSnapshot:      "snapshot",
	PhaseHTTP:          "http_request",
	PhaseBulkIngest:    "bulk_ingest",
	PhaseTreeLoad:      "treestore_load",
	PhaseTreePersist:   "treestore_persist",
	PhaseSymmetryQuery: "symmetry_query",
}

// String returns the phase's snake_case metric name.
func (p Phase) String() string {
	if p >= 0 && p < numPhases {
		return phaseNames[p]
	}
	return "unknown_phase"
}

// timerBuckets is the number of power-of-two latency buckets: bucket i
// counts durations d with bits.Len64(ns) == i, i.e. 2^(i-1) ≤ ns < 2^i.
const timerBuckets = 64

// timer aggregates observations of one phase: count, total, min, max and
// a log2 histogram. All fields are updated atomically.
//
// minNs stores the minimum shifted by +1 so that 0 can mean "no
// observation yet" on a zero-value timer: a genuine 0ns observation is
// stored as 1 and reported back as 0. (An earlier version clamped the
// stored minimum to 1, permanently reporting a fake 1ns minimum for
// phases that legitimately observed 0ns.)
type timer struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	minNs   atomic.Int64 // min+1; 0 = unset
	maxNs   atomic.Int64
	buckets [timerBuckets]atomic.Int64
}

func (t *timer) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	t.count.Add(1)
	t.sumNs.Add(ns)
	t.casMin(ns + 1)
	for {
		cur := t.maxNs.Load()
		if cur >= ns {
			break
		}
		if t.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
	t.buckets[bits.Len64(uint64(ns))].Add(1)
}

// casMin lowers the stored (shifted) minimum to stored if it is smaller
// or the timer has no minimum yet.
func (t *timer) casMin(stored int64) {
	for {
		cur := t.minNs.Load()
		if cur != 0 && cur <= stored {
			return
		}
		if t.minNs.CompareAndSwap(cur, stored) {
			return
		}
	}
}

// min returns the unshifted minimum (only meaningful when count > 0).
func (t *timer) min() int64 {
	if m := t.minNs.Load(); m > 0 {
		return m - 1
	}
	return 0
}

// Recorder collects counters and phase timers. The zero value is ready to
// use; so is a nil pointer (every method no-ops on a nil receiver).
//
// A Recorder may forward: one built by NewForwarding records every
// observation into itself and into its base recorder. This is how a
// request-scoped Trace attributes effort without losing the global
// totals — the hot path pays one extra atomic per observation, and the
// disabled (nil-recorder) path is unchanged.
type Recorder struct {
	counters [numCounters]atomic.Int64
	timers   [numPhases]timer

	// fwd, when non-nil, receives a copy of every observation (Inc, Add,
	// phase timings, Merge). Set at construction only, never mutated, so
	// reads need no synchronization.
	fwd *Recorder
}

// New returns an empty enabled Recorder.
func New() *Recorder { return &Recorder{} }

// NewForwarding returns a Recorder that additionally copies every
// observation into base (and transitively into base's own forwarding
// target, if any). A nil base yields a plain recorder. Snapshot, Counter
// and Reset act on the forwarding recorder's local state only — that
// locality is what makes it a per-request delta counter.
func NewForwarding(base *Recorder) *Recorder { return &Recorder{fwd: base} }

// Inc adds 1 to the counter.
func (r *Recorder) Inc(c Counter) {
	for ; r != nil; r = r.fwd {
		r.counters[c].Add(1)
	}
}

// Add adds delta to the counter.
func (r *Recorder) Add(c Counter, delta int64) {
	if delta == 0 {
		return
	}
	for ; r != nil; r = r.fwd {
		r.counters[c].Add(delta)
	}
}

// Counter returns the counter's current value (0 on a nil Recorder).
func (r *Recorder) Counter(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c].Load()
}

// ObservePhase records one completed span of the phase.
func (r *Recorder) ObservePhase(p Phase, d time.Duration) {
	r.observeNs(p, int64(d))
}

// observeNs records one phase duration into r and its forwarding chain.
func (r *Recorder) observeNs(p Phase, ns int64) {
	for ; r != nil; r = r.fwd {
		r.timers[p].observe(ns)
	}
}

// Span is an in-flight phase timing started by StartPhase. The zero Span
// (and any Span from a nil Recorder) is a no-op.
type Span struct {
	r     *Recorder
	phase Phase
	start time.Time
}

// StartPhase begins timing a span of phase p. On a nil Recorder it
// returns a no-op Span without reading the clock.
func (r *Recorder) StartPhase(p Phase) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, phase: p, start: time.Now()}
}

// End finishes the span and records its duration.
func (s Span) End() {
	if s.r == nil {
		return
	}
	s.r.observeNs(s.phase, int64(time.Since(s.start)))
}

// Merge folds every counter and timer of src into r (and into r's
// forwarding chain). It is how the bulk pipeline aggregates per-worker
// recorders on completion: each worker records into a private Recorder
// (no cross-core contention on the hot path), and the pipeline merges
// them into the shared one when the worker drains. Merging a nil src, or
// merging into a nil r, is a no-op. Safe for concurrent use, though src
// should be quiescent for the merge to be a consistent cut.
func (r *Recorder) Merge(src *Recorder) {
	if src == nil {
		return
	}
	for ; r != nil; r = r.fwd {
		r.mergeLocal(src)
	}
}

// mergeLocal folds src into r's own arrays only (no forwarding).
func (r *Recorder) mergeLocal(src *Recorder) {
	for i := range src.counters {
		if v := src.counters[i].Load(); v != 0 {
			r.counters[i].Add(v)
		}
	}
	for i := range src.timers {
		st, dt := &src.timers[i], &r.timers[i]
		n := st.count.Load()
		if n == 0 {
			continue
		}
		dt.count.Add(n)
		dt.sumNs.Add(st.sumNs.Load())
		// minNs is stored shifted by +1 in both timers, so the raw value
		// transfers directly; 0 still means "unset".
		if m := st.minNs.Load(); m != 0 {
			dt.casMin(m)
		}
		if m := st.maxNs.Load(); m != 0 {
			for {
				cur := dt.maxNs.Load()
				if cur >= m {
					break
				}
				if dt.maxNs.CompareAndSwap(cur, m) {
					break
				}
			}
		}
		for j := range st.buckets {
			if c := st.buckets[j].Load(); c != 0 {
				dt.buckets[j].Add(c)
			}
		}
	}
}

// Reset zeroes every counter and timer.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.counters {
		r.counters[i].Store(0)
	}
	for i := range r.timers {
		t := &r.timers[i]
		t.count.Store(0)
		t.sumNs.Store(0)
		t.minNs.Store(0)
		t.maxNs.Store(0)
		for j := range t.buckets {
			t.buckets[j].Store(0)
		}
	}
}

// Bucket is one non-empty log2 latency bucket of a phase histogram:
// Count observations fell in [UpperNs/2, UpperNs).
type Bucket struct {
	UpperNs int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// PhaseStats is the snapshot of one phase timer.
type PhaseStats struct {
	Count   int64    `json:"count"`
	TotalNs int64    `json:"total_ns"`
	MinNs   int64    `json:"min_ns"`
	MaxNs   int64    `json:"max_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a Recorder, JSON-serializable and
// directly comparable between runs (the "diff counters, not vibes" unit).
// Counters holds every counter by name, including zeros, so two snapshots
// always have identical key sets; Phases holds only phases that fired.
type Snapshot struct {
	Counters map[string]int64      `json:"counters"`
	Phases   map[string]PhaseStats `json:"phases"`
}

// PhaseTotals returns each phase's total recorded time in nanoseconds,
// keyed by phase name. Phases that never fired are absent, so two
// snapshots of differently-shaped runs have different key sets — useful
// for "where did the build spend its time" summaries (the perfbench
// suite records these next to its wall times).
func (s Snapshot) PhaseTotals() map[string]int64 {
	out := make(map[string]int64, len(s.Phases))
	for name, ps := range s.Phases {
		out[name] = ps.TotalNs
	}
	return out
}

// Snapshot copies the current state. Safe to call while other goroutines
// record (each field is read atomically; the snapshot is not a single
// consistent cut, which is fine for monitoring).
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]int64, numCounters),
		Phases:   make(map[string]PhaseStats),
	}
	if r == nil {
		for c := Counter(0); c < numCounters; c++ {
			s.Counters[c.String()] = 0
		}
		return s
	}
	for c := Counter(0); c < numCounters; c++ {
		s.Counters[c.String()] = r.counters[c].Load()
	}
	for p := Phase(0); p < numPhases; p++ {
		t := &r.timers[p]
		n := t.count.Load()
		if n == 0 {
			continue
		}
		ps := PhaseStats{
			Count:   n,
			TotalNs: t.sumNs.Load(),
			MinNs:   t.min(),
			MaxNs:   t.maxNs.Load(),
		}
		for i := range t.buckets {
			if c := t.buckets[i].Load(); c > 0 {
				upper := int64(1) << i
				if i == 0 {
					upper = 1
				}
				ps.Buckets = append(ps.Buckets, Bucket{UpperNs: upper, Count: c})
			}
		}
		s.Phases[p.String()] = ps
	}
	return s
}
