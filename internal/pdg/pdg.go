// Package pdg builds program dependence graphs for a small three-address
// intermediate language — the substrate of the paper's software-
// plagiarism application (introduction, citing GPlag [21] and the PDG
// literature [10, 19]): plagiarized code differs by variable renaming and
// statement reordering, which changes nothing about the dependence
// graph's isomorphism class. Colored canonical certificates therefore
// detect it exactly.
package pdg

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"

	"dvicl/internal/coloring"
	"dvicl/internal/core"
	"dvicl/internal/graph"
)

// Opcode classifies an instruction — the vertex "color" of the PDG.
type Opcode int

// The instruction set of the mini-IR.
const (
	OpConst Opcode = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpCmp
	OpPhi
	OpCall
	OpRet
	OpInput // a formal parameter (a source vertex, not an instruction)
	numOpcodes
)

var opcodeNames = map[string]Opcode{
	"const": OpConst,
	"add":   OpAdd,
	"sub":   OpSub,
	"mul":   OpMul,
	"div":   OpDiv,
	"cmp":   OpCmp,
	"phi":   OpPhi,
	"call":  OpCall,
	"ret":   OpRet,
}

// String names the opcode.
func (o Opcode) String() string {
	for name, op := range opcodeNames {
		if op == o {
			return name
		}
	}
	if o == OpInput {
		return "input"
	}
	return "unknown"
}

// Instr is one three-address instruction: Dst = Op(Args...).
type Instr struct {
	Op   Opcode
	Dst  string
	Args []string
}

// Program is a straight-line function body. Identifiers that are used
// before being defined are treated as inputs (formal parameters).
type Program []Instr

// Parse reads a program in the mini-IR syntax, one instruction per line:
//
//	x = input          (declared input)
//	t1 = add x y       (t1 := x + y)
//	t2 = const 42
//	r = call f t1 t2
//	ret r
//
// '#' starts a comment. Blank lines are skipped.
func Parse(src string) (Program, error) {
	var prog Program
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "ret" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("pdg: line %d: ret takes one operand", ln+1)
			}
			prog = append(prog, Instr{Op: OpRet, Args: []string{fields[1]}})
			continue
		}
		if len(fields) < 3 || fields[1] != "=" {
			return nil, fmt.Errorf("pdg: line %d: expected 'dst = op args…'", ln+1)
		}
		dst := fields[0]
		if fields[2] == "input" {
			prog = append(prog, Instr{Op: OpInput, Dst: dst})
			continue
		}
		op, ok := opcodeNames[fields[2]]
		if !ok {
			return nil, fmt.Errorf("pdg: line %d: unknown opcode %q", ln+1, fields[2])
		}
		prog = append(prog, Instr{Op: op, Dst: dst, Args: fields[3:]})
	}
	if len(prog) == 0 {
		return nil, fmt.Errorf("pdg: empty program")
	}
	return prog, nil
}

// Graph holds a program dependence graph: the undirected data-dependence
// structure plus the opcode coloring the paper's SSM application relies
// on.
type Graph struct {
	G      *graph.Graph
	Colors []int // opcode class per vertex
	// Vertex i describes instruction i of the (expanded) program:
	// undeclared identifiers get synthetic OpInput vertices appended.
	Instrs Program
}

// Build constructs the PDG: one vertex per instruction (plus synthetic
// input vertices for undeclared identifiers), and an edge from each
// definition to each use. Constant operands (unparseable as identifiers
// that were never defined) also become input-class vertices, so programs
// differing only in literal values are considered equivalent — exactly
// the abstraction GPlag uses.
func Build(prog Program) *Graph {
	instrs := append(Program(nil), prog...)
	defOf := map[string]int{}
	for i, in := range instrs {
		if in.Dst != "" {
			defOf[in.Dst] = i
		}
	}
	// Synthesize inputs for identifiers used but never defined.
	for _, in := range prog {
		for _, a := range in.Args {
			if _, ok := defOf[a]; !ok {
				defOf[a] = len(instrs)
				instrs = append(instrs, Instr{Op: OpInput, Dst: a})
			}
		}
	}
	b := graph.NewBuilder(len(instrs))
	for i, in := range instrs {
		for _, a := range in.Args {
			b.AddEdge(defOf[a], i)
		}
	}
	colors := make([]int, len(instrs))
	for i, in := range instrs {
		colors[i] = int(in.Op)
	}
	return &Graph{G: b.Build(), Colors: colors, Instrs: instrs}
}

// ColorCells groups the PDG's vertices into ordered cells by opcode, the
// coloring handed to the canonical labeler. Opcodes absent from the
// program contribute no cell. The parallel opcodes slice identifies each
// cell's opcode — cell positions alone are not enough to compare two
// programs, because different opcode sets can produce the same cell-size
// profile.
func (p *Graph) ColorCells() (cells [][]int, opcodes []Opcode) {
	byOp := make([][]int, numOpcodes)
	for v, c := range p.Colors {
		byOp[c] = append(byOp[c], v)
	}
	for op, cell := range byOp {
		if len(cell) > 0 {
			cells = append(cells, cell)
			opcodes = append(opcodes, Opcode(op))
		}
	}
	return cells, opcodes
}

// Certificate computes a canonical certificate of the program's PDG: two
// programs get equal certificates iff their dependence graphs are
// isomorphic *respecting opcodes*. The certificate binds the per-cell
// opcode profile to DviCL's colored canonical form; without the profile,
// an add-rooted and a mul-rooted program with the same shape would
// collide (positional cell semantics).
func Certificate(p *Graph) ([]byte, error) {
	cells, opcodes := p.ColorCells()
	pi, err := coloring.FromCells(p.G.N(), cells)
	if err != nil {
		return nil, err
	}
	tree := core.Build(p.G, pi, core.Options{})
	h := sha256.New()
	var word [8]byte
	for i, op := range opcodes {
		binary.BigEndian.PutUint64(word[:], uint64(op))
		h.Write(word[:])
		binary.BigEndian.PutUint64(word[:], uint64(len(cells[i])))
		h.Write(word[:])
	}
	h.Write(tree.CanonicalCert())
	return h.Sum(nil), nil
}
