package pdg

import (
	"bytes"
	"testing"
)

// cert computes the opcode-aware canonical certificate of a program.
func cert(t *testing.T, src string) []byte {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Certificate(Build(prog))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

const original = `
a = input
b = input
t1 = mul a a
t2 = mul b b
t3 = add t1 t2
ret t3
`

// renamed is the original with every identifier renamed and the first two
// multiplications swapped — classic plagiarism.
const renamed = `
x = input
y = input
p = mul y y
q = mul x x
s = add q p
ret s
`

// different computes a*a - b*b: one opcode differs.
const different = `
a = input
b = input
t1 = mul a a
t2 = mul b b
t3 = sub t1 t2
ret t3
`

func TestParse(t *testing.T) {
	prog, err := Parse(original)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 6 {
		t.Fatalf("parsed %d instructions", len(prog))
	}
	if prog[2].Op != OpMul || prog[2].Dst != "t1" {
		t.Fatalf("instr 2 = %+v", prog[2])
	}
	if prog[5].Op != OpRet {
		t.Fatalf("instr 5 = %+v", prog[5])
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "x y z", "a = frobnicate b", "ret"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestBuildSynthesizesInputs(t *testing.T) {
	prog, err := Parse("t = add a b\nret t")
	if err != nil {
		t.Fatal(err)
	}
	p := Build(prog)
	// 2 instructions + 2 synthetic inputs.
	if p.G.N() != 4 {
		t.Fatalf("n = %d, want 4", p.G.N())
	}
	inputs := 0
	for _, c := range p.Colors {
		if Opcode(c) == OpInput {
			inputs++
		}
	}
	if inputs != 2 {
		t.Fatalf("inputs = %d, want 2", inputs)
	}
}

func TestPlagiarismDetected(t *testing.T) {
	if !bytes.Equal(cert(t, original), cert(t, renamed)) {
		t.Fatal("renamed/reordered program not recognized as equivalent")
	}
}

func TestDifferentProgramSeparated(t *testing.T) {
	if bytes.Equal(cert(t, original), cert(t, different)) {
		t.Fatal("semantically different program judged equivalent")
	}
}

func TestColorMattersNotJustShape(t *testing.T) {
	// Same dependence shape, different opcode: add vs mul at the root.
	a := "x = input\ny = input\nt = add x y\nret t"
	b := "x = input\ny = input\nt = mul x y\nret t"
	if bytes.Equal(cert(t, a), cert(t, b)) {
		t.Fatal("opcode coloring ignored")
	}
}

func TestOpcodeString(t *testing.T) {
	if OpAdd.String() != "add" || OpInput.String() != "input" {
		t.Fatalf("opcode names wrong: %v %v", OpAdd, OpInput)
	}
}
