package pdg

import "testing"

// FuzzParse: the IR parser must never panic, and parsed programs must
// build a PDG without panicking.
func FuzzParse(f *testing.F) {
	f.Add("a = input\nret a")
	f.Add("t = add x y\nret t")
	f.Add("ret")
	f.Add("# only comments")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		p := Build(prog)
		if p.G.N() != len(p.Instrs) {
			t.Fatalf("vertex count %d != instruction count %d", p.G.N(), len(p.Instrs))
		}
		if _, err := Certificate(p); err != nil {
			t.Fatalf("certificate failed on valid program: %v", err)
		}
	})
}
