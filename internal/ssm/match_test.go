package ssm

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"dvicl/internal/graph"
)

func triangleQuery() *graph.Graph {
	return graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
}

// bruteInduced enumerates induced embeddings of q in g by trying every
// injective vertex map (small graphs only).
func bruteInduced(data, q *graph.Graph) map[string]bool {
	out := map[string]bool{}
	n, k := data.N(), q.N()
	idx := make([]int, k)
	used := make([]bool, n)
	var rec func(d int)
	rec = func(d int) {
		if d == k {
			m := append([]int(nil), idx...)
			ok := true
			for i := 0; i < k && ok; i++ {
				for j := i + 1; j < k && ok; j++ {
					if q.HasEdge(i, j) != data.HasEdge(m[i], m[j]) {
						ok = false
					}
				}
			}
			if ok {
				out[fmt.Sprint(m)] = true
			}
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			idx[d] = v
			rec(d + 1)
			used[v] = false
		}
	}
	rec(0)
	return out
}

func TestMatcherAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(6)
		g := randGraph(r, n, 2)
		for _, q := range []*graph.Graph{
			triangleQuery(),
			graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}}), // path P3
			graph.FromEdges(2, [][2]int{{0, 1}}),         // edge
		} {
			want := bruteInduced(g, q)
			m := NewMatcher(g, nil)
			got := m.FindInduced(q, nil, 0)
			if len(got) != len(want) {
				t.Fatalf("trial %d: matcher found %d, brute force %d (q n=%d, edges=%v)",
					trial, len(got), len(want), q.N(), g.Edges())
			}
			for _, emb := range got {
				if !want[fmt.Sprint(emb)] {
					t.Fatalf("matcher produced non-embedding %v", emb)
				}
			}
		}
	}
}

func TestMatcherColorConstraint(t *testing.T) {
	// Path 0-1-2 where colors force 1 to map to the middle.
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	colors := []int{0, 1, 0}
	q := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	qColors := []int{0, 1, 0}
	m := NewMatcher(g, colors)
	got := m.FindInduced(q, qColors, 0)
	if len(got) != 2 { // identity and the mirror
		t.Fatalf("found %d color-constrained embeddings, want 2: %v", len(got), got)
	}
	// Incompatible colors: none.
	bad := m.FindInduced(q, []int{1, 0, 1}, 0)
	if len(bad) != 0 {
		t.Fatalf("incompatible colors matched: %v", bad)
	}
}

func TestMatcherLimit(t *testing.T) {
	// K5 has 5!/(3!·2!)·3! = 60 ordered triangle embeddings.
	var edges [][2]int
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	g := graph.FromEdges(5, edges)
	m := NewMatcher(g, nil)
	if got := len(m.FindInduced(triangleQuery(), nil, 7)); got != 7 {
		t.Fatalf("limit ignored: got %d", got)
	}
	if got := len(m.FindInduced(triangleQuery(), nil, 0)); got != 60 {
		t.Fatalf("K5 ordered triangles = %d, want 60", got)
	}
}

func TestCanonicalSet(t *testing.T) {
	got := CanonicalSet([]int{5, 1, 3})
	if !sort.IntsAreSorted(got) || len(got) != 3 {
		t.Fatalf("CanonicalSet = %v", got)
	}
}
