package ssm

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"sort"

	"dvicl/internal/canon"
	"dvicl/internal/coloring"
	"dvicl/internal/core"
	"dvicl/internal/engine"
	"dvicl/internal/obs"
	"dvicl/internal/perm"
)

// Index answers symmetric-subgraph-matching queries from an AutoTree,
// implementing SSM-AT (Algorithm 6 of the paper). A query is a vertex set
// S ⊆ V; the answers are the images Sᵞ over all γ ∈ Aut(G, π).
//
// The recursion mirrors the tree: within a node, a pattern splits among
// the children; equal-certificate siblings are symmetric, so each piece
// may be re-targeted to any sibling of the same certificate (lines 8–9 of
// Algorithm 6), and the per-child answers combine as a cross product
// (lines 11–12). Non-singleton leaves fall back to the leaf automorphism
// group (line 3's SM call in the paper).
type Index struct {
	tree *core.Tree
	info map[*core.Node]*nodeInfo
	// useSM switches the non-singleton-leaf base case to the paper's
	// SM-based matching (see leafsm.go).
	useSM bool
	// rec, when non-nil, receives query counts, per-query wall time and
	// the leaf candidate/pruned counters.
	rec *obs.Recorder
	// ws backs per-query piece induction (arena CSR views) and the leaf
	// pattern-certificate refinements. An Index serves one query at a
	// time (the nodeInfo cache is unsynchronized), so one Index-owned
	// workspace suffices; it is created on first leaf use and grown to
	// the largest leaf seen.
	ws *engine.Workspace
}

// workspace returns the Index workspace grown for an n-vertex leaf.
func (ix *Index) workspace(n int) *engine.Workspace {
	if ix.ws == nil {
		ix.ws = new(engine.Workspace)
	}
	ix.ws.Grow(n)
	return ix.ws
}

// SetRecorder attaches an observability recorder: every subsequent query
// reports obs.SSMQueries, an obs.PhaseSSMQuery span, and the
// obs.SSMLeafCandidates / obs.SSMLeafPruned counters. Pass nil to detach.
func (ix *Index) SetRecorder(r *obs.Recorder) { ix.rec = r }

// nodeInfo caches per-node lookup structures: queries over graphs with
// hundreds of thousands of root children must not rescan the child list.
type nodeInfo struct {
	childOf map[int]int // vertex -> child index
	groups  [][2]int    // equal-certificate runs, [start, end)
	groupOf []int       // child index -> group index
}

// NewIndex builds an SSM index over the tree.
func NewIndex(t *core.Tree) *Index {
	return &Index{tree: t, info: map[*core.Node]*nodeInfo{}}
}

func (ix *Index) nodeInfoOf(nd *core.Node) *nodeInfo {
	if ni, ok := ix.info[nd]; ok {
		return ni
	}
	ni := &nodeInfo{childOf: make(map[int]int), groupOf: make([]int, len(nd.Children))}
	for i, c := range nd.Children {
		for _, v := range c.Verts {
			ni.childOf[v] = i
		}
	}
	start := 0
	for i := 1; i <= len(nd.Children); i++ {
		if i == len(nd.Children) || !bytesEqual(nd.Children[i].Cert, nd.Children[start].Cert) {
			gi := len(ni.groups)
			ni.groups = append(ni.groups, [2]int{start, i})
			for j := start; j < i; j++ {
				ni.groupOf[j] = gi
			}
			start = i
		}
	}
	ix.info[nd] = ni
	return ni
}

// piecesOf partitions a pattern among nd's children: child index -> part.
func (ix *Index) piecesOf(nd *core.Node, pattern []int) (map[int][]int, error) {
	ni := ix.nodeInfoOf(nd)
	pieces := map[int][]int{}
	for _, v := range pattern {
		i, ok := ni.childOf[v]
		if !ok {
			return nil, engine.Internalf("ssm.piecesOf", "pattern vertex %d outside node", v)
		}
		pieces[i] = append(pieces[i], v)
	}
	return pieces, nil
}

// patternGroups returns the indices of certificate groups touched by the
// pieces, ascending.
func (ix *Index) patternGroups(nd *core.Node, pieces map[int][]int) []int {
	ni := ix.nodeInfoOf(nd)
	seen := map[int]bool{}
	var out []int
	for ci := range pieces {
		gi := ni.groupOf[ci]
		if !seen[gi] {
			seen[gi] = true
			out = append(out, gi)
		}
	}
	sort.Ints(out)
	return out
}

// Tree returns the underlying AutoTree.
func (ix *Index) Tree() *core.Tree { return ix.tree }

// CountImages returns |{Sᵞ : γ ∈ Aut(G, π)}| — the number of symmetric
// counterparts of S, including S itself. This is the quantity reported in
// Table 6 of the paper (candidate seed sets with the same influence).
func (ix *Index) CountImages(s []int) *big.Int {
	out, err := ix.CountImagesCtx(context.Background(), s)
	if err != nil {
		panic("ssm.CountImages: " + err.Error())
	}
	return out
}

// CountImagesCtx is CountImages under a context: the count recursion
// polls ctx at every tree node and returns engine.ErrCanceled when it
// fires mid-query.
func (ix *Index) CountImagesCtx(ctx context.Context, s []int) (*big.Int, error) {
	ix.rec.Inc(obs.SSMQueries)
	span := ix.rec.StartPhase(obs.PhaseSSMQuery)
	defer span.End()
	ts := obs.TraceFrom(ctx).StartSpan(obs.SpanFrom(ctx), "ssm_count")
	ts.SetAttr("pattern", int64(len(s)))
	defer ts.End()
	pattern := sortedCopy(s)
	return ix.countNode(engine.NewCtl(ctx, engine.Budget{}), ix.tree.Root, pattern)
}

// Enumerate returns the images of S under Aut(G, π), each sorted. limit
// bounds the number of images (0 = all; beware, counts can be
// astronomically large — use CountImages first).
func (ix *Index) Enumerate(s []int, limit int) [][]int {
	out, err := ix.EnumerateCtx(context.Background(), s, limit)
	if err != nil {
		panic("ssm.Enumerate: " + err.Error())
	}
	return out
}

// EnumerateCtx is Enumerate under a context: the enumeration polls ctx
// throughout (tree nodes, leaf-orbit BFS steps, assignment backtracking)
// and returns engine.ErrCanceled when it fires, so an astronomically
// large orbit cannot pin a serving goroutine.
func (ix *Index) EnumerateCtx(ctx context.Context, s []int, limit int) ([][]int, error) {
	ix.rec.Inc(obs.SSMQueries)
	span := ix.rec.StartPhase(obs.PhaseSSMQuery)
	defer span.End()
	ts := obs.TraceFrom(ctx).StartSpan(obs.SpanFrom(ctx), "ssm_enumerate")
	ts.SetAttr("pattern", int64(len(s)))
	defer ts.End()
	pattern := sortedCopy(s)
	return ix.enumNode(engine.NewCtl(ctx, engine.Budget{}), ix.tree.Root, pattern, limit)
}

// PatternKey returns a canonical key for the orbit of the vertex set S
// under Aut(G, π): two sets receive the same key iff they are symmetric.
// Grouping subgraphs by key is the subgraph clustering of Table 7.
func (ix *Index) PatternKey(s []int) string {
	out, err := ix.PatternKeyCtx(context.Background(), s)
	if err != nil {
		panic("ssm.PatternKey: " + err.Error())
	}
	return out
}

// PatternKeyCtx is PatternKey under a context; the leaf base case runs a
// canonical-labeling search, so keys of patterns touching hard leaves
// are cancelable too.
func (ix *Index) PatternKeyCtx(ctx context.Context, s []int) (string, error) {
	ix.rec.Inc(obs.SSMQueries)
	span := ix.rec.StartPhase(obs.PhaseSSMQuery)
	defer span.End()
	ts := obs.TraceFrom(ctx).StartSpan(obs.SpanFrom(ctx), "ssm_key")
	ts.SetAttr("pattern", int64(len(s)))
	defer ts.End()
	pattern := sortedCopy(s)
	key, err := ix.keyNode(engine.NewCtl(ctx, engine.Budget{}), ix.tree.Root, pattern)
	if err != nil {
		return "", err
	}
	return string(key), nil
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// transport maps a pattern from sibling src into sibling dst via the
// canonical matching γij (position-by-position in canonical order).
func transport(src, dst *core.Node, pattern []int) []int {
	srcOrder := src.CanonicalOrder()
	dstOrder := dst.CanonicalOrder()
	pos := make(map[int]int, len(srcOrder))
	for i, v := range srcOrder {
		pos[v] = i
	}
	out := make([]int, len(pattern))
	for i, v := range pattern {
		out[i] = dstOrder[pos[v]]
	}
	sort.Ints(out)
	return out
}

// ---- counting ----

func (ix *Index) countNode(ctl *engine.Ctl, nd *core.Node, pattern []int) (*big.Int, error) {
	if err := ctl.Poll(); err != nil {
		return nil, err
	}
	if len(pattern) == 0 || nd.Kind == core.KindSingleton {
		return big.NewInt(1), nil
	}
	if nd.Kind == core.KindLeaf {
		orbit, err := ix.leafOrbit(ctl, nd, pattern, 0)
		if err != nil {
			return nil, err
		}
		return big.NewInt(int64(len(orbit))), nil
	}
	ni := ix.nodeInfoOf(nd)
	pieces, err := ix.piecesOf(nd, pattern)
	if err != nil {
		return nil, err
	}
	total := big.NewInt(1)
	for _, gi := range ix.patternGroups(nd, pieces) {
		gr := ni.groups[gi]
		members := nd.Children[gr[0]:gr[1]]
		// Group nonempty pieces into equivalence classes by orbit key
		// (transported into the group's first member as reference).
		type class struct {
			mult  int
			count *big.Int // images of one piece inside one member
		}
		classes := map[string]*class{}
		for ci, p := range pieces {
			if ci < gr[0] || ci >= gr[1] {
				continue
			}
			ref := transport(nd.Children[ci], members[0], p)
			key, err := ix.keyNode(ctl, members[0], ref)
			if err != nil {
				return nil, err
			}
			cl, ok := classes[string(key)]
			if !ok {
				count, err := ix.countNode(ctl, members[0], ref)
				if err != nil {
					return nil, err
				}
				cl = &class{count: count}
				classes[string(key)] = cl
			}
			cl.mult++
		}
		// Distinct images in this group: choose, class by class, which
		// members host the class's pieces (C(avail, μ)) and an image per
		// hosting member (countᵘ).
		avail := int64(len(members))
		for _, cl := range classes {
			total.Mul(total, new(big.Int).Binomial(avail, int64(cl.mult)))
			for i := 0; i < cl.mult; i++ {
				total.Mul(total, cl.count)
			}
			avail -= int64(cl.mult)
		}
	}
	return total, nil
}

// ---- enumeration ----

func (ix *Index) enumNode(ctl *engine.Ctl, nd *core.Node, pattern []int, limit int) ([][]int, error) {
	if err := ctl.Poll(); err != nil {
		return nil, err
	}
	if len(pattern) == 0 {
		return [][]int{{}}, nil
	}
	if nd.Kind == core.KindSingleton {
		return [][]int{{nd.Verts[0]}}, nil
	}
	if nd.Kind == core.KindLeaf {
		if ix.useSM {
			return ix.leafOrbitSM(ctl, nd, pattern, limit)
		}
		return ix.leafOrbit(ctl, nd, pattern, limit)
	}
	ni := ix.nodeInfoOf(nd)
	pieces, err := ix.piecesOf(nd, pattern)
	if err != nil {
		return nil, err
	}
	results := [][]int{{}}
	for _, gi := range ix.patternGroups(nd, pieces) {
		gr := ni.groups[gi]
		members := nd.Children[gr[0]:gr[1]]
		parts := make([][]int, len(members))
		for ci, p := range pieces {
			if ci >= gr[0] && ci < gr[1] {
				parts[ci-gr[0]] = p
			}
		}
		groupImages, err := ix.enumGroup(ctl, members, parts, limit)
		if err != nil {
			return nil, err
		}
		if len(groupImages) == 0 {
			continue
		}
		var combined [][]int
		for _, base := range results {
			for _, gi := range groupImages {
				merged := append(append([]int(nil), base...), gi...)
				combined = append(combined, merged)
				if limit > 0 && len(combined) >= limit {
					break
				}
			}
			if limit > 0 && len(combined) >= limit {
				break
			}
		}
		results = combined
	}
	for _, r := range results {
		sort.Ints(r)
	}
	return results, nil
}

// enumGroup enumerates the images of the nonempty pieces within one
// equal-certificate sibling group.
func (ix *Index) enumGroup(ctl *engine.Ctl, members []*core.Node, parts [][]int, limit int) ([][]int, error) {
	// Equivalence classes of nonempty pieces.
	type class struct {
		rep  []int // representative, transported into members[0]
		mult int
	}
	var classes []*class
	byKey := map[string]*class{}
	any := false
	for i, p := range parts {
		if len(p) == 0 {
			continue
		}
		any = true
		ref := transport(members[i], members[0], p)
		key, err := ix.keyNode(ctl, members[0], ref)
		if err != nil {
			return nil, err
		}
		cl, ok := byKey[string(key)]
		if !ok {
			cl = &class{rep: ref}
			byKey[string(key)] = cl
			classes = append(classes, cl)
		}
		cl.mult++
	}
	if !any {
		return [][]int{{}}, nil
	}
	// Backtrack over assignments: for each class choose mult distinct
	// member indices, then an image of the class representative within
	// each chosen member. A controller error latches in stopErr and
	// unwinds the whole backtrack.
	var out [][]int
	var stopErr error
	used := make([]bool, len(members))
	var assign func(ci int, acc [][]int)
	assign = func(ci int, acc [][]int) {
		if stopErr != nil || (limit > 0 && len(out) >= limit) {
			return
		}
		if ci == len(classes) {
			var union []int
			for _, part := range acc {
				union = append(union, part...)
			}
			out = append(out, union)
			return
		}
		cl := classes[ci]
		// Choose cl.mult member indices (combinations, ascending).
		idxs := make([]int, 0, cl.mult)
		var choose func(startIdx int)
		choose = func(startIdx int) {
			if stopErr != nil || (limit > 0 && len(out) >= limit) {
				return
			}
			if len(idxs) == cl.mult {
				// For each chosen member, every image of the rep.
				var fill func(k int, acc2 [][]int)
				fill = func(k int, acc2 [][]int) {
					if stopErr != nil || (limit > 0 && len(out) >= limit) {
						return
					}
					if k == len(idxs) {
						assign(ci+1, acc2)
						return
					}
					member := members[idxs[k]]
					rep := transport(members[0], member, cl.rep)
					images, err := ix.enumNode(ctl, member, rep, limit)
					if err != nil {
						stopErr = err
						return
					}
					for _, img := range images {
						fill(k+1, append(acc2, img))
					}
				}
				fill(0, acc)
				return
			}
			for i := startIdx; i < len(members); i++ {
				if used[i] {
					continue
				}
				used[i] = true
				idxs = append(idxs, i)
				choose(i + 1)
				idxs = idxs[:len(idxs)-1]
				used[i] = false
			}
		}
		choose(0)
	}
	assign(0, nil)
	if stopErr != nil {
		return nil, stopErr
	}
	return out, nil
}

// ---- leaf orbits ----

// leafOrbit enumerates the orbit of a pattern (original vertex ids) under
// the automorphism group of a non-singleton leaf, by BFS over vertex sets.
// Orbits can be astronomically large, so every BFS step polls ctl.
func (ix *Index) leafOrbit(ctl *engine.Ctl, nd *core.Node, pattern []int, limit int) ([][]int, error) {
	gens := nd.LeafGenerators()
	// Map to local indices.
	local := make([]int, len(pattern))
	for i, v := range pattern {
		j := sort.SearchInts(nd.Verts, v)
		local[i] = j
	}
	sort.Ints(local)
	start := fmt.Sprint(local)
	seen := map[string][]int{start: local}
	queue := [][]int{local}
	for len(queue) > 0 {
		if err := ctl.Poll(); err != nil {
			return nil, err
		}
		if limit > 0 && len(seen) >= limit {
			break
		}
		cur := queue[0]
		queue = queue[1:]
		for _, g := range gens {
			img := applySet(g, cur)
			k := fmt.Sprint(img)
			if _, ok := seen[k]; !ok {
				seen[k] = img
				queue = append(queue, img)
			}
		}
	}
	ix.rec.Add(obs.SSMLeafCandidates, int64(len(seen)))
	out := make([][]int, 0, len(seen))
	for _, loc := range seen {
		glob := make([]int, len(loc))
		for i, l := range loc {
			glob[i] = nd.Verts[l]
		}
		out = append(out, glob)
	}
	sort.Slice(out, func(i, j int) bool { return lessIntSlice(out[i], out[j]) })
	return out, nil
}

func applySet(g perm.Perm, set []int) []int {
	out := make([]int, len(set))
	for i, v := range set {
		out[i] = g[v]
	}
	sort.Ints(out)
	return out
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// ---- orbit keys ----

// keyNode computes a canonical key of the orbit of pattern within nd: two
// patterns of nd get equal keys iff some automorphism of (g_nd, πg) maps
// one to the other.
func (ix *Index) keyNode(ctl *engine.Ctl, nd *core.Node, pattern []int) ([]byte, error) {
	if err := ctl.Poll(); err != nil {
		return nil, err
	}
	h := sha256.New()
	var word [8]byte
	put := func(x int) {
		binary.BigEndian.PutUint64(word[:], uint64(x))
		h.Write(word[:])
	}
	if len(pattern) == 0 {
		h.Write([]byte{'e'})
		return h.Sum(nil), nil
	}
	switch nd.Kind {
	case core.KindSingleton:
		h.Write([]byte{'p'})
		return h.Sum(nil), nil
	case core.KindLeaf:
		h.Write([]byte{'l'})
		cert, err := ix.leafPatternCert(ctl, nd, pattern)
		if err != nil {
			return nil, err
		}
		h.Write(cert)
		return h.Sum(nil), nil
	default:
		h.Write([]byte{'i'})
		ni := ix.nodeInfoOf(nd)
		pieces, err := ix.piecesOf(nd, pattern)
		if err != nil {
			return nil, err
		}
		for _, gi := range ix.patternGroups(nd, pieces) {
			gr := ni.groups[gi]
			members := nd.Children[gr[0]:gr[1]]
			var keys []string
			for ci, p := range pieces {
				if ci < gr[0] || ci >= gr[1] {
					continue
				}
				ref := transport(nd.Children[ci], members[0], p)
				key, err := ix.keyNode(ctl, members[0], ref)
				if err != nil {
					return nil, err
				}
				keys = append(keys, string(key))
			}
			sort.Strings(keys)
			put(gi)
			put(len(keys))
			for _, k := range keys {
				h.Write([]byte(k))
			}
		}
		return h.Sum(nil), nil
	}
}

// leafPatternCert canonically labels the leaf graph with its coloring
// refined by pattern membership: two patterns are in the same leaf orbit
// iff the refined colored graphs are isomorphic.
func (ix *Index) leafPatternCert(ctl *engine.Ctl, nd *core.Node, pattern []int) ([]byte, error) {
	inPattern := map[int]bool{}
	for _, v := range pattern {
		inPattern[v] = true
	}
	colors := ix.tree.Colors()
	// Cells ordered by (color, membership).
	type cellKey struct {
		color int
		in    bool
	}
	cells := map[cellKey][]int{}
	var keys []cellKey
	for i, v := range nd.Verts {
		k := cellKey{colors[v], inPattern[v]}
		if _, ok := cells[k]; !ok {
			keys = append(keys, k)
		}
		cells[k] = append(cells[k], i)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].color != keys[j].color {
			return keys[i].color < keys[j].color
		}
		return !keys[i].in && keys[j].in
	})
	ordered := make([][]int, 0, len(keys))
	sizes := make([]int, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, cells[k])
		sizes = append(sizes, len(cells[k]))
	}
	pi, err := coloring.FromCells(len(nd.Verts), ordered)
	if err != nil {
		return nil, engine.Internalf("ssm.leafPatternCert", "bad leaf pattern cells: %v", err)
	}
	res, err := canon.CanonicalCtl(ctl, ix.workspace(len(nd.Verts)), nd.LeafGraph(), pi, canon.Options{})
	if err != nil {
		return nil, err
	}
	// Include the (color, in) profile so equal adjacency with different
	// membership profiles cannot collide.
	h := sha256.New()
	var word [8]byte
	for i, k := range keys {
		binary.BigEndian.PutUint64(word[:], uint64(k.color))
		h.Write(word[:])
		if k.in {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
		binary.BigEndian.PutUint64(word[:], uint64(sizes[i]))
		h.Write(word[:])
	}
	h.Write(res.Cert)
	return h.Sum(nil), nil
}

// WitnessAutomorphism returns an automorphism γ of G with S1^γ = S2, or
// false if the two sets are not symmetric. It searches the orbit of S1 by
// BFS over the tree generators, reconstructing the composition along the
// way; the work is bounded by the orbit size, so check PatternKey
// equality (cheap) first when the orbit may be astronomically large, and
// bound the search with maxOrbit (0 = unlimited).
func (ix *Index) WitnessAutomorphism(s1, s2 []int, maxOrbit int) (perm.Perm, bool) {
	p, ok, err := ix.WitnessAutomorphismCtx(context.Background(), s1, s2, maxOrbit)
	if err != nil {
		panic("ssm.WitnessAutomorphism: " + err.Error())
	}
	return p, ok
}

// WitnessAutomorphismCtx is WitnessAutomorphism under a context: the
// orbit BFS polls ctx at every step, so an unbounded (maxOrbit = 0)
// witness search over a huge orbit can still be stopped by the caller.
func (ix *Index) WitnessAutomorphismCtx(ctx context.Context, s1, s2 []int, maxOrbit int) (perm.Perm, bool, error) {
	ts := obs.TraceFrom(ctx).StartSpan(obs.SpanFrom(ctx), "ssm_witness")
	ts.SetAttr("pattern", int64(len(s1)))
	defer ts.End()
	if ts != nil {
		ctx = obs.WithSpan(ctx, ts) // nest the PatternKeyCtx spans below
	}
	ctl := engine.NewCtl(ctx, engine.Budget{})
	a := sortedCopy(s1)
	b := sortedCopy(s2)
	if len(a) != len(b) {
		return nil, false, nil
	}
	ka, err := ix.PatternKeyCtx(ctx, a)
	if err != nil {
		return nil, false, err
	}
	kb, err := ix.PatternKeyCtx(ctx, b)
	if err != nil {
		return nil, false, err
	}
	if ka != kb {
		return nil, false, nil
	}
	target := fmt.Sprint(b)
	n := ix.tree.Graph().N()
	gens := ix.tree.Generators()
	if fmt.Sprint(a) == target {
		return perm.Identity(n), true, nil
	}
	type entry struct {
		set []int
		via perm.Perm // maps a -> set
	}
	start := entry{set: a, via: perm.Identity(n)}
	seen := map[string]bool{fmt.Sprint(a): true}
	queue := []entry{start}
	for len(queue) > 0 {
		if err := ctl.Poll(); err != nil {
			return nil, false, err
		}
		cur := queue[0]
		queue = queue[1:]
		for _, g := range gens {
			img := applySet(g, cur.set)
			k := fmt.Sprint(img)
			if seen[k] {
				continue
			}
			seen[k] = true
			via := cur.via.Compose(g)
			if k == target {
				return via, true, nil
			}
			if maxOrbit > 0 && len(seen) >= maxOrbit {
				return nil, false, nil
			}
			queue = append(queue, entry{set: img, via: via})
		}
	}
	return nil, false, nil
}

// SelectImage enumerates up to limit images of S under Aut(G) and returns
// the one maximizing score — the paper's motivating use of SSM for
// influence maximization: among seed sets with identical influence, pick
// the one satisfying additional criteria (vertex attributes, coverage,
// cost). Enumeration is bounded by limit because orbits can be
// astronomically large; use CountImages to decide how much to explore.
func (ix *Index) SelectImage(s []int, limit int, score func([]int) float64) []int {
	images := ix.Enumerate(s, limit)
	if len(images) == 0 {
		return sortedCopy(s)
	}
	best := images[0]
	bestScore := score(best)
	for _, img := range images[1:] {
		if sc := score(img); sc > bestScore {
			best, bestScore = img, sc
		}
	}
	return best
}
