package ssm

import (
	"sort"

	"dvicl/internal/core"
	"dvicl/internal/engine"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
)

// leafOrbitSM is the paper-faithful variant of the non-singleton-leaf
// base case of Algorithm 6 (line 3): run the subgraph-matching subroutine
// SM to find every induced embedding of the pattern's induced subgraph in
// the leaf, then keep the matches that are actually *symmetric* to the
// pattern (same orbit under Aut(leaf, πg), checked by pattern-certificate
// equality). It returns the same set as leafOrbit; the two are
// cross-checked in tests and benchmarked against each other.
func (ix *Index) leafOrbitSM(ctl *engine.Ctl, nd *core.Node, pattern []int, limit int) ([][]int, error) {
	leafG := nd.LeafGraph()
	colors := ix.tree.Colors()

	// Local indices of the pattern inside the leaf.
	local := make([]int, len(pattern))
	for i, v := range pattern {
		local[i] = sort.SearchInts(nd.Verts, v)
	}
	sort.Ints(local)

	// The query graph's matching constraints: global colors, projected
	// onto the pattern (local ascending order) and onto the whole leaf.
	qColors := make([]int, len(local))
	for i, l := range local {
		qColors[i] = colors[nd.Verts[l]]
	}
	leafColors := make([]int, leafG.N())
	for i, v := range nd.Verts {
		leafColors[i] = colors[v]
	}

	// SM: all induced color-respecting embeddings, deduplicated to vertex
	// sets (different embeddings of the same set differ by a query
	// automorphism).
	m := NewMatcher(leafG, leafColors)
	key, err := ix.leafPatternCert(ctl, nd, pattern)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out [][]int
	var candidates, pruned int64
	for _, emb := range ix.findInducedArena(m, leafG, local, qColors) {
		if err := ctl.Poll(); err != nil {
			return nil, err
		}
		set := CanonicalSet(emb)
		k := intsKey(set)
		if seen[k] {
			continue
		}
		seen[k] = true
		candidates++
		// Symmetry verification: a match is an answer iff it lies in the
		// pattern's orbit under Aut(leaf, πg) — certificate equality (the
		// paper's Lemma 6.7 argument).
		global := make([]int, len(set))
		for i, l := range set {
			global[i] = nd.Verts[l]
		}
		cert, err := ix.leafPatternCert(ctl, nd, global)
		if err != nil {
			return nil, err
		}
		if !bytesEqual(cert, key) {
			pruned++
			continue
		}
		out = append(out, global)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	ix.rec.Add(obs.SSMLeafCandidates, candidates)
	ix.rec.Add(obs.SSMLeafPruned, pruned)
	sort.Slice(out, func(i, j int) bool { return lessIntSlice(out[i], out[j]) })
	return out, nil
}

// findInducedArena runs m.FindInduced on the subgraph of leafG induced
// by local (ascending), building the query CSR in the Index workspace's
// arena instead of fresh heap arrays. FindInduced copies every embedding
// it returns, so the arena frame is released before returning and the
// query graph never escapes.
func (ix *Index) findInducedArena(m *Matcher, leafG *graph.Graph, local, qColors []int) [][]int {
	ws := ix.workspace(leafG.N())
	a := &ws.Arena
	mark := a.Mark()
	defer a.Release(mark)
	verts := a.Alloc(len(local))
	idx := ws.LocalIdx
	for i, l := range local {
		verts[i] = int32(l)
		idx[l] = int32(i) + 1
	}
	offsets := a.Alloc(len(local) + 1)
	adj := a.Alloc(leafG.InduceOffsets(verts, idx, offsets))
	leafG.InduceAdj(verts, idx, adj)
	for _, l := range local {
		idx[l] = 0
	}
	q := graph.FromCSR(offsets, adj)
	return m.FindInduced(&q, qColors, 0)
}

func intsKey(xs []int) string {
	buf := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		buf = append(buf, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return string(buf)
}

// EnumerateSM is Enumerate with the paper's SM-based leaf handling
// instead of generator-orbit BFS — provided for fidelity to Algorithm 6
// and for cross-validation; results are identical.
func (ix *Index) EnumerateSM(s []int, limit int) [][]int {
	ix.rec.Inc(obs.SSMQueries)
	span := ix.rec.StartPhase(obs.PhaseSSMQuery)
	defer span.End()
	pattern := sortedCopy(s)
	ix.useSM = true
	defer func() { ix.useSM = false }()
	out, err := ix.enumNode(nil, ix.tree.Root, pattern, limit)
	if err != nil {
		panic("ssm.EnumerateSM: " + err.Error())
	}
	return out
}
