package ssm

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"dvicl/internal/core"
	"dvicl/internal/engine"
)

// TestQueriesCanceled: every Ctx query entry point observes a canceled
// context at its first checkpoint and returns ErrCanceled.
func TestQueriesCanceled(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	g := randGraph(r, 14, 2)
	tree := core.Build(g, nil, core.Options{})
	ix := NewIndex(tree)
	s := randomSubset(r, 14, 3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := ix.CountImagesCtx(ctx, s); !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("CountImagesCtx err = %v, want ErrCanceled", err)
	}
	if _, err := ix.EnumerateCtx(ctx, s, 0); !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("EnumerateCtx err = %v, want ErrCanceled", err)
	}
	if _, err := ix.PatternKeyCtx(ctx, s); !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("PatternKeyCtx err = %v, want ErrCanceled", err)
	}
	s2 := randomSubset(r, 14, 3)
	if _, _, err := ix.WitnessAutomorphismCtx(ctx, s, s2, 0); !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("WitnessAutomorphismCtx err = %v, want ErrCanceled", err)
	}
}

// TestCtxVariantsMatchLegacy: with a background context the Ctx variants
// are the exact legacy queries.
func TestCtxVariantsMatchLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	for trial := 0; trial < 10; trial++ {
		n := 6 + r.Intn(8)
		g := randGraph(r, n, 2)
		tree := core.Build(g, nil, core.Options{})
		ix := NewIndex(tree)
		s := randomSubset(r, n, 1+r.Intn(3))

		ctx := context.Background()
		count, err := ix.CountImagesCtx(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		if count.Cmp(ix.CountImages(s)) != 0 {
			t.Fatalf("trial %d: CountImagesCtx != CountImages", trial)
		}
		key, err := ix.PatternKeyCtx(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		if key != ix.PatternKey(s) {
			t.Fatalf("trial %d: PatternKeyCtx != PatternKey", trial)
		}
		got, err := ix.EnumerateCtx(ctx, s, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ix.Enumerate(s, 0)
		if len(got) != len(want) {
			t.Fatalf("trial %d: EnumerateCtx returned %d sets, legacy %d", trial, len(got), len(want))
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("trial %d: enumeration %d differs", trial, i)
				}
			}
		}
	}
}
