// Package ssm implements symmetric subgraph matching: given an induced
// subgraph q of G, find every induced subgraph g of G with g = qᵞ for some
// automorphism γ of G (Section 6.4 of the paper). SSM-AT (Algorithm 6)
// answers the query from the AutoTree; a brute-force enumerator over the
// automorphism group serves as the correctness oracle, and a VF2-style
// induced-subgraph matcher plays the role of the paper's SM subroutine.
package ssm

import (
	"sort"

	"dvicl/internal/graph"
)

// Matcher finds induced-subgraph isomorphisms of a query graph inside a
// data graph — the SM building block of Algorithm 6 (line 3). It is a
// VF2-style backtracking matcher with degree and color filtering.
type Matcher struct {
	data   *graph.Graph
	colors []int // optional vertex colors of the data graph (nil = none)
}

// NewMatcher builds a matcher over data; colors may be nil. When colors
// are given, a query vertex may only map to data vertices of the same
// color (queryColors in FindInduced).
type matchState struct {
	q           *graph.Graph
	qColors     []int
	assignment  []int
	used        map[int]bool
	out         [][]int
	limit       int
	order       []int
	stopped     bool
	dedupOrbits bool
}

// NewMatcher returns a Matcher for the data graph.
func NewMatcher(data *graph.Graph, colors []int) *Matcher {
	return &Matcher{data: data, colors: colors}
}

// FindInduced returns every induced embedding of q in the data graph as a
// vertex map (query vertex i ↦ data vertex out[i]). qColors, when
// non-nil, restricts query vertex i to data vertices of color qColors[i].
// limit bounds the number of embeddings returned (0 = all).
func (m *Matcher) FindInduced(q *graph.Graph, qColors []int, limit int) [][]int {
	if q.N() == 0 {
		return nil
	}
	st := &matchState{
		q:          q,
		qColors:    qColors,
		assignment: make([]int, q.N()),
		used:       make(map[int]bool),
		limit:      limit,
		order:      connectivityOrder(q),
	}
	for i := range st.assignment {
		st.assignment[i] = -1
	}
	m.extend(st, 0)
	return st.out
}

// connectivityOrder orders query vertices so each (after the first) has a
// previously-ordered neighbor when possible, maximizing early pruning.
func connectivityOrder(q *graph.Graph) []int {
	n := q.N()
	order := make([]int, 0, n)
	inOrder := make([]bool, n)
	// Start from the highest-degree vertex.
	start := 0
	for v := 1; v < n; v++ {
		if q.Degree(v) > q.Degree(start) {
			start = v
		}
	}
	order = append(order, start)
	inOrder[start] = true
	for len(order) < n {
		best, bestScore := -1, -1
		for v := 0; v < n; v++ {
			if inOrder[v] {
				continue
			}
			score := 0
			q.Neighbors(v, func(w int) {
				if inOrder[w] {
					score++
				}
			})
			// Prefer attached vertices; ties by degree.
			score = score*1000 + q.Degree(v)
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		order = append(order, best)
		inOrder[best] = true
	}
	return order
}

func (m *Matcher) extend(st *matchState, depth int) {
	if st.stopped {
		return
	}
	if depth == st.q.N() {
		emb := append([]int(nil), st.assignment...)
		st.out = append(st.out, emb)
		if st.limit > 0 && len(st.out) >= st.limit {
			st.stopped = true
		}
		return
	}
	qv := st.order[depth]
	// Candidate set: data neighbors of an already-mapped query neighbor,
	// or all data vertices if qv has none mapped yet.
	var candidates []int
	anchored := false
	st.q.Neighbors(qv, func(qw int) {
		if anchored || st.assignment[qw] < 0 {
			return
		}
		anchored = true
		m.data.Neighbors(st.assignment[qw], func(dv int) {
			candidates = append(candidates, dv)
		})
	})
	if !anchored {
		candidates = make([]int, m.data.N())
		for i := range candidates {
			candidates[i] = i
		}
	}
	for _, dv := range candidates {
		if st.used[dv] {
			continue
		}
		if st.qColors != nil && m.colors != nil && m.colors[dv] != st.qColors[qv] {
			continue
		}
		if m.data.Degree(dv) < st.q.Degree(qv) {
			continue
		}
		if !m.feasible(st, qv, dv) {
			continue
		}
		st.assignment[qv] = dv
		st.used[dv] = true
		m.extend(st, depth+1)
		st.used[dv] = false
		st.assignment[qv] = -1
		if st.stopped {
			return
		}
	}
}

// feasible checks induced consistency: mapped query neighbors of qv must
// be data neighbors of dv, and mapped non-neighbors must be non-neighbors.
func (m *Matcher) feasible(st *matchState, qv, dv int) bool {
	for qw, dw := range st.assignment {
		if dw < 0 || qw == qv {
			continue
		}
		if st.q.HasEdge(qv, qw) != m.data.HasEdge(dv, dw) {
			return false
		}
	}
	return true
}

// CanonicalSet returns the sorted vertex set of an embedding, used to
// deduplicate embeddings that differ only by query automorphisms.
func CanonicalSet(embedding []int) []int {
	out := append([]int(nil), embedding...)
	sort.Ints(out)
	return out
}
