// Package treestore persists and serves AutoTrees keyed by canonical
// certificate — the storage layer that turns the paper's "the AutoTree
// is an index" claim into a serving subsystem: once a graph's tree is
// built, orbit / automorphism-group / SSM queries are answered from the
// stored tree without re-running canonical labeling.
//
// The store is content-addressed: the key is the certificate itself
// (hashed to a filename), and the certificate is decodable back into
// the canonical graph (canon.DecodeCertificate), so a record holds only
// the serialized tree — a cold or corrupt entry is rebuilt from the
// certificate alone, deterministically, with no access to the original
// graph. That gives the store cache semantics end to end: every failure
// mode degrades to a recompute, never to a query error.
//
// Layout of a store directory:
//
//	<dir>/ab/<sha256-of-cert-hex>.tree
//
// Each record is a CRC32-checksummed frame (magic "DVTS", version,
// length, core.Tree.Save payload, trailing CRC32-IEEE) written via
// temp-file + fsync + atomic rename, following the internal/store
// conventions; load failures surface the same typed error set
// (store.ErrBadMagic, *store.VersionError, store.ErrTruncated,
// store.ErrChecksum) before the fallback rebuild swallows them into the
// treestore_corrupt counter.
//
// Decoded trees are held in a byte-budgeted LRU (cost = encoded record
// payload size, a stable proxy for the decoded footprint), and
// concurrent misses on one certificate are collapsed by a single-flight
// table so a thundering herd performs one rebuild. Rebuilds honor the
// configured engine.Budget and record into an obs.Trace when the
// context carries one.
package treestore

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"dvicl/internal/canon"
	"dvicl/internal/core"
	"dvicl/internal/engine"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
	"dvicl/internal/store"
)

// ErrClosed is returned by operations on a Store after Close.
var ErrClosed = errors.New("treestore: closed")

// DefaultMemBudget is the decoded-tree LRU budget when Options.MemBudget
// is zero.
const DefaultMemBudget = 256 << 20

// Record format constants (little-endian, internal/store conventions).
const (
	recMagic   = "DVTS"
	recVersion = uint16(1)
	recHdrLen  = 12 // magic(4) + version(2) + reserved(2) + payload len(4)
	// maxPayload caps a record's declared payload size; a length field
	// beyond it is treated as corruption rather than attempted as an
	// allocation.
	maxPayload = 1 << 30
)

// Options configures a Store.
type Options struct {
	// MemBudget bounds the in-memory LRU of decoded trees, in bytes of
	// encoded record size. 0 means DefaultMemBudget; negative disables
	// the memory cache entirely (every Get goes to disk or rebuilds).
	MemBudget int64
	// Build configures rebuild-on-miss DviCL builds. It must match the
	// options used to produce the certificates being queried (the
	// GraphIndex wires its own DviCL options through), and its Budget
	// bounds each rebuild. Build.Obs defaults to Obs when nil.
	Build core.Options
	// Obs receives the treestore_* counters and treestore_load/persist
	// phases (nil is a valid no-op recorder). When a Get context carries
	// an obs.Trace, that trace's forwarding recorder is used instead, so
	// per-request deltas are attributed without losing global totals.
	Obs *obs.Recorder
}

// Store is a content-addressed AutoTree store: persistent when opened
// with a directory, memory-only when opened with an empty one. Safe for
// concurrent use.
type Store struct {
	dir string // "" = memory-only
	opt Options

	mu      sync.Mutex
	entries map[[32]byte]*list.Element
	order   *list.List // front = most recently used
	bytes   int64
	flight  map[[32]byte]*flightCall
	closed  bool
}

type lruEntry struct {
	key  [32]byte
	tree *core.Tree
	size int64
}

// flightCall collapses concurrent misses on one certificate: the first
// caller loads or rebuilds, everyone else waits on done.
type flightCall struct {
	done chan struct{}
	tree *core.Tree
	err  error
}

// Open opens (creating if needed) a tree store rooted at dir. An empty
// dir yields a memory-only store: same API, no persistence — every
// eviction or restart costs a rebuild.
func Open(dir string, opt Options) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	if opt.MemBudget == 0 {
		opt.MemBudget = DefaultMemBudget
	}
	if opt.Build.Obs == nil {
		opt.Build.Obs = opt.Obs
	}
	return &Store{
		dir:     dir,
		opt:     opt,
		entries: make(map[[32]byte]*list.Element),
		order:   list.New(),
		flight:  make(map[[32]byte]*flightCall),
	}, nil
}

// recorderFor resolves the recorder for one operation: the context
// trace's forwarding recorder when present, the store's own otherwise.
func (s *Store) recorderFor(ctx context.Context) *obs.Recorder {
	if tr := obs.TraceFrom(ctx); tr != nil {
		return tr.Recorder()
	}
	return s.opt.Obs
}

// Get returns the AutoTree of the canonical graph the certificate
// describes, from the first level that has it: the decoded-tree LRU,
// the on-disk record, or a fresh DviCL rebuild (which is then persisted
// and cached). Corrupt records are counted, deleted and rebuilt — a Get
// fails only on cancellation, budget exhaustion, or an undecodable
// certificate. The returned tree is shared and must be treated as
// read-only; its automorphism-group order is precomputed, so Orbits,
// AutOrder, Quotient and fresh ssm.Index queries on it are safe
// concurrently.
func (s *Store) Get(ctx context.Context, cert []byte) (*core.Tree, error) {
	rec := s.recorderFor(ctx)
	key := sha256.Sum256(cert)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		rec.Inc(obs.TreeStoreMemHits)
		return el.Value.(*lruEntry).tree, nil
	}
	if fc, ok := s.flight[key]; ok {
		s.mu.Unlock()
		select {
		case <-fc.done:
			if fc.err == nil {
				rec.Inc(obs.TreeStoreMemHits)
			}
			return fc.tree, fc.err
		case <-ctx.Done():
			return nil, engine.ErrCanceled
		}
	}
	fc := &flightCall{done: make(chan struct{})}
	s.flight[key] = fc
	s.mu.Unlock()

	tree, size, err := s.loadOrRebuild(ctx, rec, key, cert)
	fc.tree, fc.err = tree, err

	s.mu.Lock()
	delete(s.flight, key)
	if err == nil && !s.closed && s.opt.MemBudget > 0 {
		s.insertLocked(key, tree, size, rec)
	}
	s.mu.Unlock()
	close(fc.done)
	return tree, err
}

// Ensure makes the certificate's tree resident (memory and, when the
// store is persistent, disk) — the write-behind entry point GraphIndex
// uses after an Add. It is Get with the result discarded.
func (s *Store) Ensure(ctx context.Context, cert []byte) error {
	_, err := s.Get(ctx, cert)
	return err
}

// loadOrRebuild is the miss path, run by exactly one flight leader per
// certificate: disk first, then a budgeted DviCL rebuild from the
// decoded certificate. It returns the tree and its encoded size (the
// LRU cost).
func (s *Store) loadOrRebuild(ctx context.Context, rec *obs.Recorder, key [32]byte, cert []byte) (*core.Tree, int64, error) {
	g, _, err := canon.DecodeCertificate(cert)
	if err != nil {
		// The certificate itself is bad — there is nothing to rebuild
		// from. This never happens for certs produced by this module.
		return nil, 0, err
	}

	if s.dir != "" {
		if tree, size, ok := s.loadDisk(rec, key, g); ok {
			return tree, size, nil
		}
	}

	rec.Inc(obs.TreeRebuilds)
	tree, err := core.BuildCtx(ctx, g, nil, s.buildOpts(rec))
	if err != nil {
		return nil, 0, err
	}
	warm(tree)
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		return nil, 0, engine.Internalf("treestore", "encode rebuilt tree: %v", err)
	}
	if s.dir != "" {
		span := rec.StartPhase(obs.PhaseTreePersist)
		perr := s.writeRecord(key, buf.Bytes())
		span.End()
		if perr == nil {
			rec.Inc(obs.TreeStorePuts)
		}
		// A failed persist is not a query failure: the tree is good, the
		// next cold Get just rebuilds again.
	}
	return tree, int64(buf.Len()), nil
}

// loadDisk tries the persisted record. ok is false on any failure:
// missing file is a plain miss; a corrupt or unreadable record is
// counted, removed, and degraded to a miss.
func (s *Store) loadDisk(rec *obs.Recorder, key [32]byte, g *graph.Graph) (*core.Tree, int64, bool) {
	path := s.pathOf(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			rec.Inc(obs.TreeStoreCorrupt)
			_ = os.Remove(path)
		}
		return nil, 0, false
	}
	span := rec.StartPhase(obs.PhaseTreeLoad)
	payload, derr := decodeRecord(data)
	var tree *core.Tree
	if derr == nil {
		tree, derr = core.Load(bytes.NewReader(payload), g)
	}
	span.End()
	if derr != nil {
		rec.Inc(obs.TreeStoreCorrupt)
		_ = os.Remove(path)
		return nil, 0, false
	}
	warm(tree)
	rec.Inc(obs.TreeStoreDiskHits)
	return tree, int64(len(payload)), true
}

// buildOpts is the rebuild configuration with the per-operation recorder
// substituted in (BuildCtx itself swaps in a trace recorder when the
// context carries one).
func (s *Store) buildOpts(rec *obs.Recorder) core.Options {
	opt := s.opt.Build
	opt.Obs = rec
	return opt
}

// warm precomputes the tree's lazily memoized state (the per-node
// automorphism-group orders) before the tree is shared, so concurrent
// readers never race on the memo.
func warm(t *core.Tree) {
	t.AutOrder()
}

// Rebuild is the store's miss path as a standalone function: decode the
// certificate and build its AutoTree under opt. Callers serving
// symmetry queries without a treestore (the degraded path) use it; the
// rebuild is counted on opt.Obs or the context trace.
func Rebuild(ctx context.Context, cert []byte, opt core.Options) (*core.Tree, error) {
	rec := opt.Obs
	if tr := obs.TraceFrom(ctx); tr != nil {
		rec = tr.Recorder()
	}
	g, _, err := canon.DecodeCertificate(cert)
	if err != nil {
		return nil, err
	}
	rec.Inc(obs.TreeRebuilds)
	opt.Obs = rec
	tree, err := core.BuildCtx(ctx, g, nil, opt)
	if err != nil {
		return nil, err
	}
	warm(tree)
	return tree, nil
}

// insertLocked caches a decoded tree and evicts from the cold end until
// the budget holds (always keeping the newest entry, so one oversized
// tree does not render the cache useless by thrashing).
func (s *Store) insertLocked(key [32]byte, tree *core.Tree, size int64, rec *obs.Recorder) {
	if _, ok := s.entries[key]; ok {
		return // a racing leader already cached it
	}
	s.entries[key] = s.order.PushFront(&lruEntry{key: key, tree: tree, size: size})
	s.bytes += size
	for s.bytes > s.opt.MemBudget && s.order.Len() > 1 {
		el := s.order.Back()
		ent := el.Value.(*lruEntry)
		s.order.Remove(el)
		delete(s.entries, ent.key)
		s.bytes -= ent.size
		rec.Inc(obs.TreeStoreEvictions)
	}
}

// Stats is a point-in-time summary of a Store.
type Stats struct {
	// Entries and Bytes describe the decoded-tree LRU; MemBudget is its
	// configured bound.
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MemBudget int64 `json:"mem_budget"`
	// Persistent reports whether the store is backed by a directory.
	Persistent bool `json:"persistent"`
}

// Stats returns current store statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:    len(s.entries),
		Bytes:      s.bytes,
		MemBudget:  s.opt.MemBudget,
		Persistent: s.dir != "",
	}
}

// Close empties the cache and fails subsequent operations with
// ErrClosed. On-disk records are left in place (they are the point).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.entries = make(map[[32]byte]*list.Element)
	s.order = list.New()
	s.bytes = 0
	return nil
}

// pathOf maps a certificate hash to its record path, fanned out over
// 256 subdirectories so huge stores do not produce one enormous
// directory.
func (s *Store) pathOf(key [32]byte) string {
	h := hex.EncodeToString(key[:])
	return filepath.Join(s.dir, h[:2], h+".tree")
}

// writeRecord frames and durably writes one record via temp file +
// fsync + atomic rename (a crash never leaves a torn record in place —
// at worst a stray .tmp file, which loads ignore).
func (s *Store) writeRecord(key [32]byte, payload []byte) (err error) {
	path := s.pathOf(key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(encodeRecord(payload)); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// encodeRecord frames a Save payload:
//
//	magic "DVTS" (4) | version u16 | reserved u16 | len u32 | payload |
//	crc32 u32 (IEEE, over everything above)
func encodeRecord(payload []byte) []byte {
	out := make([]byte, recHdrLen, recHdrLen+len(payload)+4)
	copy(out[:4], recMagic)
	binary.LittleEndian.PutUint16(out[4:6], recVersion)
	binary.LittleEndian.PutUint32(out[8:12], uint32(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// decodeRecord verifies a record's framing and checksum and returns the
// payload, using the internal/store typed error set.
func decodeRecord(data []byte) ([]byte, error) {
	if len(data) < recHdrLen+4 {
		return nil, fmt.Errorf("treestore: record of %d bytes: %w", len(data), store.ErrTruncated)
	}
	if string(data[:4]) != recMagic {
		return nil, fmt.Errorf("treestore: %w", store.ErrBadMagic)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != recVersion {
		return nil, &store.VersionError{File: "tree record", Got: v, Want: recVersion}
	}
	plen := binary.LittleEndian.Uint32(data[8:12])
	if plen > maxPayload {
		return nil, fmt.Errorf("treestore: implausible payload length %d: %w", plen, store.ErrChecksum)
	}
	if uint64(len(data)) < uint64(recHdrLen)+uint64(plen)+4 {
		return nil, fmt.Errorf("treestore: record ends mid-payload: %w", store.ErrTruncated)
	}
	if uint64(len(data)) > uint64(recHdrLen)+uint64(plen)+4 {
		return nil, fmt.Errorf("treestore: %d trailing bytes: %w", uint64(len(data))-uint64(recHdrLen)-uint64(plen)-4, store.ErrChecksum)
	}
	body := data[:recHdrLen+plen]
	if binary.LittleEndian.Uint32(data[recHdrLen+plen:]) != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("treestore: %w", store.ErrChecksum)
	}
	return body[recHdrLen:], nil
}
