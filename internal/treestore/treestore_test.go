package treestore

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dvicl/internal/core"
	"dvicl/internal/engine"
	"dvicl/internal/gen"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
)

func certOf(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	tree, err := core.BuildCtx(context.Background(), g, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tree.CanonicalCert()
}

func testGraphs() []*graph.Graph {
	return []*graph.Graph{
		gen.CircularLadder(4),
		gen.GridW(2, 4),
		gen.CFI(gen.RigidCubic(8, 7), false),
		gen.MzAug(4),
	}
}

func answerOf(t *testing.T, tree *core.Tree) string {
	t.Helper()
	var b bytes.Buffer
	b.Write(tree.CanonicalCert())
	b.WriteString(tree.AutOrder().String())
	for _, orb := range tree.Orbits() {
		for _, v := range orb {
			b.WriteByte(byte(v))
		}
		b.WriteByte('|')
	}
	return b.String()
}

func TestGetMemoryOnly(t *testing.T) {
	rec := obs.New()
	s, err := Open("", Options{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cert := certOf(t, gen.GridW(2, 4))

	t1, err := s.Get(context.Background(), cert)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter(obs.TreeRebuilds); got != 1 {
		t.Fatalf("cold get: tree_rebuilds = %d, want 1", got)
	}
	t2, err := s.Get(context.Background(), cert)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("warm get returned a different tree instance")
	}
	if got := rec.Counter(obs.TreeRebuilds); got != 1 {
		t.Fatalf("warm get rebuilt: tree_rebuilds = %d", got)
	}
	if got := rec.Counter(obs.TreeStoreMemHits); got != 1 {
		t.Fatalf("treestore_mem_hits = %d, want 1", got)
	}
	if !bytes.Equal(t1.CanonicalCert(), cert) {
		t.Fatal("rebuilt tree's certificate differs from the key")
	}
}

// TestPersistRestartByteIdentical is the durability contract: a second
// store over the same directory (a restarted process) serves the same
// answers from disk, with zero DviCL rebuilds.
func TestPersistRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	answers := make(map[string]string)
	var certs [][]byte

	rec := obs.New()
	s, err := Open(dir, Options{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range testGraphs() {
		cert := certOf(t, g)
		certs = append(certs, cert)
		tree, err := s.Get(context.Background(), cert)
		if err != nil {
			t.Fatal(err)
		}
		answers[string(cert)] = answerOf(t, tree)
	}
	if got := rec.Counter(obs.TreeStorePuts); got != int64(len(certs)) {
		t.Fatalf("treestore_puts = %d, want %d", got, len(certs))
	}
	s.Close()

	rec2 := obs.New()
	s2, err := Open(dir, Options{Obs: rec2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, cert := range certs {
		tree, err := s2.Get(context.Background(), cert)
		if err != nil {
			t.Fatal(err)
		}
		if answerOf(t, tree) != answers[string(cert)] {
			t.Fatal("answers differ across restart")
		}
	}
	if got := rec2.Counter(obs.TreeRebuilds); got != 0 {
		t.Fatalf("restart served with %d rebuilds, want 0", got)
	}
	if got := rec2.Counter(obs.TreeStoreDiskHits); got != int64(len(certs)) {
		t.Fatalf("treestore_disk_hits = %d, want %d", got, len(certs))
	}
}

func recordPath(t *testing.T, dir string, cert []byte) string {
	t.Helper()
	s := &Store{dir: dir}
	p := s.pathOf(sha256.Sum256(cert))
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("record not on disk: %v", err)
	}
	return p
}

// TestCorruptRecordFallsBackToRebuild: every flavor of on-disk damage —
// bit flip, truncation, bad magic, version skew — must degrade to one
// recompute and a rewritten record, never a query error.
func TestCorruptRecordFallsBackToRebuild(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"bitflip":  func(d []byte) []byte { d[len(d)/2] ^= 0x40; return d },
		"truncate": func(d []byte) []byte { return d[:len(d)/2] },
		"magic":    func(d []byte) []byte { copy(d[:4], "XXXX"); return d },
		"version":  func(d []byte) []byte { d[4] = 99; return d },
		"empty":    func(d []byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cert := certOf(t, gen.GridW(2, 4))
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.Get(context.Background(), cert)
			if err != nil {
				t.Fatal(err)
			}
			wantAns := answerOf(t, want)
			s.Close()

			path := recordPath(t, dir, cert)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}

			rec := obs.New()
			s2, err := Open(dir, Options{Obs: rec})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			got, err := s2.Get(context.Background(), cert)
			if err != nil {
				t.Fatalf("corrupt record surfaced as error: %v", err)
			}
			if answerOf(t, got) != wantAns {
				t.Fatal("recomputed answer differs from original")
			}
			if c := rec.Counter(obs.TreeStoreCorrupt); c != 1 {
				t.Fatalf("treestore_corrupt = %d, want 1", c)
			}
			if c := rec.Counter(obs.TreeRebuilds); c != 1 {
				t.Fatalf("tree_rebuilds = %d, want 1", c)
			}
			// The rebuild must heal the record: a third store serves it
			// from disk again.
			rec3 := obs.New()
			s3, err := Open(dir, Options{Obs: rec3})
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if _, err := s3.Get(context.Background(), cert); err != nil {
				t.Fatal(err)
			}
			if c := rec3.Counter(obs.TreeStoreDiskHits); c != 1 {
				t.Fatalf("healed record not served from disk (disk_hits=%d)", c)
			}
		})
	}
}

// TestSingleFlight: a thundering herd on one cold certificate performs
// exactly one rebuild.
func TestSingleFlight(t *testing.T) {
	rec := obs.New()
	s, err := Open("", Options{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cert := certOf(t, gen.CFI(gen.RigidCubic(10, 11), false))

	const goroutines = 16
	trees := make([]*core.Tree, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := s.Get(context.Background(), cert)
			if err != nil {
				t.Error(err)
				return
			}
			trees[i] = tr
		}(i)
	}
	wg.Wait()
	if got := rec.Counter(obs.TreeRebuilds); got != 1 {
		t.Fatalf("tree_rebuilds = %d, want 1 (single-flight)", got)
	}
	for _, tr := range trees[1:] {
		if tr != trees[0] {
			t.Fatal("waiters got different tree instances")
		}
	}
}

func TestLRUEviction(t *testing.T) {
	rec := obs.New()
	s, err := Open("", Options{MemBudget: 1, Obs: rec}) // 1 byte: at most one resident tree
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, g := range testGraphs() {
		if _, err := s.Get(context.Background(), certOf(t, g)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (newest survives)", st.Entries)
	}
	if got := rec.Counter(obs.TreeStoreEvictions); got != int64(len(testGraphs())-1) {
		t.Fatalf("treestore_evictions = %d, want %d", got, len(testGraphs())-1)
	}
}

func TestGetHonorsCancellation(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.Get(ctx, certOf(t, gen.CFI(gen.RigidCubic(20, 13), false)))
	if !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("canceled get: %v, want ErrCanceled", err)
	}
}

func TestGetRejectsBadCertificate(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Get(context.Background(), []byte("not a certificate")); err == nil {
		t.Fatal("garbage certificate accepted")
	}
}

func TestClosedStore(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Get(context.Background(), certOf(t, gen.GridW(2, 3))); !errors.Is(err, ErrClosed) {
		t.Fatalf("get on closed store: %v, want ErrClosed", err)
	}
}

// TestStrayTempFilesIgnored: a crash mid-persist leaves a .tmp file;
// it must not confuse loads, and the real record still round-trips.
func TestStrayTempFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	cert := certOf(t, gen.GridW(2, 4))
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(context.Background(), cert); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := recordPath(t, dir, cert)
	if err := os.WriteFile(path+".tmp123", []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	s2, err := Open(dir, Options{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get(context.Background(), cert); err != nil {
		t.Fatal(err)
	}
	if c := rec.Counter(obs.TreeStoreDiskHits); c != 1 {
		t.Fatalf("disk_hits = %d, want 1", c)
	}
}

func TestRecordCodecCorruptionTyped(t *testing.T) {
	payload := []byte("payload bytes")
	rec := encodeRecord(payload)
	if got, err := decodeRecord(rec); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %v", err)
	}
	for i := range rec {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x01
		if _, err := decodeRecord(mut); err == nil {
			t.Fatalf("flip@%d accepted", i)
		}
	}
	for cut := 0; cut < len(rec); cut++ {
		if _, err := decodeRecord(rec[:cut]); err == nil {
			t.Fatalf("truncation@%d accepted", cut)
		}
	}
	if _, err := decodeRecord(append(rec, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestStatsAndLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cert := certOf(t, gen.GridW(2, 3))
	if _, err := s.Get(context.Background(), cert); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes <= 0 || !st.Persistent || st.MemBudget != DefaultMemBudget {
		t.Fatalf("stats: %+v", st)
	}
	// Records fan out into 2-hex-digit subdirectories.
	p := recordPath(t, dir, cert)
	rel, err := filepath.Rel(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(filepath.Dir(rel)) != 2 {
		t.Fatalf("record path %s not fanned out", rel)
	}
}
