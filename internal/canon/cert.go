package canon

import (
	"encoding/binary"
	"fmt"

	"dvicl/internal/graph"
)

// maxCertN bounds the vertex count a certificate may declare; a header
// beyond it is treated as corruption rather than attempted as an
// allocation.
const maxCertN = 1 << 31

// DecodeCertificate inverts EncodeCertificate: it reconstructs the
// canonical graph G^γ and the root cell sizes from a certificate's
// bytes. The certificate is a complete description of the canonical
// form — n, the root partition cell sizes, and the sorted γ-image edge
// list — so the decoded graph satisfies
//
//	EncodeCertificate(DecodeCertificate(cert), identity, cells) == cert.
//
// That round trip is what lets the serving layer treat a certificate as
// a rebuildable key: an AutoTree lost to a crash or cache eviction is
// recomputed from the certificate alone, deterministically, with no
// access to the originally indexed graph.
func DecodeCertificate(cert []byte) (*graph.Graph, []int, error) {
	bad := func(format string, args ...any) (*graph.Graph, []int, error) {
		return nil, nil, fmt.Errorf("canon: corrupt certificate: "+format, args...)
	}
	if len(cert) < 16 || len(cert)%8 != 0 {
		return bad("length %d not a multiple of 8 with a 16-byte header", len(cert))
	}
	n := binary.BigEndian.Uint64(cert[0:8])
	nCells := binary.BigEndian.Uint64(cert[8:16])
	if n > maxCertN || nCells > n {
		return bad("n=%d cells=%d implausible", n, nCells)
	}
	body := cert[16:]
	if uint64(len(body))/8 < nCells {
		return bad("truncated cell-size table")
	}
	cells := make([]int, nCells)
	sum := uint64(0)
	for i := range cells {
		sz := binary.BigEndian.Uint64(body[8*i:])
		sum += sz
		if sz == 0 || sum > n {
			return bad("cell sizes sum past n=%d", n)
		}
		cells[i] = int(sz)
	}
	if sum != n {
		return bad("cell sizes sum to %d, want n=%d", sum, n)
	}
	edges := body[8*nCells:]
	b := graph.NewBuilder(int(n))
	prev := uint64(0)
	for i := 0; i < len(edges); i += 8 {
		e := binary.BigEndian.Uint64(edges[i:])
		if i > 0 && e <= prev {
			return bad("edge list not strictly increasing")
		}
		prev = e
		u, v := e>>32, e&0xffffffff
		if u >= n || v >= n || u >= v {
			return bad("edge (%d,%d) out of range for n=%d", u, v, n)
		}
		b.AddEdge(int(u), int(v))
	}
	return b.Build(), cells, nil
}
