package canon

import (
	"bytes"
	"math/rand"
	"testing"

	"dvicl/internal/obs"
)

// TestResultMatchesRecorder: the per-call counts returned in Result must
// equal what the recorder accumulated, and the aggregate prunings should
// actually fire on graphs with symmetry.
func TestResultMatchesRecorder(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	graphs := []struct {
		name string
		run  func() (Result, *obs.Recorder)
	}{
		{"petersen", func() (Result, *obs.Recorder) {
			rec := obs.New()
			return Canonical(petersen(), nil, Options{Obs: rec}), rec
		}},
		{"random", func() (Result, *obs.Recorder) {
			rec := obs.New()
			return Canonical(randGraph(r, 30, 3), nil, Options{Obs: rec}), rec
		}},
	}
	for _, tc := range graphs {
		res, rec := tc.run()
		checks := []struct {
			c    obs.Counter
			want int64
		}{
			{obs.SearchNodes, res.Nodes},
			{obs.SearchLeaves, res.Leaves},
			{obs.PruneFirstPath, res.PruneFirstPath},
			{obs.PruneBestPath, res.PruneBestPath},
			{obs.PruneOrbit, res.PruneOrbit},
			{obs.Backjumps, res.Backjumps},
			{obs.Automorphisms, int64(len(res.Generators))},
		}
		for _, ck := range checks {
			if got := rec.Counter(ck.c); got != ck.want {
				t.Errorf("%s: counter %s = %d, Result says %d", tc.name, ck.c, got, ck.want)
			}
		}
		if res.Nodes == 0 || res.Leaves == 0 {
			t.Errorf("%s: no search effort recorded: %+v", tc.name, res)
		}
	}

	// The Petersen graph has |Aut| = 120, so orbit pruning must have fired.
	res := Canonical(petersen(), nil, Options{})
	if res.PruneOrbit == 0 && res.PruneFirstPath == 0 && res.PruneBestPath == 0 {
		t.Errorf("no pruning on the Petersen graph: %+v", res)
	}
}

// TestNilRecorderSameResult: instrumentation must not perturb the search.
func TestNilRecorderSameResult(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		g := randGraph(r, 10+r.Intn(25), 2+r.Intn(2))
		plain := Canonical(g, nil, Options{})
		observed := Canonical(g, nil, Options{Obs: obs.New()})
		if !bytes.Equal(plain.Cert, observed.Cert) || plain.Nodes != observed.Nodes ||
			plain.Leaves != observed.Leaves {
			t.Fatalf("recorder perturbed the search: %+v vs %+v", plain, observed)
		}
	}
}
