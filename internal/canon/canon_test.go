package canon

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"dvicl/internal/coloring"
	"dvicl/internal/graph"
	"dvicl/internal/group"
)

func cycle(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return graph.FromEdges(n, edges)
}

func complete(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph.FromEdges(n, edges)
}

func path(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return graph.FromEdges(n, edges)
}

func petersen() *graph.Graph {
	var edges [][2]int
	for i := 0; i < 5; i++ {
		edges = append(edges, [2]int{i, (i + 1) % 5})     // outer C5
		edges = append(edges, [2]int{5 + i, 5 + (i+2)%5}) // inner pentagram
		edges = append(edges, [2]int{i, 5 + i})           // spokes
	}
	return graph.FromEdges(10, edges)
}

func randGraph(r *rand.Rand, n int, p int) *graph.Graph {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Intn(p) == 0 {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

func autOrder(t *testing.T, g *graph.Graph, opt Options) *big.Int {
	t.Helper()
	res := Canonical(g, nil, opt)
	if res.Truncated {
		t.Fatalf("search truncated")
	}
	for _, gen := range res.Generators {
		if !g.Permute(gen).Equal(g) {
			t.Fatalf("claimed automorphism %v is not one", gen)
		}
	}
	return group.New(g.N(), res.Generators).Order()
}

func TestAutomorphismGroupOrders(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"C5", cycle(5), 10},
		{"C6", cycle(6), 12},
		{"C8", cycle(8), 16},
		{"K4", complete(4), 24},
		{"K5", complete(5), 120},
		{"P4", path(4), 2},
		{"P7", path(7), 2},
		{"Petersen", petersen(), 120},
		{"K33", graph.FromEdges(6, [][2]int{{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5}, {2, 3}, {2, 4}, {2, 5}}), 72},
		{"2K3", graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}), 72}, // S3 wr S2
		{"Cube", graph.FromEdges(8, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}, {0, 4}, {1, 5}, {2, 6}, {3, 7}}), 48},
	}
	for _, pol := range []Policy{PolicyBliss, PolicyNauty, PolicyTraces} {
		for _, tc := range cases {
			got := autOrder(t, tc.g, Options{Policy: pol})
			if got.Cmp(big.NewInt(tc.want)) != 0 {
				t.Errorf("%s/%s: |Aut| = %v, want %d", pol, tc.name, got, tc.want)
			}
		}
	}
}

func TestCanonicalPermutationIsValid(t *testing.T) {
	g := petersen()
	res := Canonical(g, nil, Options{})
	if !res.Canon.IsValid() {
		t.Fatalf("canonical labeling not a permutation: %v", res.Canon)
	}
}

// TestCertIsoInvariant: relabeled copies of a graph share the certificate.
func TestCertIsoInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, pol := range []Policy{PolicyBliss, PolicyNauty, PolicyTraces} {
		for trial := 0; trial < 40; trial++ {
			n := 2 + r.Intn(16)
			g := randGraph(r, n, 2+r.Intn(3))
			res1 := Canonical(g, nil, Options{Policy: pol})
			gamma := r.Perm(n)
			h := g.Permute(gamma)
			res2 := Canonical(h, nil, Options{Policy: pol})
			if !bytes.Equal(res1.Cert, res2.Cert) {
				t.Fatalf("policy %v: certificates differ for isomorphic graphs (n=%d, trial=%d)\n g=%v",
					pol, n, trial, g.Edges())
			}
			// The canonical forms themselves must be the identical graph.
			if !g.Permute(res1.Canon).Equal(h.Permute(res2.Canon)) {
				t.Fatalf("canonical forms differ for isomorphic graphs")
			}
		}
	}
}

// TestCertSeparatesNonIsomorphic uses same-degree-sequence pairs that only
// a real isomorphism test distinguishes.
func TestCertSeparatesNonIsomorphic(t *testing.T) {
	// C6 vs 2×C3: both 2-regular on 6 vertices.
	g1 := cycle(6)
	g2 := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	for _, pol := range []Policy{PolicyBliss, PolicyNauty, PolicyTraces} {
		r1 := Canonical(g1, nil, Options{Policy: pol})
		r2 := Canonical(g2, nil, Options{Policy: pol})
		if bytes.Equal(r1.Cert, r2.Cert) {
			t.Fatalf("policy %v: C6 and 2K3 got equal certificates", pol)
		}
	}
	// K33 vs prism (K3×K2): both 3-regular on 6 vertices.
	k33 := graph.FromEdges(6, [][2]int{{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5}, {2, 3}, {2, 4}, {2, 5}})
	prism := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {0, 3}, {1, 4}, {2, 5}})
	r1 := Canonical(k33, nil, Options{})
	r2 := Canonical(prism, nil, Options{})
	if bytes.Equal(r1.Cert, r2.Cert) {
		t.Fatal("K33 and prism got equal certificates")
	}
}

// TestRandomIsoPairs also checks the converse direction on random pairs:
// unequal certs for graphs that differ in an edge.
func TestRandomNonIsoPerturbation(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(12)
		g := randGraph(r, n, 2)
		edges := g.Edges()
		if len(edges) == 0 || len(edges) == n*(n-1)/2 {
			continue
		}
		// Remove one edge: different edge count ⇒ must differ.
		h := graph.FromEdges(n, edges[:len(edges)-1])
		r1 := Canonical(g, nil, Options{})
		r2 := Canonical(h, nil, Options{})
		if bytes.Equal(r1.Cert, r2.Cert) {
			t.Fatalf("graphs with different edge counts share a cert")
		}
	}
}

func TestColoredGraphRestrictsAutomorphisms(t *testing.T) {
	// C6 with alternating colors has only the rotations by 2 and the
	// color-preserving reflections: |Aut| = 6 (dihedral group of the
	// triangle formed by each color class).
	g := cycle(6)
	pi, err := coloring.FromCells(6, [][]int{{0, 2, 4}, {1, 3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	res := Canonical(g, pi, Options{})
	for _, gen := range res.Generators {
		if !g.Permute(gen).Equal(g) {
			t.Fatalf("non-automorphism generator")
		}
		for v := 0; v < 6; v++ {
			if pi.Color(v) != pi.Color(gen[v]) {
				t.Fatalf("generator %v does not preserve colors", gen)
			}
		}
	}
	order := group.New(6, res.Generators).Order()
	if order.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("|Aut(C6, alternating)| = %v, want 6", order)
	}
}

func TestColoredIsoInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(10)
		g := randGraph(r, n, 2)
		// Random 2-coloring.
		var c0, c1 []int
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				c0 = append(c0, v)
			} else {
				c1 = append(c1, v)
			}
		}
		if len(c0) == 0 || len(c1) == 0 {
			continue
		}
		pi, err := coloring.FromCells(n, [][]int{c0, c1})
		if err != nil {
			t.Fatal(err)
		}
		gamma := r.Perm(n)
		h := g.Permute(gamma)
		img := func(vs []int) []int {
			out := make([]int, len(vs))
			for i, v := range vs {
				out[i] = gamma[v]
			}
			return out
		}
		piH, err := coloring.FromCells(n, [][]int{img(c0), img(c1)})
		if err != nil {
			t.Fatal(err)
		}
		r1 := Canonical(g, pi, Options{})
		r2 := Canonical(h, piH, Options{})
		if !bytes.Equal(r1.Cert, r2.Cert) {
			t.Fatalf("colored certificates differ for isomorphic colored graphs")
		}
	}
}

func TestMaxNodesTruncates(t *testing.T) {
	// A large very symmetric graph forces a big search tree.
	g := complete(30)
	res := Canonical(g, nil, Options{MaxNodes: 10})
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	g0 := graph.FromEdges(0, nil)
	res := Canonical(g0, nil, Options{})
	if res.Truncated {
		t.Fatal("empty graph truncated")
	}
	g1 := graph.FromEdges(1, nil)
	res = Canonical(g1, nil, Options{})
	if len(res.Canon) != 1 || res.Canon[0] != 0 {
		t.Fatalf("1-vertex canon = %v", res.Canon)
	}
	g2 := graph.FromEdges(2, [][2]int{{0, 1}})
	res = Canonical(g2, nil, Options{})
	order := group.New(2, res.Generators).Order()
	if order.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("|Aut(K2)| = %v", order)
	}
}

// TestPoliciesAgreeOnGroup: all three emulated tools must find the same
// automorphism group (their canonical forms may differ — each is its own
// canonical representative function, as the paper notes in §6.1).
func TestPoliciesAgreeOnGroup(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(10)
		g := randGraph(r, n, 3)
		var orders []*big.Int
		for _, pol := range []Policy{PolicyBliss, PolicyNauty, PolicyTraces} {
			res := Canonical(g, nil, Options{Policy: pol})
			orders = append(orders, group.New(n, res.Generators).Order())
		}
		if orders[0].Cmp(orders[1]) != 0 || orders[0].Cmp(orders[2]) != 0 {
			t.Fatalf("policies disagree on |Aut|: %v %v %v\n edges=%v",
				orders[0], orders[1], orders[2], g.Edges())
		}
	}
}

// TestGroupOrderAgainstBruteForce verifies the generating set is complete
// by enumerating all permutations on small graphs.
func TestGroupOrderAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(39))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(6) // n ≤ 7 keeps n! manageable
		g := randGraph(r, n, 2)
		res := Canonical(g, nil, Options{})
		got := group.New(n, res.Generators).Order()
		want := int64(0)
		permute(n, func(p []int) {
			if g.Permute(p).Equal(g) {
				want++
			}
		})
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("|Aut| = %v, brute force %d, edges=%v", got, want, g.Edges())
		}
	}
}

// permute calls fn with every permutation of {0..n-1} (Heap's algorithm).
func permute(n int, fn func([]int)) {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(p)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				p[i], p[k-1] = p[k-1], p[i]
			} else {
				p[0], p[k-1] = p[k-1], p[0]
			}
		}
	}
	if n > 0 {
		rec(n)
	}
}
