package canon

import (
	"bytes"
	"testing"

	"dvicl/internal/gen"
	"dvicl/internal/graph"
	"dvicl/internal/perm"
)

func certTestGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	pg, err := gen.PG2(3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"empty":  graph.NewBuilder(0).Build(),
		"edge":   mustGraph(2, [][2]int{{0, 1}}),
		"cycle6": gen.CircularLadder(3),
		"cfi":    gen.CFI(gen.RigidCubic(8, 7), false),
		"grid":   gen.GridW(2, 4),
		"pg2-3":  pg,
	}
}

func mustGraph(n int, edges [][2]int) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// TestDecodeCertificateRoundTrip pins the invariant the treestore's
// rebuild-on-miss path depends on: a certificate fully describes its
// canonical graph, and re-encoding the decoded graph under the identity
// labeling reproduces the certificate byte for byte.
func TestDecodeCertificateRoundTrip(t *testing.T) {
	for name, g := range certTestGraphs(t) {
		cert := Canonical(g, nil, Options{}).Cert
		dg, cells, err := DecodeCertificate(cert)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if dg.N() != g.N() || dg.M() != g.M() {
			t.Fatalf("%s: decoded n=%d m=%d, want n=%d m=%d", name, dg.N(), dg.M(), g.N(), g.M())
		}
		re := EncodeCertificate(dg, perm.Identity(dg.N()), cells)
		if !bytes.Equal(re, cert) {
			t.Fatalf("%s: re-encode of decoded graph differs from original certificate", name)
		}
		// The decoded graph is a member of the isomorphism class, so its
		// own canonical certificate must be the same bytes.
		if again := Canonical(dg, nil, Options{}).Cert; !bytes.Equal(again, cert) {
			t.Fatalf("%s: canonical cert of decoded graph differs", name)
		}
	}
}

func TestDecodeCertificateRejectsCorruption(t *testing.T) {
	cert := Canonical(gen.GridW(2, 4), nil, Options{}).Cert
	cases := map[string][]byte{
		"empty":          nil,
		"short":          cert[:8],
		"ragged":         cert[:len(cert)-3],
		"truncated-tail": cert[:len(cert)-8+1],
	}
	for i := range cert {
		// A single flipped byte must either decode to a different (still
		// valid) graph or fail — it must never panic. Bytes in the sorted
		// edge list usually break monotonicity or range checks.
		mut := append([]byte(nil), cert...)
		mut[i] ^= 0xff
		if dg, cells, err := DecodeCertificate(mut); err == nil {
			if re := EncodeCertificate(dg, perm.Identity(dg.N()), cells); !bytes.Equal(re, mut) {
				t.Fatalf("flip@%d: decode accepted bytes it cannot re-encode", i)
			}
		}
	}
	for name, c := range cases {
		if _, _, err := DecodeCertificate(c); err == nil {
			t.Fatalf("%s: corrupt certificate accepted", name)
		}
	}
}
