package canon

import (
	"context"
	"errors"
	"testing"

	"dvicl/internal/engine"
)

// TestCanonicalCtlCanceled: a canceled controller stops the backtrack
// search at a checkpoint and CanonicalCtl returns ErrCanceled with no
// canonical result.
func TestCanonicalCtlCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctl := engine.NewCtl(ctx, engine.Budget{})
	res, err := CanonicalCtl(ctl, nil, cycle(12), nil, Options{})
	if !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res.Canon != nil || res.Cert != nil {
		t.Fatal("canceled search returned a canonical form")
	}
}

// TestCanonicalCtlBudgetExceeded: the whole-build node cap surfaces as
// a hard typed error, unlike the per-search Options.MaxNodes soft
// truncation.
func TestCanonicalCtlBudgetExceeded(t *testing.T) {
	ctl := engine.NewCtl(context.Background(), engine.Budget{MaxNodes: 2})
	_, err := CanonicalCtl(ctl, nil, cycle(32), nil, Options{})
	if !errors.Is(err, engine.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestCanonicalCtlNilMatchesLegacy: a nil controller and workspace make
// CanonicalCtl the exact legacy search — same certificate bytes.
func TestCanonicalCtlNilMatchesLegacy(t *testing.T) {
	for _, g := range []struct {
		name string
		mk   func() Result
	}{
		{"cycle", func() Result { return Canonical(cycle(16), nil, Options{}) }},
		{"complete", func() Result { return Canonical(complete(7), nil, Options{}) }},
	} {
		want := g.mk()
		// Re-run through the Ctl path with an explicit pooled workspace.
		ws := engine.GetWorkspace(64)
		var got Result
		var err error
		switch g.name {
		case "cycle":
			got, err = CanonicalCtl(nil, ws, cycle(16), nil, Options{})
		default:
			got, err = CanonicalCtl(nil, ws, complete(7), nil, Options{})
		}
		engine.PutWorkspace(ws)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if string(got.Cert) != string(want.Cert) {
			t.Fatalf("%s: CanonicalCtl certificate differs from Canonical", g.name)
		}
	}
}
