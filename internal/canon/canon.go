// Package canon implements a canonical-labeling algorithm of the
// individualization–refinement family described in Section 4 of the paper:
// a backtrack search tree whose nodes are equitable colorings, with a
// target cell selector T, a node invariant φ (the refinement trace), the
// three prunings P_A (first-path), P_B (best-path) and P_C (orbit), and
// automorphism discovery against the leftmost leaf.
//
// It plays the role of nauty, bliss and traces in the paper's evaluation.
// The three tools differ chiefly in their target cell selector, so this
// package exposes the three published policies and the benchmark harness
// runs all of them, like Table 5 and Table 8 do.
package canon

import (
	"bytes"
	"encoding/binary"
	"time"

	"dvicl/internal/coloring"
	"dvicl/internal/engine"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
	"dvicl/internal/perm"
)

// Policy selects the target cell selector T.
type Policy int

const (
	// PolicyBliss individualizes in the first non-singleton cell,
	// regardless of size (the choice of Kocay [18] that bliss follows).
	PolicyBliss Policy = iota
	// PolicyNauty individualizes in the first smallest non-singleton cell
	// (nauty's default [26]).
	PolicyNauty
	// PolicyTraces individualizes in the largest non-singleton cell
	// (ties broken by position), echoing traces' preference for wide,
	// shallow trees.
	PolicyTraces
)

// String names the policy after the tool it emulates.
func (p Policy) String() string {
	switch p {
	case PolicyBliss:
		return "bliss"
	case PolicyNauty:
		return "nauty"
	case PolicyTraces:
		return "traces"
	}
	return "unknown"
}

// Options configures the search.
type Options struct {
	Policy Policy
	// MaxNodes bounds the number of search-tree nodes visited; 0 means
	// unlimited. When exceeded, Result.Truncated is set and the labeling
	// must not be used as a canonical form (a deterministic analogue of
	// the paper's two-hour timeout).
	MaxNodes int64
	// Deadline, when non-zero, aborts the search at the given wall-clock
	// time — the benchmark harness's equivalent of the paper's timeout.
	Deadline time.Time
	// AutomorphismsOnly skips the canonical-form bookkeeping and explores
	// only subtrees that can yield automorphisms against the first leaf —
	// the mode of the paper's saucy [9], which "only finds graph
	// symmetries". Result.Canon/Cert are then unspecified.
	AutomorphismsOnly bool
	// Obs, when non-nil, receives the search-effort counters (nodes,
	// leaves, prunings, automorphisms, backjumps, truncations) and the
	// refinement counters of every Refine the search performs. Search
	// counts are accumulated locally and flushed once per Canonical call.
	Obs *obs.Recorder
	// Span, when non-nil, receives the search-effort summary as trace
	// attributes (nodes, leaves, automorphisms, truncated) when the search
	// finishes. The caller owns the span's lifetime. Nil-safe.
	Span *obs.TraceSpan
}

// Result is the outcome of a canonical-labeling search.
type Result struct {
	// Canon is the canonical labeling γ*: relabeling g by Canon yields the
	// canonical form.
	Canon perm.Perm
	// Cert is the certificate of the canonical form: two colored graphs
	// are isomorphic iff their Certs are equal (Section 2's definition of
	// a canonical representative).
	Cert []byte
	// Generators generate the automorphism group Aut(G, π).
	Generators []perm.Perm
	// Nodes is the number of search-tree nodes visited.
	Nodes int64
	// Leaves is the number of leaves (discrete colorings) reached.
	Leaves int64
	// PruneFirstPath counts subtrees cut by the first-path invariant
	// (P_A): the trace diverged from the leftmost leaf's while only
	// automorphisms against it were still reachable.
	PruneFirstPath int64
	// PruneBestPath counts subtrees cut by the best-path invariant (P_B):
	// the trace exceeded the current canonical candidate's.
	PruneBestPath int64
	// PruneOrbit counts candidates cut by orbit pruning (P_C).
	PruneOrbit int64
	// Backjumps counts bliss-style automorphism backjumps taken.
	Backjumps int64
	// Truncated reports that MaxNodes was hit; Canon/Cert are then
	// best-effort only.
	Truncated bool
}

// Canonical computes the canonical labeling of the colored graph (g, pi).
// pi may be nil for the unit coloring. pi is not modified.
func Canonical(g *graph.Graph, pi *coloring.Coloring, opt Options) Result {
	res, _ := CanonicalCtl(nil, nil, g, pi, opt) // nil Ctl never stops the search
	return res
}

// CanonicalCtl is Canonical under an engine controller: ctl is ticked on
// every search-tree node (whole-build node budget, cancellation), and
// the search refines in ws rather than allocating. On ErrCanceled /
// ErrBudgetExceeded the Result carries the partial effort statistics but
// no usable labeling. ctl and ws may be nil (ws is then drawn from the
// engine pool); ws must not be shared with a concurrent search.
func CanonicalCtl(ctl *engine.Ctl, ws *engine.Workspace, g *graph.Graph, pi *coloring.Coloring, opt Options) (Result, error) {
	n := g.N()
	if pi == nil {
		pi = coloring.Unit(n)
	} else {
		pi = pi.Clone()
	}
	if ws == nil {
		ws = engine.GetWorkspace(n)
		defer engine.PutWorkspace(ws)
	}
	s := &search{g: g, opt: opt, ctl: ctl, ws: ws, n: n, rootCells: cellSizes(pi), backjump: -1}
	rootTrace, err := pi.RefineWS(g, nil, ws, ctl, opt.Obs)
	if err != nil {
		s.stopErr = err
	} else {
		s.run(pi, []uint64{rootTrace}, nil)
	}
	res := Result{
		Generators:     s.gens,
		Nodes:          s.nodes,
		Leaves:         s.leaves,
		PruneFirstPath: s.pruneFirst,
		PruneBestPath:  s.pruneBest,
		PruneOrbit:     s.pruneOrbit,
		Backjumps:      s.backjumps,
		Truncated:      s.truncated,
	}
	if s.best != nil && s.stopErr == nil {
		res.Canon = s.best.gamma
		res.Cert = s.best.cert
	}
	if rec := opt.Obs; rec != nil {
		rec.Add(obs.SearchNodes, res.Nodes)
		rec.Add(obs.SearchLeaves, res.Leaves)
		rec.Add(obs.PruneFirstPath, res.PruneFirstPath)
		rec.Add(obs.PruneBestPath, res.PruneBestPath)
		rec.Add(obs.PruneOrbit, res.PruneOrbit)
		rec.Add(obs.Automorphisms, int64(len(res.Generators)))
		rec.Add(obs.Backjumps, res.Backjumps)
		if res.Truncated {
			rec.Inc(obs.Truncations)
		}
	}
	opt.Span.SetAttr("nodes", res.Nodes)
	opt.Span.SetAttr("leaves", res.Leaves)
	opt.Span.SetAttr("automorphisms", int64(len(res.Generators)))
	if res.Truncated {
		opt.Span.SetAttr("truncated", 1)
	}
	return res, s.stopErr
}

// leaf records a discrete coloring reached by the search.
type leaf struct {
	gamma perm.Perm
	cert  []byte
	trace []uint64
	path  []int
}

type search struct {
	g         *graph.Graph
	opt       Options
	ctl       *engine.Ctl
	ws        *engine.Workspace
	n         int
	rootCells []int

	first *leaf // leftmost leaf: reference for automorphism discovery (P_A)
	best  *leaf // current canonical candidate (P_B)

	gens       []perm.Perm
	genSet     map[string]bool // packed-image dedup keys of gens
	nodes      int64
	leaves     int64
	pruneFirst int64
	pruneBest  int64
	pruneOrbit int64
	backjumps  int64
	truncated  bool
	// stopErr latches the controller's ErrCanceled/ErrBudgetExceeded; the
	// recursion unwinds without visiting further nodes once it is set.
	stopErr error
	// backjump, when ≥ 0, unwinds the recursion to the node at that depth
	// (bliss-style automorphism backjumping: after discovering an
	// automorphism against the leftmost leaf, everything between the
	// current position and the deepest common ancestor with the first
	// path yields only derivable automorphisms).
	backjump int
}

// halted reports whether the search must stop visiting nodes: a
// truncated per-leaf bound (soft) or a latched controller error (hard).
func (s *search) halted() bool {
	return s.truncated || s.stopErr != nil
}

func cellSizes(c *coloring.Coloring) []int {
	var sizes []int
	for _, cell := range c.Cells() {
		sizes = append(sizes, len(cell))
	}
	return sizes
}

// run explores the subtree rooted at the node with coloring c and path
// trace vector trace. path holds the individualized vertices from the
// root (the sequence ν of Section 4).
func (s *search) run(c *coloring.Coloring, trace []uint64, path []int) {
	if s.halted() {
		return
	}
	s.nodes++
	if err := s.ctl.Tick(1); err != nil {
		s.stopErr = err
		return
	}
	if s.opt.MaxNodes > 0 && s.nodes > s.opt.MaxNodes {
		s.truncated = true
		return
	}
	if !s.opt.Deadline.IsZero() && s.nodes%256 == 0 && time.Now().After(s.opt.Deadline) {
		s.truncated = true
		return
	}
	if c.IsDiscrete() {
		s.visitLeaf(c, trace, path)
		return
	}
	target := s.targetCell(c)
	// Orbit pruning P_C: skip a candidate v if an automorphism discovered
	// so far fixes the whole path and maps an already-explored candidate
	// to v. The orbit partition is rebuilt lazily whenever new generators
	// have arrived (they are discovered while exploring earlier children).
	pruner := newOrbitPruner(s.n, path)
	for _, v := range target {
		if s.halted() {
			return
		}
		if pruner.pruned(s.gens, v) {
			s.pruneOrbit++
			continue
		}
		child := c.Clone()
		sing, rest := child.Individualize(v)
		t, err := child.RefineWS(s.g, []int{sing, rest}, s.ws, s.ctl, s.opt.Obs)
		if err != nil {
			s.stopErr = err
			return
		}
		level := len(trace)
		childTrace := append(append([]uint64(nil), trace...), t)
		if !s.keepChild(t, level) {
			pruner.markExplored(v)
			continue
		}
		s.run(child, childTrace, append(path, v))
		pruner.markExplored(v)
		if s.backjump >= 0 {
			if len(path) > s.backjump {
				return // keep unwinding to the common ancestor
			}
			s.backjump = -1 // we are the fork node: resume siblings
		}
	}
}

// orbitPruner maintains, for one search-tree node, the orbit partition of
// the vertices under the discovered automorphisms that fix the node's
// path pointwise (the subgroup relevant to P_C). It rebuilds only when
// the global generator list has grown.
type orbitPruner struct {
	n        int
	path     []int
	genCount int
	parent   []int
	explored []int
}

func newOrbitPruner(n int, path []int) *orbitPruner {
	return &orbitPruner{n: n, path: append([]int(nil), path...)}
}

func (o *orbitPruner) find(x int) int {
	for o.parent[x] != x {
		o.parent[x] = o.parent[o.parent[x]]
		x = o.parent[x]
	}
	return x
}

// update applies any generators added since the last call to the orbit
// union-find. Unions are monotone, so incorporating only the new
// path-fixing generators is equivalent to a full rebuild but costs O(new
// generators × n) instead of O(all generators × n).
func (o *orbitPruner) update(gens []perm.Perm) {
	if o.parent == nil {
		o.parent = make([]int, o.n)
		for i := range o.parent {
			o.parent[i] = i
		}
		o.genCount = 0
	}
	for _, g := range gens[o.genCount:] {
		if !fixesPath(g, o.path) {
			continue
		}
		for v, img := range g {
			if v != img {
				ra, rb := o.find(v), o.find(img)
				if ra != rb {
					o.parent[rb] = ra
				}
			}
		}
	}
	o.genCount = len(gens)
}

// pruned reports whether v shares an orbit with an already-explored
// sibling candidate under the current path-fixing subgroup.
func (o *orbitPruner) pruned(gens []perm.Perm, v int) bool {
	if len(o.explored) == 0 || len(gens) == 0 {
		return false
	}
	if len(gens) != o.genCount {
		o.update(gens)
	}
	rv := o.find(v)
	for _, u := range o.explored {
		if o.find(u) == rv {
			return true
		}
	}
	return false
}

func (o *orbitPruner) markExplored(v int) {
	o.explored = append(o.explored, v)
}

// keepChild implements the invariant prunings P_A and P_B: a child is
// explored iff its trace can still lead to an automorphism with the
// leftmost leaf (trace equals the first path's at this level) or to the
// canonical leaf (trace not greater than the best path's at this level).
// A child whose trace is *smaller* than the best path's invalidates the
// current best candidate (the canonical form is the minimum (trace, cert)
// over all leaves).
func (s *search) keepChild(t uint64, level int) bool {
	matchFirst := s.first != nil && level < len(s.first.trace) && s.first.trace[level] == t
	if s.opt.AutomorphismsOnly && s.first != nil {
		if !matchFirst {
			s.pruneFirst++
		}
		return matchFirst
	}
	if s.best == nil {
		return true
	}
	if level >= len(s.best.trace) {
		// The best path is shallower; by the shorter-is-smaller rule this
		// deeper subtree cannot beat it, but may still hold automorphisms.
		if !matchFirst {
			s.pruneBest++
		}
		return matchFirst
	}
	switch {
	case t < s.best.trace[level]:
		// Everything under this child lexicographically precedes the
		// current best: the best is stale.
		s.best = nil
		return true
	case t == s.best.trace[level]:
		return true
	default:
		if !matchFirst {
			s.pruneBest++
		}
		return matchFirst
	}
}

// visitLeaf handles a discrete coloring: computes the leaf certificate,
// discovers automorphisms against the reference leaves, and updates the
// canonical candidate.
func (s *search) visitLeaf(c *coloring.Coloring, trace []uint64, path []int) {
	s.leaves++
	gamma := perm.Perm(c.Perm())
	cert := s.certificate(gamma)
	l := &leaf{gamma: gamma, cert: cert, trace: append([]uint64(nil), trace...),
		path: append([]int(nil), path...)}
	if s.first == nil {
		s.first = l
	} else if bytes.Equal(cert, s.first.cert) {
		if s.addAutomorphism(l.gamma, s.first.gamma) {
			// Backjump to the deepest common ancestor with the first path.
			cp := 0
			for cp < len(l.path) && cp < len(s.first.path) && l.path[cp] == s.first.path[cp] {
				cp++
			}
			s.backjump = cp
			s.backjumps++
		}
	}
	if s.best == nil {
		s.best = l
		return
	}
	cmp := compareLeaves(l, s.best)
	switch {
	case cmp < 0:
		s.best = l
	case cmp == 0 && bytes.Equal(cert, s.best.cert) && l != s.best:
		// Same canonical candidate reached along a different path: an
		// automorphism relating the two leaves.
		s.addAutomorphism(l.gamma, s.best.gamma)
	}
}

// compareLeaves orders leaves by (trace vector, certificate), with a
// shorter trace comparing smaller when it is a prefix of the longer one.
func compareLeaves(a, b *leaf) int {
	for i := 0; i < len(a.trace) && i < len(b.trace); i++ {
		if a.trace[i] != b.trace[i] {
			if a.trace[i] < b.trace[i] {
				return -1
			}
			return 1
		}
	}
	if len(a.trace) != len(b.trace) {
		if len(a.trace) < len(b.trace) {
			return -1
		}
		return 1
	}
	return bytes.Compare(a.cert, b.cert)
}

// addAutomorphism records δ = γ' ∘ γ_ref⁻¹ (apply γ' first), the
// automorphism implied by two leaves with identical certificates. It
// reports whether a new non-identity generator was recorded. Deduplication
// is by hash key so the cost stays linear in n however many generators a
// symmetric graph produces.
func (s *search) addAutomorphism(gammaNew, gammaRef perm.Perm) bool {
	delta := gammaNew.Compose(gammaRef.Inverse())
	if delta.IsIdentity() {
		return false
	}
	key := permKey(delta)
	if s.genSet == nil {
		s.genSet = make(map[string]bool)
	}
	if s.genSet[key] {
		return false
	}
	s.genSet[key] = true
	s.gens = append(s.gens, delta)
	return true
}

// permKey packs a permutation's images into a byte string for map keys.
func permKey(p perm.Perm) string {
	buf := make([]byte, 4*len(p))
	for i, v := range p {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

func fixesPath(g perm.Perm, path []int) bool {
	for _, v := range path {
		if g[v] != v {
			return false
		}
	}
	return true
}

// targetCell implements the selector T for the configured policy,
// returning the chosen non-singleton cell's vertices in ascending order.
func (s *search) targetCell(c *coloring.Coloring) []int {
	var chosen []int
	switch s.opt.Policy {
	case PolicyBliss:
		for _, cell := range c.Cells() {
			if len(cell) > 1 {
				return cell
			}
		}
	case PolicyNauty:
		for _, cell := range c.Cells() {
			if len(cell) > 1 && (chosen == nil || len(cell) < len(chosen)) {
				chosen = cell
			}
		}
	case PolicyTraces:
		for _, cell := range c.Cells() {
			if len(cell) > 1 && len(cell) > len(chosen) {
				chosen = cell
			}
		}
	}
	return chosen
}

// certificate encodes the canonical form (G^γ, π^γ): the root cell sizes
// followed by the γ-relabeled, sorted edge list. Certificates of two
// colored graphs are equal iff the colored graphs are identical after
// relabeling, which is what Section 2 requires of a canonical
// representative.
func (s *search) certificate(gamma perm.Perm) []byte {
	return EncodeCertificate(s.g, gamma, s.rootCells)
}

// EncodeCertificate serializes (n, cell sizes, sorted γ-image edge list)
// into a byte string ordered consistently with the lexicographic edge-list
// order the paper uses for G^γ.
func EncodeCertificate(g *graph.Graph, gamma perm.Perm, rootCells []int) []byte {
	n := g.N()
	m := g.M()
	buf := make([]byte, 0, 8*(2+len(rootCells))+8*m)
	var tmp [8]byte
	put := func(x int) {
		binary.BigEndian.PutUint64(tmp[:], uint64(x))
		buf = append(buf, tmp[:]...)
	}
	put(n)
	put(len(rootCells))
	for _, sz := range rootCells {
		put(sz)
	}
	edges := make([]uint64, 0, m)
	for _, e := range g.Edges() {
		u, v := gamma[e[0]], gamma[e[1]]
		if u > v {
			u, v = v, u
		}
		edges = append(edges, uint64(u)<<32|uint64(v))
	}
	sortUint64(edges)
	for _, e := range edges {
		binary.BigEndian.PutUint64(tmp[:], e)
		buf = append(buf, tmp[:]...)
	}
	return buf
}

func sortUint64(a []uint64) {
	// Standard library sort without the interface overhead.
	if len(a) < 2 {
		return
	}
	quickU64(a)
}

func quickU64(a []uint64) {
	for len(a) > 16 {
		p := medianOf3(a)
		i, j := 0, len(a)-1
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j+1 < len(a)-i {
			quickU64(a[:j+1])
			a = a[i:]
		} else {
			quickU64(a[i:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func medianOf3(a []uint64) uint64 {
	x, y, z := a[0], a[len(a)/2], a[len(a)-1]
	if (x <= y && y <= z) || (z <= y && y <= x) {
		return y
	}
	if (y <= x && x <= z) || (z <= x && x <= y) {
		return x
	}
	return z
}
