// Package canon implements a canonical-labeling algorithm of the
// individualization–refinement family described in Section 4 of the paper:
// a backtrack search tree whose nodes are equitable colorings, with a
// target cell selector T, a node invariant φ (the refinement trace), the
// three prunings P_A (first-path), P_B (best-path) and P_C (orbit), and
// automorphism discovery against the leftmost leaf.
//
// It plays the role of nauty, bliss and traces in the paper's evaluation.
// The three tools differ chiefly in their target cell selector, so this
// package exposes the three published policies and the benchmark harness
// runs all of them, like Table 5 and Table 8 do.
//
// Concurrency: every search allocates its own per-call state struct and
// touches shared memory only through the engine.Workspace it is handed
// (refinement buffers and write-before-read scratch — never ws.Arena),
// so concurrent searches over distinct workspaces are safe. This is what
// lets core's work-stealing scheduler run a stolen leaf search in the
// thief's workspace while the victim's arena frames stay open.
package canon

import (
	"bytes"
	"encoding/binary"
	"slices"
	"time"

	"dvicl/internal/coloring"
	"dvicl/internal/engine"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
	"dvicl/internal/perm"
)

// Policy selects the target cell selector T.
type Policy int

const (
	// PolicyBliss individualizes in the first non-singleton cell,
	// regardless of size (the choice of Kocay [18] that bliss follows).
	PolicyBliss Policy = iota
	// PolicyNauty individualizes in the first smallest non-singleton cell
	// (nauty's default [26]).
	PolicyNauty
	// PolicyTraces individualizes in the largest non-singleton cell
	// (ties broken by position), echoing traces' preference for wide,
	// shallow trees.
	PolicyTraces
)

// String names the policy after the tool it emulates.
func (p Policy) String() string {
	switch p {
	case PolicyBliss:
		return "bliss"
	case PolicyNauty:
		return "nauty"
	case PolicyTraces:
		return "traces"
	}
	return "unknown"
}

// Options configures the search.
type Options struct {
	Policy Policy
	// MaxNodes bounds the number of search-tree nodes visited; 0 means
	// unlimited. When exceeded, Result.Truncated is set and the labeling
	// must not be used as a canonical form (a deterministic analogue of
	// the paper's two-hour timeout).
	MaxNodes int64
	// Deadline, when non-zero, aborts the search at the given wall-clock
	// time — the benchmark harness's equivalent of the paper's timeout.
	Deadline time.Time
	// AutomorphismsOnly skips the canonical-form bookkeeping and explores
	// only subtrees that can yield automorphisms against the first leaf —
	// the mode of the paper's saucy [9], which "only finds graph
	// symmetries". Result.Canon/Cert are then unspecified.
	AutomorphismsOnly bool
	// Obs, when non-nil, receives the search-effort counters (nodes,
	// leaves, prunings, automorphisms, backjumps, truncations) and the
	// refinement counters of every Refine the search performs. Search
	// counts are accumulated locally and flushed once per Canonical call.
	Obs *obs.Recorder
	// Span, when non-nil, receives the search-effort summary as trace
	// attributes (nodes, leaves, automorphisms, truncated) when the search
	// finishes. The caller owns the span's lifetime. Nil-safe.
	Span *obs.TraceSpan
}

// Result is the outcome of a canonical-labeling search.
type Result struct {
	// Canon is the canonical labeling γ*: relabeling g by Canon yields the
	// canonical form.
	Canon perm.Perm
	// Cert is the certificate of the canonical form: two colored graphs
	// are isomorphic iff their Certs are equal (Section 2's definition of
	// a canonical representative).
	Cert []byte
	// Generators generate the automorphism group Aut(G, π).
	Generators []perm.Perm
	// Nodes is the number of search-tree nodes visited.
	Nodes int64
	// Leaves is the number of leaves (discrete colorings) reached.
	Leaves int64
	// PruneFirstPath counts subtrees cut by the first-path invariant
	// (P_A): the trace diverged from the leftmost leaf's while only
	// automorphisms against it were still reachable.
	PruneFirstPath int64
	// PruneBestPath counts subtrees cut by the best-path invariant (P_B):
	// the trace exceeded the current canonical candidate's.
	PruneBestPath int64
	// PruneOrbit counts candidates cut by orbit pruning (P_C).
	PruneOrbit int64
	// Backjumps counts bliss-style automorphism backjumps taken.
	Backjumps int64
	// Truncated reports that MaxNodes was hit; Canon/Cert are then
	// best-effort only.
	Truncated bool
}

// Canonical computes the canonical labeling of the colored graph (g, pi).
// pi may be nil for the unit coloring. pi is not modified.
func Canonical(g *graph.Graph, pi *coloring.Coloring, opt Options) Result {
	res, _ := CanonicalCtl(nil, nil, g, pi, opt) // nil Ctl never stops the search
	return res
}

// CanonicalCtl is Canonical under an engine controller: ctl is ticked on
// every search-tree node (whole-build node budget, cancellation), and
// the search refines in ws rather than allocating. On ErrCanceled /
// ErrBudgetExceeded the Result carries the partial effort statistics but
// no usable labeling. ctl and ws may be nil (ws is then drawn from the
// engine pool); ws must not be shared with a concurrent search.
func CanonicalCtl(ctl *engine.Ctl, ws *engine.Workspace, g *graph.Graph, pi *coloring.Coloring, opt Options) (Result, error) {
	n := g.N()
	if pi == nil {
		pi = coloring.Unit(n)
	} else {
		pi = pi.Clone()
	}
	if ws == nil {
		ws = engine.GetWorkspace(n)
		defer engine.PutWorkspace(ws)
	}
	s := &search{g: g, opt: opt, ctl: ctl, ws: ws, n: n, rootCells: cellSizes(pi), backjump: -1}
	rootTrace, err := pi.RefineWS(g, nil, ws, ctl, opt.Obs)
	if err != nil {
		s.stopErr = err
	} else {
		s.trace = append(s.trace, rootTrace)
		s.run(pi)
	}
	res := Result{
		Generators:     s.gens,
		Nodes:          s.nodes,
		Leaves:         s.leaves,
		PruneFirstPath: s.pruneFirst,
		PruneBestPath:  s.pruneBest,
		PruneOrbit:     s.pruneOrbit,
		Backjumps:      s.backjumps,
		Truncated:      s.truncated,
	}
	if s.best != nil && s.stopErr == nil {
		res.Canon = s.best.gamma
		res.Cert = s.best.cert
	}
	if rec := opt.Obs; rec != nil {
		rec.Add(obs.SearchNodes, res.Nodes)
		rec.Add(obs.SearchLeaves, res.Leaves)
		rec.Add(obs.PruneFirstPath, res.PruneFirstPath)
		rec.Add(obs.PruneBestPath, res.PruneBestPath)
		rec.Add(obs.PruneOrbit, res.PruneOrbit)
		rec.Add(obs.Automorphisms, int64(len(res.Generators)))
		rec.Add(obs.Backjumps, res.Backjumps)
		if res.Truncated {
			rec.Inc(obs.Truncations)
		}
	}
	opt.Span.SetAttr("nodes", res.Nodes)
	opt.Span.SetAttr("leaves", res.Leaves)
	opt.Span.SetAttr("automorphisms", int64(len(res.Generators)))
	if res.Truncated {
		opt.Span.SetAttr("truncated", 1)
	}
	return res, s.stopErr
}

// leaf records a discrete coloring reached by the search.
type leaf struct {
	gamma perm.Perm
	cert  []byte
	trace []uint64
	path  []int
}

type search struct {
	g         *graph.Graph
	opt       Options
	ctl       *engine.Ctl
	ws        *engine.Workspace
	n         int
	rootCells []int

	first *leaf // leftmost leaf: reference for automorphism discovery (P_A)
	best  *leaf // current canonical candidate (P_B)

	gens       []perm.Perm
	genSet     map[string]bool // packed-image dedup keys of gens
	nodes      int64
	leaves     int64
	pruneFirst int64
	pruneBest  int64
	pruneOrbit int64
	backjumps  int64
	truncated  bool
	// stopErr latches the controller's ErrCanceled/ErrBudgetExceeded; the
	// recursion unwinds without visiting further nodes once it is set.
	stopErr error
	// backjump, when ≥ 0, unwinds the recursion to the node at that depth
	// (bliss-style automorphism backjumping: after discovering an
	// automorphism against the leftmost leaf, everything between the
	// current position and the deepest common ancestor with the first
	// path yields only derivable automorphisms).
	backjump int

	// trace and path are the shared depth stacks of the recursion: at a
	// node of depth d, trace holds the d+1 refinement traces from the root
	// and path the d individualized vertices. run pushes before recursing
	// and pops after, so only leaves copy them (into leaf structs). This
	// replaces the per-child trace/path slices the search used to allocate
	// at every node.
	trace []uint64
	path  []int
	// free is the coloring free-list: child colorings are drawn with
	// getColoring (CopyFrom instead of Clone) and returned after their
	// subtree finishes, so steady-state descent allocates no colorings.
	free []*coloring.Coloring
	// pruners is the orbitPruner free-list, same discipline.
	pruners []*orbitPruner
	// seed is the Individualize seed-pair buffer passed to RefineWS.
	seed [2]int
}

// getColoring returns a coloring equal to src, reusing a free-listed one
// when available. The caller must putColoring it when its subtree is done.
func (s *search) getColoring(src *coloring.Coloring) *coloring.Coloring {
	if k := len(s.free); k > 0 {
		c := s.free[k-1]
		s.free = s.free[:k-1]
		c.CopyFrom(src)
		return c
	}
	return src.Clone()
}

func (s *search) putColoring(c *coloring.Coloring) {
	s.free = append(s.free, c)
}

// halted reports whether the search must stop visiting nodes: a
// truncated per-leaf bound (soft) or a latched controller error (hard).
func (s *search) halted() bool {
	return s.truncated || s.stopErr != nil
}

func cellSizes(c *coloring.Coloring) []int {
	sizes := make([]int, 0, c.NumCells())
	for st := 0; st < c.N(); st = c.CellEnd(st) {
		sizes = append(sizes, c.CellEnd(st)-st)
	}
	return sizes
}

// run explores the subtree rooted at the node with coloring c; s.trace
// and s.path hold the node's trace vector and individualization sequence
// ν (Section 4) as shared stacks.
func (s *search) run(c *coloring.Coloring) {
	if s.halted() {
		return
	}
	s.nodes++
	if err := s.ctl.Tick(1); err != nil {
		s.stopErr = err
		return
	}
	if s.opt.MaxNodes > 0 && s.nodes > s.opt.MaxNodes {
		s.truncated = true
		return
	}
	if !s.opt.Deadline.IsZero() && s.nodes%256 == 0 && time.Now().After(s.opt.Deadline) {
		s.truncated = true
		return
	}
	if c.IsDiscrete() {
		s.visitLeaf(c)
		return
	}
	target := s.targetCell(c)
	// Orbit pruning P_C: skip a candidate v if an automorphism discovered
	// so far fixes the whole path and maps an already-explored candidate
	// to v. The orbit partition is rebuilt lazily whenever new generators
	// have arrived (they are discovered while exploring earlier children).
	pruner := s.getPruner()
	level := len(s.trace)
	for _, v := range target {
		if s.halted() {
			break
		}
		if pruner.pruned(s.gens, v) {
			s.pruneOrbit++
			continue
		}
		child := s.getColoring(c)
		s.seed[0], s.seed[1] = child.Individualize(v)
		t, err := child.RefineWS(s.g, s.seed[:], s.ws, s.ctl, s.opt.Obs)
		if err != nil {
			s.stopErr = err
			s.putColoring(child)
			break
		}
		if !s.keepChild(t, level) {
			s.putColoring(child)
			pruner.markExplored(v)
			continue
		}
		s.trace = append(s.trace, t)
		s.path = append(s.path, v)
		s.run(child)
		s.trace = s.trace[:len(s.trace)-1]
		s.path = s.path[:len(s.path)-1]
		s.putColoring(child)
		pruner.markExplored(v)
		if s.backjump >= 0 {
			if len(s.path) > s.backjump {
				break // keep unwinding to the common ancestor
			}
			s.backjump = -1 // we are the fork node: resume siblings
		}
	}
	s.putPruner(pruner)
}

// orbitPruner maintains, for one search-tree node, the orbit partition of
// the vertices under the discovered automorphisms that fix the node's
// path pointwise (the subgroup relevant to P_C). It rebuilds only when
// the global generator list has grown.
type orbitPruner struct {
	n        int
	path     []int
	genCount int
	inited   bool
	parent   []int
	explored []int
}

// getPruner returns a pruner for the current node (path = s.path),
// reusing a free-listed one when available; the union-find is still
// initialized lazily on the first pruned() that has generators to apply.
func (s *search) getPruner() *orbitPruner {
	var o *orbitPruner
	if k := len(s.pruners); k > 0 {
		o = s.pruners[k-1]
		s.pruners = s.pruners[:k-1]
	} else {
		o = &orbitPruner{}
	}
	o.n = s.n
	o.path = append(o.path[:0], s.path...)
	o.explored = o.explored[:0]
	o.genCount = 0
	o.inited = false
	return o
}

func (s *search) putPruner(o *orbitPruner) {
	s.pruners = append(s.pruners, o)
}

func (o *orbitPruner) find(x int) int {
	for o.parent[x] != x {
		o.parent[x] = o.parent[o.parent[x]]
		x = o.parent[x]
	}
	return x
}

// update applies any generators added since the last call to the orbit
// union-find. Unions are monotone, so incorporating only the new
// path-fixing generators is equivalent to a full rebuild but costs O(new
// generators × n) instead of O(all generators × n).
func (o *orbitPruner) update(gens []perm.Perm) {
	if !o.inited {
		if cap(o.parent) < o.n {
			o.parent = make([]int, o.n)
		}
		o.parent = o.parent[:o.n]
		for i := range o.parent {
			o.parent[i] = i
		}
		o.genCount = 0
		o.inited = true
	}
	for _, g := range gens[o.genCount:] {
		if !fixesPath(g, o.path) {
			continue
		}
		for v, img := range g {
			if v != img {
				ra, rb := o.find(v), o.find(img)
				if ra != rb {
					o.parent[rb] = ra
				}
			}
		}
	}
	o.genCount = len(gens)
}

// pruned reports whether v shares an orbit with an already-explored
// sibling candidate under the current path-fixing subgroup.
func (o *orbitPruner) pruned(gens []perm.Perm, v int) bool {
	if len(o.explored) == 0 || len(gens) == 0 {
		return false
	}
	if !o.inited || len(gens) != o.genCount {
		o.update(gens)
	}
	rv := o.find(v)
	for _, u := range o.explored {
		if o.find(u) == rv {
			return true
		}
	}
	return false
}

func (o *orbitPruner) markExplored(v int) {
	o.explored = append(o.explored, v)
}

// keepChild implements the invariant prunings P_A and P_B: a child is
// explored iff its trace can still lead to an automorphism with the
// leftmost leaf (trace equals the first path's at this level) or to the
// canonical leaf (trace not greater than the best path's at this level).
// A child whose trace is *smaller* than the best path's invalidates the
// current best candidate (the canonical form is the minimum (trace, cert)
// over all leaves).
func (s *search) keepChild(t uint64, level int) bool {
	matchFirst := s.first != nil && level < len(s.first.trace) && s.first.trace[level] == t
	if s.opt.AutomorphismsOnly && s.first != nil {
		if !matchFirst {
			s.pruneFirst++
		}
		return matchFirst
	}
	if s.best == nil {
		return true
	}
	if level >= len(s.best.trace) {
		// The best path is shallower; by the shorter-is-smaller rule this
		// deeper subtree cannot beat it, but may still hold automorphisms.
		if !matchFirst {
			s.pruneBest++
		}
		return matchFirst
	}
	switch {
	case t < s.best.trace[level]:
		// Everything under this child lexicographically precedes the
		// current best: the best is stale.
		s.best = nil
		return true
	case t == s.best.trace[level]:
		return true
	default:
		if !matchFirst {
			s.pruneBest++
		}
		return matchFirst
	}
}

// visitLeaf handles a discrete coloring: computes the leaf certificate,
// discovers automorphisms against the reference leaves, and updates the
// canonical candidate. Leaves copy the shared trace/path stacks — they
// are the only search-tree nodes that keep them.
func (s *search) visitLeaf(c *coloring.Coloring) {
	s.leaves++
	gamma := perm.Perm(c.Perm())
	cert := s.certificate(gamma)
	l := &leaf{gamma: gamma, cert: cert, trace: append([]uint64(nil), s.trace...),
		path: append([]int(nil), s.path...)}
	if s.first == nil {
		s.first = l
	} else if bytes.Equal(cert, s.first.cert) {
		if s.addAutomorphism(l.gamma, s.first.gamma) {
			// Backjump to the deepest common ancestor with the first path.
			cp := 0
			for cp < len(l.path) && cp < len(s.first.path) && l.path[cp] == s.first.path[cp] {
				cp++
			}
			s.backjump = cp
			s.backjumps++
		}
	}
	if s.best == nil {
		s.best = l
		return
	}
	cmp := compareLeaves(l, s.best)
	switch {
	case cmp < 0:
		s.best = l
	case cmp == 0 && bytes.Equal(cert, s.best.cert) && l != s.best:
		// Same canonical candidate reached along a different path: an
		// automorphism relating the two leaves.
		s.addAutomorphism(l.gamma, s.best.gamma)
	}
}

// compareLeaves orders leaves by (trace vector, certificate), with a
// shorter trace comparing smaller when it is a prefix of the longer one.
func compareLeaves(a, b *leaf) int {
	for i := 0; i < len(a.trace) && i < len(b.trace); i++ {
		if a.trace[i] != b.trace[i] {
			if a.trace[i] < b.trace[i] {
				return -1
			}
			return 1
		}
	}
	if len(a.trace) != len(b.trace) {
		if len(a.trace) < len(b.trace) {
			return -1
		}
		return 1
	}
	return bytes.Compare(a.cert, b.cert)
}

// addAutomorphism records δ = γ' ∘ γ_ref⁻¹ (apply γ' first), the
// automorphism implied by two leaves with identical certificates. It
// reports whether a new non-identity generator was recorded. Deduplication
// is by hash key so the cost stays linear in n however many generators a
// symmetric graph produces.
func (s *search) addAutomorphism(gammaNew, gammaRef perm.Perm) bool {
	delta := gammaNew.Compose(gammaRef.Inverse())
	if delta.IsIdentity() {
		return false
	}
	key := permKey(delta)
	if s.genSet == nil {
		s.genSet = make(map[string]bool)
	}
	if s.genSet[key] {
		return false
	}
	s.genSet[key] = true
	s.gens = append(s.gens, delta)
	return true
}

// permKey packs a permutation's images into a byte string for map keys.
func permKey(p perm.Perm) string {
	buf := make([]byte, 4*len(p))
	for i, v := range p {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

func fixesPath(g perm.Perm, path []int) bool {
	for _, v := range path {
		if g[v] != v {
			return false
		}
	}
	return true
}

// targetCell implements the selector T for the configured policy,
// returning the chosen non-singleton cell's vertices in ascending order.
// Only the chosen cell is materialized (one allocation per node); the
// scan walks the cell runs in place. Candidate order must stay ascending
// — the canonical result depends on the order children are explored.
func (s *search) targetCell(c *coloring.Coloring) []int {
	n := c.N()
	chosen, size := -1, 0
	switch s.opt.Policy {
	case PolicyBliss:
		// First non-singleton cell (Kocay's choice).
		for st := 0; st < n; st = c.CellEnd(st) {
			if sz := c.CellEnd(st) - st; sz > 1 {
				chosen, size = st, sz
				break
			}
		}
	case PolicyNauty:
		// First smallest non-singleton cell.
		for st := 0; st < n; st = c.CellEnd(st) {
			if sz := c.CellEnd(st) - st; sz > 1 && (chosen < 0 || sz < size) {
				chosen, size = st, sz
			}
		}
	case PolicyTraces:
		// Largest non-singleton cell, ties broken by position.
		for st := 0; st < n; st = c.CellEnd(st) {
			if sz := c.CellEnd(st) - st; sz > 1 && sz > size {
				chosen, size = st, sz
			}
		}
	}
	if chosen < 0 {
		return nil
	}
	cell := make([]int, size)
	for i := range cell {
		cell[i] = c.LabAt(chosen + i)
	}
	slices.Sort(cell)
	return cell
}

// certificate encodes the canonical form (G^γ, π^γ): the root cell sizes
// followed by the γ-relabeled, sorted edge list. Certificates of two
// colored graphs are equal iff the colored graphs are identical after
// relabeling, which is what Section 2 requires of a canonical
// representative.
func (s *search) certificate(gamma perm.Perm) []byte {
	return EncodeCertificate(s.g, gamma, s.rootCells)
}

// EncodeCertificate serializes (n, cell sizes, sorted γ-image edge list)
// into a byte string ordered consistently with the lexicographic edge-list
// order the paper uses for G^γ.
func EncodeCertificate(g *graph.Graph, gamma perm.Perm, rootCells []int) []byte {
	n := g.N()
	m := g.M()
	buf := make([]byte, 0, 8*(2+len(rootCells))+8*m)
	var tmp [8]byte
	put := func(x int) {
		binary.BigEndian.PutUint64(tmp[:], uint64(x))
		buf = append(buf, tmp[:]...)
	}
	put(n)
	put(len(rootCells))
	for _, sz := range rootCells {
		put(sz)
	}
	edges := make([]uint64, 0, m)
	for u := 0; u < n; u++ {
		for _, w := range g.Neighbors32(u) {
			if int(w) > u {
				a, b := gamma[u], gamma[int(w)]
				if a > b {
					a, b = b, a
				}
				edges = append(edges, uint64(a)<<32|uint64(b))
			}
		}
	}
	sortUint64(edges)
	for _, e := range edges {
		binary.BigEndian.PutUint64(tmp[:], e)
		buf = append(buf, tmp[:]...)
	}
	return buf
}

func sortUint64(a []uint64) {
	// Standard library sort without the interface overhead.
	if len(a) < 2 {
		return
	}
	quickU64(a)
}

func quickU64(a []uint64) {
	for len(a) > 16 {
		p := medianOf3(a)
		i, j := 0, len(a)-1
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j+1 < len(a)-i {
			quickU64(a[:j+1])
			a = a[i:]
		} else {
			quickU64(a[i:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func medianOf3(a []uint64) uint64 {
	x, y, z := a[0], a[len(a)/2], a[len(a)-1]
	if (x <= y && y <= z) || (z <= y && y <= x) {
		return y
	}
	if (y <= x && x <= z) || (z <= x && x <= y) {
		return x
	}
	return z
}
