package canon

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"dvicl/internal/graph"
	"dvicl/internal/group"
)

func TestDeadlineTruncates(t *testing.T) {
	g := complete(40)
	res := Canonical(g, nil, Options{Deadline: time.Now().Add(-time.Second)})
	// An already-expired deadline must stop the search almost immediately
	// (the check fires every 256 nodes).
	if !res.Truncated && res.Nodes > 1000 {
		t.Fatalf("expired deadline ignored: %d nodes, truncated=%v", res.Nodes, res.Truncated)
	}
}

func TestResultStatistics(t *testing.T) {
	g := cycle(6)
	res := Canonical(g, nil, Options{})
	if res.Nodes < 1 {
		t.Fatal("no nodes counted")
	}
	if res.Leaves < 1 {
		t.Fatal("no leaves counted")
	}
	if res.Truncated {
		t.Fatal("unexpected truncation")
	}
	if len(res.Cert) == 0 {
		t.Fatal("empty certificate")
	}
}

// TestBackjumpKeepsCanonicalCorrect exercises the automorphism
// backjumping on richly symmetric graphs while confirming the canonical
// form remains isomorphism-invariant there.
func TestBackjumpKeepsCanonicalCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	builders := []func() *graph.Graph{
		func() *graph.Graph { return complete(9) },
		func() *graph.Graph { return cycle(12) },
		func() *graph.Graph { // 3 disjoint K4s
			var edges [][2]int
			for c := 0; c < 3; c++ {
				for i := 0; i < 4; i++ {
					for j := i + 1; j < 4; j++ {
						edges = append(edges, [2]int{4*c + i, 4*c + j})
					}
				}
			}
			return graph.FromEdges(12, edges)
		},
		func() *graph.Graph { // K4,4
			var edges [][2]int
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					edges = append(edges, [2]int{i, 4 + j})
				}
			}
			return graph.FromEdges(8, edges)
		},
	}
	wantOrders := []int64{362880, 24, 82944, 1152} // 9!, 2·12, (4!)³·3!, (4!)²·2
	for bi, build := range builders {
		g := build()
		res := Canonical(g, nil, Options{})
		order := group.New(g.N(), res.Generators).Order()
		if order.Cmp(big.NewInt(wantOrders[bi])) != 0 {
			t.Fatalf("case %d: |Aut| = %v, want %d", bi, order, wantOrders[bi])
		}
		for trial := 0; trial < 5; trial++ {
			h := g.Permute(r.Perm(g.N()))
			res2 := Canonical(h, nil, Options{})
			if !bytes.Equal(res.Cert, res2.Cert) {
				t.Fatalf("case %d: cert not invariant under relabeling", bi)
			}
		}
	}
}

// TestPolicyTreeShapes: the selectors must explore different trees (the
// very reason the paper compares three tools) while agreeing on results.
func TestPolicyTreeShapes(t *testing.T) {
	// A graph with cells of different sizes after refinement: a path of
	// stars of distinct sizes plus a symmetric tail.
	var edges [][2]int
	hub := func(h int, leaves ...int) {
		for _, l := range leaves {
			edges = append(edges, [2]int{h, l})
		}
	}
	hub(0, 1, 2, 3, 4, 5) // 5 leaves
	hub(6, 7, 8)          // 2 leaves
	edges = append(edges, [2]int{0, 6})
	g := graph.FromEdges(9, edges)
	var nodes []int64
	for _, pol := range []Policy{PolicyBliss, PolicyNauty, PolicyTraces} {
		res := Canonical(g, nil, Options{Policy: pol})
		nodes = append(nodes, res.Nodes)
		order := group.New(g.N(), res.Generators).Order()
		if order.Cmp(big.NewInt(240)) != 0 { // 5!·2!
			t.Fatalf("%v: |Aut| = %v, want 240", pol, order)
		}
	}
	// nauty (smallest cell first) and traces (largest first) must differ
	// in at least one tree size on this cell structure.
	if nodes[1] == nodes[2] && nodes[0] == nodes[1] {
		t.Logf("all policies explored %d nodes — acceptable but unusual", nodes[0])
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyBliss.String() != "bliss" || PolicyNauty.String() != "nauty" ||
		PolicyTraces.String() != "traces" || Policy(99).String() != "unknown" {
		t.Fatal("policy names wrong")
	}
}

// TestCanonicalIdempotent: canonicalizing the canonical form returns the
// same form.
func TestCanonicalIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	for trial := 0; trial < 15; trial++ {
		g := randGraph(r, 4+r.Intn(10), 2)
		res1 := Canonical(g, nil, Options{})
		cg := g.Permute(res1.Canon)
		res2 := Canonical(cg, nil, Options{})
		if !cg.Permute(res2.Canon).Equal(cg) && !bytes.Equal(res1.Cert, res2.Cert) {
			t.Fatalf("canonical form not a fixed point")
		}
		if !bytes.Equal(res1.Cert, res2.Cert) {
			t.Fatalf("re-canonicalization changed the certificate")
		}
	}
}

// TestAutomorphismsOnlyMode: the saucy-style mode must find the same
// group while visiting no more nodes than the full search.
func TestAutomorphismsOnlyMode(t *testing.T) {
	r := rand.New(rand.NewSource(115))
	for trial := 0; trial < 20; trial++ {
		g := randGraph(r, 4+r.Intn(12), 2)
		full := Canonical(g, nil, Options{})
		auto := Canonical(g, nil, Options{AutomorphismsOnly: true})
		wantOrder := group.New(g.N(), full.Generators).Order()
		gotOrder := group.New(g.N(), auto.Generators).Order()
		if wantOrder.Cmp(gotOrder) != 0 {
			t.Fatalf("automorphisms-only group %v != full %v (edges=%v)",
				gotOrder, wantOrder, g.Edges())
		}
		if auto.Nodes > full.Nodes {
			t.Fatalf("automorphisms-only visited more nodes (%d > %d)", auto.Nodes, full.Nodes)
		}
	}
}
