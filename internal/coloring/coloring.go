// Package coloring implements ordered partitions ("colorings" in Section 2
// of the paper) and the equitable refinement function R (1-dimensional
// Weisfeiler–Lehman), the workhorse of both the individualization–
// refinement baseline and DviCL.
//
// A coloring π = [V1 | V2 | … | Vk] is a disjoint ordered partition of the
// vertex set. The color of a vertex is the number of vertices in earlier
// cells, exactly the π(v) ← Σ_{j<i} |Vj| convention the paper uses, so
// colors of a discrete coloring form a permutation.
package coloring

import (
	"fmt"
	"sort"
)

// Coloring is an ordered partition of {0,…,n−1}. It is mutable: Refine and
// Individualize modify it in place (use Clone to branch, as the backtrack
// search does).
type Coloring struct {
	lab []int // vertices arranged so that each cell is contiguous
	pos []int // pos[v] = index of v in lab
	cs  []int // cs[p] = start index of the cell containing position p
	ce  []int // ce[s] = end index (exclusive) of the cell starting at s; valid only at cell starts
	nc  int   // number of cells
}

// Unit returns the unit coloring [V] on n vertices (every vertex the same
// color).
func Unit(n int) *Coloring {
	c := &Coloring{
		lab: make([]int, n),
		pos: make([]int, n),
		cs:  make([]int, n),
		ce:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		c.lab[i] = i
		c.pos[i] = i
		c.cs[i] = 0
	}
	if n > 0 {
		c.ce[0] = n
		c.nc = 1
	}
	return c
}

// FromCells builds a coloring from an explicit ordered cell list. The
// cells must partition {0,…,n−1}.
func FromCells(n int, cells [][]int) (*Coloring, error) {
	c := Unit(n)
	seen := make([]bool, n)
	p := 0
	for _, cell := range cells {
		if len(cell) == 0 {
			return nil, fmt.Errorf("coloring: empty cell")
		}
		start := p
		for _, v := range cell {
			if v < 0 || v >= n || seen[v] {
				return nil, fmt.Errorf("coloring: cells are not a partition (vertex %d)", v)
			}
			seen[v] = true
			c.lab[p] = v
			c.pos[v] = p
			c.cs[p] = start
			p++
		}
		c.ce[start] = p
	}
	if p != n {
		return nil, fmt.Errorf("coloring: cells cover %d of %d vertices", p, n)
	}
	c.nc = len(cells)
	return c, nil
}

// N returns the number of vertices.
func (c *Coloring) N() int { return len(c.lab) }

// Color returns π(v): the start offset of v's cell.
func (c *Coloring) Color(v int) int { return c.cs[c.pos[v]] }

// CellOf returns the vertices sharing v's cell, sorted ascending.
func (c *Coloring) CellOf(v int) []int {
	s := c.cs[c.pos[v]]
	out := append([]int(nil), c.lab[s:c.ce[s]]...)
	sort.Ints(out)
	return out
}

// Cells returns the ordered cell list; each cell's vertices are sorted.
func (c *Coloring) Cells() [][]int {
	var out [][]int
	for s := 0; s < len(c.lab); s = c.ce[s] {
		cell := append([]int(nil), c.lab[s:c.ce[s]]...)
		sort.Ints(cell)
		out = append(out, cell)
	}
	return out
}

// NumCells returns the number of cells.
func (c *Coloring) NumCells() int { return c.nc }

// CellEnd returns the end (exclusive) of the cell starting at position s.
// s must be a cell start; iterating s = 0; s < n; s = c.CellEnd(s) walks
// the cells in order without materializing them the way Cells does.
func (c *Coloring) CellEnd(s int) int { return c.ce[s] }

// LabAt returns the vertex at position p of the ordered partition.
// Within a cell the positions carry no canonical order — consumers that
// need a cell's vertices in ascending order sort them (see Cells).
func (c *Coloring) LabAt(p int) int { return c.lab[p] }

// CopyFrom makes c an independent copy of src, reusing c's backing
// arrays when they are large enough. It is the allocation-free Clone the
// backtrack search uses with its coloring free-list.
func (c *Coloring) CopyFrom(src *Coloring) {
	n := len(src.lab)
	if cap(c.lab) < n {
		c.lab = make([]int, n)
		c.pos = make([]int, n)
		c.cs = make([]int, n)
		c.ce = make([]int, n)
	}
	c.lab = c.lab[:n]
	c.pos = c.pos[:n]
	c.cs = c.cs[:n]
	c.ce = c.ce[:n]
	copy(c.lab, src.lab)
	copy(c.pos, src.pos)
	copy(c.cs, src.cs)
	copy(c.ce, src.ce)
	c.nc = src.nc
}

// NumSingletons returns how many cells are singletons.
func (c *Coloring) NumSingletons() int {
	k := 0
	for s := 0; s < len(c.lab); s = c.ce[s] {
		if c.ce[s]-s == 1 {
			k++
		}
	}
	return k
}

// IsDiscrete reports whether every cell is a singleton.
func (c *Coloring) IsDiscrete() bool { return c.nc == c.N() }

// Clone returns an independent copy of c.
func (c *Coloring) Clone() *Coloring {
	return &Coloring{
		lab: append([]int(nil), c.lab...),
		pos: append([]int(nil), c.pos...),
		cs:  append([]int(nil), c.cs...),
		ce:  append([]int(nil), c.ce...),
		nc:  c.nc,
	}
}

// Perm returns, for a discrete coloring, the permutation γ with
// γ(v) = π(v) (the paper's π̄). It panics if c is not discrete.
func (c *Coloring) Perm() []int {
	if !c.IsDiscrete() {
		panic("coloring: Perm on non-discrete coloring")
	}
	out := make([]int, len(c.pos))
	copy(out, c.pos)
	return out
}

// Individualize splits v out of its cell, making {v} a new cell placed
// before the remainder of its old cell. This is the edge operation of the
// search tree in Section 4. It returns the start positions of the two
// affected cells (the singleton and the remainder; remainder start is -1
// if the cell was already a singleton).
func (c *Coloring) Individualize(v int) (singleton, rest int) {
	s := c.cs[c.pos[v]]
	e := c.ce[s]
	if e-s == 1 {
		return s, -1
	}
	// Swap v to the front of its cell.
	p := c.pos[v]
	u := c.lab[s]
	c.lab[s], c.lab[p] = v, u
	c.pos[v], c.pos[u] = s, p
	// New singleton at s, remainder at s+1.
	c.ce[s] = s + 1
	c.cs[s] = s
	for q := s + 1; q < e; q++ {
		c.cs[q] = s + 1
	}
	c.ce[s+1] = e
	c.nc++
	return s, s + 1
}

// Equal reports whether two colorings are the same ordered partition.
func (c *Coloring) Equal(d *Coloring) bool {
	if c.N() != d.N() {
		return false
	}
	for s := 0; s < len(c.lab); s = c.ce[s] {
		if d.ce[s] != c.ce[s] {
			return false
		}
	}
	for v := range c.pos {
		if c.Color(v) != d.Color(v) {
			return false
		}
	}
	return true
}

// String renders the coloring in the paper's [a,b|c|d] notation with each
// cell's vertices sorted.
func (c *Coloring) String() string {
	out := "["
	first := true
	for _, cell := range c.Cells() {
		if !first {
			out += "|"
		}
		first = false
		for i, v := range cell {
			if i > 0 {
				out += ","
			}
			out += fmt.Sprint(v)
		}
	}
	return out + "]"
}
