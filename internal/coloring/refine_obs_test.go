package coloring

import (
	"testing"

	"dvicl/internal/graph"
	"dvicl/internal/obs"
)

// TestRefineObservedMatchesRefine: the instrumented entry point must
// produce the same trace and final coloring as the plain one, and report
// the work it did.
func TestRefineObservedMatchesRefine(t *testing.T) {
	// A path P5 refines the unit coloring to discrete-ish cells.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})

	plain := Unit(5)
	h1 := plain.Refine(g, nil)

	rec := obs.New()
	observed := Unit(5)
	h2 := observed.RefineObserved(g, nil, rec)

	if h1 != h2 {
		t.Fatalf("traces differ: %#x vs %#x", h1, h2)
	}
	if plain.String() != observed.String() {
		t.Fatalf("colorings differ: %v vs %v", plain, observed)
	}
	if got := rec.Counter(obs.RefineCalls); got != 1 {
		t.Fatalf("refine_calls = %d, want 1", got)
	}
	if rec.Counter(obs.RefineRounds) == 0 {
		t.Fatal("no refinement rounds recorded")
	}
	// Unit → 3 cells on P5 means at least two splits happened.
	if got := rec.Counter(obs.CellSplits); got < 2 {
		t.Fatalf("cell_splits = %d, want >= 2", got)
	}

	// A nil recorder is fine too.
	again := Unit(5)
	if h3 := again.RefineObserved(g, nil, nil); h3 != h1 {
		t.Fatalf("nil-recorder trace differs: %#x vs %#x", h3, h1)
	}
}

// TestRefineObservedNoSplit: refining an already-equitable coloring of a
// regular graph records a call and rounds but no splits.
func TestRefineObservedNoSplit(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}) // C4, regular
	rec := obs.New()
	c := Unit(4)
	c.RefineObserved(g, nil, rec)
	if got := rec.Counter(obs.CellSplits); got != 0 {
		t.Fatalf("cell_splits = %d on a regular graph, want 0", got)
	}
	if got := rec.Counter(obs.RefineCalls); got != 1 {
		t.Fatalf("refine_calls = %d, want 1", got)
	}
}
