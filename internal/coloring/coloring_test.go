package coloring

import (
	"math/rand"
	"testing"

	"dvicl/internal/graph"
)

// fig1Graph is the example graph of Fig. 1(a). The paper's facts about it:
// deg(7)=7 (hub adjacent to all), refinement of the unit coloring yields
// [0,1,2,3,4,5,6|7], further refining yields [0,1,2,3|4,5,6|7]; vertices
// 0,2 and 1,3 are structural twins; (4,5,6) is an automorphism. The edge
// set below realizes all of those facts: 0-1,0-3,2-1,2-3 (a C4 on
// {0,1,2,3}), a triangle 4-5-6 where 4 attaches to 1 and 3... we instead
// wire the triangle so that each of 4,5,6 has degree 3 overall and 2
// neighbors inside {0..6}: triangle edges only, plus hub. Then every
// vertex in {0..6} has exactly 2 neighbors in {0..6} and 1 neighbor (7),
// matching the equitable-coloring discussion of π1 in Section 2.
func fig1Graph() *graph.Graph {
	return graph.FromEdges(8, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, // C4 on 0..3
		{4, 5}, {5, 6}, {6, 4}, // triangle on 4..6
		{0, 7}, {1, 7}, {2, 7}, {3, 7}, {4, 7}, {5, 7}, {6, 7},
	})
}

func TestUnitColoring(t *testing.T) {
	c := Unit(5)
	if c.NumCells() != 1 || c.IsDiscrete() {
		t.Fatalf("unit coloring wrong: %v", c)
	}
	for v := 0; v < 5; v++ {
		if c.Color(v) != 0 {
			t.Fatalf("color(%d) = %d", v, c.Color(v))
		}
	}
	if c.String() != "[0,1,2,3,4]" {
		t.Fatalf("string = %q", c.String())
	}
}

func TestFromCells(t *testing.T) {
	c, err := FromCells(4, [][]int{{2, 0}, {1}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Color(0) != 0 || c.Color(2) != 0 || c.Color(1) != 2 || c.Color(3) != 3 {
		t.Fatalf("colors wrong: %v", c)
	}
	if c.NumCells() != 3 || c.NumSingletons() != 2 {
		t.Fatalf("cells=%d singles=%d", c.NumCells(), c.NumSingletons())
	}
	if _, err := FromCells(4, [][]int{{0, 1}}); err == nil {
		t.Fatal("partial cover accepted")
	}
	if _, err := FromCells(4, [][]int{{0, 1}, {1, 2, 3}}); err == nil {
		t.Fatal("overlap accepted")
	}
}

func TestIndividualize(t *testing.T) {
	c := Unit(4)
	s, r := c.Individualize(2)
	if s != 0 || r != 1 {
		t.Fatalf("individualize returned (%d,%d)", s, r)
	}
	if c.Color(2) != 0 {
		t.Fatalf("individualized vertex color = %d", c.Color(2))
	}
	if c.NumCells() != 2 {
		t.Fatalf("cells = %d", c.NumCells())
	}
	if got := c.String(); got != "[2|0,1,3]" {
		t.Fatalf("coloring = %q", got)
	}
	// Individualizing a singleton is a no-op.
	s2, r2 := c.Individualize(2)
	if s2 != 0 || r2 != -1 {
		t.Fatalf("re-individualize returned (%d,%d)", s2, r2)
	}
}

func TestRefinePaperExample(t *testing.T) {
	g := fig1Graph()
	c := Unit(8)
	c.Refine(g, nil)
	if !c.IsEquitable(g) {
		t.Fatalf("refined coloring not equitable: %v", c)
	}
	// Unit refinement splits hub (degree 7) from the rest (degree 3):
	// π1 = [0,1,2,3,4,5,6 | 7] per Section 2.
	if got := c.String(); got != "[0,1,2,3,4,5,6|7]" {
		t.Fatalf("refined = %q, want [0,1,2,3,4,5,6|7]", got)
	}
}

func TestRefineAfterIndividualize(t *testing.T) {
	g := fig1Graph()
	c := Unit(8)
	c.Refine(g, nil)
	s, r := c.Individualize(0)
	c.Refine(g, []int{s, r})
	if !c.IsEquitable(g) {
		t.Fatalf("not equitable after individualize+refine: %v", c)
	}
	// 0 individualized: its C4 distinguishes 2 (opposite), {1,3}
	// (adjacent), and the triangle {4,5,6} stays together.
	if c.Color(1) != c.Color(3) {
		t.Fatal("1 and 3 should share a cell")
	}
	if c.Color(4) != c.Color(5) || c.Color(5) != c.Color(6) {
		t.Fatal("4,5,6 should share a cell")
	}
	if c.Color(0) == c.Color(2) {
		t.Fatal("0 and 2 should be separated")
	}
	if len(c.CellOf(2)) != 1 {
		t.Fatalf("cell of 2 = %v", c.CellOf(2))
	}
}

func TestRefineDiscreteOnPath(t *testing.T) {
	// A path 0-1-2-3-4 has ends vs middles; refinement alone does not make
	// it discrete (0,4 symmetric), but individualizing 0 does.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	c := Unit(5)
	c.Refine(g, nil)
	if c.IsDiscrete() {
		t.Fatal("path refinement should not be discrete (mirror symmetry)")
	}
	s, r := c.Individualize(0)
	c.Refine(g, []int{s, r})
	if !c.IsDiscrete() {
		t.Fatalf("individualizing an end should make the path discrete: %v", c)
	}
}

func TestRefineRegularGraphNoSplit(t *testing.T) {
	// A 6-cycle is vertex-transitive: the unit coloring stays one cell.
	g := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	c := Unit(6)
	c.Refine(g, nil)
	if c.NumCells() != 1 {
		t.Fatalf("cycle refined into %d cells: %v", c.NumCells(), c)
	}
}

// applyPerm returns the coloring πᵞ whose cells are the γ-images of c's
// cells, in the same order. Used to check invariance of refinement.
func applyPerm(c *Coloring, gamma []int) *Coloring {
	var cells [][]int
	for _, cell := range c.Cells() {
		img := make([]int, len(cell))
		for i, v := range cell {
			img[i] = gamma[v]
		}
		cells = append(cells, img)
	}
	out, err := FromCells(c.N(), cells)
	if err != nil {
		panic(err)
	}
	return out
}

// TestRefineIsoInvariant is the property (iii) of R: refining Gᵞ with πᵞ
// gives R(G,π)ᵞ, and the traces agree.
func TestRefineIsoInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(24)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(3) == 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := graph.FromEdges(n, edges)
		gamma := r.Perm(n)
		h := g.Permute(gamma)

		c1 := Unit(n)
		t1 := c1.Refine(g, nil)
		c2 := Unit(n)
		t2 := c2.Refine(h, nil)
		if t1 != t2 {
			t.Fatalf("trace differs under permutation: %x vs %x", t1, t2)
		}
		want := applyPerm(c1, gamma)
		if !want.Equal(c2) {
			t.Fatalf("refined coloring not invariant:\n g: %v\n h: %v\n want %v",
				c1, c2, want)
		}
	}
}

// TestRefineIsoInvariantWithIndividualization extends invariance through
// an individualize step, the exact pattern the search tree relies on.
func TestRefineIsoInvariantWithIndividualization(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(16)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(2) == 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := graph.FromEdges(n, edges)
		gamma := r.Perm(n)
		h := g.Permute(gamma)

		c1 := Unit(n)
		c1.Refine(g, nil)
		v := r.Intn(n)
		s1, r1 := c1.Individualize(v)
		t1 := c1.Refine(g, []int{s1, r1})

		c2 := Unit(n)
		c2.Refine(h, nil)
		s2, r2 := c2.Individualize(gamma[v])
		t2 := c2.Refine(h, []int{s2, r2})

		if t1 != t2 {
			t.Fatalf("trace differs after individualization")
		}
		if !applyPerm(c1, gamma).Equal(c2) {
			t.Fatalf("coloring not invariant after individualization")
		}
	}
}

// TestRefineFixpoint: refining an already-equitable coloring must not
// change it.
func TestRefineFixpoint(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(20)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(3) == 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := graph.FromEdges(n, edges)
		c := Unit(n)
		c.Refine(g, nil)
		d := c.Clone()
		d.Refine(g, nil)
		if !c.Equal(d) {
			t.Fatalf("refine not idempotent: %v vs %v", c, d)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	c := Unit(4)
	d := c.Clone()
	d.Individualize(1)
	if c.NumCells() != 1 {
		t.Fatal("clone not independent")
	}
	if d.NumCells() != 2 {
		t.Fatal("clone mutation lost")
	}
}

func TestPermOfDiscrete(t *testing.T) {
	c, err := FromCells(3, [][]int{{2}, {0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Perm()
	// Vertex 2 is in the first cell → color 0, vertex 0 → 1, vertex 1 → 2.
	if p[2] != 0 || p[0] != 1 || p[1] != 2 {
		t.Fatalf("perm = %v", p)
	}
}

// TestRefineActiveSeedEquivalence: refining from scratch and refining
// with an explicit all-cells active list must agree.
func TestRefineActiveSeedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(20)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(3) == 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := graph.FromEdges(n, edges)
		a := Unit(n)
		a.Refine(g, nil)
		b := Unit(n)
		b.Refine(g, []int{0})
		if !a.Equal(b) {
			t.Fatalf("seeded refinement differs: %v vs %v", a, b)
		}
	}
}

// TestIndividualizeChainDiscretizes: repeatedly individualizing the first
// non-singleton cell's first vertex and refining must terminate in a
// discrete coloring within n steps.
func TestIndividualizeChainDiscretizes(t *testing.T) {
	r := rand.New(rand.NewSource(27))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(25)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(2) == 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := graph.FromEdges(n, edges)
		c := Unit(n)
		c.Refine(g, nil)
		steps := 0
		for !c.IsDiscrete() {
			if steps++; steps > n {
				t.Fatalf("individualization chain did not terminate: %v", c)
			}
			var target int = -1
			for _, cell := range c.Cells() {
				if len(cell) > 1 {
					target = cell[0]
					break
				}
			}
			s, rest := c.Individualize(target)
			c.Refine(g, []int{s, rest})
			if !c.IsEquitable(g) {
				t.Fatalf("coloring not equitable after step %d", steps)
			}
		}
		// Discrete coloring is a permutation.
		p := c.Perm()
		hit := make([]bool, n)
		for _, x := range p {
			if x < 0 || x >= n || hit[x] {
				t.Fatalf("discrete coloring not a bijection: %v", p)
			}
			hit[x] = true
		}
	}
}

func TestCellQueries(t *testing.T) {
	c, err := FromCells(6, [][]int{{0, 3}, {1, 4, 5}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CellOf(4); len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Fatalf("CellOf(4) = %v", got)
	}
	if c.NumCells() != 3 || c.NumSingletons() != 1 {
		t.Fatalf("cells=%d singles=%d", c.NumCells(), c.NumSingletons())
	}
	cells := c.Cells()
	if len(cells) != 3 || len(cells[1]) != 3 {
		t.Fatalf("Cells() = %v", cells)
	}
}
