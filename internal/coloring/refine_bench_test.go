package coloring

import (
	"testing"

	"dvicl/internal/engine"
	"dvicl/internal/gen"
)

// BenchmarkRefineAllocs measures steady-state refinement in a held
// workspace — the configuration every hot loop (canon search, core
// build, pipeline workers) runs in. It must report 0 allocs/op; the
// before/after record lives in results/ENGINE_REFINE_ALLOCS.md.
func BenchmarkRefineAllocs(b *testing.B) {
	g := gen.RigidCubic(512, 1)
	base := Unit(g.N())
	work := base.Clone()
	w := engine.GetWorkspace(g.N())
	defer engine.PutWorkspace(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copyColoring(work, base)
		if _, err := work.RefineWS(g, nil, w, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefinePooled measures the legacy Refine entry point, which
// draws its workspace from the engine pool per call — the compatibility
// path's steady-state cost.
func BenchmarkRefinePooled(b *testing.B) {
	g := gen.RigidCubic(512, 1)
	base := Unit(g.N())
	work := base.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copyColoring(work, base)
		work.Refine(g, nil)
	}
}

func copyColoring(dst, src *Coloring) {
	copy(dst.lab, src.lab)
	copy(dst.pos, src.pos)
	copy(dst.cs, src.cs)
	copy(dst.ce, src.ce)
	dst.nc = src.nc
}
