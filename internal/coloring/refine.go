package coloring

import (
	"dvicl/internal/engine"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
)

// fnv1a64 constants for the refinement trace hash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mix(h uint64, x uint64) uint64 {
	h ^= x
	h *= fnvPrime
	return h
}

// pollRounds is how many refinement rounds pass between cancellation
// polls. A round is one splitter cell's worth of neighbor counting —
// cheap for small cells — so the poll is rate-limited the same way the
// search's per-node Tick is.
const pollRounds = 256

// Refine makes c equitable with respect to g — the refinement function R
// of Sections 4 and 6 (1-dimensional Weisfeiler–Lehman). Cells are split
// by the number of neighbors in a splitter cell; fragments are ordered by
// ascending count, which makes the resulting ordered partition
// isomorphism-invariant (property (iii) of R).
//
// active lists the cell start positions seeding the splitter worklist;
// pass nil to seed with every cell (a refinement from scratch). After an
// Individualize, pass the returned singleton (and remainder) starts.
//
// Refine returns an isomorphism-invariant trace hash of the refinement:
// two corresponding nodes of the search trees of isomorphic colored graphs
// produce equal hashes, so the hash serves as the node invariant φ.
//
// The cost per splitter is proportional to the splitter's adjacency, not
// to the sizes of the touched cells: members with zero splitter-neighbors
// stay in place as the (implicit, minimal-count) first fragment.
//
// Refine draws a scratch workspace from the engine pool; hot loops that
// refine repeatedly should hold their own workspace and call RefineWS.
func (c *Coloring) Refine(g *graph.Graph, active []int) uint64 {
	w := engine.GetWorkspace(c.N())
	h, _, _, _ := c.refineWS(g, active, w, nil)
	engine.PutWorkspace(w)
	return h
}

// RefineObserved is Refine reporting into rec (which may be nil):
// obs.RefineCalls (one trace hash per call), obs.RefineRounds (splitter
// cells processed) and obs.CellSplits (new cell fragments created by
// splitting). Counts are accumulated in locals and flushed once at the
// end, so the refinement loop itself carries no atomic traffic.
func (c *Coloring) RefineObserved(g *graph.Graph, active []int, rec *obs.Recorder) uint64 {
	w := engine.GetWorkspace(c.N())
	h, _ := c.RefineWS(g, active, w, nil, rec)
	engine.PutWorkspace(w)
	return h
}

// RefineWS is the full-control refinement entry: it runs in the caller's
// workspace (allocation-free in steady state), polls ctl between rounds,
// and reports into rec. Any of w's buffers may be grown and retained in
// w. On cancellation it returns ctl's error with the coloring in a
// valid (merely under-refined) state and w's invariants restored; the
// partial trace hash must not be used. ctl and rec may be nil; w must
// not be shared with a concurrent refinement.
func (c *Coloring) RefineWS(g *graph.Graph, active []int, w *engine.Workspace, ctl *engine.Ctl, rec *obs.Recorder) (uint64, error) {
	h, rounds, splits, err := c.refineWS(g, active, w, ctl)
	rec.Inc(obs.RefineCalls)
	rec.Add(obs.RefineRounds, rounds)
	rec.Add(obs.CellSplits, splits)
	return h, err
}

func (c *Coloring) refineWS(g *graph.Graph, active []int, w *engine.Workspace, ctl *engine.Ctl) (trace uint64, rounds, splits int64, err error) {
	n := c.N()
	h := uint64(fnvOffset)
	if n == 0 {
		return h, 0, 0, nil
	}
	w.Grow(n)
	inWork := w.Marks
	cnt := w.Counts // neighbor count scratch, keyed by vertex
	touched := w.Touched[:0]
	keys := w.Keys[:0]

	if active == nil {
		for s := 0; s < n; s = c.ce[s] {
			if !inWork[s] {
				inWork[s] = true
				w.Queue = append(w.Queue, s)
			}
		}
	} else {
		for _, s := range active {
			if s >= 0 && !inWork[s] {
				inWork[s] = true
				w.Queue = append(w.Queue, s)
			}
		}
	}

	// The worklist pops by head index rather than reslicing, so the
	// queue's backing array survives for the next refinement in this
	// workspace.
	head := 0
	for head < len(w.Queue) {
		if rounds%pollRounds == 0 {
			if err = ctl.Poll(); err != nil {
				break
			}
		}
		ws := w.Queue[head]
		head++
		inWork[ws] = false
		rounds++
		we := c.ce[ws]
		h = mix(h, uint64(ws)<<32|uint64(we))

		// Count splitter-neighbors for every adjacent vertex.
		touched = touched[:0]
		for p := ws; p < we; p++ {
			for _, q32 := range g.Neighbors32(c.lab[p]) {
				q := int(q32)
				if cnt[q] == 0 {
					touched = append(touched, q)
				}
				cnt[q]++
			}
		}
		if len(touched) == 0 {
			if c.nc == n {
				break
			}
			continue
		}
		// Order the touched vertices by (cell, count): positional and
		// count-based, hence isomorphism-invariant. Ties within a
		// fragment are irrelevant to the partition. The sort runs on
		// packed uint64 keys — this is the refinement's hot loop.
		keys = keys[:0]
		for _, v := range touched {
			keys = append(keys, uint64(c.cs[c.pos[v]])<<32|uint64(cnt[v]))
		}
		sortByKeys(keys, touched)
		// Process each touched cell's contiguous group.
		for i := 0; i < len(touched); {
			s := c.cs[c.pos[touched[i]]]
			j := i + 1
			for j < len(touched) && c.cs[c.pos[touched[j]]] == s {
				j++
			}
			var added int
			h, added = c.splitTouched(s, touched[i:j], cnt, h, w)
			splits += int64(added)
			i = j
		}
		for _, v := range touched {
			cnt[v] = 0
		}
		if c.nc == n {
			break
		}
	}
	// Restore the workspace invariants: cells still queued (early break
	// or cancellation) keep their mark only for the queue's lifetime.
	for ; head < len(w.Queue); head++ {
		inWork[w.Queue[head]] = false
	}
	w.Queue = w.Queue[:0]
	w.Touched = touched[:0]
	w.Keys = keys[:0]
	if err != nil {
		return h, rounds, splits, err
	}
	// Fold the final cell structure into the hash.
	for s := 0; s < n; s = c.ce[s] {
		h = mix(h, uint64(s)<<32|uint64(c.ce[s]-s))
	}
	return h, rounds, splits, nil
}

// splitTouched splits the cell starting at s given its touched members
// (sorted by ascending count); untouched members keep count zero and stay
// in place as the first fragment. Runs in O(len(group)). It returns the
// updated trace hash and the number of new cell fragments created. New
// fragments are enqueued on w.Queue per the Hopcroft rule.
func (c *Coloring) splitTouched(s int, group []int, cnt []int, h uint64, w *engine.Workspace) (uint64, int) {
	e := c.ce[s]
	t := len(group)
	zeros := (e - s) - t
	// Distinct counts?
	oneCount := true
	for k := 1; k < t; k++ {
		if cnt[group[k]] != cnt[group[0]] {
			oneCount = false
			break
		}
	}
	if zeros == 0 && oneCount {
		// Whole cell has one uniform count: no split.
		return mix(h, uint64(s)<<32|uint64(cnt[group[0]])), 0
	}
	// Move touched members to the cell's tail, descending count from the
	// back, so fragments end up ordered: zeros first, then ascending
	// counts.
	for k := t - 1; k >= 0; k-- {
		v := group[k]
		target := e - (t - k)
		p := c.pos[v]
		if p != target {
			u := c.lab[target]
			c.lab[target], c.lab[p] = v, u
			c.pos[v], c.pos[u] = target, p
		}
	}
	wasActive := w.Marks[s]
	if wasActive {
		w.Marks[s] = false
	}
	// Fragment boundaries: [s, s+zeros) keeps its cs values; count groups
	// occupy [e-t, e).
	frags := w.Frags[:0]
	if zeros > 0 {
		c.ce[s] = s + zeros
		frags = append(frags, [2]int{s, s + zeros})
		h = mix(h, uint64(s)<<32|uint64(zeros))
		h = mix(h, 0)
	}
	gs := e - t
	for k := 0; k < t; {
		k2 := k + 1
		for k2 < t && cnt[c.lab[gs+k2]] == cnt[c.lab[gs+k]] {
			k2++
		}
		fs, fe := gs+k, gs+k2
		for p := fs; p < fe; p++ {
			c.cs[p] = fs
		}
		c.ce[fs] = fe
		frags = append(frags, [2]int{fs, fe})
		h = mix(h, uint64(fs)<<32|uint64(fe-fs))
		h = mix(h, uint64(cnt[c.lab[fs]]))
		k = k2
	}
	c.nc += len(frags) - 1
	// Hopcroft rule: enqueue all fragments except the largest; if the
	// original cell was pending, enqueue the largest too.
	largest := 0
	for i, f := range frags {
		if f[1]-f[0] > frags[largest][1]-frags[largest][0] {
			largest = i
		}
	}
	for i, f := range frags {
		if i != largest || wasActive {
			if !w.Marks[f[0]] {
				w.Marks[f[0]] = true
				w.Queue = append(w.Queue, f[0])
			}
		}
	}
	w.Frags = frags[:0]
	return h, len(frags) - 1
}

// IsEquitable reports whether c is equitable with respect to g: for every
// pair of cells Vi, Vj, all vertices of Vi have the same number of
// neighbors in Vj (Section 2).
func (c *Coloring) IsEquitable(g *graph.Graph) bool {
	n := c.N()
	for s := 0; s < n; s = c.ce[s] {
		e := c.ce[s]
		if e-s == 1 {
			continue
		}
		// Count per-cell neighbor profile of the first member, compare rest.
		ref := make(map[int]int)
		g.Neighbors(c.lab[s], func(w int) {
			ref[c.cs[c.pos[w]]]++
		})
		for p := s + 1; p < e; p++ {
			got := make(map[int]int)
			g.Neighbors(c.lab[p], func(w int) {
				got[c.cs[c.pos[w]]]++
			})
			if len(got) != len(ref) {
				return false
			}
			for k, v := range ref {
				if got[k] != v {
					return false
				}
			}
		}
	}
	return true
}

// sortByKeys sorts vals by their parallel packed keys ascending
// (quicksort with median-of-three pivots, insertion sort below 16).
func sortByKeys(keys []uint64, vals []int) {
	for len(keys) > 16 {
		p := medianOf3(keys[0], keys[len(keys)/2], keys[len(keys)-1])
		i, j := 0, len(keys)-1
		for i <= j {
			for keys[i] < p {
				i++
			}
			for keys[j] > p {
				j--
			}
			if i <= j {
				keys[i], keys[j] = keys[j], keys[i]
				vals[i], vals[j] = vals[j], vals[i]
				i++
				j--
			}
		}
		if j+1 < len(keys)-i {
			sortByKeys(keys[:j+1], vals[:j+1])
			keys, vals = keys[i:], vals[i:]
		} else {
			sortByKeys(keys[i:], vals[i:])
			keys, vals = keys[:j+1], vals[:j+1]
		}
	}
	for i := 1; i < len(keys); i++ {
		k, v := keys[i], vals[i]
		j := i
		for ; j > 0 && keys[j-1] > k; j-- {
			keys[j] = keys[j-1]
			vals[j] = vals[j-1]
		}
		keys[j] = k
		vals[j] = v
	}
}

func medianOf3(a, b, c uint64) uint64 {
	if (a <= b && b <= c) || (c <= b && b <= a) {
		return b
	}
	if (b <= a && a <= c) || (c <= a && a <= b) {
		return a
	}
	return c
}
