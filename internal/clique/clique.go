// Package clique provides the subgraph-workload substrate of the paper's
// Table 7: maximum-clique search (branch-and-bound with a greedy-coloring
// bound, in the spirit of the authors' own PVLDB'17 solver the paper
// cites) and triangle enumeration (the forward algorithm).
package clique

import (
	"sort"

	"dvicl/internal/graph"
)

// Triangles calls fn for every triangle {a, b, c} (a < b < c) of g using
// the forward algorithm: each edge is oriented from lower to higher
// degree, and triangles are completed by intersecting forward adjacency
// lists. Runs in O(m^1.5).
func Triangles(g *graph.Graph, fn func(a, b, c int)) {
	n := g.N()
	// Order vertices by (degree, id) and keep only forward edges.
	rank := make([]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	for r, v := range order {
		rank[v] = r
	}
	forward := make([][]int32, n)
	for v := 0; v < n; v++ {
		g.Neighbors(v, func(w int) {
			if rank[w] > rank[v] {
				forward[v] = append(forward[v], int32(w))
			}
		})
		sort.Slice(forward[v], func(i, j int) bool { return forward[v][i] < forward[v][j] })
	}
	for v := 0; v < n; v++ {
		for _, w32 := range forward[v] {
			w := int(w32)
			// Intersect forward[v] and forward[w].
			a, b := forward[v], forward[w]
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				switch {
				case a[i] < b[j]:
					i++
				case a[i] > b[j]:
					j++
				default:
					x, y, z := sort3(v, w, int(a[i]))
					fn(x, y, z)
					i++
					j++
				}
			}
		}
	}
}

func sort3(a, b, c int) (int, int, int) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

// CountTriangles returns the number of triangles of g.
func CountTriangles(g *graph.Graph) int64 {
	var count int64
	Triangles(g, func(a, b, c int) { count++ })
	return count
}

// MaxClique returns one maximum clique of g (sorted). The search is
// degeneracy-ordered: each vertex's candidate set is its later neighbors
// in a peeling order, bounding every branch-and-bound subproblem by the
// graph's degeneracy — the technique that makes maximum clique tractable
// on massive sparse graphs (the paper cites the authors' own PVLDB'17
// solver for the same reason).
func MaxClique(g *graph.Graph) []int {
	s := &cliqueSearch{g: g}
	s.runDegeneracy()
	sort.Ints(s.best)
	return s.best
}

// MaxCliques returns every maximum clique of g (as sorted vertex sets),
// up to limit (0 = all). The first return is the clique size.
func MaxCliques(g *graph.Graph, limit int) (int, [][]int) {
	s := &cliqueSearch{g: g}
	s.runDegeneracy()
	if len(s.best) == 0 {
		return 0, nil
	}
	s2 := &cliqueSearch{g: g, collectSize: len(s.best), limit: limit}
	s2.runDegeneracy()
	for _, c := range s2.all {
		sort.Ints(c)
	}
	sort.Slice(s2.all, func(i, j int) bool {
		for k := range s2.all[i] {
			if s2.all[i][k] != s2.all[j][k] {
				return s2.all[i][k] < s2.all[j][k]
			}
		}
		return false
	})
	return len(s.best), s2.all
}

// degeneracyOrder peels minimum-degree vertices, returning the order and
// each vertex's rank.
func degeneracyOrder(g *graph.Graph) (order []int, rank []int) {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	order = make([]int, 0, n)
	rank = make([]int, n)
	cur := 0
	for len(order) < n {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		rank[v] = len(order)
		order = append(order, v)
		g.Neighbors(v, func(w int) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
				if deg[w] < cur {
					cur = deg[w]
				}
			}
		})
	}
	return order, rank
}

// runDegeneracy searches for maximum cliques one degeneracy-ordered
// vertex at a time: the clique containing v (as its earliest vertex in
// the order) lies inside v's later neighborhood, whose size is bounded by
// the degeneracy.
func (s *cliqueSearch) runDegeneracy() {
	n := s.g.N()
	if n == 0 {
		return
	}
	order, rank := degeneracyOrder(s.g)
	for _, v := range order {
		var cand []int
		s.g.Neighbors(v, func(w int) {
			if rank[w] > rank[v] {
				cand = append(cand, w)
			}
		})
		if s.collectSize > 0 {
			if len(cand)+1 < s.collectSize {
				continue
			}
		} else if len(cand)+1 <= len(s.best) {
			continue
		}
		sort.Slice(cand, func(i, j int) bool { return s.g.Degree(cand[i]) > s.g.Degree(cand[j]) })
		s.current = append(s.current[:0], v)
		s.expand(cand)
		s.current = s.current[:0]
		if s.stopped {
			return
		}
	}
	// A single vertex is a clique of size 1 in an edgeless graph.
	if s.collectSize == 0 && len(s.best) == 0 && n > 0 {
		s.best = []int{0}
	}
}

type cliqueSearch struct {
	g           *graph.Graph
	best        []int
	current     []int
	collectSize int // when > 0, collect all cliques of exactly this size
	all         [][]int
	limit       int
	stopped     bool
}

// expand implements Tomita-style branch and bound: candidates are greedily
// colored; the color count bounds the attainable clique size, and vertices
// are tried in reverse color order.
func (s *cliqueSearch) expand(cand []int) {
	if s.stopped {
		return
	}
	if s.collectSize > 0 && len(s.current) == s.collectSize {
		s.report()
		return
	}
	if len(cand) == 0 {
		s.report()
		return
	}
	colors, orderByColor := greedyColor(s.g, cand)
	for i := len(orderByColor) - 1; i >= 0; i-- {
		v := orderByColor[i]
		bound := len(s.current) + colors[i]
		if s.collectSize > 0 {
			if bound < s.collectSize {
				return
			}
		} else if bound <= len(s.best) {
			return
		}
		// Branch on v.
		s.current = append(s.current, v)
		var next []int
		for _, u := range orderByColor[:i] {
			if s.g.HasEdge(v, u) {
				next = append(next, u)
			}
		}
		s.expand(next)
		s.current = s.current[:len(s.current)-1]
		if s.stopped {
			return
		}
	}
	// All candidates excluded: current is maximal among this branch.
	s.report()
}

func (s *cliqueSearch) report() {
	if s.collectSize > 0 {
		if len(s.current) == s.collectSize {
			s.all = append(s.all, append([]int(nil), s.current...))
			if s.limit > 0 && len(s.all) >= s.limit {
				s.stopped = true
			}
		}
		return
	}
	if len(s.current) > len(s.best) {
		s.best = append(s.best[:0], s.current...)
	}
}

// greedyColor colors cand greedily; returns, parallel to the reordered
// candidate list (grouped by color, ascending), each vertex's color index
// + 1 (the clique-size bound when branching at that vertex).
func greedyColor(g *graph.Graph, cand []int) (colors []int, order []int) {
	var classes [][]int
	for _, v := range cand {
		placed := false
		for ci := range classes {
			ok := true
			for _, u := range classes[ci] {
				if g.HasEdge(v, u) {
					ok = false
					break
				}
			}
			if ok {
				classes[ci] = append(classes[ci], v)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{v})
		}
	}
	for ci, class := range classes {
		for _, v := range class {
			order = append(order, v)
			colors = append(colors, ci+1)
		}
	}
	return colors, order
}
