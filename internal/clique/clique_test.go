package clique

import (
	"fmt"
	"math/rand"
	"testing"

	"dvicl/internal/graph"
)

func complete(n int) *graph.Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return graph.FromEdges(n, edges)
}

func randGraph(r *rand.Rand, n, p int) *graph.Graph {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Intn(p) == 0 {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

func bruteTriangles(g *graph.Graph) int64 {
	var count int64
	n := g.N()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if g.HasEdge(a, c) && g.HasEdge(b, c) {
					count++
				}
			}
		}
	}
	return count
}

func bruteMaxCliqueSize(g *graph.Graph) int {
	n := g.N()
	best := 0
	for mask := 1; mask < 1<<n; mask++ {
		var members []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				members = append(members, v)
			}
		}
		if len(members) <= best {
			continue
		}
		ok := true
		for i := 0; i < len(members) && ok; i++ {
			for j := i + 1; j < len(members) && ok; j++ {
				if !g.HasEdge(members[i], members[j]) {
					ok = false
				}
			}
		}
		if ok {
			best = len(members)
		}
	}
	return best
}

func TestTriangleCountKnown(t *testing.T) {
	if got := CountTriangles(complete(5)); got != 10 {
		t.Fatalf("K5 triangles = %d, want 10", got)
	}
	c6 := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	if got := CountTriangles(c6); got != 0 {
		t.Fatalf("C6 triangles = %d, want 0", got)
	}
}

func TestTrianglesMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 30; trial++ {
		g := randGraph(r, 4+r.Intn(14), 2)
		if got, want := CountTriangles(g), bruteTriangles(g); got != want {
			t.Fatalf("triangles = %d, brute force %d (edges=%v)", got, want, g.Edges())
		}
	}
}

func TestTrianglesAreTriangles(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	g := randGraph(r, 20, 2)
	seen := map[string]bool{}
	Triangles(g, func(a, b, c int) {
		if !(a < b && b < c) {
			t.Fatalf("unsorted triangle (%d,%d,%d)", a, b, c)
		}
		if !g.HasEdge(a, b) || !g.HasEdge(b, c) || !g.HasEdge(a, c) {
			t.Fatalf("non-triangle (%d,%d,%d)", a, b, c)
		}
		k := fmt.Sprint(a, b, c)
		if seen[k] {
			t.Fatalf("duplicate triangle %s", k)
		}
		seen[k] = true
	})
}

func TestMaxCliqueKnown(t *testing.T) {
	if got := len(MaxClique(complete(7))); got != 7 {
		t.Fatalf("K7 max clique = %d", got)
	}
	// Two K4s sharing nothing plus noise edges.
	g := graph.FromEdges(9, [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7},
		{3, 4}, {8, 0},
	})
	if got := len(MaxClique(g)); got != 4 {
		t.Fatalf("max clique = %d, want 4", got)
	}
	size, all := MaxCliques(g, 0)
	if size != 4 || len(all) != 2 {
		t.Fatalf("MaxCliques = size %d, %d cliques, want 4 and 2: %v", size, len(all), all)
	}
}

func TestMaxCliqueMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 25; trial++ {
		g := randGraph(r, 4+r.Intn(10), 2)
		got := len(MaxClique(g))
		want := bruteMaxCliqueSize(g)
		if got != want {
			t.Fatalf("max clique %d, brute force %d (edges=%v)", got, want, g.Edges())
		}
	}
}

func TestMaxCliquesValidAndDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	for trial := 0; trial < 15; trial++ {
		g := randGraph(r, 5+r.Intn(8), 2)
		size, all := MaxCliques(g, 0)
		seen := map[string]bool{}
		for _, c := range all {
			if len(c) != size {
				t.Fatalf("clique %v has size %d, want %d", c, len(c), size)
			}
			for i := 0; i < len(c); i++ {
				for j := i + 1; j < len(c); j++ {
					if !g.HasEdge(c[i], c[j]) {
						t.Fatalf("%v is not a clique", c)
					}
				}
			}
			k := fmt.Sprint(c)
			if seen[k] {
				t.Fatalf("duplicate clique %v", c)
			}
			seen[k] = true
		}
	}
}

func TestMaxCliquesLimit(t *testing.T) {
	// K3,3 complement is 2×K3... use two disjoint triangles directly.
	g := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	_, all := MaxCliques(g, 1)
	if len(all) != 1 {
		t.Fatalf("limit ignored: %v", all)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(3, nil)
	if got := len(MaxClique(g)); got != 1 {
		t.Fatalf("edgeless max clique = %d, want 1", got)
	}
	if CountTriangles(g) != 0 {
		t.Fatal("edgeless graph has triangles")
	}
}

func TestMaxCliquesEdgeless(t *testing.T) {
	g := graph.FromEdges(4, nil)
	size, all := MaxCliques(g, 0)
	if size != 1 || len(all) != 4 {
		t.Fatalf("edgeless MaxCliques = %d/%d, want 1/4: %v", size, len(all), all)
	}
	seen := map[int]bool{}
	for _, c := range all {
		if len(c) != 1 || seen[c[0]] {
			t.Fatalf("bad cliques %v", all)
		}
		seen[c[0]] = true
	}
}

func TestMaxCliqueLargeSparse(t *testing.T) {
	// Degeneracy ordering must make a 20k-vertex sparse graph instant.
	r := rand.New(rand.NewSource(85))
	b := graph.NewBuilder(20000)
	for v := 1; v < 20000; v++ {
		for e := 0; e < 3; e++ {
			b.AddEdge(v, r.Intn(v))
		}
	}
	// Plant a K6.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(100+i, 100+j)
		}
	}
	g := b.Build()
	got := MaxClique(g)
	if len(got) < 6 {
		t.Fatalf("planted K6 missed: %v", got)
	}
}
