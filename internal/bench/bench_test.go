package bench

import (
	"strings"
	"testing"
	"time"
)

// tinyCfg keeps harness tests fast: 1/400-scale graphs, one dataset.
func tinyCfg(datasets ...string) Config {
	return Config{Scale: 400, Timeout: 5 * time.Second, MaxSubgraphs: 2000, Datasets: datasets}
}

func TestMeasureReportsCompletion(t *testing.T) {
	m := Measure(func() bool { return true })
	if m.TimedOut {
		t.Fatal("completed run marked timed out")
	}
	m = Measure(func() bool { return false })
	if !m.TimedOut {
		t.Fatal("truncated run not marked")
	}
}

func TestTableFormat(t *testing.T) {
	tb := Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
	}
	out := tb.Format()
	if !strings.Contains(out, "xxx") || !strings.Contains(out, "---") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestConfigDatasetFilter(t *testing.T) {
	cfg := Config{Datasets: []string{"WikiVote"}}
	if !cfg.wants("wikivote") {
		t.Fatal("filter should be case-insensitive")
	}
	if cfg.wants("Amazon") {
		t.Fatal("filter should exclude others")
	}
	if !(Config{}).wants("anything") {
		t.Fatal("empty filter should match all")
	}
}

func TestTable1Rows(t *testing.T) {
	tb := Table1(tinyCfg("wikivote", "Gnutella"))
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	if tb.Rows[0][0] != "Gnutella" && tb.Rows[0][0] != "wikivote" {
		t.Fatalf("unexpected first row %v", tb.Rows[0])
	}
}

func TestTable3Rows(t *testing.T) {
	tb := Table3(tinyCfg("wikivote"))
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 6 {
		t.Fatalf("rows = %v", tb.Rows)
	}
}

func TestTable5RowShape(t *testing.T) {
	tb := Table5(tinyCfg("wikivote"))
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// 1 name column + 6 algorithms × 2 cells.
	if len(tb.Rows[0]) != 13 {
		t.Fatalf("row width = %d, want 13", len(tb.Rows[0]))
	}
}

func TestTable6And7Run(t *testing.T) {
	t6 := Table6(tinyCfg("wikivote"))
	if len(t6.Rows) != 1 || len(t6.Rows[0]) != 5 {
		t.Fatalf("table6 rows = %v", t6.Rows)
	}
	t7 := Table7(tinyCfg("wikivote"))
	if len(t7.Rows) != 1 || len(t7.Rows[0]) != 7 {
		t.Fatalf("table7 rows = %v", t7.Rows)
	}
}

func TestFmtBig(t *testing.T) {
	if got := fmtBig("123"); got != "123" {
		t.Fatalf("fmtBig(123) = %q", got)
	}
	if got := fmtBig("8820000000000000"); got != "8.82E15" {
		t.Fatalf("fmtBig = %q", got)
	}
}

func TestTableSnapshotsInJSON(t *testing.T) {
	tb := Table3(tinyCfg("wikivote"))
	if len(tb.Snapshots) != len(tb.Rows) {
		t.Fatalf("snapshots = %d, rows = %d", len(tb.Snapshots), len(tb.Rows))
	}
	snap, ok := tb.Snapshots[0]["dvicl"]
	if !ok {
		t.Fatalf("no dvicl snapshot: %v", tb.Snapshots[0])
	}
	if snap.Counters["refine_calls"] == 0 {
		t.Fatal("instrumented build recorded no refinement")
	}

	var sb strings.Builder
	if err := tb.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"cells"`, `"counters"`, `"dvicl"`, `"refine_calls"`, `"phases"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("BENCH json missing %s:\n%.400s", want, out)
		}
	}
}
