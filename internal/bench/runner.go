// Package bench is the harness that regenerates every table of the
// paper's evaluation (Section 7): workload construction, timing and
// memory measurement, the six-algorithm comparison (nauty/bliss/traces
// emulations and DviCL+X), SSM on influence-maximization seed sets, and
// subgraph clustering. cmd/benchtables prints the tables; bench_test.go
// wraps them as testing.B benchmarks.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dvicl/internal/obs"
)

// Measurement is one timed run.
type Measurement struct {
	Time time.Duration
	// PeakMB is the sampled peak heap during the run, in MiB (the
	// analogue of the paper's max-memory column; we sample the Go heap
	// rather than RSS, so only relative comparisons are meaningful).
	PeakMB float64
	// Allocs and Bytes are the heap allocation count and total allocated
	// bytes of the run (runtime.MemStats deltas). The background heap
	// sampler contributes a handful of allocations, so tiny runs carry a
	// small constant overhead; the perfbench suite gates on these with a
	// relative tolerance, never exactly.
	Allocs int64
	Bytes  int64
	// TimedOut marks a truncated run (printed as "-", like the paper's
	// two-hour timeouts).
	TimedOut bool
}

// Measure runs fn while sampling heap usage. fn reports whether it
// completed (false = truncated/timeout).
func Measure(fn func() bool) Measurement {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	var peak uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > atomic.LoadUint64(&peak) {
					atomic.StoreUint64(&peak, ms.HeapAlloc)
				}
			}
		}
	}()

	start := time.Now()
	ok := fn()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	var final runtime.MemStats
	runtime.ReadMemStats(&final)
	p := atomic.LoadUint64(&peak)
	if final.HeapAlloc > p {
		p = final.HeapAlloc
	}
	used := float64(0)
	if p > base.HeapAlloc {
		used = float64(p-base.HeapAlloc) / (1 << 20)
	}
	return Measurement{
		Time:     elapsed,
		PeakMB:   used,
		Allocs:   int64(final.Mallocs - base.Mallocs),
		Bytes:    int64(final.TotalAlloc - base.TotalAlloc),
		TimedOut: !ok,
	}
}

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Snapshots, when a table instruments its runs, holds the obs
	// snapshot of every run of row i, keyed by run label (e.g. "dvicl",
	// "nauty", "dvicl+bliss"). It parallels Rows; nil entries (or a nil
	// slice) mean the table was not instrumented. The snapshots ride
	// along into WriteJSON so BENCH_*.json rows carry search-effort
	// counters next to wall times.
	Snapshots []map[string]obs.Snapshot
}

// rowJSON is one table row in the JSON rendering: the printed cells keyed
// by header, plus the per-run counter snapshots when recorded.
type rowJSON struct {
	Cells    map[string]string       `json:"cells"`
	Counters map[string]obs.Snapshot `json:"counters,omitempty"`
}

// tableJSON is the machine-readable rendering of a Table.
type tableJSON struct {
	Title  string    `json:"title"`
	Header []string  `json:"header"`
	Rows   []rowJSON `json:"rows"`
}

// WriteJSON writes the table (cells plus any recorded counter snapshots)
// as indented JSON — the BENCH_*.json format cmd/benchtables emits so perf
// PRs can diff counters, not vibes.
func (t Table) WriteJSON(w io.Writer) error {
	out := tableJSON{Title: t.Title, Header: t.Header}
	for i, row := range t.Rows {
		r := rowJSON{Cells: make(map[string]string, len(row))}
		for j, cell := range row {
			if j < len(t.Header) {
				r.Cells[t.Header[j]] = cell
			}
		}
		if i < len(t.Snapshots) {
			r.Counters = t.Snapshots[i]
		}
		out.Rows = append(out.Rows, r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Format renders the table with aligned columns.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Config controls how the tables run.
type Config struct {
	// Scale divides the paper's real-graph sizes (20 = 1/20 scale).
	Scale int
	// Timeout is the per-algorithm budget standing in for the paper's
	// two hours.
	Timeout time.Duration
	// MaxSubgraphs caps how many triangles/cliques Table 7 clusters.
	MaxSubgraphs int
	// Datasets restricts runs to the named datasets (nil = all).
	Datasets []string
}

// DefaultConfig is a laptop-scale setup: 1/20-size stand-ins and a
// 60-second timeout per algorithm run.
func DefaultConfig() Config {
	return Config{Scale: 20, Timeout: 60 * time.Second, MaxSubgraphs: 200000}
}

func (c Config) wants(name string) bool {
	if len(c.Datasets) == 0 {
		return true
	}
	for _, d := range c.Datasets {
		if strings.EqualFold(d, name) {
			return true
		}
	}
	return false
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

func fmtMB(mb float64) string {
	return fmt.Sprintf("%.1f", mb)
}

// fmtBig renders a big count the way the paper does: plain integers below
// a million, scientific notation above.
func fmtBig(s string) string {
	if len(s) <= 7 {
		return s
	}
	exp := len(s) - 1
	mantissa := s[:1] + "." + s[1:3]
	return fmt.Sprintf("%sE%d", mantissa, exp)
}
