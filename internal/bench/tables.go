package bench

import (
	"fmt"
	"time"

	"dvicl/internal/canon"
	"dvicl/internal/clique"
	"dvicl/internal/core"
	"dvicl/internal/gen"
	"dvicl/internal/graph"
	"dvicl/internal/im"
	"dvicl/internal/obs"
	"dvicl/internal/ssm"
)

// Table1 regenerates the real-graph summary (paper Table 1): sizes,
// degrees, and the orbit-coloring cell counts, side by side with the
// paper's reported values for the full-size originals.
func Table1(cfg Config) Table {
	t := Table{
		Title: fmt.Sprintf("Table 1: real-graph stand-ins at 1/%d scale (paper values for the full-size originals in parentheses)", cfg.Scale),
		Header: []string{"Graph", "|V|", "|E|", "dmax", "davg", "cells", "singleton",
			"paper |V|", "paper cells/|V|", "ours cells/|V|"},
	}
	for _, d := range gen.RealDatasets() {
		if !cfg.wants(d.Name) {
			continue
		}
		g := d.Build(cfg.Scale)
		tree := core.Build(g, nil, core.Options{})
		cells, singles := tree.OrbitStats()
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmt.Sprint(g.N()), fmt.Sprint(g.M()),
			fmt.Sprint(g.MaxDegree()), fmt.Sprintf("%.2f", g.AvgDegree()),
			fmt.Sprint(cells), fmt.Sprint(singles),
			fmt.Sprint(d.Paper.N),
			fmt.Sprintf("%.2f", float64(d.Paper.Cells)/float64(d.Paper.N)),
			fmt.Sprintf("%.2f", float64(cells)/float64(g.N())),
		})
	}
	return t
}

// Table2 regenerates the benchmark-graph summary (paper Table 2).
func Table2(cfg Config) Table {
	t := Table{
		Title:  "Table 2: benchmark graphs (paper values in the trailing columns)",
		Header: []string{"Graph", "|V|", "|E|", "dmax", "davg", "cells", "singleton", "paper |V|", "paper |E|", "paper cells"},
	}
	for _, d := range gen.BenchmarkDatasets() {
		if !cfg.wants(d.Name) {
			continue
		}
		g := d.Build(1)
		tree := core.Build(g, nil, core.Options{LeafTimeout: cfg.Timeout})
		cells, singles := tree.OrbitStats()
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmt.Sprint(g.N()), fmt.Sprint(g.M()),
			fmt.Sprint(g.MaxDegree()), fmt.Sprintf("%.2f", g.AvgDegree()),
			fmt.Sprint(cells), fmt.Sprint(singles),
			fmt.Sprint(d.Paper.N), fmt.Sprint(d.Paper.M), fmt.Sprint(d.Paper.Cells),
		})
	}
	return t
}

func autotreeRow(name string, tree *core.Tree) []string {
	s := tree.Stats()
	return []string{
		name,
		fmt.Sprint(s.Nodes),
		fmt.Sprint(s.SingletonLeaves),
		fmt.Sprint(s.NonSingletonLeaves),
		fmt.Sprintf("%.2f", s.AvgLeafSize),
		fmt.Sprint(s.Depth),
	}
}

// Table3 regenerates the AutoTree structure of the real-graph stand-ins
// (paper Table 3).
func Table3(cfg Config) Table {
	t := Table{
		Title:  fmt.Sprintf("Table 3: AutoTree structure, real-graph stand-ins at 1/%d scale", cfg.Scale),
		Header: []string{"Graph", "|V(AT)|", "singleton", "non-singleton", "avg size", "depth"},
	}
	for _, d := range gen.RealDatasets() {
		if !cfg.wants(d.Name) {
			continue
		}
		g := d.Build(cfg.Scale)
		rec := obs.New()
		tree := core.Build(g, nil, core.Options{Obs: rec})
		t.Rows = append(t.Rows, autotreeRow(d.Name, tree))
		t.Snapshots = append(t.Snapshots, map[string]obs.Snapshot{"dvicl": rec.Snapshot()})
	}
	return t
}

// Table4 regenerates the AutoTree structure of the benchmark graphs
// (paper Table 4).
func Table4(cfg Config) Table {
	t := Table{
		Title:  "Table 4: AutoTree structure, benchmark graphs",
		Header: []string{"Graph", "|V(AT)|", "singleton", "non-singleton", "avg size", "depth"},
	}
	for _, d := range gen.BenchmarkDatasets() {
		if !cfg.wants(d.Name) {
			continue
		}
		g := d.Build(1)
		rec := obs.New()
		tree := core.Build(g, nil, core.Options{LeafTimeout: cfg.Timeout, Obs: rec})
		t.Rows = append(t.Rows, autotreeRow(d.Name, tree))
		t.Snapshots = append(t.Snapshots, map[string]obs.Snapshot{"dvicl": rec.Snapshot()})
	}
	return t
}

// policies is the X lineup of Tables 5 and 8.
var policies = []canon.Policy{canon.PolicyNauty, canon.PolicyTraces, canon.PolicyBliss}

// runComparison measures X and DviCL+X for every policy on one graph.
// Each run records into a fresh obs recorder; the snapshots are returned
// keyed by run label so comparison tables carry search-effort counters
// next to wall times.
func runComparison(g *graph.Graph, timeout time.Duration) ([]string, map[string]obs.Snapshot) {
	var cells []string
	snaps := make(map[string]obs.Snapshot, 2*len(policies))
	for _, pol := range policies {
		// X alone.
		rec := obs.New()
		var res canon.Result
		m := Measure(func() bool {
			res = canon.Canonical(g, nil, canon.Options{Policy: pol, Deadline: time.Now().Add(timeout), Obs: rec})
			return !res.Truncated
		})
		snaps[pol.String()] = rec.Snapshot()
		if m.TimedOut {
			cells = append(cells, "-", "-")
		} else {
			cells = append(cells, fmtDur(m.Time), fmtMB(m.PeakMB))
		}
		// DviCL+X.
		rec = obs.New()
		var tree *core.Tree
		m = Measure(func() bool {
			tree = core.Build(g, nil, core.Options{LeafPolicy: pol, LeafTimeout: timeout, Obs: rec})
			return !tree.Truncated
		})
		snaps["dvicl+"+pol.String()] = rec.Snapshot()
		if m.TimedOut || m.Time > timeout {
			cells = append(cells, "-", "-")
		} else {
			cells = append(cells, fmtDur(m.Time), fmtMB(m.PeakMB))
		}
	}
	return cells, snaps
}

func comparisonHeader() []string {
	h := []string{"Graph"}
	for _, pol := range policies {
		h = append(h,
			pol.String()+" t", pol.String()+" MB",
			"DviCL+"+pol.String()[:1]+" t", "DviCL+"+pol.String()[:1]+" MB")
	}
	return h
}

// Table5 regenerates the six-algorithm time/memory comparison on the
// real-graph stand-ins (paper Table 5). "-" marks a timeout, like the
// paper's two-hour limit.
func Table5(cfg Config) Table {
	t := Table{
		Title: fmt.Sprintf("Table 5: X vs DviCL+X on real-graph stand-ins (1/%d scale, %v timeout; seconds / MiB)",
			cfg.Scale, cfg.Timeout),
		Header: comparisonHeader(),
	}
	for _, d := range gen.RealDatasets() {
		if !cfg.wants(d.Name) {
			continue
		}
		g := d.Build(cfg.Scale)
		cells, snaps := runComparison(g, cfg.Timeout)
		t.Rows = append(t.Rows, append([]string{d.Name}, cells...))
		t.Snapshots = append(t.Snapshots, snaps)
	}
	return t
}

// Table8 regenerates the comparison on the benchmark graphs (paper
// Table 8; the paper reports time only, we add memory for free).
func Table8(cfg Config) Table {
	t := Table{
		Title:  fmt.Sprintf("Table 8: X vs DviCL+X on benchmark graphs (%v timeout; seconds / MiB)", cfg.Timeout),
		Header: comparisonHeader(),
	}
	for _, d := range gen.BenchmarkDatasets() {
		if !cfg.wants(d.Name) {
			continue
		}
		g := d.Build(1)
		cells, snaps := runComparison(g, cfg.Timeout)
		t.Rows = append(t.Rows, append([]string{d.Name}, cells...))
		t.Snapshots = append(t.Snapshots, snaps)
	}
	return t
}

// Table6 regenerates the SSM-on-IM-seeds experiment (paper Table 6): for
// seed sets of size 10 and 100 found by the PMC-style greedy, count the
// candidate seed sets symmetric to them, and time the counting.
func Table6(cfg Config) Table {
	t := Table{
		Title:  fmt.Sprintf("Table 6: symmetric seed sets for IM seeds (1/%d scale)", cfg.Scale),
		Header: []string{"Graph", "|S|=10 number", "time", "|S|=100 number", "time"},
	}
	for _, d := range gen.RealDatasets() {
		if !cfg.wants(d.Name) {
			continue
		}
		g := d.Build(cfg.Scale)
		rec := obs.New()
		tree := core.Build(g, nil, core.Options{Obs: rec})
		ix := ssm.NewIndex(tree)
		ix.SetRecorder(rec)
		// IC probability as in the paper's setup: constant per edge.
		model := im.NewIC(g, 0.05, 64, 42)
		row := []string{d.Name}
		for _, k := range []int{10, 100} {
			seeds := model.Greedy(k)
			start := time.Now()
			count := ix.CountImages(seeds)
			elapsed := time.Since(start)
			row = append(row, fmtBig(count.String()), fmtDur(elapsed))
		}
		t.Rows = append(t.Rows, row)
		t.Snapshots = append(t.Snapshots, map[string]obs.Snapshot{"dvicl+ssm": rec.Snapshot()})
	}
	return t
}

// Table7 regenerates the subgraph-clustering experiment (paper Table 7):
// all maximum cliques and all triangles are clustered into symmetry
// classes via the AutoTree's pattern keys.
func Table7(cfg Config) Table {
	t := Table{
		Title: fmt.Sprintf("Table 7: subgraph clustering by SSM (1/%d scale, ≤%d subgraphs per kind)",
			cfg.Scale, cfg.MaxSubgraphs),
		Header: []string{"Graph", "cliques", "clusters", "max", "triangles", "clusters", "max"},
	}
	for _, d := range gen.RealDatasets() {
		if !cfg.wants(d.Name) {
			continue
		}
		g := d.Build(cfg.Scale)
		tree := core.Build(g, nil, core.Options{})
		ix := ssm.NewIndex(tree)

		cluster := func(sets [][]int) (clusters, max int) {
			counts := map[string]int{}
			for _, s := range sets {
				counts[ix.PatternKey(s)]++
			}
			for _, c := range counts {
				if c > max {
					max = c
				}
			}
			return len(counts), max
		}

		_, cliques := clique.MaxCliques(g, cfg.MaxSubgraphs)
		cc, cm := cluster(cliques)

		var triangles [][]int
		clique.Triangles(g, func(a, b, c int) {
			if cfg.MaxSubgraphs > 0 && len(triangles) >= cfg.MaxSubgraphs {
				return
			}
			triangles = append(triangles, []int{a, b, c})
		})
		tc, tm := cluster(triangles)

		t.Rows = append(t.Rows, []string{
			d.Name,
			fmt.Sprint(len(cliques)), fmt.Sprint(cc), fmt.Sprint(cm),
			fmt.Sprint(len(triangles)), fmt.Sprint(tc), fmt.Sprint(tm),
		})
	}
	return t
}
