package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"dvicl/internal/core"
	"dvicl/internal/engine"
	"dvicl/internal/gen"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
)

// testStream builds a graph6 stream of k graphs drawn from `classes`
// distinct ER classes (relabeled copies beyond the first occurrence), and
// returns the stream plus the graphs in order.
func testStream(t *testing.T, k, classes int) (string, []*graph.Graph) {
	t.Helper()
	var sb strings.Builder
	var gs []*graph.Graph
	for i := 0; i < k; i++ {
		g := gen.ErdosRenyi(12, 20, int64(1000+i%classes))
		if i >= classes {
			// Relabel with a rotation so duplicates are not byte-identical.
			perm := make([]int, g.N())
			for v := range perm {
				perm[v] = (v + 1 + i) % g.N()
			}
			g = g.Permute(perm)
		}
		s, err := graph.ToGraph6(g)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(s)
		sb.WriteByte('\n')
		gs = append(gs, g)
	}
	return sb.String(), gs
}

func canonFn(ctx context.Context, g *graph.Graph, ws *engine.Workspace, rec *obs.Recorder) (string, error) {
	t, err := core.BuildCtx(ctx, g, nil, core.Options{Obs: rec, Workspace: ws})
	if err != nil {
		return "", err
	}
	return string(t.CanonicalCert()), nil
}

// runCollect runs the pipeline over a graph6 stream and returns the
// certificates in apply order.
func runCollect(t *testing.T, in string, workers int, rec *obs.Recorder) ([]string, *Report) {
	t.Helper()
	var certs []string
	lastSeq := int64(-1)
	rep, err := Run(Config{
		Workers: workers,
		Decode:  graph.FromGraph6,
		Canon:   canonFn,
		Apply: func(seq int64, cert string) error {
			if seq <= lastSeq {
				t.Fatalf("apply out of order: seq %d after %d", seq, lastSeq)
			}
			lastSeq = seq
			certs = append(certs, cert)
			return nil
		},
		Obs: rec,
	}, ScannerSource(graph.NewGraph6Scanner(strings.NewReader(in))))
	if err != nil {
		t.Fatal(err)
	}
	return certs, rep
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	in, _ := testStream(t, 60, 7)
	serial, rep1 := runCollect(t, in, 1, nil)
	parallel, repN := runCollect(t, in, 8, nil)
	if rep1.Records != 60 || repN.Records != 60 {
		t.Fatalf("records = %d/%d, want 60", rep1.Records, repN.Records)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("applied %d vs %d certs", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cert %d differs between 1-worker and 8-worker runs", i)
		}
	}
	// 7 distinct classes across 60 records.
	uniq := map[string]bool{}
	for _, c := range serial {
		uniq[c] = true
	}
	if len(uniq) != 7 {
		t.Fatalf("distinct certs = %d, want 7", len(uniq))
	}
}

func TestRunCountsDecodeErrors(t *testing.T) {
	good, _ := testStream(t, 5, 5)
	in := "~~~garbage\n" + good + "!!!\n"
	rec := obs.New()
	certs, rep := runCollect(t, in, 4, rec)
	if len(certs) != 5 {
		t.Fatalf("applied %d certs, want 5", len(certs))
	}
	if rep.Records != 7 || rep.DecodeErrors != 2 || rep.Applied != 5 {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.Errors) != 2 {
		t.Fatalf("sampled errors: %+v", rep.Errors)
	}
	if rep.Errors[0].Seq != 0 || rep.Errors[0].Line != 1 {
		t.Fatalf("first error position: %+v", rep.Errors[0])
	}
	if got := rec.Counter(obs.BulkRecords); got != 7 {
		t.Fatalf("bulk_records = %d, want 7", got)
	}
	if got := rec.Counter(obs.BulkDecodeErrors); got != 2 {
		t.Fatalf("bulk_decode_errors = %d, want 2", got)
	}
}

func TestRunMergesWorkerRecorders(t *testing.T) {
	in, _ := testStream(t, 24, 4)
	rec := obs.New()
	_, rep := runCollect(t, in, 6, rec)
	if rep.Applied != 24 {
		t.Fatalf("applied = %d", rep.Applied)
	}
	// Every canonicalization runs at least one refinement; the merged
	// recorder must have collected work from the worker recorders.
	if got := rec.Counter(obs.RefineCalls); got == 0 {
		t.Fatal("merged recorder saw no refine calls — worker recorders not merged")
	}
	ps, ok := rec.Snapshot().Phases[obs.PhaseBulkIngest.String()]
	if !ok || ps.Count != 1 {
		t.Fatalf("bulk_ingest phase: %+v", ps)
	}
}

func TestRunApplyErrorAborts(t *testing.T) {
	in, _ := testStream(t, 40, 40)
	boom := errors.New("sink full")
	applied := 0
	_, err := Run(Config{
		Workers: 4,
		Decode:  graph.FromGraph6,
		Canon:   canonFn,
		Apply: func(seq int64, cert string) error {
			if seq == 10 {
				return boom
			}
			applied++
			return nil
		},
	}, ScannerSource(graph.NewGraph6Scanner(strings.NewReader(in))))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped sink error", err)
	}
	if applied != 10 {
		t.Fatalf("applied %d records before abort, want 10", applied)
	}
}

func TestRunSourceErrorSurfaces(t *testing.T) {
	bad := errors.New("disk gone")
	n := 0
	src := func() (string, int, bool, error) {
		n++
		if n > 3 {
			return "", 0, false, bad
		}
		return "A_", n, true, nil
	}
	rep, err := Run(Config{
		Workers: 2,
		Decode:  graph.FromGraph6,
		Canon:   canonFn,
		Apply:   func(int64, string) error { return nil },
	}, src)
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want wrapped source error", err)
	}
	if rep.Applied != 3 {
		t.Fatalf("applied = %d, want 3 records before the source failed", rep.Applied)
	}
}

func TestSliceSource(t *testing.T) {
	src := SliceSource([]string{"a", "b"}, 10)
	for i, want := range []string{"a", "b"} {
		raw, line, ok, err := src()
		if err != nil || !ok || raw != want || line != 10+i {
			t.Fatalf("record %d: %q line=%d ok=%v err=%v", i, raw, line, ok, err)
		}
	}
	if _, _, ok, err := src(); ok || err != nil {
		t.Fatalf("EOF: ok=%v err=%v", ok, err)
	}
}

func TestEdgeListSource(t *testing.T) {
	in := "0 1\n1 2\n\n0 1\n"
	var ms []int
	_, err := Run(Config{
		Workers: 2,
		Decode: func(raw string) (*graph.Graph, error) {
			return graph.ReadEdgeList(strings.NewReader(raw))
		},
		Canon: canonFn,
		Apply: func(seq int64, cert string) error {
			ms = append(ms, len(cert))
			return nil
		},
	}, EdgeListSource(graph.NewEdgeListScanner(strings.NewReader(in))))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("applied %d edge-list records, want 2", len(ms))
	}
}

// TestRunRace hammers the pipeline under -race: many workers, a small
// queue, and an applier that also reads the report fields.
func TestRunRace(t *testing.T) {
	in, _ := testStream(t, 200, 11)
	rec := obs.New()
	var certs []string
	rep, err := Run(Config{
		Workers: 16,
		Queue:   2,
		Decode:  graph.FromGraph6,
		Canon:   canonFn,
		Apply: func(seq int64, cert string) error {
			certs = append(certs, cert)
			return nil
		},
		Obs: rec,
	}, ScannerSource(graph.NewGraph6Scanner(strings.NewReader(in))))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 200 || len(certs) != 200 {
		t.Fatalf("applied = %d/%d", rep.Applied, len(certs))
	}
	uniq := map[string]bool{}
	for _, c := range certs {
		uniq[c] = true
	}
	if len(uniq) != 11 {
		t.Fatalf("distinct classes = %d, want 11", len(uniq))
	}
	if got := rec.Counter(obs.BulkRecords); got != 200 {
		t.Fatalf("bulk_records = %d", got)
	}
}

func ExampleRun() {
	// Three graphs, two isomorphism classes (the square appears twice,
	// relabeled).
	in := "Cr\nCl\nBw\n"
	classes := map[string]int64{}
	rep, _ := Run(Config{
		Workers: 2,
		Decode:  graph.FromGraph6,
		Canon:   canonFn,
		Apply: func(seq int64, cert string) error {
			classes[cert]++
			return nil
		},
	}, ScannerSource(graph.NewGraph6Scanner(strings.NewReader(in))))
	fmt.Println(rep.Applied, len(classes))
	// Output: 3 2
}

// TestRunCanceledMidStream cancels the run context partway through and
// requires a prompt, leak-free abort with a typed error and a partial
// report.
func TestRunCanceledMidStream(t *testing.T) {
	in, _ := testStream(t, 200, 10)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	applied := int64(0)
	rep, err := Run(Config{
		Ctx:     ctx,
		Workers: 8,
		Queue:   2,
		Decode:  graph.FromGraph6,
		Canon:   canonFn,
		Apply: func(seq int64, cert string) error {
			applied++
			if applied == 5 {
				cancel()
			}
			return nil
		},
	}, ScannerSource(graph.NewGraph6Scanner(strings.NewReader(in))))
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if !errors.Is(err, engine.ErrCanceled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled or context.Canceled", err)
	}
	if rep.Applied != applied || applied < 5 {
		t.Fatalf("report.Applied = %d, applier saw %d", rep.Applied, applied)
	}
	if rep.Applied >= 200 {
		t.Fatal("canceled run processed the whole stream")
	}
	// Run's contract: every worker has exited by return. Allow the
	// runtime a moment to reap the reader.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunPreCanceled: a context canceled before Run starts yields an
// error and applies nothing.
func TestRunPreCanceled(t *testing.T) {
	in, _ := testStream(t, 20, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(Config{
		Ctx:     ctx,
		Workers: 4,
		Decode:  graph.FromGraph6,
		Canon:   canonFn,
		Apply:   func(int64, string) error { return nil },
	}, ScannerSource(graph.NewGraph6Scanner(strings.NewReader(in))))
	if err == nil {
		t.Fatal("pre-canceled run returned nil error")
	}
	if rep.Applied != 0 {
		t.Fatalf("pre-canceled run applied %d records", rep.Applied)
	}
}
