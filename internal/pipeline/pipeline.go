// Package pipeline is the streaming bulk-ingest subsystem: it turns a
// stream of encoded graph records into canonical certificates at
// full-core speed and applies them, in input order, to a sink (normally
// the sharded dvicl.GraphIndex).
//
// The shape is a classic bounded three-stage pipeline:
//
//		reader ──feed──▶ workers (decode + canonicalize) ──results──▶ applier
//
//	  - The reader pulls records from a Source one at a time — the source
//	    streams (graph.Graph6Scanner / graph.EdgeListScanner), so a
//	    multi-gigabyte file is never buffered.
//	  - A bounded pool of workers decodes and canonicalizes records in
//	    parallel. Canonicalization (the DviCL build) dominates, which is
//	    why this stage is the wide one. Each worker records observability
//	    into a private recorder, merged into the shared one on completion —
//	    zero cross-core contention on the hot path.
//	  - The applier runs on the calling goroutine and applies results in
//	    sequence order, using a reorder buffer keyed by the sequence number
//	    stamped on each record. Output is therefore deterministic: the same
//	    input stream produces the same Apply call sequence regardless of
//	    worker count or scheduling.
//
// Both channels are bounded, so a slow sink backpressures the workers and
// a slow disk backpressures the reader; memory is O(workers + queue), not
// O(input).
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"dvicl/internal/engine"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
)

// Source yields the next raw record of a stream: its text, its 1-based
// line (or record start line) in the input for error reporting, and
// whether a record was produced. A false ok with nil err is clean EOF; a
// non-nil err aborts the run.
type Source func() (raw string, line int, ok bool, err error)

// Config wires one pipeline run.
type Config struct {
	// Ctx bounds the whole run: when it is canceled (client disconnect,
	// SIGINT, deadline) the reader stops feeding, in-flight builds abort
	// at their next cancellation checkpoint, and Run returns the partial
	// report with an error wrapping the cause. nil means
	// context.Background() (never canceled).
	Ctx context.Context
	// Workers is the canonicalization pool width. 0 means runtime.NumCPU().
	Workers int
	// Queue bounds the feed and result channels. 0 means 4×Workers.
	Queue int
	// Decode materializes a raw record (e.g. graph.FromGraph6). Required.
	Decode func(raw string) (*graph.Graph, error)
	// Canon builds the canonical certificate of a decoded graph under
	// ctx, reporting effort into rec (a per-worker recorder; may be nil
	// when Obs is nil). ws is the worker's checked-out engine workspace:
	// the pipeline holds one per worker for the whole run, so callers
	// that thread it into the build (core.Options.Workspace) pay the
	// workspace-pool round-trip once per worker instead of once per
	// record. A non-nil error is *fatal* — unlike a Decode error, it
	// aborts the run, because the only errors a build can produce are
	// cancellation and budget exhaustion, which apply to the run as a
	// whole. Required.
	Canon func(ctx context.Context, g *graph.Graph, ws *engine.Workspace, rec *obs.Recorder) (string, error)
	// Apply consumes one certificate. Called from the Run goroutine only,
	// in exactly input order (seq 0, 1, 2, … with decode failures
	// skipped). A non-nil error aborts the run. Required.
	Apply func(seq int64, cert string) error
	// Obs receives the pipeline counters (bulk_records,
	// bulk_decode_errors) and the merged per-worker recorders. May be nil.
	Obs *obs.Recorder
}

// RecordError describes one rejected input record.
type RecordError struct {
	Seq  int64  `json:"seq"`
	Line int    `json:"line"`
	Err  string `json:"error"`
}

// maxReportErrors caps how many RecordErrors a Report retains; the total
// count is always exact.
const maxReportErrors = 20

// Report summarizes one pipeline run.
type Report struct {
	// Records is how many records the source yielded; Applied of them
	// were canonicalized and handed to Apply, DecodeErrors were rejected
	// by the decoder (first maxReportErrors detailed in Errors).
	Records      int64         `json:"records"`
	Applied      int64         `json:"applied"`
	DecodeErrors int64         `json:"decode_errors"`
	Errors       []RecordError `json:"errors,omitempty"`

	// Workers is the resolved pool width; ElapsedSeconds and
	// GraphsPerSec measure the whole run including stream read time.
	Workers        int     `json:"workers"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	GraphsPerSec   float64 `json:"graphs_per_sec"`
}

// result is one worker's output, tagged with the record's sequence
// number so the applier can restore input order. err is a per-record
// decode failure (counted, not fatal); fatal is a canonicalization
// failure (cancellation / budget), which aborts the run.
type result struct {
	seq   int64
	line  int
	cert  string
	err   error
	fatal error
}

// record is one unit of reader→worker work.
type record struct {
	seq  int64
	line int
	raw  string
}

// Run streams src through the pipeline. It returns when the source is
// exhausted (report, nil), or on the first source/canonicalize/apply
// error (partial report, err) — cancellation of cfg.Ctx surfaces as a
// canonicalize error wrapping engine.ErrCanceled. Decode errors do not
// abort the run; they are counted and sampled in the report. Whatever
// the outcome, Run returns only after every worker goroutine has exited.
func Run(cfg Config, src Source) (*Report, error) {
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	queue := cfg.Queue
	if queue <= 0 {
		queue = 4 * workers
	}
	// One "bulk_ingest" span summarizes the whole run on the request's
	// trace; the workers run detached — hundreds of concurrent builds
	// tracing span-per-node into one tree would only hit the span cap and
	// serialize on the trace mutex, so per-record effort flows through the
	// private worker recorders (Merge forwards the deltas to the trace's
	// recorder when cfg.Obs is one) instead of spans.
	tr := obs.TraceFrom(ctx)
	ts := tr.StartSpan(obs.SpanFrom(ctx), "bulk_ingest")
	defer ts.End()
	if tr != nil {
		// Same redirect as core.BuildCtx: cfg.Obs should be the trace's
		// base recorder, so recording through the trace keeps per-request
		// deltas while the base still sees every increment once.
		cfg.Obs = tr.Recorder()
		ctx = obs.DetachTrace(ctx)
	}
	span := cfg.Obs.StartPhase(obs.PhaseBulkIngest)
	defer span.End()
	start := time.Now()

	feed := make(chan record, queue)
	results := make(chan result, queue)
	stop := make(chan struct{}) // closed by the applier on terminal error

	// Reader: source → feed.
	var readErr error
	go func() {
		defer close(feed)
		for seq := int64(0); ; seq++ {
			raw, line, ok, err := src()
			if err != nil {
				readErr = err
				return
			}
			if !ok {
				return
			}
			select {
			case feed <- record{seq: seq, line: line, raw: raw}:
			case <-stop:
				return
			case <-ctx.Done():
				// Record the cancellation: otherwise a cancel that lands
				// between builds would masquerade as clean EOF.
				readErr = context.Cause(ctx)
				return
			}
		}
	}()

	// Workers: feed → results, each with a private recorder.
	workerRecs := make([]*obs.Recorder, workers)
	done := make(chan int, workers) // worker index, sent on drain
	for w := 0; w < workers; w++ {
		var rec *obs.Recorder
		if cfg.Obs != nil {
			rec = obs.New()
		}
		workerRecs[w] = rec
		go func(w int, rec *obs.Recorder) {
			defer func() { done <- w }()
			// One workspace per worker for the whole run (sized lazily by
			// each build), not one pool round-trip per record.
			ws := engine.GetWorkspace(0)
			defer engine.PutWorkspace(ws)
			for r := range feed {
				g, err := cfg.Decode(r.raw)
				res := result{seq: r.seq, line: r.line}
				if err != nil {
					res.err = err
				} else if cert, cerr := cfg.Canon(ctx, g, ws, rec); cerr != nil {
					res.fatal = cerr
				} else {
					res.cert = cert
				}
				select {
				case results <- res:
				case <-stop:
					return
				}
			}
		}(w, rec)
	}
	go func() {
		for w := 0; w < workers; w++ {
			<-done
		}
		close(results)
	}()

	// Applier (this goroutine): results → sink, restored to seq order. A
	// fatal (canonicalize) result aborts on receipt — no point restoring
	// order for a run that is already dead.
	report := &Report{Workers: workers}
	var applyErr, canonErr error
	var canonSeq int64
	pending := make(map[int64]result)
	next := int64(0)
	for res := range results {
		if res.fatal != nil {
			canonErr, canonSeq = res.fatal, res.seq
			break
		}
		pending[res.seq] = res
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			report.Records++
			cfg.Obs.Inc(obs.BulkRecords)
			if r.err != nil {
				report.DecodeErrors++
				cfg.Obs.Inc(obs.BulkDecodeErrors)
				if len(report.Errors) < maxReportErrors {
					report.Errors = append(report.Errors, RecordError{
						Seq: r.seq, Line: r.line, Err: r.err.Error(),
					})
				}
				continue
			}
			if err := cfg.Apply(r.seq, r.cert); err != nil {
				applyErr = err
				break
			}
			report.Applied++
		}
		if applyErr != nil {
			break
		}
	}
	if applyErr != nil || canonErr != nil {
		// Unblock the reader and any worker parked on a full channel,
		// then drain results so every worker observes feed closed.
		close(stop)
		for range results {
		}
	}
	for _, rec := range workerRecs {
		cfg.Obs.Merge(rec)
	}
	ts.SetAttr("records", report.Records)
	ts.SetAttr("applied", report.Applied)
	ts.SetAttr("decode_errors", report.DecodeErrors)

	report.ElapsedSeconds = time.Since(start).Seconds()
	if report.ElapsedSeconds > 0 {
		report.GraphsPerSec = float64(report.Applied) / report.ElapsedSeconds
	}
	switch {
	case canonErr != nil:
		return report, fmt.Errorf("pipeline: canonicalize record %d: %w", canonSeq, canonErr)
	case applyErr != nil:
		return report, fmt.Errorf("pipeline: apply record %d: %w", next-1, applyErr)
	case readErr != nil:
		return report, fmt.Errorf("pipeline: read: %w", readErr)
	}
	return report, nil
}

// ScannerSource adapts a graph.Graph6Scanner to a Source.
func ScannerSource(sc *graph.Graph6Scanner) Source {
	return func() (string, int, bool, error) {
		if sc.Scan() {
			return sc.Text(), sc.Line(), true, nil
		}
		return "", 0, false, sc.Err()
	}
}

// EdgeListSource adapts a graph.EdgeListScanner to a Source.
func EdgeListSource(sc *graph.EdgeListScanner) Source {
	return func() (string, int, bool, error) {
		if sc.Scan() {
			return sc.Text(), sc.Line(), true, nil
		}
		return "", 0, false, sc.Err()
	}
}

// SliceSource yields the records of a slice in order, numbering lines
// from firstLine. The indexd /bulk endpoint uses it to run one bounded
// chunk of a long-lived stream per admission token.
func SliceSource(recs []string, firstLine int) Source {
	i := 0
	return func() (string, int, bool, error) {
		if i >= len(recs) {
			return "", 0, false, nil
		}
		raw := recs[i]
		line := firstLine + i
		i++
		return raw, line, true, nil
	}
}
