package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		p := Identity(n)
		r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
		s := SparseFromDense(p)
		return s.Dense().Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseImage(t *testing.T) {
	p, _ := ParseCycles("(1,3)(5,6)", 8)
	s := SparseFromDense(p)
	if len(s.Moved) != 4 {
		t.Fatalf("moved = %v", s.Moved)
	}
	for v := 0; v < 8; v++ {
		if s.Image(v) != p.Image(v) {
			t.Fatalf("image(%d) = %d, want %d", v, s.Image(v), p.Image(v))
		}
	}
}

func TestSparseIdentity(t *testing.T) {
	s := SparseFromDense(Identity(10))
	if !s.IsIdentity() {
		t.Fatal("identity not detected")
	}
	if !s.Dense().IsIdentity() {
		t.Fatal("dense identity wrong")
	}
}

func TestSparseTransposition(t *testing.T) {
	s := Sparse{N: 5, Moved: [][2]int{{1, 3}, {3, 1}}}
	d := s.Dense()
	if d[1] != 3 || d[3] != 1 || d[0] != 0 {
		t.Fatalf("dense = %v", d)
	}
	if s.IsIdentity() {
		t.Fatal("transposition flagged as identity")
	}
}
