package perm

// Sparse is a permutation stored by its moved points only — the natural
// representation for automorphism generators of large graphs, which move
// a handful of vertices (twin swaps, small subtree swaps) out of millions.
type Sparse struct {
	// N is the degree of the permutation.
	N int
	// Moved lists (v, image) pairs for every v with image ≠ v.
	Moved [][2]int
}

// SparseFromDense extracts the moved points of p.
func SparseFromDense(p Perm) Sparse {
	s := Sparse{N: len(p)}
	for v, img := range p {
		if v != img {
			s.Moved = append(s.Moved, [2]int{v, img})
		}
	}
	return s
}

// Dense materializes the full image array.
func (s Sparse) Dense() Perm {
	p := Identity(s.N)
	for _, m := range s.Moved {
		p[m[0]] = m[1]
	}
	return p
}

// Image returns the image of v (v itself if unmoved). Lookup is linear in
// the number of moved points, which is small by construction.
func (s Sparse) Image(v int) int {
	for _, m := range s.Moved {
		if m[0] == v {
			return m[1]
		}
	}
	return v
}

// IsIdentity reports whether the permutation moves nothing.
func (s Sparse) IsIdentity() bool { return len(s.Moved) == 0 }
