// Package perm implements permutations of {0, …, n−1} with the operations
// the paper's algorithms need: composition, inversion, application to
// vertices, edges and colorings, and the cycle notation used throughout
// Section 2 of the paper.
package perm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Perm is a permutation of {0, …, n−1}. p[v] is the image of v, written vᵞ
// in the paper. The zero-length Perm is the identity on the empty set.
type Perm []int

// Identity returns the identity permutation ι on n elements.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// New validates that images is a bijection on {0,…,len(images)−1} and
// returns it as a Perm.
func New(images []int) (Perm, error) {
	seen := make([]bool, len(images))
	for v, img := range images {
		if img < 0 || img >= len(images) {
			return nil, fmt.Errorf("perm: image %d of %d out of range [0,%d)", img, v, len(images))
		}
		if seen[img] {
			return nil, fmt.Errorf("perm: image %d appears twice", img)
		}
		seen[img] = true
	}
	return Perm(images), nil
}

// N returns the number of elements the permutation acts on.
func (p Perm) N() int { return len(p) }

// Image returns vᵞ, the image of v under p.
func (p Perm) Image(v int) int { return p[v] }

// IsIdentity reports whether p maps every element to itself.
func (p Perm) IsIdentity() bool {
	for v, img := range p {
		if v != img {
			return false
		}
	}
	return true
}

// IsValid reports whether p is a bijection on {0,…,n−1}.
func (p Perm) IsValid() bool {
	_, err := New(p)
	return err == nil
}

// Clone returns a copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Compose returns the permutation r = p∘q acting as r(v) = q(p(v)):
// first apply p, then q. This matches the paper's convention where
// ν^(γδ) applies γ first.
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic("perm: compose length mismatch")
	}
	r := make(Perm, len(p))
	for v := range p {
		r[v] = q[p[v]]
	}
	return r
}

// Inverse returns γ⁻¹.
func (p Perm) Inverse() Perm {
	r := make(Perm, len(p))
	for v, img := range p {
		r[img] = v
	}
	return r
}

// Cycles returns the cycle decomposition of p, omitting fixed points.
// Each cycle starts at its minimum element; cycles are sorted by their
// minimum element, giving a deterministic representation.
func (p Perm) Cycles() [][]int {
	var cycles [][]int
	seen := make([]bool, len(p))
	for start := range p {
		if seen[start] || p[start] == start {
			seen[start] = true
			continue
		}
		var c []int
		for v := start; !seen[v]; v = p[v] {
			seen[v] = true
			c = append(c, v)
		}
		cycles = append(cycles, c)
	}
	return cycles
}

// String renders p in the cycle notation used by the paper, e.g.
// "(0,6)(1,5)(2,3,4)". The identity renders as "()".
func (p Perm) String() string {
	cycles := p.Cycles()
	if len(cycles) == 0 {
		return "()"
	}
	var b strings.Builder
	for _, c := range cycles {
		b.WriteByte('(')
		for i, v := range c {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(v))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// ParseCycles parses cycle notation such as "(0,6)(1,5)(2,3,4)" into a
// permutation on n elements. Elements not mentioned are fixed. "()" and
// the empty string parse to the identity.
func ParseCycles(s string, n int) (Perm, error) {
	p := Identity(n)
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		if s[0] != '(' {
			return nil, fmt.Errorf("perm: expected '(' at %q", s)
		}
		end := strings.IndexByte(s, ')')
		if end < 0 {
			return nil, fmt.Errorf("perm: unclosed cycle in %q", s)
		}
		body := strings.TrimSpace(s[1:end])
		s = strings.TrimSpace(s[end+1:])
		if body == "" {
			continue
		}
		parts := strings.Split(body, ",")
		cycle := make([]int, len(parts))
		for i, part := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("perm: bad element %q: %v", part, err)
			}
			if v < 0 || v >= n {
				return nil, fmt.Errorf("perm: element %d out of range [0,%d)", v, n)
			}
			cycle[i] = v
		}
		for i, v := range cycle {
			next := cycle[(i+1)%len(cycle)]
			if p[v] != v {
				return nil, fmt.Errorf("perm: element %d in two cycles", v)
			}
			p[v] = next
		}
	}
	if !p.IsValid() {
		return nil, fmt.Errorf("perm: cycles do not form a permutation")
	}
	return p, nil
}

// Apply returns the image of the vertex set vs under p, sorted.
func (p Perm) Apply(vs []int) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = p[v]
	}
	sort.Ints(out)
	return out
}

// Order returns the multiplicative order of p (the lcm of its cycle
// lengths). The identity has order 1.
func (p Perm) Order() int {
	order := 1
	for _, c := range p.Cycles() {
		order = lcm(order, len(c))
	}
	return order
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
