package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPerm(r *rand.Rand, n int) Perm {
	p := Identity(n)
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestIdentity(t *testing.T) {
	p := Identity(5)
	if !p.IsIdentity() {
		t.Fatalf("Identity(5) not identity: %v", p)
	}
	if p.String() != "()" {
		t.Fatalf("identity string = %q", p.String())
	}
	if p.Order() != 1 {
		t.Fatalf("identity order = %d", p.Order())
	}
}

func TestNewRejectsBad(t *testing.T) {
	if _, err := New([]int{0, 0, 2}); err == nil {
		t.Fatal("duplicate image accepted")
	}
	if _, err := New([]int{0, 3, 1}); err == nil {
		t.Fatal("out-of-range image accepted")
	}
	if _, err := New([]int{2, 0, 1}); err != nil {
		t.Fatalf("valid perm rejected: %v", err)
	}
}

func TestComposeOrder(t *testing.T) {
	// p = (0 1), q = (1 2). p∘q first applies p then q:
	// 0 →p 1 →q 2, so (p∘q)(0) must be 2.
	p, _ := ParseCycles("(0,1)", 3)
	q, _ := ParseCycles("(1,2)", 3)
	r := p.Compose(q)
	if r.Image(0) != 2 {
		t.Fatalf("compose convention wrong: got %d want 2", r.Image(0))
	}
}

func TestInverseProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		p := randomPerm(r, 1+r.Intn(40))
		if !p.Compose(p.Inverse()).IsIdentity() {
			t.Fatalf("p∘p⁻¹ != id for %v", p)
		}
		if !p.Inverse().Compose(p).IsIdentity() {
			t.Fatalf("p⁻¹∘p != id for %v", p)
		}
	}
}

func TestCycleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		n := 1 + r.Intn(30)
		p := randomPerm(r, n)
		q, err := ParseCycles(p.String(), n)
		if err != nil {
			t.Fatalf("parse %q: %v", p.String(), err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip %v -> %q -> %v", p, p.String(), q)
		}
	}
}

func TestParseCyclesPaperExample(t *testing.T) {
	// γ0 = (0,6)(1,5)(2,3,4) from Fig. 1(b) discussion.
	p, err := ParseCycles("(0,6)(1,5)(2,3,4)", 8)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 6, 6: 0, 1: 5, 5: 1, 2: 3, 3: 4, 4: 2, 7: 7}
	for v, img := range want {
		if p.Image(v) != img {
			t.Fatalf("image(%d) = %d, want %d", v, p.Image(v), img)
		}
	}
	if p.Order() != 6 {
		t.Fatalf("order = %d, want lcm(2,2,3)=6", p.Order())
	}
}

func TestParseCyclesErrors(t *testing.T) {
	for _, s := range []string{"(0,1", "0,1)", "(0,9)", "(x)", "(0,1)(1,2)"} {
		if _, err := ParseCycles(s, 4); err == nil {
			t.Errorf("ParseCycles(%q) accepted", s)
		}
	}
}

func TestApplySorted(t *testing.T) {
	p, _ := ParseCycles("(0,3)(1,2)", 4)
	got := p.Apply([]int{0, 1})
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Apply = %v, want [2 3]", got)
	}
}

func TestQuickComposeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(25)
		p, q, s := randomPerm(rr, n), randomPerm(rr, n), randomPerm(rr, n)
		return p.Compose(q).Compose(s).Equal(p.Compose(q.Compose(s)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrderAnnihilates(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(12)
		p := randomPerm(rr, n)
		acc := Identity(n)
		for i := 0; i < p.Order(); i++ {
			acc = acc.Compose(p)
		}
		return acc.IsIdentity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: r}); err != nil {
		t.Fatal(err)
	}
}
