package gf

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsNonPrimePower(t *testing.T) {
	for _, q := range []int{6, 10, 12, 15, 100} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d) accepted a non-prime-power", q)
		}
	}
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 16, 25, 27, 49, 64, 81} {
		if _, err := New(q); err != nil {
			t.Errorf("New(%d): %v", q, err)
		}
	}
}

// fieldAxioms checks the field axioms exhaustively for small q and by
// property sampling for larger q.
func fieldAxioms(t *testing.T, q int) {
	t.Helper()
	f, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, b, c int) bool {
		// Commutativity.
		if f.Add(a, b) != f.Add(b, a) || f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		// Associativity.
		if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
			return false
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		// Distributivity.
		if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
			return false
		}
		// Identities.
		if f.Add(a, 0) != a || f.Mul(a, 1) != a {
			return false
		}
		// Inverses.
		if f.Add(a, f.Neg(a)) != 0 {
			return false
		}
		if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
			return false
		}
		return true
	}
	if q <= 16 {
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				for c := 0; c < q; c++ {
					if !check(a, b, c) {
						t.Fatalf("GF(%d) axiom failed at (%d,%d,%d)", q, a, b, c)
					}
				}
			}
		}
		return
	}
	fn := func(a, b, c uint16) bool {
		return check(int(a)%q, int(b)%q, int(c)%q)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatalf("GF(%d): %v", q, err)
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 16, 25, 49} {
		fieldAxioms(t, q)
	}
}

func TestMultiplicativeGroupCyclicSize(t *testing.T) {
	// Every nonzero element's multiplicative order divides q-1; there is
	// an element of order exactly q-1 (primitive root).
	for _, q := range []int{4, 8, 9, 25, 49} {
		f, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		foundPrimitive := false
		for a := 1; a < q; a++ {
			order := 1
			x := a
			for x != 1 {
				x = f.Mul(x, a)
				order++
				if order > q {
					t.Fatalf("GF(%d): element %d has unbounded order", q, a)
				}
			}
			if (q-1)%order != 0 {
				t.Fatalf("GF(%d): order %d of %d does not divide %d", q, order, a, q-1)
			}
			if order == q-1 {
				foundPrimitive = true
			}
		}
		if !foundPrimitive {
			t.Fatalf("GF(%d): no primitive element", q)
		}
	}
}
