// Package gf implements small finite fields GF(p^k), the substrate for
// the pg2/ag2 benchmark-graph generators (projective and affine plane
// incidence graphs over GF(q); pg2-49 in the paper is the plane of order
// 49 = 7²).
//
// Elements are represented as integers 0..q−1 encoding polynomial
// coefficient vectors over GF(p) in base p. Addition and multiplication
// tables are precomputed, which is ideal for the q ≤ a few hundred the
// generators need.
package gf

import "fmt"

// Field is a finite field GF(q) with q = p^k.
type Field struct {
	P, K, Q int
	add     [][]uint16
	mul     [][]uint16
	inv     []uint16
}

// New constructs GF(q). q must be a prime power with q ≤ 4096.
func New(q int) (*Field, error) {
	if q < 2 || q > 4096 {
		return nil, fmt.Errorf("gf: order %d out of supported range [2, 4096]", q)
	}
	p, k, ok := primePower(q)
	if !ok {
		return nil, fmt.Errorf("gf: %d is not a prime power", q)
	}
	f := &Field{P: p, K: k, Q: q}
	irred := findIrreducible(p, k)
	f.buildTables(irred)
	return f, nil
}

// primePower factors q as p^k for prime p, if possible.
func primePower(q int) (p, k int, ok bool) {
	for p = 2; p*p <= q; p++ {
		if q%p == 0 {
			k = 0
			for n := q; n > 1; n /= p {
				if n%p != 0 {
					return 0, 0, false
				}
				k++
			}
			return p, k, true
		}
	}
	return q, 1, true // q itself prime
}

// polynomial arithmetic over GF(p): polynomials as coefficient slices,
// lowest degree first.

func polyMulMod(a, b, mod []int, p int) []int {
	res := make([]int, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			res[i+j] = (res[i+j] + ai*bj) % p
		}
	}
	return polyMod(res, mod, p)
}

func polyMod(a, mod []int, p int) []int {
	deg := len(mod) - 1
	out := append([]int(nil), a...)
	for i := len(out) - 1; i >= deg; i-- {
		if out[i] == 0 {
			continue
		}
		// out -= out[i] * x^(i-deg) * mod  (mod is monic)
		c := out[i]
		for j, mj := range mod {
			out[i-deg+j] = ((out[i-deg+j]-c*mj)%p + p*p) % p
		}
	}
	if len(out) > deg {
		out = out[:deg]
	}
	for len(out) < deg {
		out = append(out, 0)
	}
	return out
}

// findIrreducible returns a monic irreducible polynomial of degree k over
// GF(p) by brute force (checking for roots is enough for k ≤ 3; for
// higher k we verify no factor of degree ≤ k/2 divides it).
func findIrreducible(p, k int) []int {
	if k == 1 {
		return []int{0, 1} // x
	}
	// Enumerate monic polynomials x^k + c_{k-1}x^{k-1} + ... + c_0.
	total := 1
	for i := 0; i < k; i++ {
		total *= p
	}
	for code := 0; code < total; code++ {
		poly := make([]int, k+1)
		c := code
		for i := 0; i < k; i++ {
			poly[i] = c % p
			c /= p
		}
		poly[k] = 1
		if isIrreducible(poly, p, k) {
			return poly
		}
	}
	panic("gf: no irreducible polynomial found")
}

func isIrreducible(poly []int, p, k int) bool {
	// Trial division by all monic polynomials of degree 1..k/2.
	for d := 1; 2*d <= k; d++ {
		total := 1
		for i := 0; i < d; i++ {
			total *= p
		}
		for code := 0; code < total; code++ {
			div := make([]int, d+1)
			c := code
			for i := 0; i < d; i++ {
				div[i] = c % p
				c /= p
			}
			div[d] = 1
			if polyDivides(div, poly, p) {
				return false
			}
		}
	}
	return true
}

func polyDivides(div, poly []int, p int) bool {
	rem := polyMod(poly, div, p)
	for _, c := range rem {
		if c != 0 {
			return false
		}
	}
	return true
}

func (f *Field) encode(poly []int) int {
	v := 0
	for i := len(poly) - 1; i >= 0; i-- {
		v = v*f.P + poly[i]
	}
	return v
}

func (f *Field) decode(v int) []int {
	poly := make([]int, f.K)
	for i := 0; i < f.K; i++ {
		poly[i] = v % f.P
		v /= f.P
	}
	return poly
}

func (f *Field) buildTables(irred []int) {
	q := f.Q
	f.add = make([][]uint16, q)
	f.mul = make([][]uint16, q)
	f.inv = make([]uint16, q)
	for a := 0; a < q; a++ {
		f.add[a] = make([]uint16, q)
		f.mul[a] = make([]uint16, q)
		pa := f.decode(a)
		for b := 0; b < q; b++ {
			pb := f.decode(b)
			sum := make([]int, f.K)
			for i := 0; i < f.K; i++ {
				sum[i] = (pa[i] + pb[i]) % f.P
			}
			f.add[a][b] = uint16(f.encode(sum))
			f.mul[a][b] = uint16(f.encode(polyMulMod(pa, pb, irred, f.P)))
		}
	}
	for a := 1; a < q; a++ {
		for b := 1; b < q; b++ {
			if f.mul[a][b] == 1 {
				f.inv[a] = uint16(b)
				break
			}
		}
		if f.inv[a] == 0 {
			panic("gf: element without inverse — polynomial not irreducible")
		}
	}
}

// Add returns a + b.
func (f *Field) Add(a, b int) int { return int(f.add[a][b]) }

// Mul returns a · b.
func (f *Field) Mul(a, b int) int { return int(f.mul[a][b]) }

// Neg returns −a.
func (f *Field) Neg(a int) int {
	for b := 0; b < f.Q; b++ {
		if f.add[a][b] == 0 {
			return b
		}
	}
	panic("gf: no additive inverse")
}

// Sub returns a − b.
func (f *Field) Sub(a, b int) int { return f.Add(a, f.Neg(b)) }

// Inv returns a⁻¹ for a ≠ 0; it panics on a = 0.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return int(f.inv[a])
}
