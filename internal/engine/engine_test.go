package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNewCtlNoopWhenNothingToEnforce(t *testing.T) {
	if ctl := NewCtl(nil, Budget{}); ctl != nil {
		t.Fatal("NewCtl(nil, zero budget) should be the nil no-op controller")
	}
	// context.Background has a nil Done channel: nothing to watch.
	if ctl := NewCtl(context.Background(), Budget{}); ctl != nil {
		t.Fatal("NewCtl(Background, zero budget) should be nil")
	}
	// Per-leaf bounds are enforced by the leaf search, not the Ctl.
	if ctl := NewCtl(context.Background(), Budget{LeafMaxNodes: 10, LeafTimeout: time.Second}); ctl != nil {
		t.Fatal("per-leaf-only budget should yield a nil Ctl")
	}
	// Each whole-build bound alone forces a real controller.
	if ctl := NewCtl(context.Background(), Budget{MaxNodes: 1}); ctl == nil {
		t.Fatal("MaxNodes should yield a controller")
	}
	if ctl := NewCtl(context.Background(), Budget{BuildTimeout: time.Hour}); ctl == nil {
		t.Fatal("BuildTimeout should yield a controller")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if ctl := NewCtl(ctx, Budget{}); ctl == nil {
		t.Fatal("cancelable context should yield a controller")
	}
}

func TestNilCtlIsSafe(t *testing.T) {
	var c *Ctl
	if err := c.Tick(5); err != nil {
		t.Fatal(err)
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if n := c.Nodes(); n != 0 {
		t.Fatalf("nil Ctl Nodes = %d", n)
	}
}

func TestCtlCancelLatches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ctl := NewCtl(ctx, Budget{})
	if err := ctl.Poll(); err != nil {
		t.Fatalf("premature stop: %v", err)
	}
	cancel()
	if err := ctl.Poll(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Poll after cancel = %v, want ErrCanceled", err)
	}
	// Latched: every subsequent checkpoint observes the same outcome.
	if err := ctl.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err after cancel = %v", err)
	}
	if err := ctl.Tick(1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Tick after cancel = %v", err)
	}
}

func TestCtlCancelCauseSurfaces(t *testing.T) {
	boom := errors.New("client gone")
	ctx, cancel := context.WithCancelCause(context.Background())
	ctl := NewCtl(ctx, Budget{})
	cancel(boom)
	err := ctl.Poll()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !strings.Contains(err.Error(), "client gone") {
		t.Fatalf("err %q does not carry the cancellation cause", err)
	}
}

func TestCtlTickPollsWithinBudgetedGap(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ctl := NewCtl(ctx, Budget{})
	cancel()
	// Tick rate-limits its polls; the latch must still engage within one
	// poll gap of the cancellation.
	for i := 0; i < pollEvery; i++ {
		if err := ctl.Tick(1); err != nil {
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("Tick = %v, want ErrCanceled", err)
			}
			return
		}
	}
	t.Fatalf("cancellation not observed within %d ticks", pollEvery)
}

func TestCtlMaxNodes(t *testing.T) {
	ctl := NewCtl(context.Background(), Budget{MaxNodes: 100})
	var err error
	for i := 0; i < 200 && err == nil; i++ {
		err = ctl.Tick(1)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if n := ctl.Nodes(); n < 100 {
		t.Fatalf("Nodes = %d, want >= 100 (partial stats must survive)", n)
	}
}

func TestCtlBuildTimeout(t *testing.T) {
	ctl := NewCtl(context.Background(), Budget{BuildTimeout: time.Millisecond})
	time.Sleep(5 * time.Millisecond)
	if err := ctl.Poll(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Poll past deadline = %v, want ErrBudgetExceeded", err)
	}
}

func TestCtlContextDeadlineComposes(t *testing.T) {
	// The context deadline is sooner than BuildTimeout; the earlier bound
	// must win.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	ctl := NewCtl(ctx, Budget{BuildTimeout: time.Hour})
	time.Sleep(5 * time.Millisecond)
	if err := ctl.Poll(); err == nil {
		t.Fatal("expired context deadline not observed")
	}
}

func TestBudgetIsZero(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Fatal("zero Budget should report IsZero")
	}
	for _, b := range []Budget{
		{BuildTimeout: 1}, {MaxNodes: 1}, {LeafMaxNodes: 1}, {LeafTimeout: 1},
	} {
		if b.IsZero() {
			t.Fatalf("%+v should not report IsZero", b)
		}
	}
}

func TestInternalError(t *testing.T) {
	err := Internalf("core.combineCL", "bad cell %d", 7)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatal("Internalf should yield an *InternalError")
	}
	if ie.Op != "core.combineCL" {
		t.Fatalf("Op = %q", ie.Op)
	}
	want := "dvicl: internal error in core.combineCL: bad cell 7"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestWorkspaceGrowPreservesInvariants(t *testing.T) {
	w := new(Workspace)
	w.Grow(16)
	checkInvariants(t, w, 16)
	// Dirty the buffers the way a consumer would, then restore and regrow.
	w.Counts[3] = 9
	w.Marks[5] = true
	w.Queue = append(w.Queue, 1, 2)
	w.Counts[3] = 0
	w.Marks[5] = false
	w.Queue = w.Queue[:0]
	// Growing for a smaller n must not shrink (the build path refines
	// subgraphs through a workspace sized by the global vertex count),
	// and the tail must still be zeroed.
	w.Grow(4)
	checkInvariants(t, w, 4)
	if len(w.Counts) != 16 {
		t.Fatalf("Grow(4) shrank Counts to %d", len(w.Counts))
	}
	w.Grow(16)
	checkInvariants(t, w, 16)
	// Regrow past capacity reallocates (zero-valued fresh memory).
	w.Grow(1024)
	checkInvariants(t, w, 1024)
}

func TestWorkspacePoolRoundTrip(t *testing.T) {
	w := GetWorkspace(32)
	checkInvariants(t, w, 32)
	PutWorkspace(w)
	PutWorkspace(nil) // must not panic
	w2 := GetWorkspace(64)
	checkInvariants(t, w2, 64)
	PutWorkspace(w2)
}

// checkInvariants asserts the between-uses workspace invariants after a
// Grow(n): indexed buffers are at least n long (Grow is extend-only) and
// hold their zero/false values over their whole length.
func checkInvariants(t *testing.T, w *Workspace, n int) {
	t.Helper()
	if len(w.Counts) < n || len(w.Marks) < n {
		t.Fatalf("Counts/Marks len = %d/%d, want >= %d", len(w.Counts), len(w.Marks), n)
	}
	for i, c := range w.Counts {
		if c != 0 {
			t.Fatalf("Counts[%d] = %d, want 0", i, c)
		}
	}
	for i, m := range w.Marks {
		if m {
			t.Fatalf("Marks[%d] = true, want false", i)
		}
	}
	if len(w.Bits) < n {
		t.Fatalf("Bits len = %d, want >= %d", len(w.Bits), n)
	}
	for i, m := range w.Bits {
		if m {
			t.Fatalf("Bits[%d] = true, want false", i)
		}
	}
	if len(w.Queue) != 0 || len(w.Touched) != 0 || len(w.Keys) != 0 || len(w.Frags) != 0 {
		t.Fatalf("scratch slices not length 0: %d/%d/%d/%d",
			len(w.Queue), len(w.Touched), len(w.Keys), len(w.Frags))
	}
	if len(w.LocalIdx) < n || len(w.ColorCount) < n || len(w.Gamma) < n {
		t.Fatalf("LocalIdx/ColorCount/Gamma len = %d/%d/%d, want >= %d",
			len(w.LocalIdx), len(w.ColorCount), len(w.Gamma), n)
	}
	for i := range w.LocalIdx {
		if w.LocalIdx[i] != 0 || w.ColorCount[i] != 0 {
			t.Fatalf("LocalIdx[%d]/ColorCount[%d] = %d/%d, want 0",
				i, i, w.LocalIdx[i], w.ColorCount[i])
		}
	}
	if len(w.IntsA) != 0 || len(w.IntsB) != 0 || len(w.IntsC) != 0 || len(w.Bytes) != 0 {
		t.Fatalf("list buffers not length 0: %d/%d/%d/%d",
			len(w.IntsA), len(w.IntsB), len(w.IntsC), len(w.Bytes))
	}
	if w.PairCount == nil || len(w.PairCount) != 0 {
		t.Fatalf("PairCount = %v, want empty non-nil map", w.PairCount)
	}
}
