package engine

// Arena is a chunked int32 bump allocator with strict stack (Mark /
// Release) discipline, used for the transient CSR views the divide phase
// materializes at every tree node: offsets, adjacency, component labels
// and other per-frame int32 scratch.
//
// Design constraints it satisfies:
//
//   - Handed-out slices stay valid until their frame is released: chunks
//     are append-only and never move or grow in place, so Alloc never
//     invalidates earlier allocations (a single growing buffer would).
//   - Allocation is write-before-read: Alloc does NOT zero reused
//     memory. Every consumer fully writes a slice before reading it.
//   - Release is O(1): it rewinds the bump position to a Mark taken
//     earlier on the same arena. Marks must be released in LIFO order
//     (the recursion structure of the build guarantees this).
//
// An Arena belongs to exactly one goroutine (it lives in a Workspace and
// inherits its ownership rule). Between Workspace uses the arena must be
// fully released: every consumer releases every mark it takes, including
// on error paths, so a workspace drawn from the pool starts empty.
type Arena struct {
	chunks [][]int32
	cur    int // index of the chunk being bump-filled
	used   int // int32s used in chunks[cur]
}

// arenaMinChunk is the smallest chunk ever allocated; later chunks
// double so a build settles into O(log peak) chunks total.
const arenaMinChunk = 4096

// ArenaMark is a position in the arena's bump stack.
type ArenaMark struct{ chunk, used int }

// Mark records the current position for a later Release.
func (a *Arena) Mark() ArenaMark { return ArenaMark{a.cur, a.used} }

// Release rewinds the arena to m, logically freeing every Alloc made
// since the matching Mark. Memory is retained for reuse, not returned to
// the Go heap.
func (a *Arena) Release(m ArenaMark) {
	a.cur, a.used = m.chunk, m.used
}

// Alloc returns an int32 slice of length n with capacity exactly n (so
// an append by the caller cannot silently bleed into a neighboring
// allocation). Contents are unspecified: callers write before reading.
func (a *Arena) Alloc(n int) []int32 {
	if n == 0 {
		return nil
	}
	for {
		if a.cur < len(a.chunks) {
			c := a.chunks[a.cur]
			if a.used+n <= len(c) {
				s := c[a.used : a.used+n : a.used+n]
				a.used += n
				return s
			}
			// The current chunk's tail is too small: waste it and move
			// on. Wasted tails are bounded by the doubling growth.
			a.cur++
			a.used = 0
			continue
		}
		size := arenaMinChunk
		if k := len(a.chunks); k > 0 {
			size = 2 * len(a.chunks[k-1])
		}
		if size < n {
			size = n
		}
		a.chunks = append(a.chunks, make([]int32, size))
		a.cur = len(a.chunks) - 1
		a.used = 0
	}
}
