package engine

import "sync"

// Workspace is the reusable scratch memory for one goroutine's
// refinement and search work: the 1-WL refinement buffers that were
// previously allocated fresh on every Refine call. Ownership rule: a
// Workspace belongs to exactly one goroutine at a time — long-lived
// workers (core's persistent scheduler pool, pipeline canonicalizers,
// the ssm query Index) each own one for their whole lifetime and never
// share it across concurrent refinements. The one sanctioned form of
// sharing is read-only: Arena-backed CSR views may be read by another
// worker (core's stolen child builds read the victim's arena), which is
// safe because arena chunks are append-only and never move, and the
// owner keeps the frame open until the reader has joined.
//
// Invariants between uses (every consumer restores them before
// returning, including on the cancellation path):
//
//   - Counts[i] == 0 for all i < len(Counts)
//   - Marks[i] == false, Bits[i] == false for all i
//   - LocalIdx[i] == 0, ColorCount[i] == 0 for all i
//   - Queue, Touched, Keys, Frags, IntsA, IntsB, IntsC, Bytes have
//     length 0 (capacity retained)
//   - PairCount is empty (buckets retained)
//   - Arena is fully released (every Mark matched by a Release)
//
// Gamma carries no invariant: it is write-before-read scratch.
//
// Consumers restore the zeroed/false invariants with the visited-list
// trick — clear exactly the indices you set — so restores cost O(touched),
// not O(n). List-typed buffers (IntsA..C, Keys, Bytes) must never hold
// live data across a recursive call that also receives this workspace:
// Grow and nested consumers reset them to length 0. The Arena is the one
// field that IS safe to hold across recursion, because recursion depth
// maps onto its Mark/Release stack.
type Workspace struct {
	// Counts is the per-vertex adjacency-count buffer (zeroed invariant).
	Counts []int
	// Marks is the per-cell "in worklist" flag buffer (false invariant).
	Marks []bool
	// Bits is a general-purpose per-vertex bitmap (false invariant) for
	// set-membership tests during divide — consumers record which indices
	// they set and clear exactly those before returning (the visited-list
	// trick), so restoring the invariant is O(set) not O(n).
	Bits []bool
	// Queue is the refinement worklist of cell start indices.
	Queue []int
	// Touched collects the cells reached by the current worklist cell.
	Touched []int
	// Keys is the scratch for sorting cell fragments by count.
	Keys []uint64
	// Frags receives [start, end) cell fragments from a split.
	Frags [][2]int
	// LocalIdx is the subgraph-induction index table: vertex id (global
	// or subgraph-local) -> local index+1; 0 = not in the subgraph
	// (zeroed invariant).
	LocalIdx []int32
	// ColorCount counts vertices per color value (zeroed invariant).
	// Color values are cell start offsets, so they are always < n.
	ColorCount []int32
	// Gamma is per-vertex int scratch with no invariant: consumers write
	// every entry they later read (write-before-read).
	Gamma []int
	// IntsA, IntsB, IntsC are general length-0 int list buffers for
	// transient vertex/color lists inside one non-recursive call.
	IntsA, IntsB, IntsC []int
	// Bytes is a length-0 byte list buffer for building descriptors and
	// hash preimages inside one non-recursive call.
	Bytes []byte
	// PairCount counts edges per packed (color, color) pair during
	// DivideS (empty-between-uses invariant; cleared with clear so the
	// buckets are retained).
	PairCount map[uint64]int32
	// Arena backs the divide phase's transient CSR views (see Arena).
	Arena Arena
}

// Grow ensures every buffer can hold an n-vertex graph's refinement
// state without reallocating mid-run. Growing preserves the zeroed /
// false invariants because append's fresh memory is zero-valued.
//
// Grow never shrinks: the build path sizes one workspace by the global
// vertex count and then refines subgraphs of smaller n through the same
// workspace (canon's leaf search calls Grow with the local size), while
// the divide/combine layers keep indexing LocalIdx/ColorCount/Gamma by
// global ids. Extend-only reslicing keeps both views valid.
func (w *Workspace) Grow(n int) {
	if cap(w.Counts) < n {
		w.Counts = append(make([]int, 0, n), w.Counts...)
	}
	if len(w.Counts) < n {
		w.Counts = w.Counts[:n]
	}
	if cap(w.Marks) < n {
		w.Marks = append(make([]bool, 0, n), w.Marks...)
	}
	if len(w.Marks) < n {
		w.Marks = w.Marks[:n]
	}
	if cap(w.Bits) < n {
		w.Bits = append(make([]bool, 0, n), w.Bits...)
	}
	if len(w.Bits) < n {
		w.Bits = w.Bits[:n]
	}
	if cap(w.Queue) < n {
		w.Queue = make([]int, 0, n)
	}
	w.Queue = w.Queue[:0]
	if cap(w.Touched) < n {
		w.Touched = make([]int, 0, n)
	}
	w.Touched = w.Touched[:0]
	if cap(w.Keys) < n {
		w.Keys = make([]uint64, 0, n)
	}
	w.Keys = w.Keys[:0]
	if cap(w.Frags) < 8 {
		w.Frags = make([][2]int, 0, 8)
	}
	w.Frags = w.Frags[:0]
	if cap(w.LocalIdx) < n {
		w.LocalIdx = append(make([]int32, 0, n), w.LocalIdx...)
	}
	if len(w.LocalIdx) < n {
		w.LocalIdx = w.LocalIdx[:n]
	}
	if cap(w.ColorCount) < n {
		w.ColorCount = append(make([]int32, 0, n), w.ColorCount...)
	}
	if len(w.ColorCount) < n {
		w.ColorCount = w.ColorCount[:n]
	}
	if cap(w.Gamma) < n {
		w.Gamma = make([]int, 0, n)
	}
	if len(w.Gamma) < n {
		w.Gamma = w.Gamma[:n]
	}
	w.IntsA = w.IntsA[:0]
	w.IntsB = w.IntsB[:0]
	w.IntsC = w.IntsC[:0]
	w.Bytes = w.Bytes[:0]
	if w.PairCount == nil {
		w.PairCount = make(map[uint64]int32)
	}
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace takes a workspace from the pool, sized for an n-vertex
// graph. Pair with PutWorkspace; legacy entry points that predate the
// workspace API use this pair internally, so steady-state callers of
// the old signatures also stop allocating.
func GetWorkspace(n int) *Workspace {
	w := wsPool.Get().(*Workspace)
	w.Grow(n)
	return w
}

// PutWorkspace returns a workspace to the pool. The caller must have
// restored the invariants (all engine consumers do, even on the
// cancellation path); the workspace must not be used after Put.
func PutWorkspace(w *Workspace) {
	if w != nil {
		wsPool.Put(w)
	}
}
