package engine

import "sync"

// Workspace is the reusable scratch memory for one goroutine's
// refinement and search work: the 1-WL refinement buffers that were
// previously allocated fresh on every Refine call. Ownership rule: a
// Workspace belongs to exactly one goroutine at a time — callers that
// fan out (core.buildChildren, pipeline workers) get one workspace per
// worker, never share one across concurrent refinements.
//
// Invariants between uses (every consumer restores them before
// returning, including on the cancellation path):
//
//   - Counts[i] == 0 for all i < len(Counts)
//   - Marks[i] == false for all i < len(Marks)
//   - Queue, Touched, Keys, Frags have length 0 (capacity retained)
type Workspace struct {
	// Counts is the per-vertex adjacency-count buffer (zeroed invariant).
	Counts []int
	// Marks is the per-cell "in worklist" flag buffer (false invariant).
	Marks []bool
	// Bits is a general-purpose per-vertex bitmap (false invariant) for
	// set-membership tests during divide — consumers record which indices
	// they set and clear exactly those before returning (the visited-list
	// trick), so restoring the invariant is O(set) not O(n).
	Bits []bool
	// Queue is the refinement worklist of cell start indices.
	Queue []int
	// Touched collects the cells reached by the current worklist cell.
	Touched []int
	// Keys is the scratch for sorting cell fragments by count.
	Keys []uint64
	// Frags receives [start, end) cell fragments from a split.
	Frags [][2]int
}

// Grow ensures every buffer can hold an n-vertex graph's refinement
// state without reallocating mid-run. Growing preserves the zeroed /
// false invariants because append's fresh memory is zero-valued.
func (w *Workspace) Grow(n int) {
	if cap(w.Counts) < n {
		w.Counts = make([]int, 0, n)
	}
	w.Counts = w.Counts[:n]
	if cap(w.Marks) < n {
		w.Marks = make([]bool, 0, n)
	}
	w.Marks = w.Marks[:n]
	if cap(w.Bits) < n {
		w.Bits = make([]bool, 0, n)
	}
	w.Bits = w.Bits[:n]
	if cap(w.Queue) < n {
		w.Queue = make([]int, 0, n)
	}
	w.Queue = w.Queue[:0]
	if cap(w.Touched) < n {
		w.Touched = make([]int, 0, n)
	}
	w.Touched = w.Touched[:0]
	if cap(w.Keys) < n {
		w.Keys = make([]uint64, 0, n)
	}
	w.Keys = w.Keys[:0]
	if cap(w.Frags) < 8 {
		w.Frags = make([][2]int, 0, 8)
	}
	w.Frags = w.Frags[:0]
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace takes a workspace from the pool, sized for an n-vertex
// graph. Pair with PutWorkspace; legacy entry points that predate the
// workspace API use this pair internally, so steady-state callers of
// the old signatures also stop allocating.
func GetWorkspace(n int) *Workspace {
	w := wsPool.Get().(*Workspace)
	w.Grow(n)
	return w
}

// PutWorkspace returns a workspace to the pool. The caller must have
// restored the invariants (all engine consumers do, even on the
// cancellation path); the workspace must not be used after Put.
func PutWorkspace(w *Workspace) {
	if w != nil {
		wsPool.Put(w)
	}
}
