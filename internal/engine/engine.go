// Package engine is the resource-control substrate of the compute stack:
// one Budget type for every bound the system enforces (whole-build
// deadline, whole-build search-node cap, per-leaf caps), a cancellation
// controller (Ctl) threaded from the serving layer down into the
// refinement and backtrack-search hot loops, and reusable scratch
// workspaces that make the 1-WL refinement allocation-free.
//
// The paper runs every labeler under a hard two-hour budget;
// nauty/Traces and bliss likewise treat resource-bounded, restartable
// search as a first-class engine concern. This package gives our
// reproduction the same property: a context canceled at the HTTP layer
// (client disconnect, request timeout) or an exhausted budget stops an
// in-flight DviCL build within a bounded number of search steps and
// surfaces a typed error instead of silently running on.
//
// Layering: engine sits below coloring/canon/core/ssm and above only
// internal/obs — it must never import the algorithm packages.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrCanceled reports that the caller's context was canceled (client
// disconnect, request timeout, shutdown) while a build, search, or query
// was in flight. Partial statistics remain valid; partial results must
// not be used as canonical forms.
var ErrCanceled = errors.New("dvicl: canceled")

// ErrBudgetExceeded reports that the operation exhausted its Budget (the
// whole-build deadline or search-node cap — the paper's two-hour-timeout
// analogue). Partial statistics remain valid; partial results must not
// be used as canonical forms.
var ErrBudgetExceeded = errors.New("dvicl: budget exceeded")

// InternalError is a broken internal invariant surfaced as a value
// instead of a panic, so a pathological input degrades into a failed
// request rather than a dead daemon. It wraps nothing: an InternalError
// is a bug report, and its Op names the invariant that broke.
type InternalError struct {
	// Op is the function whose invariant broke, e.g. "core.combineCL".
	Op string
	// Msg describes the broken invariant.
	Msg string
}

// Error formats the invariant violation.
func (e *InternalError) Error() string {
	return fmt.Sprintf("dvicl: internal error in %s: %s", e.Op, e.Msg)
}

// Internalf builds an *InternalError.
func Internalf(op, format string, args ...any) *InternalError {
	return &InternalError{Op: op, Msg: fmt.Sprintf(format, args...)}
}

// Budget bounds one canonical-labeling build end to end. The zero value
// means unlimited everywhere. A whole-build bound (BuildTimeout or
// MaxNodes) composes with the per-leaf bounds: whichever trips first
// stops the work — the whole-build bounds hard (typed error), the
// per-leaf bounds soft (truncated leaf, best-effort labeling), matching
// how the paper's evaluation both caps individual searches and kills
// whole runs at two hours.
type Budget struct {
	// BuildTimeout bounds one whole build (or baseline search) by wall
	// clock, measured from NewCtl. It composes with any context deadline:
	// the earlier one wins. Exceeding it returns ErrBudgetExceeded.
	BuildTimeout time.Duration
	// MaxNodes bounds the total search-tree nodes visited across every
	// leaf search of one build. Exceeding it returns ErrBudgetExceeded.
	MaxNodes int64
	// LeafMaxNodes bounds each individual leaf search's nodes. A leaf
	// that trips it is truncated (best-effort labeling, Tree.Truncated
	// set) rather than failing the build.
	LeafMaxNodes int64
	// LeafTimeout bounds each individual leaf search by wall clock, with
	// the same soft truncation semantics as LeafMaxNodes.
	LeafTimeout time.Duration
}

// IsZero reports whether no bound is set.
func (b Budget) IsZero() bool {
	return b.BuildTimeout == 0 && b.MaxNodes == 0 && b.LeafMaxNodes == 0 && b.LeafTimeout == 0
}

// pollEvery is how many Tick calls pass between cancellation polls: the
// controller trades one select + clock read for this many cheap atomic
// increments. At typical search-node costs (microseconds each) a poll
// gap of 64 nodes keeps cancellation latency well under a millisecond.
const pollEvery = 64

// Ctl is the cancellation and whole-build budget controller for one
// build: the hot loops call Tick (search-tree nodes) or Poll (refinement
// rounds, tree nodes) and stop when it returns non-nil. A Ctl is shared
// by every goroutine of a parallel build — all methods are safe for
// concurrent use, and the first error latches so every worker observes
// the same outcome. A nil *Ctl is a valid no-op controller (the
// unbudgeted legacy path costs one predictable branch per checkpoint).
type Ctl struct {
	done     <-chan struct{} // context cancellation; nil = none
	ctx      context.Context // for Cause; nil iff done == nil
	deadline time.Time       // whole-build deadline; zero = none
	maxNodes int64           // whole-build node cap; 0 = none

	nodes atomic.Int64 // search nodes consumed (across goroutines)
	ticks atomic.Int64 // Tick calls since start (poll rate limiting)
	halt  atomic.Int32 // 0 = running, 1 = canceled, 2 = budget exceeded
}

// NewCtl builds the controller for one build under ctx and b. It
// returns nil — the no-op controller — when there is nothing to
// enforce: no cancelable context, no whole-build deadline, no node cap.
// (Per-leaf bounds are enforced by the leaf search itself, not the Ctl.)
func NewCtl(ctx context.Context, b Budget) *Ctl {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	deadline := time.Time{}
	if b.BuildTimeout > 0 {
		deadline = time.Now().Add(b.BuildTimeout)
	}
	if ctx != nil {
		if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
	}
	if done == nil && deadline.IsZero() && b.MaxNodes <= 0 {
		return nil
	}
	return &Ctl{done: done, ctx: ctx, deadline: deadline, maxNodes: b.MaxNodes}
}

// Tick charges n search-tree nodes against the whole-build node budget
// and polls for cancellation every pollEvery calls. It returns the
// latched error once the build is stopped.
func (c *Ctl) Tick(n int64) error {
	if c == nil {
		return nil
	}
	if h := c.halt.Load(); h != 0 {
		return c.haltErr(h)
	}
	if c.maxNodes > 0 && c.nodes.Add(n) > c.maxNodes {
		c.halt.CompareAndSwap(0, 2)
		return c.haltErr(c.halt.Load())
	}
	if c.ticks.Add(1)%pollEvery != 0 {
		return nil
	}
	return c.Poll()
}

// Poll checks cancellation and the whole-build deadline immediately,
// without charging any nodes. Loops whose iterations are substantial
// (a refinement round, a tree node) call Poll directly; per-search-node
// checkpoints use Tick, which rate-limits its polls.
func (c *Ctl) Poll() error {
	if c == nil {
		return nil
	}
	if h := c.halt.Load(); h != 0 {
		return c.haltErr(h)
	}
	if c.done != nil {
		select {
		case <-c.done:
			c.halt.CompareAndSwap(0, 1)
			return c.haltErr(c.halt.Load())
		default:
		}
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.halt.CompareAndSwap(0, 2)
		return c.haltErr(c.halt.Load())
	}
	return nil
}

// Err returns the latched stop error, or nil while the build may
// proceed. It does not poll.
func (c *Ctl) Err() error {
	if c == nil {
		return nil
	}
	if h := c.halt.Load(); h != 0 {
		return c.haltErr(h)
	}
	return nil
}

// Nodes returns the search-tree nodes charged so far — the partial
// effort statistic reported alongside ErrCanceled/ErrBudgetExceeded.
func (c *Ctl) Nodes() int64 {
	if c == nil {
		return 0
	}
	return c.nodes.Load()
}

func (c *Ctl) haltErr(h int32) error {
	if h == 1 {
		if c.ctx != nil {
			if cause := context.Cause(c.ctx); cause != nil && !errors.Is(cause, context.Canceled) {
				return fmt.Errorf("%w: %v", ErrCanceled, cause)
			}
		}
		return ErrCanceled
	}
	return ErrBudgetExceeded
}
