package engine

import "testing"

func TestArenaAllocAndRelease(t *testing.T) {
	var a Arena
	m0 := a.Mark()
	s1 := a.Alloc(10)
	if len(s1) != 10 || cap(s1) != 10 {
		t.Fatalf("Alloc(10): len=%d cap=%d", len(s1), cap(s1))
	}
	for i := range s1 {
		s1[i] = int32(i)
	}
	s2 := a.Alloc(20)
	if &s1[9] == &s2[0] {
		t.Fatal("allocations overlap")
	}
	for i := range s2 {
		s2[i] = 100
	}
	for i := range s1 {
		if s1[i] != int32(i) {
			t.Fatalf("s1[%d] clobbered by later Alloc: %d", i, s1[i])
		}
	}
	a.Release(m0)
	// After a release the same memory is handed out again.
	s3 := a.Alloc(10)
	if &s3[0] != &s1[0] {
		t.Fatal("Release did not rewind the bump position")
	}
}

func TestArenaAllocZero(t *testing.T) {
	var a Arena
	if s := a.Alloc(0); len(s) != 0 {
		t.Fatalf("Alloc(0) len = %d", len(s))
	}
}

// TestArenaChunksDoNotMove pins the core validity guarantee: allocating
// far past the first chunk's capacity must not invalidate (move or
// clobber) earlier allocations.
func TestArenaChunksDoNotMove(t *testing.T) {
	var a Arena
	first := a.Alloc(arenaMinChunk / 2)
	for i := range first {
		first[i] = 7
	}
	ptr := &first[0]
	for i := 0; i < 32; i++ {
		big := a.Alloc(arenaMinChunk)
		for j := range big {
			big[j] = int32(i)
		}
	}
	if &first[0] != ptr {
		t.Fatal("earlier allocation moved")
	}
	for i, v := range first {
		if v != 7 {
			t.Fatalf("first[%d] = %d, want 7", i, v)
		}
	}
}

// TestArenaOversizedRequest: a request larger than the doubling schedule
// still succeeds in one contiguous slice.
func TestArenaOversizedRequest(t *testing.T) {
	var a Arena
	s := a.Alloc(10 * arenaMinChunk)
	if len(s) != 10*arenaMinChunk {
		t.Fatalf("len = %d", len(s))
	}
}

// TestArenaStackedMarks exercises nested frames the way the build
// recursion uses them: child frames release back to their own mark
// without disturbing the parent's live data.
func TestArenaStackedMarks(t *testing.T) {
	var a Arena
	parent := a.Alloc(100)
	for i := range parent {
		parent[i] = -1
	}
	for child := 0; child < 10; child++ {
		m := a.Mark()
		s := a.Alloc(5000) // forces chunk growth past the first chunk
		for i := range s {
			s[i] = int32(child)
		}
		a.Release(m)
	}
	for i, v := range parent {
		if v != -1 {
			t.Fatalf("parent[%d] = %d, want -1 (child frame leaked into parent)", i, v)
		}
	}
}
