// Package im implements influence maximization under the independent-
// cascade (IC) model in the style of PMC (pruned Monte-Carlo, Ohsaka et
// al., AAAI'14), which the paper uses to produce the seed sets of Table 6:
// bond-percolation sketches are precomputed and contracted to components,
// and a CELF lazy-greedy selection picks the k seeds with the largest
// estimated spread.
//
// As in the paper's setup, the influence probability is a constant per
// edge. The implementation is deterministic for a fixed RNG seed.
package im

import (
	"container/heap"
	"math/rand"

	"dvicl/internal/graph"
)

// Model holds percolation sketches for a graph under the IC model.
type Model struct {
	g        *graph.Graph
	sketches []sketch
}

// sketch is one percolated world, contracted to connected components.
type sketch struct {
	comp []int32 // vertex -> component id
	size []int32 // component id -> size
}

// NewIC builds a PMC-style model: r percolation sketches of g where each
// edge survives with probability p. seed fixes the RNG for
// reproducibility.
func NewIC(g *graph.Graph, p float64, r int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{g: g, sketches: make([]sketch, r)}
	n := g.N()
	parent := make([]int32, n)
	for i := range m.sketches {
		for v := range parent {
			parent[v] = int32(v)
		}
		var find func(int32) int32
		find = func(x int32) int32 {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, e := range g.Edges() {
			if rng.Float64() < p {
				ra, rb := find(int32(e[0])), find(int32(e[1]))
				if ra != rb {
					parent[rb] = ra
				}
			}
		}
		comp := make([]int32, n)
		var size []int32
		id := make(map[int32]int32, 64)
		for v := 0; v < n; v++ {
			root := find(int32(v))
			ci, ok := id[root]
			if !ok {
				ci = int32(len(size))
				id[root] = ci
				size = append(size, 0)
			}
			comp[v] = ci
			size[ci]++
		}
		m.sketches[i] = sketch{comp: comp, size: size}
	}
	return m
}

// Spread estimates σ(S), the expected number of influenced vertices.
func (m *Model) Spread(seeds []int) float64 {
	if len(m.sketches) == 0 {
		return 0
	}
	total := int64(0)
	covered := map[int32]bool{}
	for _, sk := range m.sketches {
		for k := range covered {
			delete(covered, k)
		}
		for _, s := range seeds {
			ci := sk.comp[s]
			if !covered[ci] {
				covered[ci] = true
				total += int64(sk.size[ci])
			}
		}
	}
	return float64(total) / float64(len(m.sketches))
}

// celfItem is a lazily evaluated candidate for the greedy selection.
type celfItem struct {
	v     int
	gain  int64 // total marginal gain over all sketches (stale allowed)
	round int   // the selection round the gain was computed in
}

type celfHeap []celfItem

func (h celfHeap) Len() int            { return len(h) }
func (h celfHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h celfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x interface{}) { *h = append(*h, x.(celfItem)) }
func (h *celfHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Greedy selects k seeds by CELF lazy greedy over the sketches. The
// result is the paper's seed set S for SSM queries.
func (m *Model) Greedy(k int) []int {
	n := m.g.N()
	if k > n {
		k = n
	}
	// covered[i][c]: component c of sketch i already reached by seeds.
	covered := make([]map[int32]bool, len(m.sketches))
	for i := range covered {
		covered[i] = map[int32]bool{}
	}
	gainOf := func(v int) int64 {
		var gain int64
		for i, sk := range m.sketches {
			ci := sk.comp[v]
			if !covered[i][ci] {
				gain += int64(sk.size[ci])
			}
		}
		return gain
	}
	h := make(celfHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, celfItem{v: v, gain: gainOf(v), round: 0})
	}
	heap.Init(&h)
	var seeds []int
	for len(seeds) < k && h.Len() > 0 {
		it := heap.Pop(&h).(celfItem)
		if it.round == len(seeds) {
			seeds = append(seeds, it.v)
			for i, sk := range m.sketches {
				covered[i][sk.comp[it.v]] = true
			}
			continue
		}
		it.gain = gainOf(it.v)
		it.round = len(seeds)
		heap.Push(&h, it)
	}
	return seeds
}

// NewWC builds a weighted-cascade model: the probability of an edge
// (u, v) activating v is 1/d(v) (and 1/d(u) toward u). WC is the second
// standard instantiation of the IC framework in the IM benchmarks the
// paper follows [1]; percolation keeps an edge for the direction it fires
// — we approximate on the undirected substrate by keeping the edge with
// probability 1/max(d(u), d(v)), which preserves WC's hub-favoring
// greedy behavior.
func NewWC(g *graph.Graph, r int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{g: g, sketches: make([]sketch, r)}
	n := g.N()
	parent := make([]int32, n)
	for i := range m.sketches {
		for v := range parent {
			parent[v] = int32(v)
		}
		var find func(int32) int32
		find = func(x int32) int32 {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, e := range g.Edges() {
			d := g.Degree(e[0])
			if d2 := g.Degree(e[1]); d2 > d {
				d = d2
			}
			if d > 0 && rng.Float64() < 1/float64(d) {
				ra, rb := find(int32(e[0])), find(int32(e[1]))
				if ra != rb {
					parent[rb] = ra
				}
			}
		}
		comp := make([]int32, n)
		var size []int32
		id := make(map[int32]int32, 64)
		for v := 0; v < n; v++ {
			root := find(int32(v))
			ci, ok := id[root]
			if !ok {
				ci = int32(len(size))
				id[root] = ci
				size = append(size, 0)
			}
			comp[v] = ci
			size[ci]++
		}
		m.sketches[i] = sketch{comp: comp, size: size}
	}
	return m
}
