package im

import (
	"math"
	"testing"

	"dvicl/internal/graph"
)

func star(leaves int) *graph.Graph {
	var edges [][2]int
	for i := 1; i <= leaves; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return graph.FromEdges(leaves+1, edges)
}

func TestSpreadCertainEdges(t *testing.T) {
	// p = 1: every sketch is the full graph; spread of any vertex in a
	// connected graph is n.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	m := NewIC(g, 1.0, 8, 1)
	if got := m.Spread([]int{0}); got != 4 {
		t.Fatalf("spread = %v, want 4", got)
	}
	if got := m.Spread([]int{0, 3}); got != 4 {
		t.Fatalf("spread with redundant seed = %v, want 4", got)
	}
}

func TestSpreadNoEdges(t *testing.T) {
	// p = 0: seeds influence only themselves.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}})
	m := NewIC(g, 0.0, 8, 1)
	if got := m.Spread([]int{0, 3}); got != 2 {
		t.Fatalf("spread = %v, want 2", got)
	}
}

func TestGreedyPicksHub(t *testing.T) {
	// On a star with p=1, the first greedy seed reaches everything; any
	// vertex works, but the hub must be at least as good as any leaf, and
	// with two components the greedy must cover both.
	g := graph.FromEdges(7, [][2]int{
		{0, 1}, {0, 2}, {0, 3}, // star component
		{4, 5}, {5, 6}, // path component
	})
	m := NewIC(g, 1.0, 4, 7)
	seeds := m.Greedy(2)
	if len(seeds) != 2 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	if got := m.Spread(seeds); got != 7 {
		t.Fatalf("2-seed spread = %v, want 7 (both components)", got)
	}
}

func TestGreedyMonotoneSpread(t *testing.T) {
	g := star(20)
	m := NewIC(g, 0.3, 64, 11)
	prev := 0.0
	for k := 1; k <= 5; k++ {
		s := m.Greedy(k)
		if len(s) != k {
			t.Fatalf("Greedy(%d) returned %d seeds", k, len(s))
		}
		cur := m.Spread(s)
		if cur+1e-9 < prev {
			t.Fatalf("spread not monotone: %v after %v", cur, prev)
		}
		prev = cur
	}
}

func TestGreedyMatchesExhaustiveFirstSeed(t *testing.T) {
	// The first greedy seed must have the maximal single-vertex spread.
	g := graph.FromEdges(6, [][2]int{{0, 1}, {0, 2}, {0, 3}, {3, 4}, {4, 5}})
	m := NewIC(g, 0.5, 256, 3)
	seeds := m.Greedy(1)
	best := -1.0
	for v := 0; v < g.N(); v++ {
		if s := m.Spread([]int{v}); s > best {
			best = s
		}
	}
	if got := m.Spread(seeds); math.Abs(got-best) > 1e-9 {
		t.Fatalf("greedy first seed spread %v, best %v", got, best)
	}
}

func TestDeterminism(t *testing.T) {
	g := star(15)
	a := NewIC(g, 0.4, 32, 42).Greedy(3)
	b := NewIC(g, 0.4, 32, 42).Greedy(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestGreedyKExceedsN(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}})
	m := NewIC(g, 0.5, 8, 1)
	if got := len(m.Greedy(10)); got != 3 {
		t.Fatalf("Greedy(10) on 3 vertices returned %d seeds", got)
	}
}

func TestWCModel(t *testing.T) {
	g := star(10)
	m := NewWC(g, 64, 5)
	// Seeds influence at least themselves.
	if got := m.Spread([]int{3}); got < 1 {
		t.Fatalf("WC spread = %v, want >= 1", got)
	}
	// The hub's spread should beat a leaf's: leaves activate the hub with
	// p=1/10, the hub activates each leaf with p=1/1... (per-edge
	// 1/max(d)): hub->leaf edges survive with 1/10 too, but the hub
	// touches 10 of them.
	hub := m.Spread([]int{0})
	leaf := m.Spread([]int{1})
	if hub < leaf {
		t.Fatalf("WC hub spread %v < leaf spread %v", hub, leaf)
	}
	if got := len(m.Greedy(3)); got != 3 {
		t.Fatalf("WC greedy returned %d seeds", got)
	}
}

func TestWCDeterministic(t *testing.T) {
	g := star(8)
	a := NewWC(g, 16, 9).Greedy(2)
	b := NewWC(g, 16, 9).Greedy(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("WC nondeterministic")
		}
	}
}
