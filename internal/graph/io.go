package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines starting with '#' or '%' are comments, except that a leading
// "# n=<count>" header (as emitted by WriteEdgeList) fixes the vertex
// count, preserving isolated vertices across a write/read round trip.
// Vertex ids may be arbitrary non-negative integers; without a header
// they are compacted to 0..n−1 in ascending order. Directions,
// self-loops, and duplicate edges are dropped, matching the preprocessing
// in Section 7 of the paper.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var raw [][2]int
	maxID := -1
	line := 0
	headerN := -1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(text, "# n=") {
			if _, err := fmt.Sscanf(text, "# n=%d", &headerN); err != nil {
				headerN = -1
			}
		}
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two vertex ids, got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", line)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		raw = append(raw, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if headerN >= 0 {
		// Fixed vertex count: ids are used as-is (they must fit).
		if maxID >= headerN {
			return nil, fmt.Errorf("graph: vertex id %d exceeds declared n=%d", maxID, headerN)
		}
		b := NewBuilder(headerN)
		for _, e := range raw {
			b.AddEdge(e[0], e[1])
		}
		return b.Build(), nil
	}
	// Compact ids: keep only ids that appear, renumber in ascending order.
	present := make([]bool, maxID+1)
	for _, e := range raw {
		present[e[0]] = true
		present[e[1]] = true
	}
	remap := make([]int, maxID+1)
	n := 0
	for id, ok := range present {
		if ok {
			remap[id] = n
			n++
		}
	}
	b := NewBuilder(n)
	for _, e := range raw {
		b.AddEdge(remap[e[0]], remap[e[1]])
	}
	return b.Build(), nil
}

// WriteEdgeList writes g as a sorted "u v" edge list.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# n=%d m=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
