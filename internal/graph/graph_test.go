package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// paperGraph is the example graph of Fig. 1(a): vertices 0..7, where 7 is
// adjacent to all of 0..6, {0,2}×{1,3} is a 4-cycle pattern, and 4,5,6
// chain to it. Reconstructed from the paper's narration: 0 and 2 have the
// same neighbor set, 1 and 3 have the same neighbor set, (4,5,6) is an
// automorphism, vertex 7 is the unique degree-7 hub.
func paperGraph() *Graph {
	return FromEdges(8, [][2]int{
		{0, 1}, {0, 3}, {2, 1}, {2, 3},
		{4, 5}, {5, 6}, {4, 6},
		{1, 4}, {3, 5}, // attach the triangle symmetrically? see below
		{0, 7}, {1, 7}, {2, 7}, {3, 7}, {4, 7}, {5, 7}, {6, 7},
	})
}

func TestBuilderDedup(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 0}, {0, 1}, {2, 2}})
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (dedup + self-loop drop)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("missing edge 0-1")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self loop present")
	}
}

func TestDegreesAndStats(t *testing.T) {
	g := paperGraph()
	if g.N() != 8 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Degree(7) != 7 {
		t.Fatalf("deg(7) = %d, want 7", g.Degree(7))
	}
	s := g.Summary()
	if s.MaxDeg != 7 {
		t.Fatalf("max deg = %d", s.MaxDeg)
	}
	if s.AvgDeg != float64(2*g.M())/8 {
		t.Fatalf("avg deg = %v", s.AvgDeg)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := FromEdges(5, [][2]int{{4, 0}, {4, 3}, {4, 1}, {4, 2}})
	nb := g.NeighborSlice(4)
	if !sort.IntsAreSorted(nb) {
		t.Fatalf("neighbors not sorted: %v", nb)
	}
	if len(nb) != 4 {
		t.Fatalf("neighbors = %v", nb)
	}
}

func TestPermuteIsIsomorphic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(20)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(3) == 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := FromEdges(n, edges)
		gamma := r.Perm(n)
		h := g.Permute(gamma)
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("permute changed size")
		}
		for _, e := range g.Edges() {
			if !h.HasEdge(gamma[e[0]], gamma[e[1]]) {
				t.Fatalf("edge (%d,%d) missing image", e[0], e[1])
			}
		}
	}
}

func TestPermuteIdentity(t *testing.T) {
	g := paperGraph()
	id := make([]int, g.N())
	for i := range id {
		id[i] = i
	}
	if !g.Permute(id).Equal(g) {
		t.Fatal("identity permutation changed graph")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	sub, orig := g.InducedSubgraph([]int{5, 0, 1})
	if sub.N() != 3 {
		t.Fatalf("sub.N = %d", sub.N())
	}
	wantOrig := []int{0, 1, 5}
	for i, v := range wantOrig {
		if orig[i] != v {
			t.Fatalf("orig = %v", orig)
		}
	}
	// Edges 0-1 and 0-5 survive; 1-5 absent.
	if sub.M() != 2 {
		t.Fatalf("sub.M = %d, edges %v", sub.M(), sub.Edges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(0, 2) || sub.HasEdge(1, 2) {
		t.Fatalf("wrong induced edges: %v", sub.Edges())
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}, {5, 6}})
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5, 6}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("comps = %v", comps)
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("comps = %v", comps)
			}
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := paperGraph()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("round trip changed graph")
	}
}

func TestReadEdgeListCompaction(t *testing.T) {
	in := "# comment\n10 20\n20 30\n% another\n10 30\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want triangle", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"1\n", "a b\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q) accepted", in)
		}
	}
}

func TestQuickDegreeSum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		var edges [][2]int
		for i := 0; i < 2*n; i++ {
			edges = append(edges, [2]int{r.Intn(n), r.Intn(n)})
		}
		g := FromEdges(n, edges)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		var edges [][2]int
		for i := 0; i < n; i++ {
			edges = append(edges, [2]int{r.Intn(n), r.Intn(n)})
		}
		g := FromEdges(n, edges)
		seen := make([]bool, n)
		total := 0
		for _, c := range g.ConnectedComponents() {
			for _, v := range c {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(20)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(3) == 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := FromEdges(n, edges)
		h := g.Permute(r.Perm(n))
		if g.Fingerprint() != h.Fingerprint() {
			t.Fatalf("fingerprint not invariant (n=%d)", n)
		}
	}
}

func TestFingerprintSeparates(t *testing.T) {
	c6 := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	twoK3 := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	if c6.Fingerprint() == twoK3.Fingerprint() {
		t.Fatal("triangle census should separate C6 from 2K3")
	}
	// CFI-style pairs defeat the fingerprint (same WL profile) — that's
	// expected; the canonical labeler settles those.
}
