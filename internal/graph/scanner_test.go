package graph

import (
	"strings"
	"testing"
)

func g6(t *testing.T, g *Graph) string {
	t.Helper()
	s, err := ToGraph6(g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGraph6ScannerRecords(t *testing.T) {
	c4 := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	p3 := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	k1 := FromEdges(1, nil)
	want := []*Graph{c4, p3, k1}

	in := ">>graph6<<" + g6(t, c4) + "\n\n" + g6(t, p3) + "\n \n" + g6(t, k1) + "\n"
	sc := NewGraph6Scanner(strings.NewReader(in))
	var got []*Graph
	var lines []int
	for sc.Scan() {
		g, err := sc.Graph()
		if err != nil {
			t.Fatalf("line %d: %v", sc.Line(), err)
		}
		got = append(got, g)
		lines = append(lines, sc.Line())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("record %d differs from source graph", i)
		}
	}
	if lines[0] != 1 || lines[1] != 3 || lines[2] != 5 {
		t.Fatalf("record lines = %v", lines)
	}
}

func TestGraph6ScannerHeaderOnOwnLine(t *testing.T) {
	p3 := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	in := ">>graph6<<\n" + g6(t, p3) + "\n"
	sc := NewGraph6Scanner(strings.NewReader(in))
	n := 0
	for sc.Scan() {
		if _, err := sc.Graph(); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("scanned %d records, want 1", n)
	}
}

func TestGraph6ScannerBadRecordReportsPerRecord(t *testing.T) {
	p3 := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	in := g6(t, p3) + "\n~~~\n" + g6(t, p3) + "\n"
	sc := NewGraph6Scanner(strings.NewReader(in))
	var errs, oks int
	for sc.Scan() {
		if _, err := sc.Graph(); err != nil {
			errs++
		} else {
			oks++
		}
	}
	if oks != 2 || errs != 1 {
		t.Fatalf("oks=%d errs=%d, want 2/1", oks, errs)
	}
}

func TestGraph6ScannerEmptyInput(t *testing.T) {
	for _, in := range []string{"", "\n\n", ">>graph6<<\n"} {
		sc := NewGraph6Scanner(strings.NewReader(in))
		if sc.Scan() {
			t.Fatalf("Scan() = true on %q", in)
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("Err() = %v on %q", err, in)
		}
	}
}

func TestEdgeListScannerRecords(t *testing.T) {
	in := `# leading comment block

0 1
1 2

# n=4
0 1
2 3


% another comment only



5 6
6 7
`
	sc := NewEdgeListScanner(strings.NewReader(in))
	var got []*Graph
	var lines []int
	for sc.Scan() {
		g, err := sc.Graph()
		if err != nil {
			t.Fatalf("record at line %d: %v", sc.Line(), err)
		}
		got = append(got, g)
		lines = append(lines, sc.Line())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("scanned %d records, want 3", len(got))
	}
	if got[0].N() != 3 || got[0].M() != 2 {
		t.Fatalf("record 0: n=%d m=%d", got[0].N(), got[0].M())
	}
	// The "# n=4" header fixes the vertex count (isolated vertices kept).
	if got[1].N() != 4 || got[1].M() != 2 {
		t.Fatalf("record 1: n=%d m=%d", got[1].N(), got[1].M())
	}
	if got[2].N() != 3 || got[2].M() != 2 {
		t.Fatalf("record 2: n=%d m=%d", got[2].N(), got[2].M())
	}
	if lines[0] != 3 || lines[1] != 6 {
		t.Fatalf("record start lines = %v", lines)
	}
}

func TestEdgeListScannerEmptyAndCommentOnly(t *testing.T) {
	for _, in := range []string{"", "\n \n", "# only comments\n% more\n"} {
		sc := NewEdgeListScanner(strings.NewReader(in))
		if sc.Scan() {
			t.Fatalf("Scan() = true on %q", in)
		}
	}
}

func TestEdgeListScannerBadRecord(t *testing.T) {
	in := "0 1\n\nnot numbers\n\n2 3\n"
	sc := NewEdgeListScanner(strings.NewReader(in))
	var errs, oks int
	for sc.Scan() {
		if _, err := sc.Graph(); err != nil {
			errs++
		} else {
			oks++
		}
	}
	if oks != 2 || errs != 1 {
		t.Fatalf("oks=%d errs=%d, want 2/1", oks, errs)
	}
}
