package graph

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzReadEdgeList: the parser must never panic and must produce a graph
// that survives a write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# c\n10 20\n% c\n20 30\n")
	f.Add("")
	f.Add("1\n")
	f.Add("a b\n")
	f.Add("999999 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteEdgeList(&sb, g); err != nil {
			t.Fatalf("write failed on parsed graph: %v", err)
		}
		h, err := ReadEdgeList(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if !g.Equal(h) {
			t.Fatal("round trip changed graph")
		}
	})
}

// FuzzFromGraph6: arbitrary bytes must never panic; valid decodings must
// re-encode to an equivalent graph.
func FuzzFromGraph6(f *testing.F) {
	f.Add("A_")
	f.Add("D?{")
	f.Add("~??")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := FromGraph6(in)
		if err != nil {
			return
		}
		s, err := ToGraph6(g)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		h, err := FromGraph6(s)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !g.Equal(h) {
			t.Fatal("graph6 round trip changed graph")
		}
	})
}

// FuzzGraph6Scanner: the incremental scanner must never panic, must
// terminate, and — record by record — must agree with the whole-string
// FromGraph6 parser: same error-ness, and on success the identical graph.
func FuzzGraph6Scanner(f *testing.F) {
	f.Add("A_\nD?{\n")
	f.Add(">>graph6<<A_\n\nBw\n")
	f.Add("~??")          // truncated extended-size header
	f.Add("~~~~~~~~")     // n >= 2^18 marker, oversized
	f.Add("\x00\x01\x02") // garbage bytes
	f.Add("C\nC?\nC??\n") // truncated data sections
	f.Fuzz(func(t *testing.T, in string) {
		sc := NewGraph6Scanner(strings.NewReader(in))
		records := 0
		for sc.Scan() {
			records++
			if records > 1<<16 {
				t.Fatal("scanner produced implausibly many records")
			}
			raw := sc.Text()
			if raw == "" {
				t.Fatal("Scan() = true but Text() empty")
			}
			if sc.Line() <= 0 {
				t.Fatalf("Line() = %d on a scanned record", sc.Line())
			}
			g, err := sc.Graph()
			g2, err2 := FromGraph6(raw)
			if (err == nil) != (err2 == nil) {
				t.Fatalf("scanner err %v, FromGraph6 err %v on %q", err, err2, raw)
			}
			if err == nil && !g.Equal(g2) {
				t.Fatalf("scanner and FromGraph6 disagree on %q", raw)
			}
		}
		if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
			t.Fatalf("unexpected scanner error: %v", err)
		}
	})
}
