package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList: the parser must never panic and must produce a graph
// that survives a write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# c\n10 20\n% c\n20 30\n")
	f.Add("")
	f.Add("1\n")
	f.Add("a b\n")
	f.Add("999999 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteEdgeList(&sb, g); err != nil {
			t.Fatalf("write failed on parsed graph: %v", err)
		}
		h, err := ReadEdgeList(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if !g.Equal(h) {
			t.Fatal("round trip changed graph")
		}
	})
}

// FuzzFromGraph6: arbitrary bytes must never panic; valid decodings must
// re-encode to an equivalent graph.
func FuzzFromGraph6(f *testing.F) {
	f.Add("A_")
	f.Add("D?{")
	f.Add("~??")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := FromGraph6(in)
		if err != nil {
			return
		}
		s, err := ToGraph6(g)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		h, err := FromGraph6(s)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !g.Equal(h) {
			t.Fatal("graph6 round trip changed graph")
		}
	})
}
