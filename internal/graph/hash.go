package graph

import (
	"crypto/sha256"
	"encoding/binary"
)

// Hash returns a collision-resistant digest of g as a *labeled* graph:
// two graphs hash equal iff they have identical vertex counts and
// identical adjacency (the same property Equal tests), up to SHA-256
// collisions. Unlike Fingerprint it is NOT isomorphism-invariant — a
// relabeled copy hashes differently — which is exactly what makes it a
// safe cache key for per-graph derived values such as canonical
// certificates.
func (g *Graph) Hash() [32]byte {
	h := sha256.New()
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], uint64(g.N()))
	h.Write(word[:])
	buf := make([]byte, 0, 4*max(len(g.offsets), len(g.adj)))
	for _, off := range g.offsets {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(off))
	}
	h.Write(buf)
	buf = buf[:0]
	for _, w := range g.adj {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(w))
	}
	h.Write(buf)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
