package graph

import (
	"fmt"
	"strings"
)

// Graph6 support: the compact ASCII format used by nauty's tools (and the
// bliss benchmark collection) to exchange undirected graphs. Only the
// standard variant for n < 2^18 is implemented, which covers every graph
// the paper's evaluation exchanges.

// ToGraph6 encodes g in graph6 format (without trailing newline).
func ToGraph6(g *Graph) (string, error) {
	n := g.N()
	if n >= 1<<18 {
		return "", fmt.Errorf("graph6: n=%d too large (max 2^18-1)", n)
	}
	var b strings.Builder
	switch {
	case n <= 62:
		b.WriteByte(byte(n + 63))
	default:
		b.WriteByte(126)
		b.WriteByte(byte((n>>12)&63) + 63)
		b.WriteByte(byte((n>>6)&63) + 63)
		b.WriteByte(byte(n&63) + 63)
	}
	// Upper triangle, column by column: bit (i, j) for i < j ordered by
	// (j, i).
	var bits []bool
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			bits = append(bits, g.HasEdge(i, j))
		}
	}
	for k := 0; k < len(bits); k += 6 {
		var x byte
		for t := 0; t < 6; t++ {
			x <<= 1
			if k+t < len(bits) && bits[k+t] {
				x |= 1
			}
		}
		b.WriteByte(x + 63)
	}
	return b.String(), nil
}

// FromGraph6 decodes a graph6 string.
func FromGraph6(s string) (*Graph, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("graph6: empty input")
	}
	pos := 0
	var n int
	if s[0] == 126 {
		if len(s) < 4 {
			return nil, fmt.Errorf("graph6: truncated size header")
		}
		if s[1] == 126 {
			return nil, fmt.Errorf("graph6: n >= 2^18 unsupported")
		}
		n = int(s[1]-63)<<12 | int(s[2]-63)<<6 | int(s[3]-63)
		pos = 4
	} else {
		if s[0] < 63 || s[0] > 126 {
			return nil, fmt.Errorf("graph6: bad size byte %q", s[0])
		}
		n = int(s[0] - 63)
		pos = 1
	}
	need := (n*(n-1)/2 + 5) / 6
	if len(s)-pos < need {
		return nil, fmt.Errorf("graph6: need %d data bytes, have %d", need, len(s)-pos)
	}
	b := NewBuilder(n)
	bitIdx := 0
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			byteIdx := pos + bitIdx/6
			c := s[byteIdx]
			if c < 63 || c > 126 {
				return nil, fmt.Errorf("graph6: bad data byte %q", c)
			}
			bit := (c - 63) >> (5 - uint(bitIdx%6)) & 1
			if bit == 1 {
				b.AddEdge(i, j)
			}
			bitIdx++
		}
	}
	return b.Build(), nil
}
