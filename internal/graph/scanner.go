package graph

import (
	"bufio"
	"io"
	"strings"
)

// Incremental record scanners: the streaming decoders under the bulk
// ingest pipeline (internal/pipeline, cmd/bulkload, indexd /bulk). Unlike
// FromGraph6/ReadEdgeList — which consume one whole input — these walk a
// multi-graph file record by record, holding at most one record in memory
// at a time, so a multi-gigabyte collection streams through the pipeline
// without ever being buffered.

// maxScanLine bounds a single record line. A graph6 record for the
// largest supported n (2^18−1) would not fit, but such graphs are far
// beyond what bulk ingest canonicalizes per-record anyway; a longer line
// surfaces as bufio.ErrTooLong through Err(), never as unbounded memory.
const maxScanLine = 64 << 20

// graph6Header is the optional file header emitted by nauty's tools.
const graph6Header = ">>graph6<<"

// Graph6Scanner reads a stream of graph6 records (one per line, the
// format of nauty's .g6 files) incrementally. Blank lines are skipped and
// an optional leading ">>graph6<<" header is recognized, whether it sits
// on its own line or is glued to the first record.
//
// Usage mirrors bufio.Scanner:
//
//	sc := NewGraph6Scanner(r)
//	for sc.Scan() {
//		g, err := sc.Graph() // or: decode sc.Text() elsewhere
//	}
//	if err := sc.Err(); err != nil { ... }
type Graph6Scanner struct {
	sc    *bufio.Scanner
	text  string
	line  int
	first bool
}

// NewGraph6Scanner returns a scanner over r.
func NewGraph6Scanner(r io.Reader) *Graph6Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxScanLine)
	return &Graph6Scanner{sc: sc, first: true}
}

// Scan advances to the next record, reporting false at EOF or on a read
// error (distinguish via Err).
func (s *Graph6Scanner) Scan() bool {
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if s.first {
			s.first = false
			text = strings.TrimPrefix(text, graph6Header)
			text = strings.TrimSpace(text)
		}
		if text == "" {
			continue
		}
		s.text = text
		return true
	}
	s.text = ""
	return false
}

// Text returns the raw graph6 record of the last Scan.
func (s *Graph6Scanner) Text() string { return s.text }

// Line returns the 1-based input line of the last Scan, for error
// reporting.
func (s *Graph6Scanner) Line() int { return s.line }

// Graph decodes the current record.
func (s *Graph6Scanner) Graph() (*Graph, error) { return FromGraph6(s.text) }

// Err returns the first read error encountered (nil at clean EOF).
func (s *Graph6Scanner) Err() error { return s.sc.Err() }

// EdgeListScanner reads a stream of edge-list records incrementally. A
// record is a maximal run of non-blank lines in the format ReadEdgeList
// accepts ("u v" per line, '#'/'%' comments, optional "# n=<count>"
// header); one or more blank lines separate records. A run consisting
// only of comments (without an n-header) is skipped rather than decoded
// as an empty graph, so trailing comment blocks are harmless.
type EdgeListScanner struct {
	sc        *bufio.Scanner
	block     strings.Builder
	text      string
	line      int
	startLine int
	done      bool
}

// NewEdgeListScanner returns a scanner over r.
func NewEdgeListScanner(r io.Reader) *EdgeListScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxScanLine)
	return &EdgeListScanner{sc: sc}
}

// Scan advances to the next record, reporting false at EOF or on a read
// error (distinguish via Err).
func (s *EdgeListScanner) Scan() bool {
	for !s.done {
		s.block.Reset()
		start := 0
		meaningful := false
		for {
			if !s.sc.Scan() {
				s.done = true
				break
			}
			s.line++
			text := strings.TrimSpace(s.sc.Text())
			if text == "" {
				if s.block.Len() > 0 {
					break // record boundary
				}
				continue // leading blank lines
			}
			if s.block.Len() == 0 {
				start = s.line
			}
			s.block.WriteString(text)
			s.block.WriteByte('\n')
			if text[0] != '#' && text[0] != '%' {
				meaningful = true
			} else if strings.HasPrefix(text, "# n=") {
				meaningful = true
			}
		}
		if s.block.Len() > 0 && meaningful {
			s.text = s.block.String()
			s.startLine = start
			return true
		}
		// comment-only block (or EOF with nothing buffered): keep going
		if s.done {
			s.text = ""
			return false
		}
	}
	s.text = ""
	return false
}

// Text returns the raw lines of the current record (newline-joined).
func (s *EdgeListScanner) Text() string { return s.text }

// Line returns the 1-based input line the current record starts on.
func (s *EdgeListScanner) Line() int { return s.startLine }

// Graph decodes the current record.
func (s *EdgeListScanner) Graph() (*Graph, error) {
	return ReadEdgeList(strings.NewReader(s.text))
}

// Err returns the first read error encountered (nil at clean EOF).
func (s *EdgeListScanner) Err() error { return s.sc.Err() }
