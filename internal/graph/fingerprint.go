package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Fingerprint returns a cheap isomorphism-invariant hash of g: equal for
// isomorphic graphs, and distinguishing most non-isomorphic pairs without
// running a canonical labeler. It combines the degree sequence, the
// per-vertex 2-hop degree-sum profile, and the per-vertex triangle
// counts — all permutation-invariant after sorting.
//
// Use it as a pre-filter: unequal fingerprints prove non-isomorphism;
// equal fingerprints require a canonical-labeling comparison.
func (g *Graph) Fingerprint() [32]byte {
	n := g.N()
	h := sha256.New()
	var word [8]byte
	put := func(x uint64) {
		binary.BigEndian.PutUint64(word[:], x)
		h.Write(word[:])
	}
	put(uint64(n))
	put(uint64(g.M()))

	// Sorted degree sequence.
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = g.Degree(v)
	}
	sorted := append([]int(nil), degs...)
	sort.Ints(sorted)
	for _, d := range sorted {
		put(uint64(d))
	}

	// Sorted 2-hop degree sums (one WL round, order-free).
	hop2 := make([]int, n)
	for v := 0; v < n; v++ {
		sum := 0
		g.Neighbors(v, func(w int) { sum += degs[w] })
		hop2[v] = sum
	}
	sort.Ints(hop2)
	for _, s := range hop2 {
		put(uint64(s))
	}

	// Sorted per-vertex triangle participation (forward algorithm:
	// O(m^1.5), safe for hub-heavy graphs).
	tri := trianglesPerVertex(g)
	sort.Ints(tri)
	for _, c := range tri {
		put(uint64(c))
	}

	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// trianglesPerVertex counts, for each vertex, the triangles through it,
// with edges oriented from lower to higher degree.
func trianglesPerVertex(g *Graph) []int {
	n := g.N()
	rank := make([]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	for r, v := range order {
		rank[v] = r
	}
	forward := make([][]int32, n)
	for v := 0; v < n; v++ {
		g.Neighbors(v, func(w int) {
			if rank[w] > rank[v] {
				forward[v] = append(forward[v], int32(w))
			}
		})
	}
	tri := make([]int, n)
	for v := 0; v < n; v++ {
		fv := forward[v]
		for _, w32 := range fv {
			w := int(w32)
			fw := forward[w]
			i, j := 0, 0
			for i < len(fv) && j < len(fw) {
				switch {
				case fv[i] < fw[j]:
					i++
				case fv[i] > fw[j]:
					j++
				default:
					tri[v]++
					tri[w]++
					tri[int(fv[i])]++
					i++
					j++
				}
			}
		}
	}
	return tri
}
