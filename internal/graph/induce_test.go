package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// induceCSR is the test harness around the two-call induction API: it
// builds the idx table, runs InduceOffsets/InduceAdj, restores idx, and
// wraps the result.
func induceCSR(g *Graph, verts []int32, idx []int32) *Graph {
	for i, v := range verts {
		idx[v] = int32(i) + 1
	}
	offsets := make([]int32, len(verts)+1)
	adj := make([]int32, g.InduceOffsets(verts, idx, offsets))
	g.InduceAdj(verts, idx, adj)
	for _, v := range verts {
		idx[v] = 0
	}
	sub := FromCSR(offsets, adj)
	return &sub
}

// TestInduceMatchesInducedSubgraph cross-checks the allocation-free
// induction against the map-based reference on random graphs and random
// vertex subsets.
func TestInduceMatchesInducedSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		for e := 0; e < 3*n; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		var vs []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				vs = append(vs, v)
			}
		}
		sort.Ints(vs)
		want, _ := g.InducedSubgraph(vs)
		v32 := make([]int32, len(vs))
		for i, v := range vs {
			v32[i] = int32(v)
		}
		got := induceCSR(g, v32, make([]int32, n))
		if !got.Equal(want) {
			t.Fatalf("trial %d: induced CSR differs from reference on %v", trial, vs)
		}
		// Rows must come out sorted without any per-row sort.
		for v := 0; v < got.N(); v++ {
			nb := got.Neighbors32(v)
			for i := 1; i < len(nb); i++ {
				if nb[i-1] >= nb[i] {
					t.Fatalf("trial %d: row %d not strictly ascending: %v", trial, v, nb)
				}
			}
		}
	}
}

func TestInduceEmptyAndFull(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	idx := make([]int32, 4)
	if sub := induceCSR(g, nil, idx); sub.N() != 0 || sub.M() != 0 {
		t.Fatalf("empty induction: n=%d m=%d", sub.N(), sub.M())
	}
	full := induceCSR(g, []int32{0, 1, 2, 3}, idx)
	if !full.Equal(g) {
		t.Fatal("inducing on all vertices must reproduce the graph")
	}
}

func TestFromCSRAndClone(t *testing.T) {
	offsets := []int32{0, 1, 2}
	adj := []int32{1, 0}
	g := FromCSR(offsets, adj)
	if g.N() != 2 || g.M() != 1 || !g.HasEdge(0, 1) {
		t.Fatalf("FromCSR: n=%d m=%d", g.N(), g.M())
	}
	c := g.Clone()
	adj[0] = 0 // corrupt the caller-owned array
	adj[1] = 1
	if !c.HasEdge(0, 1) {
		t.Fatal("Clone shares backing arrays with the source")
	}
}

func TestK1(t *testing.T) {
	g := K1()
	if g.N() != 1 || g.M() != 0 {
		t.Fatalf("K1: n=%d m=%d", g.N(), g.M())
	}
	if !g.Equal(FromEdges(1, nil)) {
		t.Fatal("K1 differs from FromEdges(1, nil)")
	}
	if K1() != g {
		t.Fatal("K1 should be a shared instance")
	}
}
