// Package graph provides the undirected simple-graph substrate used by the
// whole system: an immutable CSR (compressed sparse row) representation,
// builders, induced subgraphs, permutation application, connected
// components, and the summary statistics reported in Tables 1 and 2 of the
// paper.
//
// Graphs are undirected, without self-loops or multi-edges, exactly as in
// Section 2 of the paper. Vertices are 0-based integers.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected simple graph in CSR form.
type Graph struct {
	offsets []int32 // len n+1
	adj     []int32 // len 2m, each neighbor list sorted ascending
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are silently dropped, matching the dataset preprocessing
// described in Section 7 of the paper.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge (u, v). Self-loops are ignored.
// It panics if u or v is out of range; edge input is programmer-controlled
// in every call site, so a bad vertex is a bug, not an input error.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build finalizes the builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	// Deduplicate.
	uniq := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	deg := make([]int32, b.n)
	for _, e := range uniq {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int32, b.n+1)
	for i := 0; i < b.n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range uniq {
		adj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		adj[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	g := &Graph{offsets: offsets, adj: adj}
	for v := 0; v < b.n; v++ {
		nb := g.neighbors32(v)
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g
}

// FromCSR wraps prebuilt CSR arrays as a Graph value without copying or
// validating. offsets must have length n+1 with offsets[0] == 0 and each
// row sorted ascending and mirror-consistent — exactly what InduceOffsets
// and InduceAdj produce. The caller owns the arrays: the graph is valid
// only while they stay alive and unmodified (arena-backed graphs become
// invalid when their arena frame is released; use Clone to promote one).
func FromCSR(offsets, adj []int32) Graph {
	return Graph{offsets: offsets, adj: adj}
}

// Clone returns a self-contained copy of g with fresh backing arrays,
// promoting an arena-backed view to an ordinary heap graph.
func (g *Graph) Clone() *Graph {
	return &Graph{
		offsets: append([]int32(nil), g.offsets...),
		adj:     append([]int32(nil), g.adj...),
	}
}

var k1 = &Graph{offsets: []int32{0, 0}}

// K1 returns the one-vertex empty graph. It is a shared immutable
// instance so callers that materialize many singleton subgraphs do not
// allocate one each.
func K1() *Graph { return k1 }

// InduceOffsets computes the CSR offsets of the subgraph of g induced by
// verts, writing them into offsets (length len(verts)+1) and returning
// the induced adjacency length. verts must be ascending; idx is the
// membership table: idx[v] == local index+1 for exactly the vertices in
// verts and 0 everywhere else (the caller builds it and restores it to
// zero afterwards — typically engine.Workspace.LocalIdx).
func (g *Graph) InduceOffsets(verts []int32, idx []int32, offsets []int32) int {
	off := int32(0)
	offsets[0] = 0
	for i, v := range verts {
		for _, w := range g.neighbors32(int(v)) {
			if idx[w] != 0 {
				off++
			}
		}
		offsets[i+1] = off
	}
	return int(off)
}

// InduceAdj fills adj (sized by InduceOffsets' return value) with the
// induced adjacency, relabeled to local indices. Because verts is
// ascending, the index map is monotone and every induced row comes out
// sorted without any per-row sort — the property the whole arena build
// path relies on.
func (g *Graph) InduceAdj(verts []int32, idx []int32, adj []int32) {
	p := 0
	for _, v := range verts {
		for _, w := range g.neighbors32(int(v)) {
			if j := idx[w]; j != 0 {
				adj[p] = j - 1
				p++
			}
		}
	}
}

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

func (g *Graph) neighbors32(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns d(v) = |N(v)|.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors calls fn for each neighbor of v in ascending order.
func (g *Graph) Neighbors(v int, fn func(w int)) {
	for _, w := range g.neighbors32(v) {
		fn(int(w))
	}
}

// Neighbors32 returns the sorted neighbor list of v as a zero-copy view
// of the graph's adjacency array. The caller must not modify it. The
// refinement hot loop uses this to iterate adjacency without a callback.
func (g *Graph) Neighbors32(v int) []int32 {
	return g.neighbors32(v)
}

// NeighborSlice returns the sorted neighbor list of v as a fresh []int.
func (g *Graph) NeighborSlice(v int) []int {
	nb := g.neighbors32(v)
	out := make([]int, len(nb))
	for i, w := range nb {
		out[i] = int(w)
	}
	return out
}

// HasEdge reports whether (u, v) ∈ E using binary search over the shorter
// adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nb := g.neighbors32(u)
	t := int32(v)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= t })
	return i < len(nb) && nb[i] == t
}

// Edges returns the sorted list of edges (u < v).
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.M())
	for u := 0; u < g.N(); u++ {
		for _, w := range g.neighbors32(u) {
			if int(w) > u {
				out = append(out, [2]int{u, int(w)})
			}
		}
	}
	return out
}

// MaxDegree returns d_max.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns d_avg = 2m/n.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(2*g.M()) / float64(g.N())
}

// Permute returns Gᵞ: vertex v of g becomes vertex gamma[v]. gamma must be
// a bijection on {0,…,n−1}.
func (g *Graph) Permute(gamma []int) *Graph {
	if len(gamma) != g.N() {
		panic("graph: permutation length mismatch")
	}
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddEdge(gamma[e[0]], gamma[e[1]])
	}
	return b.Build()
}

// Equal reports whether g and h are the same labeled graph.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	if len(g.offsets) != len(h.offsets) || len(g.adj) != len(h.adj) {
		return false
	}
	for i := range g.offsets {
		if g.offsets[i] != h.offsets[i] {
			return false
		}
	}
	for i := range g.adj {
		if g.adj[i] != h.adj[i] {
			return false
		}
	}
	return true
}

// InducedSubgraph returns the subgraph of g induced by vs, together with
// the mapping back to g: local vertex i corresponds to original vertex
// orig[i]. vs need not be sorted; orig is sorted ascending.
func (g *Graph) InducedSubgraph(vs []int) (sub *Graph, orig []int) {
	orig = append([]int(nil), vs...)
	sort.Ints(orig)
	local := make(map[int]int, len(orig))
	for i, v := range orig {
		local[v] = i
	}
	b := NewBuilder(len(orig))
	for i, v := range orig {
		g.Neighbors(v, func(w int) {
			if j, ok := local[w]; ok && j > i {
				b.AddEdge(i, j)
			}
		})
	}
	return b.Build(), orig
}

// ConnectedComponents returns the vertex sets of the connected components
// of g, each sorted ascending, ordered by their minimum vertex.
func (g *Graph) ConnectedComponents() [][]int {
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int32, 0, 64)
	for s := 0; s < g.N(); s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(len(comps))
		comp[s] = id
		queue = append(queue[:0], int32(s))
		members := []int{s}
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.neighbors32(int(v)) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
					members = append(members, int(w))
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	return comps
}

// Stats holds the per-graph summary columns of Tables 1 and 2.
type Stats struct {
	N, M   int
	MaxDeg int
	AvgDeg float64
}

// Summary computes the |V|, |E|, d_max, d_avg columns of Tables 1 and 2.
func (g *Graph) Summary() Stats {
	return Stats{N: g.N(), M: g.M(), MaxDeg: g.MaxDegree(), AvgDeg: g.AvgDegree()}
}
