package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraph6KnownEncodings(t *testing.T) {
	// Canonical test vectors from the nauty documentation:
	// "A_" is K2; "D?{" is ... verify via round-trips and known cases.
	k2 := FromEdges(2, [][2]int{{0, 1}})
	s, err := ToGraph6(k2)
	if err != nil {
		t.Fatal(err)
	}
	if s != "A_" {
		t.Fatalf("K2 graph6 = %q, want \"A_\"", s)
	}
	// The 5-cycle's standard encoding is "DqK" per nauty's formats.txt...
	// derive by round-trip instead of hard-coding disputed vectors.
	c5 := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	enc, err := ToGraph6(c5)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := FromGraph6(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(c5) {
		t.Fatalf("C5 round trip failed: %q", enc)
	}
}

func TestGraph6EmptyAndSingle(t *testing.T) {
	for n := 0; n <= 3; n++ {
		g := FromEdges(n, nil)
		s, err := ToGraph6(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FromGraph6(s)
		if err != nil {
			t.Fatal(err)
		}
		if got.N() != n || got.M() != 0 {
			t.Fatalf("n=%d round trip: %d/%d", n, got.N(), got.M())
		}
	}
}

func TestGraph6RoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(80)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Intn(3) == 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := FromEdges(n, edges)
		s, err := ToGraph6(g)
		if err != nil {
			return false
		}
		h, err := FromGraph6(s)
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGraph6LargeN(t *testing.T) {
	// n = 100 uses the extended header.
	var edges [][2]int
	for i := 0; i+1 < 100; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	g := FromEdges(100, edges)
	s, err := ToGraph6(g)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 126 {
		t.Fatalf("expected extended header, got %q", s[:4])
	}
	h, err := FromGraph6(s)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Equal(g) {
		t.Fatal("P100 round trip failed")
	}
}

func TestGraph6Errors(t *testing.T) {
	for _, in := range []string{"", "D", "~", "~~A", "A\x01"} {
		if _, err := FromGraph6(in); err == nil {
			t.Errorf("FromGraph6(%q) accepted", in)
		}
	}
}
