package dvicl

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dvicl/internal/store"
)

// TestShardedIndexDeterministicIDs: for a fixed shard count, the id
// sequence assigned to a stream of adds is a pure function of the input
// order — two fresh indexes given the same stream agree exactly.
func TestShardedIndexDeterministicIDs(t *testing.T) {
	graphs := indexTestGraphs()
	run := func() []int {
		ix := NewShardedGraphIndex(Options{}, 4)
		var ids []int
		for i := 0; i < 3; i++ {
			for _, g := range graphs {
				id, _, err := ix.Add(g)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
		}
		return ids
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("id %d differs between identical runs: %d != %d", i, a[i], b[i])
		}
	}
	// Certificates are shard-independent: a single-shard index groups the
	// same stream into the same classes.
	single := NewGraphIndex(Options{})
	sharded := NewShardedGraphIndex(Options{}, 8)
	for _, g := range graphs {
		mustAdd(t, single, g)
		mustAdd(t, sharded, g)
	}
	if single.Classes() != sharded.Classes() || single.Len() != sharded.Len() {
		t.Fatalf("single %d/%d vs sharded %d/%d",
			single.Len(), single.Classes(), sharded.Len(), sharded.Classes())
	}
}

// TestShardedIndexPersistence: a sharded on-disk index reloads with
// identical lookups, and the manifest makes the shard count sticky — a
// reopen requesting a different count adopts the on-disk one.
func TestShardedIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	graphs := indexTestGraphs()

	ix, err := OpenGraphIndex(dir, IndexOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var lookups [][]int
	for _, g := range graphs {
		mustAdd(t, ix, g)
	}
	for _, g := range graphs {
		lookups = append(lookups, ix.Lookup(g))
	}
	st := ix.Stats()
	if st.Shards != 4 || len(st.ShardGraphs) != 4 {
		t.Fatalf("stats: %+v", st)
	}
	sum := 0
	for _, n := range st.ShardGraphs {
		sum += n
	}
	if sum != len(graphs) || st.Duplicates != len(graphs)-4 {
		t.Fatalf("shard balance %v (sum %d), duplicates %d", st.ShardGraphs, sum, st.Duplicates)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen asking for 16 shards: the manifest wins, ids are unchanged.
	ix2, err := OpenGraphIndex(dir, IndexOptions{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if got := ix2.Stats().Shards; got != 4 {
		t.Fatalf("reopened shard count = %d, want manifest's 4", got)
	}
	for i, g := range graphs {
		got := ix2.Lookup(g)
		if len(got) != len(lookups[i]) {
			t.Fatalf("graph %d: lookup %v != %v", i, got, lookups[i])
		}
		for j := range got {
			if got[j] != lookups[i][j] {
				t.Fatalf("graph %d: lookup %v != %v", i, got, lookups[i])
			}
		}
	}
}

// TestShardedIndexLegacyLayout: a directory created by a single-shard
// index (PR 2 layout: index.snap/index.wal at the root, no manifest)
// reopens as one shard even when more are requested.
func TestShardedIndexLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenGraphIndex(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	graphs := indexTestGraphs()
	for _, g := range graphs {
		mustAdd(t, ix, g)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, store.ManifestName)); !os.IsNotExist(err) {
		t.Fatalf("single-shard index wrote a manifest: %v", err)
	}

	ix2, err := OpenGraphIndex(dir, IndexOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if got := ix2.Stats().Shards; got != 1 {
		t.Fatalf("legacy layout adopted as %d shards, want 1", got)
	}
	if ix2.Len() != len(graphs) {
		t.Fatalf("legacy reload lost graphs: %d", ix2.Len())
	}
}

// TestShardedIndexCrashRecovery is the multi-WAL kill -9 scenario: no
// Close (so no final snapshots), plus a torn partial record appended to
// every shard WAL by hand. Reopening must recover every acknowledged add
// and report the torn tails.
func TestShardedIndexCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	const shards = 4
	graphs := indexTestGraphs()

	ix, err := OpenGraphIndex(dir, IndexOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for i := 0; i < 4; i++ {
		for _, g := range graphs {
			id, _, err := ix.Add(g)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	// No Close — "crashed". Tear every shard WAL that exists.
	torn := 0
	for i := 0; i < shards; i++ {
		wal := filepath.Join(dir, store.ShardDir(i), store.WALName)
		if _, err := os.Stat(wal); err != nil {
			continue
		}
		f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x10, 0x00}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		torn += 2
	}
	if torn == 0 {
		t.Fatal("no shard WALs found to tear")
	}

	ix2, err := OpenGraphIndex(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	st := ix2.Stats()
	if st.Graphs != 4*len(graphs) || st.Shards != shards {
		t.Fatalf("recovery stats: %+v", st)
	}
	if st.RecoveredBytes != int64(torn) {
		t.Fatalf("recovered bytes = %d, want %d", st.RecoveredBytes, torn)
	}
	k := 0
	for i := 0; i < 4; i++ {
		for _, g := range graphs {
			got := ix2.Lookup(g)
			found := false
			for _, id := range got {
				if id == ids[k] {
					found = true
				}
			}
			if !found {
				t.Fatalf("add %d: id %d missing from lookup %v", k, ids[k], got)
			}
			k++
		}
	}
}

// TestShardedIndexHammer is the -race stress for the sharded index:
// concurrent bulk-style AddCert traffic, graph Adds, Lookups, and Stats
// against a persistent 4-shard index with a tiny compaction threshold, so
// per-shard background compaction races real traffic. Then a reload
// verifies nothing acknowledged was lost.
func TestShardedIndexHammer(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenGraphIndex(dir, IndexOptions{Shards: 4, CompactEvery: 8, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	graphs := indexTestGraphs()
	certs := make([]string, len(graphs))
	for i, g := range graphs {
		certs[i] = ix.Certificate(g)
	}

	const workers = 8
	const opsPerWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				k := (w + i) % len(graphs)
				switch i % 3 {
				case 0: // bulk path
					if _, _, err := ix.AddCert(certs[k]); err != nil {
						t.Error(err)
						return
					}
				case 1: // interactive path
					if _, _, err := ix.Add(graphs[k]); err != nil {
						t.Error(err)
						return
					}
				default:
					ix.Lookup(graphs[k])
				}
				_ = ix.Stats()
			}
		}(w)
	}
	wg.Wait()

	wantGraphs := 0
	for w := 0; w < workers; w++ {
		for i := 0; i < opsPerWorker; i++ {
			if i%3 != 2 {
				wantGraphs++
			}
		}
	}
	if ix.Len() != wantGraphs || ix.Classes() != 4 {
		t.Fatalf("len=%d classes=%d, want %d/4", ix.Len(), ix.Classes(), wantGraphs)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	ix2, err := OpenGraphIndex(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if ix2.Len() != wantGraphs || ix2.Classes() != 4 {
		t.Fatalf("reloaded len=%d classes=%d", ix2.Len(), ix2.Classes())
	}
	total := 0
	for _, g := range graphs[:4] {
		total += len(ix2.Lookup(g))
	}
	if total != wantGraphs {
		t.Fatalf("class sizes sum to %d, want %d", total, wantGraphs)
	}
}
