package dvicl

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// certCache is a bounded LRU map from a labeled-graph hash (graph.Hash,
// exact identity — NOT isomorphism-invariant) to the graph's canonical
// certificate. Repeated Adds/Lookups of the same labeled graph skip the
// DviCL build entirely; a relabeled copy misses and is computed normally.
// Safe for concurrent use.
type certCache struct {
	mu    sync.Mutex
	cap   int
	items map[[32]byte]*list.Element
	order *list.List // front = most recently used

	hits   atomic.Int64
	misses atomic.Int64
}

type certEntry struct {
	key  [32]byte
	cert string
}

func newCertCache(capacity int) *certCache {
	return &certCache{
		cap:   capacity,
		items: make(map[[32]byte]*list.Element, capacity),
		order: list.New(),
	}
}

// get returns the cached certificate for key, promoting it to most
// recently used. The hit/miss tallies feed IndexStats and the obs
// counters.
func (c *certCache) get(key [32]byte) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return "", false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*certEntry).cert, true
}

// put inserts (or refreshes) key→cert, evicting the least recently used
// entry when over capacity.
func (c *certCache) put(key [32]byte, cert string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*certEntry).cert = cert
		return
	}
	c.items[key] = c.order.PushFront(&certEntry{key: key, cert: cert})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*certEntry).key)
	}
}

// len returns the current entry count.
func (c *certCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
