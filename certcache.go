package dvicl

import (
	"container/list"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// certCache is a striped, bounded LRU map from a labeled-graph hash
// (graph.Hash, exact identity — NOT isomorphism-invariant) to the graph's
// canonical certificate. Repeated Adds/Lookups of the same labeled graph
// skip the DviCL build entirely; a relabeled copy misses and is computed
// normally. The cache is partitioned into independently locked ways
// (sized to the index's shard count) so concurrent probes from many
// ingest workers do not serialize on one mutex; the capacity is split
// evenly across ways, and eviction is LRU within a way. Safe for
// concurrent use.
type certCache struct {
	ways []*certWay

	hits   atomic.Int64
	misses atomic.Int64
}

// certWay is one stripe: a classic mutex-guarded LRU.
type certWay struct {
	mu    sync.Mutex
	cap   int
	items map[[32]byte]*list.Element
	order *list.List // front = most recently used
}

type certEntry struct {
	key  [32]byte
	cert string
}

// newCertCache builds a cache of roughly `capacity` total entries split
// across `ways` stripes (clamped to [1, capacity] so every way holds at
// least one entry).
func newCertCache(capacity, ways int) *certCache {
	if ways < 1 {
		ways = 1
	}
	if ways > capacity {
		ways = capacity
	}
	perWay := (capacity + ways - 1) / ways
	c := &certCache{ways: make([]*certWay, ways)}
	for i := range c.ways {
		c.ways[i] = &certWay{
			cap:   perWay,
			items: make(map[[32]byte]*list.Element, perWay),
			order: list.New(),
		}
	}
	return c
}

// way picks the stripe for a key. The key is a SHA-256 digest, so any
// fixed 8 bytes of it are uniform.
func (c *certCache) way(key [32]byte) *certWay {
	if len(c.ways) == 1 {
		return c.ways[0]
	}
	return c.ways[binary.LittleEndian.Uint64(key[:8])%uint64(len(c.ways))]
}

// get returns the cached certificate for key, promoting it to most
// recently used in its way. The hit/miss tallies feed IndexStats and the
// obs counters.
func (c *certCache) get(key [32]byte) (string, bool) {
	w := c.way(key)
	w.mu.Lock()
	defer w.mu.Unlock()
	el, ok := w.items[key]
	if !ok {
		c.misses.Add(1)
		return "", false
	}
	w.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*certEntry).cert, true
}

// put inserts (or refreshes) key→cert, evicting the way's least recently
// used entry when the way is over capacity.
func (c *certCache) put(key [32]byte, cert string) {
	w := c.way(key)
	w.mu.Lock()
	defer w.mu.Unlock()
	if el, ok := w.items[key]; ok {
		w.order.MoveToFront(el)
		el.Value.(*certEntry).cert = cert
		return
	}
	w.items[key] = w.order.PushFront(&certEntry{key: key, cert: cert})
	if w.order.Len() > w.cap {
		oldest := w.order.Back()
		w.order.Remove(oldest)
		delete(w.items, oldest.Value.(*certEntry).key)
	}
}

// len returns the current entry count across all ways.
func (c *certCache) len() int {
	n := 0
	for _, w := range c.ways {
		w.mu.Lock()
		n += w.order.Len()
		w.mu.Unlock()
	}
	return n
}
