package dvicl

import (
	"math/big"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	c4 := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	tree := BuildAutoTree(c4, nil, Options{})
	if tree.AutOrder().Cmp(big.NewInt(8)) != 0 {
		t.Fatalf("|Aut(C4)| = %v, want 8", tree.AutOrder())
	}
	p4 := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if Isomorphic(c4, p4) {
		t.Fatal("C4 isomorphic to P4?")
	}
	relabeled := c4.Permute([]int{2, 0, 3, 1})
	if !Isomorphic(c4, relabeled) {
		t.Fatal("C4 not isomorphic to its relabeling")
	}
}

func TestFacadeAutomorphismGroup(t *testing.T) {
	pete := FromEdges(10, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
		{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},
		{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
	})
	gens, order := AutomorphismGroup(pete)
	if order.Cmp(big.NewInt(120)) != 0 {
		t.Fatalf("|Aut(Petersen)| = %v, want 120", order)
	}
	for _, g := range gens {
		if !pete.Permute(g).Equal(pete) {
			t.Fatal("generator is not an automorphism")
		}
	}
	orbits := Orbits(pete)
	if len(orbits) != 1 {
		t.Fatalf("Petersen is vertex-transitive; orbits = %v", orbits)
	}
}

func TestFacadeSSM(t *testing.T) {
	star := FromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	ix := NewSSMIndex(BuildAutoTree(star, nil, Options{}))
	if got := ix.CountImages([]int{1}); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("CountImages = %v, want 4", got)
	}
}

func TestFacadeBaseline(t *testing.T) {
	c5 := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	res := Baseline(c5, nil, BaselineOptions{Policy: PolicyNauty})
	if res.Truncated {
		t.Fatal("truncated")
	}
	if NewPermGroup(5, res.Generators).Order().Cmp(big.NewInt(10)) != 0 {
		t.Fatal("baseline group order wrong")
	}
}

func TestFacadeIO(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed n=%d m=%d", g.N(), g.M())
	}
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0 1") {
		t.Fatalf("output %q", sb.String())
	}
}

func TestFacadeWorkloads(t *testing.T) {
	k4 := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if got := len(MaxClique(k4)); got != 4 {
		t.Fatalf("max clique %d", got)
	}
	size, all := MaxCliques(k4, 0)
	if size != 4 || len(all) != 1 {
		t.Fatalf("MaxCliques = %d/%d", size, len(all))
	}
	count := 0
	Triangles(k4, func(a, b, c int) { count++ })
	if count != 4 {
		t.Fatalf("K4 triangles = %d, want 4", count)
	}
	m := NewICModel(k4, 1.0, 4, 1)
	if got := m.Spread([]int{0}); got != 4 {
		t.Fatalf("spread %v", got)
	}
	if got := len(m.Greedy(2)); got != 2 {
		t.Fatalf("greedy %d seeds", got)
	}
}

func TestFacadeDatasets(t *testing.T) {
	if len(RealDatasets()) != 22 || len(BenchmarkDatasets()) != 9 {
		t.Fatal("dataset catalogs wrong size")
	}
	d, err := FindDataset("cfi-200")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Build(1)
	if g.N() != 2000 {
		t.Fatalf("cfi-200 n = %d", g.N())
	}
}

func TestFacadeColoring(t *testing.T) {
	pi, err := ColoringFromCells(4, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	c4 := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	cert1 := CanonicalCert(c4, pi, Options{})
	cert2 := CanonicalCert(c4, nil, Options{})
	if string(cert1) == string(cert2) {
		t.Fatal("coloring ignored in certificate")
	}
	if UnitColoring(4).NumCells() != 1 {
		t.Fatal("unit coloring wrong")
	}
}

func TestFacadeSubgraphMatcher(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	q := FromEdges(2, [][2]int{{0, 1}})
	m := NewSubgraphMatcher(g, nil)
	if got := len(m.FindInduced(q, nil, 0)); got != 8 {
		t.Fatalf("C4 ordered edge embeddings = %d, want 8", got)
	}
}

func TestFindIsomorphism(t *testing.T) {
	pete := FromEdges(10, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
		{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},
		{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
	})
	shuffled := pete.Permute([]int{7, 3, 9, 1, 5, 0, 8, 2, 6, 4})
	gamma, ok := FindIsomorphism(pete, shuffled)
	if !ok {
		t.Fatal("isomorphic pair rejected")
	}
	if !pete.Permute(gamma).Equal(shuffled) {
		t.Fatal("returned mapping is not an isomorphism")
	}
	other := FromEdges(10, [][2]int{{0, 1}})
	if _, ok := FindIsomorphism(pete, other); ok {
		t.Fatal("non-isomorphic pair accepted")
	}
}

func TestGraphIndex(t *testing.T) {
	ix := NewGraphIndex(Options{})
	c4 := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	p4 := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	id0, dup, err := ix.Add(c4)
	if id0 != 0 || dup || err != nil {
		t.Fatalf("first add: id=%d dup=%v err=%v", id0, dup, err)
	}
	_, dup, err = ix.Add(c4.Permute([]int{2, 0, 3, 1}))
	if !dup || err != nil {
		t.Fatalf("relabeled duplicate not detected (err=%v)", err)
	}
	_, dup, err = ix.Add(p4)
	if dup || err != nil {
		t.Fatalf("distinct graph flagged duplicate (err=%v)", err)
	}
	if ix.Len() != 3 || ix.Classes() != 2 {
		t.Fatalf("len=%d classes=%d, want 3/2", ix.Len(), ix.Classes())
	}
	if got := ix.Lookup(c4); len(got) != 2 {
		t.Fatalf("lookup C4 = %v", got)
	}
	if got := ix.Lookup(FromEdges(4, nil)); len(got) != 0 {
		t.Fatalf("lookup absent = %v", got)
	}
}

// TestEndToEndPipeline drives the full system the way the paper's
// evaluation does: generate a dataset stand-in, build the AutoTree,
// verify its invariants, answer SSM queries for IM seeds, compress to the
// quotient, and anonymize — one pass over every major subsystem.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d, err := FindDataset("Epinions")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Build(100)
	tree := BuildAutoTree(g, nil, Options{})
	if tree.Truncated {
		t.Fatal("truncated on a social stand-in")
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}

	// Canonical invariance at scale (relabel by a rotation).
	perm := make([]int, g.N())
	for i := range perm {
		perm[i] = (i + 17) % g.N()
	}
	h := g.Permute(perm)
	if !Isomorphic(g, h) {
		t.Fatal("relabeled stand-in not recognized")
	}

	// IM + SSM.
	model := NewICModel(g, 0.05, 32, 3)
	seeds := model.Greedy(10)
	ix := NewSSMIndex(tree)
	count := ix.CountImages(seeds)
	if count.Sign() <= 0 {
		t.Fatalf("seed-set image count = %v", count)
	}

	// Quotient shrinks (the stand-in has planted symmetry).
	q := tree.Quotient()
	if q.Graph.N() >= g.N() {
		t.Fatalf("quotient did not shrink: %d >= %d", q.Graph.N(), g.N())
	}

	// k-symmetry anonymization.
	anon, err := KSymmetrize(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	anonTree := BuildAutoTree(anon, nil, Options{})
	for _, o := range anonTree.Orbits() {
		if len(o) < 2 {
			t.Fatalf("anonymized graph still has a singleton orbit")
		}
	}
}

func TestSaveLoadAutoTreeFacade(t *testing.T) {
	g := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	tree := BuildAutoTree(g, nil, Options{})
	var buf strings.Builder
	if err := SaveAutoTree(tree, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAutoTree(strings.NewReader(buf.String()), g)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.AutOrder().Cmp(tree.AutOrder()) != 0 {
		t.Fatal("round trip changed the group")
	}
}
