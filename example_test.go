package dvicl_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"dvicl"
	"dvicl/internal/gen"
)

// ExampleIsomorphic shows the canonical-certificate isomorphism test on a
// pair that degree sequences alone cannot separate.
func ExampleIsomorphic() {
	c6 := dvicl.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	twoTriangles := dvicl.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	relabeled := c6.Permute([]int{3, 0, 5, 1, 4, 2})

	fmt.Println(dvicl.Isomorphic(c6, twoTriangles))
	fmt.Println(dvicl.Isomorphic(c6, relabeled))
	// Output:
	// false
	// true
}

// ExampleBuildAutoTree demonstrates the AutoTree on the paper's running
// example (Fig. 1(a)).
func ExampleBuildAutoTree() {
	g := dvicl.FromEdges(8, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 4},
		{0, 7}, {1, 7}, {2, 7}, {3, 7}, {4, 7}, {5, 7}, {6, 7},
	})
	tree := dvicl.BuildAutoTree(g, nil, dvicl.Options{})
	fmt.Println("|Aut| =", tree.AutOrder())
	for _, orbit := range tree.Orbits() {
		fmt.Println("orbit:", orbit)
	}
	// Output:
	// |Aut| = 48
	// orbit: [0 1 2 3]
	// orbit: [4 5 6]
	// orbit: [7]
}

// ExampleSSMIndex_CountImages counts symmetric counterparts of a vertex
// set — the paper's seed-set application.
func ExampleSSMIndex_CountImages() {
	// A hub with 6 interchangeable pendants.
	g := dvicl.FromEdges(7, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}})
	ix := dvicl.NewSSMIndex(dvicl.BuildAutoTree(g, nil, dvicl.Options{}))
	fmt.Println(ix.CountImages([]int{1}))       // any single pendant
	fmt.Println(ix.CountImages([]int{1, 2}))    // any pendant pair: C(6,2)
	fmt.Println(ix.CountImages([]int{0, 1, 2})) // hub + pair
	// Output:
	// 6
	// 15
	// 15
}

// ExampleGraphIndex demonstrates certificate-based graph indexing — the
// paper's database application: every graph gets a certificate such that
// two graphs are isomorphic iff the certificates are equal, so duplicate
// detection and isomorphism lookup are map operations. (For a durable
// index that survives restarts, see OpenGraphIndex and cmd/indexd.)
func ExampleGraphIndex() {
	ix := dvicl.NewGraphIndex(dvicl.Options{})
	c4 := dvicl.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	p4 := dvicl.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})

	id, dup, _ := ix.Add(c4)
	fmt.Println(id, dup)
	id, dup, _ = ix.Add(c4.Permute([]int{2, 0, 3, 1})) // a relabeled C4
	fmt.Println(id, dup)
	id, dup, _ = ix.Add(p4)
	fmt.Println(id, dup)

	fmt.Println(ix.Lookup(c4))          // both C4 copies
	fmt.Println(ix.Len(), ix.Classes()) // 3 graphs, 2 classes
	// Output:
	// 0 false
	// 1 true
	// 2 false
	// [0 1]
	// 3 2
}

// ExampleTrace captures a request-scoped span tree for one certificate
// build on a small CFI graph (the paper's hard family for refinement
// alone). The trace records where the build spent its time — refinement,
// divisions, leaf searches — plus this request's own counter deltas,
// without changing the certificate in any way.
func ExampleTrace() {
	g := gen.CFI(gen.RigidCubic(8, 1), false)

	tr := dvicl.NewTrace("req-42", nil)
	ctx := dvicl.WithTrace(context.Background(), tr)
	cert, err := dvicl.CanonicalCertCtx(ctx, g, nil, dvicl.Options{})
	if err != nil {
		panic(err)
	}
	tr.Root().End()

	snap := tr.Snapshot()
	fmt.Println("trace:", snap.ID)
	fmt.Println(snap.Spans.Name)
	build := snap.Spans.Children[0]
	fmt.Println("-", build.Name)
	fmt.Println("  -", build.Children[0].Name)
	fmt.Println("build span graph size:", build.Attrs["n"])
	fmt.Println("refinement recorded:", snap.Counters["refine_calls"] > 0)
	fmt.Println("certificate unchanged:", bytes.Equal(cert, dvicl.CanonicalCert(g, nil, dvicl.Options{})))
	// Output:
	// trace: req-42
	// request
	// - build
	//   - refine
	// build span graph size: 80
	// refinement recorded: true
	// certificate unchanged: true
}

// ExampleBudget shows the two tiers of resource bounds and their
// different failure semantics on a Miyazaki-like graph (a family built
// to force backtracking search). Whole-build bounds are hard: the build
// stops and returns ErrBudgetExceeded. Per-leaf bounds are soft: each
// leaf search is truncated best-effort and the build succeeds, with
// Tree.Truncated warning that the certificate is not exact.
func ExampleBudget() {
	g := gen.MzAug(12)

	// Hard: the whole build may visit at most 5 search nodes.
	_, err := dvicl.BuildAutoTreeCtx(context.Background(), g, nil,
		dvicl.Options{Budget: dvicl.Budget{MaxNodes: 5}})
	fmt.Println(errors.Is(err, dvicl.ErrBudgetExceeded))

	// Soft: each individual leaf search is capped at 5 nodes.
	tree, err := dvicl.BuildAutoTreeCtx(context.Background(), g, nil,
		dvicl.Options{Budget: dvicl.Budget{LeafMaxNodes: 5}})
	fmt.Println(err, tree.Truncated)
	// Output:
	// true
	// <nil> true
}

// ExampleNewShardedGraphIndex partitions an in-memory index into 4
// shards. Shard routing is by certificate hash, so an isomorphism class
// lives entirely on one shard and Lookup reads a single shard; global
// ids are local·shards+shard, deterministic for a fixed shard count.
func ExampleNewShardedGraphIndex() {
	ix := dvicl.NewShardedGraphIndex(dvicl.Options{}, 4)
	c4 := dvicl.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	p4 := dvicl.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})

	id, dup, _ := ix.Add(c4) // class hashes to shard 2: id = 0·4+2
	fmt.Println(id, dup)
	id, dup, _ = ix.Add(c4.Permute([]int{2, 0, 3, 1})) // same shard: 1·4+2
	fmt.Println(id, dup)
	id, dup, _ = ix.Add(p4) // different class, shard 0
	fmt.Println(id, dup)

	fmt.Println(ix.Lookup(c4))
	fmt.Println(ix.Len(), ix.Classes())
	// Output:
	// 2 false
	// 6 true
	// 0 false
	// [2 6]
	// 3 2
}

// ExampleAutomorphismGroup extracts generators and verifies one.
func ExampleAutomorphismGroup() {
	p4 := dvicl.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	gens, order := dvicl.AutomorphismGroup(p4)
	fmt.Println("order:", order)
	fmt.Println("generator:", gens[0])
	// Output:
	// order: 2
	// generator: (0,3)(1,2)
}

// ExampleColoringFromCells shows colored-graph (labeled-vertex)
// isomorphism: colors restrict which vertices may map to which.
func ExampleColoringFromCells() {
	c4 := dvicl.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	plain := dvicl.BuildAutoTree(c4, nil, dvicl.Options{})
	pi, _ := dvicl.ColoringFromCells(4, [][]int{{0, 2}, {1, 3}})
	colored := dvicl.BuildAutoTree(c4, pi, dvicl.Options{})
	fmt.Println(plain.AutOrder(), colored.AutOrder())
	// Output:
	// 8 4
}
