package dvicl

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dvicl/internal/store"
)

// indexTestGraphs returns a mixed bag of small graphs with several
// isomorphism classes, including relabeled duplicates.
func indexTestGraphs() []*Graph {
	c6 := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	p6 := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	star := FromEdges(6, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	twoTri := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	return []*Graph{
		c6, p6, star, twoTri,
		c6.Permute([]int{3, 0, 5, 1, 4, 2}),
		p6.Permute([]int{5, 4, 3, 2, 1, 0}),
		star.Permute([]int{1, 0, 2, 3, 4, 5}),
		twoTri.Permute([]int{2, 1, 0, 5, 4, 3}),
	}
}

func mustAdd(t *testing.T, ix *GraphIndex, g *Graph) (int, bool) {
	t.Helper()
	id, dup, err := ix.Add(g)
	if err != nil {
		t.Fatal(err)
	}
	return id, dup
}

func TestGraphIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	graphs := indexTestGraphs()

	ix, err := OpenGraphIndex(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var lookups [][]int
	for _, g := range graphs {
		mustAdd(t, ix, g)
	}
	for _, g := range graphs {
		lookups = append(lookups, ix.Lookup(g))
	}
	if ix.Len() != len(graphs) || ix.Classes() != 4 {
		t.Fatalf("len=%d classes=%d", ix.Len(), ix.Classes())
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent; post-close Adds fail typed.
	if err := ix.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := ix.Add(graphs[0]); err != ErrIndexClosed {
		t.Fatalf("Add after Close: %v", err)
	}

	// Reopen: identical ids for the same Lookup batch.
	ix2, err := OpenGraphIndex(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if ix2.Len() != len(graphs) || ix2.Classes() != 4 {
		t.Fatalf("reloaded len=%d classes=%d", ix2.Len(), ix2.Classes())
	}
	for i, g := range graphs {
		got := ix2.Lookup(g)
		want := lookups[i]
		if len(got) != len(want) {
			t.Fatalf("graph %d: lookup %v != %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("graph %d: lookup %v != %v", i, got, want)
			}
		}
	}
	st := ix2.Stats()
	if !st.Persistent || st.SnapshotCerts != len(graphs) {
		t.Fatalf("stats after clean reopen: %+v", st)
	}
}

// TestGraphIndexCrashRecovery simulates kill -9: the index is never
// closed (no final snapshot), and a torn partial record is appended to
// the WAL by hand. Reopening must recover every acknowledged Add and
// report the torn tail.
func TestGraphIndexCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	graphs := indexTestGraphs()

	ix, err := OpenGraphIndex(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for _, g := range graphs {
		id, _ := mustAdd(t, ix, g)
		ids = append(ids, id)
	}
	// No Close — "crashed". Tear the WAL tail like an interrupted write.
	f, err := os.OpenFile(filepath.Join(dir, store.WALName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ix2, err := OpenGraphIndex(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	st := ix2.Stats()
	if st.Graphs != len(graphs) || st.ReplayedRecords != len(graphs) || st.RecoveredBytes != 3 {
		t.Fatalf("recovery stats: %+v", st)
	}
	for i, g := range graphs {
		got := ix2.Lookup(g)
		found := false
		for _, id := range got {
			if id == ids[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("graph %d: id %d missing from lookup %v", i, ids[i], got)
		}
	}
}

func TestGraphIndexCacheHits(t *testing.T) {
	ix := NewGraphIndex(Options{})
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	mustAdd(t, ix, g)
	for i := 0; i < 10; i++ {
		if got := ix.Lookup(g); len(got) != 1 || got[0] != 0 {
			t.Fatalf("lookup %d: %v", i, got)
		}
	}
	st := ix.Stats()
	// Add misses once; the 10 Lookups of the identical labeled graph hit.
	if st.CacheMisses != 1 || st.CacheHits != 10 || st.CacheEntries != 1 {
		t.Fatalf("cache stats: %+v", st)
	}
	// A relabeled copy is a different labeled graph: cache miss, same
	// class. (The permutation must not be an automorphism of C5, or the
	// labeled graph — and its hash — would be unchanged.)
	if got := ix.Lookup(g.Permute([]int{0, 2, 1, 3, 4})); len(got) != 1 {
		t.Fatalf("relabeled lookup: %v", got)
	}
	if st := ix.Stats(); st.CacheMisses != 2 {
		t.Fatalf("cache stats after relabeled probe: %+v", st)
	}
}

func TestGraphIndexCacheEviction(t *testing.T) {
	ix := NewGraphIndex(Options{})
	ix.cache = newCertCache(2, 1)
	gs := indexTestGraphs()[:4]
	for _, g := range gs {
		ix.Lookup(g)
	}
	if n := ix.cache.len(); n != 2 {
		t.Fatalf("cache entries = %d, want capacity 2", n)
	}
	// Oldest entries were evicted: probing them misses again.
	before := ix.cache.misses.Load()
	ix.Lookup(gs[0])
	if got := ix.cache.misses.Load(); got != before+1 {
		t.Fatalf("expected evicted entry to miss (misses %d -> %d)", before, got)
	}
}

// TestGraphIndexConcurrentAddLookup is the -race hammer for the
// documented concurrency contract: many goroutines Add and Lookup
// concurrently on a persistent index with a tiny compaction threshold, so
// background snapshot compaction races real traffic too.
func TestGraphIndexConcurrentAddLookup(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenGraphIndex(dir, IndexOptions{CompactEvery: 8, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	graphs := indexTestGraphs()

	const workers = 8
	const opsPerWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				g := graphs[(w+i)%len(graphs)]
				if i%2 == 0 {
					if _, _, err := ix.Add(g); err != nil {
						t.Error(err)
						return
					}
				} else {
					ix.Lookup(g)
				}
				_ = ix.Stats()
			}
		}(w)
	}
	wg.Wait()

	wantGraphs := workers * opsPerWorker / 2
	if ix.Len() != wantGraphs || ix.Classes() != 4 {
		t.Fatalf("len=%d classes=%d, want %d/4", ix.Len(), ix.Classes(), wantGraphs)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Reload and verify class sizes survived the concurrent load intact.
	ix2, err := OpenGraphIndex(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if ix2.Len() != wantGraphs || ix2.Classes() != 4 {
		t.Fatalf("reloaded len=%d classes=%d", ix2.Len(), ix2.Classes())
	}
	total := 0
	for _, g := range graphs[:4] {
		total += len(ix2.Lookup(g))
	}
	if total != wantGraphs {
		t.Fatalf("class sizes sum to %d, want %d", total, wantGraphs)
	}
}

// TestGraphIndexAutoCompaction checks that crossing CompactEvery triggers
// a background snapshot without losing concurrent appends.
func TestGraphIndexAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenGraphIndex(dir, IndexOptions{CompactEvery: 4, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	graphs := indexTestGraphs()
	for i := 0; i < 3; i++ {
		for _, g := range graphs {
			mustAdd(t, ix, g)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the WAL is fully compacted into the snapshot.
	ix2, err := OpenGraphIndex(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	st := ix2.Stats()
	if st.Graphs != 3*len(graphs) || st.SnapshotCerts != 3*len(graphs) || st.ReplayedRecords != 0 {
		t.Fatalf("stats after compacted reload: %+v", st)
	}
}
