// Command benchtables regenerates the paper's evaluation tables (Section
// 7, Tables 1–8) on the synthetic workloads.
//
// Usage:
//
//	benchtables [-table all|1|2|...|8] [-scale 20] [-timeout 60s]
//	            [-datasets wikivote,Epinions] [-maxsubgraphs 200000]
//	            [-json results]
//
// Real-graph stand-ins are generated at 1/scale of the paper's sizes;
// shapes (who wins, where timeouts fall), not absolute seconds, are the
// comparison target. See EXPERIMENTS.md for recorded runs.
//
// -json writes every regenerated table to <dir>/BENCH_table<id>.json,
// with the search-effort counter snapshots (nodes, prunings, refinement
// rounds, phase timings) of each instrumented run next to the printed
// cells — so perf PRs diff counters, not vibes.
//
// -perfbench <out.json> runs the continuous-benchmarking suite
// (internal/perfbench) instead of the tables and writes a versioned
// BENCH_<tag>.json artifact for cmd/benchdiff to compare:
//
//	benchtables -perfbench BENCH_PR10.json -perfbench-tag PR10
//	benchtables -perfbench /tmp/BENCH_ci.json -perfbench-quick \
//	            -profile-dir /tmp/pprof
//
// See docs/PERFORMANCE.md for the suite, the artifact schema, and the
// regression-gate thresholds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dvicl/internal/bench"
	"dvicl/internal/perfbench"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate (1-8 or all)")
	scale := flag.Int("scale", 20, "divide the paper's real-graph sizes by this factor")
	timeout := flag.Duration("timeout", 60*time.Second, "per-algorithm budget (stands in for the paper's 2h)")
	datasets := flag.String("datasets", "", "comma-separated dataset filter (default: all)")
	maxSubgraphs := flag.Int("maxsubgraphs", 200000, "cap on triangles/cliques clustered in table 7")
	jsonDir := flag.String("json", "", "also write each table to <dir>/BENCH_table<id>.json with counter snapshots")
	perfOut := flag.String("perfbench", "", "run the perfbench suite instead of the tables and write the BENCH file here")
	perfQuick := flag.Bool("perfbench-quick", false, "perfbench: run the reduced-size (CI) instances")
	perfReps := flag.Int("perfbench-reps", 0, "perfbench: measured reps per scenario (0 = 3 quick / 5 full)")
	perfTag := flag.String("perfbench-tag", "dev", "perfbench: tag recorded in the BENCH file")
	perfScenarios := flag.String("perfbench-scenarios", "", "perfbench: comma-separated scenario filter (default: all)")
	profileDir := flag.String("profile-dir", "", "perfbench: capture per-scenario CPU+heap pprof profiles into this directory")
	flag.Parse()

	if *perfOut != "" {
		os.Exit(runPerfbench(*perfOut, perfbench.Options{
			Tag:        *perfTag,
			Quick:      *perfQuick,
			Reps:       *perfReps,
			Scenarios:  splitList(*perfScenarios),
			ProfileDir: *profileDir,
			Log:        os.Stderr,
		}))
	}

	cfg := bench.Config{
		Scale:        *scale,
		Timeout:      *timeout,
		MaxSubgraphs: *maxSubgraphs,
	}
	cfg.Datasets = splitList(*datasets)

	runners := map[string]func(bench.Config) bench.Table{
		"1": bench.Table1, "2": bench.Table2,
		"3": bench.Table3, "4": bench.Table4,
		"5": bench.Table5, "6": bench.Table6,
		"7": bench.Table7, "8": bench.Table8,
	}
	var order []string
	if *table == "all" {
		order = []string{"1", "2", "3", "4", "5", "6", "7", "8"}
	} else {
		if _, ok := runners[*table]; !ok {
			fmt.Fprintf(os.Stderr, "benchtables: unknown table %q (want 1-8 or all)\n", *table)
			os.Exit(2)
		}
		order = []string{*table}
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range order {
		start := time.Now()
		t := runners[id](cfg)
		fmt.Println(t.Format())
		fmt.Printf("(table %s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "BENCH_table"+id+".json")
			if err := writeTableJSON(path, t); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n\n", path)
		}
	}
}

func writeTableJSON(path string, t bench.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteJSON(f)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// runPerfbench executes the continuous-benchmarking suite and writes
// the validated BENCH file, returning the process exit code.
func runPerfbench(out string, opts perfbench.Options) int {
	start := time.Now()
	f, err := perfbench.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: perfbench: %v\n", err)
		return 1
	}
	if err := perfbench.WriteFile(out, f); err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: perfbench: %v\n", err)
		return 1
	}
	fmt.Printf("perfbench: wrote %s (%s mode, %d scenarios, tag %q) in %v\n",
		out, f.Mode, len(f.Scenarios), f.Tag, time.Since(start).Round(time.Millisecond))
	return 0
}
