package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dvicl"
)

// newSymTestServer is newTestServer with the AutoTree store enabled —
// the configuration main() builds by default.
func newSymTestServer(t *testing.T, dir string) (*httptest.Server, *dvicl.GraphIndex) {
	t.Helper()
	rec := dvicl.NewMetricsRecorder()
	opt := dvicl.IndexOptions{
		DviCL:     dvicl.Options{Obs: rec},
		TreeStore: &dvicl.TreeStoreOptions{},
	}
	var ix *dvicl.GraphIndex
	if dir == "" {
		ix = dvicl.NewGraphIndexWithOptions(opt)
	} else {
		var err error
		ix, err = dvicl.OpenGraphIndex(dir, opt)
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { ix.Close() })
	srv := newServer(ix, rec, serverConfig{MaxInflight: 8, MaxVerts: 1 << 20})
	ts := httptest.NewServer(srv.handler(10 * time.Second))
	t.Cleanup(ts.Close)
	return ts, ix
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s response %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func TestSymmetryEndpoints(t *testing.T) {
	ts, _ := newSymTestServer(t, "")
	var add addResp
	postJSON(t, ts.URL+"/add", c4Body, &add)          // id 0
	postJSON(t, ts.URL+"/add", c4RelabeledBody, &add) // id 1, duplicate class
	postJSON(t, ts.URL+"/add", p4Body, &add)          // id 2

	var orb orbitsResp
	if code := getJSON(t, ts.URL+"/orbits?id=0", &orb); code != 200 {
		t.Fatalf("/orbits status %d", code)
	}
	// C4 is vertex-transitive: one orbit holding all four vertices.
	if orb.N != 4 || len(orb.Orbits) != 1 || len(orb.Orbits[0]) != 4 {
		t.Fatalf("/orbits(C4) = %+v", orb)
	}

	var ag autgroupResp
	if code := getJSON(t, ts.URL+"/autgroup?id=0", &ag); code != 200 {
		t.Fatalf("/autgroup status %d", code)
	}
	if ag.Order != "8" { // |Aut(C4)| = dihedral group D4
		t.Fatalf("/autgroup(C4) order = %q, want 8", ag.Order)
	}
	if len(ag.Generators) == 0 {
		t.Fatal("/autgroup(C4) returned no generators")
	}

	var q quotientResp
	if code := getJSON(t, ts.URL+"/quotient?id=0", &q); code != 200 {
		t.Fatalf("/quotient status %d", code)
	}
	if q.QuotientN != 1 || len(q.OrbitOf) != 4 {
		t.Fatalf("/quotient(C4) = %+v", q)
	}

	var sm ssmResp
	if code := postJSON(t, ts.URL+"/ssm", `{"id":0,"pattern":[0,1],"limit":16}`, &sm); code != 200 {
		t.Fatalf("/ssm status %d", code)
	}
	if sm.Count == "" || sm.Count == "0" {
		t.Fatalf("/ssm(C4, edge) count = %q", sm.Count)
	}
	if len(sm.Images) == 0 {
		t.Fatal("/ssm(C4, edge) enumerated no images")
	}

	// Isomorphic graphs answer identically (class-level semantics).
	var orb1 orbitsResp
	getJSON(t, ts.URL+"/orbits?id=1", &orb1)
	a, _ := json.Marshal(orb.Orbits)
	b, _ := json.Marshal(orb1.Orbits)
	if string(a) != string(b) {
		t.Fatalf("isomorphic ids answer differently: %s vs %s", a, b)
	}

	// P4 (id 2) is not vertex-transitive: expect 2 orbits of size 2.
	var orbP orbitsResp
	getJSON(t, ts.URL+"/orbits?id=2", &orbP)
	if len(orbP.Orbits) != 2 {
		t.Fatalf("/orbits(P4) = %+v", orbP)
	}
}

func TestSymmetryWarmPathCounters(t *testing.T) {
	ts, _ := newSymTestServer(t, "")
	var add addResp
	postJSON(t, ts.URL+"/add", c4Body, &add)

	counters := func() map[string]int64 {
		var st statsResp
		if code := getJSON(t, ts.URL+"/stats", &st); code != 200 {
			t.Fatalf("/stats status %d", code)
		}
		return st.Counters
	}
	// Prime the cache (first query may rebuild if the write-behind persist
	// has not landed yet), then pin: warm queries do zero DviCL builds.
	if code := getJSON(t, ts.URL+"/orbits?id=0", nil); code != 200 {
		t.Fatalf("prime /orbits status %d", code)
	}
	warmStart := counters()
	for i := 0; i < 3; i++ {
		getJSON(t, ts.URL+"/orbits?id=0", nil)
		getJSON(t, ts.URL+"/autgroup?id=0", nil)
		getJSON(t, ts.URL+"/quotient?id=0", nil)
		postJSON(t, ts.URL+"/ssm", `{"id":0,"pattern":[0]}`, nil)
	}
	warmEnd := counters()
	if warmEnd["tree_rebuilds"] != warmStart["tree_rebuilds"] {
		t.Fatalf("warm symmetry queries rebuilt trees: %d -> %d",
			warmStart["tree_rebuilds"], warmEnd["tree_rebuilds"])
	}
	if warmEnd["treestore_mem_hits"] <= warmStart["treestore_mem_hits"] {
		t.Fatal("warm symmetry queries recorded no treestore_mem_hits")
	}
	for _, c := range []string{"symmetry_query_orbits", "symmetry_query_autgroup",
		"symmetry_query_quotient", "symmetry_query_ssm"} {
		if warmEnd[c] < 3 {
			t.Fatalf("counter %s = %d, want >= 3", c, warmEnd[c])
		}
	}
}

func TestSymmetryEndpointErrors(t *testing.T) {
	ts, _ := newSymTestServer(t, "")
	var add addResp
	postJSON(t, ts.URL+"/add", c4Body, &add)

	var e errResp
	if code := getJSON(t, ts.URL+"/orbits?id=99", &e); code != 404 {
		t.Fatalf("unknown id status %d (%+v)", code, e)
	}
	if code := getJSON(t, ts.URL+"/orbits?id=x", &e); code != 400 {
		t.Fatalf("malformed id status %d", code)
	}
	if code := getJSON(t, ts.URL+"/autgroup", &e); code != 400 {
		t.Fatalf("missing id status %d", code)
	}
	if code := postJSON(t, ts.URL+"/ssm", `{"id":0,"pattern":[0,9]}`, &e); code != 400 {
		t.Fatalf("out-of-range pattern status %d", code)
	}
	if code := postJSON(t, ts.URL+"/ssm", `{"id":0,"pattern":[1,1]}`, &e); code != 400 {
		t.Fatalf("duplicate pattern status %d", code)
	}
	if code := postJSON(t, ts.URL+"/ssm", `{"id":0,"pattern":[0],"limit":99999}`, &e); code != 400 {
		t.Fatalf("oversized limit status %d", code)
	}
	// Request ids flow through the symmetry handlers like every traced
	// endpoint.
	req, _ := http.NewRequest("GET", ts.URL+"/orbits?id=0", nil)
	req.Header.Set("X-Request-Id", "sym-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "sym-test-1" {
		t.Fatalf("X-Request-Id = %q", got)
	}
}

// TestSymmetryRestartServing: a restarted daemon serves identical
// symmetry answers from the persisted tree store.
func TestSymmetryRestartServing(t *testing.T) {
	dir := t.TempDir()
	ts1, ix1 := newSymTestServer(t, dir)
	var add addResp
	postJSON(t, ts1.URL+"/add", c4Body, &add)
	var before autgroupResp
	getJSON(t, ts1.URL+"/autgroup?id=0", &before)
	ts1.Close()
	if err := ix1.Close(); err != nil {
		t.Fatal(err)
	}

	ts2, _ := newSymTestServer(t, dir)
	var after autgroupResp
	if code := getJSON(t, ts2.URL+"/autgroup?id=0", &after); code != 200 {
		t.Fatalf("restarted /autgroup status %d", code)
	}
	a, _ := json.Marshal(before)
	b, _ := json.Marshal(after)
	if string(a) != string(b) {
		t.Fatalf("autgroup answer changed across restart:\n%s\n%s", a, b)
	}
	var st statsResp
	getJSON(t, ts2.URL+"/stats", &st)
	if st.Counters["tree_rebuilds"] != 0 {
		t.Fatalf("restarted query rebuilt %d trees; want disk hits", st.Counters["tree_rebuilds"])
	}
}

func TestReadyzEndpoint(t *testing.T) {
	ts, ix := newSymTestServer(t, t.TempDir())
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/readyz status %d", resp.StatusCode)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// Liveness stays up after the index closes; readiness drops.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-close /healthz status %d", resp.StatusCode)
	}
	var e errResp
	if code := getJSON(t, ts.URL+"/readyz", &e); code != 503 {
		t.Fatalf("post-close /readyz status %d (%+v)", code, e)
	}
}
