package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dvicl"
	"dvicl/internal/obs"
)

// newCancelTestServer returns a server whose handlers are invoked
// directly, below the TimeoutHandler: in production the TimeoutHandler
// (or a client disconnect) cancels the request context and races the
// handler for the response writer, so the typed 503 body is asserted
// here at the layer that produces it.
func newCancelTestServer() (*server, *dvicl.MetricsRecorder, *dvicl.GraphIndex) {
	rec := dvicl.NewMetricsRecorder()
	ix := dvicl.NewGraphIndex(dvicl.Options{Obs: rec})
	return newServer(ix, rec, serverConfig{MaxInflight: 8, MaxVerts: 1 << 20}), rec, ix
}

// TestCanceledRequestIs503 drives /add and /lookup with a request whose
// context is already canceled — the state a client disconnect or an
// expired request deadline leaves behind mid-canonicalization — and
// requires the JSON 503 plus the index_canceled counter.
func TestCanceledRequestIs503(t *testing.T) {
	srv, rec, ix := newCancelTestServer()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	handlers := []struct {
		name string
		h    http.HandlerFunc
	}{
		{"/add", srv.limited(srv.handleAdd)},
		{"/lookup", srv.limited(srv.handleLookup)},
	}
	for i, tc := range handlers {
		req := httptest.NewRequest("POST", tc.name, strings.NewReader(c4Body)).WithContext(ctx)
		w := httptest.NewRecorder()
		tc.h(w, req)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s: status = %d, want 503", tc.name, w.Code)
		}
		var e errResp
		if err := json.NewDecoder(w.Body).Decode(&e); err != nil {
			t.Fatalf("%s: non-JSON 503 body: %v", tc.name, err)
		}
		if e.Error != "request canceled" {
			t.Fatalf("%s: error = %q", tc.name, e.Error)
		}
		if got := rec.Counter(obs.IndexCanceled); got != int64(i+1) {
			t.Fatalf("%s: index_canceled = %d, want %d", tc.name, got, i+1)
		}
	}

	// The index must be untouched by the shed requests, and the error
	// counter must have seen both 503s.
	if ix.Len() != 0 {
		t.Fatalf("canceled adds reached the index: len = %d", ix.Len())
	}
	if got := rec.Counter(obs.HTTPErrors); got != 2 {
		t.Fatalf("http_errors = %d, want 2", got)
	}

	// A healthy request still works afterwards (a canceled build caches
	// and stores nothing).
	req := httptest.NewRequest("POST", "/add", strings.NewReader(c4Body))
	w := httptest.NewRecorder()
	srv.limited(srv.handleAdd)(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthy add after shed requests: status = %d", w.Code)
	}
	if ix.Len() != 1 {
		t.Fatalf("index len = %d after healthy add", ix.Len())
	}
}

// TestCanceledBatchIs503: cancellation mid-batch sheds the whole
// request rather than erroring op by op.
func TestCanceledBatchIs503(t *testing.T) {
	srv, rec, _ := newCancelTestServer()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	body := `{"ops":[{"op":"add",` + c4Body[1:] + `]}`
	req := httptest.NewRequest("POST", "/batch", strings.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.limited(srv.handleBatch)(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", w.Code, w.Body.String())
	}
	if got := rec.Counter(obs.IndexCanceled); got != 1 {
		t.Fatalf("index_canceled = %d, want 1", got)
	}
}
