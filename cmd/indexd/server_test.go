package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dvicl"
	"dvicl/internal/gen"
)

func newTestServer(t *testing.T, dir string) (*httptest.Server, *dvicl.GraphIndex) {
	t.Helper()
	rec := dvicl.NewMetricsRecorder()
	var ix *dvicl.GraphIndex
	if dir == "" {
		ix = dvicl.NewGraphIndex(dvicl.Options{Obs: rec})
	} else {
		var err error
		ix, err = dvicl.OpenGraphIndex(dir, dvicl.IndexOptions{DviCL: dvicl.Options{Obs: rec}})
		if err != nil {
			t.Fatal(err)
		}
	}
	srv := newServer(ix, rec, serverConfig{MaxInflight: 8, MaxVerts: 1 << 20})
	ts := httptest.NewServer(srv.handler(10 * time.Second))
	t.Cleanup(ts.Close)
	return ts, ix
}

func postJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

const c4Body = `{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}`

// c4 relabeled: still a 4-cycle, different labeling.
const c4RelabeledBody = `{"n":4,"edges":[[0,2],[2,1],[1,3],[3,0]]}`
const p4Body = `{"n":4,"edges":[[0,1],[1,2],[2,3]]}`

func TestAddLookupEndpoints(t *testing.T) {
	ts, _ := newTestServer(t, "")

	var add addResp
	if code := postJSON(t, ts.URL+"/add", c4Body, &add); code != 200 {
		t.Fatalf("/add status %d", code)
	}
	if add.ID != 0 || add.Duplicate {
		t.Fatalf("/add = %+v", add)
	}
	if postJSON(t, ts.URL+"/add", c4RelabeledBody, &add); !add.Duplicate {
		t.Fatalf("relabeled C4 not flagged duplicate: %+v", add)
	}
	if postJSON(t, ts.URL+"/add", p4Body, &add); add.Duplicate {
		t.Fatalf("P4 flagged duplicate: %+v", add)
	}

	var lk lookupResp
	if code := postJSON(t, ts.URL+"/lookup", c4Body, &lk); code != 200 {
		t.Fatalf("/lookup status %d", code)
	}
	if len(lk.IDs) != 2 || lk.IDs[0] != 0 || lk.IDs[1] != 1 {
		t.Fatalf("/lookup ids = %v", lk.IDs)
	}
	// Absent class: empty ids array, not null.
	var raw map[string]json.RawMessage
	postJSON(t, ts.URL+"/lookup", `{"n":3,"edges":[[0,1],[1,2],[0,2]]}`, &raw)
	if string(raw["ids"]) != "[]" {
		t.Fatalf(`absent lookup ids = %s, want []`, raw["ids"])
	}
}

func TestGraph6Body(t *testing.T) {
	ts, _ := newTestServer(t, "")
	g := dvicl.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	g6, err := dvicl.ToGraph6(g)
	if err != nil {
		t.Fatal(err)
	}
	var add addResp
	body, _ := json.Marshal(map[string]string{"graph6": g6})
	if code := postJSON(t, ts.URL+"/add", string(body), &add); code != 200 {
		t.Fatalf("/add graph6 status %d", code)
	}
	var lk lookupResp
	postJSON(t, ts.URL+"/lookup", c4Body, &lk)
	if len(lk.IDs) != 1 {
		t.Fatalf("edge-list lookup of graph6 add = %v", lk.IDs)
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, "")
	body := fmt.Sprintf(`{"ops":[
		{"op":"add","n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]},
		{"op":"add","n":4,"edges":[[0,1],[1,2],[2,3]]},
		{"op":"lookup","n":4,"edges":[[0,2],[2,1],[1,3],[3,0]]},
		{"op":"frobnicate","n":1,"edges":[]},
		{"op":"add","n":2,"edges":[[0,5]]}
	]}`)
	var resp batchResp
	if code := postJSON(t, ts.URL+"/batch", body, &resp); code != 200 {
		t.Fatalf("/batch status %d", code)
	}
	r := resp.Results
	if len(r) != 5 {
		t.Fatalf("results = %+v", r)
	}
	if r[0].ID == nil || *r[0].ID != 0 || r[1].ID == nil || *r[1].ID != 1 {
		t.Fatalf("batch adds = %+v %+v", r[0], r[1])
	}
	if len(r[2].IDs) != 1 || r[2].IDs[0] != 0 {
		t.Fatalf("batch lookup = %+v", r[2])
	}
	if r[3].Error == "" || r[4].Error == "" {
		t.Fatalf("batch errors = %+v %+v", r[3], r[4])
	}
}

func TestValidationErrors(t *testing.T) {
	ts, _ := newTestServer(t, "")
	for _, body := range []string{
		`{"n":-1,"edges":[]}`,
		`{"n":2,"edges":[[0,7]]}`,
		`{"n":2,"edges":[[0,1]],"bogus":true}`,
		`not json`,
		`{"graph6":"bad"}`,
	} {
		var e errResp
		if code := postJSON(t, ts.URL+"/add", body, &e); code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d (want 400), err %q", body, code, e.Error)
		}
		if e.Error == "" {
			t.Fatalf("body %q: no error message", body)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/add")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /add status %d", resp.StatusCode)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir())
	postJSON(t, ts.URL+"/add", c4Body, nil)
	for i := 0; i < 5; i++ {
		postJSON(t, ts.URL+"/lookup", c4Body, nil)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}

	var st statsResp
	r2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Index.Graphs != 1 || !st.Index.Persistent {
		t.Fatalf("stats index = %+v", st.Index)
	}
	// The repeated identical Lookups hit the certificate cache, and the
	// hits show up both in index stats and the counter map.
	if st.Index.CacheHits != 5 {
		t.Fatalf("cache hits = %d, want 5", st.Index.CacheHits)
	}
	if st.Counters["cert_cache_hits"] != 5 || st.Counters["index_lookups"] != 5 || st.Counters["index_adds"] != 1 {
		t.Fatalf("counters = %v", st.Counters)
	}
	if st.Counters["http_requests"] < 6 {
		t.Fatalf("http_requests = %d", st.Counters["http_requests"])
	}
}

func TestFlushEndpoint(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newTestServer(t, dir)
	postJSON(t, ts.URL+"/add", c4Body, nil)
	var st dvicl.IndexStats
	if code := postJSON(t, ts.URL+"/flush", ``, &st); code != 200 {
		t.Fatalf("/flush status %d", code)
	}
	if st.WALRecords != 0 {
		t.Fatalf("WAL not compacted by /flush: %+v", st)
	}
}

// TestBackpressure drives more concurrent requests than the admission
// limit and expects at least one 503 with Retry-After.
func TestBackpressure(t *testing.T) {
	rec := dvicl.NewMetricsRecorder()
	ix := dvicl.NewGraphIndex(dvicl.Options{Obs: rec})
	srv := newServer(ix, rec, serverConfig{MaxInflight: 1, MaxVerts: 1 << 20})

	// Hold the only token.
	release := make(chan struct{})
	blocked := srv.limited(func(w http.ResponseWriter, r *http.Request) { <-release })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest("POST", "/add", nil)
		blocked(httptest.NewRecorder(), req)
	}()
	// Wait for the token to be taken.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the token")
		}
		time.Sleep(time.Millisecond)
	}

	w := httptest.NewRecorder()
	srv.limited(func(http.ResponseWriter, *http.Request) {
		t.Error("second request should have been rejected")
	})(w, httptest.NewRequest("POST", "/add", bytes.NewReader([]byte(c4Body))))
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("throttled response: code=%d headers=%v", w.Code, w.Header())
	}
	close(release)
	wg.Wait()
}

// bulkStream builds a graph6 stream of k graphs from `classes` iso-classes
// (copies beyond the first occurrence relabeled by a rotation).
func bulkStream(t *testing.T, k, classes int) string {
	t.Helper()
	var sb bytes.Buffer
	for i := 0; i < k; i++ {
		g := gen.ErdosRenyi(12, 20, int64(500+i%classes))
		if i >= classes {
			perm := make([]int, g.N())
			for v := range perm {
				perm[v] = (v + 1 + i) % g.N()
			}
			g = g.Permute(perm)
		}
		s, err := dvicl.ToGraph6(g)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestBulkEndpoint streams more records than one admission chunk through
// /bulk and checks that the report and the index agree on classes and
// duplicates — and that the stream interoperates with /lookup.
func TestBulkEndpoint(t *testing.T) {
	ts, ix := newTestServer(t, "")
	const k, classes = 600, 7 // 3 chunks of bulkChunkRecords=256
	stream := bulkStream(t, k, classes)

	var rep bulkResp
	if code := postJSON(t, ts.URL+"/bulk", stream, &rep); code != 200 {
		t.Fatalf("/bulk status %d", code)
	}
	if rep.Records != k || rep.Applied != k || rep.DecodeErrors != 0 {
		t.Fatalf("bulk report: %+v", rep.Report)
	}
	if rep.NewClasses != classes || rep.Duplicates != k-classes {
		t.Fatalf("classes/dups = %d/%d, want %d/%d", rep.NewClasses, rep.Duplicates, classes, k-classes)
	}
	if rep.Index.Graphs != k || rep.Index.Classes != classes {
		t.Fatalf("index after bulk: %+v", rep.Index)
	}
	if ix.Len() != k {
		t.Fatalf("ix.Len() = %d", ix.Len())
	}

	// The classes are now visible to the interactive path.
	g := gen.ErdosRenyi(12, 20, 500)
	g6, err := dvicl.ToGraph6(g)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]string{"graph6": g6})
	var lk lookupResp
	postJSON(t, ts.URL+"/lookup", string(body), &lk)
	if len(lk.IDs) == 0 {
		t.Fatal("bulk-ingested class not found by /lookup")
	}
}

// TestBulkEndpointDecodeErrors: garbage records are counted and sampled,
// not fatal.
func TestBulkEndpointDecodeErrors(t *testing.T) {
	ts, _ := newTestServer(t, "")
	stream := "~~~nope\n" + bulkStream(t, 5, 5) + "!!!\n"
	var rep bulkResp
	if code := postJSON(t, ts.URL+"/bulk", stream, &rep); code != 200 {
		t.Fatalf("/bulk status %d", code)
	}
	if rep.Records != 7 || rep.Applied != 5 || rep.DecodeErrors != 2 {
		t.Fatalf("bulk report: %+v", rep.Report)
	}
	if len(rep.Errors) != 2 || rep.Errors[0].Line != 1 {
		t.Fatalf("sampled errors: %+v", rep.Errors)
	}
}

// TestBulkPersistentSharded: /bulk into a sharded on-disk index, then
// reopen and check everything survived across the shard WALs.
func TestBulkPersistentSharded(t *testing.T) {
	dir := t.TempDir()
	rec := dvicl.NewMetricsRecorder()
	ix, err := dvicl.OpenGraphIndex(dir, dvicl.IndexOptions{
		DviCL: dvicl.Options{Obs: rec}, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(ix, rec, serverConfig{MaxInflight: 8, MaxVerts: 1 << 20, BulkWorkers: 2})
	ts := httptest.NewServer(srv.handler(10 * time.Second))
	defer ts.Close()

	var rep bulkResp
	if code := postJSON(t, ts.URL+"/bulk", bulkStream(t, 40, 10), &rep); code != 200 {
		t.Fatalf("/bulk status %d", code)
	}
	if rep.Index.Shards != 4 || rep.Index.Graphs != 40 {
		t.Fatalf("sharded bulk: %+v", rep.Index)
	}
	ts.Close() // no ix.Close: simulate a kill

	ix2, err := dvicl.OpenGraphIndex(dir, dvicl.IndexOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if ix2.Len() != 40 || ix2.Classes() != 10 {
		t.Fatalf("after reopen: %d graphs, %d classes", ix2.Len(), ix2.Classes())
	}
}

// TestMaxBodyBytes: an oversized JSON body is a 413, not an OOM.
func TestMaxBodyBytes(t *testing.T) {
	rec := dvicl.NewMetricsRecorder()
	ix := dvicl.NewGraphIndex(dvicl.Options{Obs: rec})
	srv := newServer(ix, rec, serverConfig{MaxInflight: 8, MaxVerts: 1 << 20, MaxBodyBytes: 64})
	ts := httptest.NewServer(srv.handler(10 * time.Second))
	defer ts.Close()

	big := fmt.Sprintf(`{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]],"graph6":%q}`,
		bytes.Repeat([]byte("x"), 256))
	var e errResp
	if code := postJSON(t, ts.URL+"/add", big, &e); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /add status %d, err %q", code, e.Error)
	}
	if e.Error == "" {
		t.Fatal("413 without a JSON error body")
	}
	// A small body still works.
	var add addResp
	if code := postJSON(t, ts.URL+"/add", `{"n":2,"edges":[[0,1]]}`, &add); code != 200 {
		t.Fatalf("small /add status %d", code)
	}
}

// TestServerPersistenceAcrossRestart: the acceptance scenario — add a
// batch, kill the server without Close, restart on the same directory,
// and the same Lookup batch returns identical ids.
func TestServerPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newTestServer(t, dir)
	bodies := []string{c4Body, p4Body, c4RelabeledBody}
	var ids []addResp
	for _, b := range bodies {
		var a addResp
		postJSON(t, ts.URL+"/add", b, &a)
		ids = append(ids, a)
	}
	var before []lookupResp
	for _, b := range bodies {
		var lk lookupResp
		postJSON(t, ts.URL+"/lookup", b, &lk)
		before = append(before, lk)
	}
	ts.Close() // kill the HTTP layer; the index is never Closed ("kill -9")

	ts2, _ := newTestServer(t, dir)
	for i, b := range bodies {
		var lk lookupResp
		postJSON(t, ts2.URL+"/lookup", b, &lk)
		if fmt.Sprint(lk.IDs) != fmt.Sprint(before[i].IDs) {
			t.Fatalf("lookup %d after restart: %v != %v", i, lk.IDs, before[i].IDs)
		}
	}
}
