package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dvicl"
	"dvicl/internal/obs"
)

// newObsServer builds a server with the observability knobs set for
// testing: a sharded index, a 1ns slow-build threshold (every request
// lands in the slow ring), and no logger noise.
func newObsServer(t *testing.T) (*httptest.Server, *server, *dvicl.MetricsRecorder) {
	t.Helper()
	rec := dvicl.NewMetricsRecorder()
	ix := dvicl.NewShardedGraphIndex(dvicl.Options{Obs: rec}, 4)
	srv := newServer(ix, rec, serverConfig{
		MaxInflight: 8,
		MaxVerts:    1 << 20,
		SlowBuild:   time.Nanosecond,
	})
	ts := httptest.NewServer(srv.handler(10 * time.Second))
	t.Cleanup(ts.Close)
	return ts, srv, rec
}

// TestMetricsEndpoint is the acceptance check: /metrics serves a valid
// Prometheus text exposition that the vendored linter accepts, with the
// counter families, the phase histogram, and the per-shard gauges.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := newObsServer(t)
	if code := postJSON(t, ts.URL+"/add", c4Body, nil); code != http.StatusOK {
		t.Fatalf("add status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	if problems := obs.LintProm(text); len(problems) != 0 {
		t.Fatalf("/metrics fails lint:\n%s", strings.Join(problems, "\n"))
	}
	for _, want := range []string{
		"dvicl_http_requests_total",
		"dvicl_index_adds_total 1",
		"# TYPE dvicl_phase_duration_seconds histogram",
		`dvicl_phase_duration_seconds_bucket{phase="build",le="+Inf"}`,
		"dvicl_index_graphs 1",
		"dvicl_index_shards 4",
		`dvicl_index_shard_graphs{shard="0"}`,
		`dvicl_index_shard_graphs{shard="3"}`,
		"dvicl_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRequestIDs: a well-formed client id is accepted and echoed; a
// missing or malformed one is replaced by a generated id; errors carry
// the id in the body.
func TestRequestIDs(t *testing.T) {
	ts, _, _ := newObsServer(t)
	do := func(id, body string) (*http.Response, errResp) {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/add", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e errResp
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp, e
	}

	resp, _ := do("client-id-17", c4Body)
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-17" {
		t.Fatalf("echoed id = %q, want client-id-17", got)
	}

	resp, _ = do("", c4Body)
	gen := resp.Header.Get("X-Request-Id")
	if len(gen) != 16 {
		t.Fatalf("generated id = %q, want 16 hex chars", gen)
	}

	// Malformed ids are replaced by generated ones. The control-character
	// case can't travel through http.Client (it rejects the header), so
	// drive requestID directly.
	for _, bad := range []string{"bad\nid", "bad\x01id", strings.Repeat("x", maxRequestIDLen+1)} {
		req := httptest.NewRequest("POST", "/add", nil)
		req.Header["X-Request-Id"] = []string{bad}
		if got := requestID(req); got == bad || len(got) != 16 {
			t.Fatalf("malformed client id %q not replaced: %q", bad, got)
		}
	}

	// Error responses carry the id in the JSON body.
	resp, e := do("err-req-1", `{"n":2,"edges":[[0,9]]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad edge status %d", resp.StatusCode)
	}
	if e.RequestID != "err-req-1" || e.Error == "" {
		t.Fatalf("error body = %+v, want request_id err-req-1", e)
	}
}

// TestDebugBuilds: after a request, /debug/builds shows the build with
// its span tree, per-phase durations, and counter deltas; with a 1ns
// threshold the build also lands in the slow ring.
func TestDebugBuilds(t *testing.T) {
	ts, _, _ := newObsServer(t)
	req, err := http.NewRequest("POST", ts.URL+"/add", bytes.NewReader([]byte(c4Body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "flight-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var builds buildsResp
	r2, err := http.Get(ts.URL + "/debug/builds")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&builds); err != nil {
		t.Fatal(err)
	}
	if len(builds.Recent) != 1 || len(builds.Slow) != 1 {
		t.Fatalf("recent/slow = %d/%d records, want 1/1 (threshold %gms)",
			len(builds.Recent), len(builds.Slow), builds.SlowThresholdMs)
	}
	rec := builds.Recent[0]
	if rec.RequestID != "flight-1" || rec.Endpoint != "add" || rec.Outcome != "ok" || rec.Status != 200 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.GraphN != 4 || rec.GraphM != 4 {
		t.Fatalf("graph size = %d/%d, want 4/4", rec.GraphN, rec.GraphM)
	}
	if !rec.Slow || rec.DurMs <= 0 {
		t.Fatalf("slow=%v dur_ms=%g, want slow record with positive duration", rec.Slow, rec.DurMs)
	}

	// The span tree: request → index_add → build, all ended.
	tr := rec.Trace
	if tr.ID != "flight-1" || tr.Spans.Name != "request" || tr.Spans.Running {
		t.Fatalf("trace root = %+v", tr.Spans)
	}
	names := map[string]int{}
	var walk func(s dvicl.SpanSnapshot)
	walk = func(s dvicl.SpanSnapshot) {
		names[s.Name]++
		if s.DurNs < 1 {
			t.Errorf("span %s has no duration", s.Name)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(tr.Spans)
	for _, want := range []string{"index_add", "build", "refine"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from tree %v", want, names)
		}
	}

	// Counter deltas and phase durations for exactly this request.
	if tr.Counters["index_adds"] != 1 {
		t.Fatalf("trace counters = %v, want index_adds=1", tr.Counters)
	}
	if ps, ok := tr.Phases["build"]; !ok || ps.Count != 1 {
		t.Fatalf("trace phases = %v, want one build span", tr.Phases)
	}
}

// TestFlightRecorderSlowRingSurvivesFastBursts: the slow ring retains a
// slow outlier even after enough fast requests to wrap the recent ring.
func TestFlightRecorderSlowRingSurvivesFastBursts(t *testing.T) {
	f := newFlightRecorder(2, time.Millisecond, nil)
	f.record(buildRecord{RequestID: "slow-1", DurMs: 50})
	for i := 0; i < 5; i++ {
		f.record(buildRecord{RequestID: "fast", DurMs: 0.01})
	}
	if got := f.recent.list(); len(got) != 2 || got[0].RequestID != "fast" {
		t.Fatalf("recent ring: %+v", got)
	}
	slow := f.slow.list()
	if len(slow) != 1 || slow[0].RequestID != "slow-1" || !slow[0].Slow {
		t.Fatalf("slow ring lost the outlier: %+v", slow)
	}
}

// TestThrottleCountsBothCounters pins the satellite invariant: a 503
// from the admission limiter increments http_throttled AND http_errors
// (the limiter responds through the same statusWriter instrumented
// counts errors on).
func TestThrottleCountsBothCounters(t *testing.T) {
	rec := dvicl.NewMetricsRecorder()
	ix := dvicl.NewGraphIndex(dvicl.Options{Obs: rec})
	srv := newServer(ix, rec, serverConfig{MaxInflight: 1, MaxVerts: 1 << 20})

	srv.sem <- struct{}{} // occupy the only admission token
	w := httptest.NewRecorder()
	srv.limited(srv.traced("add", srv.handleAdd))(w,
		httptest.NewRequest("POST", "/add", bytes.NewReader([]byte(c4Body))))
	<-srv.sem

	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if got := rec.Counter(obs.HTTPThrottled); got != 1 {
		t.Fatalf("http_throttled = %d, want 1", got)
	}
	if got := rec.Counter(obs.HTTPErrors); got != 1 {
		t.Fatalf("http_errors = %d, want 1 (throttled 503s must count as errors too)", got)
	}
	if got := rec.Counter(obs.HTTPRequests); got != 1 {
		t.Fatalf("http_requests = %d, want 1", got)
	}
}

// TestStatsShardGraphs: /stats always exposes the per-shard graph
// counts, summing to the total.
func TestStatsShardGraphs(t *testing.T) {
	ts, _, _ := newObsServer(t)
	for _, body := range []string{c4Body, p4Body, `{"n":3,"edges":[[0,1],[1,2],[2,0]]}`} {
		if code := postJSON(t, ts.URL+"/add", body, nil); code != http.StatusOK {
			t.Fatalf("add status %d", code)
		}
	}
	var st statsResp
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Index.ShardGraphs) != 4 {
		t.Fatalf("shard_graphs = %v, want 4 entries", st.Index.ShardGraphs)
	}
	sum := 0
	for _, n := range st.Index.ShardGraphs {
		sum += n
	}
	if sum != st.Index.Graphs || sum != 3 {
		t.Fatalf("shard_graphs %v sums to %d, want graphs total %d = 3",
			st.Index.ShardGraphs, sum, st.Index.Graphs)
	}
}

// TestBulkTraceDetached: a /bulk request is traced at the request level
// (one bulk_ingest span with record totals) without a span per record —
// the pipeline detaches the trace before fanning out.
func TestBulkTraceDetached(t *testing.T) {
	ts, _, _ := newObsServer(t)
	stream := bulkStream(t, 40, 5)
	resp, err := http.Post(ts.URL+"/bulk", "text/plain", strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk status %d", resp.StatusCode)
	}

	var builds buildsResp
	r2, err := http.Get(ts.URL + "/debug/builds")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&builds); err != nil {
		t.Fatal(err)
	}
	if len(builds.Recent) != 1 {
		t.Fatalf("recent = %d records, want 1", len(builds.Recent))
	}
	rec := builds.Recent[0]
	if rec.Endpoint != "bulk" || rec.Outcome != "ok" {
		t.Fatalf("bulk record = %+v", rec)
	}
	var bulkSpans, totalSpans int
	var records int64
	var walk func(s dvicl.SpanSnapshot)
	walk = func(s dvicl.SpanSnapshot) {
		totalSpans++
		if s.Name == "bulk_ingest" {
			bulkSpans++
			records = s.Attrs["records"]
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(rec.Trace.Spans)
	if bulkSpans != 1 || records != 40 {
		t.Fatalf("want one bulk_ingest span with records=40, got %d spans records=%d", bulkSpans, records)
	}
	// Detached: no per-record build/index spans in the request tree.
	if totalSpans > 4 {
		t.Fatalf("bulk trace has %d spans — per-record spans leaked into the request tree", totalSpans)
	}
	// But the per-request counter deltas still include the workers' effort.
	if got := rec.Trace.Counters["bulk_records"]; got != 40 {
		t.Fatalf("trace bulk_records = %d, want 40", got)
	}
	if rec.Trace.Counters["index_adds"] != 40 {
		t.Fatalf("trace index_adds = %d, want 40", rec.Trace.Counters["index_adds"])
	}
}
