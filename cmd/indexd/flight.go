package main

import (
	"log/slog"
	"net/http"
	"sync"
	"time"

	"dvicl"
)

// buildRecord is one completed graph-processing request as the flight
// recorder keeps it: identity, outcome, graph size, and the full trace
// snapshot (span tree + per-request counter deltas + phase timings).
type buildRecord struct {
	RequestID string    `json:"request_id"`
	Endpoint  string    `json:"endpoint"`
	Status    int       `json:"status"`
	Outcome   string    `json:"outcome"` // ok | canceled | budget_exceeded | error
	Error     string    `json:"error,omitempty"`
	GraphN    int       `json:"graph_n,omitempty"`
	GraphM    int       `json:"graph_m,omitempty"`
	Start     time.Time `json:"start"`
	DurMs     float64   `json:"dur_ms"`
	Slow      bool      `json:"slow,omitempty"`

	Trace dvicl.TraceSnapshot `json:"trace"`
}

// buildRing is a fixed-size ring of buildRecords, newest overwriting
// oldest.
type buildRing struct {
	buf  []buildRecord
	next int
	n    int
}

func newBuildRing(size int) *buildRing {
	return &buildRing{buf: make([]buildRecord, size)}
}

func (r *buildRing) add(rec buildRecord) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// list returns the records newest first.
func (r *buildRing) list() []buildRecord {
	out := make([]buildRecord, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// flightRecorder keeps the last N completed builds plus every build
// slower than the slow threshold in separate rings, so a burst of fast
// requests cannot evict the interesting outliers. Slow builds are also
// logged as one structured line — the greppable counterpart of
// /debug/builds.
type flightRecorder struct {
	slowThresh time.Duration
	logger     *slog.Logger

	mu     sync.Mutex
	recent *buildRing
	slow   *buildRing
}

func newFlightRecorder(size int, slowThresh time.Duration, logger *slog.Logger) *flightRecorder {
	if size < 1 {
		size = 1
	}
	return &flightRecorder{
		slowThresh: slowThresh,
		logger:     logger,
		recent:     newBuildRing(size),
		slow:       newBuildRing(size),
	}
}

// record files one completed request and emits the slow-build log line
// when it crossed the threshold.
func (f *flightRecorder) record(rec buildRecord) {
	if f == nil {
		return
	}
	rec.Slow = f.slowThresh > 0 && rec.DurMs >= f.slowThresh.Seconds()*1000
	f.mu.Lock()
	f.recent.add(rec)
	if rec.Slow {
		f.slow.add(rec)
	}
	f.mu.Unlock()
	if rec.Slow && f.logger != nil {
		f.logger.Warn("slow build",
			slog.String("request_id", rec.RequestID),
			slog.String("endpoint", rec.Endpoint),
			slog.String("outcome", rec.Outcome),
			slog.Int("status", rec.Status),
			slog.Int("graph_n", rec.GraphN),
			slog.Int("graph_m", rec.GraphM),
			slog.Float64("dur_ms", rec.DurMs),
			slog.Int64("search_nodes", rec.Trace.Counters["search_nodes"]),
			slog.Int64("leaf_searches", rec.Trace.Counters["leaf_searches"]),
			slog.Int64("truncations", rec.Trace.Counters["truncations"]),
		)
	}
}

// buildsResp is the /debug/builds body.
type buildsResp struct {
	SlowThresholdMs float64       `json:"slow_threshold_ms"`
	Recent          []buildRecord `json:"recent"`
	Slow            []buildRecord `json:"slow"`
}

// handleBuilds serves the flight recorder contents, newest first.
func (f *flightRecorder) handleBuilds(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	resp := buildsResp{
		SlowThresholdMs: f.slowThresh.Seconds() * 1000,
		Recent:          f.recent.list(),
		Slow:            f.slow.list(),
	}
	f.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
