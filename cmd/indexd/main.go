// Command indexd serves a persistent canonical-certificate graph index
// over HTTP — the paper's database-indexing application (introduction,
// (a)) as a long-lived daemon: two graphs are isomorphic iff their DviCL
// certificates match, so deduplication and isomorphism lookup are map
// operations against the index.
//
// Usage:
//
//	indexd [-addr :7171] [-data dir] [-shards n] [-sync] [-cache n]
//	       [-compact-every n] [-max-inflight n] [-max-verts n]
//	       [-max-body-bytes n] [-timeout d] [-build-timeout d] [-workers n]
//	       [-bulk-workers n] [-metrics-json out.json] [-debug-addr :6060]
//	       [-slow-build d] [-flight-recorder n] [-treestore] [-treestore-mem n]
//
// Endpoints (JSON; see docs/OPERATIONS.md for curl examples):
//
//	POST /add      {"n":4,"edges":[[0,1],...]} or {"graph6":"..."}
//	               → {"id":0,"duplicate":false}
//	POST /lookup   same body → {"ids":[0,3]}
//	POST /batch    {"ops":[{"op":"add","n":...,"edges":...},...]}
//	POST /bulk     streaming graph6 body, one record per line → ingest report
//	POST /flush    force a snapshot compaction → index stats
//	GET  /stats    index + cache + counter statistics
//	GET  /metrics  Prometheus text exposition (counters, phase histograms, gauges)
//	GET  /orbits?id=N    orbit partition of the stored graph's class
//	GET  /autgroup?id=N  |Aut| (decimal string) + sparse generators
//	GET  /quotient?id=N  orbit-quotient graph + vertex→orbit map
//	POST /ssm      {"id":N,"pattern":[0,1],"limit":4} → image count (+ images)
//	GET  /debug/builds  flight recorder: recent + slow builds with span trees
//	GET  /healthz  liveness ("ok", 200)
//	GET  /readyz   readiness (index open and its directory writable)
//
// The symmetry queries (/orbits, /autgroup, /quotient, /ssm) answer at
// the isomorphism-class level, over the canonical graph of the id's
// class. With -treestore (the default) each class's AutoTree is kept in
// a content-addressed store beside the index — write-behind persisted on
// add, cached decoded in memory under -treestore-mem — so the warm path
// performs zero DviCL builds; cold, missing, or corrupt entries degrade
// to a single recompute, never an error.
//
// Graph-processing requests carry a request id (the client's X-Request-Id
// or a generated one), echoed in the response header and error bodies; a
// Trace of each build is kept in the flight recorder, and builds slower
// than -slow-build are logged as structured slow-build lines.
//
// With -data the index is durable: every Add is write-through logged to a
// WAL and periodically compacted into a snapshot; restart (even kill -9)
// reloads the same ids. Without -data the index is in-memory only.
//
// -max-inflight bounds concurrent graph-processing requests (excess
// requests get 503 + Retry-After backpressure), -timeout bounds each
// request end to end, and SIGINT/SIGTERM trigger a graceful shutdown that
// drains connections and writes a final snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dvicl"
)

func main() {
	addr := flag.String("addr", ":7171", "HTTP listen address")
	data := flag.String("data", "", "index directory (empty = in-memory, no persistence)")
	shards := flag.Int("shards", 1, "index shards (fixed at creation; an existing -data directory keeps its on-disk count)")
	sync := flag.Bool("sync", false, "fsync the WAL on every add (durable to power loss)")
	cache := flag.Int("cache", 0, "certificate LRU cache entries (0 = default 4096, negative = off)")
	compactEvery := flag.Int("compact-every", 0, "snapshot after this many WAL appends (0 = default 8192, negative = only on /flush and shutdown)")
	maxInflight := flag.Int("max-inflight", 2*runtime.GOMAXPROCS(0), "max concurrent graph-processing requests before 503 backpressure")
	maxVerts := flag.Int("max-verts", 1<<20, "reject graphs with more vertices than this")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "reject JSON request bodies larger than this with 413 (0 = default 32 MiB)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	buildTimeout := flag.Duration("build-timeout", 0, "hard wall-clock bound on a single certificate build (0 = bounded only by -timeout)")
	workers := flag.Int("workers", 0, "parallel subtree builders per certificate build (0 = sequential)")
	bulkWorkers := flag.Int("bulk-workers", 0, "parallel canonicalization workers for /bulk (0 = NumCPU)")
	metricsJSON := flag.String("metrics-json", "", "write the observability snapshot to this file on shutdown")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/metrics on this address")
	slowBuild := flag.Duration("slow-build", time.Second, "retain and log builds at least this slow in the flight recorder's slow ring (0 = disable)")
	flightSize := flag.Int("flight-recorder", 64, "completed builds kept per flight-recorder ring (/debug/builds)")
	treeStore := flag.Bool("treestore", true, "keep an AutoTree store beside the index so symmetry queries skip rebuilds (persistent under -data, in-memory otherwise)")
	treeStoreMem := flag.Int64("treestore-mem", 0, "decoded-tree cache budget in bytes, index-wide (0 = default 256 MiB)")
	flag.Parse()

	rec := dvicl.NewMetricsRecorder()
	opt := dvicl.IndexOptions{
		DviCL:        dvicl.Options{Workers: *workers, Obs: rec, Budget: dvicl.Budget{BuildTimeout: *buildTimeout}},
		CacheSize:    *cache,
		SyncWrites:   *sync,
		CompactEvery: *compactEvery,
		Shards:       *shards,
	}
	if *treeStore {
		opt.TreeStore = &dvicl.TreeStoreOptions{MemBudget: *treeStoreMem}
	}

	var ix *dvicl.GraphIndex
	if *data != "" {
		var err error
		ix, err = dvicl.OpenGraphIndex(*data, opt)
		if err != nil {
			log.Fatalf("indexd: open %s: %v", *data, err)
		}
		st := ix.Stats()
		log.Printf("indexd: loaded %d graphs (%d classes, %d shards) from %s: snapshot=%d wal=%d torn-bytes=%d",
			st.Graphs, st.Classes, st.Shards, *data, st.SnapshotCerts, st.ReplayedRecords, st.RecoveredBytes)
	} else {
		ix = dvicl.NewGraphIndexWithOptions(opt)
		log.Printf("indexd: in-memory index (no -data directory; adds will not survive restart)")
	}

	if *debugAddr != "" {
		dbg, err := dvicl.ServeDebug(*debugAddr, rec)
		if err != nil {
			log.Fatalf("indexd: debug server: %v", err)
		}
		defer dbg.Close()
		log.Printf("indexd: debug server on http://%s/debug/pprof/", dbg.Addr)
	}

	srv := newServer(ix, rec, serverConfig{
		MaxInflight:  *maxInflight,
		MaxVerts:     *maxVerts,
		MaxBodyBytes: *maxBodyBytes,
		BulkWorkers:  *bulkWorkers,
		SlowBuild:    *slowBuild,
		FlightSize:   *flightSize,
		Logger:       slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	srv.buildOpt = opt.DviCL
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("indexd: listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{
		Handler: srv.handler(*timeout),
		// The TimeoutHandler bounds handler time; these bound slow clients.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *timeout + 10*time.Second,
		WriteTimeout:      *timeout + 10*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("indexd: serving on http://%s (max-inflight=%d timeout=%v)", ln.Addr(), *maxInflight, *timeout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		log.Printf("indexd: shutdown signal received, draining...")
	case err := <-errCh:
		log.Fatalf("indexd: serve: %v", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("indexd: shutdown: %v", err)
	}
	if err := ix.Close(); err != nil && !errors.Is(err, dvicl.ErrIndexClosed) {
		log.Printf("indexd: index close: %v", err)
	}
	writeMetrics(*metricsJSON, rec)
	log.Printf("indexd: bye")
}

func writeMetrics(path string, rec *dvicl.MetricsRecorder) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("indexd: metrics: %v", err)
		return
	}
	defer f.Close()
	if err := rec.Snapshot().WriteJSON(f); err != nil {
		log.Printf("indexd: metrics: %v", err)
		return
	}
	fmt.Printf("metrics written to %s\n", path)
}
