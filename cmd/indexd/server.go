package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"dvicl"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
	"dvicl/internal/pipeline"
)

// Request/response bodies. A graph arrives either as an explicit edge
// list ({"n": 4, "edges": [[0,1],[1,2]]}) or as a graph6 string
// ({"graph6": "Cr"}); graph6 wins when both are present.
type graphReq struct {
	N      int      `json:"n"`
	Edges  [][2]int `json:"edges"`
	Graph6 string   `json:"graph6"`
}

type addResp struct {
	ID        int  `json:"id"`
	Duplicate bool `json:"duplicate"`
}

type lookupResp struct {
	IDs []int `json:"ids"`
}

type batchOp struct {
	Op string `json:"op"` // "add" or "lookup"
	graphReq
}

type batchReq struct {
	Ops []batchOp `json:"ops"`
}

type batchResult struct {
	ID        *int   `json:"id,omitempty"`
	Duplicate *bool  `json:"duplicate,omitempty"`
	IDs       []int  `json:"ids,omitempty"`
	Error     string `json:"error,omitempty"`
}

type batchResp struct {
	Results []batchResult `json:"results"`
}

type errResp struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// bulkResp is the /bulk ingest report: the pipeline totals for this
// request plus what the index did with the certificates.
type bulkResp struct {
	pipeline.Report
	NewClasses int64            `json:"new_classes"`
	Duplicates int64            `json:"duplicates"`
	Index      dvicl.IndexStats `json:"index"`
}

type statsResp struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Index         dvicl.IndexStats `json:"index"`
	Counters      map[string]int64 `json:"counters"`
}

// Request-size guardrails: batch fan-out and bulk chunking are bounded so
// one request cannot exhaust the process. The JSON body cap is a flag
// (-max-body-bytes); these stay constants.
const (
	defaultMaxBodyBytes = 32 << 20
	maxBatchOps         = 1024
	// bulkChunkRecords is how many graph6 records the /bulk endpoint
	// processes per admission token: large enough to amortize pool
	// startup, small enough that interactive traffic interleaves with a
	// long-running stream.
	bulkChunkRecords = 256
	// defaultFlightSize is each flight-recorder ring's capacity when
	// -flight-recorder is unset.
	defaultFlightSize = 64
	// maxRequestIDLen caps accepted X-Request-Id values; longer (or
	// non-printable) ids are replaced with a generated one.
	maxRequestIDLen = 64
	// maxSSMImages caps how many automorphic images one /ssm request may
	// enumerate (the count is always exact; only enumeration is bounded).
	maxSSMImages = 10000
)

// serverConfig bundles the daemon's request-handling knobs (the flag
// surface of main, minus the index itself).
type serverConfig struct {
	// MaxInflight is the admission-semaphore width for graph-processing
	// endpoints; MaxVerts/MaxBodyBytes reject oversized inputs;
	// BulkWorkers is the /bulk canonicalization pool (0 = NumCPU).
	MaxInflight  int
	MaxVerts     int
	MaxBodyBytes int64
	BulkWorkers  int
	// SlowBuild is the flight-recorder slow threshold (-slow-build):
	// completed builds at least this slow are retained in the slow ring
	// and logged. 0 disables the slow ring and the log line.
	SlowBuild time.Duration
	// FlightSize is each flight-recorder ring's capacity (-flight-recorder).
	FlightSize int
	// Logger receives the structured slow-build lines; nil disables them.
	Logger *slog.Logger
}

// server holds the daemon's state: the index, the recorder, the flight
// recorder, and the admission control for graph-processing endpoints.
type server struct {
	ix           *dvicl.GraphIndex
	rec          *dvicl.MetricsRecorder // alias of *obs.Recorder
	sem          chan struct{}          // admission tokens for expensive endpoints
	maxVerts     int
	maxBodyBytes int64
	bulkWorkers  int
	buildOpt     dvicl.Options // per-build options (Budget, Workers) for /bulk canonicalization
	flight       *flightRecorder
	start        time.Time
}

func newServer(ix *dvicl.GraphIndex, rec *dvicl.MetricsRecorder, cfg serverConfig) *server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.BulkWorkers <= 0 {
		cfg.BulkWorkers = runtime.NumCPU()
	}
	if cfg.FlightSize <= 0 {
		cfg.FlightSize = defaultFlightSize
	}
	return &server{
		ix:           ix,
		rec:          rec,
		sem:          make(chan struct{}, cfg.MaxInflight),
		maxVerts:     cfg.MaxVerts,
		maxBodyBytes: cfg.MaxBodyBytes,
		bulkWorkers:  cfg.BulkWorkers,
		flight:       newFlightRecorder(cfg.FlightSize, cfg.SlowBuild, cfg.Logger),
		start:        time.Now(),
	}
}

// handler assembles the full route table. timeout bounds each request end
// to end (http.TimeoutHandler replies 503 when exceeded) — except /bulk,
// which is a streaming ingest of unbounded duration and manages its own
// backpressure per chunk instead.
func (s *server) handler(timeout time.Duration) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /add", s.limited(s.traced("add", s.handleAdd)))
	mux.HandleFunc("POST /lookup", s.limited(s.traced("lookup", s.handleLookup)))
	mux.HandleFunc("POST /batch", s.limited(s.traced("batch", s.handleBatch)))
	mux.HandleFunc("POST /flush", s.limited(s.handleFlush))
	// Symmetry queries share the admission semaphore with /add: the warm
	// path is cheap (cached AutoTree), but a cold or corrupt entry
	// degrades to a full DviCL rebuild.
	mux.HandleFunc("GET /orbits", s.limited(s.traced("orbits", s.handleOrbits)))
	mux.HandleFunc("GET /autgroup", s.limited(s.traced("autgroup", s.handleAutGroup)))
	mux.HandleFunc("GET /quotient", s.limited(s.traced("quotient", s.handleQuotient)))
	mux.HandleFunc("POST /ssm", s.limited(s.traced("ssm", s.handleSSM)))
	mux.HandleFunc("GET /stats", s.instrumented(s.handleStats))
	mux.HandleFunc("GET /metrics", s.instrumented(s.handleMetrics))
	mux.HandleFunc("GET /debug/builds", s.instrumented(s.flight.handleBuilds))
	mux.HandleFunc("GET /healthz", s.instrumented(s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrumented(s.handleReadyz))
	body := `{"error":"request timed out"}` + "\n"
	outer := http.NewServeMux()
	outer.HandleFunc("POST /bulk", s.instrumented(s.traced("bulk", s.handleBulk)))
	outer.Handle("/", http.TimeoutHandler(mux, timeout, body))
	return outer
}

// instrumented counts the request, times it, and tracks error statuses.
// Throttled 503s pass through the same statusWriter, so they are counted
// in http_errors as well as http_throttled — an invariant pinned by
// TestThrottleCountsBothCounters.
func (s *server) instrumented(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.rec.Inc(obs.HTTPRequests)
		span := s.rec.StartPhase(obs.PhaseHTTP)
		defer span.End()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		if sw.status >= 400 {
			s.rec.Inc(obs.HTTPErrors)
		}
	}
}

// limited is instrumented plus admission control: when all tokens are
// taken the request is rejected immediately with 503 + Retry-After —
// backpressure, not an unbounded queue.
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	return s.instrumented(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rec.Inc(obs.HTTPThrottled)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errResp{Error: "server at capacity"})
			return
		}
		h(w, r)
	})
}

// reqInfo is the per-request record the traced middleware and the
// handlers share: identity, the live trace, the graph dimensions (filled
// in once the body is decoded), and how the request ended.
type reqInfo struct {
	id string
	tr *dvicl.Trace

	mu      sync.Mutex
	n, m    int
	outcome string
	errMsg  string
}

// noteGraph records the request's graph size (the largest seen, so a
// batch reports its dominant graph).
func (ri *reqInfo) noteGraph(n, m int) {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	if n > ri.n {
		ri.n, ri.m = n, m
	}
	ri.mu.Unlock()
}

// fail records the terminal outcome of a failed request.
func (ri *reqInfo) fail(outcome, msg string) {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	ri.outcome, ri.errMsg = outcome, msg
	ri.mu.Unlock()
}

type reqInfoKey struct{}

// reqInfoFrom returns the request's reqInfo, or nil outside traced
// endpoints.
func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// requestID returns the client's X-Request-Id when it is well-formed
// (printable ASCII, bounded length), or a fresh random id.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id != "" && len(id) <= maxRequestIDLen {
		ok := true
		for i := 0; i < len(id); i++ {
			if id[i] <= ' ' || id[i] > '~' {
				ok = false
				break
			}
		}
		if ok {
			return id
		}
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-unknown"
	}
	return hex.EncodeToString(b[:])
}

// traced wraps a graph-processing handler with the request-scoped
// observability: a request id (accepted or generated, echoed in the
// X-Request-Id response header and error bodies), a Trace on the context
// that the build/lookup layers attach their span trees to, and — when the
// request completes — a buildRecord filed in the flight recorder, with a
// structured slow-build log line past the -slow-build threshold.
func (s *server) traced(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ri := &reqInfo{id: requestID(r)}
		ri.tr = dvicl.NewTrace(ri.id, s.rec)
		w.Header().Set("X-Request-Id", ri.id)
		ctx := dvicl.WithTrace(r.Context(), ri.tr)
		ctx = context.WithValue(ctx, reqInfoKey{}, ri)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r.WithContext(ctx))
		ri.tr.Root().End()

		ri.mu.Lock()
		outcome, errMsg, n, m := ri.outcome, ri.errMsg, ri.n, ri.m
		ri.mu.Unlock()
		if outcome == "" {
			if sw.status >= 400 {
				outcome = "error"
			} else {
				outcome = "ok"
			}
		}
		s.flight.record(buildRecord{
			RequestID: ri.id,
			Endpoint:  endpoint,
			Status:    sw.status,
			Outcome:   outcome,
			Error:     errMsg,
			GraphN:    n,
			GraphM:    m,
			Start:     start,
			DurMs:     float64(time.Since(start)) / float64(time.Millisecond),
			Trace:     ri.tr.Snapshot(),
		})
	}
}

// statusWriter records the status code for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// writeErr sends a JSON error carrying the request id and records the
// outcome on the request's reqInfo ("error" unless already set).
func (s *server) writeErr(w http.ResponseWriter, r *http.Request, status int, msg string) {
	resp := errResp{Error: msg}
	if ri := reqInfoFrom(r.Context()); ri != nil {
		resp.RequestID = ri.id
		ri.mu.Lock()
		if ri.outcome == "" {
			ri.outcome = "error"
		}
		ri.errMsg = msg
		ri.mu.Unlock()
	}
	writeJSON(w, status, resp)
}

// buildError maps a certificate-build error onto an HTTP response,
// reporting whether there was one to handle. A canceled build (client
// disconnect, or the TimeoutHandler expiring the request context
// mid-canonicalization) and an exhausted build budget are 503s — the
// request was shed, not malformed; cancellations also bump
// index_canceled so load shedding is visible in /stats. The outcome is
// recorded on the request's reqInfo for the flight recorder.
func (s *server) buildError(w http.ResponseWriter, r *http.Request, err error) bool {
	ri := reqInfoFrom(r.Context())
	switch {
	case err == nil:
		return false
	case errors.Is(err, dvicl.ErrCanceled):
		s.rec.Inc(obs.IndexCanceled)
		ri.fail("canceled", err.Error())
		w.Header().Set("Retry-After", "1")
		s.writeErr(w, r, http.StatusServiceUnavailable, "request canceled")
	case errors.Is(err, dvicl.ErrBudgetExceeded):
		ri.fail("budget_exceeded", err.Error())
		s.writeErr(w, r, http.StatusServiceUnavailable, "build budget exceeded")
	case errors.Is(err, dvicl.ErrIndexClosed):
		s.writeErr(w, r, http.StatusServiceUnavailable, err.Error())
	default:
		s.writeErr(w, r, http.StatusInternalServerError, err.Error())
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeGraph validates and materializes the graph of a request body.
func (s *server) decodeGraph(req *graphReq) (*dvicl.Graph, error) {
	if req.Graph6 != "" {
		g, err := dvicl.FromGraph6(req.Graph6)
		if err != nil {
			return nil, fmt.Errorf("graph6: %w", err)
		}
		if g.N() > s.maxVerts {
			return nil, fmt.Errorf("graph has %d vertices, limit %d", g.N(), s.maxVerts)
		}
		return g, nil
	}
	if req.N < 0 || req.N > s.maxVerts {
		return nil, fmt.Errorf("n=%d out of range [0,%d]", req.N, s.maxVerts)
	}
	for _, e := range req.Edges {
		if e[0] < 0 || e[0] >= req.N || e[1] < 0 || e[1] >= req.N {
			return nil, fmt.Errorf("edge [%d,%d] out of range [0,%d)", e[0], e[1], req.N)
		}
	}
	return dvicl.FromEdges(req.N, req.Edges), nil
}

// decodeBody JSON-decodes a request body under the -max-body-bytes cap.
// An oversized body is a 413 with a JSON error — MaxBytesReader cuts the
// read off at the limit, so a huge payload never reaches the decoder's
// buffers, let alone the heap.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errResp{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errResp{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req graphReq
	if !s.decodeBody(w, r, &req) {
		return
	}
	g, err := s.decodeGraph(&req)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	reqInfoFrom(r.Context()).noteGraph(g.N(), g.M())
	id, dup, err := s.ix.AddCtx(r.Context(), g)
	if s.buildError(w, r, err) {
		return
	}
	writeJSON(w, http.StatusOK, addResp{ID: id, Duplicate: dup})
}

func (s *server) handleLookup(w http.ResponseWriter, r *http.Request) {
	var req graphReq
	if !s.decodeBody(w, r, &req) {
		return
	}
	g, err := s.decodeGraph(&req)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	reqInfoFrom(r.Context()).noteGraph(g.N(), g.M())
	ids, err := s.ix.LookupCtx(r.Context(), g)
	if s.buildError(w, r, err) {
		return
	}
	if ids == nil {
		ids = []int{}
	}
	writeJSON(w, http.StatusOK, lookupResp{IDs: ids})
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchReq
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Ops) > maxBatchOps {
		s.writeErr(w, r, http.StatusBadRequest,
			fmt.Sprintf("batch of %d ops exceeds limit %d", len(req.Ops), maxBatchOps))
		return
	}
	resp := batchResp{Results: make([]batchResult, len(req.Ops))}
	for i := range req.Ops {
		op := &req.Ops[i]
		res := &resp.Results[i]
		g, err := s.decodeGraph(&op.graphReq)
		if err != nil {
			res.Error = err.Error()
			continue
		}
		reqInfoFrom(r.Context()).noteGraph(g.N(), g.M())
		switch op.Op {
		case "add":
			id, dup, err := s.ix.AddCtx(r.Context(), g)
			if err != nil {
				// A canceled/over-budget request is dead as a whole, not
				// per-op: stop burning CPU on the remaining ops.
				if errors.Is(err, dvicl.ErrCanceled) || errors.Is(err, dvicl.ErrBudgetExceeded) {
					s.buildError(w, r, err)
					return
				}
				res.Error = err.Error()
				continue
			}
			res.ID, res.Duplicate = &id, &dup
		case "lookup":
			ids, err := s.ix.LookupCtx(r.Context(), g)
			if err != nil {
				if errors.Is(err, dvicl.ErrCanceled) || errors.Is(err, dvicl.ErrBudgetExceeded) {
					s.buildError(w, r, err)
					return
				}
				res.Error = err.Error()
				continue
			}
			if ids == nil {
				ids = []int{}
			}
			res.IDs = ids
		default:
			res.Error = fmt.Sprintf("unknown op %q (want add or lookup)", op.Op)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBulk streams a graph6 body — one record per line, arbitrarily
// many — through the parallel canonicalization pipeline into the index.
// It is mounted outside the TimeoutHandler and the JSON body cap: the
// body is consumed incrementally (never buffered whole), and
// backpressure is applied per chunk instead of per request. Each chunk
// of bulkChunkRecords records takes one admission token from the same
// semaphore as /add, so a long-running stream shares capacity with
// interactive traffic rather than starving it.
func (s *server) handleBulk(w http.ResponseWriter, r *http.Request) {
	// The server's read/write deadlines are sized for request/response
	// endpoints; a bulk stream legitimately runs longer. Clear them for
	// this connection (admission control still bounds the work rate).
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Time{})
	_ = rc.SetWriteDeadline(time.Time{})

	decode := func(raw string) (*dvicl.Graph, error) {
		g, err := graph.FromGraph6(raw)
		if err != nil {
			return nil, err
		}
		if g.N() > s.maxVerts {
			return nil, fmt.Errorf("graph has %d vertices, limit %d", g.N(), s.maxVerts)
		}
		return g, nil
	}

	var total bulkResp
	const maxErrors = 20
	start := time.Now()
	runChunk := func(chunk []string, firstLine int) (int, error) {
		select {
		case s.sem <- struct{}{}:
		case <-r.Context().Done():
			return 0, r.Context().Err() // client gone; status is moot
		}
		defer func() { <-s.sem }()
		rep, err := pipeline.Run(pipeline.Config{
			Ctx:     r.Context(),
			Workers: s.bulkWorkers,
			Decode:  decode,
			Canon: func(ctx context.Context, g *dvicl.Graph, ws *dvicl.Workspace, wrec *dvicl.MetricsRecorder) (string, error) {
				o := s.buildOpt
				o.Obs = wrec
				o.Workspace = ws
				cert, err := dvicl.CanonicalCertCtx(ctx, g, nil, o)
				return string(cert), err
			},
			Apply: func(seq int64, cert string) error {
				_, dup, err := s.ix.AddCertCtx(r.Context(), cert)
				if err != nil {
					return err
				}
				if dup {
					total.Duplicates++
				} else {
					total.NewClasses++
				}
				return nil
			},
			Obs: s.rec,
		}, pipeline.SliceSource(chunk, firstLine))
		total.Records += rep.Records
		total.Applied += rep.Applied
		total.DecodeErrors += rep.DecodeErrors
		for _, e := range rep.Errors {
			if len(total.Errors) < maxErrors {
				total.Errors = append(total.Errors, e)
			}
		}
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, dvicl.ErrCanceled):
				s.rec.Inc(obs.IndexCanceled)
				reqInfoFrom(r.Context()).fail("canceled", err.Error())
				status = http.StatusServiceUnavailable
			case errors.Is(err, dvicl.ErrBudgetExceeded):
				reqInfoFrom(r.Context()).fail("budget_exceeded", err.Error())
				status = http.StatusServiceUnavailable
			case errors.Is(err, dvicl.ErrIndexClosed):
				status = http.StatusServiceUnavailable
			}
			return status, err
		}
		return 0, nil
	}

	sc := graph.NewGraph6Scanner(r.Body)
	chunk := make([]string, 0, bulkChunkRecords)
	for {
		chunk = chunk[:0]
		firstLine := 0
		for len(chunk) < bulkChunkRecords && sc.Scan() {
			if firstLine == 0 {
				firstLine = sc.Line()
			}
			chunk = append(chunk, sc.Text())
		}
		if len(chunk) == 0 {
			break
		}
		if status, err := runChunk(chunk, firstLine); err != nil {
			if status != 0 {
				s.writeErr(w, r, status, err.Error())
			}
			return
		}
	}
	if err := sc.Err(); err != nil {
		s.writeErr(w, r, http.StatusBadRequest, "read stream: "+err.Error())
		return
	}

	total.Workers = s.bulkWorkers
	total.ElapsedSeconds = time.Since(start).Seconds()
	if total.ElapsedSeconds > 0 {
		total.GraphsPerSec = float64(total.Applied) / total.ElapsedSeconds
	}
	total.Index = s.ix.Stats()
	writeJSON(w, http.StatusOK, total)
}

func (s *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.ix.Flush(); err != nil {
		writeJSON(w, http.StatusInternalServerError, errResp{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.ix.Stats())
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResp{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Index:         s.ix.Stats(),
		Counters:      s.rec.Snapshot().Counters,
	})
}

// handleMetrics serves the Prometheus text exposition: every counter as
// a dvicl_*_total series, the phase timers as one histogram family, and
// the live IndexStats as gauges (including a per-shard graphs series for
// watching the certificate hash balance).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.ix.Stats()
	gauges := []obs.PromGauge{
		{Name: "index_graphs", Help: "Graphs stored in the index.", Value: float64(st.Graphs)},
		{Name: "index_classes", Help: "Distinct isomorphism classes stored.", Value: float64(st.Classes)},
		{Name: "index_duplicates", Help: "Adds collapsed onto an existing class.", Value: float64(st.Duplicates)},
		{Name: "index_shards", Help: "Configured shard count.", Value: float64(st.Shards)},
		{Name: "index_cache_entries", Help: "Certificate LRU cache entries.", Value: float64(st.CacheEntries)},
		{Name: "index_wal_records", Help: "WAL appends since the last snapshot, summed across shards.", Value: float64(st.WALRecords)},
		{Name: "uptime_seconds", Help: "Seconds since the daemon started.", Value: time.Since(s.start).Seconds()},
	}
	if ts := st.TreeStore; ts != nil {
		gauges = append(gauges,
			obs.PromGauge{Name: "treestore_entries", Help: "Decoded AutoTrees cached in memory, summed across shards.", Value: float64(ts.Entries)},
			obs.PromGauge{Name: "treestore_bytes", Help: "Encoded bytes of cached AutoTrees, summed across shards.", Value: float64(ts.Bytes)},
			obs.PromGauge{Name: "treestore_mem_budget_bytes", Help: "Configured decoded-tree cache budget (index-wide).", Value: float64(ts.MemBudget)},
		)
	}
	for i, n := range st.ShardGraphs {
		gauges = append(gauges, obs.PromGauge{
			Name:   "index_shard_graphs",
			Help:   "Graphs stored per shard (certificate hash balance).",
			Labels: []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}},
			Value:  float64(n),
		})
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = obs.WriteProm(w, s.rec.Snapshot(), gauges)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
