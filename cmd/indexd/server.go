package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dvicl"
	"dvicl/internal/obs"
)

// Request/response bodies. A graph arrives either as an explicit edge
// list ({"n": 4, "edges": [[0,1],[1,2]]}) or as a graph6 string
// ({"graph6": "Cr"}); graph6 wins when both are present.
type graphReq struct {
	N      int      `json:"n"`
	Edges  [][2]int `json:"edges"`
	Graph6 string   `json:"graph6"`
}

type addResp struct {
	ID        int  `json:"id"`
	Duplicate bool `json:"duplicate"`
}

type lookupResp struct {
	IDs []int `json:"ids"`
}

type batchOp struct {
	Op string `json:"op"` // "add" or "lookup"
	graphReq
}

type batchReq struct {
	Ops []batchOp `json:"ops"`
}

type batchResult struct {
	ID        *int   `json:"id,omitempty"`
	Duplicate *bool  `json:"duplicate,omitempty"`
	IDs       []int  `json:"ids,omitempty"`
	Error     string `json:"error,omitempty"`
}

type batchResp struct {
	Results []batchResult `json:"results"`
}

type errResp struct {
	Error string `json:"error"`
}

type statsResp struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Index         dvicl.IndexStats `json:"index"`
	Counters      map[string]int64 `json:"counters"`
}

// Request-size guardrails: bodies and batch fan-out are bounded so one
// request cannot exhaust the process.
const (
	maxBodyBytes = 32 << 20
	maxBatchOps  = 1024
)

// server holds the daemon's state: the index, the recorder, and the
// admission control for the graph-processing endpoints.
type server struct {
	ix       *dvicl.GraphIndex
	rec      *dvicl.MetricsRecorder // alias of *obs.Recorder
	sem      chan struct{}          // admission tokens for expensive endpoints
	maxVerts int
	start    time.Time
}

func newServer(ix *dvicl.GraphIndex, rec *dvicl.MetricsRecorder, maxInflight, maxVerts int) *server {
	return &server{
		ix:       ix,
		rec:      rec,
		sem:      make(chan struct{}, maxInflight),
		maxVerts: maxVerts,
		start:    time.Now(),
	}
}

// handler assembles the full route table. timeout bounds each request end
// to end (http.TimeoutHandler replies 503 when exceeded).
func (s *server) handler(timeout time.Duration) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /add", s.limited(s.handleAdd))
	mux.HandleFunc("POST /lookup", s.limited(s.handleLookup))
	mux.HandleFunc("POST /batch", s.limited(s.handleBatch))
	mux.HandleFunc("POST /flush", s.limited(s.handleFlush))
	mux.HandleFunc("GET /stats", s.instrumented(s.handleStats))
	mux.HandleFunc("GET /healthz", s.instrumented(s.handleHealthz))
	body := `{"error":"request timed out"}` + "\n"
	return http.TimeoutHandler(mux, timeout, body)
}

// instrumented counts the request, times it, and tracks error statuses.
func (s *server) instrumented(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.rec.Inc(obs.HTTPRequests)
		span := s.rec.StartPhase(obs.PhaseHTTP)
		defer span.End()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		if sw.status >= 400 {
			s.rec.Inc(obs.HTTPErrors)
		}
	}
}

// limited is instrumented plus admission control: when all tokens are
// taken the request is rejected immediately with 503 + Retry-After —
// backpressure, not an unbounded queue.
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	return s.instrumented(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rec.Inc(obs.HTTPThrottled)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errResp{Error: "server at capacity"})
			return
		}
		h(w, r)
	})
}

// statusWriter records the status code for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeGraph validates and materializes the graph of a request body.
func (s *server) decodeGraph(req *graphReq) (*dvicl.Graph, error) {
	if req.Graph6 != "" {
		g, err := dvicl.FromGraph6(req.Graph6)
		if err != nil {
			return nil, fmt.Errorf("graph6: %w", err)
		}
		if g.N() > s.maxVerts {
			return nil, fmt.Errorf("graph has %d vertices, limit %d", g.N(), s.maxVerts)
		}
		return g, nil
	}
	if req.N < 0 || req.N > s.maxVerts {
		return nil, fmt.Errorf("n=%d out of range [0,%d]", req.N, s.maxVerts)
	}
	for _, e := range req.Edges {
		if e[0] < 0 || e[0] >= req.N || e[1] < 0 || e[1] >= req.N {
			return nil, fmt.Errorf("edge [%d,%d] out of range [0,%d)", e[0], e[1], req.N)
		}
	}
	return dvicl.FromEdges(req.N, req.Edges), nil
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req graphReq
	if !decodeBody(w, r, &req) {
		return
	}
	g, err := s.decodeGraph(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: err.Error()})
		return
	}
	id, dup, err := s.ix.Add(g)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, dvicl.ErrIndexClosed) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errResp{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, addResp{ID: id, Duplicate: dup})
}

func (s *server) handleLookup(w http.ResponseWriter, r *http.Request) {
	var req graphReq
	if !decodeBody(w, r, &req) {
		return
	}
	g, err := s.decodeGraph(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{Error: err.Error()})
		return
	}
	ids := s.ix.Lookup(g)
	if ids == nil {
		ids = []int{}
	}
	writeJSON(w, http.StatusOK, lookupResp{IDs: ids})
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchReq
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Ops) > maxBatchOps {
		writeJSON(w, http.StatusBadRequest,
			errResp{Error: fmt.Sprintf("batch of %d ops exceeds limit %d", len(req.Ops), maxBatchOps)})
		return
	}
	resp := batchResp{Results: make([]batchResult, len(req.Ops))}
	for i := range req.Ops {
		op := &req.Ops[i]
		res := &resp.Results[i]
		g, err := s.decodeGraph(&op.graphReq)
		if err != nil {
			res.Error = err.Error()
			continue
		}
		switch op.Op {
		case "add":
			id, dup, err := s.ix.Add(g)
			if err != nil {
				res.Error = err.Error()
				continue
			}
			res.ID, res.Duplicate = &id, &dup
		case "lookup":
			ids := s.ix.Lookup(g)
			if ids == nil {
				ids = []int{}
			}
			res.IDs = ids
		default:
			res.Error = fmt.Sprintf("unknown op %q (want add or lookup)", op.Op)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.ix.Flush(); err != nil {
		writeJSON(w, http.StatusInternalServerError, errResp{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.ix.Stats())
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResp{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Index:         s.ix.Stats(),
		Counters:      s.rec.Snapshot().Counters,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
