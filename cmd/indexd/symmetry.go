package main

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"dvicl"
)

// Symmetry-query endpoints: answer orbit / automorphism-group / quotient
// / SSM questions about a stored graph by id, served from the index's
// persistent AutoTree store (warm path: zero DviCL builds). Answers are
// class-level, phrased over the canonical graph of the id's isomorphism
// class — every isomorphic graph in the index answers identically.

type sparsePermResp struct {
	N     int      `json:"n"`
	Moved [][2]int `json:"moved"`
}

type orbitsResp struct {
	ID     int     `json:"id"`
	N      int     `json:"n"`
	Orbits [][]int `json:"orbits"`
}

type autgroupResp struct {
	ID int `json:"id"`
	N  int `json:"n"`
	// Order is |Aut(G)| as a decimal string — it routinely exceeds uint64
	// (e.g. star graphs have (n−1)! automorphisms).
	Order      string           `json:"order"`
	Generators []sparsePermResp `json:"generators"`
}

type quotientResp struct {
	ID        int      `json:"id"`
	N         int      `json:"n"`
	QuotientN int      `json:"quotient_n"`
	Edges     [][2]int `json:"edges"`
	OrbitOf   []int    `json:"orbit_of"`
}

type ssmReq struct {
	ID      int   `json:"id"`
	Pattern []int `json:"pattern"`
	Limit   int   `json:"limit"`
}

type ssmResp struct {
	ID      int     `json:"id"`
	Pattern []int   `json:"pattern"`
	Count   string  `json:"count"`
	Images  [][]int `json:"images,omitempty"`
}

// queryID parses the required ?id= parameter.
func queryID(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("id")
	if raw == "" {
		return 0, errors.New("missing id parameter")
	}
	id, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad id %q", raw)
	}
	return id, nil
}

// symmetryError maps a symmetry-query failure onto an HTTP response,
// reporting whether there was one: unknown ids are 404, malformed
// patterns 400, and build failures (cancellation, budget, closed index)
// go through the shared buildError mapping.
func (s *server) symmetryError(w http.ResponseWriter, r *http.Request, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, dvicl.ErrUnknownID):
		s.writeErr(w, r, http.StatusNotFound, err.Error())
		return true
	case errors.Is(err, dvicl.ErrInvalidPattern):
		s.writeErr(w, r, http.StatusBadRequest, err.Error())
		return true
	}
	return s.buildError(w, r, err)
}

func (s *server) handleOrbits(w http.ResponseWriter, r *http.Request) {
	id, err := queryID(r)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	orbits, err := s.ix.OrbitsCtx(r.Context(), id)
	if s.symmetryError(w, r, err) {
		return
	}
	n := 0
	for _, o := range orbits {
		n += len(o)
	}
	writeJSON(w, http.StatusOK, orbitsResp{ID: id, N: n, Orbits: orbits})
}

func (s *server) handleAutGroup(w http.ResponseWriter, r *http.Request) {
	id, err := queryID(r)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	order, gens, err := s.ix.AutGroupCtx(r.Context(), id)
	if s.symmetryError(w, r, err) {
		return
	}
	resp := autgroupResp{ID: id, Order: order.String(), Generators: make([]sparsePermResp, len(gens))}
	for i, g := range gens {
		resp.N = g.N
		moved := g.Moved
		if moved == nil {
			moved = [][2]int{}
		}
		resp.Generators[i] = sparsePermResp{N: g.N, Moved: moved}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleQuotient(w http.ResponseWriter, r *http.Request) {
	id, err := queryID(r)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err.Error())
		return
	}
	q, err := s.ix.QuotientCtx(r.Context(), id)
	if s.symmetryError(w, r, err) {
		return
	}
	edges := q.Graph.Edges()
	if edges == nil {
		edges = [][2]int{}
	}
	writeJSON(w, http.StatusOK, quotientResp{
		ID:        id,
		N:         len(q.OrbitOf),
		QuotientN: q.Graph.N(),
		Edges:     edges,
		OrbitOf:   q.OrbitOf,
	})
}

func (s *server) handleSSM(w http.ResponseWriter, r *http.Request) {
	var req ssmReq
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Limit < 0 || req.Limit > maxSSMImages {
		s.writeErr(w, r, http.StatusBadRequest,
			fmt.Sprintf("limit %d out of range [0,%d]", req.Limit, maxSSMImages))
		return
	}
	count, images, err := s.ix.SSMCtx(r.Context(), req.ID, req.Pattern, req.Limit)
	if s.symmetryError(w, r, err) {
		return
	}
	if req.Pattern == nil {
		req.Pattern = []int{}
	}
	writeJSON(w, http.StatusOK, ssmResp{
		ID:      req.ID,
		Pattern: req.Pattern,
		Count:   count.String(),
		Images:  images,
	})
}

// handleReadyz is the readiness probe: 200 when the index can serve and
// persist (open, data directory writable), 503 otherwise. Distinct from
// /healthz, which only answers "the process is up" — a daemon whose disk
// filled is alive but not ready.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := s.ix.Ready(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errResp{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}
