// Command dvicl canonically labels a graph with the DviCL algorithm and
// reports the AutoTree structure, the automorphism group, and a canonical
// certificate.
//
// Usage:
//
//	dvicl [-algo dvicl|nauty|bliss|traces] [-orbits] [-cert] [-stats]
//	      [-workers n] [-metrics-json out.json] [-debug-addr :6060] [file]
//
// The input is a whitespace-separated edge list ("u v" per line, '#'
// comments); stdin is read when no file is given. -algo selects either
// DviCL (with bliss-policy leaves) or one of the emulated
// individualization–refinement baselines.
//
// -metrics-json dumps the observability snapshot (search-effort counters
// and per-phase timings) to a file after the run; -debug-addr serves
// net/http/pprof, expvar (/debug/vars) and the live snapshot
// (/debug/metrics) for the duration of the run.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dvicl"
	"dvicl/internal/canon"
	"dvicl/internal/group"
)

func main() {
	algo := flag.String("algo", "dvicl", "algorithm: dvicl, nauty, bliss or traces")
	showOrbits := flag.Bool("orbits", false, "print the orbit partition")
	showCert := flag.Bool("cert", false, "print the canonical certificate (hex)")
	showStats := flag.Bool("stats", true, "print AutoTree / search statistics")
	dump := flag.Bool("dump", false, "print the AutoTree structure (dvicl only)")
	workers := flag.Int("workers", 0, "parallel subtree builders (dvicl only; 0 = sequential)")
	metricsJSON := flag.String("metrics-json", "", "write the observability snapshot to this file")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/metrics on this address")
	flag.Parse()

	rec := newRecorder(*metricsJSON, *debugAddr)
	if *debugAddr != "" {
		srv, err := dvicl.ServeDebug(*debugAddr, rec)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug server: http://%s/debug/pprof/\n", srv.Addr)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	g, err := dvicl.ReadEdgeList(in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d dmax=%d davg=%.2f\n", g.N(), g.M(), g.MaxDegree(), g.AvgDegree())

	switch *algo {
	case "dvicl":
		start := time.Now()
		tree := dvicl.BuildAutoTree(g, nil, dvicl.Options{Workers: *workers, Obs: rec})
		elapsed := time.Since(start)
		fmt.Printf("dvicl: %v\n", elapsed.Round(time.Microsecond))
		fmt.Printf("|Aut| = %v\n", tree.AutOrder())
		if *showStats {
			s := tree.Stats()
			fmt.Printf("autotree: nodes=%d singleton=%d non-singleton=%d avg-leaf=%.2f depth=%d\n",
				s.Nodes, s.SingletonLeaves, s.NonSingletonLeaves, s.AvgLeafSize, s.Depth)
			fmt.Printf("leaf effort: search-nodes=%d leaves=%d truncated=%d\n",
				s.LeafSearchNodes, s.LeafSearchLeaves, s.TruncatedLeaves)
			cells, singles := tree.OrbitStats()
			fmt.Printf("orbit coloring: cells=%d singleton=%d\n", cells, singles)
		}
		if *showOrbits {
			printOrbits(tree.Orbits())
		}
		if *showCert {
			fmt.Printf("cert prefix: %s\n", hex.EncodeToString(hashTrunc(tree.CanonicalCert())))
		}
		if *dump {
			if err := tree.Dump(os.Stdout, 8); err != nil {
				fatal(err)
			}
		}
	case "nauty", "bliss", "traces":
		pol := map[string]canon.Policy{
			"nauty": canon.PolicyNauty, "bliss": canon.PolicyBliss, "traces": canon.PolicyTraces,
		}[*algo]
		start := time.Now()
		res := dvicl.Baseline(g, nil, dvicl.BaselineOptions{Policy: pol, Obs: rec})
		elapsed := time.Since(start)
		fmt.Printf("%s: %v (nodes=%d leaves=%d)\n", *algo, elapsed.Round(time.Microsecond), res.Nodes, res.Leaves)
		if *showStats {
			fmt.Printf("prunings: first-path=%d best-path=%d orbit=%d backjumps=%d\n",
				res.PruneFirstPath, res.PruneBestPath, res.PruneOrbit, res.Backjumps)
		}
		fmt.Printf("|Aut| = %v\n", group.New(g.N(), res.Generators).Order())
		if *showOrbits {
			printOrbits(group.Orbits(g.N(), res.Generators))
		}
		if *showCert {
			fmt.Printf("cert prefix: %s\n", hex.EncodeToString(hashTrunc(res.Cert)))
		}
	default:
		fatal(fmt.Errorf("unknown -algo %q", *algo))
	}

	writeMetrics(*metricsJSON, rec)
}

// newRecorder returns an enabled recorder when any observability output is
// requested, and nil (the no-op recorder) otherwise.
func newRecorder(metricsJSON, debugAddr string) *dvicl.MetricsRecorder {
	if metricsJSON == "" && debugAddr == "" {
		return nil
	}
	return dvicl.NewMetricsRecorder()
}

func writeMetrics(path string, rec *dvicl.MetricsRecorder) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := rec.Snapshot().WriteJSON(f); err != nil {
		fatal(err)
	}
	fmt.Printf("metrics written to %s\n", path)
}

func printOrbits(orbits [][]int) {
	nontrivial := 0
	for _, o := range orbits {
		if len(o) > 1 {
			nontrivial++
			if nontrivial <= 50 {
				fmt.Printf("orbit: %v\n", o)
			}
		}
	}
	if nontrivial > 50 {
		fmt.Printf("... and %d more non-singleton orbits\n", nontrivial-50)
	}
	if nontrivial == 0 {
		fmt.Println("graph is rigid (all orbits singleton)")
	}
}

func hashTrunc(cert []byte) []byte {
	if len(cert) > 16 {
		return cert[:16]
	}
	return cert
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvicl:", err)
	os.Exit(1)
}
