package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// queryIndex posts the SSM query to a running indexd daemon, which
// answers from its persistent AutoTree store — no local build at all.
func queryIndex(baseURL string, id int, set []int, enumerate int) error {
	body, err := json.Marshal(map[string]any{
		"id":      id,
		"pattern": set,
		"limit":   enumerate,
	})
	if err != nil {
		return err
	}
	url := strings.TrimRight(baseURL, "/") + "/ssm"
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s (status %d)", url, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	var out struct {
		ID     int     `json:"id"`
		Count  string  `json:"count"`
		Images [][]int `json:"images"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return fmt.Errorf("decode %s response: %w", url, err)
	}
	fmt.Printf("graph %d (canonical space): symmetric subgraphs of %v: %s (served in %v)\n",
		out.ID, set, out.Count, time.Since(start).Round(time.Microsecond))
	for i, img := range out.Images {
		fmt.Printf("  image %d: %v\n", i, img)
	}
	return nil
}
