// Command ssmquery answers symmetric-subgraph-matching queries (the
// paper's SSM, Section 6.4) against a graph: given a vertex set S, it
// reports how many subgraphs of G are symmetric to S and enumerates a
// few.
//
// Usage:
//
//	ssmquery -graph graph.txt -set 3,4,5 [-enumerate 10]
//	ssmquery -graph graph.txt -triangles [-limit 100000]
//	ssmquery -graph graph.txt -set 3,4,5 -metrics-json out.json -debug-addr :6060
//	ssmquery -index http://localhost:7171 -id 0 -set 0,1 [-enumerate 10]
//
// With -triangles it instead clusters all triangles of the graph into
// symmetry classes (the paper's Table 7 workload).
//
// With -index it queries a running indexd daemon's /ssm endpoint instead
// of building anything locally: -id names a stored graph, and the daemon
// answers from its persistent AutoTree store (warm path: zero rebuilds).
// The vertex set is then in canonical-graph space — the daemon's answers
// are class-level.
//
// -metrics-json dumps the build and query counters (refinement, leaf
// search effort, SSM candidates/prunings, phase timings) to a file;
// -debug-addr serves pprof/expvar live during the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dvicl"
)

func main() {
	graphPath := flag.String("graph", "", "edge-list file (required unless -index)")
	indexURL := flag.String("index", "", "query a running indexd at this base URL instead of building locally")
	graphID := flag.Int("id", 0, "stored graph id to query (with -index)")
	setArg := flag.String("set", "", "comma-separated vertex set to query")
	enumerate := flag.Int("enumerate", 10, "how many symmetric images to print")
	triangles := flag.Bool("triangles", false, "cluster all triangles by symmetry instead")
	limit := flag.Int("limit", 100000, "max triangles to cluster")
	metricsJSON := flag.String("metrics-json", "", "write the observability snapshot to this file")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/metrics on this address")
	flag.Parse()

	if *indexURL != "" {
		if *setArg == "" {
			fatal(fmt.Errorf("-index mode requires -set"))
		}
		set, err := parseSet(*setArg, -1)
		if err != nil {
			fatal(err)
		}
		if err := queryIndex(*indexURL, *graphID, set, *enumerate); err != nil {
			fatal(err)
		}
		return
	}
	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required (or -index)"))
	}
	var rec *dvicl.MetricsRecorder
	if *metricsJSON != "" || *debugAddr != "" {
		rec = dvicl.NewMetricsRecorder()
	}
	if *debugAddr != "" {
		srv, err := dvicl.ServeDebug(*debugAddr, rec)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug server: http://%s/debug/pprof/\n", srv.Addr)
	}
	defer writeMetrics(*metricsJSON, rec)
	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	g, err := dvicl.ReadEdgeList(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	start := time.Now()
	tree := dvicl.BuildAutoTree(g, nil, dvicl.Options{Obs: rec})
	fmt.Printf("autotree built in %v (|Aut| = %v)\n",
		time.Since(start).Round(time.Millisecond), tree.AutOrder())
	ix := dvicl.NewSSMIndex(tree)
	ix.SetRecorder(rec)

	if *triangles {
		clusterTriangles(g, ix, *limit)
		return
	}
	if *setArg == "" {
		fatal(fmt.Errorf("provide -set or -triangles"))
	}
	set, err := parseSet(*setArg, g.N())
	if err != nil {
		fatal(err)
	}
	start = time.Now()
	count := ix.CountImages(set)
	fmt.Printf("symmetric subgraphs of %v: %v (counted in %v)\n",
		set, count, time.Since(start).Round(time.Microsecond))
	if *enumerate > 0 {
		for i, img := range ix.Enumerate(set, *enumerate) {
			fmt.Printf("  image %d: %v\n", i, img)
		}
	}
}

// parseSet parses a comma-separated vertex list; n < 0 skips the range
// check (the -index mode leaves validation to the daemon).
func parseSet(arg string, n int) ([]int, error) {
	var set []int
	for _, part := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n >= 0 && (v < 0 || v >= n) {
			return nil, fmt.Errorf("vertex %d out of range", v)
		}
		set = append(set, v)
	}
	return set, nil
}

func clusterTriangles(g *dvicl.Graph, ix *dvicl.SSMIndex, limit int) {
	start := time.Now()
	counts := map[string]int{}
	total := 0
	dvicl.Triangles(g, func(a, b, c int) {
		if limit > 0 && total >= limit {
			return
		}
		total++
		counts[ix.PatternKey([]int{a, b, c})]++
	})
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	fmt.Printf("triangles: %d, symmetry clusters: %d, largest cluster: %d (in %v)\n",
		total, len(counts), max, time.Since(start).Round(time.Millisecond))
}

func writeMetrics(path string, rec *dvicl.MetricsRecorder) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := rec.Snapshot().WriteJSON(f); err != nil {
		fatal(err)
	}
	fmt.Printf("metrics written to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssmquery:", err)
	os.Exit(1)
}
