// Command ssmquery answers symmetric-subgraph-matching queries (the
// paper's SSM, Section 6.4) against a graph: given a vertex set S, it
// reports how many subgraphs of G are symmetric to S and enumerates a
// few.
//
// Usage:
//
//	ssmquery -graph graph.txt -set 3,4,5 [-enumerate 10]
//	ssmquery -graph graph.txt -triangles [-limit 100000]
//
// With -triangles it instead clusters all triangles of the graph into
// symmetry classes (the paper's Table 7 workload).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dvicl"
)

func main() {
	graphPath := flag.String("graph", "", "edge-list file (required)")
	setArg := flag.String("set", "", "comma-separated vertex set to query")
	enumerate := flag.Int("enumerate", 10, "how many symmetric images to print")
	triangles := flag.Bool("triangles", false, "cluster all triangles by symmetry instead")
	limit := flag.Int("limit", 100000, "max triangles to cluster")
	flag.Parse()

	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	g, err := dvicl.ReadEdgeList(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	start := time.Now()
	tree := dvicl.BuildAutoTree(g, nil, dvicl.Options{})
	fmt.Printf("autotree built in %v (|Aut| = %v)\n",
		time.Since(start).Round(time.Millisecond), tree.AutOrder())
	ix := dvicl.NewSSMIndex(tree)

	if *triangles {
		clusterTriangles(g, ix, *limit)
		return
	}
	if *setArg == "" {
		fatal(fmt.Errorf("provide -set or -triangles"))
	}
	var set []int
	for _, part := range strings.Split(*setArg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(err)
		}
		if v < 0 || v >= g.N() {
			fatal(fmt.Errorf("vertex %d out of range", v))
		}
		set = append(set, v)
	}
	start = time.Now()
	count := ix.CountImages(set)
	fmt.Printf("symmetric subgraphs of %v: %v (counted in %v)\n",
		set, count, time.Since(start).Round(time.Microsecond))
	if *enumerate > 0 {
		for i, img := range ix.Enumerate(set, *enumerate) {
			fmt.Printf("  image %d: %v\n", i, img)
		}
	}
}

func clusterTriangles(g *dvicl.Graph, ix *dvicl.SSMIndex, limit int) {
	start := time.Now()
	counts := map[string]int{}
	total := 0
	dvicl.Triangles(g, func(a, b, c int) {
		if limit > 0 && total >= limit {
			return
		}
		total++
		counts[ix.PatternKey([]int{a, b, c})]++
	})
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	fmt.Printf("triangles: %d, symmetry clusters: %d, largest cluster: %d (in %v)\n",
		total, len(counts), max, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssmquery:", err)
	os.Exit(1)
}
