package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "perfbench", "testdata", name)
}

func runDiff(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestSelfDiffExitsZero(t *testing.T) {
	code, stdout, _ := runDiff(t, fixture("base.json"), fixture("base.json"))
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "0 counter regressions") {
		t.Fatalf("summary missing:\n%s", stdout)
	}
}

// TestSlowedFixtureExitsNonzero is the acceptance criterion: a
// deliberately slowed run must be flagged with a nonzero exit.
func TestSlowedFixtureExitsNonzero(t *testing.T) {
	code, stdout, stderr := runDiff(t, fixture("base.json"), fixture("slowed.json"))
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "time/alloc regression") {
		t.Fatalf("stderr: %s", stderr)
	}
}

// TestWarnTimeSoftensWallButNotCounters: -warn-time turns a wall
// regression into exit 0, but a counter regression still fails — the
// CI soft-gate contract.
func TestWarnTimeSoftensWallButNotCounters(t *testing.T) {
	code, _, stderr := runDiff(t, "-warn-time", fixture("base.json"), fixture("slowed.json"))
	if code != 0 {
		t.Fatalf("warn-time wall regression: exit %d (%s)", code, stderr)
	}
	if !strings.Contains(stderr, "WARN") {
		t.Fatalf("no warning printed: %s", stderr)
	}
	code, _, stderr = runDiff(t, "-warn-time", fixture("base.json"), fixture("counter_regress.json"))
	if code != 1 {
		t.Fatalf("warn-time counter regression: exit %d (%s)", code, stderr)
	}
}

func TestNoisyFixtureExitsZero(t *testing.T) {
	code, stdout, _ := runDiff(t, fixture("base.json"), fixture("noisy.json"))
	if code != 0 {
		t.Fatalf("noisy comparison hard-failed: exit %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "noise") {
		t.Fatalf("noise verdict not reported:\n%s", stdout)
	}
}

func TestModeMismatchExitsTwo(t *testing.T) {
	code, _, stderr := runDiff(t, fixture("base.json"), fixture("full_mode.json"))
	if code != 2 {
		t.Fatalf("exit %d, want 2 (%s)", code, stderr)
	}
}

func TestBadFileExitsTwo(t *testing.T) {
	if code, _, _ := runDiff(t, fixture("base.json"), fixture("bad_schema.json")); code != 2 {
		t.Fatalf("bad schema: exit %d, want 2", code)
	}
	if code, _, _ := runDiff(t, fixture("base.json"), fixture("does_not_exist.json")); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
}

func TestUsageExitsTwo(t *testing.T) {
	if code, _, _ := runDiff(t, fixture("base.json")); code != 2 {
		t.Fatal("one-arg invocation accepted")
	}
}

// TestSpeedupGateFailsSlowParScenario: a new file whose par scenario
// records a 1.11x speedup at 8 workers must fail the speedup gate, and
// -no-speedup-gate must bypass it.
func TestSpeedupGateFailsSlowParScenario(t *testing.T) {
	code, _, stderr := runDiff(t, fixture("base.json"), fixture("par_slow.json"))
	if code != 1 {
		t.Fatalf("exit %d, want 1 (%s)", code, stderr)
	}
	if !strings.Contains(stderr, "speedup 1.11x at 8 workers") {
		t.Fatalf("speedup failure not reported: %s", stderr)
	}
	code, _, stderr = runDiff(t, "-no-speedup-gate", fixture("base.json"), fixture("par_slow.json"))
	if code != 0 {
		t.Fatalf("-no-speedup-gate: exit %d (%s)", code, stderr)
	}
}

// TestTighterToleranceFlags: with -time-tol 0.5 the slowed fixture's
// 30% shift sits inside the band and passes.
func TestTighterToleranceFlags(t *testing.T) {
	code, _, _ := runDiff(t, "-time-tol", "0.5", fixture("base.json"), fixture("slowed.json"))
	if code != 0 {
		t.Fatalf("exit %d with wide tolerance", code)
	}
}
