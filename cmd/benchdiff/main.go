// Command benchdiff compares two perfbench BENCH_*.json artifacts and
// exits nonzero when the new one regresses — the repo's continuous
// benchmarking gate.
//
// Usage:
//
//	benchdiff [flags] OLD.json NEW.json
//
//	-time-tol 0.15     relative tolerance on median wall time
//	-alloc-tol 0.10    relative tolerance on allocation count / bytes
//	-counter-tol 0     relative tolerance on engine counters
//	-min-reps 3        fewer reps than this on either side → time
//	                   verdicts degrade to "noise" (never gate)
//	-warn-time         wall/alloc regressions warn instead of failing;
//	                   counter regressions still fail (they are
//	                   deterministic, so any increase is a real change
//	                   in search effort, not noise)
//	-no-speedup-gate   skip the parallel-build speedup gate on the new
//	                   file's par-* scenarios
//
// Besides the old-vs-new comparison, benchdiff gates the NEW file's
// parallel-build speedup (the par-* scenarios' par_speedup field, see
// perfbench.SpeedupGate): below 1.3x with 4+ workers fails; below 1.3x
// on smaller machines or below 2.0x with 8+ workers warns; single-core
// runs are skipped, since there is no parallelism to measure.
//
// Exit status: 0 — no regressions (or only warned ones); 1 — gating
// regressions found; 2 — usage, I/O or schema error (including an
// attempt to diff a quick-mode file against a full-mode file).
//
// Wall time is compared median-to-median with a min-of-k confirmation
// (see docs/PERFORMANCE.md for the noise model); counters are compared
// exactly by default because the suite's sequential runs are
// deterministic.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dvicl/internal/perfbench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and args, so tests can assert
// exit codes on fixture files.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := perfbench.DefaultThresholds()
	timeTol := fs.Float64("time-tol", def.TimeTol, "relative tolerance on median wall time")
	allocTol := fs.Float64("alloc-tol", def.AllocTol, "relative tolerance on allocation count/bytes")
	counterTol := fs.Float64("counter-tol", def.CounterTol, "relative tolerance on engine counters")
	minReps := fs.Int("min-reps", def.MinReps, "minimum reps for wall/alloc verdicts (below: noise)")
	warnTime := fs.Bool("warn-time", false, "wall/alloc regressions warn only; counter regressions still fail")
	noSpeedup := fs.Bool("no-speedup-gate", false, "skip the parallel-build speedup gate on the new file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		fs.PrintDefaults()
		return 2
	}

	oldF, err := perfbench.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newF, err := perfbench.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	th := perfbench.Thresholds{
		TimeTol:    *timeTol,
		AllocTol:   *allocTol,
		CounterTol: *counterTol,
		MinReps:    *minReps,
	}
	res, err := perfbench.Diff(oldF, newF, th)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, res.Format())

	speedupFailed := false
	if !*noSpeedup {
		for _, is := range perfbench.SpeedupGate(newF) {
			level := "WARN"
			if is.Fail {
				level, speedupFailed = "FAIL", true
			}
			fmt.Fprintf(stderr, "benchdiff: %s: %s speedup %.2fx at %d workers — %s\n",
				level, is.Name, is.Speedup, is.Workers, is.Why)
		}
	}
	if speedupFailed {
		return 1
	}
	if res.CounterRegressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: FAIL: %d counter regression(s) — deterministic search-effort increase\n",
			res.CounterRegressions)
		return 1
	}
	if res.TimeRegressions > 0 {
		if *warnTime {
			fmt.Fprintf(stderr, "benchdiff: WARN: %d time/alloc regression(s) (soft gate, -warn-time)\n",
				res.TimeRegressions)
			return 0
		}
		fmt.Fprintf(stderr, "benchdiff: FAIL: %d time/alloc regression(s)\n", res.TimeRegressions)
		return 1
	}
	return 0
}
