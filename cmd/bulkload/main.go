// Command bulkload streams a multi-graph file through the parallel
// canonicalization pipeline into a (sharded, durable) certificate index —
// the batch half of the paper's database-indexing application: take
// millions of graphs, collapse them into isomorphism classes, and leave
// behind an index that indexd can serve.
//
// Usage:
//
//	bulkload [-in graphs.g6] [-format graph6|edgelist|auto] [-data dir]
//	         [-workers n] [-shards n] [-sync] [-cache n] [-compact-every n]
//	         [-report out.json] [-metrics-json out.json] [-progress n]
//
// The input (default stdin) is read record by record — one graph6 string
// per line, or blank-line-separated edge lists — so arbitrarily large
// files stream through without being buffered. Records are canonicalized
// by -workers parallel DviCL builds and applied to the index in input
// order, which makes the resulting certificate sequence (and therefore
// the id assignment) identical for every worker count.
//
// With -data the index is durable and sharded on disk exactly as indexd
// opens it: each acknowledged record is WAL-logged before it is counted,
// so a mid-ingest kill loses nothing that was reported ingested. Without
// -data the run is a pure dedup report.
//
// The ingest report — graphs read, iso-classes found, duplicates
// collapsed, per-shard balance, throughput — is written as JSON to
// -report (default stdout).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dvicl"
	"dvicl/internal/graph"
	"dvicl/internal/obs"
	"dvicl/internal/pipeline"
)

// report is the bulkload output: the pipeline report plus what the index
// did with the certificates.
type report struct {
	pipeline.Report
	GraphsAdded int   `json:"graphs_added"`
	IsoClasses  int   `json:"iso_classes"`
	Duplicates  int   `json:"duplicates"`
	Shards      int   `json:"shards"`
	ShardGraphs []int `json:"shard_graphs,omitempty"`
	Persistent  bool  `json:"persistent"`
}

func main() {
	in := flag.String("in", "", "input file (empty = stdin)")
	format := flag.String("format", "auto", "input format: graph6, edgelist, or auto (by extension, default graph6)")
	data := flag.String("data", "", "index directory (empty = in-memory dedup report only)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel canonicalization workers")
	shards := flag.Int("shards", 16, "index shards (ignored when -data holds an existing index)")
	sync := flag.Bool("sync", false, "fsync the WAL on every add (durable to power loss)")
	cache := flag.Int("cache", 0, "certificate LRU cache entries (0 = default, negative = off)")
	compactEvery := flag.Int("compact-every", 0, "snapshot a shard after this many WAL appends (0 = default)")
	reportPath := flag.String("report", "", "write the ingest report JSON here (empty = stdout)")
	metricsJSON := flag.String("metrics-json", "", "write the observability snapshot to this file")
	progress := flag.Int64("progress", 0, "log progress to stderr every n records (0 = off)")
	slowBuild := flag.Duration("slow-build", 0, "log a structured line for any single canonicalization at least this slow (0 = off)")
	flag.Parse()
	slogger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	src, closeIn, err := openSource(*in, *format)
	if err != nil {
		fatal(err)
	}
	defer closeIn()

	rec := dvicl.NewMetricsRecorder()
	opt := dvicl.Options{Obs: rec}
	var ix *dvicl.GraphIndex
	if *data != "" {
		ix, err = dvicl.OpenGraphIndex(*data, dvicl.IndexOptions{
			DviCL:        opt,
			CacheSize:    *cache,
			SyncWrites:   *sync,
			CompactEvery: *compactEvery,
			Shards:       *shards,
		})
		if err != nil {
			fatal(err)
		}
		st := ix.Stats()
		log.Printf("bulkload: opened %s: %d graphs, %d classes, %d shards",
			*data, st.Graphs, st.Classes, st.Shards)
	} else {
		ix = dvicl.NewShardedGraphIndex(opt, *shards)
	}

	// SIGINT/SIGTERM cancel the run: in-flight builds abort at their next
	// cancellation checkpoint, the partial report is still written, and
	// the index is closed cleanly — everything acknowledged is on disk.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var applied int64
	rep, runErr := pipeline.Run(pipeline.Config{
		Ctx:     ctx,
		Workers: *workers,
		Decode:  decoder(*format, *in),
		Canon: func(ctx context.Context, g *graph.Graph, ws *dvicl.Workspace, wrec *obs.Recorder) (string, error) {
			o := opt
			o.Obs = wrec
			o.Workspace = ws
			start := time.Now()
			cert, err := dvicl.CanonicalCertCtx(ctx, g, nil, o)
			if d := time.Since(start); *slowBuild > 0 && d >= *slowBuild {
				slogger.Warn("slow build",
					slog.Int("n", g.N()), slog.Int("m", g.M()),
					slog.Float64("dur_ms", float64(d)/float64(time.Millisecond)))
			}
			return string(cert), err
		},
		Apply: func(seq int64, cert string) error {
			if _, _, err := ix.AddCert(cert); err != nil {
				return err
			}
			applied++
			if *progress > 0 && applied%*progress == 0 {
				log.Printf("bulkload: %d graphs ingested", applied)
			}
			return nil
		},
		Obs: rec,
	}, src)
	if runErr != nil {
		// The report still describes everything acknowledged before the
		// failure; print it, then fail.
		log.Printf("bulkload: %v", runErr)
	}

	if err := ix.Close(); err != nil {
		fatal(err)
	}
	st := ix.Stats()
	full := report{
		Report:      *rep,
		GraphsAdded: st.Graphs,
		IsoClasses:  st.Classes,
		Duplicates:  st.Duplicates,
		Shards:      st.Shards,
		ShardGraphs: st.ShardGraphs,
		Persistent:  st.Persistent,
	}
	if err := writeReport(*reportPath, &full); err != nil {
		fatal(err)
	}
	writeMetrics(*metricsJSON, rec)
	log.Printf("bulkload: %d records → %d graphs, %d classes, %d duplicates (%.0f graphs/sec, %d workers, %d shards)",
		full.Records, full.GraphsAdded, full.IsoClasses, full.Duplicates,
		full.GraphsPerSec, full.Workers, full.Shards)
	if runErr != nil {
		os.Exit(1)
	}
}

// resolveFormat maps -format auto onto the file extension.
func resolveFormat(format, path string) string {
	if format != "auto" {
		return format
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".txt", ".el", ".edges", ".edgelist":
		return "edgelist"
	default:
		return "graph6"
	}
}

// openSource builds the pipeline source for the input file and format.
func openSource(path, format string) (pipeline.Source, func(), error) {
	var r io.Reader = os.Stdin
	closeFn := func() {}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		r = f
		closeFn = func() { f.Close() }
	}
	switch resolveFormat(format, path) {
	case "graph6":
		return pipeline.ScannerSource(graph.NewGraph6Scanner(r)), closeFn, nil
	case "edgelist":
		return pipeline.EdgeListSource(graph.NewEdgeListScanner(r)), closeFn, nil
	default:
		closeFn()
		return nil, nil, fmt.Errorf("unknown format %q (want graph6, edgelist, or auto)", format)
	}
}

// decoder returns the per-record decode function for the resolved format.
func decoder(format, path string) func(string) (*graph.Graph, error) {
	if resolveFormat(format, path) == "edgelist" {
		return func(raw string) (*graph.Graph, error) {
			return graph.ReadEdgeList(strings.NewReader(raw))
		}
	}
	return graph.FromGraph6
}

func writeReport(path string, rep *report) error {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func writeMetrics(path string, rec *dvicl.MetricsRecorder) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("bulkload: metrics: %v", err)
		return
	}
	defer f.Close()
	if err := rec.Snapshot().WriteJSON(f); err != nil {
		log.Printf("bulkload: metrics: %v", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bulkload:", err)
	os.Exit(1)
}
