// Command isotest decides whether two graphs are isomorphic, printing the
// verdict and, when isomorphic, statistics of the shared canonical form.
//
// Usage:
//
//	isotest a.txt b.txt            # edge lists
//	isotest -format graph6 a.g6 b.g6
//	isotest -metrics-json out.json -debug-addr :6060 a.txt b.txt
//
// Exit status: 0 isomorphic, 1 not isomorphic, 2 error — so the command
// composes in shell scripts (the "database indexing" application of the
// paper's introduction).
//
// -metrics-json dumps the observability counters (refinement, search
// effort, prunings, phase timings) of the decision to a file; -debug-addr
// serves pprof/expvar while the decision runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dvicl"
)

func main() {
	format := flag.String("format", "edgelist", "input format: edgelist or graph6")
	metricsJSON := flag.String("metrics-json", "", "write the observability snapshot to this file")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/metrics on this address")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: isotest [-format edgelist|graph6] a b")
		os.Exit(2)
	}
	var rec *dvicl.MetricsRecorder
	if *metricsJSON != "" || *debugAddr != "" {
		rec = dvicl.NewMetricsRecorder()
	}
	if *debugAddr != "" {
		srv, err := dvicl.ServeDebug(*debugAddr, rec)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug server: http://%s/debug/pprof/\n", srv.Addr)
	}
	g1 := load(flag.Arg(0), *format)
	g2 := load(flag.Arg(1), *format)
	fmt.Printf("a: n=%d m=%d   b: n=%d m=%d\n", g1.N(), g1.M(), g2.N(), g2.M())
	if g1.N() != g2.N() || g1.M() != g2.M() {
		fmt.Println("NOT isomorphic (size mismatch)")
		writeMetrics(*metricsJSON, rec)
		os.Exit(1)
	}
	start := time.Now()
	iso := dvicl.IsomorphicOpt(g1, g2, dvicl.Options{Obs: rec})
	elapsed := time.Since(start).Round(time.Microsecond)
	if iso {
		fmt.Printf("ISOMORPHIC (decided in %v)\n", elapsed)
		_, order := dvicl.AutomorphismGroup(g1)
		fmt.Printf("|Aut| = %v\n", order)
		writeMetrics(*metricsJSON, rec)
		os.Exit(0)
	}
	fmt.Printf("NOT isomorphic (decided in %v)\n", elapsed)
	writeMetrics(*metricsJSON, rec)
	os.Exit(1)
}

func writeMetrics(path string, rec *dvicl.MetricsRecorder) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := rec.Snapshot().WriteJSON(f); err != nil {
		fatal(err)
	}
	fmt.Printf("metrics written to %s\n", path)
}

func load(path, format string) *dvicl.Graph {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	switch format {
	case "edgelist":
		g, err := dvicl.ReadEdgeList(strings.NewReader(string(data)))
		if err != nil {
			fatal(err)
		}
		return g
	case "graph6":
		g, err := dvicl.FromGraph6(strings.TrimSpace(string(data)))
		if err != nil {
			fatal(err)
		}
		return g
	default:
		fatal(fmt.Errorf("unknown format %q", format))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "isotest:", err)
	os.Exit(2)
}
