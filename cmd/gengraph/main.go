// Command gengraph materializes any of the evaluation graphs (the nine
// benchmark families of Table 2 or the 22 real-graph stand-ins of Table
// 1) as an edge list or graph6 string, for use with external tools or the
// other commands.
//
// Usage:
//
//	gengraph -list
//	gengraph -name cfi-200 > cfi200.txt
//	gengraph -name wikivote -scale 20 -format graph6 > wikivote.g6
package main

import (
	"flag"
	"fmt"
	"os"

	"dvicl"
)

func main() {
	list := flag.Bool("list", false, "list available datasets")
	name := flag.String("name", "", "dataset name")
	scale := flag.Int("scale", 20, "scale divisor for real-graph stand-ins")
	format := flag.String("format", "edgelist", "output format: edgelist or graph6")
	flag.Parse()

	if *list {
		fmt.Println("# benchmark families (Table 2):")
		for _, d := range dvicl.BenchmarkDatasets() {
			fmt.Printf("  %-22s paper: |V|=%d |E|=%d\n", d.Name, d.Paper.N, d.Paper.M)
		}
		fmt.Println("# real-graph stand-ins (Table 1; built at 1/scale):")
		for _, d := range dvicl.RealDatasets() {
			fmt.Printf("  %-22s paper: |V|=%d |E|=%d\n", d.Name, d.Paper.N, d.Paper.M)
		}
		return
	}
	if *name == "" {
		fatal(fmt.Errorf("provide -name or -list"))
	}
	d, err := dvicl.FindDataset(*name)
	if err != nil {
		fatal(err)
	}
	g := d.Build(*scale)
	switch *format {
	case "edgelist":
		if err := dvicl.WriteEdgeList(os.Stdout, g); err != nil {
			fatal(err)
		}
	case "graph6":
		s, err := dvicl.ToGraph6(g)
		if err != nil {
			fatal(err)
		}
		fmt.Println(s)
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
