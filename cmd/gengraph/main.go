// Command gengraph materializes any of the evaluation graphs (the nine
// benchmark families of Table 2 or the 22 real-graph stand-ins of Table
// 1) as an edge list or graph6 string, for use with external tools or the
// other commands.
//
// Usage:
//
//	gengraph -list
//	gengraph -name cfi-200 > cfi200.txt
//	gengraph -name wikivote -scale 20 -format graph6 > wikivote.g6
//
// With -random it instead emits a multi-graph stream for the bulk-ingest
// pipeline (cmd/bulkload, indexd /bulk): k Erdős–Rényi graphs drawn from
// -rand-classes isomorphism classes (copies beyond the first occurrence
// of a class are randomly relabeled, so dedup is exercised by genuinely
// distinct labelings). Graph6 output is one record per line; edge-list
// output separates records with blank lines. Deterministic for a fixed
// -seed.
//
//	gengraph -random 100000 -rand-n 24 -rand-m 60 -rand-classes 5000 \
//	         -format graph6 > stream.g6
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dvicl"
	"dvicl/internal/gen"
)

func main() {
	list := flag.Bool("list", false, "list available datasets")
	name := flag.String("name", "", "dataset name")
	scale := flag.Int("scale", 20, "scale divisor for real-graph stand-ins")
	format := flag.String("format", "edgelist", "output format: edgelist or graph6")
	random := flag.Int("random", 0, "emit this many random graphs as a multi-graph stream")
	randN := flag.Int("rand-n", 24, "vertices per random graph")
	randM := flag.Int("rand-m", 60, "edges per random graph")
	randClasses := flag.Int("rand-classes", 0, "distinct iso-classes in the stream (0 = all distinct)")
	seed := flag.Int64("seed", 1, "random stream seed")
	flag.Parse()

	if *random > 0 {
		if err := emitRandomStream(*random, *randN, *randM, *randClasses, *seed, *format); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		fmt.Println("# benchmark families (Table 2):")
		for _, d := range dvicl.BenchmarkDatasets() {
			fmt.Printf("  %-22s paper: |V|=%d |E|=%d\n", d.Name, d.Paper.N, d.Paper.M)
		}
		fmt.Println("# real-graph stand-ins (Table 1; built at 1/scale):")
		for _, d := range dvicl.RealDatasets() {
			fmt.Printf("  %-22s paper: |V|=%d |E|=%d\n", d.Name, d.Paper.N, d.Paper.M)
		}
		return
	}
	if *name == "" {
		fatal(fmt.Errorf("provide -name or -list"))
	}
	d, err := dvicl.FindDataset(*name)
	if err != nil {
		fatal(err)
	}
	g := d.Build(*scale)
	switch *format {
	case "edgelist":
		if err := dvicl.WriteEdgeList(os.Stdout, g); err != nil {
			fatal(err)
		}
	case "graph6":
		s, err := dvicl.ToGraph6(g)
		if err != nil {
			fatal(err)
		}
		fmt.Println(s)
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

// emitRandomStream writes k random graphs from `classes` iso-classes
// (0 = every graph its own class) to stdout in the requested stream
// format. Repeat presentations of a class are relabeled by a fresh
// random permutation, so the stream exercises real isomorphism dedup,
// not byte-level dedup.
func emitRandomStream(k, n, m, classes int, seed int64, format string) error {
	if classes <= 0 || classes > k {
		classes = k
	}
	r := rand.New(rand.NewSource(seed))
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := 0; i < k; i++ {
		g := gen.ErdosRenyi(n, m, seed+int64(i%classes))
		if i >= classes {
			g = g.Permute(r.Perm(g.N()))
		}
		switch format {
		case "graph6":
			s, err := dvicl.ToGraph6(g)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w, s); err != nil {
				return err
			}
		case "edgelist":
			if err := dvicl.WriteEdgeList(w, g); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q", format)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
