// Command symstats reports the symmetry structure of a graph: the
// measurements of the paper's introduction applications (b)–(d) — orbit
// structure, structure entropy, symmetry ratio, and the network quotient
// — plus an optional AutoTree dump.
//
// Usage:
//
//	symstats graph.txt
//	symstats -tree -dataset wikivote -scale 50
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"dvicl"
	"dvicl/internal/core"
)

func main() {
	dataset := flag.String("dataset", "", "use a named dataset instead of a file")
	scale := flag.Int("scale", 50, "scale for dataset stand-ins")
	showTree := flag.Bool("tree", false, "dump the AutoTree")
	flag.Parse()

	var g *dvicl.Graph
	switch {
	case *dataset != "":
		d, err := dvicl.FindDataset(*dataset)
		if err != nil {
			fatal(err)
		}
		g = d.Build(*scale)
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		g, err = dvicl.ReadEdgeList(f)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("provide a file or -dataset"))
	}

	fmt.Printf("graph: n=%d m=%d dmax=%d davg=%.2f\n", g.N(), g.M(), g.MaxDegree(), g.AvgDegree())
	tree := dvicl.BuildAutoTree(g, nil, dvicl.Options{})
	var coreTree *core.Tree = tree

	fmt.Printf("|Aut| = %v\n", coreTree.AutOrder())
	cells, singles := coreTree.OrbitStats()
	fmt.Printf("orbit coloring: %d cells (%d singleton) of %d vertices\n", cells, singles, g.N())
	fmt.Printf("structure entropy: %.4f bits (max %.4f for a rigid graph)\n",
		coreTree.OrbitEntropy(), maxEntropy(g.N()))
	fmt.Printf("symmetry ratio: %.4f of vertices have automorphic counterparts\n",
		coreTree.SymmetryRatio())
	fmt.Print("orbit size histogram:")
	for _, h := range coreTree.OrbitSizeHistogram() {
		fmt.Printf(" %d×%d", h[1], h[0])
	}
	fmt.Println()

	q := coreTree.Quotient()
	fmt.Printf("quotient (network skeleton): n=%d m=%d (%.1f%% of original vertices)\n",
		q.Graph.N(), q.Graph.M(), 100*float64(q.Graph.N())/float64(g.N()))

	if *showTree {
		fmt.Println("\nAutoTree:")
		if err := coreTree.Dump(os.Stdout, 8); err != nil {
			fatal(err)
		}
	}
}

func maxEntropy(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symstats:", err)
	os.Exit(1)
}
