package dvicl

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"dvicl/internal/obs"
	"dvicl/internal/ssm"
	"dvicl/internal/treestore"
)

// Symmetry-query serving: answer orbit / automorphism-group / quotient /
// SSM questions about an *indexed* graph without rebuilding its AutoTree
// per request. The index stores certificates, and a DviCL certificate is
// fully decodable back into the canonical graph (canon.DecodeCertificate),
// so the tree store can recover — and cache — the class's AutoTree from
// the certificate alone. Answers are therefore class-level, phrased in
// canonical vertex space: every graph of one isomorphism class maps to
// the same canonical graph, and the reply describes that graph. Callers
// holding an original labeling translate through the γ returned by
// FindIsomorphism if they need original vertex ids.

// ErrUnknownID is returned by the symmetry queries when no stored graph
// has the requested id.
var ErrUnknownID = errors.New("dvicl: unknown graph id")

// ErrInvalidPattern is returned by SSMCtx when the query pattern is not a
// duplicate-free vertex set of the canonical graph. Use errors.Is; the
// returned error wraps this with the offending detail.
var ErrInvalidPattern = errors.New("dvicl: invalid SSM pattern")

// certByID resolves a public id to its shard and certificate.
func (ix *GraphIndex) certByID(id int) (string, *indexShard, error) {
	if id < 0 || len(ix.shards) == 0 {
		return "", nil, ErrUnknownID
	}
	sh := ix.shards[id%len(ix.shards)]
	local := id / len(ix.shards)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.closed {
		return "", nil, ErrIndexClosed
	}
	if local >= len(sh.certs) {
		return "", nil, ErrUnknownID
	}
	return sh.certs[local], sh, nil
}

// treeByID returns the (shared, read-only) AutoTree of the canonical
// graph of id's isomorphism class: from the shard's tree store when the
// index has one — memory hit, disk hit, or single-flight rebuild — and
// by a direct per-call rebuild otherwise.
func (ix *GraphIndex) treeByID(ctx context.Context, id int) (*AutoTree, error) {
	cert, sh, err := ix.certByID(id)
	if err != nil {
		return nil, err
	}
	if sh.ts != nil {
		return sh.ts.Get(ctx, []byte(cert))
	}
	return treestore.Rebuild(ctx, []byte(cert), ix.opt)
}

// symQuery wraps the shared per-query bookkeeping: counter, phase timer,
// trace span, and tree resolution. The returned done func ends the span
// and phase; it is non-nil exactly when err is nil.
func (ix *GraphIndex) symQuery(ctx context.Context, id int, c obs.Counter, name string) (*AutoTree, *MetricsRecorder, func(), error) {
	rec := ix.recorderFor(ctx)
	rec.Inc(c)
	span := rec.StartPhase(obs.PhaseSymmetryQuery)
	ts := obs.TraceFrom(ctx).StartSpan(obs.SpanFrom(ctx), name)
	if ts != nil {
		ts.SetAttr("graph_id", int64(id))
		ctx = obs.WithSpan(ctx, ts)
	}
	tree, err := ix.treeByID(ctx, id)
	if err != nil {
		ts.End()
		span.End()
		return nil, nil, nil, err
	}
	done := func() {
		ts.End()
		span.End()
	}
	return tree, rec, done, nil
}

// OrbitsCtx returns the orbit partition of the canonical graph of id's
// isomorphism class under its automorphism group. On a tree-store index
// the warm path performs zero DviCL builds (the tree is served from the
// decoded-tree cache or from disk).
func (ix *GraphIndex) OrbitsCtx(ctx context.Context, id int) ([][]int, error) {
	tree, _, done, err := ix.symQuery(ctx, id, obs.SymmetryQueryOrbits, "symquery_orbits")
	if err != nil {
		return nil, err
	}
	defer done()
	return tree.Orbits(), nil
}

// AutGroupCtx returns the automorphism group of the canonical graph of
// id's isomorphism class: its order and a generating set in sparse
// (moved-points) form. The generators alias the stored tree — treat them
// as read-only.
func (ix *GraphIndex) AutGroupCtx(ctx context.Context, id int) (order *big.Int, gens []SparsePerm, err error) {
	tree, _, done, err := ix.symQuery(ctx, id, obs.SymmetryQueryAutGroup, "symquery_autgroup")
	if err != nil {
		return nil, nil, err
	}
	defer done()
	return tree.AutOrder(), append([]SparsePerm(nil), tree.SparseGenerators()...), nil
}

// QuotientCtx returns the orbit-quotient graph of the canonical graph of
// id's isomorphism class (the paper's network-quotient application).
func (ix *GraphIndex) QuotientCtx(ctx context.Context, id int) (QuotientResult, error) {
	tree, _, done, err := ix.symQuery(ctx, id, obs.SymmetryQueryQuotient, "symquery_quotient")
	if err != nil {
		return QuotientResult{}, err
	}
	defer done()
	return tree.Quotient(), nil
}

// SSMCtx answers a symmetric-subgraph-matching query (Algorithm 6)
// against the canonical graph of id's isomorphism class: the number of
// automorphic images of pattern, plus — when limit > 0 — up to limit of
// the images themselves. Pattern vertices are canonical-graph ids, must
// be in range and duplicate-free (ErrInvalidPattern otherwise).
func (ix *GraphIndex) SSMCtx(ctx context.Context, id int, pattern []int, limit int) (count *big.Int, images [][]int, err error) {
	tree, rec, done, err := ix.symQuery(ctx, id, obs.SymmetryQuerySSM, "symquery_ssm")
	if err != nil {
		return nil, nil, err
	}
	defer done()
	n := tree.Graph().N()
	seen := make(map[int]bool, len(pattern))
	for _, v := range pattern {
		switch {
		case v < 0 || v >= n:
			return nil, nil, fmt.Errorf("%w: vertex %d out of range [0,%d)", ErrInvalidPattern, v, n)
		case seen[v]:
			return nil, nil, fmt.Errorf("%w: duplicate vertex %d", ErrInvalidPattern, v)
		}
		seen[v] = true
	}
	// The SSM index lazily memoizes per-node metadata, so each request
	// gets a fresh one; the shared tree underneath is read-only.
	sx := ssm.NewIndex(tree)
	sx.SetRecorder(rec)
	count, err = sx.CountImagesCtx(ctx, pattern)
	if err != nil {
		return nil, nil, err
	}
	if limit > 0 {
		images, err = sx.EnumerateCtx(ctx, pattern, limit)
		if err != nil {
			return nil, nil, err
		}
	}
	return count, images, nil
}
