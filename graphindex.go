package dvicl

import (
	"sync"
)

// GraphIndex is a canonical-certificate index over a collection of graphs
// — the paper's database-indexing application (introduction, (a)): every
// graph receives a certificate such that two graphs are isomorphic iff
// they share it, so duplicate detection and isomorphism lookup become
// map operations. Safe for concurrent use.
type GraphIndex struct {
	mu      sync.RWMutex
	classes map[string][]int // certificate -> ids, insertion order
	certs   []string         // id -> certificate
	opt     Options
}

// NewGraphIndex returns an empty index. opt configures the underlying
// DviCL runs (zero value is fine).
func NewGraphIndex(opt Options) *GraphIndex {
	return &GraphIndex{classes: make(map[string][]int), opt: opt}
}

// Add inserts a graph and returns its id and whether an isomorphic graph
// was already present.
func (ix *GraphIndex) Add(g *Graph) (id int, duplicate bool) {
	cert := ix.certOf(g)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id = len(ix.certs)
	ix.certs = append(ix.certs, cert)
	members := ix.classes[cert]
	ix.classes[cert] = append(members, id)
	return id, len(members) > 0
}

// Lookup returns the ids of the stored graphs isomorphic to g.
func (ix *GraphIndex) Lookup(g *Graph) []int {
	cert := ix.certOf(g)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]int(nil), ix.classes[cert]...)
}

// Len returns the number of stored graphs; Classes the number of
// isomorphism classes.
func (ix *GraphIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.certs)
}

// Classes returns the number of distinct isomorphism classes stored.
func (ix *GraphIndex) Classes() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.classes)
}

func (ix *GraphIndex) certOf(g *Graph) string {
	return string(CanonicalCert(g, nil, ix.opt))
}
