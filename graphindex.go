package dvicl

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dvicl/internal/obs"
	"dvicl/internal/store"
	"dvicl/internal/treestore"
)

// ErrIndexClosed is returned by operations on a GraphIndex after Close.
var ErrIndexClosed = errors.New("dvicl: graph index closed")

// Defaults for IndexOptions zero values.
const (
	defaultCacheSize    = 4096
	defaultCompactEvery = 8192
)

// IndexOptions configures a persistent GraphIndex opened with
// OpenGraphIndex.
type IndexOptions struct {
	// DviCL configures the underlying certificate builds (zero value is
	// fine). Attach an observability recorder via DviCL.Obs to get the
	// index_*, cert_cache_*, wal_* and snapshot counters.
	DviCL Options
	// CacheSize bounds the LRU certificate cache (entries, summed across
	// cache stripes). 0 means the default (4096); negative disables
	// caching.
	CacheSize int
	// SyncWrites fsyncs the WAL on every Add. Off, an acknowledged Add
	// survives process crash (kill -9) but not necessarily power loss.
	SyncWrites bool
	// CompactEvery triggers a background snapshot compaction of a shard
	// after this many WAL appends to it. 0 means the default (8192);
	// negative disables automatic compaction (Flush still compacts on
	// demand).
	CompactEvery int
	// Shards partitions the certificate map, cache, and WAL into this
	// many independently locked shards (certificates are hash-routed, so
	// isomorphic graphs always land on the same shard). 0 or 1 keeps the
	// original single-shard layout (index.snap/index.wal at the root); a
	// sharded index writes an index.manifest plus shard-NNN/
	// subdirectories. The count is fixed at creation: reopening an
	// existing directory adopts the on-disk count and ignores this field.
	Shards int
	// TreeStore, when non-nil, opens a persistent AutoTree store beside
	// each shard's certificate store (a trees/ subdirectory) and enables
	// the symmetry-query serving path: OrbitsCtx, AutGroupCtx,
	// QuotientCtx and SSMCtx answer from stored trees, and every Add of a
	// new isomorphism class write-behind persists its tree. The
	// TreeStoreOptions Build and Obs fields are overridden with the
	// index's own DviCL options and recorder; MemBudget is the total
	// decoded-tree cache across all shards. With TreeStore nil the
	// symmetry queries still work but rebuild the tree on every call.
	TreeStore *TreeStoreOptions
}

// TreeStoreOptions configures the AutoTree store of a GraphIndex (see
// IndexOptions.TreeStore) or a standalone store opened with
// OpenTreeStore.
type TreeStoreOptions = treestore.Options

// indexShard is one independently locked partition of a GraphIndex: a
// slice of the certificate space (hash-routed by certificate bytes) with
// its own class map, id list, and — when durable — its own WAL segment
// and snapshot.
type indexShard struct {
	mu      sync.RWMutex
	classes map[string][]int // certificate -> local ids, insertion order
	certs   []string         // local id -> certificate
	closed  bool

	st         *store.Store     // nil for an ephemeral index
	ts         *treestore.Store // nil when IndexOptions.TreeStore is unset
	compacting atomic.Bool
}

// GraphIndex is a canonical-certificate index over a collection of graphs
// — the paper's database-indexing application (introduction, (a)): every
// graph receives a certificate such that two graphs are isomorphic iff
// they share it, so duplicate detection and isomorphism lookup become
// map operations.
//
// An index is either ephemeral (NewGraphIndex) or durable
// (OpenGraphIndex): the durable form write-through-logs every Add to a
// WAL and periodically compacts it into a snapshot (see internal/store
// for the on-disk contract), so a restart — even after kill -9 — reloads
// the same id assignment.
//
// # Sharding
//
// The index is internally partitioned into IndexOptions.Shards
// independently locked shards. A certificate is routed to its shard by a
// hash of its bytes, so all graphs of one isomorphism class share a
// shard and dedup stays exact; each shard owns its slice of the class
// map plus — when durable — its own WAL segment and snapshot, compacted
// independently. Ids encode the shard: id = localID·S + shardID, which
// keeps them unique, stable across restarts, and monotone within a
// shard. With Shards ≤ 1 the layout and ids are identical to the
// pre-shard single-lock index.
//
// # Concurrency
//
// GraphIndex is safe for concurrent use. The contract, relied on by the
// indexd daemon and the bulk-ingest pipeline:
//
//   - Certificate computation (the expensive DviCL build) runs *outside*
//     any index lock: CanonicalCert is a pure function of the graph, so
//     concurrent Adds and Lookups never serialize on it.
//   - Each shard's mutex guards only that shard's id/class maps and WAL
//     append, keeping critical sections O(1)-ish per operation and
//     making per-shard WAL order always match local id order. Adds to
//     different shards do not contend at all.
//   - Lookup takes only a read lock on one shard and may run concurrently
//     with other Lookups; a Lookup racing an Add of an isomorphic graph
//     may or may not see the new id, exactly like a map read racing a
//     map write under an RWMutex.
//   - Background compaction briefly takes one shard's write lock to cut
//     a consistent snapshot of that shard; Adds to other shards proceed
//     unimpeded.
type GraphIndex struct {
	shards []*indexShard
	opt    Options
	cache  *certCache // nil when disabled

	persistent   bool
	compactEvery int
	bg           sync.WaitGroup
	closing      atomic.Bool

	// Write-behind tree persistence: Adds of new classes enqueue their
	// certificate (under the shard lock, so no enqueue can race Close);
	// tsWorkers goroutines drain the queue into the shard tree stores. A
	// full queue drops the persist — the treestore has cache semantics,
	// so a dropped entry merely costs a rebuild on first query.
	tsPersist   chan tsPersistReq
	tsPending   sync.WaitGroup // queued-but-unpersisted certificates
	tsWorkerWG  sync.WaitGroup // running persist workers
	dataDir     string         // index root; "" for an ephemeral index
	hasTreeCols bool           // IndexOptions.TreeStore was non-nil

	// Open-time recovery facts, summed across shards, surfaced in Stats.
	snapshotCerts  int
	replayedAtOpen int
	recoveredBytes int64
}

// tsPersistReq asks a persist worker to make one certificate's AutoTree
// durable in one shard's tree store.
type tsPersistReq struct {
	ts   *treestore.Store
	cert string
}

// Write-behind persistence tuning: tsWorkers goroutines drain a queue of
// tsQueueLen certificates. The queue absorbs Add bursts; overflow drops
// the persist (counted as treestore_persist_dropped) rather than ever
// blocking an Add on tree serialization.
const (
	tsWorkers  = 2
	tsQueueLen = 1024
)

// shardOf routes a certificate to a shard number. FNV-1a over the
// certificate bytes: stable across processes and builds (the assignment
// must survive restarts, so runtime-seeded hashes are out), and cheap
// relative to the DviCL build that produced the certificate. All members
// of one isomorphism class share a certificate, hence a shard — the
// property exact dedup depends on.
func (ix *GraphIndex) shardOf(cert string) int {
	if len(ix.shards) == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(cert); i++ {
		h ^= uint64(cert[i])
		h *= prime64
	}
	return int(h % uint64(len(ix.shards)))
}

// globalID composes a shard-local id and shard number into the public id.
func (ix *GraphIndex) globalID(shard, local int) int {
	return local*len(ix.shards) + shard
}

func newShards(n int) []*indexShard {
	shards := make([]*indexShard, n)
	for i := range shards {
		shards[i] = &indexShard{classes: make(map[string][]int)}
	}
	return shards
}

// NewGraphIndex returns an empty ephemeral (in-memory) single-shard
// index. opt configures the underlying DviCL runs (zero value is fine).
// The certificate cache is enabled at its default size.
func NewGraphIndex(opt Options) *GraphIndex {
	return NewShardedGraphIndex(opt, 1)
}

// NewShardedGraphIndex returns an empty ephemeral index partitioned into
// shards independently locked shards (values < 1 mean 1). Use it when
// many goroutines Add concurrently — e.g. the indexd bulk path on an
// in-memory index.
func NewShardedGraphIndex(opt Options, shards int) *GraphIndex {
	return NewGraphIndexWithOptions(IndexOptions{DviCL: opt, Shards: shards})
}

// NewGraphIndexWithOptions returns an empty ephemeral index honoring the
// full IndexOptions surface: shard count, cache size, and — when
// TreeStore is non-nil — a memory-only AutoTree store per shard, so the
// symmetry-query warm path works without a data directory. The
// persistence knobs (SyncWrites, CompactEvery) are ignored. An index
// with a tree store must be Closed to stop its persist workers.
func NewGraphIndexWithOptions(opt IndexOptions) *GraphIndex {
	nShards := opt.Shards
	if nShards < 1 {
		nShards = 1
	}
	if nShards > store.MaxShards {
		nShards = store.MaxShards
	}
	ix := &GraphIndex{
		shards: newShards(nShards),
		opt:    opt.DviCL,
	}
	switch {
	case opt.CacheSize > 0:
		ix.cache = newCertCache(opt.CacheSize, nShards)
	case opt.CacheSize == 0:
		ix.cache = newCertCache(defaultCacheSize, nShards)
	}
	if opt.TreeStore != nil {
		// Memory-only stores cannot fail to open.
		if err := ix.initTreeStores("", *opt.TreeStore); err != nil {
			panic("dvicl: ephemeral tree store: " + err.Error())
		}
	}
	return ix
}

// initTreeStores opens one AutoTree store per shard (under
// <shard>/trees when root is non-empty, memory-only otherwise) and
// starts the write-behind persist workers. The configured MemBudget is
// the index-wide total, split evenly across shards.
func (ix *GraphIndex) initTreeStores(root string, topt treestore.Options) error {
	topt.Build = ix.opt
	topt.Obs = ix.opt.Obs
	if topt.MemBudget == 0 {
		topt.MemBudget = treestore.DefaultMemBudget
	}
	if per := topt.MemBudget / int64(len(ix.shards)); per > 0 {
		topt.MemBudget = per
	} else if topt.MemBudget > 0 {
		topt.MemBudget = 1
	}
	for i, sh := range ix.shards {
		tdir := ""
		if root != "" {
			sdir := root
			if len(ix.shards) > 1 {
				sdir = filepath.Join(root, store.ShardDir(i))
			}
			tdir = filepath.Join(sdir, "trees")
		}
		ts, err := treestore.Open(tdir, topt)
		if err != nil {
			for _, prev := range ix.shards[:i] {
				prev.ts.Close()
				prev.ts = nil
			}
			return fmt.Errorf("dvicl: shard %d tree store: %w", i, err)
		}
		sh.ts = ts
	}
	ix.hasTreeCols = true
	ix.tsPersist = make(chan tsPersistReq, tsQueueLen)
	for w := 0; w < tsWorkers; w++ {
		ix.tsWorkerWG.Add(1)
		go ix.persistWorker()
	}
	return nil
}

// persistWorker drains the write-behind queue. Persist failures are
// swallowed: the treestore has cache semantics, so a failed persist only
// costs a rebuild on the first query for that class.
func (ix *GraphIndex) persistWorker() {
	defer ix.tsWorkerWG.Done()
	for req := range ix.tsPersist {
		_ = req.ts.Ensure(context.Background(), []byte(req.cert))
		ix.tsPending.Done()
	}
}

// OpenGraphIndex opens (creating if needed) a durable index rooted at
// dir, replaying the snapshot and WAL of every shard found there. See
// IndexOptions for the knobs and Stats for what was recovered. The
// caller must Close the index to release the WALs and write final
// snapshots.
func OpenGraphIndex(dir string, opt IndexOptions) (*GraphIndex, error) {
	nShards := opt.Shards
	if nShards < 1 {
		nShards = 1
	}
	if nShards > store.MaxShards {
		return nil, fmt.Errorf("dvicl: %d shards exceeds limit %d", nShards, store.MaxShards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// The on-disk layout wins over the requested count: a manifest pins
	// the shard count; a manifest-less directory with legacy index files
	// is a single-shard index.
	switch m, err := store.ReadManifest(dir); {
	case err == nil:
		nShards = m.Shards
	case errors.Is(err, os.ErrNotExist):
		if legacyIndexFiles(dir) {
			nShards = 1
		} else if nShards > 1 {
			m := store.Manifest{Version: store.Version, Shards: nShards, TreeStore: opt.TreeStore != nil}
			if err := store.WriteManifest(dir, m); err != nil {
				return nil, err
			}
		}
	default:
		return nil, err
	}

	ix := &GraphIndex{
		shards:       newShards(nShards),
		opt:          opt.DviCL,
		persistent:   true,
		compactEvery: opt.CompactEvery,
		dataDir:      dir,
	}
	if ix.compactEvery == 0 {
		ix.compactEvery = defaultCompactEvery
	}
	switch {
	case opt.CacheSize > 0:
		ix.cache = newCertCache(opt.CacheSize, nShards)
	case opt.CacheSize == 0:
		ix.cache = newCertCache(defaultCacheSize, nShards)
	}

	for i, sh := range ix.shards {
		sdir := dir
		if nShards > 1 {
			sdir = filepath.Join(dir, store.ShardDir(i))
		}
		st, res, err := store.Open(sdir, store.Options{Sync: opt.SyncWrites})
		if err != nil {
			for _, prev := range ix.shards[:i] {
				prev.st.Close()
			}
			return nil, fmt.Errorf("dvicl: shard %d: %w", i, err)
		}
		sh.st = st
		sh.certs = res.Certs
		sh.classes = make(map[string][]int, len(res.Certs))
		for local, cert := range sh.certs {
			sh.classes[cert] = append(sh.classes[cert], local)
		}
		ix.snapshotCerts += res.SnapshotCerts
		ix.replayedAtOpen += res.WALReplayed
		ix.recoveredBytes += res.TornBytes
	}
	if opt.TreeStore != nil {
		if err := ix.initTreeStores(dir, *opt.TreeStore); err != nil {
			for _, sh := range ix.shards {
				sh.st.Close()
			}
			return nil, err
		}
	}
	ix.opt.Obs.Add(obs.WALReplayed, int64(ix.replayedAtOpen))
	return ix, nil
}

// legacyIndexFiles reports whether dir holds a pre-manifest single-shard
// index (index.snap or index.wal directly at the root).
func legacyIndexFiles(dir string) bool {
	for _, name := range []string{store.SnapshotName, store.WALName} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// Add inserts a graph and returns its id and whether an isomorphic graph
// was already present. On a durable index the Add is acknowledged only
// after its WAL record is written (and fsynced under SyncWrites); the
// error is non-nil exactly when the record could not be persisted, in
// which case the in-memory index is unchanged.
func (ix *GraphIndex) Add(g *Graph) (id int, duplicate bool, err error) {
	return ix.AddCtx(context.Background(), g)
}

// recorderFor resolves the recorder for one ctx-scoped operation: the
// trace's forwarding recorder when ctx carries a trace (per-request
// deltas plus the global base), the index's own recorder otherwise. The
// invariant callers must keep — indexd does — is that a trace on ctx was
// created over this index's recorder, so the base still sees everything.
func (ix *GraphIndex) recorderFor(ctx context.Context) *obs.Recorder {
	if tr := obs.TraceFrom(ctx); tr != nil {
		return tr.Recorder()
	}
	return ix.opt.Obs
}

// AddCtx is Add with a context bounding the certificate build: if ctx is
// canceled (or the index's Budget is exhausted) mid-canonicalization, the
// build stops promptly and AddCtx returns ErrCanceled/ErrBudgetExceeded
// with the index unchanged. The shard insert itself is not cancelable —
// once the certificate exists the insert is O(1) plus a WAL append.
func (ix *GraphIndex) AddCtx(ctx context.Context, g *Graph) (id int, duplicate bool, err error) {
	rec := ix.recorderFor(ctx)
	rec.Inc(obs.IndexAdds)
	span := rec.StartPhase(obs.PhaseIndexAdd)
	defer span.End()
	ts := obs.TraceFrom(ctx).StartSpan(obs.SpanFrom(ctx), "index_add")
	defer ts.End()
	if ts != nil {
		ctx = obs.WithSpan(ctx, ts) // the build span nests below
	}

	cert, err := ix.certOfCtx(ctx, g) // outside any lock: pure, possibly expensive
	if err != nil {
		return 0, false, err
	}
	return ix.addCert(cert, rec)
}

// AddCert inserts a precomputed canonical certificate, exactly as if the
// graph it certifies had been Added. It is the apply step of the bulk
// pipeline, where certificates were already built by parallel workers;
// normal callers use Add.
func (ix *GraphIndex) AddCert(cert string) (id int, duplicate bool, err error) {
	return ix.AddCertCtx(context.Background(), cert)
}

// AddCertCtx is AddCert under a context: the insert itself is not
// cancelable (O(1) plus a WAL append), but a trace on ctx receives the
// index/WAL counters as request deltas. No span is recorded — bulk apply
// calls this once per record, and span-per-record would drown the tree.
func (ix *GraphIndex) AddCertCtx(ctx context.Context, cert string) (id int, duplicate bool, err error) {
	rec := ix.recorderFor(ctx)
	rec.Inc(obs.IndexAdds)
	return ix.addCert(cert, rec)
}

func (ix *GraphIndex) addCert(cert string, rec *obs.Recorder) (id int, duplicate bool, err error) {
	shardID := ix.shardOf(cert)
	sh := ix.shards[shardID]

	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return 0, false, ErrIndexClosed
	}
	if sh.st != nil {
		wspan := rec.StartPhase(obs.PhaseWALAppend)
		_, werr := sh.st.Append(cert)
		wspan.End()
		if werr != nil {
			sh.mu.Unlock()
			return 0, false, werr
		}
		rec.Inc(obs.WALAppends)
	}
	local := len(sh.certs)
	sh.certs = append(sh.certs, cert)
	members := sh.classes[cert]
	sh.classes[cert] = append(members, local)
	if sh.ts != nil && len(members) == 0 {
		// First member of a new class: write-behind persist its AutoTree.
		// Enqueued under the shard lock — Close marks every shard closed
		// under the same locks before draining, so no enqueue races the
		// channel close. A full queue drops the persist (cache semantics:
		// the first query for the class rebuilds it).
		ix.tsPending.Add(1)
		select {
		case ix.tsPersist <- tsPersistReq{ts: sh.ts, cert: cert}:
		default:
			ix.tsPending.Done()
			rec.Inc(obs.TreeStorePersistDropped)
		}
	}
	needCompact := sh.st != nil && ix.compactEvery > 0 &&
		sh.st.SinceSnapshot() >= ix.compactEvery
	sh.mu.Unlock()

	duplicate = len(members) > 0
	if duplicate {
		rec.Inc(obs.IndexAddDuplicate)
	}
	if needCompact && sh.compacting.CompareAndSwap(false, true) {
		ix.bg.Add(1)
		go func() {
			defer ix.bg.Done()
			defer sh.compacting.Store(false)
			_ = ix.flushShard(sh) // best effort; the WAL still holds everything
		}()
	}
	return ix.globalID(shardID, local), duplicate, nil
}

// Lookup returns the ids of the stored graphs isomorphic to g. The
// certificate is computed (or served from the cache) outside any lock;
// only one shard's class-map read is guarded.
func (ix *GraphIndex) Lookup(g *Graph) []int {
	ids, _ := ix.LookupCtx(context.Background(), g)
	return ids
}

// LookupCtx is Lookup with a context bounding the certificate build; on
// cancellation or budget exhaustion it returns a nil slice and the typed
// error.
func (ix *GraphIndex) LookupCtx(ctx context.Context, g *Graph) ([]int, error) {
	rec := ix.recorderFor(ctx)
	rec.Inc(obs.IndexLookups)
	span := rec.StartPhase(obs.PhaseIndexLookup)
	defer span.End()
	ts := obs.TraceFrom(ctx).StartSpan(obs.SpanFrom(ctx), "index_lookup")
	defer ts.End()
	if ts != nil {
		ctx = obs.WithSpan(ctx, ts)
	}

	cert, err := ix.certOfCtx(ctx, g)
	if err != nil {
		return nil, err
	}
	shardID := ix.shardOf(cert)
	sh := ix.shards[shardID]
	sh.mu.RLock()
	locals := sh.classes[cert]
	ids := make([]int, len(locals))
	for i, local := range locals {
		ids[i] = ix.globalID(shardID, local)
	}
	sh.mu.RUnlock()
	if len(ids) == 0 {
		return nil, nil
	}
	return ids, nil
}

// Len returns the number of stored graphs.
func (ix *GraphIndex) Len() int {
	n := 0
	for _, sh := range ix.shards {
		sh.mu.RLock()
		n += len(sh.certs)
		sh.mu.RUnlock()
	}
	return n
}

// Classes returns the number of distinct isomorphism classes stored.
func (ix *GraphIndex) Classes() int {
	n := 0
	for _, sh := range ix.shards {
		sh.mu.RLock()
		n += len(sh.classes)
		sh.mu.RUnlock()
	}
	return n
}

// Flush synchronously compacts the index: every shard's full certificate
// list is written as a new snapshot (atomic rename) and its WAL is
// reset. Shards are compacted one at a time, so concurrent Adds to other
// shards proceed while each snapshot is cut. A no-op on an ephemeral
// index.
func (ix *GraphIndex) Flush() error {
	if !ix.persistent {
		return nil
	}
	for _, sh := range ix.shards {
		if err := ix.flushShard(sh); err != nil {
			return err
		}
	}
	return nil
}

// flushShard compacts one shard under its own lock.
func (ix *GraphIndex) flushShard(sh *indexShard) error {
	rec := ix.opt.Obs
	span := rec.StartPhase(obs.PhaseSnapshot)
	defer span.End()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return ErrIndexClosed
	}
	return ix.flushShardLocked(sh)
}

func (ix *GraphIndex) flushShardLocked(sh *indexShard) error {
	if err := sh.st.Compact(sh.certs); err != nil {
		return err
	}
	ix.opt.Obs.Inc(obs.SnapshotsWritten)
	return nil
}

// Close flushes a final snapshot of every shard, drains the write-behind
// tree persists, and releases the WALs and tree stores. Further Adds and
// Flushes return ErrIndexClosed (Close itself is idempotent). A no-op on
// an ephemeral index without a tree store; an ephemeral index *with* one
// must be Closed to stop its persist workers.
func (ix *GraphIndex) Close() error {
	if !ix.persistent && !ix.hasTreeCols {
		return nil
	}
	if !ix.closing.CompareAndSwap(false, true) {
		return nil
	}
	for _, sh := range ix.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.mu.Unlock()
	}
	ix.bg.Wait() // drain in-flight background compactions
	if ix.tsPersist != nil {
		// Shards are closed, so no new enqueues: wait out the queued
		// persists, then retire the workers. Tree stores must outlive this
		// drain, hence they close below.
		ix.tsPending.Wait()
		close(ix.tsPersist)
		ix.tsWorkerWG.Wait()
	}

	var firstErr error
	for _, sh := range ix.shards {
		sh.mu.Lock()
		if sh.ts != nil {
			if err := sh.ts.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if sh.st != nil {
			if err := ix.flushShardLocked(sh); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := sh.st.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// Ready reports whether the index can serve and persist: nil when the
// index is open and — for a durable index — its data directory is still
// writable (probed with a create+remove round trip). The indexd /readyz
// endpoint is a thin wrapper around it.
func (ix *GraphIndex) Ready() error {
	if ix.closing.Load() {
		return ErrIndexClosed
	}
	if !ix.persistent {
		return nil
	}
	probe, err := os.CreateTemp(ix.dataDir, ".readyz-*")
	if err != nil {
		return fmt.Errorf("dvicl: index dir not writable: %w", err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(name)
}

// IndexStats is a point-in-time summary of a GraphIndex, serialized by
// the indexd /stats endpoint and the bulkload report.
type IndexStats struct {
	// Graphs and Classes count stored graphs and isomorphism classes;
	// Duplicates = Graphs − Classes is the count of Adds collapsed onto
	// an existing class (the dedup win).
	Graphs     int `json:"graphs"`
	Classes    int `json:"classes"`
	Duplicates int `json:"duplicates"`

	// Shard layout: ShardGraphs[i] is the number of graphs on shard i —
	// the per-shard balance of the certificate hash routing.
	Shards      int   `json:"shards"`
	ShardGraphs []int `json:"shard_graphs,omitempty"`

	// Certificate-cache effectiveness. Hits are Adds/Lookups that skipped
	// the DviCL build entirely.
	CacheEntries int   `json:"cache_entries"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`

	// Persistence state. WALRecords is the append count since the last
	// snapshot summed across shards (the compaction pressure); the three
	// recovery fields describe what OpenGraphIndex found on disk.
	Persistent      bool  `json:"persistent"`
	WALRecords      int   `json:"wal_records"`
	SnapshotCerts   int   `json:"snapshot_certs"`
	ReplayedRecords int   `json:"replayed_records"`
	RecoveredBytes  int64 `json:"recovered_bytes"`

	// TreeStore, present when the index serves symmetry queries from an
	// AutoTree store, aggregates the decoded-tree caches across shards
	// (Entries/Bytes summed, MemBudget is the index-wide total).
	TreeStore *TreeStoreStats `json:"tree_store,omitempty"`
}

// Stats returns current index statistics. Shard counters are read one
// shard at a time, so the totals are not a single consistent cut under
// concurrent writes — fine for monitoring.
func (ix *GraphIndex) Stats() IndexStats {
	s := IndexStats{
		Persistent:      ix.persistent,
		Shards:          len(ix.shards),
		SnapshotCerts:   ix.snapshotCerts,
		ReplayedRecords: ix.replayedAtOpen,
		RecoveredBytes:  ix.recoveredBytes,
	}
	s.ShardGraphs = make([]int, len(ix.shards))
	for i, sh := range ix.shards {
		sh.mu.RLock()
		s.Graphs += len(sh.certs)
		s.Classes += len(sh.classes)
		s.ShardGraphs[i] = len(sh.certs)
		if sh.st != nil {
			s.WALRecords += sh.st.SinceSnapshot()
		}
		sh.mu.RUnlock()
	}
	s.Duplicates = s.Graphs - s.Classes
	if ix.hasTreeCols {
		agg := &TreeStoreStats{}
		for _, sh := range ix.shards {
			if sh.ts == nil {
				continue
			}
			ts := sh.ts.Stats()
			agg.Entries += ts.Entries
			agg.Bytes += ts.Bytes
			agg.MemBudget += ts.MemBudget
			agg.Persistent = agg.Persistent || ts.Persistent
		}
		s.TreeStore = agg
	}
	if ix.cache != nil {
		s.CacheEntries = ix.cache.len()
		s.CacheHits = ix.cache.hits.Load()
		s.CacheMisses = ix.cache.misses.Load()
	}
	return s
}

// Certificate computes (or recalls from the LRU cache) the canonical
// certificate of g under the index's DviCL options. Two graphs are
// isomorphic iff their certificates are equal; AddCert accepts the
// result. Pure with respect to the index — no locks taken.
func (ix *GraphIndex) Certificate(g *Graph) string {
	cert, err := ix.certOfCtx(context.Background(), g)
	if err != nil {
		// Unreachable with a background context and no Budget: the only
		// build errors are cancellation and budget exhaustion.
		panic("dvicl: Certificate: " + err.Error())
	}
	return cert
}

// CertificateCtx is Certificate with a context bounding the build.
func (ix *GraphIndex) CertificateCtx(ctx context.Context, g *Graph) (string, error) {
	return ix.certOfCtx(ctx, g)
}

// certOfCtx computes (or recalls) the canonical certificate of g. It
// runs outside the shard locks by design — see the Concurrency section
// of the GraphIndex doc — and consults the striped LRU cache keyed by
// the exact labeled graph (graph.Hash), so repeated presentations of the
// same graph skip DviCL entirely. A canceled or budget-exhausted build
// returns the typed engine error and caches nothing.
func (ix *GraphIndex) certOfCtx(ctx context.Context, g *Graph) (string, error) {
	if ix.cache == nil {
		cert, err := CanonicalCertCtx(ctx, g, nil, ix.opt)
		return string(cert), err
	}
	rec := ix.recorderFor(ctx)
	key := g.Hash()
	if cert, ok := ix.cache.get(key); ok {
		rec.Inc(obs.CertCacheHits)
		obs.SpanFrom(ctx).SetAttr("cache_hit", 1)
		return cert, nil
	}
	rec.Inc(obs.CertCacheMisses)
	raw, err := CanonicalCertCtx(ctx, g, nil, ix.opt)
	if err != nil {
		return "", err
	}
	cert := string(raw)
	ix.cache.put(key, cert)
	return cert, nil
}
