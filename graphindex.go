package dvicl

import (
	"errors"
	"sync"
	"sync/atomic"

	"dvicl/internal/obs"
	"dvicl/internal/store"
)

// ErrIndexClosed is returned by operations on a GraphIndex after Close.
var ErrIndexClosed = errors.New("dvicl: graph index closed")

// Defaults for IndexOptions zero values.
const (
	defaultCacheSize    = 4096
	defaultCompactEvery = 8192
)

// IndexOptions configures a persistent GraphIndex opened with
// OpenGraphIndex.
type IndexOptions struct {
	// DviCL configures the underlying certificate builds (zero value is
	// fine). Attach an observability recorder via DviCL.Obs to get the
	// index_*, cert_cache_*, wal_* and snapshot counters.
	DviCL Options
	// CacheSize bounds the LRU certificate cache (entries). 0 means the
	// default (4096); negative disables caching.
	CacheSize int
	// SyncWrites fsyncs the WAL on every Add. Off, an acknowledged Add
	// survives process crash (kill -9) but not necessarily power loss.
	SyncWrites bool
	// CompactEvery triggers a background snapshot compaction after this
	// many WAL appends. 0 means the default (8192); negative disables
	// automatic compaction (Flush still compacts on demand).
	CompactEvery int
}

// GraphIndex is a canonical-certificate index over a collection of graphs
// — the paper's database-indexing application (introduction, (a)): every
// graph receives a certificate such that two graphs are isomorphic iff
// they share it, so duplicate detection and isomorphism lookup become
// map operations.
//
// An index is either ephemeral (NewGraphIndex) or durable
// (OpenGraphIndex): the durable form write-through-logs every Add to a
// WAL and periodically compacts it into a snapshot (see internal/store
// for the on-disk contract), so a restart — even after kill -9 — reloads
// the same id assignment.
//
// # Concurrency
//
// GraphIndex is safe for concurrent use. The contract, relied on by the
// indexd daemon:
//
//   - Certificate computation (the expensive DviCL build) runs *outside*
//     any index lock: CanonicalCert is a pure function of the graph, so
//     concurrent Adds and Lookups never serialize on it.
//   - The internal mutex guards only the id/class maps and the WAL
//     append, keeping the critical section O(1)-ish per operation and
//     making WAL order always match id order.
//   - Lookup takes only a read lock and may run concurrently with other
//     Lookups; a Lookup racing an Add of an isomorphic graph may or may
//     not see the new id, exactly like a map read racing a map write
//     under an RWMutex.
//   - Background compaction briefly takes the write lock to cut a
//     consistent snapshot; Adds stall for the file write (bounded by
//     index size), never deadlock.
type GraphIndex struct {
	mu      sync.RWMutex
	classes map[string][]int // certificate -> ids, insertion order
	certs   []string         // id -> certificate
	closed  bool

	opt   Options
	cache *certCache // nil when disabled

	// Persistence (nil st for an ephemeral index).
	st           *store.Store
	compactEvery int
	compacting   atomic.Bool
	bg           sync.WaitGroup

	// Open-time recovery facts, surfaced in Stats.
	snapshotCerts  int
	replayedAtOpen int
	recoveredBytes int64
}

// NewGraphIndex returns an empty ephemeral (in-memory) index. opt
// configures the underlying DviCL runs (zero value is fine). The
// certificate cache is enabled at its default size.
func NewGraphIndex(opt Options) *GraphIndex {
	return &GraphIndex{
		classes: make(map[string][]int),
		opt:     opt,
		cache:   newCertCache(defaultCacheSize),
	}
}

// OpenGraphIndex opens (creating if needed) a durable index rooted at
// dir, replaying the snapshot and WAL found there. See IndexOptions for
// the knobs and Stats for what was recovered. The caller must Close the
// index to release the WAL and write a final snapshot.
func OpenGraphIndex(dir string, opt IndexOptions) (*GraphIndex, error) {
	st, res, err := store.Open(dir, store.Options{Sync: opt.SyncWrites})
	if err != nil {
		return nil, err
	}
	ix := &GraphIndex{
		classes:        make(map[string][]int, len(res.Certs)),
		certs:          res.Certs,
		opt:            opt.DviCL,
		st:             st,
		compactEvery:   opt.CompactEvery,
		snapshotCerts:  res.SnapshotCerts,
		replayedAtOpen: res.WALReplayed,
		recoveredBytes: res.TornBytes,
	}
	if ix.compactEvery == 0 {
		ix.compactEvery = defaultCompactEvery
	}
	switch {
	case opt.CacheSize > 0:
		ix.cache = newCertCache(opt.CacheSize)
	case opt.CacheSize == 0:
		ix.cache = newCertCache(defaultCacheSize)
	}
	for id, cert := range ix.certs {
		ix.classes[cert] = append(ix.classes[cert], id)
	}
	ix.opt.Obs.Add(obs.WALReplayed, int64(res.WALReplayed))
	return ix, nil
}

// Add inserts a graph and returns its id and whether an isomorphic graph
// was already present. On a durable index the Add is acknowledged only
// after its WAL record is written (and fsynced under SyncWrites); the
// error is non-nil exactly when the record could not be persisted, in
// which case the in-memory index is unchanged.
func (ix *GraphIndex) Add(g *Graph) (id int, duplicate bool, err error) {
	rec := ix.opt.Obs
	rec.Inc(obs.IndexAdds)
	span := rec.StartPhase(obs.PhaseIndexAdd)
	defer span.End()

	cert := ix.certOf(g) // outside the lock: pure, possibly expensive

	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return 0, false, ErrIndexClosed
	}
	if ix.st != nil {
		wspan := rec.StartPhase(obs.PhaseWALAppend)
		_, werr := ix.st.Append(cert)
		wspan.End()
		if werr != nil {
			ix.mu.Unlock()
			return 0, false, werr
		}
		rec.Inc(obs.WALAppends)
	}
	id = len(ix.certs)
	ix.certs = append(ix.certs, cert)
	members := ix.classes[cert]
	ix.classes[cert] = append(members, id)
	needCompact := ix.st != nil && ix.compactEvery > 0 &&
		ix.st.SinceSnapshot() >= ix.compactEvery
	ix.mu.Unlock()

	if needCompact && ix.compacting.CompareAndSwap(false, true) {
		ix.bg.Add(1)
		go func() {
			defer ix.bg.Done()
			defer ix.compacting.Store(false)
			_ = ix.Flush() // best effort; the WAL still holds everything
		}()
	}
	return id, len(members) > 0, nil
}

// Lookup returns the ids of the stored graphs isomorphic to g. The
// certificate is computed (or served from the cache) outside the lock;
// only the class-map read is guarded.
func (ix *GraphIndex) Lookup(g *Graph) []int {
	rec := ix.opt.Obs
	rec.Inc(obs.IndexLookups)
	span := rec.StartPhase(obs.PhaseIndexLookup)
	defer span.End()

	cert := ix.certOf(g)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]int(nil), ix.classes[cert]...)
}

// Len returns the number of stored graphs.
func (ix *GraphIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.certs)
}

// Classes returns the number of distinct isomorphism classes stored.
func (ix *GraphIndex) Classes() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.classes)
}

// Flush synchronously compacts the index: the full certificate list is
// written as a new snapshot (atomic rename) and the WAL is reset. A no-op
// on an ephemeral index.
func (ix *GraphIndex) Flush() error {
	if ix.st == nil {
		return nil
	}
	rec := ix.opt.Obs
	span := rec.StartPhase(obs.PhaseSnapshot)
	defer span.End()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return ErrIndexClosed
	}
	return ix.flushLocked()
}

func (ix *GraphIndex) flushLocked() error {
	if err := ix.st.Compact(ix.certs); err != nil {
		return err
	}
	ix.opt.Obs.Inc(obs.SnapshotsWritten)
	return nil
}

// Close flushes a final snapshot and releases the WAL. Further Adds,
// Flushes and Closes return ErrIndexClosed (Close itself is idempotent).
// A no-op on an ephemeral index.
func (ix *GraphIndex) Close() error {
	if ix.st == nil {
		return nil
	}
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return nil
	}
	ix.closed = true
	ix.mu.Unlock()

	ix.bg.Wait() // drain any in-flight background compaction

	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ix.flushLocked(); err != nil {
		ix.st.Close()
		return err
	}
	return ix.st.Close()
}

// IndexStats is a point-in-time summary of a GraphIndex, serialized by
// the indexd /stats endpoint.
type IndexStats struct {
	// Graphs and Classes count stored graphs and isomorphism classes.
	Graphs  int `json:"graphs"`
	Classes int `json:"classes"`

	// Certificate-cache effectiveness. Hits are Adds/Lookups that skipped
	// the DviCL build entirely.
	CacheEntries int   `json:"cache_entries"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`

	// Persistence state. WALRecords is the append count since the last
	// snapshot (the compaction pressure); the three recovery fields
	// describe what OpenGraphIndex found on disk.
	Persistent      bool  `json:"persistent"`
	WALRecords      int   `json:"wal_records"`
	SnapshotCerts   int   `json:"snapshot_certs"`
	ReplayedRecords int   `json:"replayed_records"`
	RecoveredBytes  int64 `json:"recovered_bytes"`
}

// Stats returns current index statistics.
func (ix *GraphIndex) Stats() IndexStats {
	ix.mu.RLock()
	s := IndexStats{
		Graphs:          len(ix.certs),
		Classes:         len(ix.classes),
		Persistent:      ix.st != nil,
		SnapshotCerts:   ix.snapshotCerts,
		ReplayedRecords: ix.replayedAtOpen,
		RecoveredBytes:  ix.recoveredBytes,
	}
	if ix.st != nil {
		s.WALRecords = ix.st.SinceSnapshot()
	}
	ix.mu.RUnlock()
	if ix.cache != nil {
		s.CacheEntries = ix.cache.len()
		s.CacheHits = ix.cache.hits.Load()
		s.CacheMisses = ix.cache.misses.Load()
	}
	return s
}

// certOf computes (or recalls) the canonical certificate of g. It runs
// outside the index lock by design — see the Concurrency section of the
// GraphIndex doc — and consults the LRU cache keyed by the exact labeled
// graph (graph.Hash), so repeated presentations of the same graph skip
// DviCL entirely.
func (ix *GraphIndex) certOf(g *Graph) string {
	if ix.cache == nil {
		return string(CanonicalCert(g, nil, ix.opt))
	}
	key := g.Hash()
	if cert, ok := ix.cache.get(key); ok {
		ix.opt.Obs.Inc(obs.CertCacheHits)
		return cert
	}
	ix.opt.Obs.Inc(obs.CertCacheMisses)
	cert := string(CanonicalCert(g, nil, ix.opt))
	ix.cache.put(key, cert)
	return cert
}
