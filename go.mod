module dvicl

go 1.24
