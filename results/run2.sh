#!/bin/bash
cd /root/repo
B=/tmp/benchtables
$B -table 7 -scale 50 -maxsubgraphs 100000 > results/table7.txt 2>&1; echo table7 done
$B -table 2 -timeout 60s > results/table2.txt 2>&1; echo table2 done
$B -table 4 -timeout 60s > results/table4.txt 2>&1; echo table4 done
$B -table 8 -timeout 60s > results/table8.txt 2>&1; echo table8 done
$B -table 5 -scale 50 -timeout 15s > results/table5.txt 2>&1; echo table5 done
