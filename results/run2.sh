#!/bin/bash
# Partial re-run used for the benchmark-family tables at full size
# (no -scale: tables 2/4/8 use the paper's instance sizes).
# Build the harness first: go build -o /tmp/benchtables ./cmd/benchtables
cd "$(dirname "$0")/.." || exit 1
B=/tmp/benchtables
[ -x "$B" ] || go build -o "$B" ./cmd/benchtables || exit 1
$B -table 7 -scale 50 -maxsubgraphs 100000 > results/table7.txt 2>&1; echo table7 done
$B -table 2 -timeout 60s > results/table2.txt 2>&1; echo table2 done
$B -table 4 -timeout 60s > results/table4.txt 2>&1; echo table4 done
$B -table 8 -timeout 60s > results/table8.txt 2>&1; echo table8 done
$B -table 5 -scale 50 -timeout 15s -json results > results/table5.txt 2>&1; echo table5 done
