#!/bin/bash
# Regenerates the recorded table*.txt outputs. Build the harness first:
#     go build -o /tmp/benchtables ./cmd/benchtables
# Add "-json results" to any line to also capture BENCH_table<N>.json
# (per-row obs counter snapshots).
cd "$(dirname "$0")/.." || exit 1
B=/tmp/benchtables
[ -x "$B" ] || go build -o "$B" ./cmd/benchtables || exit 1
$B -table 2 -scale 50 -timeout 60s > results/table2.txt 2>&1; echo table2 done
$B -table 4 -scale 50 -timeout 60s > results/table4.txt 2>&1; echo table4 done
$B -table 1 -scale 50 > results/table1.txt 2>&1; echo table1 done
$B -table 3 -scale 50 > results/table3.txt 2>&1; echo table3 done
$B -table 6 -scale 50 > results/table6.txt 2>&1; echo table6 done
$B -table 7 -scale 50 -maxsubgraphs 100000 > results/table7.txt 2>&1; echo table7 done
$B -table 8 -timeout 60s > results/table8.txt 2>&1; echo table8 done
$B -table 5 -scale 50 -timeout 15s -json results > results/table5.txt 2>&1; echo table5 done
