// Package dvicl is a Go implementation of "Graph Iso/Auto-morphism: A
// Divide-&-Conquer Approach" (Lu, Yu, Zhang, Cheng — SIGMOD 2021): the
// DviCL canonical-labeling algorithm, the AutoTree index it builds, the
// SSM-AT symmetric-subgraph-matching algorithm, and every substrate the
// paper's evaluation uses (an individualization–refinement baseline in the
// style of nauty/bliss/traces, permutation groups, influence maximization,
// clique and triangle workloads, and the benchmark-graph generators).
//
// Quick start:
//
//	g := dvicl.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
//	tree := dvicl.BuildAutoTree(g, nil, dvicl.Options{})
//	fmt.Println(tree.AutOrder())       // |Aut(C4)| = 8
//	fmt.Println(tree.Stats())          // AutoTree shape
//	same := dvicl.Isomorphic(g, h)     // canonical-certificate equality
//
// For the paper's database-indexing application, GraphIndex maps
// certificates to graph ids: NewGraphIndex is in-memory, OpenGraphIndex
// is durable (write-ahead log + snapshots, crash-safe), and cmd/indexd
// serves either over HTTP. See docs/ARCHITECTURE.md for the package map
// and docs/OPERATIONS.md for operating the daemon.
//
// The package is a facade: the implementation lives in internal/ packages
// (core, canon, coloring, graph, group, ssm, im, clique, gen, gf, perm,
// obs, store), re-exported here through type aliases so the whole system
// is usable from a single import.
package dvicl

import (
	"bytes"
	"context"
	"io"
	"math/big"

	"dvicl/internal/canon"
	"dvicl/internal/clique"
	"dvicl/internal/coloring"
	"dvicl/internal/core"
	"dvicl/internal/engine"
	"dvicl/internal/gen"
	"dvicl/internal/graph"
	"dvicl/internal/group"
	"dvicl/internal/im"
	"dvicl/internal/obs"
	"dvicl/internal/perm"
	"dvicl/internal/ssm"
	"dvicl/internal/treestore"
)

// Graph is an immutable undirected simple graph (CSR representation).
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// Coloring is an ordered partition of the vertex set (a colored graph's π).
type Coloring = coloring.Coloring

// Perm is a permutation of {0,…,n−1}.
type Perm = perm.Perm

// AutoTree is the index DviCL builds: canonical labeling, automorphism
// group, orbit structure and symmetric-subtree certificates.
type AutoTree = core.Tree

// AutoTreeNode is one node of an AutoTree.
type AutoTreeNode = core.Node

// AutoTreeStats summarizes an AutoTree (Tables 3 and 4 of the paper).
type AutoTreeStats = core.Stats

// Options configures DviCL (the leaf engine, the resource Budget and the
// Section 6.1 twin optimization).
type Options = core.Options

// Workspace is a reusable bundle of build-sized buffers. Long-lived
// workers (e.g. pipeline canonicalizers) can check one out of the shared
// pool once and thread it through many builds via Options.Workspace,
// paying the pool round-trip per worker instead of per build.
type Workspace = engine.Workspace

// Budget bounds a build end to end: a whole-build deadline and node cap
// (hard — the Ctx entry points return ErrBudgetExceeded) composed with
// per-leaf bounds (soft — Tree.Truncated). Set it in Options.Budget.
type Budget = engine.Budget

// InternalError reports a broken internal invariant as a value instead
// of a panic; the Ctx entry points return it so one pathological input
// cannot kill a serving process.
type InternalError = engine.InternalError

// ErrCanceled is returned by the Ctx entry points when the caller's
// context is canceled mid-build or mid-query.
var ErrCanceled = engine.ErrCanceled

// ErrBudgetExceeded is returned by the Ctx entry points when the build
// exhausts its Budget (whole-build deadline or search-node cap).
var ErrBudgetExceeded = engine.ErrBudgetExceeded

// BaselineOptions configures the individualization–refinement baseline.
type BaselineOptions = canon.Options

// BaselineResult is the baseline's output.
type BaselineResult = canon.Result

// Policy selects the baseline's target cell selector.
type Policy = canon.Policy

// The three published target-cell policies, named for the tools whose
// behavior they emulate.
const (
	PolicyBliss  = canon.PolicyBliss
	PolicyNauty  = canon.PolicyNauty
	PolicyTraces = canon.PolicyTraces
)

// SSMIndex answers symmetric-subgraph-matching queries (Algorithm 6).
type SSMIndex = ssm.Index

// SparsePerm is a permutation in sparse (moved-points) form: the pairs
// (i, π(i)) with π(i) ≠ i. The AutoTree generator set and the /autgroup
// endpoint use it — automorphisms of large graphs typically move few
// vertices.
type SparsePerm = perm.Sparse

// QuotientResult is the orbit-quotient graph of an AutoTree (orbit
// representatives, member counts, and the collapsed edge multiset).
type QuotientResult = core.QuotientResult

// TreeStore is a content-addressed persistent store of AutoTrees keyed
// by canonical certificate, with a byte-budgeted in-memory cache of
// decoded trees and rebuild-on-miss (see OpenTreeStore and
// IndexOptions.TreeStore).
type TreeStore = treestore.Store

// TreeStoreStats is a point-in-time summary of a TreeStore's cache.
type TreeStoreStats = treestore.Stats

// SubgraphMatcher is a VF2-style induced-subgraph matcher (the paper's
// SM subroutine).
type SubgraphMatcher = ssm.Matcher

// ICModel is a PMC-style influence-maximization model under independent
// cascade.
type ICModel = im.Model

// PermGroup is a permutation group with a Schreier–Sims stabilizer chain.
type PermGroup = group.Group

// Dataset couples a named evaluation graph with the paper's reported
// statistics.
type Dataset = gen.Dataset

// MetricsRecorder collects the pipeline's observability counters and phase
// timers (see internal/obs). Attach one via Options.Obs /
// BaselineOptions.Obs / SSMIndex.SetRecorder; a nil recorder is a valid
// no-op, so instrumented paths cost one predictable branch when disabled.
type MetricsRecorder = obs.Recorder

// MetricsSnapshot is a JSON-serializable point-in-time copy of a
// MetricsRecorder: every counter by name plus per-phase timing stats.
type MetricsSnapshot = obs.Snapshot

// DebugServer serves /debug/pprof/, /debug/vars and /debug/metrics for a
// recorder (see ServeDebug).
type DebugServer = obs.DebugServer

// Trace is a request-scoped observability unit: a hierarchical span tree
// plus the request's own counter deltas, recorded alongside (and
// forwarded to) a global MetricsRecorder. Create one with NewTrace, put
// it on a context with WithTrace, and every ctx-aware entry point
// (BuildAutoTreeCtx, CanonicalCertCtx, GraphIndex.AddCtx/LookupCtx, the
// SSM queries, the bulk pipeline) records into it. A nil *Trace is a
// valid disabled trace; all methods no-op.
type Trace = obs.Trace

// TraceSpan is one node of a Trace's span tree; nil is a valid no-op span.
type TraceSpan = obs.TraceSpan

// TraceSnapshot is the JSON form of a Trace: span tree, per-request
// counter deltas, and phase timings.
type TraceSnapshot = obs.TraceSnapshot

// SpanSnapshot is the JSON form of one span in a TraceSnapshot's tree.
type SpanSnapshot = obs.SpanSnapshot

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n vertices from an edge list. Self-loops
// and duplicate edges are dropped.
func FromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line,
// '#'/'%' comments), compacting vertex ids.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g as a sorted edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ToGraph6 encodes g in nauty's graph6 interchange format.
func ToGraph6(g *Graph) (string, error) { return graph.ToGraph6(g) }

// FromGraph6 decodes a graph6 string.
func FromGraph6(s string) (*Graph, error) { return graph.FromGraph6(s) }

// UnitColoring returns the coloring with a single cell (all vertices the
// same color).
func UnitColoring(n int) *Coloring { return coloring.Unit(n) }

// ColoringFromCells builds a coloring from an ordered cell partition,
// e.g. vertex labels/attributes (Section 2 of the paper).
func ColoringFromCells(n int, cells [][]int) (*Coloring, error) {
	return coloring.FromCells(n, cells)
}

// BuildAutoTree runs DviCL (Algorithm 1) on the colored graph (g, pi)
// and returns its AutoTree. pi may be nil for the unit coloring.
func BuildAutoTree(g *Graph, pi *Coloring, opt Options) *AutoTree {
	return core.Build(g, pi, opt)
}

// BuildAutoTreeCtx is BuildAutoTree under a context and the Options
// budget: the build polls ctx from the tree recursion down to the
// refinement and leaf-search hot loops, returning ErrCanceled /
// ErrBudgetExceeded within milliseconds of the bound firing, or an
// *InternalError if a structural invariant breaks.
func BuildAutoTreeCtx(ctx context.Context, g *Graph, pi *Coloring, opt Options) (*AutoTree, error) {
	return core.BuildCtx(ctx, g, pi, opt)
}

// CanonicalCert returns DviCL's canonical certificate of (g, pi): two
// colored graphs are isomorphic iff their certificates are equal
// (Theorem 6.9).
func CanonicalCert(g *Graph, pi *Coloring, opt Options) []byte {
	return core.Build(g, pi, opt).CanonicalCert()
}

// CanonicalCertCtx is CanonicalCert under a context and the Options
// budget (see BuildAutoTreeCtx).
func CanonicalCertCtx(ctx context.Context, g *Graph, pi *Coloring, opt Options) ([]byte, error) {
	t, err := core.BuildCtx(ctx, g, pi, opt)
	if err != nil {
		return nil, err
	}
	return t.CanonicalCert(), nil
}

// Isomorphic reports whether g1 and g2 are isomorphic (unit colorings).
// A cheap invariant fingerprint (degree sequence, 2-hop profile, triangle
// census) screens out most non-isomorphic pairs; ties are settled by the
// DviCL canonical certificates.
func Isomorphic(g1, g2 *Graph) bool {
	return IsomorphicOpt(g1, g2, Options{})
}

// IsomorphicOpt is Isomorphic with explicit DviCL options — e.g. an
// observability recorder (Options.Obs) or a worker pool (Options.Workers).
func IsomorphicOpt(g1, g2 *Graph, opt Options) bool {
	if g1.N() != g2.N() || g1.M() != g2.M() {
		return false
	}
	if g1.Fingerprint() != g2.Fingerprint() {
		return false
	}
	return bytes.Equal(CanonicalCert(g1, nil, opt), CanonicalCert(g2, nil, opt))
}

// AutomorphismGroup returns generators of Aut(G) and its order, via the
// AutoTree.
func AutomorphismGroup(g *Graph) (gens []Perm, order *big.Int) {
	t := core.Build(g, nil, Options{})
	return t.Generators(), t.AutOrder()
}

// Orbits returns the orbit partition of the vertices of g under Aut(G) —
// the orbit coloring of the paper.
func Orbits(g *Graph) [][]int {
	return core.Build(g, nil, Options{}).Orbits()
}

// CanonicalGraph returns the canonical form of g: isomorphic graphs map
// to the identical labeled graph.
func CanonicalGraph(g *Graph) *Graph {
	return core.Build(g, nil, Options{}).CanonicalGraph()
}

// FindIsomorphism returns a vertex mapping γ with g1^γ = g2, or false if
// the graphs are not isomorphic. The mapping is recovered from the two
// canonical labelings: γ = γ1 ∘ γ2⁻¹.
func FindIsomorphism(g1, g2 *Graph) (Perm, bool) {
	if g1.N() != g2.N() || g1.M() != g2.M() {
		return nil, false
	}
	t1 := core.Build(g1, nil, Options{})
	t2 := core.Build(g2, nil, Options{})
	if !bytes.Equal(t1.CanonicalCert(), t2.CanonicalCert()) {
		return nil, false
	}
	gamma := t1.Gamma.Compose(t2.Gamma.Inverse())
	if !g1.Permute(gamma).Equal(g2) {
		// Certificates matched but the composed mapping failed — only
		// possible under a hash collision in internal certificates.
		return nil, false
	}
	return gamma, true
}

// KSymmetrize extends g so every vertex has at least k−1 automorphic
// counterparts (the paper's social-network anonymization application).
func KSymmetrize(t *AutoTree, k int) (*Graph, error) {
	return core.KSymmetrize(t, k)
}

// SaveAutoTree persists a built index; LoadAutoTree restores it against
// the same graph — rebuilding the tree over a massive graph is the
// expensive step, so a system keeps the index on disk like any other.
func SaveAutoTree(t *AutoTree, w io.Writer) error { return t.Save(w) }

// LoadAutoTree reads an index saved by SaveAutoTree. g must be the graph
// the index was built from.
func LoadAutoTree(r io.Reader, g *Graph) (*AutoTree, error) { return core.Load(r, g) }

// OpenTreeStore opens (creating the directory if needed) a standalone
// content-addressed AutoTree store rooted at dir; dir == "" keeps the
// store memory-only. Get serves from the in-memory cache, then disk,
// then rebuilds from the certificate itself — corrupt or missing entries
// degrade to a recompute, never an error. A GraphIndex opened with
// IndexOptions.TreeStore manages its own stores; this entry point is for
// storeless pipelines (e.g. cmd/ssmquery warm caches).
func OpenTreeStore(dir string, opt TreeStoreOptions) (*TreeStore, error) {
	return treestore.Open(dir, opt)
}

// Baseline runs the individualization–refinement canonical labeler (the
// stand-in for nauty/bliss/traces) directly on (g, pi).
func Baseline(g *Graph, pi *Coloring, opt BaselineOptions) BaselineResult {
	return canon.Canonical(g, pi, opt)
}

// NewSSMIndex builds a symmetric-subgraph-matching index over an AutoTree.
func NewSSMIndex(t *AutoTree) *SSMIndex { return ssm.NewIndex(t) }

// NewMetricsRecorder returns an empty enabled recorder.
func NewMetricsRecorder() *MetricsRecorder { return obs.New() }

// NewTrace starts a request trace whose observations are kept as
// per-request deltas and forwarded to base (pass the recorder your
// Options.Obs uses, or nil for a standalone trace).
func NewTrace(id string, base *MetricsRecorder) *Trace { return obs.NewTrace(id, base) }

// WithTrace returns ctx carrying tr; ctx-aware dvicl entry points record
// their spans and counters into it.
func WithTrace(ctx context.Context, tr *Trace) context.Context { return obs.WithTrace(ctx, tr) }

// TraceFrom returns the Trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace { return obs.TraceFrom(ctx) }

// DetachTrace shadows any trace in ctx (keeping its cancellation): use it
// when fanning one traced request out into many parallel builds.
func DetachTrace(ctx context.Context) context.Context { return obs.DetachTrace(ctx) }

// ServeDebug exposes a recorder's live snapshot plus net/http/pprof and
// expvar on addr (e.g. "localhost:6060"; port ":0" picks a free one) so
// long canonical-labeling runs can be profiled while they execute. Close
// the returned server when done.
func ServeDebug(addr string, r *MetricsRecorder) (*DebugServer, error) {
	return obs.ServeDebug(addr, r)
}

// NewSubgraphMatcher returns an induced-subgraph matcher over a data
// graph; colors may be nil.
func NewSubgraphMatcher(data *Graph, colors []int) *SubgraphMatcher {
	return ssm.NewMatcher(data, colors)
}

// NewICModel builds a PMC-style IC-model estimator with r percolation
// sketches at edge probability p.
func NewICModel(g *Graph, p float64, r int, seed int64) *ICModel {
	return im.NewIC(g, p, r, seed)
}

// MaxClique returns one maximum clique of g.
func MaxClique(g *Graph) []int { return clique.MaxClique(g) }

// MaxCliques returns the maximum-clique size and all maximum cliques
// (limit 0 = all).
func MaxCliques(g *Graph, limit int) (int, [][]int) { return clique.MaxCliques(g, limit) }

// Triangles calls fn for every triangle of g.
func Triangles(g *Graph, fn func(a, b, c int)) { clique.Triangles(g, fn) }

// NewPermGroup builds a permutation group from generators.
func NewPermGroup(n int, gens []Perm) *PermGroup { return group.New(n, gens) }

// RealDatasets returns the 22 synthetic stand-ins for the paper's
// real-world graphs (Table 1).
func RealDatasets() []Dataset { return gen.RealDatasets() }

// BenchmarkDatasets returns the nine benchmark families of Table 2.
func BenchmarkDatasets() []Dataset { return gen.BenchmarkDatasets() }

// FindDataset looks up a dataset by name across both catalogs.
func FindDataset(name string) (Dataset, error) { return gen.FindDataset(name) }
