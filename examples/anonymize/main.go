// k-symmetry social-network anonymization (application (e) of the paper's
// introduction, after Wu et al. [34]): extend a graph so that every
// vertex has at least k−1 structurally equivalent counterparts, making
// re-identification by structural knowledge impossible. The AutoTree
// makes this a matter of duplicating root subtrees.
package main

import (
	"fmt"

	"dvicl"
	"dvicl/internal/core"
)

func main() {
	// A small "who-talks-to-whom" network: a manager (0) with two teams
	// and one distinguishable analyst (7).
	g := dvicl.FromEdges(9, [][2]int{
		{0, 1}, {0, 2}, // team leads
		{1, 3}, {1, 4}, // team A members
		{2, 5}, {2, 6}, // team B members
		{0, 7}, // the analyst
		{7, 8}, // the analyst's one contact
	})
	tree := dvicl.BuildAutoTree(g, nil, dvicl.Options{})
	fmt.Printf("original: n=%d m=%d |Aut|=%v\n", g.N(), g.M(), tree.AutOrder())

	exposed := 0
	for _, o := range tree.Orbits() {
		if len(o) == 1 {
			exposed++
		}
	}
	fmt.Printf("re-identifiable vertices (singleton orbits): %d\n", exposed)

	for _, k := range []int{2, 3} {
		anon, err := core.KSymmetrize(tree, k)
		if err != nil {
			panic(err)
		}
		anonTree := dvicl.BuildAutoTree(anon, nil, dvicl.Options{})
		minOrbit := anon.N()
		for _, o := range anonTree.Orbits() {
			if len(o) < minOrbit {
				minOrbit = len(o)
			}
		}
		fmt.Printf("k=%d: anonymized n=%d m=%d, every vertex has ≥%d counterparts (min orbit %d), |Aut|=%v\n",
			k, anon.N(), anon.M(), minOrbit-1, minOrbit, anonTree.AutOrder())
		if minOrbit < k {
			fmt.Println("ERROR: k-symmetry violated")
		}
	}
}
