// Software plagiarism detection via program dependence graphs — the SSM
// application the paper's introduction motivates (GPlag-style [21]): a
// plagiarized function differs by variable renaming, statement reordering
// and literal tweaks, none of which change the dependence graph's
// isomorphism class. Canonical certificates of the opcode-colored PDGs
// expose the match; SSM then shows which code regions are internally
// symmetric (interchangeable).
package main

import (
	"bytes"
	"fmt"
	"sort"

	"dvicl"
	"dvicl/internal/pdg"
)

var submissions = map[string]string{
	"alice": `
		a = input
		b = input
		c = input
		s1 = mul a a
		s2 = mul b b
		s3 = mul c c
		t = add s1 s2
		u = add t s3
		ret u
	`,
	// bob = alice with renamed identifiers and shuffled statements.
	"bob": `
		p = input
		q = input
		r = input
		zz = mul r r
		xx = mul p p
		yy = mul q q
		k = add xx yy
		m = add k zz
		ret m
	`,
	// carol computes something genuinely different (a·b + b·c + c·a).
	"carol": `
		a = input
		b = input
		c = input
		s1 = mul a b
		s2 = mul b c
		s3 = mul c a
		t = add s1 s2
		u = add t s3
		ret u
	`,
}

func main() {
	type entry struct {
		name string
		pg   *pdg.Graph
		cert []byte
	}
	var entries []entry
	names := make([]string, 0, len(submissions))
	for name := range submissions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src := submissions[name]
		prog, err := pdg.Parse(src)
		if err != nil {
			panic(err)
		}
		pg := pdg.Build(prog)
		cert, err := pdg.Certificate(pg)
		if err != nil {
			panic(err)
		}
		entries = append(entries, entry{name, pg, cert})
		fmt.Printf("%s: PDG with %d vertices, %d edges\n", name, pg.G.N(), pg.G.M())
	}
	fmt.Println()
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			match := bytes.Equal(entries[i].cert, entries[j].cert)
			verdict := "distinct"
			if match {
				verdict = "PLAGIARISM: identical dependence structure"
			}
			fmt.Printf("%s vs %s: %s\n", entries[i].name, entries[j].name, verdict)
		}
	}

	// Bonus: symmetry *within* one submission — the three squarings in
	// alice's code are interchangeable, which SSM surfaces directly.
	var alice *pdg.Graph
	for _, e := range entries {
		if e.name == "alice" {
			alice = e.pg
		}
	}
	cells, _ := alice.ColorCells()
	pi, _ := dvicl.ColoringFromCells(alice.G.N(), cells)
	tree := dvicl.BuildAutoTree(alice.G, pi, dvicl.Options{})
	fmt.Printf("\nalice's PDG |Aut| = %v (symmetric code regions)\n", tree.AutOrder())
	for _, o := range tree.Orbits() {
		if len(o) > 1 {
			var ops []string
			for _, v := range o {
				ops = append(ops, alice.Instrs[v].Op.String())
			}
			fmt.Printf("interchangeable instructions %v (%v)\n", o, ops)
		}
	}
}
