// Quickstart: canonical labeling, isomorphism testing, and automorphism
// detection with DviCL on the paper's running example (Fig. 1(a)).
package main

import (
	"fmt"
	"log"

	"dvicl"
)

func main() {
	// The example graph of Fig. 1(a): a 4-cycle {0,1,2,3}, a triangle
	// {4,5,6}, and a hub 7 adjacent to everything.
	g := dvicl.FromEdges(8, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 4},
		{0, 7}, {1, 7}, {2, 7}, {3, 7}, {4, 7}, {5, 7}, {6, 7},
	})
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	// Build the AutoTree: canonical labeling + automorphism group in one
	// divide-and-conquer pass.
	tree := dvicl.BuildAutoTree(g, nil, dvicl.Options{})
	fmt.Printf("|Aut(G)| = %v\n", tree.AutOrder())

	// Orbits: which vertices are interchangeable?
	for _, orbit := range tree.Orbits() {
		if len(orbit) > 1 {
			fmt.Printf("symmetric vertices: %v\n", orbit)
		}
	}

	// The canonical certificate answers isomorphism: any relabeling of g
	// has the same certificate.
	shuffled := g.Permute([]int{5, 2, 7, 0, 6, 4, 1, 3})
	fmt.Printf("isomorphic to shuffled copy: %v\n", dvicl.Isomorphic(g, shuffled))

	// Removing one edge breaks it.
	edges := g.Edges()
	broken := dvicl.FromEdges(g.N(), edges[:len(edges)-1])
	fmt.Printf("isomorphic to edge-deleted copy: %v\n", dvicl.Isomorphic(g, broken))

	// The AutoTree structure itself (Tables 3/4 of the paper).
	s := tree.Stats()
	fmt.Printf("autotree: %d nodes, %d singleton leaves, %d non-singleton, depth %d\n",
		s.Nodes, s.SingletonLeaves, s.NonSingletonLeaves, s.Depth)

	// SSM: who is symmetric to the subgraph {4,5}, an edge of the
	// triangle?
	ix := dvicl.NewSSMIndex(tree)
	images := ix.Enumerate([]int{4, 5}, 0)
	fmt.Printf("subgraphs symmetric to {4,5}: %v\n", images)
	if len(images) == 0 {
		log.Fatal("expected symmetric images")
	}
}
