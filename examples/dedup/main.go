// Database indexing / deduplication (application (a) of the paper's
// introduction): assign every graph in a collection a certificate such
// that two graphs are isomorphic iff they share the certificate, then
// group a collection of randomly relabeled "molecules" by isomorphism
// class.
package main

import (
	"crypto/sha256"
	"fmt"
	"math/rand"

	"dvicl"
)

// molecule templates: a few small structures that stand in for chemical
// compounds.
func templates() []*dvicl.Graph {
	return []*dvicl.Graph{
		// chain of 6
		dvicl.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}),
		// 6-ring
		dvicl.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}),
		// ring with a pendant (phenol-ish)
		dvicl.FromEdges(7, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 6}}),
		// two triangles sharing a vertex
		dvicl.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}}),
		// star
		dvicl.FromEdges(6, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}),
	}
}

func main() {
	r := rand.New(rand.NewSource(2021))
	base := templates()

	// A "database" of 200 graphs: random templates under random
	// relabelings.
	var db []*dvicl.Graph
	origin := make([]int, 0, 200)
	for i := 0; i < 200; i++ {
		ti := r.Intn(len(base))
		g := base[ti].Permute(r.Perm(base[ti].N()))
		db = append(db, g)
		origin = append(origin, ti)
	}

	// Index by canonical certificate.
	index := map[string][]int{}
	for i, g := range db {
		cert := string(dvicl.CanonicalCert(g, nil, dvicl.Options{}))
		index[cert] = append(index[cert], i)
	}

	fmt.Printf("database: %d graphs, %d isomorphism classes\n", len(db), len(index))
	if len(index) != len(base) {
		fmt.Println("ERROR: expected one class per template")
	}

	// Verify each class is homogeneous in its template of origin.
	for cert, members := range index {
		t := origin[members[0]]
		for _, m := range members {
			if origin[m] != t {
				fmt.Println("ERROR: mixed class", cert)
			}
		}
		sum := sha256.Sum256([]byte(cert))
		fmt.Printf("class of template %d: %d copies (cert %x…)\n", t, len(members), sum[:6])
	}

	// Point lookup: is this new graph already in the database?
	probe := base[2].Permute(r.Perm(base[2].N()))
	cert := string(dvicl.CanonicalCert(probe, nil, dvicl.Options{}))
	fmt.Printf("probe found in database: %v\n", len(index[cert]) > 0)
}
