// Influence maximization + SSM (the paper's motivating application,
// Section 1 and Table 6): pick a seed set with a PMC-style greedy under
// the IC model, then use the AutoTree to count and enumerate alternative
// seed sets with exactly the same influence spread.
package main

import (
	"fmt"

	"dvicl"
)

func main() {
	// A small social-like stand-in graph (one of the paper's dataset
	// stand-ins, scaled way down so the demo runs instantly).
	ds, err := dvicl.FindDataset("wikivote")
	if err != nil {
		panic(err)
	}
	g := ds.Build(40)
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	// PMC-style influence maximization under the IC model.
	model := dvicl.NewICModel(g, 0.05, 128, 7)
	seeds := model.Greedy(10)
	fmt.Printf("greedy seeds (k=10): %v\n", seeds)
	fmt.Printf("estimated spread σ(S) = %.2f\n", model.Spread(seeds))

	// The AutoTree tells us how many other seed sets have the same
	// spread by symmetry (the paper found 8.82E+15 for wikivote!).
	tree := dvicl.BuildAutoTree(g, nil, dvicl.Options{})
	ix := dvicl.NewSSMIndex(tree)
	count := ix.CountImages(seeds)
	fmt.Printf("seed sets symmetric to S: %v\n", count)

	// Enumerate a few alternatives and verify their spread matches.
	for i, alt := range ix.Enumerate(seeds, 4) {
		fmt.Printf("alternative %d: %v  σ = %.2f\n", i, alt, model.Spread(alt))
	}

	// Also demonstrate on a graph with planted symmetry: pendant twins
	// make many equivalent seeds.
	var edges [][2]int
	for hub := 0; hub < 3; hub++ {
		for p := 0; p < 4; p++ {
			edges = append(edges, [2]int{hub, 3 + hub*4 + p})
		}
	}
	edges = append(edges, [2]int{0, 1}, [2]int{1, 2})
	h := dvicl.FromEdges(15, edges)
	hTree := dvicl.BuildAutoTree(h, nil, dvicl.Options{})
	hIx := dvicl.NewSSMIndex(hTree)
	seed := []int{3} // one pendant of hub 0
	// Hubs 0 and 2 are the symmetric ends of the hub chain, so the
	// pendant's orbit covers both hubs' pendants: 8 images.
	fmt.Printf("\nplanted example: images of %v = %v (pendants of hubs 0 and 2)\n",
		seed, hIx.CountImages(seed))
	fmt.Printf("enumerated: %v\n", hIx.Enumerate(seed, 0))
}
