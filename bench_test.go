package dvicl

// One testing.B benchmark per evaluation table of the paper (Tables 1–8),
// plus micro-benchmarks for the hot kernels (refinement, DviCL build,
// baseline search, SSM counting, triangle counting). The table benchmarks
// run reduced configurations so `go test -bench=.` terminates in minutes;
// cmd/benchtables regenerates the full tables (see EXPERIMENTS.md).

import (
	"testing"
	"time"

	"dvicl/internal/bench"
	"dvicl/internal/canon"
	"dvicl/internal/clique"
	"dvicl/internal/coloring"
	"dvicl/internal/core"
	"dvicl/internal/gen"
	"dvicl/internal/im"
	"dvicl/internal/ssm"
)

// benchTableCfg is the reduced configuration for table benchmarks:
// 1/100-scale stand-ins and short timeouts.
func benchTableCfg() bench.Config {
	return bench.Config{Scale: 100, Timeout: 15 * time.Second, MaxSubgraphs: 20000}
}

// smallSet restricts the expensive comparison tables to a representative
// dataset subset (small, medium, web-like).
var smallSet = []string{"wikivote", "Epinions", "Gnutella", "Slashdot0811"}

func BenchmarkTable1_RealGraphSummary(b *testing.B) {
	cfg := benchTableCfg()
	for i := 0; i < b.N; i++ {
		bench.Table1(cfg)
	}
}

func BenchmarkTable2_BenchmarkSummary(b *testing.B) {
	cfg := benchTableCfg()
	cfg.Datasets = []string{"ag2-49", "cfi-200", "grid-w-3-20", "mz-aug-50", "fpga11-20-uns-rcr", "s3-3-3-10"}
	for i := 0; i < b.N; i++ {
		bench.Table2(cfg)
	}
}

func BenchmarkTable3_AutoTreeReal(b *testing.B) {
	cfg := benchTableCfg()
	for i := 0; i < b.N; i++ {
		bench.Table3(cfg)
	}
}

func BenchmarkTable4_AutoTreeBenchmark(b *testing.B) {
	cfg := benchTableCfg()
	cfg.Datasets = []string{"cfi-200", "mz-aug-50", "fpga11-20-uns-rcr", "s3-3-3-10", "grid-w-3-20"}
	for i := 0; i < b.N; i++ {
		bench.Table4(cfg)
	}
}

func BenchmarkTable5_XvsDviCLReal(b *testing.B) {
	cfg := benchTableCfg()
	cfg.Datasets = smallSet
	for i := 0; i < b.N; i++ {
		bench.Table5(cfg)
	}
}

func BenchmarkTable6_SSMOnIMSeeds(b *testing.B) {
	cfg := benchTableCfg()
	for i := 0; i < b.N; i++ {
		bench.Table6(cfg)
	}
}

func BenchmarkTable7_SubgraphClustering(b *testing.B) {
	cfg := benchTableCfg()
	cfg.Datasets = smallSet
	for i := 0; i < b.N; i++ {
		bench.Table7(cfg)
	}
}

func BenchmarkTable8_XvsDviCLBenchmark(b *testing.B) {
	cfg := benchTableCfg()
	cfg.Datasets = []string{"cfi-200", "grid-w-3-20", "mz-aug-50", "fpga11-20-uns-rcr", "s3-3-3-10"}
	for i := 0; i < b.N; i++ {
		bench.Table8(cfg)
	}
}

// ---- micro-benchmarks ----

func benchGraph(b *testing.B, name string, scale int) *Graph {
	b.Helper()
	d, err := gen.FindDataset(name)
	if err != nil {
		b.Fatal(err)
	}
	return d.Build(scale)
}

func BenchmarkRefinement(b *testing.B) {
	g := benchGraph(b, "Epinions", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := coloring.Unit(g.N())
		c.Refine(g, nil)
	}
}

func BenchmarkDviCLBuildSocial(b *testing.B) {
	g := benchGraph(b, "Epinions", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(g, nil, core.Options{})
	}
}

func BenchmarkDviCLBuildTwinsOff(b *testing.B) {
	// Ablation: Section 6.1's structural-equivalence simplification off.
	g := benchGraph(b, "Epinions", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(g, nil, core.Options{DisableTwinSimplification: true})
	}
}

func BenchmarkBaselineBliss(b *testing.B) {
	g := benchGraph(b, "wikivote", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		canon.Canonical(g, nil, canon.Options{Policy: canon.PolicyBliss})
	}
}

func BenchmarkBaselineOnCFI(b *testing.B) {
	g := gen.CFI(gen.CirculantCubic(40), false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		canon.Canonical(g, nil, canon.Options{Policy: canon.PolicyBliss})
	}
}

func BenchmarkSSMCountImages(b *testing.B) {
	g := benchGraph(b, "Epinions", 20)
	tree := core.Build(g, nil, core.Options{})
	ix := ssm.NewIndex(tree)
	model := im.NewIC(g, 0.05, 32, 1)
	seeds := model.Greedy(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.CountImages(seeds)
	}
}

func BenchmarkTriangleCount(b *testing.B) {
	g := benchGraph(b, "Epinions", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clique.CountTriangles(g)
	}
}

func BenchmarkMaxClique(b *testing.B) {
	g := benchGraph(b, "wikivote", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clique.MaxClique(g)
	}
}

func BenchmarkPG2Generation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.PG2(9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDviCLNoDivideS(b *testing.B) {
	// Ablation: DivideI only (no clique/biclique division).
	g := benchGraph(b, "Epinions", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(g, nil, core.Options{DisableDivideS: true})
	}
}

func BenchmarkRandomIso(b *testing.B) {
	// Average-case isomorphism testing on random graphs (the classical
	// easy case): build, shuffle, decide.
	g := gen.ErdosRenyi(2000, 8000, 13)
	h := g.Permute(randPerm(2000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Isomorphic(g, h) {
			b.Fatal("iso pair rejected")
		}
	}
}

func randPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	// Deterministic Fisher–Yates with a fixed LCG (no math/rand in the
	// hot path of the benchmark setup).
	state := uint64(88172645463325252)
	for i := n - 1; i > 0; i-- {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		j := int(state % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}
